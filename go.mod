module cjoin

go 1.24
