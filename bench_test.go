// Benchmarks regenerating every figure and table of the paper's
// evaluation (§6) at bench-friendly scale. Each benchmark executes the
// corresponding harness runner and reports the headline numbers as custom
// metrics; run with -v to see the full series, or use cmd/cjoin-bench for
// paper-scale sweeps.
//
//	go test -bench=. -benchmem
package cjoin_test

import (
	"testing"
	"time"

	"cjoin/internal/disk"
	"cjoin/internal/harness"
)

// benchConfig keeps each experiment within a few seconds per iteration
// while preserving the fact:pool ratio and disk asymmetry that produce
// the paper's shapes.
func benchConfig() harness.Config {
	return harness.Config{
		SF:            1,
		FactRowsPerSF: 3000,
		Selectivity:   0.01,
		Queries:       16,
		Seed:          1,
		MaxConcurrent: 64,
		PoolPages:     24,
		Disk:          disk.Config{SeqBytesPerSec: 100 << 20, SeekPenalty: time.Millisecond},
	}
}

var benchNs = []int{1, 4, 16}

func reportSeries(b *testing.B, fig harness.Figure, metric string) {
	b.Helper()
	b.Logf("\n%s", fig.Format())
	for _, s := range fig.Series {
		if len(s.Y) == 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1], sanitize(s.Name)+"_"+metric)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
	}
	return string(out)
}

// BenchmarkFigure4_PipelineConfig reproduces Figure 4: horizontal vs
// vertical stage layout as stage threads grow (§6.2.1). Expected shape:
// horizontal ≥ vertical once it has ≥ 2 threads.
func BenchmarkFigure4_PipelineConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFigure4(benchConfig(), 5, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_at_5_threads")
		}
	}
}

// BenchmarkFigure5_ConcurrencyScaleup reproduces Figure 5: throughput vs
// n for CJOIN / System X / PostgreSQL (§6.2.2). Expected shape: CJOIN
// scales near-linearly; baselines flatten or decline past small n; CJOIN
// leads by 1–2 orders of magnitude at the top of the sweep.
func BenchmarkFigure5_ConcurrencyScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFigure5(benchConfig(), benchNs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_at_n16")
		}
	}
}

// BenchmarkFigure6_Predictability reproduces Figure 6: Q4.2 response time
// vs n (§6.2.2). Expected shape: CJOIN grows by tens of percent; the
// baselines grow by an order of magnitude or more.
func BenchmarkFigure6_Predictability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFigure6(benchConfig(), benchNs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "seconds_at_n16")
		}
	}
}

// BenchmarkTable1_SubmissionVsConcurrency reproduces Table 1: CJOIN
// submission time vs n (§6.2.2). Expected shape: submission roughly flat
// in n and small relative to response time.
func BenchmarkTable1_SubmissionVsConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunTable1(benchConfig(), benchNs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "seconds_at_n16")
		}
	}
}

// BenchmarkFigure7_Selectivity reproduces Figure 7: throughput vs
// predicate selectivity s (§6.2.3). Expected shape: every system's
// throughput drops roughly linearly in s; CJOIN stays on top.
func BenchmarkFigure7_Selectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFigure7(benchConfig(), []float64{0.001, 0.01, 0.1}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_at_s10pct")
		}
	}
}

// BenchmarkTable2_SubmissionVsSelectivity reproduces Table 2: CJOIN
// submission time vs s (§6.2.3). Expected shape: submission grows with s
// (more dimension tuples to load) while fixed costs dominate at small s.
func BenchmarkTable2_SubmissionVsSelectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunTable2(benchConfig(), []float64{0.001, 0.01, 0.1}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "seconds_at_s10pct")
		}
	}
}

// BenchmarkFigure8_DataScale reproduces Figure 8: normalized throughput
// (qph × sf) vs scale factor (§6.2.4). Expected shape: CJOIN's normalized
// throughput holds or rises with sf (submission overhead amortizes);
// baselines' normalized throughput falls.
func BenchmarkFigure8_DataScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunFigure8(benchConfig(), []int{1, 2, 4}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "normqph_at_sf4")
		}
	}
}

// BenchmarkTable3_SubmissionVsScale reproduces Table 3: CJOIN submission
// time vs sf (§6.2.4). Expected shape: submission grows sub-linearly with
// sf (dimensions grow at most logarithmically), so its share of response
// time shrinks.
func BenchmarkTable3_SubmissionVsScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunTable3(benchConfig(), []int{1, 2, 4}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "seconds_at_sf4")
		}
	}
}

// --- Ablations of design choices the paper calls out ---

// BenchmarkAblationProbeSkip isolates the §3.2.2 probe-skip test.
func BenchmarkAblationProbeSkip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationProbeSkip(benchConfig(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_enabled")
		}
	}
}

// BenchmarkAblationFilterTable compares the lock-free dimht Filter store
// against the legacy map + RWMutex baseline end to end.
func BenchmarkAblationFilterTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationFilterTable(benchConfig(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_dimht")
		}
	}
}

// BenchmarkAblationBatchSize sweeps the §4 batched queue hand-off size.
func BenchmarkAblationBatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationBatchSize(benchConfig(), []int{1, 32, 256}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_at_256rows")
		}
	}
}

// BenchmarkAblationMaxConc isolates the bit-vector width cost the paper
// blames for the sub-linear tail at n=256 (§6.2.2).
func BenchmarkAblationMaxConc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationMaxConc(benchConfig(), []int{64, 1024, 4096}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_at_4096bits")
		}
	}
}

// BenchmarkAblationFilterOrder isolates §3.4 on-line filter reordering.
func BenchmarkAblationFilterOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationFilterOrder(benchConfig(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "seconds_enabled")
		}
	}
}

// BenchmarkAblationCompression isolates §5 compressed fact pages.
func BenchmarkAblationCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.RunAblationCompression(benchConfig(), 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSeries(b, fig, "qph_compressed")
		}
	}
}
