// Snapshot-isolated updates (§3.5 of the paper): queries pinned to
// different snapshots run concurrently in the same CJOIN pipeline while
// new sales keep being committed. Every query sees exactly the database
// state of its snapshot, even though all of them share one continuous
// scan.
//
//	go run ./examples/updates
package main

import (
	"fmt"
	"log"

	cjoin "cjoin"
)

func main() {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{SF: 1, FactRowsPerSF: 10000, Seed: 11})
	must(err)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 16})
	must(err)
	defer p.Close()

	count := "SELECT COUNT(*), SUM(lo_revenue) FROM lineorder, date WHERE lo_orderdate = d_datekey"

	// A long-running report starts at the initial snapshot...
	snap0 := w.Begin()
	q0, err := p.QueryAt(count, snap0)
	must(err)

	// ...while two batches of new sales are committed behind it...
	_, err = w.AppendSales(500, 1)
	must(err)
	snap1 := w.Begin()
	q1, err := p.QueryAt(count, snap1)
	must(err)

	_, err = w.AppendSales(250, 2)
	must(err)
	q2, err := p.Query(count) // current snapshot
	must(err)

	// ...and all three queries share the same scan.
	for i, q := range []*cjoin.RunningQuery{q0, q1, q2} {
		res, err := q.Wait()
		must(err)
		fmt.Printf("snapshot %d: rows=%s  revenue=%s\n",
			i, res.Row(0)[0], res.Row(0)[1])
	}
	fmt.Println("\neach query saw exactly its snapshot: 10000, 10500 and 10750 rows,")
	fmt.Println("with no locking and no extra scans — visibility is just another")
	fmt.Println("virtual fact-table predicate evaluated by the Preprocessor.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
