// Fact-table partitioning (§5 of the paper): the SSB fact table is
// range-partitioned by order date; a query restricted to a narrow date
// range is tagged with only the partitions it needs, the continuous scan
// covers only the union of needed partitions, and the query terminates
// early — while still sharing everything with unrestricted queries.
//
// The same workload then runs over a 2-shard pipeline group: whole
// partitions are dealt to shards balanced by page count, each shard
// scans its own subset with pruning intact, and the per-shard partial
// aggregates merge to exactly the single-pipeline results.
//
//	go run ./examples/partitioned
package main

import (
	"fmt"
	"log"
	"time"

	cjoin "cjoin"
)

func main() {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{
		SF:            1,
		FactRowsPerSF: 40000,
		Seed:          13,
		Partitions:    8, // eight date-range partitions over 1992-1998
	})
	must(err)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	must(err)
	defer p.Close()

	keys := w.DateKeys()
	year1992 := fmt.Sprintf(
		`SELECT SUM(lo_revenue) AS revenue, d_yearmonthnum FROM lineorder, date
		 WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d
		 GROUP BY d_yearmonthnum ORDER BY d_yearmonthnum`,
		keys[0], keys[365])
	allYears := `SELECT SUM(lo_revenue) AS revenue, d_year FROM lineorder, date
		 WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year`

	start := time.Now()
	narrow, err := p.Query(year1992)
	must(err)
	wide, err := p.Query(allYears)
	must(err)

	resNarrow, err := narrow.Wait()
	must(err)
	narrowAt := time.Since(start)
	resWide, err := wide.Wait()
	must(err)
	wideAt := time.Since(start)

	fmt.Printf("1992-only query: %d result rows in %v (early termination after its partition)\n",
		resNarrow.NumRows(), narrowAt.Round(time.Millisecond))
	fmt.Printf("all-years query: %d result rows in %v (full cycle over all partitions)\n\n",
		resWide.NumRows(), wideAt.Round(time.Millisecond))
	fmt.Println(resWide.Format())

	st := p.Stats()
	fmt.Printf("pages read by the shared scan: %d\n\n", st.PagesRead)

	// Partition-aware sharding: the eight date partitions are dealt to
	// two pipelines; narrow queries still prune, results still match.
	g, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8, Shards: 2})
	must(err)
	defer g.Close()
	start = time.Now()
	narrow2, err := g.Query(year1992)
	must(err)
	wide2, err := g.Query(allYears)
	must(err)
	resNarrow2, err := narrow2.Wait()
	must(err)
	narrowAt2 := time.Since(start)
	resWide2, err := wide2.Wait()
	must(err)
	wideAt2 := time.Since(start)
	fmt.Printf("2-shard 1992-only query: %d rows in %v (pruned on both shards)\n",
		resNarrow2.NumRows(), narrowAt2.Round(time.Millisecond))
	fmt.Printf("2-shard all-years query: %d rows in %v\n",
		resWide2.NumRows(), wideAt2.Round(time.Millisecond))
	if resNarrow2.Format() != resNarrow.Format() || resWide2.Format() != resWide.Format() {
		log.Fatal("sharded results diverge from the single pipeline")
	}
	fmt.Println("sharded results identical to the single pipeline")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
