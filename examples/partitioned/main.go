// Fact-table partitioning (§5 of the paper): the SSB fact table is
// range-partitioned by order date; a query restricted to a narrow date
// range is tagged with only the partitions it needs, the continuous scan
// covers only the union of needed partitions, and the query terminates
// early — while still sharing everything with unrestricted queries.
//
//	go run ./examples/partitioned
package main

import (
	"fmt"
	"log"
	"time"

	cjoin "cjoin"
)

func main() {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{
		SF:            1,
		FactRowsPerSF: 40000,
		Seed:          13,
		Partitions:    8, // eight date-range partitions over 1992-1998
	})
	must(err)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	must(err)
	defer p.Close()

	keys := w.DateKeys()
	year1992 := fmt.Sprintf(
		`SELECT SUM(lo_revenue) AS revenue, d_yearmonthnum FROM lineorder, date
		 WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d
		 GROUP BY d_yearmonthnum ORDER BY d_yearmonthnum`,
		keys[0], keys[365])
	allYears := `SELECT SUM(lo_revenue) AS revenue, d_year FROM lineorder, date
		 WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year`

	start := time.Now()
	narrow, err := p.Query(year1992)
	must(err)
	wide, err := p.Query(allYears)
	must(err)

	resNarrow, err := narrow.Wait()
	must(err)
	narrowAt := time.Since(start)
	resWide, err := wide.Wait()
	must(err)
	wideAt := time.Since(start)

	fmt.Printf("1992-only query: %d result rows in %v (early termination after its partition)\n",
		resNarrow.NumRows(), narrowAt.Round(time.Millisecond))
	fmt.Printf("all-years query: %d result rows in %v (full cycle over all partitions)\n\n",
		resWide.NumRows(), wideAt.Round(time.Millisecond))
	fmt.Println(resWide.Format())

	st := p.Stats()
	fmt.Printf("pages read by the shared scan: %d\n", st.PagesRead)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
