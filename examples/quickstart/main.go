// Quickstart: build a tiny star-schema warehouse by hand, open the
// always-on CJOIN pipeline, and run a handful of concurrent star queries
// against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	cjoin "cjoin"
)

func main() {
	w := cjoin.NewWarehouse(cjoin.DiskModel{})

	stores, err := w.CreateDimension("stores", []cjoin.Column{
		{Name: "s_id", Type: cjoin.Int},
		{Name: "s_city", Type: cjoin.String},
		{Name: "s_region", Type: cjoin.String},
	})
	must(err)
	products, err := w.CreateDimension("products", []cjoin.Column{
		{Name: "p_id", Type: cjoin.Int},
		{Name: "p_category", Type: cjoin.String},
	})
	must(err)
	sales, err := w.CreateFact("sales", []cjoin.Column{
		{Name: "store_id", Type: cjoin.Int},
		{Name: "product_id", Type: cjoin.Int},
		{Name: "quantity", Type: cjoin.Int},
		{Name: "amount", Type: cjoin.Int},
	})
	must(err)

	cities := []struct{ city, region string }{
		{"Lyon", "EUROPE"}, {"Paris", "EUROPE"}, {"Boston", "AMERICA"},
		{"Tokyo", "ASIA"}, {"Seattle", "AMERICA"}, {"Nice", "EUROPE"},
	}
	for i, c := range cities {
		must(stores.Append(i+1, c.city, c.region))
	}
	categories := []string{"games", "books", "tools"}
	for i, cat := range categories {
		must(products.Append(i+1, cat))
	}
	for i := 0; i < 50000; i++ {
		must(sales.Append(i%len(cities)+1, i%len(categories)+1, i%7+1, (i*37)%500))
	}

	must(w.DefineStar("sales", []cjoin.Join{
		{Dimension: "stores", ForeignKey: "store_id", Key: "s_id"},
		{Dimension: "products", ForeignKey: "product_id", Key: "p_id"},
	}))

	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 16})
	must(err)
	defer p.Close()

	// Several ad-hoc star queries share one continuous scan of `sales`.
	queries := []string{
		`SELECT SUM(amount) AS revenue, s_region FROM sales, stores
		   WHERE store_id = s_id GROUP BY s_region ORDER BY revenue DESC`,
		`SELECT COUNT(*), AVG(quantity), p_category FROM sales, products
		   WHERE product_id = p_id GROUP BY p_category ORDER BY p_category`,
		`SELECT SUM(amount), s_city FROM sales, stores, products
		   WHERE store_id = s_id AND product_id = p_id
		     AND s_region = 'EUROPE' AND p_category = 'books'
		   GROUP BY s_city ORDER BY s_city`,
	}
	var wg sync.WaitGroup
	results := make([]*cjoin.Result, len(queries))
	for i, text := range queries {
		q, err := p.Query(text)
		must(err)
		wg.Add(1)
		go func(i int, q *cjoin.RunningQuery) {
			defer wg.Done()
			res, err := q.Wait()
			must(err)
			results[i] = res
		}(i, q)
	}
	wg.Wait()

	for i, res := range results {
		fmt.Printf("query %d:\n%s\n", i+1, res.Format())
	}
	st := p.Stats()
	fmt.Printf("shared plan: %d tuples scanned over %d scan cycles for %d queries\n",
		st.TuplesScanned, st.ScanCycles, len(queries))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
