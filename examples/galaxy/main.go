// Galaxy-schema queries (§5 of the paper): a fact-to-fact join evaluated
// as the pivot join of two star sub-queries, each executed by the shared
// CJOIN pipeline. Here: "pair high-value line orders with cheap line
// orders shipped the same day" — a same-day price-spread analysis joining
// lineorder with itself on order date.
//
//	go run ./examples/galaxy
package main

import (
	"fmt"
	"log"

	cjoin "cjoin"
)

func main() {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{SF: 1, FactRowsPerSF: 20000, Seed: 17})
	must(err)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	must(err)
	defer p.Close()

	keys := w.DateKeys()
	window := fmt.Sprintf("d_datekey BETWEEN %d AND %d", keys[0], keys[30])

	// Side A: expensive orders in the window; side B: cheap ones.
	sideA := "SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey AND " +
		window + " AND lo_extendedprice >= 8000"
	sideB := "SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey AND " +
		window + " AND lo_extendedprice <= 2000"

	type spread struct {
		date      int64
		pairs     int
		maxSpread int64
	}
	byDate := map[int64]*spread{}
	err = p.GalaxyJoin(sideA, sideB, "lo_orderdate", "lo_orderdate", func(a, b cjoin.FactRow) {
		da, err := a.Col("lo_orderdate")
		must(err)
		pa, err := a.Col("lo_extendedprice")
		must(err)
		pb, err := b.Col("lo_extendedprice")
		must(err)
		s := byDate[da.Int()]
		if s == nil {
			s = &spread{date: da.Int()}
			byDate[da.Int()] = s
		}
		s.pairs++
		if d := pa.Int() - pb.Int(); d > s.maxSpread {
			s.maxSpread = d
		}
	})
	must(err)

	fmt.Printf("same-day price-spread pairs over a %d-day window:\n\n", 31)
	fmt.Println("date      pairs  max spread")
	total := 0
	for _, k := range keys[:31] {
		if s, ok := byDate[k]; ok {
			fmt.Printf("%d  %5d  %10d\n", s.date, s.pairs, s.maxSpread)
			total += s.pairs
		}
	}
	fmt.Printf("\n%d joined pairs; both star sub-plans were evaluated by the shared\n", total)
	fmt.Println("CJOIN pipeline and piped into the fact-to-fact pivot join (§5).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
