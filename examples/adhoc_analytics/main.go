// Ad-hoc analytics under "workload fear" (§1 of the paper): the same
// burst of ad-hoc SSB star queries is answered twice — by a conventional
// query-at-a-time engine and by the shared CJOIN pipeline — showing how
// response time degrades with concurrency in one model and stays nearly
// flat in the other.
//
//	go run ./examples/adhoc_analytics
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	cjoin "cjoin"
)

func main() {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{
		SF:            1,
		FactRowsPerSF: 20000,
		Seed:          7,
		Disk:          cjoin.DiskModel{SeqBytesPerSec: 100 << 20, SeekPenalty: time.Millisecond},
	})
	must(err)

	fmt.Println("the same ad-hoc workload, two execution models")
	fmt.Println("----------------------------------------------")
	for _, n := range []int{1, 4, 16} {
		queries := makeWorkload(w, n)

		base, err := w.BaselineEngine("systemx")
		must(err)
		baseTime := runBaseline(base, queries)

		p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 2 * n})
		must(err)
		cjoinTime := runCJoin(p, queries)
		p.Close()

		fmt.Printf("n=%2d  query-at-a-time: %8s/query   cjoin: %8s/query\n",
			n, baseTime.Round(time.Millisecond), cjoinTime.Round(time.Millisecond))
	}
	fmt.Println("\nwith CJOIN, adding concurrent analysts barely moves response time —")
	fmt.Println("the property that removes the \"workload fear\" of §1.")
}

func makeWorkload(w *cjoin.SSBWarehouse, n int) []string {
	wl := w.NewWorkload(0.02, int64(n))
	out := make([]string, n)
	for i := range out {
		_, out[i] = wl.Next()
	}
	return out
}

// runBaseline executes all queries concurrently, each with its own
// physical plan, and returns the mean response time.
func runBaseline(b *cjoin.Baseline, queries []string) time.Duration {
	var wg sync.WaitGroup
	times := make([]time.Duration, len(queries))
	for i, text := range queries {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			start := time.Now()
			_, err := b.Query(text)
			must(err)
			times[i] = time.Since(start)
		}(i, text)
	}
	wg.Wait()
	return mean(times)
}

// runCJoin registers all queries with the shared pipeline and returns the
// mean response time.
func runCJoin(p *cjoin.Pipeline, queries []string) time.Duration {
	var wg sync.WaitGroup
	times := make([]time.Duration, len(queries))
	for i, text := range queries {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			start := time.Now()
			q, err := p.Query(text)
			must(err)
			_, err = q.Wait()
			must(err)
			times[i] = time.Since(start)
		}(i, text)
	}
	wg.Wait()
	return mean(times)
}

func mean(ts []time.Duration) time.Duration {
	var sum time.Duration
	for _, t := range ts {
		sum += t
	}
	return sum / time.Duration(len(ts))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
