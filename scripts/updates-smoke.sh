#!/usr/bin/env bash
# updates-smoke: prove the HTAP write plane end to end over the live HTTP
# API.
#
#   - cjoind -shards 2 takes snapshot-isolated commits through
#     POST /update while serving queries: fact appends, a fact delete,
#     and an in-place dimension update;
#   - published snapshots are contiguous, and a failed commit (double
#     delete) provably does NOT advance the snapshot counter;
#   - the dimension update invalidates the predicate-scan cache: the
#     same SQL template re-submitted after the rewrite must see the new
#     dimension values (a stale cache would keep answering 0);
#   - the write-plane metric families land on /metrics;
#   - SIGTERM still drains cleanly.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:8099}
BASE="http://$ADDR"

go build -o /tmp/cjoind-updates ./cmd/cjoind
/tmp/cjoind-updates -addr "$ADDR" -rows 3000 -shards 2 -maxconc 8 -queue 64 &
CJOIND=$!
trap 'kill $CJOIND 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done

# q SQL → first cell of the completed result.
q() {
  local id
  id=$(curl -sf "$BASE/query" -d "{\"sql\":\"$1\"}" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
  curl -sf "$BASE/query/$id/result?timeout=60s" | python3 -c '
import json, sys
r = json.load(sys.stdin)
assert r["state"] == "done", r
rows = r.get("rows") or []
print(rows[0][0] if rows else 0)'
}

# upd BODY → published commit snapshot (fails the script on a non-2xx).
upd() {
  curl -sf "$BASE/update" -d "$1" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["snapshot"])'
}

N0=$(q 'SELECT COUNT(*) AS n FROM lineorder')
[ "$N0" = 3000 ] || { echo "baseline count $N0, want 3000"; exit 1; }
# Caches the (empty) year-3000 predicate row-set before the rewrite.
Y0=$(q 'SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 3000')
[ "$Y0" = 0 ] || { echo "year-3000 count $Y0 before any write, want 0"; exit 1; }

# Three appended fact rows become visible to queries admitted after the
# commit; system columns (xmin/xmax) are stamped by the server.
ROW='[9000001, 1, 1, 1, 1, 19920101, "1-URGENT", 0, 10, 1000, 1000, 4, 960, 500, 3, 19920110, "AIR"]'
S1=$(upd "{\"op\":\"append\",\"rows\":[$ROW,$ROW,$ROW]}")
N1=$(q 'SELECT COUNT(*) AS n FROM lineorder')
[ "$N1" = 3003 ] || { echo "count after append $N1, want 3003"; exit 1; }

S2=$(upd '{"op":"delete","row":0}')
[ "$S2" = "$((S1 + 1))" ] || { echo "delete snapshot $S2, want $((S1 + 1))"; exit 1; }
N2=$(q 'SELECT COUNT(*) AS n FROM lineorder')
[ "$N2" = 3002 ] || { echo "count after delete $N2, want 3002"; exit 1; }

# Deleting the same row again must fail — re-stamping xmax would
# resurrect the row for intermediate snapshots — and the failed commit
# must not advance the snapshot counter (asserted via S3 below).
code=$(curl -s -o /tmp/updates-smoke-err.json -w '%{http_code}' "$BASE/update" -d '{"op":"delete","row":0}')
[ "$code" = 400 ] || { echo "double delete answered $code, want 400"; exit 1; }
grep -q 'already deleted' /tmp/updates-smoke-err.json \
  || { echo "double delete error lacks cause: $(cat /tmp/updates-smoke-err.json)"; exit 1; }

# In-place dimension rewrite: move ten date rows to year 3000. The
# commit id must be exactly S2+1 — the failed delete burned nothing —
# and the cached year-3000 predicate row-set must be invalidated, so the
# re-submitted template sees facts land under the new year.
for r in 0 1 2 3 4 5 6 7 8 9; do
  S3=$(upd "{\"op\":\"dim-update\",\"table\":\"date\",\"column\":\"d_year\",\"row\":$r,\"value\":3000}")
done
FIRST=$((S2 + 1))
[ "$S3" = "$((S2 + 10))" ] || { echo "dim-update snapshots ended at $S3, want $((S2 + 10)) (failed delete must not burn an id past $FIRST)"; exit 1; }
Y1=$(q 'SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 3000')
[ "$Y1" -gt 0 ] || { echo "year-3000 count still $Y1 after dimension rewrite: stale predicate cache"; exit 1; }

# Write-plane metric families, with per-kind commit labels.
curl -sf "$BASE/metrics" > /tmp/updates-smoke-metrics.txt
for pat in \
  'cjoin_commits_total{kind="append"} 1' \
  'cjoin_commits_total{kind="delete"} 1' \
  'cjoin_commits_total{kind="dim_update"} 10' \
  'cjoin_commit_errors_total 1' \
; do
  grep -qF "$pat" /tmp/updates-smoke-metrics.txt \
    || { echo "metrics missing $pat"; exit 1; }
done
grep -q '^cjoin_commit_seconds_count 12' /tmp/updates-smoke-metrics.txt \
  || { echo "metrics missing commit latency count"; exit 1; }
awk '$1=="cjoin_dimcache_invalidations_total" && $2+0 >= 10 {found=1} END{exit !found}' /tmp/updates-smoke-metrics.txt \
  || { echo "dimension cache invalidations not recorded"; exit 1; }

kill -TERM $CJOIND
wait $CJOIND
echo "updates-smoke: OK"
