#!/usr/bin/env bash
# metrics-smoke: prove the telemetry plane end to end over the live HTTP
# API.
#
#   - cjoind -shards 2 -pprof, a batch of queries through completion;
#   - /metrics serves Prometheus text covering every stage family
#     (admission, dimension plane, scan, filter, shard supervision) with
#     per-shard labels on the pipeline families;
#   - a completed query's /query/{id}/trace carries the full
#     enqueued→admitted→first_page→cycle_complete→delivered timeline;
#   - /debug/pprof/ answers behind -pprof;
#   - SIGTERM still drains cleanly.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:8096}
BASE="http://$ADDR"

go build -o /tmp/cjoind-metrics ./cmd/cjoind
/tmp/cjoind-metrics -addr "$ADDR" -rows 3000 -shards 2 -maxconc 8 -queue 64 -pprof &
CJOIND=$!
trap 'kill $CJOIND 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done

for i in $(seq 1 6); do
  curl -sf "$BASE/query" \
    -d '{"sql":"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year"}' >/dev/null
done
# A narrow date window: the fact table is date-sorted, so page-level
# zone maps must prune most of its scan (metrics asserted below).
curl -sf "$BASE/query" \
  -d '{"sql":"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 19920101 AND 19920401 GROUP BY d_year"}' >/dev/null
for i in $(seq 1 7); do
  id=$(printf 'q-%06d' "$i")
  state=$(curl -sf "$BASE/query/$id/result?timeout=60s" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = "done" ] || { echo "query $id state=$state"; exit 1; }
done

# Every stage of the pipeline must be represented on /metrics.
curl -sf "$BASE/metrics" > /tmp/metrics-smoke.txt
for fam in \
  cjoin_admission_submitted_total \
  cjoin_admission_queue_wait_seconds_bucket \
  cjoin_admission_queue_depth \
  cjoin_dimplane_admits_total \
  cjoin_dimplane_admit_seconds_count \
  cjoin_dimplane_slots_in_use \
  cjoin_dimplane_cache_hits_total \
  cjoin_dimplane_cache_misses_total \
  cjoin_dimplane_snapshot_publish_total \
  cjoin_dimplane_admit_batch_size_bucket \
  cjoin_scan_pages_total \
  cjoin_scan_pruned_pages_total \
  cjoin_scan_zonemap_skipped_pages_total \
  cjoin_scan_cycle_seconds_count \
  cjoin_filter_batch_seconds_count \
  cjoin_shard_up \
  cjoin_go_goroutines \
; do
  grep -q "^$fam" /tmp/metrics-smoke.txt || { echo "metrics missing family $fam"; exit 1; }
done
# The six identical queries above share one predicate template, so the
# predicate-scan cache must have served repeats (>= 1 miss to build the
# entry, hits for the rest) and the plane must have published COW
# snapshots for the admissions.
awk '$1=="cjoin_dimplane_cache_hits_total" && $2+0 > 0 {found=1} END{exit !found}' /tmp/metrics-smoke.txt \
  || { echo "no dimension predicate cache hits recorded"; exit 1; }
awk '$1=="cjoin_dimplane_snapshot_publish_total" && $2+0 > 0 {found=1} END{exit !found}' /tmp/metrics-smoke.txt \
  || { echo "no dimension snapshot publications recorded"; exit 1; }
# The narrow-window query must have been pruned at page granularity:
# zone maps charged it fewer pages than the table holds, and the pruned
# counter (cause="zonemap") records the difference across the shards.
awk '/^cjoin_scan_pruned_pages_total\{cause="zonemap"/ {sum += $NF+0} END{exit !(sum > 0)}' /tmp/metrics-smoke.txt \
  || { echo "no zone-map page pruning recorded for the narrow window"; exit 1; }
# Per-shard labeling: both shard pipelines must report.
for s in 0 1; do
  grep -q "cjoin_scan_pages_total{shard=\"$s\"}" /tmp/metrics-smoke.txt \
    || { echo "no scan pages for shard $s"; exit 1; }
  grep -q "cjoin_shard_up{shard=\"$s\"} 1" /tmp/metrics-smoke.txt \
    || { echo "shard $s not reporting up"; exit 1; }
done

# A delivered query's trace is the complete ordered timeline.
curl -sf "$BASE/query/q-000001/trace" | python3 -c '
import json, sys
tr = json.load(sys.stdin)
assert tr["complete"], tr
stages = [s["stage"] for s in tr["stages"]]
assert stages == ["enqueued", "admitted", "first_page", "cycle_complete", "delivered"], stages
offs = [s["offset_us"] for s in tr["stages"]]
assert offs == sorted(offs), offs
'

# pprof answers behind the flag.
curl -sf "$BASE/debug/pprof/" >/dev/null || { echo "pprof index not served"; exit 1; }

kill -TERM $CJOIND
wait $CJOIND
echo "metrics-smoke: OK"
