#!/usr/bin/env bash
# chaos-smoke: kill one shard of a live cjoind mid-workload and prove
# graceful degradation end to end over the HTTP API.
#
#   - cjoind -shards 4 over a range-partitioned star, with a -chaos
#     schedule that hard-fails shard 3's scan a few pages in;
#   - the broadcast query that trips the fault fails with a typed 503
#     (Retry-After set), the daemon stays up;
#   - /healthz flips to "degraded" with exactly one failed shard;
#   - narrow queries over surviving partitions keep completing, queries
#     needing the dead shard's partitions keep getting the retryable
#     503 — both outcomes must be observed;
#   - SIGTERM still drains cleanly.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:8099}
BASE="http://$ADDR"

go build -o /tmp/cjoind-chaos ./cmd/cjoind
/tmp/cjoind-chaos -addr "$ADDR" -rows 4000 -partitions 8 -shards 4 \
  -maxconc 8 -queue 64 -chaos 'seed=7;shard=3;scan-fail=2' &
CJOIND=$!
trap 'kill $CJOIND 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -sf "$BASE/healthz" >/dev/null && break
  sleep 0.2
done

# The broadcast query needs every partition: it trips shard 3's armed
# scan failure. The result must be the typed degraded-tier answer — a
# 503 with Retry-After — not a hung query or a dead daemon.
curl -sf "$BASE/query" \
  -d '{"sql":"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"}' >/dev/null
code=$(curl -s -o /tmp/chaos-res.json -w '%{http_code}' "$BASE/query/q-000001/result?timeout=60s")
[ "$code" = "503" ] || { echo "tripwire query: HTTP $code, want 503"; cat /tmp/chaos-res.json; exit 1; }
curl -s -D - -o /dev/null "$BASE/query/q-000001/result" | tr -d '\r' \
  | grep -qi '^retry-after:' || { echo "503 without Retry-After"; exit 1; }

# The supervisor quarantines the shard: /healthz goes degraded (still
# 200 — the tier is serving) with exactly one failed shard.
for i in $(seq 1 50); do
  state=$(curl -s "$BASE/healthz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["state"])')
  [ "$state" = "degraded" ] && break
  sleep 0.2
done
curl -s "$BASE/healthz" | python3 -c '
import json, sys
h = json.load(sys.stdin)
assert h["state"] == "degraded", h
dead = [s for s in h["shards"] if s["state"] == "failed"]
assert len(dead) == 1 and dead[0]["shard"] == 3 and dead[0]["cause"], h
'
curl -s "$BASE/stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
assert st.get("degraded") is True, "stats not degraded"
assert st["shards"][3]["state"] == "failed", st["shards"][3]
'

# The telemetry plane proves the injections actually fired (not merely
# that the shard died for some reason): shard 3's armed scan failure
# shows on /metrics, and the supervision counters track the quarantine.
curl -sf "$BASE/metrics" > /tmp/chaos-metrics.txt
grep -q 'cjoin_fault_injected_total{site="scan-fail",shard="3"}' /tmp/chaos-metrics.txt \
  || { echo "no fault_injected_total for shard 3 scan-fail"; exit 1; }
grep -q '^cjoin_shard_quarantines_total 1' /tmp/chaos-metrics.txt \
  || { echo "quarantine not counted"; exit 1; }
grep -q 'cjoin_shard_up{shard="3"} 0' /tmp/chaos-metrics.txt \
  || { echo "shard 3 still reports up"; exit 1; }

# Degraded serving: single-day windows route by partition pruning. Days
# in surviving partitions complete; days in the dead shard'\''s
# partitions get the retryable 503. Sampling the 1st of every quarter
# lands several probes in both.
served=0 rejected=0
for y in $(seq 1992 1998); do
  for m in 01 04 07 10; do
    k="$y${m}01"
    sql="SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN $k AND $k"
    id=$(curl -sf "$BASE/query" -d "{\"sql\":\"$sql\"}" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
    code=$(curl -s -o /tmp/chaos-res.json -w '%{http_code}' "$BASE/query/$id/result?timeout=60s")
    if [ "$code" = "200" ]; then
      state=$(python3 -c 'import json; print(json.load(open("/tmp/chaos-res.json"))["state"])')
      [ "$state" = "done" ] || { echo "query $id state=$state"; exit 1; }
      served=$((served+1))
    elif [ "$code" = "503" ]; then
      rejected=$((rejected+1))
    else
      echo "query $id: unexpected HTTP $code"; cat /tmp/chaos-res.json; exit 1
    fi
  done
done
echo "chaos-smoke: $served served, $rejected rejected on the degraded tier"
[ "$served" -ge 1 ] || { echo "no query served after shard loss"; exit 1; }
[ "$rejected" -ge 1 ] || { echo "dead partitions never rejected"; exit 1; }

# Still drains cleanly.
kill -TERM $CJOIND
wait $CJOIND
echo "chaos-smoke: OK"
