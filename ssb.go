package cjoin

import (
	"math/rand"

	"cjoin/internal/disk"
	"cjoin/internal/ssb"
)

type diskConfig = disk.Config

// SSBOptions sizes a generated Star Schema Benchmark warehouse.
type SSBOptions struct {
	// SF is the scale factor (>= 1).
	SF int
	// FactRowsPerSF maps one scale-factor unit to fact rows
	// (default 10000).
	FactRowsPerSF int
	// Seed makes generation deterministic.
	Seed int64
	// Disk is the simulated device model.
	Disk DiskModel
	// Partitions range-partitions the fact table by order date.
	Partitions int
}

// SSBWarehouse is a Warehouse pre-loaded with the Star Schema Benchmark
// used in the paper's evaluation: a lineorder fact table joined to
// customer, supplier, part and date dimensions.
type SSBWarehouse struct {
	*Warehouse
	ds *ssb.Dataset
}

// OpenSSB generates a deterministic SSB warehouse.
func OpenSSB(opts SSBOptions) (*SSBWarehouse, error) {
	ds, err := ssb.Generate(ssb.Config{
		SF:            opts.SF,
		FactRowsPerSF: opts.FactRowsPerSF,
		Seed:          opts.Seed,
		Disk:          toDiskConfig(opts.Disk),
		Partitions:    opts.Partitions,
	})
	if err != nil {
		return nil, err
	}
	w := &Warehouse{
		dev:    ds.Dev,
		txn:    ds.Txn,
		tables: make(map[string]*Table),
		star:   ds.Star,
	}
	fact := &Table{w: w, tab: ds.Lineorder, isFact: true}
	w.tables[ds.Lineorder.Name] = fact
	w.fact = fact
	for _, t := range []struct{ tab *Table }{
		{&Table{w: w, tab: ds.Customer}},
		{&Table{w: w, tab: ds.Supplier}},
		{&Table{w: w, tab: ds.Part}},
		{&Table{w: w, tab: ds.Date}},
	} {
		w.tables[t.tab.tab.Name] = t.tab
	}
	return &SSBWarehouse{Warehouse: w, ds: ds}, nil
}

// SSBWorkload generates the paper's workload: queries sampled from SSB
// templates Q2.1–Q4.3 with range predicates of the given selectivity.
type SSBWorkload struct{ w *ssb.Workload }

// NewWorkload returns a deterministic workload stream.
func (s *SSBWarehouse) NewWorkload(selectivity float64, seed int64) *SSBWorkload {
	return &SSBWorkload{w: ssb.NewWorkload(s.ds, selectivity, seed)}
}

// Next returns the next query's template id and SQL text.
func (w *SSBWorkload) Next() (template, sql string) { return w.w.Next() }

// FromTemplate instantiates the named template (e.g. "Q4.2").
func (w *SSBWorkload) FromTemplate(id string) (string, error) { return w.w.FromTemplate(id) }

// TemplateIDs lists the available SSB workload templates.
func TemplateIDs() []string {
	ts := ssb.Templates()
	ids := make([]string, len(ts))
	for i, t := range ts {
		ids[i] = t.ID
	}
	return ids
}

// AppendSales appends n random fact rows in one transaction, for
// exercising snapshot-isolated updates (§3.5 of the paper).
func (s *SSBWarehouse) AppendSales(n int, seed int64) (Snapshot, error) {
	return s.ds.AppendFact(n, rand.New(rand.NewSource(seed)))
}

// DateKeys returns the sorted d_datekey domain, handy for building
// date-range predicates.
func (s *SSBWarehouse) DateKeys() []int64 { return s.ds.DateKeys }

func toDiskConfig(m DiskModel) (c diskConfig) {
	c.SeqBytesPerSec = m.SeqBytesPerSec
	c.SeekPenalty = m.SeekPenalty
	return c
}
