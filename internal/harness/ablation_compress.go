package harness

import (
	"cjoin/internal/core"
	"cjoin/internal/ssb"
)

// RunAblationCompression compares CJOIN throughput over a raw fact table
// against an RLE-compressed one (§5 "Compressed Tables"): the continuous
// scan transfers the compressed footprint over the bandwidth-limited
// device and decompresses on the fly.
func RunAblationCompression(cfg Config, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-compress",
		Title:  "Ablation: compressed fact table (§5)",
		XLabel: "compression enabled (1=yes)",
		YLabel: "throughput (queries/hour)",
		X:      []float64{0, 1},
	}
	s := Series{Name: "CJOIN"}
	ratio := Series{Name: "compression ratio"}
	for _, compress := range []bool{false, true} {
		ds, err := ssb.Generate(ssb.Config{
			SF:            cfg.SF,
			FactRowsPerSF: cfg.FactRowsPerSF,
			Seed:          cfg.Seed,
			Disk:          cfg.Disk,
			CompressFact:  compress,
		})
		if err != nil {
			return fig, err
		}
		env := &Env{Dataset: ds, Cfg: cfg}
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent}, "")
		if err != nil {
			return fig, err
		}
		s.Y = append(s.Y, m.Throughput)
		raw := int64(ds.Lineorder.Heap.FlushedPages()) * 8192
		comp := ds.Lineorder.Heap.FlushedBytes()
		if comp > 0 {
			ratio.Y = append(ratio.Y, float64(raw)/float64(comp))
		} else {
			ratio.Y = append(ratio.Y, 1)
		}
	}
	fig.Series = []Series{s, ratio}
	return fig, nil
}
