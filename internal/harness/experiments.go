package harness

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/core"
	"cjoin/internal/dimplane"
	"cjoin/internal/engine"
	"cjoin/internal/obs"
	"cjoin/internal/query"
	"cjoin/internal/ref"
)

// Figure is one reproduced figure or table: named series over a shared
// x-axis, matching the rows/series the paper reports.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Series is one line of a Figure.
type Series struct {
	Name string
	Y    []float64
}

// RunFigure4 reproduces Figure 4: query throughput of the horizontal vs
// vertical pipeline configuration as the number of Stage threads grows.
// The paper's vertical configuration needs one thread per Filter (four
// for SSB), so its series starts at four threads, exactly as in §6.2.1.
func RunFigure4(cfg Config, maxThreads int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if maxThreads <= 0 {
		maxThreads = 5
	}
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "figure4",
		Title:  "Figure 4: effect of pipeline configuration on performance",
		XLabel: "Stage threads",
		YLabel: "throughput (queries/hour)",
	}
	horiz := Series{Name: "Horizontal"}
	vert := Series{Name: "Vertical"}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	nDims := len(env.Dataset.Star.Dims)
	for threads := 1; threads <= maxThreads; threads++ {
		fig.X = append(fig.X, float64(threads))
		m, err := env.RunCJoin(n, core.Config{Layout: core.Horizontal, Workers: threads, MaxConcurrent: cfg.MaxConcurrent}, "")
		if err != nil {
			return fig, err
		}
		horiz.Y = append(horiz.Y, m.Throughput)
		if threads < nDims {
			vert.Y = append(vert.Y, 0) // not runnable: fewer threads than Filters
			continue
		}
		m, err = env.RunCJoin(n, core.Config{Layout: core.Vertical, MaxConcurrent: cfg.MaxConcurrent}, "")
		if err != nil {
			return fig, err
		}
		vert.Y = append(vert.Y, m.Throughput)
	}
	fig.Series = []Series{horiz, vert}
	return fig, nil
}

// defaultNs is the paper's concurrency sweep, scaled-down variants first.
func defaultNs(max int) []int {
	all := []int{1, 8, 32, 64, 128, 256}
	var out []int
	for _, n := range all {
		if n <= max {
			out = append(out, n)
		}
	}
	return out
}

// systems runs one (system, n) cell for the concurrency experiments.
func runCell(env *Env, system string, n int, onlyTpl string) (Metrics, error) {
	switch system {
	case "CJOIN":
		return env.RunCJoin(n, core.Config{MaxConcurrent: env.Cfg.MaxConcurrent}, onlyTpl)
	case "System X":
		return env.RunEngine(engine.SystemXConfig(), n, onlyTpl)
	case "PostgreSQL":
		return env.RunEngine(engine.PostgresConfig(), n, onlyTpl)
	}
	return Metrics{}, fmt.Errorf("harness: unknown system %q", system)
}

var allSystems = []string{"CJOIN", "System X", "PostgreSQL"}

// RunFigure5 reproduces Figure 5: query throughput as the number of
// concurrent queries n grows, for CJOIN, System X and PostgreSQL
// (§6.2.2).
func RunFigure5(cfg Config, ns []int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = defaultNs(cfg.MaxConcurrent)
	}
	fig := Figure{
		ID:     "figure5",
		Title:  "Figure 5: query throughput scale-up with number of queries",
		XLabel: "concurrent queries (n)",
		YLabel: "throughput (queries/hour)",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	for _, n := range ns {
		fig.X = append(fig.X, float64(n))
	}
	for _, sys := range allSystems {
		s := Series{Name: sys}
		for _, n := range ns {
			m, err := runCell(env, sys, n, "")
			if err != nil {
				return fig, err
			}
			s.Y = append(s.Y, m.Throughput)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// RunFigure6 reproduces Figure 6: average response time of template Q4.2
// versus n — the predictability experiment (§6.2.2). A stddev series per
// system is appended, supporting the paper's deviation claims.
func RunFigure6(cfg Config, ns []int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = defaultNs(cfg.MaxConcurrent)
	}
	fig := Figure{
		ID:     "figure6",
		Title:  "Figure 6: predictability of query response time (template Q4.2)",
		XLabel: "concurrent queries (n)",
		YLabel: "response time (seconds)",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	for _, n := range ns {
		fig.X = append(fig.X, float64(n))
	}
	for _, sys := range allSystems {
		mean := Series{Name: sys}
		dev := Series{Name: sys + " stddev"}
		for _, n := range ns {
			m, err := runCell(env, sys, n, "Q4.2")
			if err != nil {
				return fig, err
			}
			st := m.AllLatency()
			mean.Y = append(mean.Y, st.Mean.Seconds())
			dev.Y = append(dev.Y, st.StdDev.Seconds())
		}
		fig.Series = append(fig.Series, mean, dev)
	}
	return fig, nil
}

// RunTable1 reproduces Table 1: CJOIN query submission time and response
// time for template Q4.2 as n grows (§6.2.2).
func RunTable1(cfg Config, ns []int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(ns) == 0 {
		ns = []int{32, 64, 128, 256}
	}
	fig := Figure{
		ID:     "table1",
		Title:  "Table 1: influence of concurrency on query submission time (CJOIN, Q4.2)",
		XLabel: "concurrent queries (n)",
		YLabel: "seconds",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	sub := Series{Name: "Submission time (s)"}
	resp := Series{Name: "Response time (s)"}
	for _, n := range ns {
		if n > cfg.MaxConcurrent {
			continue
		}
		fig.X = append(fig.X, float64(n))
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent}, "Q4.2")
		if err != nil {
			return fig, err
		}
		sub.Y = append(sub.Y, m.Submission.Seconds())
		resp.Y = append(resp.Y, m.AllLatency().Mean.Seconds())
	}
	fig.Series = []Series{sub, resp}
	return fig, nil
}

// RunFigure7 reproduces Figure 7: throughput versus predicate selectivity
// s for all three systems (§6.2.3).
func RunFigure7(cfg Config, sels []float64, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(sels) == 0 {
		sels = []float64{0.001, 0.01, 0.1}
	}
	if n <= 0 {
		n = 32
	}
	fig := Figure{
		ID:     "figure7",
		Title:  "Figure 7: influence of query selectivity on throughput",
		XLabel: "predicate selectivity (fraction)",
		YLabel: "throughput (queries/hour)",
	}
	for _, s := range sels {
		fig.X = append(fig.X, s)
	}
	for _, sys := range allSystems {
		series := Series{Name: sys}
		for _, s := range sels {
			c := cfg
			c.Selectivity = s
			env, err := NewEnv(c)
			if err != nil {
				return fig, err
			}
			m, err := runCell(env, sys, n, "")
			if err != nil {
				return fig, err
			}
			series.Y = append(series.Y, m.Throughput)
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunTable2 reproduces Table 2: CJOIN submission and response time as
// predicate selectivity grows (§6.2.3).
func RunTable2(cfg Config, sels []float64, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(sels) == 0 {
		sels = []float64{0.001, 0.01, 0.1}
	}
	if n <= 0 {
		n = 32
	}
	fig := Figure{
		ID:     "table2",
		Title:  "Table 2: influence of predicate selectivity on query submission time (CJOIN, Q4.2)",
		XLabel: "predicate selectivity (fraction)",
		YLabel: "seconds",
	}
	sub := Series{Name: "Submission time (s)"}
	resp := Series{Name: "Response time (s)"}
	for _, s := range sels {
		fig.X = append(fig.X, s)
		c := cfg
		c.Selectivity = s
		env, err := NewEnv(c)
		if err != nil {
			return fig, err
		}
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent}, "Q4.2")
		if err != nil {
			return fig, err
		}
		sub.Y = append(sub.Y, m.Submission.Seconds())
		resp.Y = append(resp.Y, m.AllLatency().Mean.Seconds())
	}
	fig.Series = []Series{sub, resp}
	return fig, nil
}

// RunFigure8 reproduces Figure 8: normalized throughput (throughput × sf)
// as the data scale factor grows (§6.2.4).
func RunFigure8(cfg Config, sfs []int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(sfs) == 0 {
		sfs = []int{1, 4, 16}
	}
	if n <= 0 {
		n = 32
	}
	fig := Figure{
		ID:     "figure8",
		Title:  "Figure 8: influence of data scale on throughput (normalized)",
		XLabel: "scale factor (sf)",
		YLabel: "throughput × sf (queries/hour)",
	}
	for _, sf := range sfs {
		fig.X = append(fig.X, float64(sf))
	}
	for _, sys := range allSystems {
		series := Series{Name: sys}
		for _, sf := range sfs {
			c := cfg
			c.SF = sf
			env, err := NewEnv(c)
			if err != nil {
				return fig, err
			}
			m, err := runCell(env, sys, n, "")
			if err != nil {
				return fig, err
			}
			series.Y = append(series.Y, m.Throughput*float64(sf))
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// RunTable3 reproduces Table 3: CJOIN submission and response time as the
// data scale factor grows (§6.2.4).
func RunTable3(cfg Config, sfs []int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(sfs) == 0 {
		sfs = []int{1, 4, 16}
	}
	if n <= 0 {
		n = 32
	}
	fig := Figure{
		ID:     "table3",
		Title:  "Table 3: influence of data scale on query submission overhead (CJOIN, Q4.2)",
		XLabel: "scale factor (sf)",
		YLabel: "seconds",
	}
	sub := Series{Name: "Submission time (s)"}
	resp := Series{Name: "Response time (s)"}
	for _, sf := range sfs {
		fig.X = append(fig.X, float64(sf))
		c := cfg
		c.SF = sf
		env, err := NewEnv(c)
		if err != nil {
			return fig, err
		}
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent}, "Q4.2")
		if err != nil {
			return fig, err
		}
		sub.Y = append(sub.Y, m.Submission.Seconds())
		resp.Y = append(resp.Y, m.AllLatency().Mean.Seconds())
	}
	fig.Series = []Series{sub, resp}
	return fig, nil
}

// RunDimAdmit measures the shared dimension plane: the same closed-loop
// workload over 1..N fact-partitioned pipelines, reporting per-query
// admission latency (both the end-to-end submission time and the plane's
// own dimension-admission wall time) and the peak resident bytes of the
// dimension stores. Before the plane, broadcasting a query re-ran
// Algorithm 1's dimension half on every shard — admission latency and
// dim-table memory both grew ×N; with admit-once both should stay
// roughly flat in shard count. Runs on an in-memory device unless a disk
// is modeled explicitly, for the same reason as RunShardScale.
//
// The figure additionally prices the batch-admission fast path: a
// repeated-template admission storm driven straight at a standalone
// plane — per-query Admit with the predicate cache disabled (the
// pre-batching behavior) versus AdmitBatch in rounds of
// admitBenchBatch with the cache on — reporting admitted queries/sec
// for both, the speedup, the cache hit ratio, and the mean batch size.
func RunDimAdmit(cfg Config, shards []int, n int) (Figure, error) {
	if !cfg.Disk.Enabled() {
		cfg.MemDisk = true
	}
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		shards = []int{1, 2, 4, 8}
	}
	shards = dealableShards(cfg, shards)
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "dimadmit",
		Title:  fmt.Sprintf("Dimension plane: admission cost, batch/cache throughput, resident bytes vs shard count (%d-query closed loop)", n),
		XLabel: "shards",
		YLabel: "µs per admission, admitted q/s, bytes",
	}
	sub := Series{Name: "submission (µs/query)"}
	admit := Series{Name: "plane admit (µs/query)"}
	bytesS := Series{Name: "plane peak bytes"}
	admits := Series{Name: "plane admissions"}
	perQ := Series{Name: "per-query admit (q/s, cache off)"}
	batched := Series{Name: "batched admit (q/s, cache on)"}
	speedup := Series{Name: "batch speedup (×)"}
	hitRatio := Series{Name: "cache hit ratio"}
	meanBatch := Series{Name: "mean batch size"}
	for _, ns := range shards {
		ecfg := cfg
		ecfg.Shards = ns
		env, err := NewEnv(ecfg)
		if err != nil {
			return fig, err
		}
		m, st, err := env.runExecutor("CJOIN", n, core.Config{}, "")
		if err != nil {
			return fig, fmt.Errorf("shards=%d: %w", ns, err)
		}
		var admitMicros float64
		if st.DimAdmits > 0 {
			admitMicros = float64(st.DimAdmitNanos) / float64(st.DimAdmits) / 1e3
		}
		ab, err := env.admitThroughput(ns)
		if err != nil {
			return fig, fmt.Errorf("shards=%d admit bench: %w", ns, err)
		}
		fig.X = append(fig.X, float64(ns))
		sub.Y = append(sub.Y, float64(m.Submission.Microseconds()))
		admit.Y = append(admit.Y, admitMicros)
		bytesS.Y = append(bytesS.Y, float64(st.PlanePeakBytes))
		admits.Y = append(admits.Y, float64(st.DimAdmits))
		perQ.Y = append(perQ.Y, ab.perQueryQPS)
		batched.Y = append(batched.Y, ab.batchedQPS)
		var x float64
		if ab.perQueryQPS > 0 {
			x = ab.batchedQPS / ab.perQueryQPS
		}
		speedup.Y = append(speedup.Y, x)
		hitRatio.Y = append(hitRatio.Y, ab.hitRatio)
		meanBatch.Y = append(meanBatch.Y, ab.meanBatch)
	}
	fig.Series = []Series{sub, admit, bytesS, admits, perQ, batched, speedup, hitRatio, meanBatch}
	return fig, nil
}

// Admission-storm shape: admitBenchDistinct templates cycle through the
// storm (a dashboard-style workload where predicate text repeats), each
// round fills every slot before retiring them all, and the batched
// variant drains admitBenchBatch queries per AdmitBatch round — the
// admission queue's drain bound in cmd/cjoind's -admit-batch default.
const (
	admitBenchDistinct = 8
	admitBenchBatch    = 16
	admitBenchRounds   = 4
)

// admitBench is one admitThroughput measurement.
type admitBench struct {
	perQueryQPS float64 // one-at-a-time Admit, predicate cache disabled
	batchedQPS  float64 // AdmitBatch rounds, predicate cache enabled
	hitRatio    float64 // cache hits / resolutions on the batched plane
	meanBatch   float64 // queries per AdmitBatch round observed
}

// admitThroughput measures pure admission throughput of the dimension
// plane under a repeated-template storm: only Admit/AdmitBatch wall
// time is on the clock (slot retirement between rounds is not — the
// quantity under test is Algorithm 1's dimension half, which batching
// and caching amortize). The plane is built with the given prober count
// so the slot ledger matches the sharded topology being swept.
func (e *Env) admitThroughput(probers int) (admitBench, error) {
	work, err := e.buildWork(1, "")
	if err != nil {
		return admitBench{}, err
	}
	if len(work) < admitBenchDistinct {
		return admitBench{}, fmt.Errorf("harness: %d bound queries, need %d", len(work), admitBenchDistinct)
	}
	work = work[:admitBenchDistinct]
	mc := e.Cfg.MaxConcurrent
	ctx := context.Background()
	star := e.Dataset.Star

	retireAll := func(pl *dimplane.Plane, slots []int) {
		for _, s := range slots {
			for p := 0; p < probers; p++ {
				pl.Retire(s)
			}
		}
	}

	var b admitBench
	// Baseline: the pre-batching path — one Admit per query, every
	// admission re-scans its dimension predicates.
	base := dimplane.New(star, probers, dimplane.Config{MaxConcurrent: mc, PredCacheSize: -1})
	var dur time.Duration
	total := 0
	for r := 0; r < admitBenchRounds; r++ {
		slots := make([]int, 0, mc)
		t0 := time.Now()
		for j := 0; j < mc; j++ {
			s, err := base.Admit(ctx, work[j%admitBenchDistinct].bound)
			if err != nil {
				return b, err
			}
			slots = append(slots, s)
		}
		dur += time.Since(t0)
		total += len(slots)
		retireAll(base, slots)
	}
	if dur > 0 {
		b.perQueryQPS = float64(total) / dur.Seconds()
	}

	// Batched: AdmitBatch in rounds of admitBenchBatch with the
	// predicate-scan cache on — one snapshot publication per store per
	// round, repeated templates resolved from the cache.
	pl := dimplane.New(star, probers, dimplane.Config{MaxConcurrent: mc, PredCacheSize: 0})
	dur, total = 0, 0
	for r := 0; r < admitBenchRounds; r++ {
		slots := make([]int, 0, mc)
		t0 := time.Now()
		for j := 0; j < mc; j += admitBenchBatch {
			k := admitBenchBatch
			if j+k > mc {
				k = mc - j
			}
			qs := make([]*query.Bound, k)
			for i := range qs {
				qs[i] = work[(j+i)%admitBenchDistinct].bound
			}
			ss, err := pl.AdmitBatch(ctx, qs)
			if err != nil {
				return b, err
			}
			slots = append(slots, ss...)
		}
		dur += time.Since(t0)
		total += len(slots)
		retireAll(pl, slots)
	}
	if dur > 0 {
		b.batchedQPS = float64(total) / dur.Seconds()
	}
	st := pl.Stats()
	if res := st.CacheHits + st.CacheMisses; res > 0 {
		b.hitRatio = float64(st.CacheHits) / float64(res)
	}
	if st.BatchAdmits > 0 {
		b.meanBatch = float64(st.BatchQueries) / float64(st.BatchAdmits)
	}
	return b, nil
}

// RunZoneMapSweep measures page-level zone-map pruning (PR 9): date-window
// join queries of decreasing width — w is the window's fraction of the date
// key span — run one at a time against the same date-clustered dataset with
// zone maps off (the §5 partition-granular baseline; on an unpartitioned
// heap, no pruning at all) versus on, reporting mean pages charged per
// query and mean response time for both. Every result is compared
// bit-exactly against internal/ref ground truth; any divergence aborts the
// sweep — a pruning optimization that changes answers is a bug, not a data
// point. Queries run sequentially so per-query page counts are exact and
// the two variants never contend for the simulated device.
func RunZoneMapSweep(cfg Config, widths []float64, qPerWidth int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(widths) == 0 {
		widths = []float64{1, 0.5, 0.25, 0.1, 0.05}
	}
	if qPerWidth <= 0 {
		qPerWidth = 6
	}
	fig := Figure{
		ID:     "zonemap",
		Title:  fmt.Sprintf("Zone-map pruning: pages charged and response time vs date-window width (%d queries per point)", qPerWidth),
		XLabel: "date window (fraction of key span)",
		YLabel: "pages/query, response ms, reduction %",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	keys := env.Dataset.DateKeys
	type zmQuery struct {
		width int // index into widths
		sql   string
		bound *query.Bound
		want  []agg.Result
	}
	var qs []zmQuery
	for wi, w := range widths {
		k := int(w * float64(len(keys)))
		if k < 1 {
			k = 1
		}
		if k > len(keys) {
			k = len(keys)
		}
		for i := 0; i < qPerWidth; i++ {
			// Window start slides across the key span so each width
			// samples several disjoint regions of the (date-clustered)
			// fact table, not just its head.
			lo := 0
			if qPerWidth > 1 {
				lo = i * (len(keys) - k) / (qPerWidth - 1)
			}
			sql := fmt.Sprintf(
				"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
				keys[lo], keys[lo+k-1])
			b, err := query.ParseBind(sql, env.Dataset.Star)
			if err != nil {
				return fig, fmt.Errorf("harness: %w", err)
			}
			b.Snapshot = env.Dataset.Txn.Begin()
			want, err := ref.Execute(b)
			if err != nil {
				return fig, err
			}
			qs = append(qs, zmQuery{width: wi, sql: sql, bound: b, want: want})
		}
	}
	// measure runs every query against one executor variant and returns
	// per-width means. Both variants are ref-checked bit-exactly, so
	// off/on parity is transitively exact.
	measure := func(disableZM bool) (pages, lat []float64, err error) {
		exec, err := env.NewExecutor(core.Config{DisableZoneMaps: disableZM})
		if err != nil {
			return nil, nil, err
		}
		defer exec.Stop()
		pages = make([]float64, len(widths))
		lat = make([]float64, len(widths))
		counts := make([]int, len(widths))
		for _, q := range qs {
			t0 := time.Now()
			h, err := exec.Submit(q.bound)
			if err != nil {
				return nil, nil, err
			}
			res := h.Wait()
			elapsed := time.Since(t0)
			if res.Err != nil {
				return nil, nil, res.Err
			}
			if !ref.ResultsEqual(res.Rows, q.want) {
				return nil, nil, fmt.Errorf("harness: zonemaps=%v diverges from reference on %q", !disableZM, q.sql)
			}
			pages[q.width] += float64(h.PagesScanned())
			lat[q.width] += float64(elapsed.Milliseconds())
			counts[q.width]++
		}
		for i := range pages {
			pages[i] /= float64(counts[i])
			lat[i] /= float64(counts[i])
		}
		return pages, lat, nil
	}
	pagesOff, latOff, err := measure(true)
	if err != nil {
		return fig, err
	}
	pagesOn, latOn, err := measure(false)
	if err != nil {
		return fig, err
	}
	reduction := make([]float64, len(widths))
	for i := range widths {
		if pagesOff[i] > 0 {
			reduction[i] = (pagesOff[i] - pagesOn[i]) / pagesOff[i] * 100
		}
	}
	fig.X = widths
	fig.Series = []Series{
		{Name: "pages/query (zonemaps off)", Y: pagesOff},
		{Name: "pages/query (zonemaps on)", Y: pagesOn},
		{Name: "page reduction (%)", Y: reduction},
		{Name: "response time off (ms)", Y: latOff},
		{Name: "response time on (ms)", Y: latOn},
	}
	return fig, nil
}

// dealableShards drops shard counts a partitioned star cannot run
// (shard.New needs at least one partition per shard), so a sweep like
// the default 1,2,4,8 over -partitions 4 measures every runnable point
// instead of aborting — and discarding completed points — at the first
// undealable one. The cap is reported, not silent.
func dealableShards(cfg Config, shards []int) []int {
	if cfg.Partitions <= 1 {
		return shards
	}
	var out []int
	for _, ns := range shards {
		if ns <= cfg.Partitions {
			out = append(out, ns)
		} else {
			fmt.Fprintf(os.Stderr,
				"harness: skipping shards=%d (only %d partitions to deal; run with more -partitions)\n",
				ns, cfg.Partitions)
		}
	}
	return out
}

// snapSum sums every snapshot entry whose key starts with prefix — one
// unlabeled series, or all the per-shard series of a labeled family.
func snapSum(snap map[string]float64, prefix string) float64 {
	var s float64
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			s += v
		}
	}
	return s
}

// histMean derives the mean observation of a (possibly shard-labeled)
// histogram family from a registry snapshot, in the family's unit.
func histMean(snap map[string]float64, name string) float64 {
	cnt := snapSum(snap, name+"_count")
	if cnt == 0 {
		return 0
	}
	return snapSum(snap, name+"_sum") / cnt
}

// RunObsOverhead measures the telemetry plane's hot-path cost: the
// RunShardScale workload run per shard count over identical datasets —
// instrumentation compiled down to no-ops (nil registry) versus fully
// enabled, best of a few repetitions each — reporting peak throughput
// for both and the relative overhead. The enabled run's registry snapshot also yields the
// per-stage breakdown (mean queue wait, plane admit, scan cycle, filter
// batch) that the metrics exist to provide, so one experiment both
// prices the telemetry and demonstrates it. Same in-memory-device
// rationale as RunShardScale: the hot-path cost being measured is CPU.
func RunObsOverhead(cfg Config, shards []int, n int) (Figure, error) {
	if !cfg.Disk.Enabled() {
		cfg.MemDisk = true
	}
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		shards = []int{1, 4}
	}
	if n <= 0 {
		n = 32
	}
	shards = dealableShards(cfg, shards)
	fig := Figure{
		ID:     "obsoverhead",
		Title:  fmt.Sprintf("Telemetry overhead: %d-query closed loop, metrics off vs on", n),
		XLabel: "shards",
		YLabel: "throughput (queries/hour), stage means",
	}
	off := Series{Name: "q/hour (obs off)"}
	on := Series{Name: "q/hour (obs on)"}
	ovh := Series{Name: "overhead (%)"}
	admit := Series{Name: "plane admit mean (µs)"}
	cycle := Series{Name: "scan cycle mean (ms)"}
	fbatch := Series{Name: "filter batch mean (µs)"}
	// Interleaved median-of-reps: a single closed loop over a small star
	// has more run-to-run variance (scheduler, page cache, allocator
	// growth) than the effect being priced, so each variant runs several
	// times with the off/on pairs alternated — machine-load drift hits
	// both sides equally — and the medians are compared.
	const reps = 5
	run := func(ecfg Config) (float64, error) {
		env, err := NewEnv(ecfg)
		if err != nil {
			return 0, err
		}
		m, _, err := env.runExecutor("CJOIN", n, core.Config{}, "")
		if err != nil {
			return 0, err
		}
		return m.Throughput, nil
	}
	median := func(xs []float64) float64 {
		sort.Float64s(xs)
		if n := len(xs); n%2 == 1 {
			return xs[n/2]
		} else {
			return (xs[n/2-1] + xs[n/2]) / 2
		}
	}
	for _, ns := range shards {
		ecfg := cfg
		ecfg.Shards = ns
		// Fresh registry per cell so stage means cover exactly this
		// cell's instrumented runs.
		reg := obs.NewRegistry()
		var offs, ons []float64
		for r := 0; r < reps; r++ {
			ecfg.Obs = nil
			t, err := run(ecfg)
			if err != nil {
				return fig, fmt.Errorf("shards=%d obs off: %w", ns, err)
			}
			offs = append(offs, t)
			ecfg.Obs = reg
			if t, err = run(ecfg); err != nil {
				return fig, fmt.Errorf("shards=%d obs on: %w", ns, err)
			}
			ons = append(ons, t)
		}
		tOff, tOn := median(offs), median(ons)
		snap := reg.Snapshot()
		fig.X = append(fig.X, float64(ns))
		off.Y = append(off.Y, tOff)
		on.Y = append(on.Y, tOn)
		var pct float64
		if tOff > 0 {
			pct = (tOff - tOn) / tOff * 100
		}
		ovh.Y = append(ovh.Y, pct)
		admit.Y = append(admit.Y, histMean(snap, "cjoin_dimplane_admit_seconds")*1e6)
		cycle.Y = append(cycle.Y, histMean(snap, "cjoin_scan_cycle_seconds")*1e3)
		fbatch.Y = append(fbatch.Y, histMean(snap, "cjoin_filter_batch_seconds")*1e6)
	}
	fig.Series = []Series{off, on, ovh, admit, cycle, fbatch}
	return fig, nil
}

// RunShardScale measures the sharded execution tier: the same closed-loop
// workload at concurrency n, run over 1..N fact-partitioned pipelines.
// It reports throughput and the aggregate scan rate (pages consumed per
// second across all shards) — the quantity the single-pipeline design
// bounds and sharding is meant to lift. With cfg.Partitions > 1 the fact
// table is range-partitioned and the group deals whole partitions to
// shards (pruning intact) instead of striding pages, so the same sweep
// measures the partition-dealt topology. The dataset lives on an
// unthrottled in-memory device unless the caller models a disk
// explicitly: on the simulated single spindle every shard serializes
// behind the same head, so the CPU scaling this experiment targets would
// be invisible.
func RunShardScale(cfg Config, shards []int, n int) (Figure, error) {
	if !cfg.Disk.Enabled() {
		cfg.MemDisk = true
	}
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		shards = []int{1, 2, 4, 8}
	}
	if n <= 0 {
		n = 32
	}
	shards = dealableShards(cfg, shards)
	topology := "page-strided"
	if cfg.Partitions > 1 {
		topology = fmt.Sprintf("partition-dealt (%d range partitions)", cfg.Partitions)
	}
	fig := Figure{
		ID:     "shardscale",
		Title:  fmt.Sprintf("Shard scaling: %d-query closed loop over N %s pipelines", n, topology),
		XLabel: "shards",
		YLabel: "throughput (queries/hour), scan rate (pages/s)",
	}
	thr := Series{Name: "CJOIN q/hour"}
	scan := Series{Name: "scan pages/s"}
	sub := Series{Name: "submission (s)"}
	for _, ns := range shards {
		ecfg := cfg
		ecfg.Shards = ns
		env, err := NewEnv(ecfg)
		if err != nil {
			return fig, err
		}
		m, st, err := env.runExecutor("CJOIN", n, core.Config{}, "")
		if err != nil {
			return fig, fmt.Errorf("shards=%d: %w", ns, err)
		}
		fig.X = append(fig.X, float64(ns))
		thr.Y = append(thr.Y, m.Throughput)
		scan.Y = append(scan.Y, float64(st.PagesRead)/m.Elapsed.Seconds())
		sub.Y = append(sub.Y, m.Submission.Seconds())
	}
	fig.Series = []Series{thr, scan, sub}
	return fig, nil
}
