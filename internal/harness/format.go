package harness

import (
	"fmt"
	"strings"
)

// Format renders the figure as an aligned text table: one row per x
// value, one column per series.
func (f Figure) Format() string {
	var sb strings.Builder
	sb.WriteString(f.Title)
	sb.WriteByte('\n')
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := [][]string{headers}
	for i, x := range f.X {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(headers))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&sb, "%-*s", widths[c]+2, cell)
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(fmt.Sprintf("(%s on the y-axis)\n", f.YLabel))
	return sb.String()
}

// CSV renders the figure as comma-separated values.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString(f.XLabel)
	for _, s := range f.Series {
		sb.WriteByte(',')
		sb.WriteString(s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		sb.WriteString(trimFloat(x))
		for _, s := range f.Series {
			sb.WriteByte(',')
			if i < len(s.Y) {
				sb.WriteString(fmt.Sprintf("%g", s.Y[i]))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SeriesByName returns the named series, or false.
func (f Figure) SeriesByName(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
