package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
)

// OverloadMetrics summarizes one offered-load cell of the serving-tier
// experiment.
type OverloadMetrics struct {
	Offered   int           // concurrently offered queries
	Capacity  int           // pipeline maxConc
	Rejected  int64         // should stay 0: overload queues, never errors
	MeanWait  time.Duration // mean admission-queue wait
	MaxWait   time.Duration
	MaxDepth  int           // queue high-water mark
	MeanResp  time.Duration // mean submit-to-result response time
	Elapsed   time.Duration
	QPerHour  float64
	Completed int64
}

// RunOverload measures the admission tier beyond pipeline capacity: for
// each offered load n (possibly >> maxConc) it submits n workload
// queries at once through an admission.Queue and records queue wait and
// response time. The paper stops its concurrency sweep at maxConc
// (§6.2.2) because CJOIN itself rejects query 257; this experiment
// documents the serving tier's extension of that curve — response time
// keeps growing linearly with offered load while rejections stay zero.
func RunOverload(cfg Config, ns []int) ([]OverloadMetrics, error) {
	cfg = cfg.withDefaults()
	env, err := NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	if len(ns) == 0 {
		mc := cfg.MaxConcurrent
		ns = []int{mc / 2, mc, 2 * mc, 4 * mc}
	}
	var out []OverloadMetrics
	for _, n := range ns {
		m, err := env.RunOverloadCell(n)
		if err != nil {
			return out, fmt.Errorf("overload n=%d: %w", n, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// RunOverloadCell runs one offered-load point on a fresh execution tier
// (a single pipeline, or a sharded group when Config.Shards > 1).
func (e *Env) RunOverloadCell(n int) (OverloadMetrics, error) {
	exec, err := e.NewExecutor(core.Config{})
	if err != nil {
		return OverloadMetrics{}, err
	}
	defer exec.Stop()
	q := admission.NewQueue(exec, admission.Config{MaxQueue: n + 1})

	work, err := e.buildWork(n, "")
	if err != nil {
		return OverloadMetrics{}, err
	}

	start := time.Now()
	var mu sync.Mutex
	var totalResp time.Duration
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		t, err := q.Submit(work[i].bound)
		if err != nil {
			return OverloadMetrics{}, err
		}
		wg.Add(1)
		go func(t *admission.Ticket, submitted time.Time) {
			defer wg.Done()
			res := t.Wait()
			mu.Lock()
			defer mu.Unlock()
			if res.Err == nil {
				totalResp += time.Since(submitted)
			}
		}(t, time.Now())
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := q.Stats()
	// All tickets are terminal; Close returns immediately and stops the
	// dispatcher goroutine so repeated cells do not leak.
	if err := q.Close(context.Background()); err != nil {
		return OverloadMetrics{}, err
	}
	m := OverloadMetrics{
		Offered:   n,
		Capacity:  e.Cfg.MaxConcurrent,
		Rejected:  st.Rejected,
		MeanWait:  st.MeanWait,
		MaxWait:   st.MaxWait,
		MaxDepth:  st.MaxDepth,
		Elapsed:   elapsed,
		Completed: st.Completed,
	}
	if st.Completed > 0 {
		m.MeanResp = totalResp / time.Duration(st.Completed)
		m.QPerHour = float64(st.Completed) / elapsed.Hours()
	}
	if st.Failed > 0 {
		return m, fmt.Errorf("%d queries failed", st.Failed)
	}
	return m, nil
}

// RunOverloadFigure renders the overload sweep as a Figure so
// cmd/cjoin-bench can emit it through the same text/CSV/JSON output path
// as the paper's figures — closing the ROADMAP item from the serving-
// tier PR.
func RunOverloadFigure(cfg Config, ns []int) (Figure, error) {
	fig := Figure{
		ID:     "overload",
		Title:  "Overload: admission tier beyond pipeline capacity (rejections must stay 0)",
		XLabel: "offered queries",
		YLabel: "ms (waits/response), count (depth/rejected), q/hour",
	}
	ms, err := RunOverload(cfg, ns)
	if err != nil {
		return fig, err
	}
	qph := Series{Name: "q/hour"}
	meanWait := Series{Name: "mean-wait-ms"}
	maxWait := Series{Name: "max-wait-ms"}
	meanResp := Series{Name: "mean-resp-ms"}
	depth := Series{Name: "max-depth"}
	rejected := Series{Name: "rejected"}
	for _, m := range ms {
		fig.X = append(fig.X, float64(m.Offered))
		qph.Y = append(qph.Y, m.QPerHour)
		meanWait.Y = append(meanWait.Y, float64(m.MeanWait)/float64(time.Millisecond))
		maxWait.Y = append(maxWait.Y, float64(m.MaxWait)/float64(time.Millisecond))
		meanResp.Y = append(meanResp.Y, float64(m.MeanResp)/float64(time.Millisecond))
		depth.Y = append(depth.Y, float64(m.MaxDepth))
		rejected.Y = append(rejected.Y, float64(m.Rejected))
	}
	fig.Series = []Series{qph, meanWait, maxWait, meanResp, depth, rejected}
	return fig, nil
}
