package harness

import "testing"

func TestAblationProbeSkip(t *testing.T) {
	fig, err := RunAblationProbeSkip(tinyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 2 || s.Y[0] <= 0 || s.Y[1] <= 0 {
		t.Fatalf("series %v", s)
	}
}

func TestAblationFilterTable(t *testing.T) {
	fig, err := RunAblationFilterTable(tinyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 2 || s.Y[0] <= 0 || s.Y[1] <= 0 {
		t.Fatalf("series %v", s)
	}
}

func TestAblationBatchSize(t *testing.T) {
	fig, err := RunAblationBatchSize(tinyConfig(), []int{8, 128}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 2 || fig.Series[0].Y[1] <= 0 {
		t.Fatalf("fig %v", fig)
	}
}

func TestAblationMaxConc(t *testing.T) {
	fig, err := RunAblationMaxConc(tinyConfig(), []int{16, 512}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Y) != 2 {
		t.Fatalf("fig %v", fig)
	}
	if _, err := RunAblationMaxConc(tinyConfig(), []int{2}, 4); err == nil {
		t.Fatal("width below concurrency must error")
	}
}

func TestAblationFilterOrder(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 4
	fig, err := RunAblationFilterOrder(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series[0].Y) != 2 {
		t.Fatalf("fig %v", fig)
	}
}

func TestAblationCompression(t *testing.T) {
	fig, err := RunAblationCompression(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("fig %v", fig)
	}
	ratio := fig.Series[1].Y
	if ratio[1] <= 1 {
		t.Fatalf("compression ratio %v", ratio)
	}
}
