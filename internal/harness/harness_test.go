package harness

import (
	"strings"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/engine"
)

// tinyConfig keeps harness tests fast: a small dataset and a mild disk
// model that still charges seeks.
func tinyConfig() Config {
	return Config{
		SF:            1,
		FactRowsPerSF: 1500,
		Selectivity:   0.05,
		Queries:       8,
		Seed:          3,
		MaxConcurrent: 16,
		PoolPages:     16,
		Disk:          disk.Config{SeqBytesPerSec: 4 << 30, SeekPenalty: 50 * time.Microsecond},
	}
}

func TestRunCJoinProducesMetrics(t *testing.T) {
	env, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := env.RunCJoin(4, core.Config{MaxConcurrent: 16}, "")
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 8 || m.Throughput <= 0 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Submission <= 0 {
		t.Fatal("submission time not measured")
	}
	if m.AllLatency().Count != 8 {
		t.Fatalf("latency samples %d", m.AllLatency().Count)
	}
}

func TestRunEngineProducesMetrics(t *testing.T) {
	env, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []engine.Config{engine.SystemXConfig(), engine.PostgresConfig()} {
		m, err := env.RunEngine(cfg, 2, "")
		if err != nil {
			t.Fatal(err)
		}
		if m.Queries != 8 || m.Throughput <= 0 {
			t.Fatalf("%s metrics %+v", cfg.Name, m)
		}
	}
}

func TestSingleTemplateWorkload(t *testing.T) {
	env, err := NewEnv(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := env.RunCJoin(2, core.Config{MaxConcurrent: 16}, "Q4.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Latency) != 1 {
		t.Fatalf("expected one template, got %v", m.Latency)
	}
	if _, ok := m.Latency["Q4.2"]; !ok {
		t.Fatal("Q4.2 missing")
	}
}

func TestFigureFormatAndCSV(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "Test figure", XLabel: "x", YLabel: "y",
		X: []float64{1, 2},
		Series: []Series{
			{Name: "a", Y: []float64{10, 20}},
			{Name: "b", Y: []float64{1.5, 2.5}},
		},
	}
	txt := fig.Format()
	for _, want := range []string{"Test figure", "a", "b", "10", "2.5"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Format missing %q:\n%s", want, txt)
		}
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n1,10,1.5\n") {
		t.Fatalf("CSV:\n%s", csv)
	}
	if _, ok := fig.SeriesByName("b"); !ok {
		t.Fatal("SeriesByName")
	}
	if _, ok := fig.SeriesByName("zz"); ok {
		t.Fatal("unknown series must be false")
	}
}

func TestRunTable1Smoke(t *testing.T) {
	cfg := tinyConfig()
	fig, err := RunTable1(cfg, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 2 || len(fig.Series) != 2 {
		t.Fatalf("table shape: %v", fig)
	}
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y < 0 {
				t.Fatal("negative time")
			}
		}
	}
}

func TestRunFigure4Smoke(t *testing.T) {
	cfg := tinyConfig()
	fig, err := RunFigure4(cfg, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := fig.SeriesByName("Horizontal")
	if !ok || len(h.Y) != 4 {
		t.Fatalf("horizontal series %v", h)
	}
	v, _ := fig.SeriesByName("Vertical")
	// Vertical is only runnable at >= 4 threads (4 SSB dimensions).
	for i := 0; i < 3; i++ {
		if v.Y[i] != 0 {
			t.Fatal("vertical must be absent below 4 threads")
		}
	}
	if v.Y[3] <= 0 {
		t.Fatal("vertical at 4 threads must run")
	}
}

func TestAllLatencyPooling(t *testing.T) {
	m := Metrics{Latency: map[string]LatencyStats{
		"a": {Count: 2, Mean: 10 * time.Millisecond, StdDev: 0},
		"b": {Count: 2, Mean: 20 * time.Millisecond, StdDev: 0},
	}}
	all := m.AllLatency()
	if all.Count != 4 {
		t.Fatalf("count %d", all.Count)
	}
	if all.Mean != 15*time.Millisecond {
		t.Fatalf("mean %v", all.Mean)
	}
	if all.StdDev != 5*time.Millisecond {
		t.Fatalf("pooled stddev %v", all.StdDev)
	}
}

func TestOverloadCellQueuesBeyondCapacity(t *testing.T) {
	env, err := NewEnv(Config{FactRowsPerSF: 1200, Queries: 8, MaxConcurrent: 2, Workers: 2,
		Disk: disk.Config{SeqBytesPerSec: 200 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := env.RunOverloadCell(8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected != 0 {
		t.Fatalf("rejections under overload: %+v", m)
	}
	if m.Completed != 8 {
		t.Fatalf("completed %d of 8", m.Completed)
	}
	if m.MaxDepth == 0 {
		t.Fatalf("no queueing at 4x capacity: %+v", m)
	}
}
