package harness

import (
	"fmt"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
)

// Ablation experiments isolate CJOIN design choices the paper calls out:
// the probe-skip test of §3.2.2, on-line filter reordering (§3.4), batch
// sizes in inter-thread hand-off (§4), the bit-vector width implied by
// maxConc (§6.2.2 blames bitmap ops for the sub-linear tail), and
// compressed fact pages (§5).

// RunAblationProbeSkip compares throughput with and without the §3.2.2
// probe-skip optimization under a mixed workload where queries leave
// different dimensions unreferenced.
func RunAblationProbeSkip(cfg Config, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-probeskip",
		Title:  "Ablation: probe-skip optimization (§3.2.2)",
		XLabel: "probe-skip enabled (1=yes)",
		YLabel: "throughput (queries/hour)",
		X:      []float64{0, 1},
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	s := Series{Name: "CJOIN"}
	for _, enabled := range []bool{false, true} {
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent, DisableProbeSkip: !enabled}, "")
		if err != nil {
			return fig, err
		}
		s.Y = append(s.Y, m.Throughput)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// RunAblationFilterTable compares the lock-free copy-on-write dimht
// Filter store against the legacy map + RWMutex baseline under a full
// workload, isolating the §4 claim that the Filter's specialized
// read-mostly data structures are what keep the probe path at memory
// speed.
func RunAblationFilterTable(cfg Config, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-filtertable",
		Title:  "Ablation: lock-free dimht vs map Filter store (§4)",
		XLabel: "dimht enabled (1=yes)",
		YLabel: "throughput (queries/hour)",
		X:      []float64{0, 1},
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	s := Series{Name: "CJOIN"}
	for _, enabled := range []bool{false, true} {
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent, LegacyMapFilter: !enabled}, "")
		if err != nil {
			return fig, err
		}
		s.Y = append(s.Y, m.Throughput)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// RunAblationBatchSize sweeps the pipeline batch size (§4: "reduce the
// overhead of queue synchronization by having each thread retrieve or
// deposit tuples in batches").
func RunAblationBatchSize(cfg Config, sizes []int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1, 16, 64, 256, 1024}
	}
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-batch",
		Title:  "Ablation: pipeline batch size (§4)",
		XLabel: "rows per batch",
		YLabel: "throughput (queries/hour)",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	s := Series{Name: "CJOIN"}
	for _, size := range sizes {
		fig.X = append(fig.X, float64(size))
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: cfg.MaxConcurrent, BatchRows: size}, "")
		if err != nil {
			return fig, err
		}
		s.Y = append(s.Y, m.Throughput)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// RunAblationMaxConc sweeps maxConc — and with it the bit-vector width —
// at fixed actual concurrency, isolating the bitmap-operation cost the
// paper holds responsible for the sub-linear tail at n=256 (§6.2.2).
func RunAblationMaxConc(cfg Config, widths []int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if len(widths) == 0 {
		widths = []int{64, 256, 1024, 4096}
	}
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-maxconc",
		Title:  "Ablation: bit-vector width (maxConc) at fixed concurrency",
		XLabel: "maxConc (bits per tuple vector)",
		YLabel: "throughput (queries/hour)",
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	s := Series{Name: "CJOIN"}
	for _, w := range widths {
		if w < n {
			return fig, fmt.Errorf("harness: width %d below concurrency %d", w, n)
		}
		fig.X = append(fig.X, float64(w))
		m, err := env.RunCJoin(n, core.Config{MaxConcurrent: w}, "")
		if err != nil {
			return fig, err
		}
		s.Y = append(s.Y, m.Throughput)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// RunAblationFilterOrder compares a pessimal static filter order against
// the on-line optimizer (§3.4) on a workload with one highly selective
// dimension. The workload joins all four dimensions but only the part
// dimension filters aggressively, so probing it first drops tuples early.
func RunAblationFilterOrder(cfg Config, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "ablation-order",
		Title:  "Ablation: on-line filter reordering (§3.4)",
		XLabel: "reordering enabled (1=yes)",
		YLabel: "mean response time (seconds)",
		X:      []float64{0, 1},
	}
	env, err := NewEnv(cfg)
	if err != nil {
		return fig, err
	}
	ds := env.Dataset

	// Selective on part (0.2%), wide on the rest.
	makeQuery := func(seed int64) (*query.Bound, error) {
		text := fmt.Sprintf(`SELECT SUM(lo_revenue), d_year FROM lineorder, customer, supplier, part, date
			WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey
			  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey
			  AND p_partkey BETWEEN %d AND %d
			GROUP BY d_year`, seed%ds.NumParts+1, seed%ds.NumParts+1)
		return query.ParseBind(text, ds.Star)
	}

	s := Series{Name: "CJOIN"}
	for _, enabled := range []bool{false, true} {
		coreCfg := core.Config{MaxConcurrent: cfg.MaxConcurrent}
		if enabled {
			coreCfg.OptimizeInterval = 5 * time.Millisecond
		} // zero leaves the optimizer off: the admission order sticks
		p, err := core.NewPipeline(ds.Star, coreCfg)
		if err != nil {
			return fig, err
		}
		p.Start()
		var total time.Duration
		count := 0
		for round := 0; round < cfg.Queries/n+1; round++ {
			handles := make([]core.Handle, 0, n)
			for i := 0; i < n; i++ {
				q, err := makeQuery(int64(round*n + i))
				if err != nil {
					p.Stop()
					return fig, err
				}
				h, err := p.Submit(q)
				if err != nil {
					p.Stop()
					return fig, err
				}
				handles = append(handles, h)
			}
			roundStart := time.Now()
			for _, h := range handles {
				if res := h.Wait(); res.Err != nil {
					p.Stop()
					return fig, res.Err
				}
			}
			total += time.Since(roundStart)
			count += n
		}
		p.Stop()
		s.Y = append(s.Y, (total / time.Duration(count/n)).Seconds())
	}
	fig.Series = []Series{s}
	return fig, nil
}
