package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
)

// updatesAppendBatch is the rows-per-append-commit of the bench writer;
// commits alternate one append batch with one single-row delete, so a
// sustained rate of R commits/s appends ~R*batch/2 and deletes ~R/2
// rows per second.
const updatesAppendBatch = 4

// writerStats is what the sustained writer achieved during one cell.
type writerStats struct {
	commits  int64
	appended int64
	deleted  int64
	elapsed  time.Duration
}

// runWriter issues snapshot-isolated commits at the target rate until
// stop closes: alternating AppendFact batches and sequential DeleteFact
// commits (a row is never deleted twice — re-stamping xmax would
// resurrect it for intermediate snapshots). rate <= 0 means off.
func (e *Env) runWriter(rate int, stop <-chan struct{}, errOut *error, st *writerStats) {
	if rate <= 0 {
		return
	}
	interval := time.Second / time.Duration(rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	wrng := rand.New(rand.NewSource(e.Cfg.Seed + 7919))
	var delCursor int64
	tick := time.NewTicker(interval)
	defer tick.Stop()
	start := time.Now()
	defer func() { st.elapsed = time.Since(start) }()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		if i%2 == 0 {
			if _, err := e.Dataset.AppendFact(updatesAppendBatch, wrng); err != nil {
				*errOut = err
				return
			}
			st.appended += updatesAppendBatch
		} else {
			if _, err := e.Dataset.DeleteFact(delCursor); err != nil {
				*errOut = err
				return
			}
			delCursor++
			st.deleted++
		}
		st.commits++
	}
}

// RunUpdates measures the HTAP write plane (§3.5): the closed-loop query
// workload at concurrency n, run once with the writer off (the read-only
// baseline) and once per swept sustained write rate. Each cell gets a
// fresh dataset so heap geometry is comparable; each query's snapshot is
// stamped at submission — never at batch dispatch — and after the loop
// quiesces every sampled query is re-executed through internal/ref at
// its own snapshot and compared bit-exactly. A write plane that corrupts
// any admitted query's answer aborts the sweep; it never becomes a data
// point.
func RunUpdates(cfg Config, rates []int, n int) (Figure, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions > 1 {
		return Figure{}, fmt.Errorf("harness: partitioned stars are static; -exp updates needs -partitions <= 1")
	}
	if len(rates) == 0 {
		rates = []int{0, 50, 200, 1000}
	}
	if n <= 0 {
		n = 16
	}
	fig := Figure{
		ID:     "updates",
		Title:  fmt.Sprintf("HTAP write plane: %d-query closed loop vs sustained commit rate (0 = writer off)", n),
		XLabel: "target write rate (commits/s)",
		YLabel: "queries/hour, ms, commits/s",
	}
	thr := Series{Name: "CJOIN q/hour"}
	lat := Series{Name: "response mean (ms)"}
	achieved := Series{Name: "achieved commits/s"}
	appended := Series{Name: "rows appended"}
	deleted := Series{Name: "rows deleted"}

	for _, rate := range rates {
		env, err := NewEnv(cfg)
		if err != nil {
			return fig, err
		}
		exec, err := env.NewExecutor(core.Config{})
		if err != nil {
			return fig, err
		}
		work, err := env.buildWork(n, "")
		if err != nil {
			exec.Stop()
			return fig, err
		}

		stop := make(chan struct{})
		var wErr error
		var wst writerStats
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			env.runWriter(rate, stop, &wErr, &wst)
		}()

		// Every query re-stamps its snapshot at submission and keeps its
		// result for the post-quiesce reference check.
		type executed struct {
			template string
			bound    *query.Bound
			rows     []agg.Result
		}
		var mu sync.Mutex
		var ran []executed
		samples, elapsed, err := env.closedLoop(n, work, func(item workItem) (time.Duration, error) {
			item.bound.Snapshot = env.Dataset.Txn.Begin()
			h, err := exec.Submit(item.bound)
			if err != nil {
				return 0, err
			}
			res := h.Wait()
			if res.Err != nil {
				return 0, res.Err
			}
			mu.Lock()
			ran = append(ran, executed{template: item.template, bound: item.bound, rows: res.Rows})
			mu.Unlock()
			return h.Submission(), nil
		})
		close(stop)
		wg.Wait()
		exec.Stop()
		if err != nil {
			return fig, fmt.Errorf("rate=%d: %w", rate, err)
		}
		if wErr != nil {
			return fig, fmt.Errorf("rate=%d writer: %w", rate, wErr)
		}
		// The heap is quiescent now; MVCC visibility at each query's own
		// snapshot must reproduce exactly what the live run answered.
		for _, ex := range ran {
			want, err := ref.Execute(ex.bound)
			if err != nil {
				return fig, fmt.Errorf("rate=%d ref: %w", rate, err)
			}
			if !ref.ResultsEqual(ex.rows, want) {
				return fig, fmt.Errorf("rate=%d: template %s diverges from reference at snapshot %d",
					rate, ex.template, ex.bound.Snapshot)
			}
		}
		m := summarize("CJOIN", n, samples, elapsed)
		fig.X = append(fig.X, float64(rate))
		thr.Y = append(thr.Y, m.Throughput)
		lat.Y = append(lat.Y, float64(m.AllLatency().Mean.Milliseconds()))
		var cps float64
		if wst.elapsed > 0 {
			cps = float64(wst.commits) / wst.elapsed.Seconds()
		}
		achieved.Y = append(achieved.Y, cps)
		appended.Y = append(appended.Y, float64(wst.appended))
		deleted.Y = append(deleted.Y, float64(wst.deleted))
	}
	fig.Series = []Series{thr, lat, achieved, appended, deleted}
	return fig, nil
}
