// Package harness drives the paper's evaluation (§6): it generates SSB
// datasets, runs closed-loop concurrent workloads against CJOIN and the
// two conventional baselines, and produces the series behind every figure
// and table in the evaluation section.
//
// Methodology follows §6.1.3: a workload is a deterministic stream of
// template-instantiated star queries; the degree of concurrency n is held
// constant by submitting the next query whenever one finishes; throughput
// is reported in queries/hour and predictability as the mean and standard
// deviation of per-template response times.
package harness

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/engine"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/query"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// Env is one experimental environment: a generated dataset plus the
// device cost model shared by all systems under test.
type Env struct {
	Dataset *ssb.Dataset
	Cfg     Config
}

// Config sizes an experiment. Defaults target seconds-scale bench runs;
// cmd/cjoin-bench raises them for paper-scale sweeps.
type Config struct {
	// SF is the SSB scale factor.
	SF int
	// FactRowsPerSF maps one sf unit to fact rows.
	FactRowsPerSF int
	// Selectivity is the predicate selectivity knob s (§6.1.2).
	Selectivity float64
	// Queries is the number of measured queries per data point.
	Queries int
	// Seed drives workload sampling.
	Seed int64
	// Disk is the device cost model. Zero value uses DefaultDisk.
	Disk disk.Config
	// MaxConcurrent bounds CJOIN registration slots; it must be at least
	// the largest n measured.
	MaxConcurrent int
	// Workers is the CJOIN horizontal stage thread count.
	Workers int
	// PoolPages is the baseline engines' buffer pool size.
	PoolPages int
	// Shards fans the execution tier out over this many fact-partitioned
	// pipelines (internal/shard). <= 1 keeps the paper's single pipeline.
	Shards int
	// Partitions range-partitions the fact table by order date into this
	// many heaps (§5). With Shards > 1 the group deals whole partitions
	// to shards instead of striding pages; requires Partitions >= Shards.
	Partitions int
	// MemDisk keeps the dataset on an unthrottled in-memory device
	// instead of the DefaultDisk cost model — for experiments that
	// measure CPU scaling of the pipelines themselves (e.g. shard
	// scan-rate scaling), where a simulated single spindle would
	// serialize all shards and measure only the device model.
	MemDisk bool
	// Chaos is a fault-injection spec (internal/fault grammar) armed on
	// every executor the harness builds — for measuring experiments
	// under injected faults. Empty runs clean.
	Chaos string
	// Obs, when non-nil, threads the telemetry registry through every
	// executor the harness builds, so an experiment can read per-stage
	// breakdowns from registry snapshots. Nil runs with instrumentation
	// compiled down to no-ops — the baseline for overhead measurement.
	Obs *obs.Registry
}

// DefaultDisk is the scaled device model: 100 MB/s sequential bandwidth
// with a 1 ms seek penalty — a disk-era seek:transfer asymmetry that
// penalizes interleaved scans, slow enough that the shared sequential
// scan (not pipeline CPU) dominates a CJOIN cycle, as in the paper's
// 100 GB testbed.
func DefaultDisk() disk.Config {
	return disk.Config{SeqBytesPerSec: 100 << 20, SeekPenalty: time.Millisecond}
}

func (c Config) withDefaults() Config {
	if c.SF <= 0 {
		c.SF = 1
	}
	if c.FactRowsPerSF <= 0 {
		c.FactRowsPerSF = 5000
	}
	if c.Selectivity <= 0 {
		c.Selectivity = 0.01
	}
	if c.Queries <= 0 {
		c.Queries = 48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if !c.Disk.Enabled() && !c.MemDisk {
		c.Disk = DefaultDisk()
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 256
	}
	if c.PoolPages <= 0 {
		// Far smaller than the fact table, as in any real warehouse
		// (the default 5000-row/sf fact table spans ~95 pages per sf),
		// but large enough to hold a few read-ahead extents so baseline
		// scans are not pathologically evicted mid-extent.
		c.PoolPages = 64
	}
	return c
}

// NewEnv generates the dataset for cfg.
func NewEnv(cfg Config) (*Env, error) {
	cfg = cfg.withDefaults()
	ds, err := ssb.Generate(ssb.Config{
		SF:            cfg.SF,
		FactRowsPerSF: cfg.FactRowsPerSF,
		Seed:          cfg.Seed,
		Partitions:    cfg.Partitions,
		Disk:          cfg.Disk,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Dataset: ds, Cfg: cfg}, nil
}

// Metrics summarizes one workload run.
type Metrics struct {
	System     string
	N          int           // degree of concurrency
	Queries    int           // measured queries
	Elapsed    time.Duration // wall-clock for the measured queries
	Throughput float64       // queries per hour
	// Per-template response time statistics.
	Latency map[string]LatencyStats
	// Submission is the mean query registration time (CJOIN only).
	Submission time.Duration
}

// LatencyStats is mean/stddev of response time for one query template.
type LatencyStats struct {
	Count  int
	Mean   time.Duration
	StdDev time.Duration
}

// AllLatency folds every template into one LatencyStats using a weighted
// mean and pooled variance.
func (m Metrics) AllLatency() LatencyStats {
	var n int
	var sum, sumSq float64
	for _, s := range m.Latency {
		n += s.Count
		sum += float64(s.Mean) * float64(s.Count)
		// E[X^2] = Var + Mean^2 per template
		sumSq += (float64(s.StdDev)*float64(s.StdDev) + float64(s.Mean)*float64(s.Mean)) * float64(s.Count)
	}
	if n == 0 {
		return LatencyStats{}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return LatencyStats{Count: n, Mean: time.Duration(mean), StdDev: time.Duration(math.Sqrt(variance))}
}

type sample struct {
	template   string
	latency    time.Duration
	submission time.Duration
}

func summarize(system string, n int, samples []sample, elapsed time.Duration) Metrics {
	m := Metrics{
		System:  system,
		N:       n,
		Queries: len(samples),
		Elapsed: elapsed,
		Latency: make(map[string]LatencyStats),
	}
	if elapsed > 0 {
		m.Throughput = float64(len(samples)) / elapsed.Hours()
	}
	byTpl := make(map[string][]time.Duration)
	var subSum time.Duration
	for _, s := range samples {
		byTpl[s.template] = append(byTpl[s.template], s.latency)
		subSum += s.submission
	}
	if len(samples) > 0 {
		m.Submission = subSum / time.Duration(len(samples))
	}
	for tpl, ls := range byTpl {
		m.Latency[tpl] = latencyStats(ls)
	}
	return m
}

func latencyStats(ls []time.Duration) LatencyStats {
	if len(ls) == 0 {
		return LatencyStats{}
	}
	var sum float64
	for _, l := range ls {
		sum += float64(l)
	}
	mean := sum / float64(len(ls))
	var sq float64
	for _, l := range ls {
		d := float64(l) - mean
		sq += d * d
	}
	return LatencyStats{
		Count:  len(ls),
		Mean:   time.Duration(mean),
		StdDev: time.Duration(math.Sqrt(sq / float64(len(ls)))),
	}
}

// workItem is one pre-bound query.
type workItem struct {
	template string
	bound    *query.Bound
}

// buildWork binds the measured queries from the workload stream. At
// least 2n queries are bound so the closed loop reaches steady state
// (§6.1.3 measures queries 256…512 at n = 256 for the same reason:
// arrivals must be staggered by completions, not aligned by the initial
// batch). onlyTpl, if non-empty, restricts the stream to one template
// (Figure 6/Table 1 measure Q4.2).
func (e *Env) buildWork(n int, onlyTpl string) ([]workItem, error) {
	total := e.Cfg.Queries
	if total < 2*n {
		total = 2 * n
	}
	w := ssb.NewWorkload(e.Dataset, e.Cfg.Selectivity, e.Cfg.Seed)
	items := make([]workItem, 0, total)
	for len(items) < total {
		var id, text string
		var err error
		if onlyTpl != "" {
			id = onlyTpl
			text, err = w.FromTemplate(onlyTpl)
			if err != nil {
				return nil, err
			}
		} else {
			id, text = w.Next()
		}
		b, err := query.ParseBind(text, e.Dataset.Star)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		b.Snapshot = e.Dataset.Txn.Begin()
		items = append(items, workItem{template: id, bound: b})
	}
	return items, nil
}

// normalizeCore fills pipeline defaults from the experiment config.
func (e *Env) normalizeCore(coreCfg core.Config) core.Config {
	if coreCfg.MaxConcurrent == 0 {
		coreCfg.MaxConcurrent = e.Cfg.MaxConcurrent
	}
	if coreCfg.Workers == 0 {
		coreCfg.Workers = e.Cfg.Workers
	}
	if coreCfg.OptimizeInterval == 0 {
		coreCfg.OptimizeInterval = 50 * time.Millisecond
	}
	return coreCfg
}

// NewExecutor builds the execution tier the experiment config asks for:
// a single pipeline, or a shard.Group when cfg.Shards > 1. The executor
// is started; the caller owns Stop.
func (e *Env) NewExecutor(coreCfg core.Config) (core.Executor, error) {
	coreCfg = e.normalizeCore(coreCfg)
	spec, err := fault.Parse(e.Cfg.Chaos)
	if err != nil {
		return nil, fmt.Errorf("harness: chaos spec: %v", err)
	}
	if e.Cfg.Shards > 1 {
		g, err := shard.New(e.Dataset.Star, shard.Config{Shards: e.Cfg.Shards, Core: coreCfg, Fault: spec, Obs: e.Cfg.Obs})
		if err != nil {
			return nil, err
		}
		g.Start()
		return g, nil
	}
	if spec != nil {
		spec.Obs = e.Cfg.Obs
	}
	coreCfg.Fault = spec.ForShard(0)
	coreCfg.Obs = e.Cfg.Obs
	p, err := core.NewPipeline(e.Dataset.Star, coreCfg)
	if err != nil {
		return nil, err
	}
	p.Start()
	return p, nil
}

// RunCJoin measures CJOIN at concurrency n with the given pipeline
// configuration (zero value: defaults). With Config.Shards > 1 the
// execution tier is a sharded group behind the same closed loop.
func (e *Env) RunCJoin(n int, coreCfg core.Config, onlyTpl string) (Metrics, error) {
	m, _, err := e.runExecutor("CJOIN", n, coreCfg, onlyTpl)
	return m, err
}

// runExecutor runs the closed-loop workload against the configured
// execution tier and additionally returns the executor's final counters
// (for scan-rate accounting).
func (e *Env) runExecutor(system string, n int, coreCfg core.Config, onlyTpl string) (Metrics, core.Stats, error) {
	exec, err := e.NewExecutor(coreCfg)
	if err != nil {
		return Metrics{}, core.Stats{}, err
	}
	defer exec.Stop()

	work, err := e.buildWork(n, onlyTpl)
	if err != nil {
		return Metrics{}, core.Stats{}, err
	}
	samples, elapsed, err := e.closedLoop(n, work, func(item workItem) (time.Duration, error) {
		h, err := exec.Submit(item.bound)
		if err != nil {
			return 0, err
		}
		res := h.Wait()
		if res.Err != nil {
			return 0, res.Err
		}
		return h.Submission(), nil
	})
	if err != nil {
		return Metrics{}, core.Stats{}, err
	}
	return summarize(system, n, samples, elapsed), exec.Stats(), nil
}

// RunEngine measures a conventional baseline at concurrency n. The
// harness imposes its buffer-pool budget so the fact:memory ratio of the
// warehouse regime is preserved at the experiment's data scale.
func (e *Env) RunEngine(engCfg engine.Config, n int, onlyTpl string) (Metrics, error) {
	engCfg.BufferPoolPages = e.Cfg.PoolPages
	eng := engine.New(e.Dataset.Star, engCfg)
	work, err := e.buildWork(n, onlyTpl)
	if err != nil {
		return Metrics{}, err
	}
	samples, elapsed, err := e.closedLoop(n, work, func(item workItem) (time.Duration, error) {
		_, err := eng.Execute(item.bound)
		return 0, err
	})
	if err != nil {
		return Metrics{}, err
	}
	return summarize(engCfg.Name, n, samples, elapsed), nil
}

// closedLoop keeps n queries outstanding until the work list drains
// (§6.1.3: "the client initially submits the first n queries of the
// workload in a batch, and then submits the next query in the workload
// whenever an outstanding query finishes").
func (e *Env) closedLoop(n int, work []workItem, run func(workItem) (time.Duration, error)) ([]sample, time.Duration, error) {
	if n < 1 {
		n = 1
	}
	next := make(chan workItem)
	results := make(chan sample, len(work))
	errCh := make(chan error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range next {
				if failed.Load() {
					continue // drain so the feeder never blocks
				}
				qStart := time.Now()
				sub, err := run(item)
				if err != nil {
					failed.Store(true)
					errCh <- err
					continue
				}
				results <- sample{template: item.template, latency: time.Since(qStart), submission: sub}
			}
		}()
	}
	for _, item := range work {
		next <- item
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, 0, err
	}
	var samples []sample
	for s := range results {
		samples = append(samples, s)
	}
	return samples, elapsed, nil
}
