// Package expr implements bound, typed expression trees evaluated over
// joined star rows.
//
// A bound expression references columns by (slot, index): slot 0 is the
// fact table, slot i+1 is dimension i of the star. Per-table selection
// predicates (the σ_cj of §2.1) are bound with the table's row in slot 0.
// Booleans are represented as int64 0/1.
package expr

import (
	"fmt"
	"strings"
)

// Joined is a fact row plus the dimension rows it joins to. Dimension
// slots may be nil when the query does not reference that dimension.
type Joined struct {
	Fact []int64
	Dims [][]int64
}

// Node is an expression evaluated over a joined row.
type Node interface {
	Eval(j *Joined) int64
	String() string
}

// Op enumerates binary operators.
type Op int

// Binary operators. Comparison and logical operators yield 0 or 1.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	And
	Or
)

var opNames = [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (o Op) String() string { return opNames[o] }

// Col references a column of the joined row.
type Col struct {
	Slot int    // 0 = fact, i+1 = dimension i
	Idx  int    // column index within the table (including hidden columns)
	Name string // for diagnostics
}

// Eval returns the referenced value. A nil table slot yields 0; binding
// guarantees referenced slots are populated, so this is defensive.
func (c Col) Eval(j *Joined) int64 {
	var row []int64
	if c.Slot == 0 {
		row = j.Fact
	} else if c.Slot-1 < len(j.Dims) {
		row = j.Dims[c.Slot-1]
	}
	if row == nil {
		return 0
	}
	return row[c.Idx]
}

func (c Col) String() string { return c.Name }

// Const is an int64 literal (possibly a dictionary-encoded string).
type Const struct {
	V   int64
	Str string // original string literal, if any, for diagnostics
}

// Eval returns the literal value.
func (k Const) Eval(*Joined) int64 { return k.V }

func (k Const) String() string {
	if k.Str != "" {
		return fmt.Sprintf("%q", k.Str)
	}
	return fmt.Sprintf("%d", k.V)
}

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Node
}

// Eval evaluates the operator with short-circuit AND/OR. Division by zero
// yields 0, mirroring the defensive convention of warehouse engines that
// must not abort a shared scan on one query's bad arithmetic.
func (b Bin) Eval(j *Joined) int64 {
	switch b.Op {
	case And:
		if b.L.Eval(j) == 0 {
			return 0
		}
		return boolToInt(b.R.Eval(j) != 0)
	case Or:
		if b.L.Eval(j) != 0 {
			return 1
		}
		return boolToInt(b.R.Eval(j) != 0)
	}
	l, r := b.L.Eval(j), b.R.Eval(j)
	switch b.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		if r == 0 {
			return 0
		}
		return l / r
	case Eq:
		return boolToInt(l == r)
	case Ne:
		return boolToInt(l != r)
	case Lt:
		return boolToInt(l < r)
	case Le:
		return boolToInt(l <= r)
	case Gt:
		return boolToInt(l > r)
	case Ge:
		return boolToInt(l >= r)
	}
	panic(fmt.Sprintf("expr: unknown op %d", b.Op))
}

func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Not negates a boolean operand.
type Not struct{ X Node }

// Eval returns 1 if X evaluates to 0, else 0.
func (n Not) Eval(j *Joined) int64 { return boolToInt(n.X.Eval(j) == 0) }

func (n Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// In tests membership of X in a literal set.
type In struct {
	X    Node
	Vals []int64
	set  map[int64]struct{}
}

// NewIn builds an In node with a hashed member set.
func NewIn(x Node, vals []int64) *In {
	set := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		set[v] = struct{}{}
	}
	return &In{X: x, Vals: vals, set: set}
}

// Eval returns 1 if X's value is in the set.
func (in *In) Eval(j *Joined) int64 {
	_, ok := in.set[in.X.Eval(j)]
	return boolToInt(ok)
}

func (in *In) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("(%s IN (%s))", in.X, strings.Join(parts, ", "))
}

// TRUE is the always-true predicate, used for queries that place no
// predicate on a table (c_ij ≡ TRUE in §2.1).
var TRUE Node = Const{V: 1}

// Between returns l <= x AND x <= h as an expression tree.
func Between(x Node, lo, hi int64) Node {
	return Bin{Op: And,
		L: Bin{Op: Ge, L: x, R: Const{V: lo}},
		R: Bin{Op: Le, L: x, R: Const{V: hi}},
	}
}

// AndAll conjoins the given predicates; an empty list yields TRUE.
func AndAll(preds []Node) Node {
	switch len(preds) {
	case 0:
		return TRUE
	case 1:
		return preds[0]
	}
	e := preds[0]
	for _, p := range preds[1:] {
		e = Bin{Op: And, L: e, R: p}
	}
	return e
}

// Predicate compiles a node into a boolean closure. Single-table
// predicates should be evaluated with EvalRow.
func Predicate(n Node) func(j *Joined) bool {
	return func(j *Joined) bool { return n.Eval(j) != 0 }
}

// EvalRow evaluates a single-table predicate (bound with slot 0) against
// one row of that table.
func EvalRow(n Node, row []int64) bool {
	j := Joined{Fact: row}
	return n.Eval(&j) != 0
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
