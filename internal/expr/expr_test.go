package expr

import (
	"testing"
	"testing/quick"
)

func col(idx int) Col { return Col{Slot: 0, Idx: idx, Name: "c"} }

func TestArithmetic(t *testing.T) {
	j := &Joined{Fact: []int64{6, 3}}
	cases := []struct {
		n    Node
		want int64
	}{
		{Bin{Op: Add, L: col(0), R: col(1)}, 9},
		{Bin{Op: Sub, L: col(0), R: col(1)}, 3},
		{Bin{Op: Mul, L: col(0), R: col(1)}, 18},
		{Bin{Op: Div, L: col(0), R: col(1)}, 2},
		{Bin{Op: Div, L: col(0), R: Const{V: 0}}, 0}, // div-by-zero convention
	}
	for _, c := range cases {
		if got := c.n.Eval(j); got != c.want {
			t.Errorf("%s = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	j := &Joined{Fact: []int64{5}}
	cases := []struct {
		op   Op
		r    int64
		want int64
	}{
		{Eq, 5, 1}, {Eq, 4, 0}, {Ne, 4, 1}, {Lt, 6, 1}, {Lt, 5, 0},
		{Le, 5, 1}, {Gt, 4, 1}, {Gt, 5, 0}, {Ge, 5, 1}, {Ge, 6, 0},
	}
	for _, c := range cases {
		n := Bin{Op: c.op, L: col(0), R: Const{V: c.r}}
		if got := n.Eval(j); got != c.want {
			t.Errorf("%s = %d, want %d", n, got, c.want)
		}
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// Right operand would divide by... rather, use a panic guard column
	// out of range to detect evaluation; instead verify truth table.
	j := &Joined{Fact: []int64{0, 1}}
	and := Bin{Op: And, L: col(0), R: col(1)}
	or := Bin{Op: Or, L: col(1), R: col(0)}
	if and.Eval(j) != 0 || or.Eval(j) != 1 {
		t.Fatal("AND/OR truth table broken")
	}
	if (Not{X: col(0)}).Eval(j) != 1 || (Not{X: col(1)}).Eval(j) != 0 {
		t.Fatal("NOT broken")
	}
}

func TestIn(t *testing.T) {
	in := NewIn(col(0), []int64{2, 4, 8})
	if !EvalRow(in, []int64{4}) || EvalRow(in, []int64{5}) {
		t.Fatal("IN membership wrong")
	}
}

func TestBetween(t *testing.T) {
	b := Between(col(0), 10, 20)
	for v, want := range map[int64]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if EvalRow(b, []int64{v}) != want {
			t.Errorf("between(%d) != %v", v, want)
		}
	}
}

func TestAndAll(t *testing.T) {
	if AndAll(nil) != TRUE {
		t.Fatal("empty AndAll must be TRUE")
	}
	p := AndAll([]Node{
		Bin{Op: Gt, L: col(0), R: Const{V: 1}},
		Bin{Op: Lt, L: col(0), R: Const{V: 5}},
	})
	if !EvalRow(p, []int64{3}) || EvalRow(p, []int64{5}) {
		t.Fatal("AndAll conjunction wrong")
	}
}

func TestDimSlots(t *testing.T) {
	j := &Joined{Fact: []int64{1}, Dims: [][]int64{{7, 8}, nil}}
	d0 := Col{Slot: 1, Idx: 1, Name: "d0.c1"}
	if d0.Eval(j) != 8 {
		t.Fatalf("dim slot read %d", d0.Eval(j))
	}
	// Missing dimension row reads as 0 (defensive).
	d1 := Col{Slot: 2, Idx: 0, Name: "d1.c0"}
	if d1.Eval(j) != 0 {
		t.Fatal("nil dim slot must read 0")
	}
}

// Property: Between(x, lo, hi) == (lo <= x && x <= hi) for random values.
func TestBetweenQuick(t *testing.T) {
	f := func(x, a, b int64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		want := x >= lo && x <= hi
		return EvalRow(Between(col(0), lo, hi), []int64{x}) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan — NOT(a AND b) == (NOT a) OR (NOT b).
func TestDeMorganQuick(t *testing.T) {
	f := func(a, b bool) bool {
		row := []int64{bool2i(a), bool2i(b)}
		lhs := Not{X: Bin{Op: And, L: col(0), R: col(1)}}
		rhs := Bin{Op: Or, L: Not{X: col(0)}, R: Not{X: col(1)}}
		return EvalRow(lhs, row) == EvalRow(rhs, row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func bool2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestStringForms(t *testing.T) {
	n := Bin{Op: And, L: Bin{Op: Ge, L: col(0), R: Const{V: 3}}, R: NewIn(col(1), []int64{1})}
	if n.String() == "" {
		t.Fatal("String must render")
	}
	if (Const{V: 1, Str: "ASIA"}).String() != `"ASIA"` {
		t.Fatal("string literal rendering")
	}
}
