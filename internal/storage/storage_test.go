package storage

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"cjoin/internal/disk"
)

func TestAppendAndScanRoundTrip(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 3)
	const n = 5000
	for i := int64(0); i < n; i++ {
		h.Append([]int64{i, i * 2, -i})
	}
	if h.NumRows() != n {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	s := NewScanner(h)
	var i int64
	for row, ok := s.Next(); ok; row, ok = s.Next() {
		if row[0] != i || row[1] != i*2 || row[2] != -i {
			t.Fatalf("row %d = %v", i, row)
		}
		i++
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if i != n {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestRowAtAcrossPages(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	const n = 3000
	for i := int64(0); i < n; i++ {
		h.Append([]int64{i, i % 7})
	}
	for _, idx := range []int64{0, 1, int64(h.RowsPerPage()) - 1, int64(h.RowsPerPage()), n - 1} {
		row, err := h.RowAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] != idx || row[1] != idx%7 {
			t.Fatalf("RowAt(%d) = %v", idx, row)
		}
	}
	if _, err := h.RowAt(n); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestTailVisibleWithoutFlush(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 1)
	h.Append([]int64{42})
	if h.NumPages() != 1 {
		t.Fatalf("pages %d", h.NumPages())
	}
	s := NewScanner(h)
	row, ok := s.Next()
	if !ok || row[0] != 42 {
		t.Fatalf("tail row not visible: %v %v", row, ok)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("only one row expected")
	}
}

func TestUpdateCol(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	const n = 2500
	for i := int64(0); i < n; i++ {
		h.Append([]int64{i, 0})
	}
	// One flushed-page row and one tail row.
	if err := h.UpdateCol(3, 1, 99); err != nil {
		t.Fatal(err)
	}
	if err := h.UpdateCol(n-1, 1, 77); err != nil {
		t.Fatal(err)
	}
	for idx, want := range map[int64]int64{3: 99, n - 1: 77, 4: 0} {
		row, err := h.RowAt(idx)
		if err != nil {
			t.Fatal(err)
		}
		if row[1] != want {
			t.Fatalf("row %d col1 = %d, want %d", idx, row[1], want)
		}
	}
	if err := h.UpdateCol(n, 0, 1); err == nil {
		t.Fatal("expected range error")
	}
	if err := h.UpdateCol(0, 5, 1); err == nil {
		t.Fatal("expected column error")
	}
}

func TestContinuousScannerWraps(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 1)
	const n = 2100
	for i := int64(0); i < n; i++ {
		h.Append([]int64{i})
	}
	c := NewContinuousScanner(h)
	var seen int64
	wraps := 0
	for wraps < 2 {
		vals, cnt, start, wrapped, err := c.NextPage()
		if err != nil {
			t.Fatal(err)
		}
		if wrapped {
			wraps++
			if seen%n != 0 {
				t.Fatalf("wrapped mid-cycle after %d rows", seen)
			}
			if wraps == 2 {
				break
			}
		}
		if start != (seen % n) {
			t.Fatalf("start pos %d, want %d", start, seen%n)
		}
		for i := 0; i < cnt; i++ {
			want := (seen % n)
			if vals[i] != want {
				t.Fatalf("row value %d, want %d", vals[i], want)
			}
			seen++
		}
	}
	if seen != 2*n {
		t.Fatalf("saw %d rows over 2 cycles", seen)
	}
}

func TestContinuousScannerSeesAppends(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 1)
	for i := int64(0); i < 10; i++ {
		h.Append([]int64{i})
	}
	c := NewContinuousScanner(h)
	if _, n, _, _, err := c.NextPage(); err != nil || n != 10 {
		t.Fatalf("first page n=%d err=%v", n, err)
	}
	h.Append([]int64{10})
	// Not wrapped yet: next page read should pick up the grown tail page.
	vals, n, start, wrapped, err := c.NextPage()
	if err != nil {
		t.Fatal(err)
	}
	if !wrapped || start != 0 || n != 11 || vals[10] != 10 {
		t.Fatalf("appended row not visible: n=%d start=%d wrapped=%v", n, start, wrapped)
	}
}

func TestConcurrentAppendAndScan(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	for i := int64(0); i < 1000; i++ {
		h.Append([]int64{i, 1})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1000); ; i++ {
			select {
			case <-stop:
				return
			default:
				h.Append([]int64{i, 1})
			}
		}
	}()
	// Contract under concurrent appends: every row that existed when the
	// scan started is seen exactly once, rows are strictly increasing,
	// and concurrently appended rows may be skipped (a later cycle — or
	// snapshot visibility — covers them).
	for r := 0; r < 20; r++ {
		s := NewScanner(h)
		var prev int64 = -1
		for row, ok := s.Next(); ok; row, ok = s.Next() {
			if row[0] <= prev {
				t.Errorf("non-increasing row %d after %d", row[0], prev)
				break
			}
			if prev < 1000 && row[0] != prev+1 {
				t.Errorf("pre-existing row gap: %d after %d", row[0], prev)
				break
			}
			prev = row[0]
		}
		if s.Err() != nil {
			t.Error(s.Err())
		}
		if prev < 999 {
			t.Errorf("scan ended early at row %d", prev)
		}
	}
	close(stop)
	wg.Wait()
}

// Property: any sequence of rows written is read back identically.
func TestRoundTripQuick(t *testing.T) {
	f := func(rows [][4]int64) bool {
		h := CreateHeap(disk.NewMem(), 4)
		for _, r := range rows {
			h.Append(r[:])
		}
		s := NewScanner(h)
		i := 0
		for row, ok := s.Next(); ok; row, ok = s.Next() {
			for c := 0; c < 4; c++ {
				if row[c] != rows[i][c] {
					return false
				}
			}
			i++
		}
		return i == len(rows) && s.Err() == nil
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestArityPanics(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity must panic")
		}
	}()
	h.Append([]int64{1})
}
