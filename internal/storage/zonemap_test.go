package storage

import (
	"math/rand"
	"testing"

	"cjoin/internal/disk"
)

// TestZoneMapBoundsExact verifies that every flushed page's synopsis is
// the exact min/max of the rows it holds, for both the raw and the RLE
// codec — bounds are computed on pre-encoded values, so compression must
// not change them.
func TestZoneMapBoundsExact(t *testing.T) {
	for _, codec := range []Codec{Raw, RLE} {
		h := CreateHeapCodec(disk.NewMem(), 3, codec)
		rng := rand.New(rand.NewSource(7))
		const n = 4000
		rows := make([][]int64, 0, n)
		for i := 0; i < n; i++ {
			row := []int64{rng.Int63n(1000) - 500, int64(i), rng.Int63n(5)}
			rows = append(rows, row)
			h.Append(row)
		}
		rpp := h.RowsPerPage()
		for page := 0; page < h.FlushedPages(); page++ {
			for col := 0; col < 3; col++ {
				wantMin, wantMax := rows[page*rpp][col], rows[page*rpp][col]
				for _, row := range rows[page*rpp : (page+1)*rpp] {
					if row[col] < wantMin {
						wantMin = row[col]
					}
					if row[col] > wantMax {
						wantMax = row[col]
					}
				}
				min, max, ok := h.PageColBounds(page, col)
				if !ok || min != wantMin || max != wantMax {
					t.Fatalf("codec %v page %d col %d: bounds [%d,%d] ok=%v, want [%d,%d]",
						codec, page, col, min, max, ok, wantMin, wantMax)
				}
			}
		}
	}
}

// TestZoneMapTailConservative pins the tail-page contract: the mutable
// in-memory tail has no published bounds (ok=false), as do pages that do
// not exist and out-of-range columns.
func TestZoneMapTailConservative(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	for i := int64(0); i < int64(h.RowsPerPage())+5; i++ {
		h.Append([]int64{i, -i})
	}
	if h.FlushedPages() != 1 || h.NumPages() != 2 {
		t.Fatalf("layout: %d flushed, %d total", h.FlushedPages(), h.NumPages())
	}
	if _, _, ok := h.PageColBounds(0, 0); !ok {
		t.Fatal("flushed page has no bounds")
	}
	if _, _, ok := h.PageColBounds(1, 0); ok {
		t.Fatal("tail page published bounds; readers would prune unflushed rows")
	}
	if _, _, ok := h.PageColBounds(2, 0); ok {
		t.Fatal("nonexistent page published bounds")
	}
	if _, _, ok := h.PageColBounds(0, 9); ok {
		t.Fatal("out-of-range column published bounds")
	}
}

// TestZoneMapUpdateColWidens verifies in-place updates keep the synopsis
// sound by widening: an update outside the page's current bounds extends
// them; bounds never shrink (stale-but-wide is conservative, not wrong).
func TestZoneMapUpdateColWidens(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	rpp := h.RowsPerPage()
	for i := 0; i < 2*rpp+3; i++ {
		h.Append([]int64{100, 200})
	}

	// Widen a flushed page down and up.
	if err := h.UpdateCol(1, 0, -7); err != nil {
		t.Fatal(err)
	}
	if err := h.UpdateCol(2, 0, 999); err != nil {
		t.Fatal(err)
	}
	min, max, ok := h.PageColBounds(0, 0)
	if !ok || min != -7 || max != 999 {
		t.Fatalf("page 0 bounds [%d,%d] ok=%v after updates, want [-7,999]", min, max, ok)
	}
	// An update inside the current bounds must not shrink them: the row
	// written at -7 still exists from the synopsis's point of view.
	if err := h.UpdateCol(1, 0, 100); err != nil {
		t.Fatal(err)
	}
	if min, _, _ := h.PageColBounds(0, 0); min != -7 {
		t.Fatalf("page 0 min %d after inside-bounds update, want -7 (widen-only)", min)
	}
	// Untouched page keeps its exact bounds.
	if min, max, _ := h.PageColBounds(1, 0); min != 100 || max != 100 {
		t.Fatalf("page 1 bounds [%d,%d], want [100,100]", min, max)
	}

	// Tail updates fold into the pending synopsis, surfaced at flush.
	if err := h.UpdateCol(int64(2*rpp), 1, -1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rpp-3; i++ {
		h.Append([]int64{100, 200})
	}
	if h.FlushedPages() != 3 {
		t.Fatalf("%d flushed pages, want 3", h.FlushedPages())
	}
	if min, max, _ := h.PageColBounds(2, 1); min != -1 || max != 200 {
		t.Fatalf("flushed tail bounds [%d,%d], want [-1,200]", min, max)
	}
}

// TestColBounds verifies the bulk accessor agrees with PageColBounds and
// rejects bad columns.
func TestColBounds(t *testing.T) {
	h := CreateHeap(disk.NewMem(), 2)
	for i := int64(0); i < 3000; i++ {
		h.Append([]int64{i, i % 11})
	}
	for col := 0; col < 2; col++ {
		bs, err := h.ColBounds(col)
		if err != nil {
			t.Fatal(err)
		}
		if len(bs) != h.FlushedPages() {
			t.Fatalf("col %d: %d entries, %d flushed pages", col, len(bs), h.FlushedPages())
		}
		for p, b := range bs {
			min, max, ok := h.PageColBounds(p, col)
			if !ok || b.Min != min || b.Max != max {
				t.Fatalf("col %d page %d: ColBounds [%d,%d] vs PageColBounds [%d,%d] ok=%v",
					col, p, b.Min, b.Max, min, max, ok)
			}
		}
	}
	if _, err := h.ColBounds(5); err == nil {
		t.Fatal("ColBounds(5) on a 2-column heap succeeded")
	}
}
