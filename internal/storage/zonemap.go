package storage

import "fmt"

// Zone maps (small materialized aggregates): every heap keeps a per-page,
// per-column min/max synopsis, computed incrementally as rows are appended
// and frozen when the page flushes. The synopsis is stored as a flat
// []int64 — 2*ncols values per flushed page — so a scan can test a page
// against a predicate range without touching the device. Bounds are
// computed on the pre-encoded values, so they are exact for every codec.
//
// The in-memory tail page is still mutable, so it deliberately has no
// published bounds: PageColBounds answers ok=false for it and readers must
// treat it as matching everything. UpdateCol only ever widens bounds, so a
// stale synopsis is conservative (less pruning), never unsound.

// PageBounds is the synopsis of one column over one flushed page.
type PageBounds struct {
	Min, Max int64
}

// PageColBounds returns the min/max of column col over the given flushed
// page. ok is false for the tail page, for pages that do not exist, and
// for out-of-range columns — callers must then assume the page can
// contain any value.
func (h *HeapFile) PageColBounds(page, col int) (min, max int64, ok bool) {
	if col < 0 || col >= h.ncols {
		return 0, 0, false
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if page < 0 || page >= len(h.pageOffs) {
		return 0, 0, false
	}
	i := (page*h.ncols + col) * 2
	return h.pageBounds[i], h.pageBounds[i+1], true
}

// ColBounds returns a copy of the synopsis for column col over all
// flushed pages, in page order. The tail page is excluded.
func (h *HeapFile) ColBounds(col int) ([]PageBounds, error) {
	if col < 0 || col >= h.ncols {
		return nil, fmt.Errorf("storage: ColBounds column %d out of range", col)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]PageBounds, len(h.pageOffs))
	for p := range out {
		i := (p*h.ncols + col) * 2
		out[p] = PageBounds{Min: h.pageBounds[i], Max: h.pageBounds[i+1]}
	}
	return out, nil
}

// boundsAppendLocked folds one appended row into the tail synopsis.
// Called with h.mu held, before tailRows is incremented.
func (h *HeapFile) boundsAppendLocked(row []int64) {
	if h.tailRows == 0 {
		copy(h.tailMin, row)
		copy(h.tailMax, row)
		return
	}
	for c, v := range row {
		if v < h.tailMin[c] {
			h.tailMin[c] = v
		}
		if v > h.tailMax[c] {
			h.tailMax[c] = v
		}
	}
}

// boundsFlushLocked freezes the tail synopsis as the flushed page's bounds.
func (h *HeapFile) boundsFlushLocked() {
	for c := 0; c < h.ncols; c++ {
		h.pageBounds = append(h.pageBounds, h.tailMin[c], h.tailMax[c])
	}
}

// boundsWidenLocked widens the synopsis covering (page, col) to admit v.
// In-place updates never recompute exact bounds — widening keeps the
// synopsis sound at the cost of pruning precision.
func (h *HeapFile) boundsWidenLocked(page, col int, v int64) {
	if page < len(h.pageOffs) {
		i := (page*h.ncols + col) * 2
		if v < h.pageBounds[i] {
			h.pageBounds[i] = v
		}
		if v > h.pageBounds[i+1] {
			h.pageBounds[i+1] = v
		}
		return
	}
	if h.tailRows > 0 {
		if v < h.tailMin[col] {
			h.tailMin[col] = v
		}
		if v > h.tailMax[col] {
			h.tailMax[col] = v
		}
	}
}
