package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cjoin/internal/disk"
)

func TestRLERoundTrip(t *testing.T) {
	const ncols, n = 3, 100
	src := make([]int64, n*ncols)
	for i := 0; i < n; i++ {
		src[i*ncols+0] = int64(i / 10) // runs of 10
		src[i*ncols+1] = 7             // one long run
		src[i*ncols+2] = int64(i)      // no runs
	}
	enc := encodeRLE(src, n, ncols, nil)
	dst := make([]int64, n*ncols)
	if err := decodeRLE(enc, n, ncols, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("value %d: %d != %d", i, dst[i], src[i])
		}
	}
}

// Property: RLE decode(encode(x)) == x for random pages.
func TestRLERoundTripQuick(t *testing.T) {
	f := func(data []int16, ncols8 uint8) bool {
		ncols := int(ncols8)%4 + 1
		n := len(data) / ncols
		if n == 0 {
			return true
		}
		src := make([]int64, n*ncols)
		for i := range src {
			src[i] = int64(data[i] % 9) // small domain → runs
		}
		enc := encodeRLE(src, n, ncols, nil)
		dst := make([]int64, n*ncols)
		if err := decodeRLE(enc, n, ncols, dst); err != nil {
			return false
		}
		for i := range src {
			if src[i] != dst[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRLECorruptInput(t *testing.T) {
	if err := decodeRLE([]byte{1, 2, 3}, 5, 1, make([]int64, 5)); err == nil {
		t.Fatal("truncated input must error")
	}
	// Run overshooting the row count.
	enc := encodeRLE([]int64{1, 1, 1}, 3, 1, nil)
	if err := decodeRLE(enc, 2, 1, make([]int64, 2)); err == nil {
		t.Fatal("overlong run must error")
	}
}

func TestCompressedHeapRoundTrip(t *testing.T) {
	h := CreateHeapCodec(disk.NewMem(), 4, RLE)
	const n = 5000
	for i := int64(0); i < n; i++ {
		// Warehouse-shaped data: constant, low-cardinality, and unique
		// columns mixed.
		h.Append([]int64{0, i % 7, i / 100, i})
	}
	s := NewScanner(h)
	var i int64
	for row, ok := s.Next(); ok; row, ok = s.Next() {
		if row[0] != 0 || row[1] != i%7 || row[2] != i/100 || row[3] != i {
			t.Fatalf("row %d = %v", i, row)
		}
		i++
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	if i != n {
		t.Fatalf("scanned %d rows", i)
	}
}

func TestCompressedHeapShrinks(t *testing.T) {
	rawHeap := CreateHeap(disk.NewMem(), 4)
	rleHeap := CreateHeapCodec(disk.NewMem(), 4, RLE)
	const n = 20000
	for i := int64(0); i < n; i++ {
		// Constant and clustered columns, the shapes RLE pays off on
		// (MVCC columns, dates, dictionary-encoded categories).
		row := []int64{0, 0, i / 100, i / 1000}
		rawHeap.Append(row)
		rleHeap.Append(row)
	}
	rawBytes, rleBytes := rawHeap.FlushedBytes(), rleHeap.FlushedBytes()
	if rleBytes*3 > rawBytes {
		t.Fatalf("RLE did not compress: raw=%d rle=%d", rawBytes, rleBytes)
	}
}

func TestIncompressiblePageStoredRaw(t *testing.T) {
	h := CreateHeapCodec(disk.NewMem(), 2, RLE)
	rng := rand.New(rand.NewSource(9))
	const n = 3000
	rows := make([][]int64, n)
	for i := range rows {
		rows[i] = []int64{rng.Int63(), rng.Int63()}
		h.Append(rows[i])
	}
	// Random data must round-trip through the raw fallback.
	s := NewScanner(h)
	i := 0
	for row, ok := s.Next(); ok; row, ok = s.Next() {
		if row[0] != rows[i][0] || row[1] != rows[i][1] {
			t.Fatalf("row %d mismatch", i)
		}
		i++
	}
	if i != n {
		t.Fatalf("scanned %d", i)
	}
}

func TestCompressedHeapRejectsUpdate(t *testing.T) {
	h := CreateHeapCodec(disk.NewMem(), 1, RLE)
	for i := int64(0); i < 3000; i++ {
		h.Append([]int64{1})
	}
	if err := h.UpdateCol(0, 0, 9); err == nil {
		t.Fatal("update of a flushed compressed page must error")
	}
	// Tail rows stay updatable.
	last := h.NumRows() - 1
	if err := h.UpdateCol(last, 0, 9); err != nil {
		t.Fatal(err)
	}
	row, err := h.RowAt(last)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 9 {
		t.Fatalf("tail update lost: %v", row)
	}
}

func TestCompressedHeapExtentUnsupported(t *testing.T) {
	h := CreateHeapCodec(disk.NewMem(), 1, RLE)
	for i := int64(0); i < 3000; i++ {
		h.Append([]int64{1})
	}
	if _, err := h.ReadExtent(0, 4, make([]byte, 4*PageSize)); err == nil {
		t.Fatal("extent reads on compressed heaps must error (callers fall back)")
	}
}
