// Package storage implements a row-store storage engine: fixed-width
// pages of int64 columns stored in heap files on a (simulated) disk
// device, plus sequential scanners.
//
// This is the substrate under both the conventional query-at-a-time engine
// and the CJOIN continuous scan. All column values are int64: string
// columns are dictionary-encoded by the catalog, a standard warehouse
// practice that the paper's compressed-tables extension (§5) also leans on.
package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"cjoin/internal/disk"
)

// PageSize is the on-disk page size in bytes.
const PageSize = 8192

// pageHeader is the per-page byte overhead: a uint32 row count.
const pageHeader = 4

// HeapFile stores fixed-width rows of ncols int64 values in PageSize
// pages on a device. Rows are append-only; pages other than the in-memory
// tail are always full. It is safe for concurrent appends and reads.
type HeapFile struct {
	dev         *disk.Device
	ncols       int
	width       int // bytes per row
	rowsPerPage int
	codec       Codec

	mu         sync.RWMutex
	pageOffs   []int64 // device offset of each flushed (full) page
	pageLens   []int32 // encoded length per flushed page (codec != Raw)
	flushedLen int64   // total bytes written for flushed pages
	tail       []byte  // partially filled page, not yet on the device
	tailRows   int
	nrows      int64

	// Zone-map synopsis (see zonemap.go): per flushed page, 2*ncols
	// values (min then max for each column); tailMin/tailMax track the
	// not-yet-flushed tail.
	pageBounds []int64
	tailMin    []int64
	tailMax    []int64
}

// CreateHeap creates an empty raw heap for rows of ncols columns on dev.
func CreateHeap(dev *disk.Device, ncols int) *HeapFile {
	return CreateHeapCodec(dev, ncols, Raw)
}

// CreateHeapCodec creates an empty heap using the given page codec.
// Compressed heaps (§5 "Compressed Tables") are append-only: in-place
// updates of flushed pages are rejected.
func CreateHeapCodec(dev *disk.Device, ncols int, codec Codec) *HeapFile {
	if ncols <= 0 {
		panic("storage: heap needs at least one column")
	}
	width := 8 * ncols
	headroom := pageHeader
	if codec != Raw {
		// Leave room so a stored-raw fallback page (5-byte header) never
		// exceeds PageSize, keeping every caller's scratch buffer valid.
		headroom = 16
	}
	rpp := (PageSize - headroom) / width
	if rpp < 1 {
		panic(fmt.Sprintf("storage: row width %d exceeds page capacity", width))
	}
	return &HeapFile{
		dev:         dev,
		ncols:       ncols,
		width:       width,
		rowsPerPage: rpp,
		codec:       codec,
		tail:        make([]byte, PageSize),
		tailMin:     make([]int64, ncols),
		tailMax:     make([]int64, ncols),
	}
}

// Codec returns the heap's page codec.
func (h *HeapFile) Codec() Codec { return h.codec }

// FlushedBytes returns the total device bytes occupied by flushed pages —
// for a compressed heap, the post-compression footprint the continuous
// scan actually transfers.
func (h *HeapFile) FlushedBytes() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.flushedLen
}

// NumCols returns the number of columns per row.
func (h *HeapFile) NumCols() int { return h.ncols }

// RowsPerPage returns the row capacity of a full page.
func (h *HeapFile) RowsPerPage() int { return h.rowsPerPage }

// NumRows returns the current number of rows.
func (h *HeapFile) NumRows() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nrows
}

// FlushedPages returns the number of full pages on the device. Pages at
// or beyond this index (the in-memory tail) are still mutable and must not
// be cached by buffer pools.
func (h *HeapFile) FlushedPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pageOffs)
}

// NumPages returns the number of pages, counting a non-empty tail.
func (h *HeapFile) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.numPagesLocked()
}

func (h *HeapFile) numPagesLocked() int {
	n := len(h.pageOffs)
	if h.tailRows > 0 {
		n++
	}
	return n
}

// Append adds one row. It panics if the row has the wrong arity; that is
// a programming error, not an environmental failure.
func (h *HeapFile) Append(row []int64) {
	if len(row) != h.ncols {
		panic(fmt.Sprintf("storage: Append arity %d, heap has %d columns", len(row), h.ncols))
	}
	h.mu.Lock()
	h.appendLocked(row)
	h.mu.Unlock()
}

// AppendBatch adds rows in order.
func (h *HeapFile) AppendBatch(rows [][]int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, row := range rows {
		if len(row) != h.ncols {
			panic(fmt.Sprintf("storage: AppendBatch arity %d, heap has %d columns", len(row), h.ncols))
		}
		h.appendLocked(row)
	}
}

func (h *HeapFile) appendLocked(row []int64) {
	base := pageHeader + h.tailRows*h.width
	for c, v := range row {
		binary.LittleEndian.PutUint64(h.tail[base+8*c:], uint64(v))
	}
	h.boundsAppendLocked(row)
	h.tailRows++
	h.nrows++
	binary.LittleEndian.PutUint32(h.tail, uint32(h.tailRows))
	if h.tailRows == h.rowsPerPage {
		h.boundsFlushLocked()
		if h.codec == Raw {
			off := h.dev.Append(h.tail)
			h.pageOffs = append(h.pageOffs, off)
			h.flushedLen += PageSize
		} else {
			vals := make([]int64, h.tailRows*h.ncols)
			DecodeRows(h.tail[pageHeader:], vals)
			enc := encodePage(h.codec, h.tail, vals, h.tailRows, h.ncols)
			off := h.dev.Append(enc)
			h.pageOffs = append(h.pageOffs, off)
			h.pageLens = append(h.pageLens, int32(len(enc)))
			h.flushedLen += int64(len(enc))
		}
		h.tail = make([]byte, PageSize)
		h.tailRows = 0
	}
}

// UpdateCol overwrites column col of the row at global index idx. It is
// used by the snapshot manager to set xmax on deleted fact tuples.
func (h *HeapFile) UpdateCol(idx int64, col int, v int64) error {
	if col < 0 || col >= h.ncols {
		return fmt.Errorf("storage: UpdateCol column %d out of range", col)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if idx < 0 || idx >= h.nrows {
		return fmt.Errorf("storage: UpdateCol row %d out of range (nrows %d)", idx, h.nrows)
	}
	page := int(idx) / h.rowsPerPage
	slot := int(idx) % h.rowsPerPage
	if page < len(h.pageOffs) {
		if h.codec != Raw {
			return fmt.Errorf("storage: UpdateCol on a flushed page of a compressed heap (append-only)")
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		off := h.pageOffs[page] + int64(pageHeader+slot*h.width+8*col)
		if err := h.dev.WriteAt(buf[:], off); err != nil {
			return err
		}
		h.boundsWidenLocked(page, col, v)
		return nil
	}
	binary.LittleEndian.PutUint64(h.tail[pageHeader+slot*h.width+8*col:], uint64(v))
	h.boundsWidenLocked(page, col, v)
	return nil
}

// ReadPage fills dst with the decoded rows of the given page and returns
// the number of rows. dst must have capacity for RowsPerPage()*NumCols()
// values; scratch must be at least PageSize bytes and is reused across
// calls to avoid allocation. Reading the tail page copies from memory and
// performs no device I/O.
func (h *HeapFile) ReadPage(page int, dst []int64, scratch []byte) (int, error) {
	h.mu.RLock()
	flushed := len(h.pageOffs)
	var off int64 = -1
	var encLen int
	var n int
	if page < flushed {
		off = h.pageOffs[page]
		if h.codec != Raw {
			encLen = int(h.pageLens[page])
		}
		n = h.rowsPerPage
	} else if page == flushed && h.tailRows > 0 {
		n = h.tailRows
		copy(scratch, h.tail[:pageHeader+n*h.width])
	} else {
		h.mu.RUnlock()
		return 0, fmt.Errorf("storage: page %d out of range (%d pages)", page, h.numPagesLocked())
	}
	h.mu.RUnlock()

	switch {
	case off >= 0 && h.codec != Raw:
		// On-the-fly decompression of the transferred bytes (§5).
		if err := h.dev.ReadAt(scratch[:encLen], off); err != nil {
			return 0, err
		}
		return decodePage(scratch[:encLen], h.ncols, h.rowsPerPage, dst)
	case off >= 0:
		if err := h.dev.ReadAt(scratch[:PageSize], off); err != nil {
			return 0, err
		}
		n = int(binary.LittleEndian.Uint32(scratch))
		if n > h.rowsPerPage {
			return 0, fmt.Errorf("storage: corrupt page %d: %d rows", page, n)
		}
	}
	DecodeRows(scratch[pageHeader:], dst[:n*h.ncols])
	return n, nil
}

// ReadExtent reads up to count flushed pages starting at page into buf
// (which needs count*PageSize bytes) using a single device request, the
// way a scan with OS read-ahead would. It stops early at the first
// non-contiguous page and returns how many pages were read.
func (h *HeapFile) ReadExtent(page, count int, buf []byte) (int, error) {
	if h.codec != Raw {
		// Variable-length encoded pages are read one at a time; callers
		// fall back to ReadPage.
		return 0, fmt.Errorf("storage: ReadExtent unsupported on compressed heaps")
	}
	h.mu.RLock()
	flushed := len(h.pageOffs)
	if page < 0 || page >= flushed {
		h.mu.RUnlock()
		return 0, fmt.Errorf("storage: extent start %d outside flushed pages (%d)", page, flushed)
	}
	k := 1
	for k < count && page+k < flushed && h.pageOffs[page+k] == h.pageOffs[page]+int64(k)*PageSize {
		k++
	}
	off := h.pageOffs[page]
	h.mu.RUnlock()
	if err := h.dev.ReadAt(buf[:k*PageSize], off); err != nil {
		return 0, err
	}
	return k, nil
}

// RowAt returns a copy of the row at global index idx (page-major order).
// It is intended for tests and point lookups on small tables.
func (h *HeapFile) RowAt(idx int64) ([]int64, error) {
	if idx < 0 || idx >= h.NumRows() {
		return nil, fmt.Errorf("storage: row %d out of range", idx)
	}
	page := int(idx) / h.rowsPerPage
	slot := int(idx) % h.rowsPerPage
	dst := make([]int64, h.rowsPerPage*h.ncols)
	scratch := make([]byte, PageSize)
	n, err := h.ReadPage(page, dst, scratch)
	if err != nil {
		return nil, err
	}
	if slot >= n {
		return nil, fmt.Errorf("storage: slot %d past page end %d", slot, n)
	}
	row := make([]int64, h.ncols)
	copy(row, dst[slot*h.ncols:(slot+1)*h.ncols])
	return row, nil
}

// PageOffset returns the device offset of a flushed page, or -1 for the
// in-memory tail. Exposed so scanners can coalesce contiguous reads.
func (h *HeapFile) PageOffset(page int) int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if page < len(h.pageOffs) {
		return h.pageOffs[page]
	}
	return -1
}

// DecodeRows decodes little-endian int64s from src into dst.
func DecodeRows(src []byte, dst []int64) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
}
