package storage

// Scanner iterates over the rows of a heap file in page-major order,
// reading one page of device I/O at a time. The row slice returned by
// Next aliases internal buffers and is valid only until the next call.
type Scanner struct {
	h       *HeapFile
	page    int
	maxPage int // exclusive; -1 means "to the end as of each page read"
	vals    []int64
	scratch []byte
	n       int // rows in current page
	i       int // next row in current page
	ncols   int
	err     error
}

// NewScanner returns a scanner positioned before the first row.
func NewScanner(h *HeapFile) *Scanner {
	return &Scanner{
		h:       h,
		maxPage: -1,
		vals:    make([]int64, h.RowsPerPage()*h.NumCols()),
		scratch: make([]byte, PageSize),
		ncols:   h.NumCols(),
	}
}

// Next returns the next row, or false at the end of the heap or on error.
func (s *Scanner) Next() ([]int64, bool) {
	for s.i >= s.n {
		limit := s.maxPage
		if limit < 0 {
			limit = s.h.NumPages()
		}
		if s.page >= limit {
			return nil, false
		}
		n, err := s.h.ReadPage(s.page, s.vals, s.scratch)
		if err != nil {
			s.err = err
			return nil, false
		}
		s.page++
		s.n = n
		s.i = 0
	}
	row := s.vals[s.i*s.ncols : (s.i+1)*s.ncols]
	s.i++
	return row, true
}

// Err returns the first error encountered by Next, if any.
func (s *Scanner) Err() error { return s.err }

// ContinuousScanner cycles over a heap file forever, in the stable
// page-major order that §3.3.3 requires ("the continuous scan returns fact
// tuples in the same order once resumed"). It reports the absolute row
// position of each batch so the CJOIN Preprocessor can mark query start
// points and detect wrap-around. Rows appended while the scan runs are
// picked up when the scan reaches them; snapshot visibility is the
// caller's concern.
type ContinuousScanner struct {
	h       *HeapFile
	page    int
	vals    []int64
	scratch []byte
	ncols   int
}

// NewContinuousScanner returns a continuous scanner starting at row 0.
func NewContinuousScanner(h *HeapFile) *ContinuousScanner {
	return &ContinuousScanner{
		h:       h,
		vals:    make([]int64, h.RowsPerPage()*h.NumCols()),
		scratch: make([]byte, PageSize),
		ncols:   h.NumCols(),
	}
}

// NextPage reads the next page in the cycle. It returns the decoded
// column values (aliasing an internal buffer), the number of rows, the
// absolute position of the page's first row, and whether the scan wrapped
// to row 0 to produce this page. On an empty heap it returns n == 0.
func (c *ContinuousScanner) NextPage() (vals []int64, n int, startPos int64, wrapped bool, err error) {
	total := c.h.NumPages()
	if total == 0 {
		return nil, 0, 0, false, nil
	}
	if c.page >= total {
		c.page = 0
		wrapped = true
	}
	startPos = int64(c.page) * int64(c.h.RowsPerPage())
	n, err = c.h.ReadPage(c.page, c.vals, c.scratch)
	if err != nil {
		return nil, 0, 0, wrapped, err
	}
	c.page++
	return c.vals, n, startPos, wrapped, nil
}

// Position returns the absolute row position the scan will read next.
func (c *ContinuousScanner) Position() int64 {
	total := c.h.NumPages()
	if total == 0 || c.page >= total {
		return 0
	}
	return int64(c.page) * int64(c.h.RowsPerPage())
}
