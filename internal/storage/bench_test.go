package storage

import (
	"testing"

	"cjoin/internal/disk"
)

func benchHeap(b *testing.B, codec Codec) *HeapFile {
	b.Helper()
	h := CreateHeapCodec(disk.NewMem(), 19, codec)
	for i := int64(0); i < 20000; i++ {
		row := make([]int64, 19)
		row[7] = i / 8 // clustered date-like column
		row[10] = i % 50
		row[14] = i * 37 % 10000
		h.Append(row)
	}
	return h
}

// BenchmarkScanRaw measures the raw sequential scan the continuous scan
// performs every cycle.
func BenchmarkScanRaw(b *testing.B) {
	h := benchHeap(b, Raw)
	dst := make([]int64, h.RowsPerPage()*19)
	scratch := make([]byte, PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < h.NumPages(); p++ {
			if _, err := h.ReadPage(p, dst, scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(h.NumPages()) * PageSize)
}

// BenchmarkScanRLE measures the same scan with on-the-fly decompression
// (§5 "Compressed Tables").
func BenchmarkScanRLE(b *testing.B) {
	h := benchHeap(b, RLE)
	dst := make([]int64, h.RowsPerPage()*19)
	scratch := make([]byte, PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < h.NumPages(); p++ {
			if _, err := h.ReadPage(p, dst, scratch); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(h.FlushedBytes())
}

func BenchmarkAppend(b *testing.B) {
	h := CreateHeap(disk.NewMem(), 19)
	row := make([]int64, 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Append(row)
	}
}
