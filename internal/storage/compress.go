package storage

import (
	"encoding/binary"
	"fmt"
)

// Codec selects the on-disk page representation. The paper's compressed
// tables extension (§5) notes that "the continuous scan can bring in
// compressed tuples and decompress on-demand and on-the-fly"; compressed
// heaps transfer fewer bytes per page over the device, which is exactly
// the benefit a bandwidth-bound warehouse scan sees.
type Codec int

const (
	// Raw stores fixed-width little-endian rows.
	Raw Codec = iota
	// RLE stores pages in a PAX-style column-major layout with
	// run-length encoding per column — effective on dictionary-encoded
	// and low-cardinality warehouse columns. Pages that would not
	// shrink are stored raw (a one-byte header tags the format).
	RLE
)

const (
	pageFmtRaw byte = 0
	pageFmtRLE byte = 1 // whole-page column-major RLE (all columns)
	pageFmtCol byte = 2 // per-column choice of RLE or raw
)

const (
	colRaw byte = 0
	colRLE byte = 1
)

// encodeRLE compresses a page of n rows (row-major in src, ncols columns)
// into dst. The layout is: per column, a sequence of (runLength uint32,
// value int64) pairs. Returns the encoded bytes (appended to dst).
func encodeRLE(src []int64, n, ncols int, dst []byte) []byte {
	var buf [12]byte
	for c := 0; c < ncols; c++ {
		i := 0
		for i < n {
			v := src[i*ncols+c]
			run := 1
			for i+run < n && src[(i+run)*ncols+c] == v {
				run++
			}
			binary.LittleEndian.PutUint32(buf[0:], uint32(run))
			binary.LittleEndian.PutUint64(buf[4:], uint64(v))
			dst = append(dst, buf[:]...)
			i += run
		}
	}
	return dst
}

// decodeRLE expands an RLE page of n rows and ncols columns into dst
// (row-major).
func decodeRLE(src []byte, n, ncols int, dst []int64) error {
	pos := 0
	for c := 0; c < ncols; c++ {
		row := 0
		for row < n {
			if pos+12 > len(src) {
				return fmt.Errorf("storage: truncated RLE page (col %d row %d)", c, row)
			}
			run := int(binary.LittleEndian.Uint32(src[pos:]))
			v := int64(binary.LittleEndian.Uint64(src[pos+4:]))
			pos += 12
			if run <= 0 || row+run > n {
				return fmt.Errorf("storage: corrupt RLE run %d at col %d row %d", run, c, row)
			}
			for k := 0; k < run; k++ {
				dst[(row+k)*ncols+c] = v
			}
			row += run
		}
	}
	return nil
}

// encodePage renders the page (n rows from raw, which holds the standard
// raw page image) according to the codec: a 5-byte header (format byte +
// uint32 row count) followed by the body. RLE chooses per column between
// run-length pairs and the raw column values — warehouse pages mix
// constant/clustered columns (MVCC, dates, categories) with incompressible
// ones (keys, prices), so the choice must be per column to pay off.
func encodePage(codec Codec, raw []byte, vals []int64, n, ncols int) []byte {
	body := raw[pageHeader : pageHeader+n*ncols*8]
	if codec == RLE {
		enc := make([]byte, 5, 5+len(body))
		enc[0] = pageFmtCol
		binary.LittleEndian.PutUint32(enc[1:], uint32(n))
		var lenBuf [4]byte
		col := make([]int64, n)
		for c := 0; c < ncols; c++ {
			for r := 0; r < n; r++ {
				col[r] = vals[r*ncols+c]
			}
			rle := encodeRLE(col, n, 1, nil)
			if len(rle) < n*8 {
				enc = append(enc, colRLE)
				binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(rle)))
				enc = append(enc, lenBuf[:]...)
				enc = append(enc, rle...)
			} else {
				enc = append(enc, colRaw)
				binary.LittleEndian.PutUint32(lenBuf[:], uint32(n*8))
				enc = append(enc, lenBuf[:]...)
				var vbuf [8]byte
				for r := 0; r < n; r++ {
					binary.LittleEndian.PutUint64(vbuf[:], uint64(col[r]))
					enc = append(enc, vbuf[:]...)
				}
			}
		}
		if len(enc) < 5+len(body) {
			return enc
		}
	}
	out := make([]byte, 5, 5+len(body))
	out[0] = pageFmtRaw
	binary.LittleEndian.PutUint32(out[1:], uint32(n))
	return append(out, body...)
}

// decodePage expands an encoded page into dst and returns the row count.
func decodePage(src []byte, ncols, maxRows int, dst []int64) (int, error) {
	if len(src) < 5 {
		return 0, fmt.Errorf("storage: short encoded page (%d bytes)", len(src))
	}
	n := int(binary.LittleEndian.Uint32(src[1:]))
	if n > maxRows {
		return 0, fmt.Errorf("storage: corrupt encoded page: %d rows", n)
	}
	switch src[0] {
	case pageFmtRaw:
		if len(src) < 5+n*ncols*8 {
			return 0, fmt.Errorf("storage: truncated raw page")
		}
		DecodeRows(src[5:], dst[:n*ncols])
		return n, nil
	case pageFmtRLE:
		if err := decodeRLE(src[5:], n, ncols, dst); err != nil {
			return 0, err
		}
		return n, nil
	case pageFmtCol:
		pos := 5
		col := make([]int64, n)
		for c := 0; c < ncols; c++ {
			if pos+5 > len(src) {
				return 0, fmt.Errorf("storage: truncated column header (col %d)", c)
			}
			tag := src[pos]
			ln := int(binary.LittleEndian.Uint32(src[pos+1:]))
			pos += 5
			if pos+ln > len(src) {
				return 0, fmt.Errorf("storage: truncated column body (col %d)", c)
			}
			switch tag {
			case colRLE:
				if err := decodeRLE(src[pos:pos+ln], n, 1, col); err != nil {
					return 0, err
				}
			case colRaw:
				if ln != n*8 {
					return 0, fmt.Errorf("storage: raw column length %d, want %d", ln, n*8)
				}
				DecodeRows(src[pos:pos+ln], col)
			default:
				return 0, fmt.Errorf("storage: unknown column tag %d", tag)
			}
			pos += ln
			for r := 0; r < n; r++ {
				dst[r*ncols+c] = col[r]
			}
		}
		return n, nil
	}
	return 0, fmt.Errorf("storage: unknown page format %d", src[0])
}
