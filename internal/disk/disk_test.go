package disk

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestAppendRead(t *testing.T) {
	d := NewMem()
	off1 := d.Append([]byte("hello"))
	off2 := d.Append([]byte("world"))
	if off1 != 0 || off2 != 5 {
		t.Fatalf("offsets %d,%d", off1, off2)
	}
	buf := make([]byte, 5)
	if err := d.ReadAt(buf, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("world")) {
		t.Fatalf("got %q", buf)
	}
	if d.Size() != 10 {
		t.Fatalf("size %d", d.Size())
	}
}

func TestReadOutOfRange(t *testing.T) {
	d := NewMem()
	d.Append(make([]byte, 8))
	if err := d.ReadAt(make([]byte, 4), 6); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := d.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("expected negative-offset error")
	}
}

func TestWriteAt(t *testing.T) {
	d := NewMem()
	d.Append([]byte("aaaa"))
	if err := d.WriteAt([]byte("bb"), 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abba" {
		t.Fatalf("got %q", buf)
	}
	if err := d.WriteAt([]byte("xx"), 3); err == nil {
		t.Fatal("expected out-of-range write error")
	}
}

func TestSeekAccounting(t *testing.T) {
	d := NewMem()
	d.Append(make([]byte, 100))
	buf := make([]byte, 10)
	// Sequential walk: only the first read seeks.
	for off := int64(0); off < 100; off += 10 {
		if err := d.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.Seeks != 1 || s.Reads != 10 || s.BytesRead != 100 {
		t.Fatalf("sequential stats %+v", s)
	}
	d.ResetStats()
	// Two interleaved "sequential" streams: every read seeks.
	for i := int64(0); i < 5; i++ {
		if err := d.ReadAt(buf, i*10); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadAt(buf, 50+i*10); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.Seeks != 10 {
		t.Fatalf("interleaved streams should seek on every read, stats %+v", s)
	}
}

func TestSimulatedLatencyCharged(t *testing.T) {
	d := New(Config{SeqBytesPerSec: 1 << 30, SeekPenalty: time.Millisecond})
	d.Append(make([]byte, 64))
	start := time.Now()
	buf := make([]byte, 8)
	// 4 seeking reads => >= 4ms of simulated service time.
	for i := 0; i < 4; i++ {
		if err := d.ReadAt(buf, 16); err != nil { // same offset twice in a row still seeks: lastEnd=24
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Fatalf("simulated latency not charged: %v", elapsed)
	}
	if s := d.Stats(); s.Waited < 4*time.Millisecond {
		t.Fatalf("waited %v", s.Waited)
	}
}

func TestConcurrentReadersSerialized(t *testing.T) {
	d := New(Config{SeekPenalty: 500 * time.Microsecond})
	d.Append(make([]byte, 1024))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 16)
			for i := 0; i < 5; i++ {
				if err := d.ReadAt(buf, int64(w*256+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// 20 reads, nearly all seeking, serialized on one device: the total
	// elapsed time must reflect a shared resource, not 4 parallel ones.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("device not serialized: %v", elapsed)
	}
}
