// Package disk simulates a single shared storage device with a
// sequential-bandwidth plus seek-penalty cost model.
//
// The paper's central performance argument (§1, §2.1) is that concurrent
// query-at-a-time plans compete for one I/O device and turn sequential
// scans into random I/O, while CJOIN drives a single continuous sequential
// scan. We do not have the authors' RAID array, so we substitute a device
// model that preserves exactly that asymmetry: all reads are serialized on
// the device, a read that does not start where the previous read ended
// pays a seek penalty, and bytes transfer at a fixed sequential bandwidth.
// With the model disabled (the default, used by unit tests) reads are
// plain memory copies.
package disk

import (
	"fmt"
	"sync"
	"time"
)

// Config controls the device cost model. The zero value disables
// simulated latency entirely.
type Config struct {
	// SeqBytesPerSec is the sequential transfer bandwidth. <= 0 disables
	// transfer cost.
	SeqBytesPerSec float64
	// SeekPenalty is charged whenever a read does not begin at the offset
	// where the previous read (by any reader) ended.
	SeekPenalty time.Duration
}

// Enabled reports whether the config models any latency at all.
func (c Config) Enabled() bool { return c.SeqBytesPerSec > 0 || c.SeekPenalty > 0 }

// Stats aggregates device activity counters.
type Stats struct {
	Reads     int64         // total read requests
	Seeks     int64         // reads that paid the seek penalty
	BytesRead int64         // total bytes transferred by reads
	Appends   int64         // total append requests
	Waited    time.Duration // total simulated service time
}

// Device is an append-only byte store with simulated service times.
// It is safe for concurrent use.
type Device struct {
	cfg Config

	mu        sync.Mutex
	data      []byte
	lastEnd   int64     // physical position of the head after the last read
	busyUntil time.Time // device is serially busy until this instant
	stats     Stats
}

// New returns an empty device using the given cost model.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, lastEnd: -1}
}

// NewMem returns a device with no simulated latency, suitable for tests.
func NewMem() *Device { return New(Config{}) }

// Size returns the current device size in bytes.
func (d *Device) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.data))
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the device counters.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// Append writes p at the end of the device and returns the offset at which
// it was written.
func (d *Device) Append(p []byte) int64 {
	d.mu.Lock()
	off := int64(len(d.data))
	d.data = append(d.data, p...)
	d.stats.Appends++
	d.mu.Unlock()
	return off
}

// WriteAt overwrites len(p) bytes at off. The range must already exist.
// Writes model no latency: the warehouse workloads we reproduce are
// read-dominated, and the paper measures only query-side behaviour.
func (d *Device) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return fmt.Errorf("disk: WriteAt [%d,%d) out of range (size %d)", off, off+int64(len(p)), len(d.data))
	}
	copy(d.data[off:], p)
	return nil
}

// ReadAt fills p from offset off, charging the simulated service time.
// The device is a single resource: overlapping requests from concurrent
// readers are serialized, and each request whose start offset differs from
// the previous request's end pays the seek penalty. This is what makes n
// interleaved "sequential" scans behave like random I/O.
func (d *Device) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		d.mu.Unlock()
		return fmt.Errorf("disk: ReadAt [%d,%d) out of range (size %d)", off, off+int64(len(p)), len(d.data))
	}
	copy(p, d.data[off:])
	d.stats.Reads++
	d.stats.BytesRead += int64(len(p))
	var wait time.Duration
	if d.cfg.Enabled() {
		var dur time.Duration
		if off != d.lastEnd {
			dur += d.cfg.SeekPenalty
			d.stats.Seeks++
		}
		if d.cfg.SeqBytesPerSec > 0 {
			dur += time.Duration(float64(len(p)) / d.cfg.SeqBytesPerSec * float64(time.Second))
		}
		now := time.Now()
		if d.busyUntil.Before(now) {
			d.busyUntil = now
		}
		d.busyUntil = d.busyUntil.Add(dur)
		wait = d.busyUntil.Sub(now)
		d.stats.Waited += dur
	} else if off != d.lastEnd {
		d.stats.Seeks++
	}
	d.lastEnd = off + int64(len(p))
	d.mu.Unlock()
	// The OS timer cannot sleep tens of microseconds accurately, so small
	// service times accumulate as debt in busyUntil and are slept off in
	// chunks. Aggregate timing stays accurate; tiny per-page stalls are
	// coalesced exactly as an OS I/O scheduler would batch them.
	if wait > sleepChunk {
		time.Sleep(wait)
	}
	return nil
}

// sleepChunk is the minimum backlog worth handing to the OS timer.
const sleepChunk = time.Millisecond
