package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// memSource is a trivial in-memory PageSource for wrapper tests.
type memSource struct{ pages int }

func (m *memSource) NumCols() int     { return 2 }
func (m *memSource) RowsPerPage() int { return 4 }
func (m *memSource) NumPages() int    { return m.pages }
func (m *memSource) ReadPage(page int, dst []int64, scratch []byte) (int, error) {
	for i := 0; i < 8; i++ {
		dst[i] = int64(page)
	}
	return 4, nil
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{
		"seed=7",
		"seed=7;shard=1",
		"seed=3;scan-err=0.25",
		"seed=1;scan-stall=5ms@0.5",
		"seed=1;scan-fail=40",
		"seed=9;admit-err=0.1",
		"seed=2;panic=pp@3",
		"seed=2;shard=2;scan-err=0.02;scan-stall=1ms@0.01;scan-fail=7;admit-err=0.05;panic=dist@1",
	} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"seed",              // not key=value
		"bogus=1",           // unknown clause
		"scan-err=1.5",      // probability out of range
		"scan-err=-0.1",     // probability out of range
		"scan-stall=5ms",    // missing @prob
		"scan-stall=zz@0.5", // bad duration
		"panic=elsewhere@1", // unknown site
		"panic=pp@0",        // visit count < 1
		"seed=notanint",     // bad int
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, s := range []string{"", "  "} {
		spec, err := Parse(s)
		if err != nil || spec != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", s, spec, err)
		}
	}
	// And the nil spec produces nil injectors whose hooks are no-ops.
	var spec *Spec
	in := spec.ForShard(0)
	if in != nil {
		t.Fatal("nil spec produced an injector")
	}
	if err := in.AdmitErr(); err != nil {
		t.Fatal(err)
	}
	in.PanicPoint(SitePreprocessor) // must not panic
	src := &memSource{pages: 3}
	if got := in.WrapSource(src, nil); got != PageSource(src) {
		t.Fatal("nil injector wrapped the source")
	}
}

func TestShardTargeting(t *testing.T) {
	spec, err := Parse("seed=1;shard=2;scan-err=1")
	if err != nil {
		t.Fatal(err)
	}
	if in := spec.ForShard(0); in != nil {
		t.Fatal("shard 0 got an injector for a shard=2 spec")
	}
	if in := spec.ForShard(2); in == nil {
		t.Fatal("shard 2 did not get an injector")
	}
	// shard=-1 (default) targets everyone.
	all, err := Parse("seed=1;scan-err=1")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if all.ForShard(s) == nil {
			t.Fatalf("shard %d missing injector for untargeted spec", s)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []bool {
		spec, _ := Parse("seed=42;scan-err=0.5")
		in := spec.ForShard(1)
		src := in.WrapSource(&memSource{pages: 8}, nil)
		var outcome []bool
		dst := make([]int64, 8)
		for i := 0; i < 64; i++ {
			_, err := src.ReadPage(i%8, dst, nil)
			outcome = append(outcome, err != nil)
		}
		return outcome
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d diverged between replays", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("scan-err=0.5 fired %d/%d times; schedule looks degenerate", fired, len(a))
	}
	// Different shards draw from different streams.
	spec, _ := Parse("seed=42;scan-err=0.5")
	other := spec.ForShard(2)
	src := other.WrapSource(&memSource{pages: 8}, nil)
	dst := make([]int64, 8)
	diverged := false
	for i := 0; i < 64; i++ {
		_, err := src.ReadPage(i%8, dst, nil)
		if (err != nil) != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("shard 1 and shard 2 drew identical schedules")
	}
}

func TestTransientVsHard(t *testing.T) {
	spec, _ := Parse("seed=1;scan-err=1")
	in := spec.ForShard(0)
	src := in.WrapSource(&memSource{pages: 4}, nil)
	_, err := src.ReadPage(0, make([]int64, 8), nil)
	var fe *Error
	if !errors.As(err, &fe) || !fe.Transient() {
		t.Fatalf("scan-err fault = %v, want transient *Error", err)
	}
	if !strings.Contains(fe.Error(), "transient") {
		t.Fatalf("message %q does not say transient", fe.Error())
	}

	// scan-fail counts reads, not page indices: reads 0 and 1 are clean,
	// read 2 dies, and the disk stays dead from then on — even for a
	// page that read fine before.
	spec, _ = Parse("seed=1;scan-fail=2")
	in = spec.ForShard(3)
	src = in.WrapSource(&memSource{pages: 4}, nil)
	for i := 0; i < 2; i++ {
		if _, err := src.ReadPage(i, make([]int64, 8), nil); err != nil {
			t.Fatalf("read %d should be clean: %v", i, err)
		}
	}
	_, err = src.ReadPage(2, make([]int64, 8), nil)
	if !errors.As(err, &fe) || fe.Transient() || fe.Page != 2 {
		t.Fatalf("scan-fail fault = %v, want hard *Error at page 2", err)
	}
	if _, err := src.ReadPage(0, make([]int64, 8), nil); !errors.As(err, &fe) || fe.Transient() {
		t.Fatalf("read after the kill point = %v, want hard *Error", err)
	}
	if c := in.Counters(); c.HardFails != 2 {
		t.Fatalf("counters = %+v, want two hard fails", c)
	}
}

func TestStallAbortsOnStop(t *testing.T) {
	spec, _ := Parse("seed=1;scan-stall=1h@1")
	in := spec.ForShard(0)
	stop := make(chan struct{})
	src := in.WrapSource(&memSource{pages: 4}, stop)
	done := make(chan error, 1)
	go func() {
		_, err := src.ReadPage(0, make([]int64, 8), nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stalled read returned %v after stop", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read did not abort when stop closed")
	}
	if c := in.Counters(); c.Stalls != 1 {
		t.Fatalf("counters = %+v, want one stall", c)
	}
}

func TestPanicPoint(t *testing.T) {
	spec, _ := Parse("seed=1;panic=dist@3")
	in := spec.ForShard(1)
	in.PanicPoint(SitePreprocessor) // wrong site: no-op
	in.PanicPoint(SiteDistributor)  // visit 1
	in.PanicPoint(SiteDistributor)  // visit 2
	panicked := func() (v any) {
		defer func() { v = recover() }()
		in.PanicPoint(SiteDistributor) // visit 3: fires
		return nil
	}()
	p, ok := panicked.(*Panic)
	if !ok || p.Site != SiteDistributor || p.Shard != 1 {
		t.Fatalf("recovered %v, want *Panic{dist, shard 1}", panicked)
	}
	// One-shot: later visits pass.
	in.PanicPoint(SiteDistributor)
	if c := in.Counters(); c.Panics != 1 {
		t.Fatalf("counters = %+v, want one panic", c)
	}
}

func TestAdmitErr(t *testing.T) {
	spec, _ := Parse("seed=5;admit-err=1")
	in := spec.ForShard(0)
	err := in.AdmitErr()
	var fe *Error
	if !errors.As(err, &fe) || fe.Op != "admit" {
		t.Fatalf("AdmitErr = %v, want admit *Error", err)
	}
	spec, _ = Parse("seed=5")
	if err := spec.ForShard(0).AdmitErr(); err != nil {
		t.Fatalf("admit-err unset still injected: %v", err)
	}
}
