// Package fault is a deterministic, seed-driven fault-injection
// framework for chaos-testing the CJOIN serving tier. A Spec — parsed
// from a compact string such as
//
//	seed=7;shard=1;scan-err=0.02;scan-stall=5ms@0.01;scan-fail=40;panic=pp@3
//
// — describes a reproducible fault schedule; an Injector derived from it
// for one shard wraps that shard's page source (transient I/O errors,
// latency stalls, hard failures at a chosen page position), feeds the
// dimension plane's admit-fault hook, and arms panic points inside the
// pipeline goroutines. Every hook is a method on a possibly-nil
// *Injector: when injection is disabled the receiver is nil and each
// call collapses to a single pointer test, so production paths pay
// nothing.
//
// The package is a leaf: it must not import internal/core (core imports
// it). PageSource below is a structural copy of core.PageSource; Go's
// implicit interface conversion bridges the two.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cjoin/internal/obs"
)

// PageSource mirrors core.PageSource so sources can be wrapped without
// an import cycle.
type PageSource interface {
	NumCols() int
	RowsPerPage() int
	NumPages() int
	ReadPage(page int, dst []int64, scratch []byte) (int, error)
}

// Panic sites accepted by the panic=SITE@N clause, matching the three
// goroutines a core.Pipeline runs.
const (
	SitePreprocessor = "pp"   // preprocessor loop, visited once per page
	SiteDistributor  = "dist" // distributor loop, visited once per batch
	SiteManager      = "mgr"  // pipeline manager loop, visited per command
)

// Spec is a parsed fault schedule. The zero Spec injects nothing.
type Spec struct {
	// Seed drives every probabilistic decision; equal seeds replay the
	// exact same schedule. Default 1.
	Seed int64
	// Shard restricts injection to one shard index; -1 targets all.
	Shard int
	// ScanErrProb is the per-ReadPage probability of a transient I/O
	// error (retryable at the page boundary).
	ScanErrProb float64
	// ScanStallProb / ScanStallDur inject a latency stall into ReadPage
	// with the given probability. Stalls abort early when the pipeline
	// stops, so they never outlive their pipeline.
	ScanStallProb float64
	ScanStallDur  time.Duration
	// ScanFailAt hard-fails the N-th ReadPage call (0-based, counted
	// across scan cycles) and every call after it — the disk dies at a
	// chosen point in the workload and stays dead. -1 disables.
	ScanFailAt int
	// AdmitErrProb is the probability that a dimension-plane admission
	// fails with an injected error.
	AdmitErrProb float64
	// PanicSite/PanicAfter panic inside the named pipeline goroutine on
	// its PanicAfter-th visit (1-based). Empty site disables.
	PanicSite  string
	PanicAfter int64

	// Obs, when non-nil, mirrors every fired fault into the telemetry
	// plane as cjoin_fault_injected_total{site,shard}, so chaos tests
	// can assert injections actually happened instead of inferring them
	// from failures. Not part of Parse's grammar — callers set it after
	// parsing.
	Obs *obs.Registry
}

// Parse decodes a -chaos spec string: semicolon-separated key=value
// clauses. An empty string yields a nil Spec (injection disabled).
//
//	seed=N          rng seed (default 1)
//	shard=N         target shard index (default -1: all shards)
//	scan-err=P      transient ReadPage error probability
//	scan-stall=D@P  stall ReadPage for duration D with probability P
//	scan-fail=N     hard-fail the Nth page read onward (kills the pipeline)
//	admit-err=P     dimension admission failure probability
//	panic=SITE@N    panic in goroutine SITE (pp|dist|mgr) on visit N
func Parse(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{Seed: 1, Shard: -1, ScanFailAt: -1}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		k, v, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
		case "shard":
			spec.Shard, err = strconv.Atoi(v)
		case "scan-err":
			spec.ScanErrProb, err = parseProb(v)
		case "scan-stall":
			d, p, ok := strings.Cut(v, "@")
			if !ok {
				return nil, fmt.Errorf("fault: scan-stall wants DURATION@PROB, got %q", v)
			}
			if spec.ScanStallDur, err = time.ParseDuration(d); err == nil {
				spec.ScanStallProb, err = parseProb(p)
			}
		case "scan-fail":
			spec.ScanFailAt, err = strconv.Atoi(v)
		case "admit-err":
			spec.AdmitErrProb, err = parseProb(v)
		case "panic":
			site, n, ok := strings.Cut(v, "@")
			if !ok {
				n = "1"
			}
			switch site {
			case SitePreprocessor, SiteDistributor, SiteManager:
				spec.PanicSite = site
			default:
				return nil, fmt.Errorf("fault: unknown panic site %q (want pp|dist|mgr)", site)
			}
			spec.PanicAfter, err = strconv.ParseInt(n, 10, 64)
			if err == nil && spec.PanicAfter < 1 {
				return nil, fmt.Errorf("fault: panic visit count must be >= 1, got %d", spec.PanicAfter)
			}
		default:
			return nil, fmt.Errorf("fault: unknown clause %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: %v", clause, err)
		}
	}
	return spec, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v out of [0,1]", p)
	}
	return p, nil
}

// String renders the Spec back into Parse's grammar.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	add := func(f string, args ...any) { parts = append(parts, fmt.Sprintf(f, args...)) }
	add("seed=%d", s.Seed)
	if s.Shard >= 0 {
		add("shard=%d", s.Shard)
	}
	if s.ScanErrProb > 0 {
		add("scan-err=%v", s.ScanErrProb)
	}
	if s.ScanStallProb > 0 {
		add("scan-stall=%v@%v", s.ScanStallDur, s.ScanStallProb)
	}
	if s.ScanFailAt >= 0 {
		add("scan-fail=%d", s.ScanFailAt)
	}
	if s.AdmitErrProb > 0 {
		add("admit-err=%v", s.AdmitErrProb)
	}
	if s.PanicSite != "" {
		add("panic=%s@%d", s.PanicSite, s.PanicAfter)
	}
	return strings.Join(parts, ";")
}

// ForShard derives the Injector for one shard, or nil when the Spec is
// nil or targets a different shard. Each shard gets an independent rng
// stream (seed mixed with the shard index) so a multi-shard schedule is
// deterministic regardless of goroutine interleaving across shards.
func (s *Spec) ForShard(shard int) *Injector {
	if s == nil || (s.Shard >= 0 && s.Shard != shard) {
		return nil
	}
	in := &Injector{
		spec:  *s,
		shard: shard,
		rng:   rand.New(rand.NewSource(mix(s.Seed, int64(shard)))),
	}
	if s.Obs != nil {
		fired := s.Obs.CounterVec("cjoin_fault_injected_total",
			"Chaos faults actually fired, by injection site and shard.",
			"site", "shard")
		sh := strconv.Itoa(shard)
		in.om = injectorMetrics{
			transient: fired.With("scan-err", sh),
			stalls:    fired.With("scan-stall", sh),
			hardFails: fired.With("scan-fail", sh),
			admitErrs: fired.With("admit-err", sh),
			panics:    fired.With("panic", sh),
		}
	}
	return in
}

// mix is splitmix64 over seed and shard, so neighboring shard indices
// get uncorrelated streams.
func mix(seed, shard int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Error is an injected failure. Transient errors model recoverable I/O
// hiccups and are retried by the pipeline's page-boundary backoff; hard
// errors escalate to pipeline failure.
type Error struct {
	Op    string // "read-page" or "admit"
	Page  int    // page index for read-page faults, -1 otherwise
	Shard int
	Hard  bool
}

func (e *Error) Error() string {
	kind := "transient"
	if e.Hard {
		kind = "hard"
	}
	if e.Page >= 0 {
		return fmt.Sprintf("fault: injected %s %s error (shard %d, page %d)", kind, e.Op, e.Shard, e.Page)
	}
	return fmt.Sprintf("fault: injected %s %s error (shard %d)", kind, e.Op, e.Shard)
}

// Transient reports whether the error models a recoverable condition.
// core's scan retry loop discovers this via an anonymous interface.
func (e *Error) Transient() bool { return !e.Hard }

// Panic is the value thrown by an armed panic point, so recover sites
// can tell an injected crash from a genuine bug in logs.
type Panic struct {
	Site  string
	Shard int
}

func (p *Panic) Error() string {
	return fmt.Sprintf("fault: injected panic at %s (shard %d)", p.Site, p.Shard)
}

// Counters reports how many faults an Injector has actually fired, for
// tests and /stats.
type Counters struct {
	Transient int64
	Stalls    int64
	HardFails int64
	AdmitErrs int64
	Panics    int64
}

// Injector executes one shard's slice of a Spec. All methods are safe
// on a nil receiver — the disabled configuration — and safe for
// concurrent use.
type Injector struct {
	spec  Spec
	shard int

	mu  sync.Mutex
	rng *rand.Rand

	visits    atomic.Int64 // panic-site visits
	transient atomic.Int64
	stalls    atomic.Int64
	hardFails atomic.Int64
	admitErrs atomic.Int64
	panics    atomic.Int64

	om injectorMetrics
}

// injectorMetrics mirrors the fired-fault atomics into the telemetry
// plane; nil handles (Spec.Obs == nil) no-op.
type injectorMetrics struct {
	transient, stalls, hardFails, admitErrs, panics *obs.Counter
}

// Shard returns the shard index this injector was derived for.
func (in *Injector) Shard() int {
	if in == nil {
		return -1
	}
	return in.shard
}

// Counters snapshots the fired-fault counts.
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return Counters{
		Transient: in.transient.Load(),
		Stalls:    in.stalls.Load(),
		HardFails: in.hardFails.Load(),
		AdmitErrs: in.admitErrs.Load(),
		Panics:    in.panics.Load(),
	}
}

// roll draws one deterministic Bernoulli sample.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// WrapSource interposes the scan-fault schedule on src. stop aborts
// in-flight stalls when the owning pipeline shuts down. When the
// injector is nil or has no scan clauses, src is returned untouched —
// the hot read path keeps its direct devirtualizable call.
func (in *Injector) WrapSource(src PageSource, stop <-chan struct{}) PageSource {
	if in == nil {
		return src
	}
	if in.spec.ScanErrProb <= 0 && in.spec.ScanStallProb <= 0 && in.spec.ScanFailAt < 0 {
		return src
	}
	return &faultSource{src: src, in: in, stop: stop}
}

// AdmitErr returns an injected admission error, or nil. Wire it into
// dimplane.Config.AdmitFault.
func (in *Injector) AdmitErr() error {
	if in == nil || in.spec.AdmitErrProb <= 0 {
		return nil
	}
	if !in.roll(in.spec.AdmitErrProb) {
		return nil
	}
	in.admitErrs.Add(1)
	in.om.admitErrs.Inc()
	return &Error{Op: "admit", Page: -1, Shard: in.shard}
}

// PanicPoint panics with a *Panic when the named site reaches its armed
// visit count. Pipeline goroutines call it once per loop iteration; the
// disabled path is one nil test plus one string compare.
func (in *Injector) PanicPoint(site string) {
	if in == nil || in.spec.PanicSite != site {
		return
	}
	if in.visits.Add(1) == in.spec.PanicAfter {
		in.panics.Add(1)
		in.om.panics.Inc()
		panic(&Panic{Site: site, Shard: in.shard})
	}
}

// faultSource is the injecting PageSource wrapper. Geometry calls pass
// through untouched; ReadPage applies, in order: the hard-fail page
// check, a possible stall, a possible transient error, then the real
// read.
type faultSource struct {
	src   PageSource
	in    *Injector
	stop  <-chan struct{}
	reads atomic.Int64
}

func (fs *faultSource) NumCols() int     { return fs.src.NumCols() }
func (fs *faultSource) RowsPerPage() int { return fs.src.RowsPerPage() }
func (fs *faultSource) NumPages() int    { return fs.src.NumPages() }

func (fs *faultSource) ReadPage(page int, dst []int64, scratch []byte) (int, error) {
	in := fs.in
	if in.spec.ScanFailAt >= 0 && fs.reads.Add(1) > int64(in.spec.ScanFailAt) {
		in.hardFails.Add(1)
		in.om.hardFails.Inc()
		return 0, &Error{Op: "read-page", Page: page, Shard: in.shard, Hard: true}
	}
	if in.spec.ScanStallProb > 0 && in.roll(in.spec.ScanStallProb) {
		in.stalls.Add(1)
		in.om.stalls.Inc()
		t := time.NewTimer(in.spec.ScanStallDur)
		select {
		case <-t.C:
		case <-fs.stop:
			t.Stop()
		}
	}
	if in.spec.ScanErrProb > 0 && in.roll(in.spec.ScanErrProb) {
		in.transient.Add(1)
		in.om.transient.Inc()
		return 0, &Error{Op: "read-page", Page: page, Shard: in.shard}
	}
	return fs.src.ReadPage(page, dst, scratch)
}
