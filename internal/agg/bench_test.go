package agg

import (
	"testing"

	"cjoin/internal/expr"
)

// BenchmarkHashAdd measures the Distributor-side cost of folding one
// routed tuple into a query's aggregation operator.
func BenchmarkHashAdd(b *testing.B) {
	specs := []Spec{{Fn: Sum, Arg: col(1)}, {Fn: Count}}
	h := NewHash(specs, []expr.Node{col(0)})
	j := expr.Joined{Fact: []int64{3, 42}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Fact[0] = int64(i % 64) // 64 groups
		h.Add(&j)
	}
}

func BenchmarkHashAddWideGroup(b *testing.B) {
	specs := []Spec{{Fn: Sum, Arg: col(3)}}
	h := NewHash(specs, []expr.Node{col(0), col(1), col(2)})
	j := expr.Joined{Fact: []int64{0, 0, 0, 7}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Fact[0] = int64(i % 8)
		j.Fact[1] = int64(i % 4)
		j.Fact[2] = int64(i % 2)
		h.Add(&j)
	}
}
