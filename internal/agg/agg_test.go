package agg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cjoin/internal/expr"
)

func col(i int) expr.Node { return expr.Col{Slot: 0, Idx: i, Name: "c"} }

func addRows(a Aggregator, rows [][]int64) {
	for _, r := range rows {
		j := expr.Joined{Fact: r}
		a.Add(&j)
	}
}

func TestHashAllFunctions(t *testing.T) {
	specs := []Spec{
		{Fn: Sum, Arg: col(1)},
		{Fn: Count},
		{Fn: Min, Arg: col(1)},
		{Fn: Max, Arg: col(1)},
		{Fn: Avg, Arg: col(1)},
	}
	h := NewHash(specs, []expr.Node{col(0)})
	addRows(h, [][]int64{{1, 10}, {1, 20}, {2, -5}, {1, 30}, {2, 5}})
	rs := h.Results()
	if len(rs) != 2 {
		t.Fatalf("groups %d", len(rs))
	}
	g1 := rs[0]
	if g1.Group[0] != 1 {
		t.Fatalf("group order: %v", rs)
	}
	if g1.Ints[0] != 60 || g1.Ints[1] != 3 || g1.Ints[2] != 10 || g1.Ints[3] != 30 {
		t.Fatalf("group 1 aggs %v", g1.Ints)
	}
	if got := g1.Value(4, specs[4]); got != 20 {
		t.Fatalf("avg %g", got)
	}
	g2 := rs[1]
	if g2.Ints[0] != 0 || g2.Ints[2] != -5 || g2.Ints[3] != 5 {
		t.Fatalf("group 2 aggs %v", g2.Ints)
	}
}

func TestGlobalAggregateNoGroupBy(t *testing.T) {
	h := NewHash([]Spec{{Fn: Count}}, nil)
	addRows(h, [][]int64{{1}, {2}, {3}})
	rs := h.Results()
	if len(rs) != 1 || rs[0].Ints[0] != 3 {
		t.Fatalf("global count %v", rs)
	}
}

func TestEmptyInput(t *testing.T) {
	h := NewHash([]Spec{{Fn: Sum, Arg: col(0)}}, []expr.Node{col(0)})
	if rs := h.Results(); len(rs) != 0 {
		t.Fatalf("empty input should have no groups: %v", rs)
	}
	s := NewSorted([]Spec{{Fn: Sum, Arg: col(0)}}, []expr.Node{col(0)})
	if rs := s.Results(); len(rs) != 0 {
		t.Fatalf("sorted empty: %v", rs)
	}
}

func TestMinMaxNegativeOnly(t *testing.T) {
	specs := []Spec{{Fn: Min, Arg: col(0)}, {Fn: Max, Arg: col(0)}}
	h := NewHash(specs, nil)
	addRows(h, [][]int64{{-7}, {-3}, {-9}})
	rs := h.Results()
	if rs[0].Ints[0] != -9 || rs[0].Ints[1] != -3 {
		t.Fatalf("min/max of negatives %v", rs[0].Ints)
	}
}

func TestMultiColumnGroups(t *testing.T) {
	h := NewHash([]Spec{{Fn: Count}}, []expr.Node{col(0), col(1)})
	addRows(h, [][]int64{{1, 1, 0}, {1, 2, 0}, {1, 1, 0}, {2, 1, 0}})
	rs := h.Results()
	if len(rs) != 3 {
		t.Fatalf("groups %d", len(rs))
	}
	// Sorted lexicographically: (1,1) (1,2) (2,1)
	want := [][]int64{{1, 1}, {1, 2}, {2, 1}}
	for i, r := range rs {
		if !reflect.DeepEqual(r.Group, want[i]) {
			t.Fatalf("group order %v", rs)
		}
	}
	if rs[0].Ints[0] != 2 {
		t.Fatalf("count of (1,1) = %d", rs[0].Ints[0])
	}
}

// Property: Hash and Sorted aggregators produce identical results on
// random inputs with random grouping.
func TestHashSortedEquivalenceQuick(t *testing.T) {
	specs := []Spec{
		{Fn: Sum, Arg: col(1)},
		{Fn: Count},
		{Fn: Min, Arg: col(1)},
		{Fn: Max, Arg: col(1)},
		{Fn: Avg, Arg: col(1)},
	}
	f := func(data []int16) bool {
		h := NewHash(specs, []expr.Node{col(0)})
		s := NewSorted(specs, []expr.Node{col(0)})
		for _, d := range data {
			row := []int64{int64(d % 7), int64(d)}
			j := expr.Joined{Fact: row}
			h.Add(&j)
			s.Add(&j)
		}
		return reflect.DeepEqual(h.Results(), s.Results())
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: SUM distributes over input partitioning — aggregating two
// halves separately and adding per-group sums equals aggregating at once.
func TestSumPartitionQuick(t *testing.T) {
	specs := []Spec{{Fn: Sum, Arg: col(1)}}
	f := func(data []int16, cut uint8) bool {
		k := int(cut) % (len(data) + 1)
		whole := NewHash(specs, []expr.Node{col(0)})
		left := NewHash(specs, []expr.Node{col(0)})
		right := NewHash(specs, []expr.Node{col(0)})
		for i, d := range data {
			j := expr.Joined{Fact: []int64{int64(d % 5), int64(d)}}
			whole.Add(&j)
			if i < k {
				left.Add(&j)
			} else {
				right.Add(&j)
			}
		}
		merged := map[int64]int64{}
		for _, r := range append(left.Results(), right.Results()...) {
			merged[r.Group[0]] += r.Ints[0]
		}
		for _, r := range whole.Results() {
			if merged[r.Group[0]] != r.Ints[0] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseFunc(t *testing.T) {
	for name, want := range map[string]Func{"SUM": Sum, "COUNT": Count, "MIN": Min, "MAX": Max, "AVG": Avg} {
		got, ok := ParseFunc(name)
		if !ok || got != want {
			t.Errorf("ParseFunc(%s) = %v,%v", name, got, ok)
		}
	}
	if _, ok := ParseFunc("MEDIAN"); ok {
		t.Error("unknown function must not parse")
	}
}

func TestFormatResults(t *testing.T) {
	specs := []Spec{{Fn: Sum, Arg: col(1)}}
	h := NewHash(specs, []expr.Node{col(0)})
	addRows(h, [][]int64{{1, 5}})
	if FormatResults(h.Results(), specs) == "" {
		t.Fatal("format must render")
	}
}

// TestMergePartials checks the sharded-execution invariant directly:
// splitting a row stream into arbitrary partitions, aggregating each
// partition, and merging the partials must equal aggregating the whole
// stream at once — for every function, including AVG's sum+count state.
func TestMergePartials(t *testing.T) {
	specs := []Spec{
		{Fn: Sum, Arg: col(1)},
		{Fn: Count},
		{Fn: Min, Arg: col(1)},
		{Fn: Max, Arg: col(1)},
		{Fn: Avg, Arg: col(1)},
	}
	groupBy := []expr.Node{col(0)}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nrows := rng.Intn(200) + 1
		rows := make([][]int64, nrows)
		for i := range rows {
			rows[i] = []int64{int64(rng.Intn(8)), rng.Int63n(2001) - 1000}
		}

		whole := NewHash(specs, groupBy)
		addRows(whole, rows)
		want := whole.Results()

		nparts := rng.Intn(5) + 1
		aggs := make([]*Hash, nparts)
		for i := range aggs {
			aggs[i] = NewHash(specs, groupBy)
		}
		for _, r := range rows {
			addRows(aggs[rng.Intn(nparts)], [][]int64{r})
		}
		parts := make([][]Result, nparts)
		for i, a := range aggs {
			parts[i] = a.Results()
		}
		got := Merge(specs, parts...)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%d parts): merge diverges\n got %v\nwant %v", trial, nparts, got, want)
		}
	}
}

// TestMergeEmpty covers the degenerate shapes: no partials, empty
// partials, and a single partial passing through unchanged.
func TestMergeEmpty(t *testing.T) {
	specs := []Spec{{Fn: Sum, Arg: col(1)}}
	if got := Merge(specs); got != nil {
		t.Fatalf("Merge() = %v", got)
	}
	if got := Merge(specs, nil, nil); got != nil {
		t.Fatalf("Merge(nil, nil) = %v", got)
	}
	one := []Result{{Group: []int64{1}, Ints: []int64{5}, Counts: []int64{2}}}
	got := Merge(specs, nil, one)
	if !reflect.DeepEqual(got, one) {
		t.Fatalf("single partial changed: %v", got)
	}
}
