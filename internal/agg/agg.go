// Package agg implements the aggregation operators that terminate both
// the CJOIN pipeline (one per registered query, fed by the Distributor)
// and conventional star-query plans: hash-based and sort-based GROUP BY
// with SUM, COUNT, MIN, MAX and AVG.
package agg

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"cjoin/internal/expr"
)

// Func enumerates the supported SQL aggregate functions.
type Func int

// Aggregate functions.
const (
	Sum Func = iota
	Count
	Min
	Max
	Avg
)

var funcNames = [...]string{"SUM", "COUNT", "MIN", "MAX", "AVG"}

func (f Func) String() string { return funcNames[f] }

// ParseFunc maps an upper-case SQL function name to a Func.
func ParseFunc(name string) (Func, bool) {
	for i, n := range funcNames {
		if n == name {
			return Func(i), true
		}
	}
	return 0, false
}

// Spec describes one aggregate output column. Arg is nil for COUNT(*).
type Spec struct {
	Fn   Func
	Arg  expr.Node
	Name string
}

func (s Spec) String() string {
	if s.Arg == nil {
		return s.Fn.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", s.Fn, s.Arg)
}

// Result is one output group. Ints holds, per spec, the SUM/MIN/MAX value,
// the COUNT, or the running sum for AVG; Counts holds the per-spec row
// count that AVG divides by.
type Result struct {
	Group  []int64
	Ints   []int64
	Counts []int64
}

// Value returns the final value of aggregate column i under spec.
func (r Result) Value(i int, spec Spec) float64 {
	if spec.Fn == Avg {
		if r.Counts[i] == 0 {
			return 0
		}
		return float64(r.Ints[i]) / float64(r.Counts[i])
	}
	return float64(r.Ints[i])
}

// Aggregator consumes joined rows and produces grouped results.
type Aggregator interface {
	// Add folds one joined row into the aggregate state.
	Add(j *expr.Joined)
	// Results returns the groups sorted by group key. It may be called
	// once, after the last Add.
	Results() []Result
}

type bucket struct {
	group  []int64
	ints   []int64
	counts []int64
}

// Hash is a hash-based aggregator.
type Hash struct {
	specs   []Spec
	groupBy []expr.Node
	m       map[string]*bucket
	keyBuf  []byte
	valBuf  []int64
	rows    int64
}

// NewHash returns a hash aggregator for the given output specs and
// grouping expressions (which may be empty for a global aggregate).
func NewHash(specs []Spec, groupBy []expr.Node) *Hash {
	return &Hash{
		specs:   specs,
		groupBy: groupBy,
		m:       make(map[string]*bucket),
		keyBuf:  make([]byte, 8*len(groupBy)),
		valBuf:  make([]int64, len(groupBy)),
	}
}

// Add implements Aggregator.
func (h *Hash) Add(j *expr.Joined) {
	h.rows++
	for i, g := range h.groupBy {
		v := g.Eval(j)
		h.valBuf[i] = v
		binary.LittleEndian.PutUint64(h.keyBuf[8*i:], uint64(v))
	}
	b, ok := h.m[string(h.keyBuf)]
	if !ok {
		b = &bucket{
			group:  append([]int64(nil), h.valBuf...),
			ints:   make([]int64, len(h.specs)),
			counts: make([]int64, len(h.specs)),
		}
		h.m[string(h.keyBuf)] = b
	}
	fold(b, h.specs, j, ok)
}

func fold(b *bucket, specs []Spec, j *expr.Joined, existed bool) {
	for i, s := range specs {
		var v int64
		if s.Arg != nil {
			v = s.Arg.Eval(j)
		}
		switch s.Fn {
		case Sum, Avg:
			b.ints[i] += v
		case Count:
			b.ints[i]++
		case Min:
			if !existed || v < b.ints[i] {
				b.ints[i] = v
			}
		case Max:
			if !existed || v > b.ints[i] {
				b.ints[i] = v
			}
		}
		b.counts[i]++
	}
}

// Rows returns the number of input rows consumed.
func (h *Hash) Rows() int64 { return h.rows }

// Results implements Aggregator.
func (h *Hash) Results() []Result {
	if len(h.m) == 0 {
		return nil
	}
	out := make([]Result, 0, len(h.m))
	for _, b := range h.m {
		out = append(out, Result{Group: b.group, Ints: b.ints, Counts: b.counts})
	}
	sortResults(out)
	return out
}

// Sorted is a sort-based aggregator: it buffers (group, arg) rows and
// aggregates after sorting. Results are identical to Hash; the paper's
// Distributor may pipe into "either sort-based or hash-based" operators.
type Sorted struct {
	specs   []Spec
	groupBy []expr.Node
	rows    [][]int64 // group values followed by arg values
}

// NewSorted returns a sort-based aggregator.
func NewSorted(specs []Spec, groupBy []expr.Node) *Sorted {
	return &Sorted{specs: specs, groupBy: groupBy}
}

// Add implements Aggregator.
func (s *Sorted) Add(j *expr.Joined) {
	row := make([]int64, len(s.groupBy)+len(s.specs))
	for i, g := range s.groupBy {
		row[i] = g.Eval(j)
	}
	for i, sp := range s.specs {
		if sp.Arg != nil {
			row[len(s.groupBy)+i] = sp.Arg.Eval(j)
		}
	}
	s.rows = append(s.rows, row)
}

// Results implements Aggregator.
func (s *Sorted) Results() []Result {
	ng := len(s.groupBy)
	sort.Slice(s.rows, func(a, b int) bool {
		return lessInt64s(s.rows[a][:ng], s.rows[b][:ng])
	})
	var out []Result
	var cur *bucket
	for _, row := range s.rows {
		if cur == nil || !equalInt64s(cur.group, row[:ng]) {
			if cur != nil {
				out = append(out, Result{Group: cur.group, Ints: cur.ints, Counts: cur.counts})
			}
			cur = &bucket{
				group:  append([]int64(nil), row[:ng]...),
				ints:   make([]int64, len(s.specs)),
				counts: make([]int64, len(s.specs)),
			}
			s.foldRow(cur, row, false)
			continue
		}
		s.foldRow(cur, row, true)
	}
	if cur != nil {
		out = append(out, Result{Group: cur.group, Ints: cur.ints, Counts: cur.counts})
	}
	return out
}

func (s *Sorted) foldRow(b *bucket, row []int64, existed bool) {
	ng := len(s.groupBy)
	for i, sp := range s.specs {
		v := row[ng+i]
		switch sp.Fn {
		case Sum, Avg:
			b.ints[i] += v
		case Count:
			b.ints[i]++
		case Min:
			if !existed || v < b.ints[i] {
				b.ints[i] = v
			}
		case Max:
			if !existed || v > b.ints[i] {
				b.ints[i] = v
			}
		}
		b.counts[i]++
	}
}

// Merge folds partial result sets — each sorted by group key, as
// Results produces them — into one result set sorted by group key. It is
// the scatter/gather half of sharded execution: each fact-partitioned
// pipeline aggregates its share of the scan, and Merge combines the
// partial states associatively, so the merged output is exactly what a
// single pipeline over the whole fact table would have produced.
//
// Per-spec combination: SUM and COUNT partials add; AVG is carried as
// (sum, count) in Result.Ints/Counts and both add, so the final division
// is exact; MIN/MAX take the extremum. Counts always add, since every
// partial bucket counted its own input rows. Integer addition over int64
// is associative and commutative, so merge order cannot change results.
func Merge(specs []Spec, parts ...[]Result) []Result {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil
	}
	all := make([]Result, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	sortResults(all)
	out := make([]Result, 0, len(all))
	for _, r := range all {
		if len(out) == 0 || !equalInt64s(out[len(out)-1].Group, r.Group) {
			out = append(out, Result{
				Group:  append([]int64(nil), r.Group...),
				Ints:   append([]int64(nil), r.Ints...),
				Counts: append([]int64(nil), r.Counts...),
			})
			continue
		}
		cur := &out[len(out)-1]
		for i, s := range specs {
			switch s.Fn {
			case Sum, Count, Avg:
				cur.Ints[i] += r.Ints[i]
			case Min:
				if r.Ints[i] < cur.Ints[i] {
					cur.Ints[i] = r.Ints[i]
				}
			case Max:
				if r.Ints[i] > cur.Ints[i] {
					cur.Ints[i] = r.Ints[i]
				}
			}
			cur.Counts[i] += r.Counts[i]
		}
	}
	return out
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(a, b int) bool { return lessInt64s(rs[a].Group, rs[b].Group) })
}

func lessInt64s(a, b []int64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatResults renders results as a compact debug table.
func FormatResults(rs []Result, specs []Spec) string {
	var sb strings.Builder
	for _, r := range rs {
		for _, g := range r.Group {
			fmt.Fprintf(&sb, "%d\t", g)
		}
		for i := range specs {
			fmt.Fprintf(&sb, "%g\t", r.Value(i, specs[i]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
