package shard_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cjoin/internal/agg"
	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// TestShardParityRandomSSB is the exactness property test: for randomized
// SSB star queries — including GROUP BY, ORDER BY (group columns and
// aggregate aliases, ASC and DESC), LIMIT, and every aggregate function
// (SUM/COUNT/MIN/MAX/AVG) — the sharded Group must return results
// byte-identical (group keys, aggregate ints, and counts) to both a
// single Pipeline and the naive internal/ref executor.
func TestShardParityRandomSSB(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 8, Workers: 2}

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)

	groups := make(map[int]*shard.Group)
	for _, n := range []int{2, 3, 4} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		groups[n] = g
	}

	rng := rand.New(rand.NewSource(42))
	w := ssb.NewWorkload(ds, 0.05, 13)
	texts := make([]string, 0, 40)
	for i := 0; i < 24; i++ {
		_, text := w.Next()
		switch rng.Intn(3) {
		case 0:
			// Exercise AVG partials (sum+count folded across shards).
			text = strings.Replace(text, "SUM(", "AVG(", 1)
		case 1:
			// Exercise group-level LIMIT after the merge.
			text = fmt.Sprintf("%s LIMIT %d", text, rng.Intn(5)+1)
		}
		texts = append(texts, text)
	}
	// Handcrafted queries covering every aggregate at once, ORDER BY on an
	// aggregate alias (ties broken by the stable group-key order), and
	// LIMIT cutting through those ties.
	for _, extra := range []string{
		`SELECT COUNT(*) AS n, MIN(lo_revenue) AS mn, MAX(lo_revenue) AS mx,
		        AVG(lo_quantity) AS aq, SUM(lo_revenue) AS rev, d_year
		 FROM lineorder, date WHERE lo_orderdate = d_datekey
		 GROUP BY d_year ORDER BY d_year`,
		`SELECT SUM(lo_revenue) AS rev, COUNT(*) AS n, d_year, c_nation
		 FROM lineorder, date, customer
		 WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
		 GROUP BY d_year, c_nation ORDER BY rev DESC LIMIT 7`,
		`SELECT AVG(lo_revenue) AS arev, MAX(lo_discount) AS md, s_region
		 FROM lineorder, supplier WHERE lo_suppkey = s_suppkey
		 GROUP BY s_region ORDER BY md DESC, s_region LIMIT 3`,
		`SELECT COUNT(*) AS n FROM lineorder`,
		`SELECT MIN(lo_supplycost) AS mn, MAX(lo_supplycost) AS mx
		 FROM lineorder, part WHERE lo_partkey = p_partkey AND p_mfgr = 'MFGR#1'`,
	} {
		texts = append(texts, extra)
	}

	for qi, text := range texts {
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, text, err)
		}
		b.Snapshot = ds.Txn.Begin()

		want, err := ref.Execute(b)
		if err != nil {
			t.Fatalf("query %d ref: %v", qi, err)
		}

		h, err := single.Submit(b)
		if err != nil {
			t.Fatalf("query %d single submit: %v", qi, err)
		}
		sres := h.Wait()
		if sres.Err != nil {
			t.Fatalf("query %d single: %v", qi, sres.Err)
		}
		if !ref.ResultsEqual(sres.Rows, want) {
			t.Fatalf("query %d: single pipeline diverges from ref\nquery: %s\n got: %s\nwant: %s",
				qi, text, dump(sres.Rows), dump(want))
		}

		for n, g := range groups {
			gh, err := g.Submit(b)
			if err != nil {
				t.Fatalf("query %d group(%d) submit: %v", qi, n, err)
			}
			gres := gh.Wait()
			if gres.Err != nil {
				t.Fatalf("query %d group(%d): %v", qi, n, gres.Err)
			}
			if !ref.ResultsEqual(gres.Rows, want) {
				t.Fatalf("query %d: %d-shard group diverges from ref\nquery: %s\n got: %s\nwant: %s",
					qi, n, text, dump(gres.Rows), dump(want))
			}
			if !ref.ResultsEqual(gres.Rows, sres.Rows) {
				t.Fatalf("query %d: %d-shard group diverges from single pipeline", qi, n)
			}
		}
	}
}

func dump(rs []agg.Result) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "\n  group=%v ints=%v counts=%v", r.Group, r.Ints, r.Counts)
	}
	return sb.String()
}
