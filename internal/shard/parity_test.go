package shard_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cjoin/internal/agg"
	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// TestShardParityRandomSSB is the exactness property test: for randomized
// SSB star queries — including GROUP BY, ORDER BY (group columns and
// aggregate aliases, ASC and DESC), LIMIT, and every aggregate function
// (SUM/COUNT/MIN/MAX/AVG) — the sharded Group must return results
// byte-identical (group keys, aggregate ints, and counts) to both a
// single Pipeline and the naive internal/ref executor.
func TestShardParityRandomSSB(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 8, Workers: 2}

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)

	groups := make(map[int]*shard.Group)
	for _, n := range []int{2, 3, 4} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		groups[n] = g
	}

	rng := rand.New(rand.NewSource(42))
	w := ssb.NewWorkload(ds, 0.05, 13)
	texts := make([]string, 0, 40)
	for i := 0; i < 24; i++ {
		_, text := w.Next()
		switch rng.Intn(3) {
		case 0:
			// Exercise AVG partials (sum+count folded across shards).
			text = strings.Replace(text, "SUM(", "AVG(", 1)
		case 1:
			// Exercise group-level LIMIT after the merge.
			text = fmt.Sprintf("%s LIMIT %d", text, rng.Intn(5)+1)
		}
		texts = append(texts, text)
	}
	// Handcrafted queries covering every aggregate at once, ORDER BY on an
	// aggregate alias (ties broken by the stable group-key order), and
	// LIMIT cutting through those ties.
	for _, extra := range []string{
		`SELECT COUNT(*) AS n, MIN(lo_revenue) AS mn, MAX(lo_revenue) AS mx,
		        AVG(lo_quantity) AS aq, SUM(lo_revenue) AS rev, d_year
		 FROM lineorder, date WHERE lo_orderdate = d_datekey
		 GROUP BY d_year ORDER BY d_year`,
		`SELECT SUM(lo_revenue) AS rev, COUNT(*) AS n, d_year, c_nation
		 FROM lineorder, date, customer
		 WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
		 GROUP BY d_year, c_nation ORDER BY rev DESC LIMIT 7`,
		`SELECT AVG(lo_revenue) AS arev, MAX(lo_discount) AS md, s_region
		 FROM lineorder, supplier WHERE lo_suppkey = s_suppkey
		 GROUP BY s_region ORDER BY md DESC, s_region LIMIT 3`,
		`SELECT COUNT(*) AS n FROM lineorder`,
		`SELECT MIN(lo_supplycost) AS mn, MAX(lo_supplycost) AS mx
		 FROM lineorder, part WHERE lo_partkey = p_partkey AND p_mfgr = 'MFGR#1'`,
	} {
		texts = append(texts, extra)
	}

	for qi, text := range texts {
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, text, err)
		}
		b.Snapshot = ds.Txn.Begin()

		want, err := ref.Execute(b)
		if err != nil {
			t.Fatalf("query %d ref: %v", qi, err)
		}

		h, err := single.Submit(b)
		if err != nil {
			t.Fatalf("query %d single submit: %v", qi, err)
		}
		sres := h.Wait()
		if sres.Err != nil {
			t.Fatalf("query %d single: %v", qi, sres.Err)
		}
		if !ref.ResultsEqual(sres.Rows, want) {
			t.Fatalf("query %d: single pipeline diverges from ref\nquery: %s\n got: %s\nwant: %s",
				qi, text, dump(sres.Rows), dump(want))
		}

		for n, g := range groups {
			gh, err := g.Submit(b)
			if err != nil {
				t.Fatalf("query %d group(%d) submit: %v", qi, n, err)
			}
			gres := gh.Wait()
			if gres.Err != nil {
				t.Fatalf("query %d group(%d): %v", qi, n, gres.Err)
			}
			if !ref.ResultsEqual(gres.Rows, want) {
				t.Fatalf("query %d: %d-shard group diverges from ref\nquery: %s\n got: %s\nwant: %s",
					qi, n, text, dump(gres.Rows), dump(want))
			}
			if !ref.ResultsEqual(gres.Rows, sres.Rows) {
				t.Fatalf("query %d: %d-shard group diverges from single pipeline", qi, n)
			}
			// Page-level pruning parity on the strided topology: each
			// shard makes the same per-page zone-map decisions as the
			// single pipeline (bounds forwarded through the stride
			// mapping), so the pages charged across shards must sum to
			// the single pipeline's zone-mapped count exactly.
			if got := gh.PagesScanned(); got != h.PagesScanned() {
				t.Fatalf("query %d: %d strided shards charged %d pages, single pipeline %d",
					qi, n, got, h.PagesScanned())
			}
		}
	}
}

// TestShardParityPartitionedSSB extends the exactness property to
// range-partitioned stars: for randomized SSB queries — the workload
// generator's templates plus AVG and LIMIT mutations and handcrafted
// selective lo_orderdate windows that exercise §5 partition pruning —
// every partition-dealt Group(N shards over P partitions) must return
// results byte-identical to both a single pipeline over the same
// partitioned star and the naive reference executor.
func TestShardParityPartitionedSSB(t *testing.T) {
	const parts = 5
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 7, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 8, Workers: 2}

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)

	groups := make(map[int]*shard.Group)
	for _, n := range []int{2, 3, parts} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		groups[n] = g
	}

	rng := rand.New(rand.NewSource(44))
	w := ssb.NewWorkload(ds, 0.05, 17)
	var texts []string
	for i := 0; i < 16; i++ {
		_, text := w.Next()
		switch rng.Intn(3) {
		case 0:
			text = strings.Replace(text, "SUM(", "AVG(", 1)
		case 1:
			text = fmt.Sprintf("%s LIMIT %d", text, rng.Intn(5)+1)
		}
		texts = append(texts, text)
	}
	// Selective date windows: random spans from sub-partition slivers to
	// multi-partition ranges, so pruning decisions (zero, one, some, all
	// partitions) and the pruned completion path all get exercised across
	// every shard topology.
	keys := ds.DateKeys
	for i := 0; i < 10; i++ {
		lo := rng.Intn(len(keys))
		span := rng.Intn(len(keys)/2) + 1
		hi := lo + span
		if hi >= len(keys) {
			hi = len(keys) - 1
		}
		aggExpr := "SUM(lo_revenue) AS rev"
		if i%3 == 0 {
			aggExpr = "COUNT(*) AS n, AVG(lo_quantity) AS aq"
		}
		texts = append(texts, fmt.Sprintf(
			"SELECT %s, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year ORDER BY d_year",
			aggExpr, keys[lo], keys[hi]))
	}
	// Handcrafted edges: an empty key range (every partition pruned) and
	// an ORDER BY on an aggregate alias cut by LIMIT.
	texts = append(texts,
		"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 1 AND 2 GROUP BY d_year",
		`SELECT SUM(lo_revenue) AS rev, COUNT(*) AS n, MIN(lo_discount) AS mn, MAX(lo_discount) AS mx, d_year, s_region
		 FROM lineorder, date, supplier WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey
		 GROUP BY d_year, s_region ORDER BY rev DESC LIMIT 6`,
	)

	for qi, text := range texts {
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, text, err)
		}
		b.Snapshot = ds.Txn.Begin()

		want, err := ref.Execute(b)
		if err != nil {
			t.Fatalf("query %d ref: %v", qi, err)
		}
		h, err := single.Submit(b)
		if err != nil {
			t.Fatalf("query %d single submit: %v", qi, err)
		}
		sres := h.Wait()
		if sres.Err != nil {
			t.Fatalf("query %d single: %v", qi, sres.Err)
		}
		if !ref.ResultsEqual(sres.Rows, want) {
			t.Fatalf("query %d: single pipeline diverges from ref\nquery: %s\n got: %s\nwant: %s",
				qi, text, dump(sres.Rows), dump(want))
		}
		for n, g := range groups {
			gh, err := g.Submit(b)
			if err != nil {
				t.Fatalf("query %d group(%d) submit: %v", qi, n, err)
			}
			gres := gh.Wait()
			if gres.Err != nil {
				t.Fatalf("query %d group(%d): %v", qi, n, gres.Err)
			}
			if !ref.ResultsEqual(gres.Rows, want) {
				t.Fatalf("query %d: %d-shard partitioned group diverges from ref\nquery: %s\n got: %s\nwant: %s",
					qi, n, text, dump(gres.Rows), dump(want))
			}
			if !ref.ResultsEqual(gres.Rows, sres.Rows) {
				t.Fatalf("query %d: %d-shard partitioned group diverges from single pipeline", qi, n)
			}
			// Pruning parity rides along: pages charged across shards
			// must match the single pipeline's pruned count exactly.
			if got := gh.PagesScanned(); got != h.PagesScanned() {
				t.Fatalf("query %d: %d shards charged %d pages, single pipeline %d",
					qi, n, got, h.PagesScanned())
			}
		}
	}
}

func dump(rs []agg.Result) string {
	var sb strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&sb, "\n  group=%v ints=%v counts=%v", r.Group, r.Ints, r.Counts)
	}
	return sb.String()
}
