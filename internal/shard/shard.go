// Package shard runs N fact-partitioned CJOIN pipelines behind one
// core.Executor — the horizontal scaling tier over the single-pipeline
// operator.
//
// The paper's CJOIN bounds throughput at one pipeline's continuous scan
// rate: every registered query rides the same scan, so adding cores past
// the Stage thread sweet spot buys nothing. Group breaks that bound the
// way partitioned analytic engines do: the fact table is split across N
// inner Pipelines, each with its own continuous scan, Filter stages, and
// Stage layout. A logical query is admitted once — slot and dimension
// state live on the group's shared internal/dimplane.Plane — then
// activated on every shard, and each shard aggregates the fact tuples of
// its own fraction. When all shards complete the cycle, the per-shard
// partial aggregates are merged associatively (agg.Merge), and ORDER BY /
// LIMIT are applied once at the group level, so results are exactly those
// of a single pipeline over the whole fact table.
//
// How the fact table is split depends on its physical layout:
//
//   - An unpartitioned heap is page-strided: pages are dealt round-robin
//     across shards. Page p always belongs to shard p mod N, at
//     shard-local index p div N — positions stay stable as the heap
//     grows, preserving the §3.3.3 requirement that the continuous scan
//     can start and finalize queries at exact positions.
//   - A range-partitioned star (§5) has WHOLE partitions dealt to shards
//     (DealPartitions), balanced by page count so date-skew does not pile
//     onto one shard. Each shard cycles over its own partition subset,
//     which keeps §5 partition pruning intact: a query tagged with the
//     partitions it needs scans, on every shard, only the needed ∩ dealt
//     subset, and the per-shard page charges sum exactly to the single-
//     pipeline pruned count.
//
// Dimension state is NOT replicated across shards: the group owns one
// internal/dimplane.Plane, a logical query is admitted to it exactly
// once (slot allocation + dimension-table installation), and each
// shard's Filter stages probe the same copy-on-write snapshots
// lock-free. Submit is therefore admit-once + fan-out-activate, and the
// paper's admission-cost term stays flat in shard count instead of
// multiplying by N.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/catalog"
	"cjoin/internal/core"
	"cjoin/internal/dimplane"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/query"
)

// RangePartitionedError reports the one range-partitioned topology a
// Group cannot run: more shards than partitions. Whole partitions are
// the sharding unit (pruning owns the scan order inside each), so every
// shard needs at least one — request fewer shards, or partition the
// fact table finer.
//
// The type is exported so callers can distinguish a topology
// misconfiguration from transient failures; it maps itself to HTTP 422
// (Unprocessable Entity) for service layers that surface it.
type RangePartitionedError struct {
	// Shards is the requested shard count.
	Shards int
	// Partitions is the star's range-partition count.
	Partitions int
}

func (e *RangePartitionedError) Error() string {
	return fmt.Sprintf("shard: cannot deal a range-partitioned star's %d partitions to %d shards; whole partitions are the sharding unit — run -shards <= %d, or partition the fact table finer",
		e.Partitions, e.Shards, e.Partitions)
}

// HTTPStatus maps the error to 422 Unprocessable Entity.
func (e *RangePartitionedError) HTTPStatus() int { return 422 }

// Config tunes a Group.
type Config struct {
	// Shards is the number of inner pipelines. <= 1 means a single
	// pipeline (no page striding).
	Shards int
	// Core configures each inner pipeline. Workers is the total Stage
	// thread budget for the whole group and is divided evenly across
	// shards (minimum 1 per shard); FactSource, if set, is the base
	// source the pages of which are strided across shards (unpartitioned
	// stars only). PartSubset must be nil: the group computes the
	// partition deal itself. Fault must be nil: per-shard injectors are
	// derived from the group-level Fault spec below.
	Core core.Config
	// Fault, when set, arms deterministic fault injection: each shard
	// pipeline gets Fault.ForShard(i), and admission faults (plane
	// level, since admission runs once per logical query) are armed when
	// the spec is not targeted at a single shard. Nil means every hook
	// compiles down to a no-op.
	Fault *fault.Spec
	// StallTimeout, when > 0, arms the supervisor's liveness check: a
	// shard whose page counter does not advance for this long while
	// queries are resident is declared failed (StallError) and
	// quarantined. 0 disables stall detection; pipeline failures are
	// still supervised.
	StallTimeout time.Duration
	// Logf, when set, receives supervision events (quarantines) and is
	// passed through to the shard pipelines for failure logging.
	Logf func(format string, args ...any)
	// Obs, when non-nil, wires the telemetry plane through the whole
	// group: per-shard pipeline metrics (labeled by shard index), the
	// shared dimension plane's families, group supervision metrics
	// (cjoin_shard_*), and fault-injection counters. Core.Obs must stay
	// nil — the group threads this registry itself.
	Obs *obs.Registry
}

// DealPartitions assigns partitions to shards balanced by page count —
// LPT (longest-processing-time) greedy: partitions are considered in
// descending page order and each lands on the currently lightest shard,
// so one oversized partition cannot drag whole small ones onto its
// shard. Ties prefer the shard holding fewer partitions (then the lower
// index), which keeps every shard non-empty whenever len(pages) >=
// shards even if some partitions hold zero pages. The returned subsets
// are global partition indices, sorted ascending within each shard so
// the dealt scan preserves the star's partition order. Deterministic:
// the same inputs always produce the same deal, so every layer — group,
// stats, tests — can re-derive the topology.
//
// With fewer partitions than shards the trailing shards come back
// empty; Group rejects that topology (RangePartitionedError) because an
// empty shard has no scan to run.
func DealPartitions(pages []int, shards int) [][]int {
	if shards < 1 {
		shards = 1
	}
	order := make([]int, len(pages))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pages[order[a]] > pages[order[b]] })
	subsets := make([][]int, shards)
	load := make([]int64, shards)
	for _, p := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] ||
				(load[s] == load[best] && len(subsets[s]) < len(subsets[best])) {
				best = s
			}
		}
		subsets[best] = append(subsets[best], p)
		load[best] += int64(pages[p])
	}
	for _, sub := range subsets {
		sort.Ints(sub)
	}
	return subsets
}

// Group is a sharded executor: one logical CJOIN operator composed of N
// fact-partitioned pipelines. It implements core.Executor.
type Group struct {
	star *catalog.Star
	// plane is the group-owned dimension plane: admission and removal
	// run once per logical query; every shard probes its snapshots.
	plane *dimplane.Plane
	pipes []*core.Pipeline
	// subsets is the partition deal behind each shard (global partition
	// indices, index-aligned with pipes); nil for a page-strided group.
	subsets [][]int

	// mu guards lifecycle transitions so Stats/ShardStats snapshots never
	// race Start or Stop — the same snapshot discipline the admission
	// queue applies to its counters.
	mu      sync.Mutex
	started bool
	stopped bool

	// supLock is the supervision lock. Submissions hold the read side
	// across the whole admit + activation fan-out span; quarantine takes
	// the write side to flip a shard out of the serving set and detach
	// its prober. That exclusion is what keeps the plane's
	// retires-expected count equal to the activation width of every
	// in-flight submission.
	supLock sync.RWMutex
	// failed[i] is non-nil once shard i has been quarantined (the
	// pipeline failure cause); guarded by supLock.
	failed  []error
	nFailed int

	superStop chan struct{}
	supWg     sync.WaitGroup
	stall     time.Duration
	logf      func(format string, args ...any)
	om        groupMetrics
}

// groupMetrics holds the group's supervision-tier telemetry handles. The
// zero value (telemetry off) is fully usable: every handle is nil and
// every method call no-ops, except shardUp which is always allocated to
// the shard count so quarantine can index it unconditionally.
type groupMetrics struct {
	quarantines     *obs.Counter
	degradedRejects *obs.Counter
	shardUp         []*obs.Gauge // index-aligned with pipes
}

func newGroupMetrics(r *obs.Registry, n int) groupMetrics {
	gm := groupMetrics{shardUp: make([]*obs.Gauge, n)}
	if r == nil {
		return gm
	}
	gm.quarantines = r.Counter("cjoin_shard_quarantines_total",
		"Shards quarantined by the supervisor (pipeline failure or scan stall).")
	gm.degradedRejects = r.Counter("cjoin_shard_degraded_rejects_total",
		"Submissions rejected in degraded mode: quarantined shards made the query infeasible, or no shard can serve.")
	up := r.GaugeVec("cjoin_shard_up",
		"Shard serving state: 1 healthy, 0 quarantined.", "shard")
	for i := 0; i < n; i++ {
		gm.shardUp[i] = up.With(strconv.Itoa(i))
		gm.shardUp[i].Set(1)
	}
	return gm
}

var (
	_ core.Executor       = (*Group)(nil)
	_ core.BatchSubmitter = (*Group)(nil)
)

// New builds a Group of cfg.Shards pipelines over the star schema. Call
// Start before Submit.
func New(star *catalog.Star, cfg Config) (*Group, error) {
	n := cfg.Shards
	if n <= 1 {
		n = 1
	}
	// A range-partitioned star shards by dealing whole partitions; that
	// needs at least one partition per shard.
	var subsets [][]int
	if star.PartCol >= 0 && n > 1 {
		if nparts := len(star.Partitions()); nparts < n {
			return nil, &RangePartitionedError{Shards: n, Partitions: nparts}
		}
		subsets = DealPartitions(star.PartitionPages(), n)
	}
	if cfg.Core.Plane != nil {
		// The group is the plane's owner: it sizes the prober count to
		// the shard topology and drives the admit/retire lifecycle.
		// Honoring a foreign plane here would silently split admission
		// state between two owners.
		return nil, fmt.Errorf("shard: Config.Core.Plane must be nil; the group constructs and owns the shared dimension plane")
	}
	if cfg.Core.PartSubset != nil {
		// The deal is the group's planning step; a caller-chosen subset
		// would be silently replicated to every shard.
		return nil, fmt.Errorf("shard: Config.Core.PartSubset must be nil; the group deals partitions to shards itself")
	}
	if cfg.Core.Fault != nil {
		// One injector shared across shards would interleave its
		// deterministic schedule nondeterministically; the group derives
		// an independent per-shard injector from the spec instead.
		return nil, fmt.Errorf("shard: Config.Core.Fault must be nil; set Config.Fault and the group derives per-shard injectors")
	}
	if cfg.Core.Obs != nil {
		return nil, fmt.Errorf("shard: Config.Core.Obs must be nil; set Config.Obs and the group threads the registry with per-shard labels")
	}
	workers := cfg.Core.Workers
	if workers <= 0 {
		workers = runtime.NumCPU() / 2
	}
	perShard := workers / n
	if perShard < 1 {
		perShard = 1
	}
	var base core.PageSource = star.Fact.Heap
	if cfg.Core.FactSource != nil {
		base = cfg.Core.FactSource
	}
	// One dimension plane for the whole group, sized from the same
	// effective configuration every shard pipeline will normalize to.
	norm := cfg.Core.Normalized()
	plcfg := dimplane.Config{
		MaxConcurrent: norm.MaxConcurrent,
		LegacyMap:     norm.LegacyMapFilter,
		Obs:           cfg.Obs,
		PredCacheSize: norm.PredCacheSize,
	}
	// Chaos fires inside per-shard injectors; give the derived injectors
	// the group registry so fired faults are observable. The spec is
	// copied, not mutated — the caller's Spec stays theirs.
	fspec := cfg.Fault
	if fspec != nil && cfg.Obs != nil && fspec.Obs == nil {
		fc := *fspec
		fc.Obs = cfg.Obs
		fspec = &fc
	}
	// Admission runs once per logical query on the group plane, so admit
	// faults arm there — but only for specs not targeted at one shard.
	if planeInj := fspec.ForShard(-1); planeInj != nil {
		plcfg.AdmitFault = planeInj.AdmitErr
	}
	plane := dimplane.New(star, n, plcfg)
	g := &Group{star: star, plane: plane, subsets: subsets,
		failed:    make([]error, n),
		superStop: make(chan struct{}),
		stall:     cfg.StallTimeout,
		logf:      cfg.Logf,
		om:        newGroupMetrics(cfg.Obs, n),
	}
	for i := 0; i < n; i++ {
		cc := cfg.Core
		cc.MaxConcurrent = norm.MaxConcurrent
		cc.Workers = perShard
		cc.Plane = plane
		cc.Fault = fspec.ForShard(i)
		cc.Obs = cfg.Obs
		cc.ObsShard = i
		if cc.Logf == nil {
			cc.Logf = cfg.Logf
		}
		if n > 1 {
			if subsets != nil {
				cc.PartSubset = subsets[i]
			} else {
				cc.FactSource = &stridedSource{src: base, offset: i, stride: n}
			}
		}
		p, err := core.NewPipeline(star, cc)
		if err != nil {
			for _, built := range g.pipes {
				built.Stop()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		g.pipes = append(g.pipes, p)
	}
	return g, nil
}

// Plane returns the group-owned dimension plane (shared by every shard).
func (g *Group) Plane() *dimplane.Plane { return g.plane }

// NumShards returns the number of inner pipelines.
func (g *Group) NumShards() int { return len(g.pipes) }

// ShardPartitions returns the global partition indices dealt to each
// shard, index-aligned with the shard topology, or nil for a
// page-strided (unpartitioned) group. The returned slices are copies.
func (g *Group) ShardPartitions() [][]int {
	if g.subsets == nil {
		return nil
	}
	out := make([][]int, len(g.subsets))
	for i, sub := range g.subsets {
		out[i] = append([]int(nil), sub...)
	}
	return out
}

// Start launches every shard pipeline.
func (g *Group) Start() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		return
	}
	for _, p := range g.pipes {
		p.Start()
	}
	g.supervise()
	g.started = true
}

// Stop shuts every shard down in parallel. In-flight queries receive
// ErrPipelineStopped.
func (g *Group) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	g.mu.Unlock()
	// Retire the supervisor first so a clean shutdown is never mistaken
	// for a failure cascade.
	close(g.superStop)
	g.supWg.Wait()
	var wg sync.WaitGroup
	for _, p := range g.pipes {
		wg.Add(1)
		go func(p *core.Pipeline) { defer wg.Done(); p.Stop() }(p)
	}
	wg.Wait()
}

// MaxConcurrent returns the group's maxConc bound: the shared plane's
// slot count, which every logical query occupies exactly one of.
func (g *Group) MaxConcurrent() int { return g.pipes[0].MaxConcurrent() }

// ActiveQueries returns the number of queries currently registered
// (the maximum across shards: shards retire a finishing query at
// slightly different times).
func (g *Group) ActiveQueries() int {
	n := 0
	for _, p := range g.pipes {
		if a := p.ActiveQueries(); a > n {
			n = a
		}
	}
	return n
}

// Quiesce blocks until no queries are in flight on any shard.
func (g *Group) Quiesce() {
	for _, p := range g.pipes {
		p.Quiesce()
	}
}

// Submit broadcasts the query to every shard (Algorithm 1 per shard) and
// returns a handle that gathers and merges the per-shard partials.
func (g *Group) Submit(q *query.Bound) (core.Handle, error) {
	return g.SubmitCtx(context.Background(), q)
}

// SubmitCtx is Submit with a context governing admission. The dimension
// half of Algorithm 1 runs exactly once, on the group's shared plane;
// only the per-shard Preprocessor installation (lines 17–22) fans out.
func (g *Group) SubmitCtx(ctx context.Context, q *query.Bound) (core.Handle, error) {
	if len(g.pipes) == 1 {
		return g.pipes[0].SubmitCtx(ctx, q)
	}
	start := time.Now()

	// The read side of the supervision lock is held across the whole
	// admit + fan-out span: quarantine (which detaches a prober and so
	// changes the number of retires a slot expects) cannot land in the
	// middle, so the activation width below always matches what Admit
	// charged the slot with.
	g.supLock.RLock()
	if g.nFailed == len(g.pipes) {
		dead := g.firstFailedLocked()
		cause := g.failed[dead]
		g.supLock.RUnlock()
		g.om.degradedRejects.Inc()
		return nil, &ShardFailedError{Shard: -1, Cause: cause}
	}

	// Admit once: allocate the query slot and load the dimension
	// predicate selections into the shared stores.
	slot, err := g.plane.Admit(ctx, q)
	if err != nil {
		g.supLock.RUnlock()
		if errors.Is(err, dimplane.ErrSlotsExhausted) {
			return nil, core.ErrTooManyQueries
		}
		return nil, err
	}
	h, err := g.activateAdmittedLocked(ctx, q, slot, start)
	g.supLock.RUnlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Canceled during the installation stall after every shard
		// accepted: abort the admission cleanly, as the single-pipeline
		// path does — every shard retires through the cancel lifecycle.
		h.Cancel()
		return nil, err
	}
	return h, nil
}

// activateAdmittedLocked fans one plane-admitted query out to every
// healthy shard and returns its merged handle. The caller holds the
// supervision read lock across the plane admission AND this call, so
// quarantine (which changes the number of retires a slot expects)
// cannot land between them; both SubmitCtx and SubmitBatch build on it.
// On error the slot has been fully released (Abort, compensating
// Retires, or the cancel lifecycle) — the caller only reports.
func (g *Group) activateAdmittedLocked(ctx context.Context, q *query.Bound, slot int, start time.Time) (*groupHandle, error) {
	// Degraded mode: accept only queries the survivors can answer
	// exactly. Infeasible ones abort the admission they just made and
	// fail fast with the typed, retryable shard error.
	if ok, dead := g.feasibleLocked(q, slot); !ok {
		cause := g.failed[dead]
		g.plane.Abort(slot)
		g.om.degradedRejects.Inc()
		return nil, &ShardFailedError{Shard: dead, Cause: cause}
	}
	healthy := make([]int, 0, len(g.pipes))
	for i := range g.pipes {
		if g.failed[i] == nil {
			healthy = append(healthy, i)
		}
	}

	// Shards aggregate partials: ORDER BY and LIMIT must not truncate a
	// shard's groups before the merge, so they are stripped here and
	// re-applied once over the merged results. The Bound is otherwise
	// read-only during execution and safely shared by all shards.
	pq := *q
	pq.OrderBy = nil
	pq.Limit = -1

	subs := make([]core.Handle, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for j, i := range healthy {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			subs[j], errs[j] = g.pipes[i].Activate(ctx, &pq, slot)
		}(j, i)
	}
	wg.Wait()
	if fi := firstErrorIdx(errs); fi >= 0 {
		// Partial activation: rolling back is one-plane bookkeeping.
		// Activated shards retire their hold through the normal cancel
		// lifecycle; shards that failed never will, so compensate with
		// one Retire each — except ErrPipelineStopped, where the
		// shutdown sweep owns the query and released the hold already
		// (see Pipeline.Activate's contract).
		for j, sh := range subs {
			if sh != nil {
				sh.Cancel()
			} else if !errors.Is(errs[j], core.ErrPipelineStopped) {
				g.plane.Retire(slot)
			}
		}
		err := errs[fi]
		if errors.Is(err, core.ErrPipelineStopped) {
			// A shard that failed mid-activation reports "stopped"; the
			// serving tier re-types it with the real cause.
			if f := g.pipes[healthy[fi]].FailureCause(); f != nil {
				err = f
			}
		}
		return nil, typeShardErr(healthy[fi], err)
	}

	h := &groupHandle{
		g:          g,
		bound:      q,
		subs:       subs,
		shards:     healthy,
		submission: time.Since(start),
		resultCh:   make(chan core.QueryResult, 1),
		done:       make(chan struct{}),
	}
	go h.gather()
	return h, nil
}

// SubmitBatch admits K queries in one shared-plane round and fans each
// out to the healthy shards, all under one hold of the supervision
// read lock — the batch counterpart of SubmitCtx with identical
// quarantine-safety. A whole-batch failure (slot exhaustion, scan
// error, all shards down) admits nothing and returns err; per-query
// activation failures land in errs. See core.BatchSubmitter.
func (g *Group) SubmitBatch(ctx context.Context, qs []*query.Bound) ([]core.Handle, []error, error) {
	if len(g.pipes) == 1 {
		return g.pipes[0].SubmitBatch(ctx, qs)
	}
	start := time.Now()
	g.supLock.RLock()
	if g.nFailed == len(g.pipes) {
		dead := g.firstFailedLocked()
		cause := g.failed[dead]
		g.supLock.RUnlock()
		g.om.degradedRejects.Inc()
		return nil, nil, &ShardFailedError{Shard: -1, Cause: cause}
	}
	slots, err := g.plane.AdmitBatch(ctx, qs)
	if err != nil {
		g.supLock.RUnlock()
		if errors.Is(err, dimplane.ErrSlotsExhausted) {
			return nil, nil, core.ErrTooManyQueries
		}
		return nil, nil, err
	}
	handles := make([]core.Handle, len(qs))
	errs := make([]error, len(qs))
	for i, q := range qs {
		var h *groupHandle
		h, errs[i] = g.activateAdmittedLocked(ctx, q, slots[i], start)
		if errs[i] == nil {
			handles[i] = h
		}
	}
	g.supLock.RUnlock()
	if cerr := ctx.Err(); cerr != nil {
		for i, h := range handles {
			if h != nil {
				h.Cancel()
				handles[i], errs[i] = nil, cerr
			}
		}
	}
	return handles, errs, nil
}

// firstErrorIdx returns the index of the first non-nil error, -1 if
// none.
func firstErrorIdx(errs []error) int {
	for i, err := range errs {
		if err != nil {
			return i
		}
	}
	return -1
}

// Stats returns group-wide counters: scan and filter activity summed
// across shards, dimension-plane figures (admission time, resident
// store bytes) reported once — the stores are shared, not replicated —
// with shard 0's filter order as representative.
func (g *Group) Stats() core.Stats {
	merged, _ := g.StatsWithShards()
	return merged
}

// StatsWithShards returns the per-shard counters and their merge derived
// from one snapshot, so the breakdown always sums exactly to the totals
// — the consistency /stats promises its consumers.
func (g *Group) StatsWithShards() (core.Stats, []core.Stats) {
	per := g.ShardStats()
	out := core.Stats{CollectedAt: time.Now(), State: core.ShardHealthy}
	down := 0
	for i, s := range per {
		out.TuplesScanned += s.TuplesScanned
		out.TuplesEmitted += s.TuplesEmitted
		out.PagesRead += s.PagesRead
		out.ScanCycles += s.ScanCycles
		out.ScanRetries += s.ScanRetries
		out.PagesPrunedPartition += s.PagesPrunedPartition
		out.PagesPrunedZonemap += s.PagesPrunedZonemap
		out.PagesSkippedZonemap += s.PagesSkippedZonemap
		if s.State == core.ShardFailed {
			down++
		}
		if i == 0 {
			out.FilterOrder = s.FilterOrder
			out.Filters = append([]core.FilterStats(nil), s.Filters...)
			continue
		}
		for j := range s.Filters {
			if j >= len(out.Filters) {
				break
			}
			// Stored deliberately not summed: every shard probes the
			// same plane-owned store, so shard 0's reading already is
			// the whole table.
			out.Filters[j].TuplesIn += s.Filters[j].TuplesIn
			out.Filters[j].Probes += s.Filters[j].Probes
			out.Filters[j].Drops += s.Filters[j].Drops
		}
	}
	if down == len(per) {
		// The merged row mirrors Health: all shards down is a failed
		// group; anything less keeps serving (degraded state is the
		// per-shard breakdown's story).
		out.State = core.ShardFailed
	}
	ps := g.plane.Stats()
	out.DimAdmits = ps.Admits
	out.DimAdmitNanos = ps.AdmitNanos
	out.PlaneBytes = ps.MemBytes
	out.PlanePeakBytes = ps.PeakMemBytes
	out.PlanePipelines = ps.Probers
	out.PlaneCacheHits = ps.CacheHits
	out.PlaneCacheMisses = ps.CacheMisses
	out.PlanePublishes = ps.SnapshotPublishes
	out.PlaneBatchAdmits = ps.BatchAdmits
	out.PlaneBatchQueries = ps.BatchQueries
	return out, per
}

// ShardStats snapshots every shard pipeline's counters, index-aligned
// with the shard topology. Safe to call concurrently with startup and
// drain.
func (g *Group) ShardStats() []core.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]core.Stats, len(g.pipes))
	for i, p := range g.pipes {
		out[i] = p.Stats()
	}
	return out
}

// groupHandle is the core.Handle over one broadcast query: it gathers
// per-shard partial aggregates, merges them, and applies the original
// query's ORDER BY / LIMIT once.
type groupHandle struct {
	g     *Group
	bound *query.Bound
	subs  []core.Handle
	// shards holds the global shard index behind each sub handle (a
	// degraded-mode submission skips quarantined shards, so sub j is not
	// necessarily shard j).
	shards     []int
	submission time.Duration

	resultCh  chan core.QueryResult
	done      chan struct{}
	delivered atomic.Bool
	canceled  atomic.Bool
}

var _ core.Handle = (*groupHandle)(nil)

func (h *groupHandle) deliver(res core.QueryResult) {
	if h.delivered.CompareAndSwap(false, true) {
		h.resultCh <- res
	}
}

// gather is the scatter/gather tail: wait for every shard, merge the
// partials, sort and truncate once, deliver, then close done after every
// shard slot has been recycled.
func (h *groupHandle) gather() {
	parts := make([][]agg.Result, len(h.subs))
	var firstErr error
	for i, sh := range h.subs {
		res := sh.Wait()
		if res.Err != nil && firstErr == nil {
			// A shard lost to failure surfaces as the serving tier's
			// typed, retryable error; cancel and clean stop pass through.
			firstErr = typeShardErr(h.shards[i], res.Err)
		}
		parts[i] = res.Rows
	}
	if firstErr != nil {
		// One shard failed or was canceled: retire the query everywhere
		// (idempotent for shards already done) and surface the first
		// error.
		for _, sh := range h.subs {
			sh.Cancel()
		}
		h.deliver(core.QueryResult{Err: firstErr})
	} else {
		rows := agg.Merge(h.bound.Aggs, parts...)
		query.SortResults(rows, h.bound.OrderBy)
		rows = h.bound.ApplyLimit(rows)
		h.deliver(core.QueryResult{Rows: rows})
	}
	for _, sh := range h.subs {
		<-sh.Done()
	}
	close(h.done)
}

// Slot returns shard 0's query identifier (slots are per-shard; shard 0
// is the representative).
func (h *groupHandle) Slot() int { return h.subs[0].Slot() }

// Wait blocks until every shard completes and returns the merged result.
func (h *groupHandle) Wait() core.QueryResult { return <-h.resultCh }

// Done returns a channel closed once every shard has recycled the
// query's slot.
func (h *groupHandle) Done() <-chan struct{} { return h.done }

// Cancel abandons the query on every shard; ErrQueryCanceled is
// delivered immediately.
func (h *groupHandle) Cancel() bool {
	if !h.delivered.CompareAndSwap(false, true) {
		return false
	}
	h.canceled.Store(true)
	h.resultCh <- core.QueryResult{Err: core.ErrQueryCanceled}
	for _, sh := range h.subs {
		sh.Cancel()
	}
	return true
}

// Canceled reports whether the query was abandoned via Cancel.
func (h *groupHandle) Canceled() bool { return h.canceled.Load() }

// PagesScanned sums the fact pages charged to the query across shards.
func (h *groupHandle) PagesScanned() int64 {
	var n int64
	for _, sh := range h.subs {
		n += sh.PagesScanned()
	}
	return n
}

// Progress averages shard progress. Both deals balance shards by page
// count — striding keeps them within one page, partition dealing within
// one partition's pages — so the unweighted mean is a good estimate; a
// shard with nothing to scan for this query (every dealt partition
// pruned) reports 1 and only pulls the mean toward completion.
func (h *groupHandle) Progress() float64 {
	var sum float64
	for _, sh := range h.subs {
		sum += sh.Progress()
	}
	return sum / float64(len(h.subs))
}

// ETA is the slowest shard's estimate — the group completes when its
// last shard does. ok only once every shard has an estimate.
func (h *groupHandle) ETA() (time.Duration, bool) {
	if h.delivered.Load() {
		return 0, true
	}
	var max time.Duration
	for _, sh := range h.subs {
		eta, ok := sh.ETA()
		if !ok {
			return 0, false
		}
		if eta > max {
			max = eta
		}
	}
	return max, true
}

// Submission is the broadcast registration latency: from SubmitCtx entry
// until the slowest shard's query-start control tuple was in its
// pipeline.
func (h *groupHandle) Submission() time.Duration { return h.submission }

// stridedSource exposes pages offset, offset+stride, offset+2*stride, …
// of an underlying source as one shard's continuous-scan input. Shard
// page j maps to base page offset + j*stride, a position that never
// changes as the base grows — appended tail pages join the owning
// shard's cycle at a fresh, stable position, exactly like a growing heap
// under a single pipeline.
type stridedSource struct {
	src            core.PageSource
	offset, stride int
}

var _ core.PageSource = (*stridedSource)(nil)

func (s *stridedSource) NumCols() int     { return s.src.NumCols() }
func (s *stridedSource) RowsPerPage() int { return s.src.RowsPerPage() }

func (s *stridedSource) NumPages() int {
	n := s.src.NumPages()
	if n <= s.offset {
		return 0
	}
	return (n - s.offset + s.stride - 1) / s.stride
}

func (s *stridedSource) ReadPage(page int, dst []int64, scratch []byte) (int, error) {
	return s.src.ReadPage(s.offset+page*s.stride, dst, scratch)
}

// PageColBounds forwards the zone-map synopsis of the base source under
// the same page mapping, so a shard's per-page pruning decisions are
// identical to the single pipeline's for the pages it owns — the
// page-level half of the pruning-parity invariant. A base source without
// zone maps answers ok=false (no pruning), never wrong bounds.
func (s *stridedSource) PageColBounds(page, col int) (min, max int64, ok bool) {
	if b, isB := s.src.(core.BoundsSource); isB {
		return b.PageColBounds(s.offset+page*s.stride, col)
	}
	return 0, 0, false
}

var _ core.BoundsSource = (*stridedSource)(nil)
