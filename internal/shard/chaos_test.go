package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/fault"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// chaosGroup builds and starts a group with an armed fault spec.
func chaosGroup(t testing.TB, ds *ssb.Dataset, shards int, spec string, stall time.Duration) *shard.Group {
	t.Helper()
	fs, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := shard.New(ds.Star, shard.Config{
		Shards:       shards,
		Core:         core.Config{MaxConcurrent: 8, Workers: 2},
		Fault:        fs,
		StallTimeout: stall,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	return g
}

// waitDegraded blocks until the supervisor has quarantined a shard.
func waitDegraded(t testing.TB, g *shard.Group) core.Health {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if h := g.Health(); h.Degraded() {
			return h
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("group never entered degraded state: %+v", g.Health())
	return core.Health{}
}

// waitSlotsFree polls the plane down to zero slots in use.
func waitSlotsFree(t testing.TB, g *shard.Group) {
	t.Helper()
	pl := g.Plane()
	deadline := time.Now().Add(10 * time.Second)
	for pl.InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pl.InUse(); got != 0 {
		t.Fatalf("%d plane slots leaked", got)
	}
}

// expectShardFailed asserts the typed, retryable serving-tier error.
func expectShardFailed(t testing.TB, err error) *shard.ShardFailedError {
	t.Helper()
	var sfe *shard.ShardFailedError
	if !errors.As(err, &sfe) {
		t.Fatalf("error %v, want *shard.ShardFailedError", err)
	}
	if !sfe.Retryable() || sfe.HTTPStatus() != 503 || sfe.RetryAfter() <= 0 {
		t.Fatalf("shard failure contract: retryable=%v status=%d after=%v",
			sfe.Retryable(), sfe.HTTPStatus(), sfe.RetryAfter())
	}
	return sfe
}

// refRows executes the query against the reference engine and renders
// both result sets for exact comparison.
func assertParity(t testing.TB, b *query.Bound, got *core.QueryResult) {
	t.Helper()
	want, err := ref.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.ResultsEqual(got.Rows, want) {
		t.Fatalf("results diverged from reference\n got %v\nwant %v", got.Rows, want)
	}
}

// TestChaosTransientAbsorbed is the positive control: a shard with a
// lossy (but healing) page source absorbs every fault in the
// page-boundary retry loop — queries stay parity-exact, health stays
// ok, and the merged stats record the absorbed retries.
func TestChaosTransientAbsorbed(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{})
	g := chaosGroup(t, ds, 4, "seed=7;shard=1;scan-err=0.08", 0)
	for i := 0; i < 4; i++ {
		b := bind(t, ds, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year")
		h, err := g.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatalf("query %d failed through transient faults: %v", i, res.Err)
		}
		assertParity(t, b, &res)
		<-h.Done()
	}
	if h := g.Health(); h.State != "ok" {
		t.Fatalf("transient faults degraded the group: %+v", h)
	}
	if st := g.Stats(); st.ScanRetries == 0 {
		t.Fatal("no scan retries recorded despite scan-err=0.08")
	}
	waitSlotsFree(t, g)
}

// TestStridedShardFailure kills one shard of a page-strided group with a
// hard page failure: the in-flight query gets the typed retryable
// error, the supervisor quarantines the shard, and — since every shard
// of a strided group holds an interleaved slice of every query's pages —
// all new submissions fail fast with the same typed error while the
// daemon itself stays up.
func TestStridedShardFailure(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{})
	g := chaosGroup(t, ds, 4, "seed=3;shard=2;scan-fail=0", 0)

	b := bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey")
	h, err := g.Submit(b)
	if err != nil {
		// The failure can land before activation completes; either way
		// it must be typed.
		expectShardFailed(t, err)
	} else {
		res := h.Wait()
		sfe := expectShardFailed(t, res.Err)
		if sfe.Shard != 2 {
			t.Fatalf("failure attributed to shard %d, want 2", sfe.Shard)
		}
		var fe *fault.Error
		if !errors.As(res.Err, &fe) || !fe.Hard {
			t.Fatalf("cause %v does not carry the injected hard *fault.Error", res.Err)
		}
		<-h.Done()
	}

	health := waitDegraded(t, g)
	for _, sh := range health.Shards {
		want := core.ShardHealthy
		if sh.Shard == 2 {
			want = core.ShardFailed
		}
		if sh.State != want {
			t.Fatalf("shard %d state %q, want %q", sh.Shard, sh.State, want)
		}
	}

	// Strided topology: no query is feasible without shard 2. The
	// rejection is immediate (no activation), typed, and leaks nothing.
	_, err = g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if sfe := expectShardFailed(t, err); sfe.Shard != 2 {
		t.Fatalf("degraded rejection names shard %d, want 2", sfe.Shard)
	}
	waitSlotsFree(t, g)

	// Per-shard stats carry the terminal state for /stats.
	_, per := g.StatsWithShards()
	if per[2].State != core.ShardFailed || per[2].FailureCause == "" {
		t.Fatalf("shard 2 stats do not report the failure: %+v", per[2])
	}
	if per[0].State != core.ShardHealthy {
		t.Fatalf("surviving shard reported %q", per[0].State)
	}
}

// TestPartitionedDegradedServing is the graceful-degradation
// acceptance: on a partition-dealt group, losing one shard fails only
// the queries that need its partitions. Queries over surviving
// partitions keep completing parity-exact, infeasible ones get the
// typed retryable rejection, and the §5 pruning metadata is what
// decides which is which.
func TestPartitionedDegradedServing(t *testing.T) {
	ds := genPartitionedDataset(t, 2000, 4, disk.Config{})
	g := chaosGroup(t, ds, 4, "seed=5;shard=2;scan-fail=0", 0)

	// A full-table query needs shard 2's partitions: it trips the
	// injected hard failure and dies typed.
	b := bind(t, ds, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year")
	if h, err := g.Submit(b); err != nil {
		expectShardFailed(t, err)
	} else {
		expectShardFailed(t, h.Wait().Err)
		<-h.Done()
	}
	waitDegraded(t, g)

	// Narrow single-key windows: keys living in surviving partitions
	// must complete exactly; keys in the dead shard's partitions must be
	// rejected typed — before any activation.
	served, rejected := 0, 0
	for _, k := range ds.DateKeys {
		b := bind(t, ds, fmt.Sprintf(
			"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year", k, k))
		h, err := g.Submit(b)
		if err != nil {
			if sfe := expectShardFailed(t, err); sfe.Shard != 2 {
				t.Fatalf("rejection names shard %d, want 2", sfe.Shard)
			}
			rejected++
			continue
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatalf("feasible query failed: %v", res.Err)
		}
		assertParity(t, b, &res)
		<-h.Done()
		served++
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("degraded serving not partial: %d served, %d rejected", served, rejected)
	}
	t.Logf("degraded mode: %d date keys served exactly, %d rejected retryable", served, rejected)

	// The full-table query is infeasible now and must be refused without
	// touching the pipelines.
	expectShardFailed(t, func() error {
		_, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		return err
	}())
	waitSlotsFree(t, g)
}

// TestStallSupervision arms a permanent scan stall on one shard: the
// supervisor's liveness check must declare it dead (StallError), fail
// the resident query with the typed error, and quarantine the shard —
// the stalled read itself is interrupted by the failure, so nothing
// leaks.
func TestStallSupervision(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{})
	g := chaosGroup(t, ds, 4, "seed=2;shard=2;scan-stall=30s@1", 250*time.Millisecond)

	h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	sfe := expectShardFailed(t, res.Err)
	if sfe.Shard != 2 {
		t.Fatalf("stall attributed to shard %d, want 2", sfe.Shard)
	}
	var se *shard.StallError
	if !errors.As(res.Err, &se) {
		t.Fatalf("cause %v does not carry *shard.StallError", res.Err)
	}
	if se.Stalled < 250*time.Millisecond {
		t.Fatalf("declared stalled after only %v", se.Stalled)
	}
	<-h.Done()
	waitDegraded(t, g)
	waitSlotsFree(t, g)
}

// TestCancelRacingShardFailure locks in the exactly-once slot-release
// guarantee under the worst interleaving: Handle.Cancel racing the
// failed pipeline's sweep of the same queries. A double release panics
// inside the plane (over-retire) or the slot allocator (double free); a
// leak fails the plane drain check. Run under -race in CI.
func TestCancelRacingShardFailure(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{SeqBytesPerSec: 16 << 20})
	for seed := 0; seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := chaosGroup(t, ds, 4, fmt.Sprintf("seed=%d;shard=1;scan-fail=%d", seed, seed%3), 0)
			rng := rand.New(rand.NewSource(int64(seed)))

			var hs []core.Handle
			for i := 0; i < 4; i++ {
				h, err := g.Submit(bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey"))
				if err != nil {
					expectShardFailed(t, err)
					continue
				}
				hs = append(hs, h)
			}
			// Cancel every handle from two goroutines each, at a random
			// delay, while shard 1's hard failure sweeps the same slots.
			var wg sync.WaitGroup
			for _, h := range hs {
				for c := 0; c < 2; c++ {
					wg.Add(1)
					go func(h core.Handle, d time.Duration) {
						defer wg.Done()
						time.Sleep(d)
						h.Cancel()
					}(h, time.Duration(rng.Intn(3000))*time.Microsecond)
				}
			}
			wg.Wait()
			for _, h := range hs {
				res := h.Wait()
				if res.Err == nil {
					t.Fatal("query reported success while racing cancel and shard failure")
				}
				<-h.Done()
			}
			waitSlotsFree(t, g)
		})
	}
}

// TestChaosChurnPartitioned is the full chaos churn: a partition-dealt
// group with a shard that first degrades (transient scan errors) and
// then dies mid-workload, under concurrent submission and cancellation
// churn. Every query must end in exactly one of: parity-exact success,
// clean cancellation, or the typed retryable shard failure — and the
// plane must drain to zero with every dimension store released. Run
// under -race in CI.
func TestChaosChurnPartitioned(t *testing.T) {
	ds := genPartitionedDataset(t, 2000, 4, disk.Config{SeqBytesPerSec: 32 << 20})
	g := chaosGroup(t, ds, 4, "seed=11;shard=3;scan-err=0.02;scan-fail=40", 0)
	runChaosChurn(t, ds, g, 3)
}

// TestChaosChurnStrided runs the same churn over a page-strided group:
// after the shard dies every submission is infeasible, so the test
// exercises the fail-fast rejection path under churn as well.
func TestChaosChurnStrided(t *testing.T) {
	ds := genDataset(t, 2000, disk.Config{SeqBytesPerSec: 32 << 20})
	// The kill lands a few scan cycles in (pages are counted
	// monotonically across cycles) so the first wave of queries
	// completes before the loss.
	g := chaosGroup(t, ds, 4, "seed=13;shard=1;scan-err=0.02;scan-fail=40", 0)
	runChaosChurn(t, ds, g, 1)
}

func runChaosChurn(t *testing.T, ds *ssb.Dataset, g *shard.Group, deadShard int) {
	t.Helper()
	const iters = 48
	keys := ds.DateKeys
	sem := make(chan struct{}, 6)
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[string]int{}
	record := func(k string) { mu.Lock(); outcomes[k]++; mu.Unlock() }

	// Warm-up: one query completes before the armed kill page is
	// reached, so "survivors kept serving" is guaranteed, not timing-
	// dependent. The shared scan means the whole churn may ride a
	// handful of cycles — the kill can land anywhere inside it.
	warm := bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey")
	if h, err := g.Submit(warm); err != nil {
		t.Fatalf("warm-up rejected: %v", err)
	} else if res := h.Wait(); res.Err != nil {
		t.Fatalf("warm-up failed before the kill page: %v", res.Err)
	} else {
		assertParity(t, warm, &res)
		<-h.Done()
		record("served")
	}

	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			var sql string
			if i%3 == 0 {
				sql = "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"
			} else {
				lo := rng.Intn(len(keys) - 1)
				hi := lo + rng.Intn(len(keys)-lo-1) + 1
				sql = fmt.Sprintf(
					"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
					keys[lo], keys[hi])
			}
			b := bind(t, ds, sql)
			var h core.Handle
			var err error
			for {
				h, err = g.SubmitCtx(context.Background(), b)
				if !errors.Is(err, core.ErrTooManyQueries) {
					break
				}
				time.Sleep(200 * time.Microsecond)
			}
			if err != nil {
				var sfe *shard.ShardFailedError
				if !errors.As(err, &sfe) {
					t.Errorf("submit %d: untyped error %v", i, err)
					return
				}
				if !sfe.Retryable() {
					t.Errorf("submit %d: shard failure not retryable", i)
				}
				record("rejected")
				return
			}
			if i%4 == 1 {
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				h.Cancel()
			}
			res := h.Wait()
			<-h.Done()
			switch {
			case res.Err == nil:
				assertParity(t, b, &res)
				record("served")
			case errors.Is(res.Err, core.ErrQueryCanceled):
				record("canceled")
			default:
				var sfe *shard.ShardFailedError
				if !errors.As(res.Err, &sfe) {
					t.Errorf("query %d: untyped failure %v", i, res.Err)
					return
				}
				record("shard-failed")
			}
		}(i)
	}
	wg.Wait()

	// If the churn rode too few scan cycles to reach the kill page,
	// keep the scan moving until the injected failure lands.
	for drive := 0; drive < 400 && !g.Health().Degraded(); drive++ {
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			expectShardFailed(t, err)
			record("rejected")
			break
		}
		res := h.Wait()
		<-h.Done()
		if res.Err != nil {
			expectShardFailed(t, res.Err)
			record("shard-failed")
		}
	}

	g.Quiesce()
	waitSlotsFree(t, g)
	pl := g.Plane()
	for d := 0; d < pl.NumDims(); d++ {
		st := pl.Store(d)
		if st.Len() != 0 || st.RefCount() != 0 {
			t.Fatalf("dimension %d not released after chaos churn: len=%d refs=%d", d, st.Len(), st.RefCount())
		}
	}
	h := g.Health()
	if !h.Degraded() {
		t.Fatalf("shard %d never died during churn: %+v (outcomes %v)", deadShard, h, outcomes)
	}
	if h.Shards[deadShard].State != core.ShardFailed {
		t.Fatalf("wrong shard quarantined: %+v", h.Shards)
	}
	if outcomes["served"] == 0 {
		t.Fatalf("no query served through the chaos: %v", outcomes)
	}
	if outcomes["shard-failed"]+outcomes["rejected"] == 0 {
		t.Fatalf("shard death never surfaced to a query: %v", outcomes)
	}
	t.Logf("chaos churn outcomes: %v", outcomes)
}
