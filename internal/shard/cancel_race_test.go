package shard_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// runCancelChurn abandons queries at random points — before activation
// (a pre-canceled context), mid-admission (a context canceled
// concurrently with SubmitCtx), and mid-flight (Handle.Cancel at a
// random delay, racing both the scan and a concurrent duplicate Cancel).
// Each query's slot and bit-vector column must be released exactly once
// across all shards: a double release panics inside the plane
// (over-retire) or the slot allocator (double free), and a leak shows up
// as a non-empty plane after quiescing. Run under -race in CI.
func runCancelChurn(t *testing.T, ds *ssb.Dataset, g *shard.Group, sqlFor func(i int, rng *rand.Rand) string) {
	t.Helper()
	const iters = 60
	// Gate concurrency below maxConc (8). Canceled queries release their
	// plane slot asynchronously — at the next page boundary, once every
	// shard's cleanup has retired its hold — so admission can still see
	// a transiently full plane; submits retry through that. A double
	// release, by contrast, panics immediately (plane over-retire or
	// allocator double-free), and a leak fails the end-state checks.
	sem := make(chan struct{}, 6)
	submitRetry := func(ctx context.Context, b *query.Bound) (core.Handle, error) {
		for {
			h, err := g.SubmitCtx(ctx, b)
			if !errors.Is(err, core.ErrTooManyQueries) {
				return h, err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			b := bind(t, ds, sqlFor(i, rng))
			switch i % 3 {
			case 0:
				// Canceled before admission: no slot may be consumed.
				// (A transiently full plane short-circuits before the
				// context check; both errors are acceptable.)
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := g.SubmitCtx(ctx, b); !errors.Is(err, context.Canceled) &&
					!errors.Is(err, core.ErrTooManyQueries) {
					t.Errorf("pre-canceled submit: %v", err)
				}
			case 1:
				// Canceled concurrently with admission/activation: either
				// outcome is fine, but an admitted query must still
				// deliver and release.
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					cancel()
				}()
				h, err := submitRetry(ctx, b)
				cancel()
				if err != nil {
					return
				}
				h.Cancel()
				<-h.Done()
			default:
				// Canceled mid-flight, racing a duplicate Cancel.
				h, err := submitRetry(context.Background(), b)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				wins := make(chan bool, 2)
				var cwg sync.WaitGroup
				for c := 0; c < 2; c++ {
					cwg.Add(1)
					go func() { defer cwg.Done(); wins <- h.Cancel() }()
				}
				cwg.Wait()
				// At most one Cancel call may win; none, if the query
				// finished first.
				if <-wins && <-wins {
					t.Error("both Cancel calls claimed the cancellation")
				}
				<-h.Done()
			}
		}(i)
	}
	wg.Wait()

	g.Quiesce()
	pl := g.Plane()
	// Quiesce tracks pipeline registration; the final plane retire can
	// trail it by a hair, so poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for pl.InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pl.InUse() != 0 {
		t.Fatalf("%d plane slots leaked after churn", pl.InUse())
	}
	for d := 0; d < pl.NumDims(); d++ {
		st := pl.Store(d)
		if st.Len() != 0 || st.RefCount() != 0 {
			t.Fatalf("dimension %d not released: len=%d refs=%d", d, st.Len(), st.RefCount())
		}
	}
	// The plane must still be fully serviceable: fill every slot again.
	var hs []core.Handle
	for i := 0; i < g.MaxConcurrent(); i++ {
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			t.Fatalf("slot %d not reusable after churn: %v", i, err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		if res := h.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		<-h.Done()
	}
}

// TestSharedPlaneCancelChurn is the cancellation stress test for the
// shared dimension plane over a page-strided (unpartitioned) group.
func TestSharedPlaneCancelChurn(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{SeqBytesPerSec: 32 << 20})
	g := startGroup(t, ds, 4)
	sql := "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"
	runCancelChurn(t, ds, g, func(int, *rand.Rand) string { return sql })
}

// TestSharedPlaneAdmitOnce pins the admit-once invariant numerically:
// one logical query over a 4-shard group performs exactly one plane
// admission and stores one copy of its dimension selection, however many
// shards probe it.
func TestSharedPlaneAdmitOnce(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{SeqBytesPerSec: 16 << 20})
	g := startGroup(t, ds, 4)
	h, err := g.Submit(bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 1993"))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Plane().Stats()
	if st.Admits != 1 {
		t.Fatalf("plane admissions = %d, want 1 for one logical query", st.Admits)
	}
	if st.Probers != 4 {
		t.Fatalf("probers = %d", st.Probers)
	}
	if got := g.Plane().InUse(); got != 1 {
		t.Fatalf("slots in use = %d, want 1", got)
	}
	merged := g.Stats()
	if merged.DimAdmits != 1 || merged.PlanePipelines != 4 {
		t.Fatalf("merged stats missing plane figures: %+v", merged)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	<-h.Done()
	if got := g.Plane().InUse(); got != 0 {
		t.Fatalf("slot not recycled after completion: %d in use", got)
	}
}

// TestPartitionedAdmitOnce is the same invariant over a partition-dealt
// group: dealing partitions must not change the admit-once lifecycle.
func TestPartitionedAdmitOnce(t *testing.T) {
	ds := genPartitionedDataset(t, 1500, 4, disk.Config{SeqBytesPerSec: 16 << 20})
	g := startGroup(t, ds, 4)
	h, err := g.Submit(bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 1993"))
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Plane().Stats(); st.Admits != 1 || st.Probers != 4 {
		t.Fatalf("partitioned group: admits=%d probers=%d, want 1 and 4", st.Admits, st.Probers)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	<-h.Done()
	if got := g.Plane().InUse(); got != 0 {
		t.Fatalf("slot not recycled after completion: %d in use", got)
	}
}

// TestPartitionedPlaneCancelChurn runs the same churn over a
// partition-dealt group, with randomized date windows so cancellation
// races the pruned completion path too: queries that finish instantly on
// a shard whose dealt partitions are all pruned, queries mid-countdown,
// and queries spanning every partition. Slot lifecycle must stay
// exactly-once across all of them. Run under -race in CI.
func TestPartitionedPlaneCancelChurn(t *testing.T) {
	ds := genPartitionedDataset(t, 1500, 4, disk.Config{SeqBytesPerSec: 32 << 20})
	g := startGroup(t, ds, 4)
	keys := ds.DateKeys
	runCancelChurn(t, ds, g, func(i int, rng *rand.Rand) string {
		switch i % 4 {
		case 0:
			// Unrestricted: every partition on every shard.
			return "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"
		case 1:
			// Empty key range: zero partitions, instant completion racing
			// the cancel.
			return "SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 1 AND 2"
		default:
			lo := rng.Intn(len(keys) - 1)
			hi := lo + rng.Intn(len(keys)-lo-1) + 1
			return fmt.Sprintf(
				"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
				keys[lo], keys[hi])
		}
	})
}
