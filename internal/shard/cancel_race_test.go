package shard_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
)

// TestSharedPlaneCancelChurn is the cancellation stress test for the
// shared dimension plane: queries are admitted once and activated on
// every shard, then abandoned at random points — before activation (a
// pre-canceled context), mid-admission (a context canceled concurrently
// with SubmitCtx), and mid-flight (Handle.Cancel at a random delay,
// racing both the scan and a concurrent duplicate Cancel). Each query's
// slot and bit-vector column must be released exactly once across all
// shards: a double release panics inside the plane (over-retire) or the
// slot allocator (double free), and a leak shows up as a non-empty
// plane after quiescing. Run under -race in CI.
func TestSharedPlaneCancelChurn(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{SeqBytesPerSec: 32 << 20})
	g := startGroup(t, ds, 4)
	sql := "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"

	const iters = 60
	// Gate concurrency below maxConc (8). Canceled queries release their
	// plane slot asynchronously — at the next page boundary, once every
	// shard's cleanup has retired its hold — so admission can still see
	// a transiently full plane; submits retry through that. A double
	// release, by contrast, panics immediately (plane over-retire or
	// allocator double-free), and a leak fails the end-state checks.
	sem := make(chan struct{}, 6)
	submitRetry := func(ctx context.Context, b *query.Bound) (core.Handle, error) {
		for {
			h, err := g.SubmitCtx(ctx, b)
			if !errors.Is(err, core.ErrTooManyQueries) {
				return h, err
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < iters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			b := bind(t, ds, sql)
			switch i % 3 {
			case 0:
				// Canceled before admission: no slot may be consumed.
				// (A transiently full plane short-circuits before the
				// context check; both errors are acceptable.)
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if _, err := g.SubmitCtx(ctx, b); !errors.Is(err, context.Canceled) &&
					!errors.Is(err, core.ErrTooManyQueries) {
					t.Errorf("pre-canceled submit: %v", err)
				}
			case 1:
				// Canceled concurrently with admission/activation: either
				// outcome is fine, but an admitted query must still
				// deliver and release.
				ctx, cancel := context.WithCancel(context.Background())
				go func() {
					time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					cancel()
				}()
				h, err := submitRetry(ctx, b)
				cancel()
				if err != nil {
					return
				}
				h.Cancel()
				<-h.Done()
			default:
				// Canceled mid-flight, racing a duplicate Cancel.
				h, err := submitRetry(context.Background(), b)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				wins := make(chan bool, 2)
				var cwg sync.WaitGroup
				for c := 0; c < 2; c++ {
					cwg.Add(1)
					go func() { defer cwg.Done(); wins <- h.Cancel() }()
				}
				cwg.Wait()
				// At most one Cancel call may win; none, if the query
				// finished first.
				if <-wins && <-wins {
					t.Error("both Cancel calls claimed the cancellation")
				}
				<-h.Done()
			}
		}(i)
	}
	wg.Wait()

	g.Quiesce()
	pl := g.Plane()
	// Quiesce tracks pipeline registration; the final plane retire can
	// trail it by a hair, so poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for pl.InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if pl.InUse() != 0 {
		t.Fatalf("%d plane slots leaked after churn", pl.InUse())
	}
	for d := 0; d < pl.NumDims(); d++ {
		st := pl.Store(d)
		if st.Len() != 0 || st.RefCount() != 0 {
			t.Fatalf("dimension %d not released: len=%d refs=%d", d, st.Len(), st.RefCount())
		}
	}
	// The plane must still be fully serviceable: fill every slot again.
	var hs []core.Handle
	for i := 0; i < g.MaxConcurrent(); i++ {
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			t.Fatalf("slot %d not reusable after churn: %v", i, err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		if res := h.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		<-h.Done()
	}
}

// TestSharedPlaneAdmitOnce pins the tentpole invariant numerically: one
// logical query over a 4-shard group performs exactly one plane
// admission and stores one copy of its dimension selection, however many
// shards probe it.
func TestSharedPlaneAdmitOnce(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{SeqBytesPerSec: 16 << 20})
	g := startGroup(t, ds, 4)
	h, err := g.Submit(bind(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 1993"))
	if err != nil {
		t.Fatal(err)
	}
	st := g.Plane().Stats()
	if st.Admits != 1 {
		t.Fatalf("plane admissions = %d, want 1 for one logical query", st.Admits)
	}
	if st.Probers != 4 {
		t.Fatalf("probers = %d", st.Probers)
	}
	if got := g.Plane().InUse(); got != 1 {
		t.Fatalf("slots in use = %d, want 1", got)
	}
	merged := g.Stats()
	if merged.DimAdmits != 1 || merged.PlanePipelines != 4 {
		t.Fatalf("merged stats missing plane figures: %+v", merged)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	<-h.Done()
	if got := g.Plane().InUse(); got != 0 {
		t.Fatalf("slot not recycled after completion: %d in use", got)
	}
}
