package shard_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// TestShardParityUnderChurn is the HTAP face of the parity property:
// randomized append/delete commits keep landing on the shared heap while
// queries run against a single pipeline and strided groups of 2 and 3
// shards. Every query's snapshot is stamped at submit, and its results
// must stay bit-exact against internal/ref evaluated at that same
// snapshot — MVCC visibility, not scan timing, decides what each query
// sees. Page-count parity is deliberately NOT asserted here: the heap
// grows between submissions, so executors admit the same query over
// different geometries.
func TestShardParityUnderChurn(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 8, Workers: 2}

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)

	groups := make(map[int]*shard.Group)
	for _, n := range []int{2, 3} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		groups[n] = g
	}

	// Writer: bursts of appends plus sequential deletes (a row is never
	// deleted twice — re-stamping xmax with a later commit id would
	// resurrect it for intermediate snapshots).
	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(99))
		var delCursor int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ds.AppendFact(wrng.Intn(30)+1, wrng); err != nil {
				writerErr = err
				return
			}
			for k := 0; k < wrng.Intn(8)+1; k++ {
				if _, err := ds.DeleteFact(delCursor); err != nil {
					writerErr = err
					return
				}
				delCursor++
			}
			time.Sleep(time.Millisecond)
		}
	}()

	w := ssb.NewWorkload(ds, 0.05, 13)
	for qi := 0; qi < 15; qi++ {
		_, text := w.Next()
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatalf("query %d (%s): %v", qi, text, err)
		}
		// The submit-time snapshot decides visibility for every executor
		// and for the reference run below, no matter how much the writer
		// commits while the scans are in flight.
		b.Snapshot = ds.Txn.Begin()

		h, err := single.Submit(b)
		if err != nil {
			t.Fatalf("query %d single submit: %v", qi, err)
		}
		handles := map[int]core.Handle{}
		for n, g := range groups {
			gh, err := g.Submit(b)
			if err != nil {
				t.Fatalf("query %d group(%d) submit: %v", qi, n, err)
			}
			handles[n] = gh
		}

		want, err := ref.Execute(b)
		if err != nil {
			t.Fatalf("query %d ref: %v", qi, err)
		}
		sres := h.Wait()
		if sres.Err != nil {
			t.Fatalf("query %d single: %v", qi, sres.Err)
		}
		if !ref.ResultsEqual(sres.Rows, want) {
			t.Fatalf("query %d: single pipeline diverges from ref at snapshot %d\nquery: %s\n got: %s\nwant: %s",
				qi, b.Snapshot, text, dump(sres.Rows), dump(want))
		}
		for n, gh := range handles {
			gres := gh.Wait()
			if gres.Err != nil {
				t.Fatalf("query %d group(%d): %v", qi, n, gres.Err)
			}
			if !ref.ResultsEqual(gres.Rows, want) {
				t.Fatalf("query %d: %d-shard group diverges from ref at snapshot %d\nquery: %s\n got: %s\nwant: %s",
					qi, n, b.Snapshot, text, dump(gres.Rows), dump(want))
			}
		}
	}

	close(stop)
	wg.Wait()
	if writerErr != nil {
		t.Fatalf("writer: %v", writerErr)
	}
}
