package shard

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
)

// ShardFailedError is the serving tier's typed shard failure: a query
// was lost to — or cannot be answered without — a shard that has been
// quarantined. It is retryable in the HTTP sense (503 + Retry-After):
// the condition is positional, not a property of the query, and may
// clear when capacity is restored; on a partition-dealt group a retry
// narrowed to surviving partitions can succeed immediately.
type ShardFailedError struct {
	// Shard is the quarantined shard's index; -1 when every shard is
	// down.
	Shard int
	// Cause is the underlying pipeline failure.
	Cause error
}

func (e *ShardFailedError) Error() string {
	if e.Shard < 0 {
		return fmt.Sprintf("shard: all shards failed: %v", e.Cause)
	}
	return fmt.Sprintf("shard: shard %d failed: %v", e.Shard, e.Cause)
}

func (e *ShardFailedError) Unwrap() error { return e.Cause }

// HTTPStatus maps the error to 503 Service Unavailable.
func (e *ShardFailedError) HTTPStatus() int { return http.StatusServiceUnavailable }

// Retryable marks the failure as safe to retry after backoff.
func (e *ShardFailedError) Retryable() bool { return true }

// RetryAfter is the suggested client backoff, surfaced as the HTTP
// Retry-After header by internal/server.
func (e *ShardFailedError) RetryAfter() time.Duration { return time.Second }

// StallError is the cause a supervisor assigns when it declares a shard
// dead for making no scan progress while queries were resident.
type StallError struct {
	Shard int
	// Stalled is how long the page counter sat still before the
	// supervisor pulled the trigger.
	Stalled time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("shard: shard %d made no scan progress for %v with queries resident", e.Shard, e.Stalled)
}

// typeShardErr re-types a pipeline failure as the serving tier's
// ShardFailedError, leaving every other error (cancel, clean stop,
// context) untouched.
func typeShardErr(shard int, err error) error {
	var ferr *core.PipelineFailedError
	if errors.As(err, &ferr) {
		return &ShardFailedError{Shard: shard, Cause: ferr}
	}
	return err
}

// supervise starts the group's shard supervision: one watcher per shard
// reacting to pipeline failure, plus — when Config.StallTimeout is set —
// a progress monitor that declares a shard dead if its page counter
// stops advancing while queries are resident. Called from Start.
func (g *Group) supervise() {
	for i, p := range g.pipes {
		g.supWg.Add(1)
		go func(i int, p *core.Pipeline) {
			defer g.supWg.Done()
			select {
			case <-p.Failed():
				g.quarantine(i, p.FailureCause())
			case <-g.superStop:
			}
		}(i, p)
	}
	if g.stall <= 0 {
		return
	}
	g.supWg.Add(1)
	go func() {
		defer g.supWg.Done()
		interval := g.stall / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		lastPages := make([]int64, len(g.pipes))
		lastMove := make([]time.Time, len(g.pipes))
		now := time.Now()
		for i := range lastMove {
			lastMove[i] = now
		}
		for {
			select {
			case <-g.superStop:
				return
			case <-tick.C:
			}
			now = time.Now()
			for i, p := range g.pipes {
				if p.FailureCause() != nil {
					continue
				}
				pages := p.Stats().PagesRead
				if pages != lastPages[i] || p.ActiveQueries() == 0 {
					lastPages[i] = pages
					lastMove[i] = now
					continue
				}
				if stalled := now.Sub(lastMove[i]); stalled >= g.stall {
					// FailNow runs without the supervision lock: it only
					// closes the pipeline's stop signal, which is also
					// what unblocks any activation currently holding the
					// read side. The failure watcher above performs the
					// locked quarantine.
					p.FailNow(&StallError{Shard: i, Stalled: stalled})
				}
			}
		}
	}()
}

// quarantine marks a failed shard out of the serving set. The write
// lock excludes in-flight Admit+activation spans, so after it is
// acquired every plane slot is in exactly one of two states: swept by
// the dead pipeline's failure sweep (which released that pipeline's
// hold — the compensating retires), or admitted with a fan-out that
// already counts the shard as failed. Detaching the prober then makes
// future admissions expect one fewer retire, and feasibility filtering
// keeps the survivors parity-exact.
func (g *Group) quarantine(shard int, cause error) {
	g.supLock.Lock()
	if g.failed[shard] != nil {
		g.supLock.Unlock()
		return
	}
	g.failed[shard] = cause
	g.nFailed++
	if g.nFailed < len(g.pipes) {
		// The dead pipeline no longer holds newly admitted slots. Its
		// holds on previously admitted slots were released by its
		// failure sweep, so accounting stays exact on both sides of this
		// line.
		g.plane.Detach()
	}
	g.supLock.Unlock()
	g.om.quarantines.Inc()
	g.om.shardUp[shard].Set(0)
	if g.logf != nil {
		g.logf("shard %d quarantined (%d/%d serving): %v",
			shard, len(g.pipes)-g.nFailed, len(g.pipes), cause)
	}
}

// Health reports the group's serving state: "ok" with every shard
// healthy, "degraded" once shards have been quarantined, "failed" when
// none are left.
func (g *Group) Health() core.Health {
	g.supLock.RLock()
	defer g.supLock.RUnlock()
	h := core.Health{State: "ok"}
	down := 0
	for i, p := range g.pipes {
		sh := core.ShardHealth{Shard: i, State: core.ShardHealthy}
		// Report the pipeline's own failure even before the quarantine
		// lands, so health never lags the truth.
		if cause := g.failed[i]; cause != nil {
			sh.State, sh.Cause = core.ShardFailed, cause.Error()
		} else if f := p.FailureCause(); f != nil {
			sh.State, sh.Cause = core.ShardFailed, f.Error()
		}
		if sh.State == core.ShardFailed {
			down++
		}
		h.Shards = append(h.Shards, sh)
	}
	switch {
	case down == len(g.pipes):
		h.State = "failed"
	case down > 0:
		h.State = "degraded"
	}
	return h
}

// feasibleLocked decides whether a query admitted at slot can still be
// answered exactly by the surviving shards. Callers hold supLock (read
// side). On a page-strided group every shard owns an interleaved slice
// of every query's pages, so any quarantine makes new queries
// infeasible; on a partition-dealt group the §5 pruning metadata tells
// exactly which queries the dead partitions matter to.
func (g *Group) feasibleLocked(q *query.Bound, slot int) (bool, int) {
	if g.nFailed == 0 {
		return true, -1
	}
	if g.subsets == nil {
		return false, g.firstFailedLocked()
	}
	need := core.NeededPartitions(g.star, g.plane, q, slot)
	for i := range g.pipes {
		if g.failed[i] == nil {
			continue
		}
		for _, part := range g.subsets[i] {
			if need[part] {
				return false, i
			}
		}
	}
	return true, -1
}

func (g *Group) firstFailedLocked() int {
	for i := range g.pipes {
		if g.failed[i] != nil {
			return i
		}
	}
	return -1
}
