package shard_test

import (
	"fmt"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// BenchmarkShardScan measures one full scan cycle (Submit → Wait) of the
// execution tier as the shard count grows, on an in-memory dataset so
// the pipelines — not the device model — are the bottleneck. One op is
// one complete query; rows/s is the aggregate scan rate the tier
// sustains. "scan" is a pure continuous-scan query (COUNT(*), no
// Filters); "probe" drives the FilterProbe hot loop through every
// dimension Filter on every shard.
func BenchmarkShardScan(b *testing.B) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 20000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	queries := []struct{ name, sql string }{
		{"scan", "SELECT COUNT(*) AS n FROM lineorder"},
		{"probe", `SELECT SUM(lo_revenue) AS rev, d_year, s_nation
			FROM lineorder, date, supplier, customer, part
			WHERE lo_orderdate = d_datekey AND lo_suppkey = s_suppkey
			  AND lo_custkey = c_custkey AND lo_partkey = p_partkey
			GROUP BY d_year, s_nation ORDER BY d_year, s_nation`},
	}
	rows := float64(ds.Lineorder.Heap.NumRows())
	for _, q := range queries {
		for _, nsh := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", q.name, nsh), func(b *testing.B) {
				g, err := shard.New(ds.Star, shard.Config{Shards: nsh, Core: core.Config{MaxConcurrent: 8}})
				if err != nil {
					b.Fatal(err)
				}
				g.Start()
				defer g.Stop()
				bound, err := query.ParseBind(q.sql, ds.Star)
				if err != nil {
					b.Fatal(err)
				}
				bound.Snapshot = ds.Txn.Begin()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h, err := g.Submit(bound)
					if err != nil {
						b.Fatal(err)
					}
					if res := h.Wait(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(rows*float64(b.N)/secs, "rows/s")
				}
			})
		}
	}
}
