package shard_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

func genDataset(t testing.TB, rows int, dc disk.Config) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 3, Disk: dc})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func startGroup(t testing.TB, ds *ssb.Dataset, shards int) *shard.Group {
	t.Helper()
	g, err := shard.New(ds.Star, shard.Config{Shards: shards, Core: core.Config{MaxConcurrent: 8, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	return g
}

func bind(t testing.TB, ds *ssb.Dataset, sql string) *query.Bound {
	t.Helper()
	b, err := query.ParseBind(sql, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	b.Snapshot = ds.Txn.Begin()
	return b
}

// TestStridedCoverage verifies the fact partitioning is exact: the page
// counts of the N strided shards sum to the base page count, and a
// COUNT(*) broadcast over the shards sees every fact row exactly once.
func TestStridedCoverage(t *testing.T) {
	ds := genDataset(t, 2500, disk.Config{})
	total := ds.Lineorder.Heap.NumPages()
	for _, n := range []int{1, 2, 3, 4, 7} {
		g := startGroup(t, ds, n)
		if got := g.NumShards(); got != n && !(n == 1 && got == 1) {
			t.Fatalf("NumShards = %d, want %d", got, n)
		}
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Ints[0] != ds.Lineorder.Heap.NumRows() {
			t.Fatalf("%d shards: COUNT(*) = %v, want %d rows counted", n, res.Rows, ds.Lineorder.Heap.NumRows())
		}
		if n > 1 {
			// Pages charged across shards must cover the heap exactly once.
			if got := h.PagesScanned(); got != int64(total) {
				t.Fatalf("%d shards: %d pages charged, heap has %d", n, got, total)
			}
		}
	}
}

// TestGroupHandleObservability checks the merged progress/ETA/slot
// surface of a broadcast query.
func TestGroupHandleObservability(t *testing.T) {
	// Throttle the scan so progress is observable mid-flight.
	ds := genDataset(t, 2000, disk.Config{SeqBytesPerSec: 8 << 20})
	g := startGroup(t, ds, 4)
	h, err := g.Submit(bind(t, ds, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Slot() < 0 || h.Slot() >= g.MaxConcurrent() {
		t.Fatalf("slot %d out of range", h.Slot())
	}
	if h.Submission() <= 0 {
		t.Fatal("submission time not recorded")
	}
	sawPartial := false
	for i := 0; i < 200; i++ {
		p := h.Progress()
		if p < 0 || p > 1 {
			t.Fatalf("progress %v out of [0,1]", p)
		}
		if p > 0 && p < 1 {
			sawPartial = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !sawPartial {
		t.Log("scan finished before partial progress was observed (fast machine); progress bounds still verified")
	}
	if eta, ok := h.ETA(); !ok || eta != 0 {
		t.Fatalf("post-completion ETA = (%v, %v), want (0, true)", eta, ok)
	}
	<-h.Done()
	if g.ActiveQueries() != 0 {
		t.Fatalf("%d active queries after Done", g.ActiveQueries())
	}
}

// TestGroupCancel verifies a broadcast cancel delivers immediately and
// frees every shard's slot for reuse.
func TestGroupCancel(t *testing.T) {
	ds := genDataset(t, 2000, disk.Config{SeqBytesPerSec: 4 << 20})
	g := startGroup(t, ds, 3)
	b := bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder")
	h, err := g.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false on a fresh query")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	res := h.Wait()
	if !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("canceled query result: %v", res.Err)
	}
	if !h.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	<-h.Done()
	// Every slot must be free again: fill the group to capacity.
	var hs []core.Handle
	for i := 0; i < g.MaxConcurrent(); i++ {
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			t.Fatalf("slot %d not recycled: %v", i, err)
		}
		hs = append(hs, h)
	}
	for _, h := range hs {
		if res := h.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// TestGroupBehindAdmissionQueue runs the serving-tier composition: more
// queries than maxConc through an admission.Queue over a 4-shard Group —
// the exact wiring cjoind -shards uses. Nothing may be rejected and every
// query must complete.
func TestGroupBehindAdmissionQueue(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{})
	g, err := shard.New(ds.Star, shard.Config{Shards: 4, Core: core.Config{MaxConcurrent: 4, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	q := admission.NewQueue(g, admission.Config{MaxQueue: 64})

	const n = 16 // 4x capacity
	w := ssb.NewWorkload(ds, 0.1, 9)
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		_, text := w.Next()
		tk, err := q.Submit(bind(t, ds, text))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if res := tk.Wait(); res.Err != nil {
				errCh <- res.Err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	st := q.Stats()
	if st.Rejected != 0 || st.Completed != n {
		t.Fatalf("queue stats: %+v", st)
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestGroupStats verifies merged and per-shard counters are consistent
// and race-free against concurrent queries and shutdown.
func TestGroupStats(t *testing.T) {
	ds := genDataset(t, 1500, disk.Config{})
	g := startGroup(t, ds, 4)
	h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	// Hammer Stats while the query runs and while the group stops.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = g.Stats()
				_ = g.ShardStats()
			}
		}
	}()
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	<-h.Done()
	st := g.Stats()
	per := g.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats has %d entries", len(per))
	}
	var pages int64
	for _, s := range per {
		pages += s.PagesRead
	}
	if st.PagesRead != pages {
		t.Fatalf("merged PagesRead %d != per-shard sum %d", st.PagesRead, pages)
	}
	if st.PagesRead < int64(ds.Lineorder.Heap.NumPages()) {
		t.Fatalf("PagesRead %d < heap pages %d", st.PagesRead, ds.Lineorder.Heap.NumPages())
	}
	close(stop)
	wg.Wait()
}

// The former TestPartitionedStarRejected is superseded: partitioned
// stars now shard by partition dealing (see partition_test.go;
// TestPartitionedDegenerateRejected keeps the typed-422 contract for the
// one remaining rejection, shards > partitions).
