package shard_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// batchTexts builds a randomized repeated-template workload: randomized
// SSB queries with AVG/LIMIT mutations, where roughly half the entries
// duplicate an earlier text verbatim — the dashboard-style pattern the
// predicate-scan cache and batch-local memo exist for. Duplicates are
// re-parsed, so structurally-equal-but-distinct ASTs must unify by
// fingerprint, not pointer identity.
func batchTexts(rng *rand.Rand, w *ssb.Workload, n int) []string {
	var texts []string
	for len(texts) < n {
		if len(texts) > 0 && rng.Intn(2) == 0 {
			texts = append(texts, texts[rng.Intn(len(texts))])
			continue
		}
		_, text := w.Next()
		switch rng.Intn(3) {
		case 0:
			text = strings.Replace(text, "SUM(", "AVG(", 1)
		case 1:
			text = fmt.Sprintf("%s LIMIT %d", text, rng.Intn(5)+1)
		}
		texts = append(texts, text)
	}
	return texts
}

// runBatchParity binds texts fresh, submits them in batches of
// batchSize through the executor's SubmitBatch fast path, and checks
// every result bit-exact against the naive reference executor.
func runBatchParity(t *testing.T, label string, ex core.Executor, ds *ssb.Dataset, texts []string, batchSize int) {
	t.Helper()
	bex, ok := ex.(core.BatchSubmitter)
	if !ok {
		t.Fatalf("%s: executor does not implement BatchSubmitter", label)
	}
	for lo := 0; lo < len(texts); lo += batchSize {
		hi := lo + batchSize
		if hi > len(texts) {
			hi = len(texts)
		}
		qs := make([]*query.Bound, 0, hi-lo)
		for _, text := range texts[lo:hi] {
			b, err := query.ParseBind(text, ds.Star)
			if err != nil {
				t.Fatalf("%s: %v\nquery: %s", label, err, text)
			}
			b.Snapshot = ds.Txn.Begin()
			qs = append(qs, b)
		}
		handles, errs, err := bex.SubmitBatch(context.Background(), qs)
		if err != nil {
			t.Fatalf("%s: batch [%d,%d): %v", label, lo, hi, err)
		}
		for i, h := range handles {
			if errs[i] != nil {
				t.Fatalf("%s: query %d: %v", label, lo+i, errs[i])
			}
			res := h.Wait()
			if res.Err != nil {
				t.Fatalf("%s: query %d: %v", label, lo+i, res.Err)
			}
			want, err := ref.Execute(qs[i])
			if err != nil {
				t.Fatalf("%s: query %d ref: %v", label, lo+i, err)
			}
			if !ref.ResultsEqual(res.Rows, want) {
				t.Fatalf("%s: query %d diverges from ref\nquery: %s\n got: %s\nwant: %s",
					label, lo+i, texts[lo+i], dump(res.Rows), dump(want))
			}
		}
	}
}

// TestBatchSubmitParityRandomSSB is the batch path's end-to-end
// exactness property: randomized repeated-template SSB queries admitted
// through SubmitBatch — on a single pipeline and on page-strided shard
// groups, predicate cache on — return results bit-identical to the
// naive reference executor. Batch size exceeds some batches' distinct
// templates, so the batch-local memo and the shared cache both carry
// real weight in the admissions under test.
func TestBatchSubmitParityRandomSSB(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 16, Workers: 2}
	texts := batchTexts(rand.New(rand.NewSource(23)), ssb.NewWorkload(ds, 0.05, 19), 20)

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)
	runBatchParity(t, "single", single, ds, texts, 5)

	for _, n := range []int{2, 3} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		runBatchParity(t, fmt.Sprintf("group(%d)", n), g, ds, texts, 5)
		if st, ok := g.Stats(), true; !ok || st.PlaneBatchQueries == 0 || st.PlaneBatchAdmits == 0 {
			t.Fatalf("group(%d): batch path not exercised: %+v", n, st)
		}
	}
}

// TestBatchSubmitParityPartitionedSSB extends the property to
// range-partitioned stars: partition-dealt groups must keep §5 pruning
// exact when whole batches are admitted in one plane round (the
// SelectedKeyRange pruning probe reads the same stores the batch
// installed into).
func TestBatchSubmitParityPartitionedSSB(t *testing.T) {
	const parts = 4
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 9, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.Config{MaxConcurrent: 16, Workers: 2}
	rng := rand.New(rand.NewSource(31))
	texts := batchTexts(rng, ssb.NewWorkload(ds, 0.05, 29), 12)
	// Selective date windows so pruning decisions ride inside batches.
	keys := ds.DateKeys
	for i := 0; i < 6; i++ {
		lo := rng.Intn(len(keys))
		hi := lo + rng.Intn(len(keys)/2) + 1
		if hi >= len(keys) {
			hi = len(keys) - 1
		}
		texts = append(texts, fmt.Sprintf(
			"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year ORDER BY d_year",
			keys[lo], keys[hi]))
	}

	for _, n := range []int{2, parts} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		runBatchParity(t, fmt.Sprintf("partitioned group(%d)", n), g, ds, texts, 4)
	}
}
