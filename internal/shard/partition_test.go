package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

func genPartitionedDataset(t testing.TB, rows, parts int, dc disk.Config) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 3, Partitions: parts, Disk: dc})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestDealPartitions is the table-driven planner test: the deal must
// cover every partition exactly once, keep every shard non-empty
// whenever P >= N, and balance by page count — the greedy LPT invariant
// maxLoad <= minLoad + maxPart in general, with tighter max/min ratio
// bounds asserted where the instance allows them.
func TestDealPartitions(t *testing.T) {
	cases := []struct {
		name   string
		pages  []int
		shards int
		// maxRatio, when > 0, bounds maxLoad/minLoad.
		maxRatio float64
		// onePer asserts exactly one partition per shard (P == N).
		onePer bool
	}{
		{name: "P==N uniform", pages: []int{10, 10, 10, 10}, shards: 4, maxRatio: 1.0, onePer: true},
		{name: "P==N skewed", pages: []int{40, 10, 20, 30}, shards: 4, onePer: true},
		{name: "P>>N uniform", pages: repeat(10, 64), shards: 4, maxRatio: 1.0},
		{name: "P>>N mild skew", pages: []int{13, 7, 11, 9, 12, 8, 10, 14, 6, 10, 9, 11, 13, 7, 12, 8}, shards: 4, maxRatio: 1.3},
		{name: "one giant partition", pages: []int{100, 10, 10, 10, 10, 10, 10, 10}, shards: 4},
		{name: "P<N", pages: []int{25, 50}, shards: 4},
		{name: "zero-page partitions", pages: []int{0, 0, 0, 5, 5, 5}, shards: 3},
		{name: "single shard", pages: []int{5, 15, 25}, shards: 1, maxRatio: 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			subsets := shard.DealPartitions(tc.pages, tc.shards)
			if len(subsets) != tc.shards {
				t.Fatalf("%d subsets for %d shards", len(subsets), tc.shards)
			}
			// Exact coverage: every partition dealt to exactly one shard,
			// ascending within each shard.
			seen := make(map[int]int)
			loads := make([]int, tc.shards)
			nonEmpty := 0
			var maxPart int
			for _, p := range tc.pages {
				if p > maxPart {
					maxPart = p
				}
			}
			for si, sub := range subsets {
				if len(sub) > 0 {
					nonEmpty++
				}
				for i, g := range sub {
					if g < 0 || g >= len(tc.pages) {
						t.Fatalf("shard %d: partition %d out of range", si, g)
					}
					if i > 0 && sub[i-1] >= g {
						t.Fatalf("shard %d subset not ascending: %v", si, sub)
					}
					seen[g]++
					loads[si] += tc.pages[g]
				}
			}
			if len(seen) != len(tc.pages) {
				t.Fatalf("dealt %d of %d partitions", len(seen), len(tc.pages))
			}
			for g, n := range seen {
				if n != 1 {
					t.Fatalf("partition %d dealt %d times", g, n)
				}
			}
			if tc.onePer {
				for si, sub := range subsets {
					if len(sub) != 1 {
						t.Fatalf("shard %d holds %d partitions, want 1: %v", si, len(sub), subsets)
					}
				}
			}
			if len(tc.pages) >= tc.shards {
				if nonEmpty != tc.shards {
					t.Fatalf("%d of %d shards empty despite P >= N: %v", tc.shards-nonEmpty, tc.shards, subsets)
				}
			} else if nonEmpty != len(tc.pages) {
				// P < N: exactly P shards can hold work.
				t.Fatalf("%d non-empty shards for %d partitions: %v", nonEmpty, len(tc.pages), subsets)
			}
			minLoad, maxLoad := loads[0], loads[0]
			for _, l := range loads[1:] {
				if l < minLoad {
					minLoad = l
				}
				if l > maxLoad {
					maxLoad = l
				}
			}
			if len(tc.pages) >= tc.shards && maxLoad > minLoad+maxPart {
				// The greedy invariant: the heaviest shard received its
				// last partition while it was the lightest.
				t.Fatalf("imbalance beyond one partition: loads %v, max partition %d", loads, maxPart)
			}
			if tc.maxRatio > 0 && minLoad > 0 {
				if ratio := float64(maxLoad) / float64(minLoad); ratio > tc.maxRatio {
					t.Fatalf("max/min load ratio %.3f exceeds %.2f: loads %v", ratio, tc.maxRatio, loads)
				}
			}
			// Determinism: the same inputs must re-derive the same deal.
			again := shard.DealPartitions(tc.pages, tc.shards)
			if fmt.Sprint(again) != fmt.Sprint(subsets) {
				t.Fatalf("deal not deterministic: %v then %v", subsets, again)
			}
		})
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestGroupDealsAllPartitions verifies the live topology matches the
// planner: the group's shard subsets cover the star's partitions exactly
// once, and a COUNT(*) sees every fact row exactly once — partitions
// dealt, not replicated.
func TestGroupDealsAllPartitions(t *testing.T) {
	ds := genPartitionedDataset(t, 3000, 6, disk.Config{})
	for _, n := range []int{2, 3, 6} {
		g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: core.Config{MaxConcurrent: 8, Workers: 2}})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		subs := g.ShardPartitions()
		if len(subs) != n {
			t.Fatalf("%d shards report %d subsets", n, len(subs))
		}
		want := shard.DealPartitions(ds.Star.PartitionPages(), n)
		if fmt.Sprint(subs) != fmt.Sprint(want) {
			t.Fatalf("topology %v diverges from planner %v", subs, want)
		}
		h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Ints[0] != 3000 {
			t.Fatalf("%d shards: COUNT(*) = %v, want 3000", n, res.Rows)
		}
		// Full-table pages charged across shards must cover every
		// partition exactly once.
		total := 0
		for _, p := range ds.Star.PartitionPages() {
			total += p
		}
		if got := h.PagesScanned(); got != int64(total) {
			t.Fatalf("%d shards: %d pages charged, partitions hold %d", n, got, total)
		}
	}
}

// TestShardedPruningPreserved is the pruning-effectiveness check: under a
// narrow date predicate the pages charged across all shards must equal
// the single-pipeline pruned count exactly — dealing partitions to shards
// must not scan a page pruning would have skipped. Since PR 9 the count
// is page-granular: zone maps prune inside needed partitions, so the
// parity assertion covers both pruning levels, and a partition-only
// baseline pins that the page level actually cuts deeper.
func TestShardedPruningPreserved(t *testing.T) {
	ds := genPartitionedDataset(t, 4000, 6, disk.Config{})
	ccfg := core.Config{MaxConcurrent: 8, Workers: 2}

	single, err := core.NewPipeline(ds.Star, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	single.Start()
	t.Cleanup(single.Stop)

	// Partition-granular baseline: §5 pruning only, zone maps off.
	partOnly, err := core.NewPipeline(ds.Star, core.Config{MaxConcurrent: 8, Workers: 2, DisableZoneMaps: true})
	if err != nil {
		t.Fatal(err)
	}
	partOnly.Start()
	t.Cleanup(partOnly.Stop)

	queries := []string{
		// Narrow: first eighth of the date span — a strict partition subset.
		fmt.Sprintf("SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
			ds.DateKeys[0], ds.DateKeys[len(ds.DateKeys)/8]),
		// Mid-span window crossing a partition boundary.
		fmt.Sprintf("SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d",
			ds.DateKeys[len(ds.DateKeys)/3], ds.DateKeys[len(ds.DateKeys)/2]),
		// Empty key range: zero partitions, zero pages.
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 1 AND 2 GROUP BY d_year",
		// Unrestricted: every partition.
		"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year",
	}

	var totalPages int
	for _, p := range ds.Star.PartitionPages() {
		totalPages += p
	}
	for qi, sql := range queries {
		sh, err := single.Submit(bind(t, ds, sql))
		if err != nil {
			t.Fatal(err)
		}
		if res := sh.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		singlePages := sh.PagesScanned()
		ph, err := partOnly.Submit(bind(t, ds, sql))
		if err != nil {
			t.Fatal(err)
		}
		if res := ph.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		partOnlyPages := ph.PagesScanned()
		for _, n := range []int{2, 3} {
			g, err := shard.New(ds.Star, shard.Config{Shards: n, Core: ccfg})
			if err != nil {
				t.Fatal(err)
			}
			g.Start()
			gh, err := g.Submit(bind(t, ds, sql))
			if err != nil {
				t.Fatal(err)
			}
			res := gh.Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if got := gh.PagesScanned(); got != singlePages {
				t.Fatalf("query %d, %d shards: %d pages summed across shards, single pipeline pruned to %d",
					qi, n, got, singlePages)
			}
			g.Stop()
		}
		// Sanity on the pruning itself, so an equality of two broken
		// counts cannot pass: narrow queries must beat the full table,
		// and the page level must cut strictly deeper than partitions
		// alone (a date window rarely covers its partitions page-exactly).
		switch qi {
		case 0, 1:
			if singlePages == 0 || singlePages >= int64(totalPages) {
				t.Fatalf("query %d: pruning ineffective (%d of %d pages)", qi, singlePages, totalPages)
			}
			if singlePages >= partOnlyPages {
				t.Fatalf("query %d: zone maps charged %d pages, partition-only pruning %d — page level inert",
					qi, singlePages, partOnlyPages)
			}
		case 2:
			if singlePages != 0 || partOnlyPages != 0 {
				t.Fatalf("empty-range query scanned %d (zonemap) / %d (partition-only) pages", singlePages, partOnlyPages)
			}
		case 3:
			if singlePages != int64(totalPages) || partOnlyPages != int64(totalPages) {
				t.Fatalf("unrestricted query scanned %d (zonemap) / %d (partition-only) of %d pages",
					singlePages, partOnlyPages, totalPages)
			}
		}
	}
}

// TestPartitionedDegenerateRejected pins the narrowed topology error:
// partition dealing needs at least one partition per shard, so more
// shards than partitions is the one remaining 422. Equal or fewer shards
// must construct and answer correctly.
func TestPartitionedDegenerateRejected(t *testing.T) {
	ds := genPartitionedDataset(t, 2000, 2, disk.Config{})
	_, err := shard.New(ds.Star, shard.Config{Shards: 4})
	if err == nil {
		t.Fatal("4 shards over 2 partitions accepted")
	}
	var rpe *shard.RangePartitionedError
	if !errors.As(err, &rpe) {
		t.Fatalf("error is %T (%v), want *shard.RangePartitionedError", err, err)
	}
	if rpe.Shards != 4 || rpe.Partitions != 2 {
		t.Fatalf("typed error fields: %+v", rpe)
	}
	if rpe.HTTPStatus() != 422 {
		t.Fatalf("HTTPStatus() = %d, want 422", rpe.HTTPStatus())
	}
	// Shards == partitions is the tightest legal deal: one each.
	g, err := shard.New(ds.Star, shard.Config{Shards: 2, Core: core.Config{MaxConcurrent: 4, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	for _, sub := range g.ShardPartitions() {
		if len(sub) != 1 {
			t.Fatalf("P==N deal not one partition per shard: %v", g.ShardPartitions())
		}
	}
	h, err := g.Submit(bind(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil || res.Rows[0].Ints[0] != 2000 {
		t.Fatalf("partitioned 2-shard count: %v", res)
	}
}

// TestPartitionedParityAgainstRef spot-checks a partition-dealt group
// against the reference executor on pruning-sensitive templates (the
// broad randomized sweep lives in TestShardParityPartitionedSSB).
func TestPartitionedParityAgainstRef(t *testing.T) {
	ds := genPartitionedDataset(t, 2500, 4, disk.Config{})
	g, err := shard.New(ds.Star, shard.Config{Shards: 4, Core: core.Config{MaxConcurrent: 8, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	for _, sql := range []string{
		fmt.Sprintf("SELECT SUM(lo_revenue) AS rev, d_yearmonthnum FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_yearmonthnum ORDER BY d_yearmonthnum",
			ds.DateKeys[0], ds.DateKeys[len(ds.DateKeys)/4]),
		"SELECT AVG(lo_quantity) AS aq, MIN(lo_revenue) AS mn, MAX(lo_revenue) AS mx, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year LIMIT 3",
	} {
		b, err := query.ParseBind(sql, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		b.Snapshot = ds.Txn.Begin()
		want, err := ref.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		h, err := g.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("partition-dealt group diverges from ref: %s\n got: %s\nwant: %s",
				sql, dump(res.Rows), dump(want))
		}
	}
}
