// Package catalog holds schema metadata: tables, columns, string
// dictionaries, and the star-schema wiring (fact → dimension foreign
// keys) that CJOIN and the conventional engine both consume.
//
// Every stored value is an int64. String columns are dictionary-encoded:
// the catalog owns a per-column dictionary mapping strings to dense ids,
// and predicates on string columns are translated to id comparisons at
// bind time. Dictionary encoding is standard warehouse practice and is
// also how the paper's compressed-tables extension (§5) evaluates
// predicates without decompression.
package catalog

import (
	"fmt"
	"sync"

	"cjoin/internal/disk"
	"cjoin/internal/storage"
)

// Type is a column's logical type.
type Type int

const (
	// Int columns store int64 values directly.
	Int Type = iota
	// Str columns store dictionary ids; the Column's Dict decodes them.
	Str
)

// Column describes one table column.
type Column struct {
	Name string
	Type Type
}

// Dict is an order-insensitive string dictionary. Ids are assigned densely
// in first-seen order. It is safe for concurrent use.
type Dict struct {
	mu   sync.RWMutex
	vals []string
	ids  map[string]int64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]int64)} }

// Encode returns the id for s, assigning a new one if necessary.
func (d *Dict) Encode(s string) int64 {
	d.mu.RLock()
	id, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[s]; ok {
		return id
	}
	id = int64(len(d.vals))
	d.vals = append(d.vals, s)
	d.ids[s] = id
	return id
}

// Lookup returns the id for s without assigning one.
func (d *Dict) Lookup(s string) (int64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.ids[s]
	return id, ok
}

// Decode returns the string for id.
func (d *Dict) Decode(id int64) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id < 0 || id >= int64(len(d.vals)) {
		return "", false
	}
	return d.vals[id], true
}

// Len returns the number of distinct strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.vals)
}

// Table is a stored relation: schema plus heap file. The first Hidden
// columns are system columns (e.g. xmin/xmax on fact tables) that SQL
// queries cannot reference by position, only by their reserved names.
type Table struct {
	Name    string
	Columns []Column
	Hidden  int
	Dicts   []*Dict // parallel to Columns; nil for Int columns
	Heap    *storage.HeapFile

	byName map[string]int
}

// NewTable creates a table with a fresh raw heap on dev. Hidden counts
// leading system columns.
func NewTable(dev *disk.Device, name string, hidden int, cols []Column) *Table {
	return NewTableCodec(dev, name, hidden, cols, storage.Raw)
}

// NewTableCodec creates a table whose heap uses the given page codec
// (§5 "Compressed Tables").
func NewTableCodec(dev *disk.Device, name string, hidden int, cols []Column, codec storage.Codec) *Table {
	t := &Table{
		Name:    name,
		Columns: cols,
		Hidden:  hidden,
		Dicts:   make([]*Dict, len(cols)),
		Heap:    storage.CreateHeapCodec(dev, len(cols), codec),
		byName:  make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		if c.Type == Str {
			t.Dicts[i] = NewDict()
		}
		if _, dup := t.byName[c.Name]; dup {
			panic(fmt.Sprintf("catalog: duplicate column %q in table %q", c.Name, name))
		}
		t.byName[c.Name] = i
	}
	return t
}

// ColIndex returns the index of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.byName[name]; ok {
		return i
	}
	return -1
}

// VisibleColumns returns the user-visible column list.
func (t *Table) VisibleColumns() []Column { return t.Columns[t.Hidden:] }

// EncodeStr encodes a string literal for column col, returning an error
// for non-string columns.
func (t *Table) EncodeStr(col int, s string) (int64, error) {
	if col < 0 || col >= len(t.Columns) || t.Dicts[col] == nil {
		return 0, fmt.Errorf("catalog: column %d of %s is not a string column", col, t.Name)
	}
	return t.Dicts[col].Encode(s), nil
}

// FactPartition is one range partition of the fact table: rows whose
// partition-key column lies in [MinKey, MaxKey].
type FactPartition struct {
	Heap   *storage.HeapFile
	MinKey int64
	MaxKey int64
}

// Star wires a fact table to its dimensions: Fact.FKCol[i] equi-joins to
// Dims[i].KeyCol[i]. This is the star-schema metadata of §2.1.
type Star struct {
	Fact   *Table
	Dims   []*Table
	FKCol  []int // fact column index holding the foreign key to Dims[i]
	KeyCol []int // key column index within Dims[i]

	// PartCol is the fact column used for range partitioning (§5 "Fact
	// Table Partitioning"), or -1 when the fact table is a single heap.
	PartCol   int
	factParts []FactPartition

	dimByName map[string]int
}

// NewStar validates and builds a star schema.
func NewStar(fact *Table, dims []*Table, fkCol, keyCol []int) (*Star, error) {
	if len(dims) != len(fkCol) || len(dims) != len(keyCol) {
		return nil, fmt.Errorf("catalog: star arity mismatch: %d dims, %d fks, %d keys", len(dims), len(fkCol), len(keyCol))
	}
	s := &Star{Fact: fact, Dims: dims, FKCol: fkCol, KeyCol: keyCol, PartCol: -1, dimByName: make(map[string]int)}
	for i, d := range dims {
		if fkCol[i] < 0 || fkCol[i] >= len(fact.Columns) {
			return nil, fmt.Errorf("catalog: fk column %d out of range for fact %s", fkCol[i], fact.Name)
		}
		if keyCol[i] < 0 || keyCol[i] >= len(d.Columns) {
			return nil, fmt.Errorf("catalog: key column %d out of range for dim %s", keyCol[i], d.Name)
		}
		if _, dup := s.dimByName[d.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate dimension %q", d.Name)
		}
		s.dimByName[d.Name] = i
	}
	return s, nil
}

// SetPartitions declares the fact table range-partitioned on column col.
// Partitioned stars are static: appends through Fact.Heap are not
// supported, matching the load-then-query regime of §5.
func (s *Star) SetPartitions(col int, parts []FactPartition) error {
	if col < 0 || col >= len(s.Fact.Columns) {
		return fmt.Errorf("catalog: partition column %d out of range", col)
	}
	if len(parts) == 0 {
		return fmt.Errorf("catalog: SetPartitions needs at least one partition")
	}
	s.PartCol = col
	s.factParts = parts
	return nil
}

// Partitions returns the fact partitions; an unpartitioned star yields a
// single partition covering the whole key space.
func (s *Star) Partitions() []FactPartition {
	if s.factParts != nil {
		return s.factParts
	}
	const maxI64 = int64(^uint64(0) >> 1)
	return []FactPartition{{Heap: s.Fact.Heap, MinKey: -maxI64 - 1, MaxKey: maxI64}}
}

// PartitionPages returns the heap page count of every fact partition,
// index-aligned with Partitions. Partition-dealing planners
// (internal/shard) balance shards by these weights — page count, not
// partition count — so date-skewed loads still spread evenly.
func (s *Star) PartitionPages() []int {
	parts := s.Partitions()
	pages := make([]int, len(parts))
	for i, p := range parts {
		pages[i] = p.Heap.NumPages()
	}
	return pages
}

// PartitionPageBounds returns the zone-map synopsis of fact column col
// for every partition, index-aligned with Partitions: per partition, the
// per-flushed-page min/max of that column (the in-memory tail page has no
// entry and must be treated as unbounded). Scans correlate these against
// an admitted query's selected key ranges to skip pages within a needed
// partition.
func (s *Star) PartitionPageBounds(col int) ([][]storage.PageBounds, error) {
	if col < 0 || col >= len(s.Fact.Columns) {
		return nil, fmt.Errorf("catalog: PartitionPageBounds column %d out of range", col)
	}
	parts := s.Partitions()
	out := make([][]storage.PageBounds, len(parts))
	for i, p := range parts {
		b, err := p.Heap.ColBounds(col)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// DimIndex returns the position of the named dimension, or -1.
func (s *Star) DimIndex(name string) int {
	if i, ok := s.dimByName[name]; ok {
		return i
	}
	return -1
}

// TableByName resolves a table name to (slot, table) where slot 0 is the
// fact table and slot i+1 is dimension i. Returns slot -1 if unknown.
func (s *Star) TableByName(name string) (int, *Table) {
	if name == s.Fact.Name {
		return 0, s.Fact
	}
	if i := s.DimIndex(name); i >= 0 {
		return i + 1, s.Dims[i]
	}
	return -1, nil
}
