package catalog

import (
	"sync"
	"testing"

	"cjoin/internal/disk"
)

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Encode("ASIA")
	b := d.Encode("EUROPE")
	if a == b {
		t.Fatal("distinct strings share id")
	}
	if got := d.Encode("ASIA"); got != a {
		t.Fatalf("re-encode changed id: %d vs %d", got, a)
	}
	if s, ok := d.Decode(b); !ok || s != "EUROPE" {
		t.Fatalf("Decode(%d) = %q,%v", b, s, ok)
	}
	if _, ok := d.Decode(99); ok {
		t.Fatal("Decode of unknown id must fail")
	}
	if _, ok := d.Lookup("AFRICA"); ok {
		t.Fatal("Lookup must not assign")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	words := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	ids := make([][]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]int64, len(words))
			for i, s := range words {
				ids[w][i] = d.Encode(s)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range words {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got different id for %q", w, words[i])
			}
		}
	}
	if d.Len() != len(words) {
		t.Fatalf("Len = %d", d.Len())
	}
}

func newTestStar(t *testing.T) *Star {
	t.Helper()
	dev := disk.NewMem()
	fact := NewTable(dev, "f", 2, []Column{
		{Name: "xmin", Type: Int}, {Name: "xmax", Type: Int},
		{Name: "fk1", Type: Int}, {Name: "val", Type: Int},
	})
	dim := NewTable(dev, "d1", 0, []Column{
		{Name: "k", Type: Int}, {Name: "region", Type: Str},
	})
	s, err := NewStar(fact, []*Table{dim}, []int{2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableLookup(t *testing.T) {
	s := newTestStar(t)
	if s.Fact.ColIndex("val") != 3 || s.Fact.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if len(s.Fact.VisibleColumns()) != 2 {
		t.Fatalf("visible columns %v", s.Fact.VisibleColumns())
	}
	if slot, tab := s.TableByName("d1"); slot != 1 || tab.Name != "d1" {
		t.Fatalf("TableByName(d1) = %d", slot)
	}
	if slot, tab := s.TableByName("f"); slot != 0 || tab == nil {
		t.Fatalf("TableByName(f) = %d", slot)
	}
	if slot, _ := s.TableByName("zz"); slot != -1 {
		t.Fatal("unknown table must be -1")
	}
}

func TestEncodeStr(t *testing.T) {
	s := newTestStar(t)
	d := s.Dims[0]
	id, err := d.EncodeStr(1, "ASIA")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Dicts[1].Decode(id); got != "ASIA" {
		t.Fatalf("decode got %q", got)
	}
	if _, err := d.EncodeStr(0, "x"); err == nil {
		t.Fatal("EncodeStr on int column must error")
	}
}

func TestNewStarValidation(t *testing.T) {
	dev := disk.NewMem()
	fact := NewTable(dev, "f", 0, []Column{{Name: "a", Type: Int}})
	dim := NewTable(dev, "d", 0, []Column{{Name: "k", Type: Int}})
	if _, err := NewStar(fact, []*Table{dim}, []int{5}, []int{0}); err == nil {
		t.Fatal("bad fk column must error")
	}
	if _, err := NewStar(fact, []*Table{dim}, []int{0}, []int{7}); err == nil {
		t.Fatal("bad key column must error")
	}
	if _, err := NewStar(fact, []*Table{dim, dim}, []int{0, 0}, []int{0, 0}); err == nil {
		t.Fatal("duplicate dimension must error")
	}
}
