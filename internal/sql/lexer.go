package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // reserved word, upper-cased
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "ASC": true, "DESC": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "BETWEEN": true, "AS": true, "LIMIT": true,
}

type token struct {
	kind tokenKind
	text string // upper-cased for keywords/symbols; verbatim otherwise
	num  int64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	i   int
}

// lex tokenizes src, returning an error on malformed input.
func lex(src string) ([]token, error) {
	lx := lexer{src: src}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) next() (token, error) {
	for lx.i < len(lx.src) && unicode.IsSpace(rune(lx.src[lx.i])) {
		lx.i++
	}
	if lx.i >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.i}, nil
	}
	start := lx.i
	c := lx.src[lx.i]
	switch {
	case isIdentStart(c):
		for lx.i < len(lx.src) && isIdentPart(lx.src[lx.i]) {
			lx.i++
		}
		word := lx.src[start:lx.i]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start}, nil
	case c >= '0' && c <= '9':
		for lx.i < len(lx.src) && lx.src[lx.i] >= '0' && lx.src[lx.i] <= '9' {
			lx.i++
		}
		v, err := strconv.ParseInt(lx.src[start:lx.i], 10, 64)
		if err != nil {
			return token{}, fmt.Errorf("sql: bad number at %d: %v", start, err)
		}
		return token{kind: tokNumber, text: lx.src[start:lx.i], num: v, pos: start}, nil
	case c == '\'':
		lx.i++
		var b strings.Builder
		for {
			if lx.i >= len(lx.src) {
				return token{}, fmt.Errorf("sql: unterminated string at %d", start)
			}
			if lx.src[lx.i] == '\'' {
				// '' escapes a quote.
				if lx.i+1 < len(lx.src) && lx.src[lx.i+1] == '\'' {
					b.WriteByte('\'')
					lx.i += 2
					continue
				}
				lx.i++
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(lx.src[lx.i])
			lx.i++
		}
	case c == '<':
		lx.i++
		if lx.i < len(lx.src) && (lx.src[lx.i] == '=' || lx.src[lx.i] == '>') {
			lx.i++
		}
		return token{kind: tokSymbol, text: lx.src[start:lx.i], pos: start}, nil
	case c == '>':
		lx.i++
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
		}
		return token{kind: tokSymbol, text: lx.src[start:lx.i], pos: start}, nil
	case c == '!':
		lx.i++
		if lx.i < len(lx.src) && lx.src[lx.i] == '=' {
			lx.i++
			return token{kind: tokSymbol, text: "<>", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at %d", start)
	case strings.ContainsRune("()*,=+-/.", rune(c)):
		lx.i++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	default:
		return token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '#'
}
