package sql

import (
	"fmt"
	"strings"
)

// Parse parses a single SELECT statement of the star-query subset.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting with %s", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	return token{}, p.errf("expected %s, found %s", text, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if p.accept(tokKeyword, "AS") {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			item.Alias = t.text
		} else if p.at(tokIdent, "") {
			item.Alias = p.advance().text
		}
		stmt.Select = append(stmt.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: t.text}
		if p.accept(tokKeyword, "AS") {
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.text
		} else if p.at(tokIdent, "") {
			ref.Alias = p.advance().text
		}
		stmt.From = append(stmt.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		stmt.HasLimit = true
		stmt.Limit = t.num
	}
	return stmt, nil
}

// Expression grammar, loosest to tightest:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | pred
//	pred    := additive ((cmp additive) | BETWEEN additive AND additive | IN (list))?
//	additive:= mul ((+|-) mul)*
//	mul     := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := number | string | ident[.ident] | func(expr|*) | (expr)
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	}
	return p.parsePred()
}

var cmpOps = map[string]bool{"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parsePred() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol && cmpOps[t.text] {
		p.advance()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: t.text, L: l, R: r}, nil
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
	}
	if p.accept(tokKeyword, "IN") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return InExpr{X: l, List: list}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: "-", L: NumLit{V: 0}, R: x}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]bool{"sum": true, "count": true, "min": true, "max": true, "avg": true}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return NumLit{V: t.num}, nil
	case tokString:
		p.advance()
		return StrLit{S: t.text}, nil
	case tokIdent:
		p.advance()
		name := t.text
		if p.at(tokSymbol, "(") && aggFuncs[name] {
			p.advance()
			if p.accept(tokSymbol, "*") {
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				if strings.ToUpper(name) != "COUNT" {
					return nil, p.errf("%s(*) is only valid for COUNT", name)
				}
				return CallExpr{Func: "COUNT", Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return CallExpr{Func: strings.ToUpper(name), Arg: arg}, nil
		}
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return Ident{Qualifier: name, Name: col.text}, nil
		}
		return Ident{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s", t)
}
