package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseSSBShape(t *testing.T) {
	stmt := mustParse(t, `
		SELECT SUM(lo_revenue), d_year, p_brand1
		FROM lineorder, date, part, supplier
		WHERE lo_orderdate = d_datekey
		  AND lo_partkey = p_partkey
		  AND lo_suppkey = s_suppkey
		  AND p_category = 'MFGR#12'
		  AND s_region = 'AMERICA'
		GROUP BY d_year, p_brand1
		ORDER BY d_year, p_brand1`)
	if len(stmt.Select) != 3 {
		t.Fatalf("select items %d", len(stmt.Select))
	}
	call, ok := stmt.Select[0].Expr.(CallExpr)
	if !ok || call.Func != "SUM" {
		t.Fatalf("first item %v", stmt.Select[0].Expr)
	}
	if len(stmt.From) != 4 || stmt.From[0].Name != "lineorder" {
		t.Fatalf("from %v", stmt.From)
	}
	if len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 2 {
		t.Fatalf("groupby %d orderby %d", len(stmt.GroupBy), len(stmt.OrderBy))
	}
	// WHERE must be a left-deep AND chain of 5 conjuncts.
	n := 0
	var walk func(e Expr)
	walk = func(e Expr) {
		if b, ok := e.(BinExpr); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		n++
	}
	walk(stmt.Where)
	if n != 5 {
		t.Fatalf("conjuncts %d", n)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE a + b * c = 7 OR x = 1 AND y = 2")
	or, ok := stmt.Where.(BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op %v", stmt.Where)
	}
	and, ok := or.R.(BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND must bind tighter than OR: %v", or.R)
	}
	eq := or.L.(BinExpr)
	if eq.Op != "=" {
		t.Fatalf("cmp %v", eq)
	}
	add := eq.L.(BinExpr)
	if add.Op != "+" {
		t.Fatalf("additive %v", add)
	}
	if mul := add.R.(BinExpr); mul.Op != "*" {
		t.Fatalf("* must bind tighter than +: %v", add.R)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE d_year BETWEEN 1992 AND 1997 AND region IN ('ASIA', 'EUROPE')")
	and := stmt.Where.(BinExpr)
	b, ok := and.L.(BetweenExpr)
	if !ok {
		t.Fatalf("between: %v", and.L)
	}
	if b.Lo.(NumLit).V != 1992 || b.Hi.(NumLit).V != 1997 {
		t.Fatalf("between bounds %v %v", b.Lo, b.Hi)
	}
	in, ok := and.R.(InExpr)
	if !ok || len(in.List) != 2 {
		t.Fatalf("in: %v", and.R)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, "SELECT COUNT(*), AVG(x), MIN(x), MAX(x), SUM(a - b) AS profit FROM t")
	if !stmt.Select[0].Expr.(CallExpr).Star {
		t.Fatal("COUNT(*) star flag")
	}
	if stmt.Select[4].Alias != "profit" {
		t.Fatalf("alias %q", stmt.Select[4].Alias)
	}
	if arg := stmt.Select[4].Expr.(CallExpr).Arg.(BinExpr); arg.Op != "-" {
		t.Fatalf("sum arg %v", arg)
	}
}

func TestParseAliasesAndQualified(t *testing.T) {
	stmt := mustParse(t, "SELECT f.v FROM fact f, dim AS d WHERE f.k = d.k")
	if stmt.From[0].Alias != "f" || stmt.From[1].Alias != "d" {
		t.Fatalf("aliases %v", stmt.From)
	}
	id := stmt.Select[0].Expr.(Ident)
	if id.Qualifier != "f" || id.Name != "v" {
		t.Fatalf("qualified ident %v", id)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE s = 'it''s'")
	eq := stmt.Where.(BinExpr)
	if eq.R.(StrLit).S != "it's" {
		t.Fatalf("escape: %q", eq.R.(StrLit).S)
	}
}

func TestParseUnaryMinusAndNot(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE NOT x = -5")
	not, ok := stmt.Where.(NotExpr)
	if !ok {
		t.Fatalf("not: %v", stmt.Where)
	}
	eq := not.X.(BinExpr)
	neg := eq.R.(BinExpr)
	if neg.Op != "-" || neg.L.(NumLit).V != 0 || neg.R.(NumLit).V != 5 {
		t.Fatalf("unary minus %v", neg)
	}
}

func TestParseHashInIdent(t *testing.T) {
	// SSB values like MFGR#12 appear in identifiers of generated data and
	// string literals; '#' is a legal identifier character here.
	stmt := mustParse(t, "SELECT a FROM t WHERE p_category = 'MFGR#12'")
	if stmt.Where.(BinExpr).R.(StrLit).S != "MFGR#12" {
		t.Fatal("hash literal")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t WHERE a BETWEEN 1",
		"SELECT a FROM t WHERE a IN ()",
		"SELECT a FROM t WHERE s = 'oops",
		"SELECT a FROM t trailing nonsense !!!",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE x ! y",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	stmt := mustParse(t, "select Sum(X) from T where A = 1 group by B order by B desc")
	if stmt.Select[0].Expr.(CallExpr).Func != "SUM" {
		t.Fatal("case-insensitive function")
	}
	if !stmt.OrderBy[0].Desc {
		t.Fatal("DESC not parsed")
	}
	// Identifiers are normalized to lower case.
	if stmt.From[0].Name != "t" {
		t.Fatalf("table name %q", stmt.From[0].Name)
	}
}

func TestStringRendering(t *testing.T) {
	stmt := mustParse(t, "SELECT SUM(a) FROM t WHERE b BETWEEN 1 AND 2 AND c IN (3, 4)")
	s := stmt.Where.(BinExpr).String()
	for _, want := range []string{"BETWEEN", "IN"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render %q missing %q", s, want)
		}
	}
}

func TestParseLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT SUM(a) FROM t GROUP BY b ORDER BY b LIMIT 10")
	if !stmt.HasLimit || stmt.Limit != 10 {
		t.Fatalf("limit: has=%v n=%d", stmt.HasLimit, stmt.Limit)
	}
	stmt = mustParse(t, "SELECT SUM(a) FROM t LIMIT 0")
	if !stmt.HasLimit || stmt.Limit != 0 {
		t.Fatalf("limit 0: has=%v n=%d", stmt.HasLimit, stmt.Limit)
	}
	if stmt := mustParse(t, "SELECT SUM(a) FROM t"); stmt.HasLimit {
		t.Fatal("phantom LIMIT")
	}
	for _, bad := range []string{
		"SELECT SUM(a) FROM t LIMIT",
		"SELECT SUM(a) FROM t LIMIT x",
		"SELECT SUM(a) FROM t LIMIT 1 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
