// Package sql provides a lexer and recursive-descent parser for the SQL
// star-query subset of §2.1:
//
//	SELECT A, Aggr_1, ..., Aggr_k
//	FROM F, D_1, ..., D_n
//	WHERE <join predicates> AND <selection predicates>
//	GROUP BY B
//	[ORDER BY ...]
//
// The parser produces an unbound AST; internal/query binds it against a
// star schema into executable form.
package sql

import (
	"fmt"
	"strings"
)

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Select  []SelectItem
	From    []TableRef
	Where   Expr // nil if absent
	GroupBy []Expr
	OrderBy []OrderItem
	// HasLimit reports whether a LIMIT clause was present; Limit is its
	// row count.
	HasLimit bool
	Limit    int64
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table in the FROM clause with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is an unbound expression node.
type Expr interface {
	String() string
}

// Ident is a possibly qualified column reference (tab.col or col).
type Ident struct {
	Qualifier string
	Name      string
}

func (i Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// NumLit is an integer literal.
type NumLit struct{ V int64 }

func (n NumLit) String() string { return fmt.Sprintf("%d", n.V) }

// StrLit is a single-quoted string literal.
type StrLit struct{ S string }

func (s StrLit) String() string { return fmt.Sprintf("'%s'", s.S) }

// BinExpr is a binary operator application. Op is the upper-case lexeme:
// one of + - * / = <> < <= > >= AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (b BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// NotExpr negates a boolean expression.
type NotExpr struct{ X Expr }

func (n NotExpr) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// InExpr tests list membership.
type InExpr struct {
	X    Expr
	List []Expr
}

func (in InExpr) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.X, strings.Join(parts, ", "))
}

// BetweenExpr is X BETWEEN Lo AND Hi, inclusive.
type BetweenExpr struct {
	X, Lo, Hi Expr
}

func (b BetweenExpr) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.X, b.Lo, b.Hi)
}

// CallExpr is an aggregate function call. Star marks COUNT(*).
type CallExpr struct {
	Func string
	Arg  Expr // nil for COUNT(*)
	Star bool
}

func (c CallExpr) String() string {
	if c.Star {
		return c.Func + "(*)"
	}
	return fmt.Sprintf("%s(%s)", c.Func, c.Arg)
}
