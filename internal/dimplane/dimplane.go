// Package dimplane implements the shared dimension plane: the write side
// of the CJOIN Filter state, factored out of the per-pipeline operator so
// that N fact-partitioned pipelines (internal/shard) share one copy.
//
// CJOIN's premise is that concurrent queries share one in-flight state —
// one dimension hash table per dimension, one query bit per slot. The
// sharded execution tier broke half of that promise: broadcasting a
// query to N shards re-ran dimension admission (Algorithm 1's dimension
// half) N times, building N identical copy-on-write tables and
// multiplying the paper's admission-cost term by shard count. The plane
// restores admit-once semantics: slot allocation, predicate evaluation,
// table installation, and removal (Algorithm 2's dimension half) happen
// exactly once per logical query, and every pipeline's Filter stages
// probe the same immutable dimht snapshots lock-free. This is the same
// separation of update plane and scan plane that HTAP designs argue for,
// applied inside one operator: one writer, N concurrent readers, with
// atomic snapshot publication as the only coupling.
//
// Lifecycle: Admit allocates a query slot and installs the query's
// dimension selections; each attached pipeline calls Retire(slot) when
// its portion of the query has fully drained (Algorithm 2 cleanup), and
// the last of the plane's probers to retire performs the actual bit
// clearing, garbage collection, and slot recycling. Until then the slot
// cannot be reused, so no pipeline ever probes a bit that has been
// reassigned while its tuples are still in flight.
package dimplane

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/expr"
	"cjoin/internal/obs"
	"cjoin/internal/query"
	"cjoin/internal/storage"
)

// ErrSlotsExhausted is returned by Admit when all maxConc query slots are
// in use. The execution tier maps it to core.ErrTooManyQueries.
var ErrSlotsExhausted = errors.New("dimplane: all query slots in use")

// Config tunes a Plane.
type Config struct {
	// MaxConcurrent is the paper's maxConc: the bound on simultaneously
	// admitted queries and the width of every bit-vector. Default 64.
	MaxConcurrent int
	// LegacyMap swaps the lock-free copy-on-write dimht stores for the
	// original map + RWMutex baseline. For ablation benchmarks only.
	LegacyMap bool
	// AdmitFault, when non-nil, is consulted at the top of every Admit;
	// a non-nil return fails the admission with that error (the slot is
	// rolled back). Fault-injection hook (internal/fault); nil in
	// production.
	AdmitFault func() error
	// Obs, when non-nil, registers the plane's metric families
	// (cjoin_dimplane_*) with the telemetry plane; nil disables
	// instrumentation.
	Obs *obs.Registry
	// PredCacheSize bounds the predicate-scan cache: the number of
	// (dimension, predicate-fingerprint) scan results memoized across
	// admissions. 0 selects DefaultPredCacheSize; negative disables
	// caching (every admission re-scans, the pre-PR-8 behavior).
	PredCacheSize int
}

// Plane owns the dimension state shared by every pipeline of one logical
// executor. Admission and removal serialize per dimension inside each
// Store (so independent admissions of different queries proceed in
// parallel, keeping submission time flat as concurrency grows, §6.2.2);
// probers never block.
type Plane struct {
	star *catalog.Star
	cfg  Config
	// probers is the number of pipelines holding each newly admitted
	// slot. Atomic because a shard supervisor Detaches a quarantined
	// pipeline while admissions proceed on survivors; the executor's
	// submit/quarantine lock ordering guarantees every admission's
	// fan-out width matches the value it read here.
	probers atomic.Int32
	ids     *bitvec.Allocator
	stores  []Store
	slots   []slotState
	cache   *predCache // nil when PredCacheSize < 0

	admits       atomic.Int64
	admitNanos   atomic.Int64
	peakBytes    atomic.Int64
	publishes    atomic.Int64 // store version transitions (COW snapshot publications)
	batchAdmits  atomic.Int64 // AdmitBatch rounds
	batchQueries atomic.Int64 // queries admitted through AdmitBatch
	cacheHits    atomic.Int64 // predicate scans skipped (shared cache or batch-local reuse)
	cacheMisses  atomic.Int64 // cache-enabled resolutions that scanned the heap

	om planeMetrics
}

// planeMetrics is the plane's slice of the telemetry plane; nil handles
// (Config.Obs == nil) no-op every call.
type planeMetrics struct {
	admit        *obs.Histogram
	predScan     *obs.Histogram
	batchSize    *obs.Histogram
	admits       *obs.Counter
	retires      *obs.Counter
	finalRetires *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	publishes    *obs.Counter
}

func newPlaneMetrics(r *obs.Registry, pl *Plane) planeMetrics {
	r.GaugeFunc("cjoin_dimplane_slots_in_use",
		"Currently admitted query slots (bit-vector bits held).",
		func() float64 { return float64(pl.ids.InUse()) })
	r.GaugeFunc("cjoin_dimplane_store_bytes",
		"Resident bytes of all dimension stores' current versions.",
		func() float64 { return float64(pl.MemBytes()) })
	return planeMetrics{
		admit: r.DurationHistogram("cjoin_dimplane_admit_seconds",
			"Wall time of the dimension half of admission (Algorithm 1), once per logical query."),
		predScan: r.DurationHistogram("cjoin_dimplane_predicate_scan_seconds",
			"Wall time evaluating one dimension predicate against its heap."),
		batchSize: r.Histogram("cjoin_dimplane_admit_batch_size",
			"Queries admitted per AdmitBatch round (one COW publication per store per round).",
			obs.ExpBuckets(1, 2, 9), 1),
		admits:       r.Counter("cjoin_dimplane_admits_total", "Successful admissions."),
		retires:      r.Counter("cjoin_dimplane_retires_total", "Per-pipeline slot releases."),
		finalRetires: r.Counter("cjoin_dimplane_final_retires_total", "Final retires that cleared bits, garbage-collected, and recycled the slot."),
		cacheHits: r.Counter("cjoin_dimplane_cache_hits_total",
			"Dimension predicate scans skipped because a memoized result was reused."),
		cacheMisses: r.Counter("cjoin_dimplane_cache_misses_total",
			"Cache-enabled predicate resolutions that had to scan the dimension heap."),
		publishes: r.Counter("cjoin_dimplane_snapshot_publish_total",
			"Dimension store version transitions (COW snapshot publications)."),
	}
}

// slotState is the plane's per-slot retirement ledger.
type slotState struct {
	// remain counts pipelines that still hold the slot; the transition to
	// zero triggers the actual removal. Written with the admitted query's
	// refs before activation, so the release/acquire pair on the atomic
	// publishes refs to whichever prober retires last.
	remain atomic.Int32
	// refs records q.DimRefs at admission, consumed by the final Retire
	// to drop each referenced dimension's reference count.
	refs []bool
}

// New builds a plane over the star schema shared by `probers` pipelines:
// each admitted slot is recycled only after Retire has been called that
// many times (once per pipeline lifecycle).
func New(star *catalog.Star, probers int, cfg Config) *Plane {
	if probers < 1 {
		probers = 1
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	words := bitvec.Words(cfg.MaxConcurrent)
	pl := &Plane{
		star:  star,
		cfg:   cfg,
		ids:   bitvec.NewAllocator(cfg.MaxConcurrent),
		slots: make([]slotState, cfg.MaxConcurrent),
	}
	pl.probers.Store(int32(probers))
	for i := range star.Dims {
		if cfg.LegacyMap {
			pl.stores = append(pl.stores, NewMapStore(cfg.MaxConcurrent))
		} else {
			pl.stores = append(pl.stores, NewCowStore(words, star.Dims[i].Heap.NumCols()))
		}
	}
	for i := range pl.slots {
		pl.slots[i].refs = make([]bool, len(star.Dims))
	}
	pl.cache = newPredCache(cfg.PredCacheSize)
	pl.om = newPlaneMetrics(cfg.Obs, pl)
	return pl
}

// Star returns the schema the plane was built over.
func (pl *Plane) Star() *catalog.Star { return pl.star }

// MaxConcurrent returns the plane's slot bound (bit-vector width).
func (pl *Plane) MaxConcurrent() int { return pl.cfg.MaxConcurrent }

// Probers returns the number of pipelines currently sharing the plane
// (quarantined pipelines excluded once Detached).
func (pl *Plane) Probers() int { return int(pl.probers.Load()) }

// Detach removes one prober from the plane: slots admitted from now on
// expect one fewer Retire. Called by the shard supervisor after
// quarantining a failed pipeline, once that pipeline's holds on already
// admitted slots have been released (its failure sweep does this), so
// accounting stays exact for old and new slots alike. Callers must
// serialize Detach against Admit+activation fan-out (shard.Group's
// supervision lock does).
func (pl *Plane) Detach() {
	if pl.probers.Add(-1) < 1 {
		panic("dimplane: detached the last prober")
	}
	// Conservative: a quarantine may reflect I/O trouble on the shared
	// heaps; drop every memoized scan rather than reason about which
	// dimension the failed pipeline touched.
	pl.cache.invalidateAll()
}

// InvalidateCache drops every memoized predicate-scan result. Callers
// that mutate a dimension heap outside the plane (update workloads)
// must invalidate before the next admission; appends are additionally
// caught by the cache's heap-geometry check.
func (pl *Plane) InvalidateCache() { pl.cache.invalidateAll() }

// NumDims returns the number of dimension stores.
func (pl *Plane) NumDims() int { return len(pl.stores) }

// Store returns dimension i's shared store (probe side for Filters).
func (pl *Plane) Store(i int) Store { return pl.stores[i] }

// InUse returns the number of currently admitted query slots.
func (pl *Plane) InUse() int { return pl.ids.InUse() }

// SelectRows evaluates a dimension predicate σ_cnj(D_j) against the
// dimension heap and returns copies of the selected rows — the paper
// issues the predicate query to the underlying engine before mutating
// any shared state, so a scan error leaves the plane untouched.
func SelectRows(tab *catalog.Table, pred expr.Node) ([][]int64, error) {
	var selected [][]int64
	sc := storage.NewScanner(tab.Heap)
	for row, ok := sc.Next(); ok; row, ok = sc.Next() {
		if expr.EvalRow(pred, row) {
			cp := make([]int64, len(row))
			copy(cp, row)
			selected = append(selected, cp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return selected, nil
}

// Admit runs the dimension half of Algorithm 1 exactly once for q: it
// allocates a query slot, evaluates each referenced dimension's
// predicate, installs the selected rows tagged with the slot's bit, and
// marks the slot active-but-non-referencing in every other dimension. A
// context canceled mid-admission (or a dimension scan error) rolls every
// store back and frees the slot; the returned error is then ctx.Err()
// (or the scan error).
//
// Invariant on entry (established by the final Retire): bit `slot` is
// clear in every store's b_Dj and every stored entry.
func (pl *Plane) Admit(ctx context.Context, q *query.Bound) (slot int, err error) {
	start := time.Now()
	slot, ok := pl.ids.Alloc()
	if !ok {
		return -1, ErrSlotsExhausted
	}
	if pl.cfg.AdmitFault != nil {
		if err := pl.cfg.AdmitFault(); err != nil {
			pl.ids.Free(slot)
			return -1, err
		}
	}
	ss := &pl.slots[slot]
	copy(ss.refs, q.DimRefs)
	for i, st := range pl.stores {
		err := ctx.Err()
		if err == nil && q.DimRefs[i] {
			var rows [][]int64
			rows, err = pl.selectRowsCached(i, q.DimPreds[i])
			if err == nil {
				st.AdmitRef(slot, pl.star.KeyCol[i], rows)
				pl.notePublish(1)
			}
		} else if err == nil {
			st.AdmitNonRef(slot)
			pl.notePublish(1)
		}
		if err != nil {
			// Dimension i itself saw no successful Admit*, so it rolls
			// back as unreferenced; the ones before roll back with the
			// reference counts they took.
			for j := 0; j < i; j++ {
				pl.stores[j].Remove(slot, q.DimRefs[j])
			}
			st.Remove(slot, false)
			pl.notePublish(int64(i + 1))
			pl.ids.Free(slot)
			return -1, err
		}
	}
	ss.remain.Store(pl.probers.Load())
	pl.admits.Add(1)
	pl.admitNanos.Add(time.Since(start).Nanoseconds())
	pl.om.admits.Inc()
	pl.om.admit.ObserveSince(start)
	pl.notePeak()
	return slot, nil
}

// selectRowsCached resolves one dimension predicate, consulting the
// predicate-scan cache first. A miss (or a disabled cache) scans the
// heap and memoizes the result.
func (pl *Plane) selectRowsCached(dim int, pred expr.Node) ([][]int64, error) {
	var fp uint64
	if pl.cache != nil {
		fp = query.Fingerprint(pred)
		if rows, ok := pl.cache.lookup(dim, fp, pl.star.Dims[dim].Heap); ok {
			pl.cacheHits.Add(1)
			pl.om.cacheHits.Inc()
			return rows, nil
		}
	}
	scanStart := time.Now()
	rows, err := SelectRows(pl.star.Dims[dim], pred)
	pl.om.predScan.ObserveSince(scanStart)
	if err != nil {
		return nil, err
	}
	if pl.cache != nil {
		pl.cacheMisses.Add(1)
		pl.om.cacheMisses.Inc()
		pl.cache.store(dim, fp, rows, pl.star.Dims[dim].Heap)
	}
	return rows, nil
}

// notePublish counts store version transitions — each CowStore write
// (Admit*, AdmitBatch, Remove) publishes exactly one COW snapshot, so
// the counter makes the batch path's one-publication-per-store claim
// directly observable next to the per-query path's one-per-query.
func (pl *Plane) notePublish(n int64) {
	pl.publishes.Add(n)
	if pl.om.publishes != nil {
		pl.om.publishes.Add(n)
	}
}

// AdmitBatch runs the dimension half of Algorithm 1 for K queries in
// one plane round. Compared with K sequential Admits it saves twice:
// each distinct dimension predicate (by canonical fingerprint) is
// evaluated once for the whole batch — and not at all on a cache hit —
// and each dimension store publishes ONE copy-on-write snapshot
// carrying all K bit-tags instead of K.
//
// The batch is all-or-nothing: any failure (slot exhaustion, fault
// injection, context cancellation, scan error) occurs before any store
// is touched, so the rollback is simply freeing the allocated slots and
// the error return means "nothing was admitted". Callers that want
// partial progress fall back to per-query Admit.
//
// The returned slice maps qs[i] to its slot. As with Admit, each slot
// expects Probers() Retires.
func (pl *Plane) AdmitBatch(ctx context.Context, qs []*query.Bound) ([]int, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	start := time.Now()
	slots := make([]int, len(qs))
	for i := range qs {
		s, ok := pl.ids.Alloc()
		if !ok {
			for j := 0; j < i; j++ {
				pl.ids.Free(slots[j])
			}
			return nil, ErrSlotsExhausted
		}
		slots[i] = s
	}
	fail := func(err error) ([]int, error) {
		for _, s := range slots {
			pl.ids.Free(s)
		}
		return nil, err
	}
	if pl.cfg.AdmitFault != nil {
		// One consultation per query keeps injected fault rates
		// comparable with the per-query path.
		for range qs {
			if err := pl.cfg.AdmitFault(); err != nil {
				return fail(err)
			}
		}
	}

	// Phase 1 — resolve: evaluate each distinct (dimension, predicate)
	// once, building the per-store install lists. Purely in-memory and
	// fallible; no shared state has been touched if we bail here.
	installs := make([][]Install, len(pl.stores))
	for i := range pl.stores {
		// Batch-local memo: even with the shared cache disabled, K
		// queries reusing one template scan once per batch.
		local := make(map[uint64][][]int64)
		for k, q := range qs {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			if !q.DimRefs[i] {
				installs[i] = append(installs[i], Install{Slot: slots[k]})
				continue
			}
			fp := query.Fingerprint(q.DimPreds[i])
			rows, ok := local[fp]
			if ok {
				pl.cacheHits.Add(1)
				pl.om.cacheHits.Inc()
			} else {
				var err error
				rows, err = pl.selectRowsCached(i, q.DimPreds[i])
				if err != nil {
					return fail(err)
				}
				local[fp] = rows
			}
			installs[i] = append(installs[i], Install{
				Slot: slots[k], Ref: true, KeyCol: pl.star.KeyCol[i], Rows: rows,
			})
		}
	}

	// Phase 2 — install: one store write (one snapshot publication) per
	// dimension for the whole batch. Store writes are infallible, so
	// past this point the batch cannot partially fail.
	for k, q := range qs {
		copy(pl.slots[slots[k]].refs, q.DimRefs)
	}
	for i, st := range pl.stores {
		st.AdmitBatch(installs[i])
		pl.notePublish(1)
	}
	for k := range qs {
		pl.slots[slots[k]].remain.Store(pl.probers.Load())
	}

	n := int64(len(qs))
	pl.admits.Add(n)
	pl.admitNanos.Add(time.Since(start).Nanoseconds())
	pl.batchAdmits.Add(1)
	pl.batchQueries.Add(n)
	pl.om.admits.Add(n)
	pl.om.batchSize.Observe(n)
	pl.om.admit.ObserveSince(start)
	pl.notePeak()
	return slots, nil
}

// Retire releases one pipeline's hold on an admitted slot. The last of
// the plane's probers to retire runs Algorithm 2's dimension half —
// clear the query's bit everywhere, garbage-collect entries selected by
// no remaining referencing query — and recycles the slot. It reports
// whether this call performed that final removal.
//
// Exactly `probers` Retire calls must follow every successful Admit; a
// surplus call panics, because it means two lifecycles believed they
// owned the same release and a reused slot could be corrupted.
func (pl *Plane) Retire(slot int) (final bool) {
	ss := &pl.slots[slot]
	n := ss.remain.Add(-1)
	pl.om.retires.Inc()
	if n > 0 {
		return false
	}
	if n < 0 {
		panic(fmt.Sprintf("dimplane: slot %d retired more times than the plane has probers", slot))
	}
	for i, st := range pl.stores {
		st.Remove(slot, ss.refs[i])
	}
	pl.notePublish(int64(len(pl.stores)))
	pl.ids.Free(slot)
	pl.om.finalRetires.Inc()
	return true
}

// Abort fully releases a slot that was admitted but never activated on
// any pipeline — the degraded-mode rejection path, where the executor
// discovers after admission that a query's needed partitions live on a
// quarantined shard. No pipeline holds the slot, so the removal runs
// immediately regardless of the prober count.
func (pl *Plane) Abort(slot int) {
	ss := &pl.slots[slot]
	ss.remain.Store(0)
	for i, st := range pl.stores {
		st.Remove(slot, ss.refs[i])
	}
	pl.notePublish(int64(len(pl.stores)))
	pl.ids.Free(slot)
}

// SelectedKeyRange returns the min and max key stored in dimension dim
// carrying the query's bit — used for partition pruning (§5). any is
// false when the query selects no stored tuple.
func (pl *Plane) SelectedKeyRange(dim, slot int) (minKey, maxKey int64, any bool) {
	pl.stores[dim].ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if !bv.Get(slot) {
			return true
		}
		if !any || key < minKey {
			minKey = key
		}
		if !any || key > maxKey {
			maxKey = key
		}
		any = true
		return true
	})
	return
}

// MemBytes sums the resident bytes of every dimension store's current
// version. The figure is per plane — shared by all probers — which is
// exactly why it stays ~constant in shard count.
func (pl *Plane) MemBytes() int64 {
	var b int64
	for _, st := range pl.stores {
		b += st.MemBytes()
	}
	return b
}

// notePeak folds the current resident size into the high-water mark.
func (pl *Plane) notePeak() {
	cur := pl.MemBytes()
	for {
		peak := pl.peakBytes.Load()
		if cur <= peak || pl.peakBytes.CompareAndSwap(peak, cur) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the plane's counters.
type Stats struct {
	// Admits counts successful Admit calls (one per logical query).
	Admits int64
	// AdmitNanos is the total wall time spent in Admit — the paper's
	// "admission cost" term, now paid once per query instead of once per
	// shard.
	AdmitNanos int64
	// MemBytes is the current resident size of all dimension stores.
	MemBytes int64
	// PeakMemBytes is the high-water mark of MemBytes, sampled at each
	// admission.
	PeakMemBytes int64
	// InUse is the number of currently admitted slots.
	InUse int
	// Probers is the number of pipelines sharing the plane.
	Probers int
	// CacheHits / CacheMisses count predicate resolutions served from
	// the scan cache vs resolved by scanning the dimension heap
	// (batch-local template reuse counts as a hit: the scan was
	// skipped). Both zero when the cache is disabled.
	CacheHits   int64
	CacheMisses int64
	// SnapshotPublishes counts dimension store version transitions —
	// one COW snapshot publication per CowStore write. The batch path's
	// saving shows up here directly: K queries cost NumDims
	// publications instead of K*NumDims.
	SnapshotPublishes int64
	// BatchAdmits / BatchQueries count AdmitBatch rounds and the
	// queries admitted through them; their ratio is the mean batch size.
	BatchAdmits  int64
	BatchQueries int64
}

// Stats snapshots the plane counters.
func (pl *Plane) Stats() Stats {
	hits, misses := pl.cacheHits.Load(), pl.cacheMisses.Load()
	return Stats{
		Admits:            pl.admits.Load(),
		AdmitNanos:        pl.admitNanos.Load(),
		MemBytes:          pl.MemBytes(),
		PeakMemBytes:      pl.peakBytes.Load(),
		InUse:             pl.ids.InUse(),
		Probers:           int(pl.probers.Load()),
		CacheHits:         hits,
		CacheMisses:       misses,
		SnapshotPublishes: pl.publishes.Load(),
		BatchAdmits:       pl.batchAdmits.Load(),
		BatchQueries:      pl.batchQueries.Load(),
	}
}
