package dimplane

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// miniStar builds a 2-dimension star; dimension d1 holds rows (k, k%5)
// for k in [0, n), d2 holds (k, k%3).
func miniStar(t testing.TB, n int64) *catalog.Star {
	t.Helper()
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 0, []catalog.Column{{Name: "fk1"}, {Name: "fk2"}, {Name: "m"}})
	d1 := catalog.NewTable(dev, "d1", 0, []catalog.Column{{Name: "k"}, {Name: "v"}})
	d2 := catalog.NewTable(dev, "d2", 0, []catalog.Column{{Name: "k"}, {Name: "w"}})
	for k := int64(0); k < n; k++ {
		d1.Heap.Append([]int64{k, k % 5})
		d2.Heap.Append([]int64{k, k % 3})
	}
	star, err := catalog.NewStar(fact, []*catalog.Table{d1, d2}, []int{0, 1}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return star
}

// predLt builds "col1 < x" over a dimension row.
func predLt(dim int, x int64) expr.Node {
	return expr.Bin{Op: expr.Lt, L: expr.Col{Slot: dim, Idx: 1}, R: expr.Const{V: x}}
}

// boundRef builds a Bound referencing d1 with "v < x" and leaving d2
// unreferenced.
func boundRef(star *catalog.Star, x int64) *query.Bound {
	return &query.Bound{
		Schema:   star,
		DimRefs:  []bool{true, false},
		DimPreds: []expr.Node{predLt(0, x), nil},
	}
}

func forEachImpl(t *testing.T, fn func(t *testing.T, legacy bool)) {
	t.Run("cow", func(t *testing.T) { fn(t, false) })
	t.Run("map", func(t *testing.T) { fn(t, true) })
}

func TestAdmitOnceInstallsEverywhere(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		star := miniStar(t, 20)
		pl := New(star, 3, Config{MaxConcurrent: 8, LegacyMap: legacy})
		slot, err := pl.Admit(context.Background(), boundRef(star, 2))
		if err != nil {
			t.Fatal(err)
		}
		// d1: v < 2 selects k%5 in {0,1}: 8 of 20 rows, tagged with slot.
		if got := pl.Store(0).Len(); got != 8 {
			t.Fatalf("d1 stored %d, want 8", got)
		}
		if got := pl.Store(0).RefCount(); got != 1 {
			t.Fatalf("d1 refs %d", got)
		}
		pl.Store(0).ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			if !bv.Get(slot) {
				t.Fatalf("d1 entry %d missing query bit", key)
			}
			return true
		})
		// d2 is unreferenced: empty, no refs.
		if got := pl.Store(1).Len(); got != 0 {
			t.Fatalf("d2 stored %d, want 0", got)
		}
		if got := pl.Store(1).RefCount(); got != 0 {
			t.Fatalf("d2 refs %d", got)
		}
		if pl.InUse() != 1 {
			t.Fatalf("InUse %d", pl.InUse())
		}
		st := pl.Stats()
		if st.Admits != 1 || st.AdmitNanos <= 0 || st.Probers != 3 {
			t.Fatalf("stats %+v", st)
		}
		if st.MemBytes <= 0 || st.PeakMemBytes < st.MemBytes {
			t.Fatalf("memory accounting: %+v", st)
		}
	})
}

// TestRetireCountsProbers verifies the last-of-N release semantics: the
// dimension state and the slot survive until every prober retires, and
// one extra retire panics (a double release would corrupt a reused
// slot).
func TestRetireCountsProbers(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		const probers = 3
		star := miniStar(t, 20)
		pl := New(star, probers, Config{MaxConcurrent: 8, LegacyMap: legacy})
		slot, err := pl.Admit(context.Background(), boundRef(star, 2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < probers-1; i++ {
			if final := pl.Retire(slot); final {
				t.Fatalf("retire %d of %d reported final", i+1, probers)
			}
			if pl.Store(0).Len() == 0 || pl.InUse() != 1 {
				t.Fatalf("state released before the last retire (retire %d)", i+1)
			}
		}
		if final := pl.Retire(slot); !final {
			t.Fatal("last retire not final")
		}
		if pl.Store(0).Len() != 0 || pl.Store(0).RefCount() != 0 || pl.InUse() != 0 {
			t.Fatalf("state not released: len=%d refs=%d inuse=%d",
				pl.Store(0).Len(), pl.Store(0).RefCount(), pl.InUse())
		}
		defer func() {
			if recover() == nil {
				t.Fatal("surplus Retire did not panic")
			}
		}()
		pl.Retire(slot)
	})
}

// TestAdmitRollsBackOnContextCancel verifies a context canceled
// mid-admission leaves no trace: no slot held, no bits set, no entries.
func TestAdmitRollsBackOnContextCancel(t *testing.T) {
	star := miniStar(t, 20)
	pl := New(star, 2, Config{MaxConcurrent: 8})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.Admit(ctx, boundRef(star, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 || pl.Store(1).RefCount() != 0 {
		t.Fatal("canceled admission left state behind")
	}
	// The plane stays usable for the next admission.
	slot, err := pl.Admit(context.Background(), boundRef(star, 2))
	if err != nil {
		t.Fatal(err)
	}
	pl.Retire(slot)
	pl.Retire(slot)
}

func TestSlotsExhausted(t *testing.T) {
	star := miniStar(t, 10)
	pl := New(star, 1, Config{MaxConcurrent: 2})
	ctx := context.Background()
	s0, err := pl.Admit(ctx, boundRef(star, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Admit(ctx, boundRef(star, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Admit(ctx, boundRef(star, 3)); !errors.Is(err, ErrSlotsExhausted) {
		t.Fatalf("err = %v", err)
	}
	// Freeing one slot re-opens admission.
	pl.Retire(s0)
	if _, err := pl.Admit(ctx, boundRef(star, 3)); err != nil {
		t.Fatal(err)
	}
}

// TestSlotReuseInvariant checks the Admit-entry invariant across a
// retire/readmit cycle: a recycled slot starts with its bit clear in
// every store, so a new query's selection is exact.
func TestSlotReuseInvariant(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		star := miniStar(t, 20)
		pl := New(star, 1, Config{MaxConcurrent: 8, LegacyMap: legacy})
		ctx := context.Background()
		a, err := pl.Admit(ctx, boundRef(star, 5)) // broad selection
		if err != nil {
			t.Fatal(err)
		}
		b, err := pl.Admit(ctx, boundRef(star, 1)) // subset
		if err != nil {
			t.Fatal(err)
		}
		pl.Retire(a)
		// The survivor entries must carry only b's bit.
		pl.Store(0).ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			if bv.Get(a) {
				t.Fatalf("entry %d keeps retired slot %d's bit", key, a)
			}
			return true
		})
		// Reuse of a's slot as non-referencing: every survivor gains it.
		c, err := pl.Admit(ctx, &query.Bound{
			Schema:   star,
			DimRefs:  []bool{false, true},
			DimPreds: []expr.Node{nil, predLt(1, 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if c != a {
			t.Logf("allocator returned %d (not recycled %d); invariant still checked", c, a)
		}
		pl.Store(0).ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			if !bv.Get(c) {
				t.Fatalf("entry %d missing non-referencing bit %d", key, c)
			}
			return true
		})
		pl.Retire(b)
		pl.Retire(c)
		if pl.Store(0).Len() != 0 || pl.Store(1).Len() != 0 || pl.InUse() != 0 {
			t.Fatal("plane not empty after all retires")
		}
	})
}

// TestSelectedKeyRange exercises the §5 partition-pruning probe.
func TestSelectedKeyRange(t *testing.T) {
	star := miniStar(t, 20)
	pl := New(star, 1, Config{MaxConcurrent: 8})
	slot, err := pl.Admit(context.Background(), boundRef(star, 2)) // k%5 in {0,1}
	if err != nil {
		t.Fatal(err)
	}
	min, max, any := pl.SelectedKeyRange(0, slot)
	if !any || min != 0 || max != 16 {
		t.Fatalf("range = (%d, %d, %v), want (0, 16, true)", min, max, any)
	}
	if _, _, any := pl.SelectedKeyRange(1, slot); any {
		t.Fatal("unreferenced dimension reported a key range")
	}
}

// TestConcurrentAdmitRetire churns admissions and last-prober retires
// from many goroutines; under -race this verifies the plane's write side
// needs no coordination beyond the per-store writer locks and the slot
// ledger atomics.
func TestConcurrentAdmitRetire(t *testing.T) {
	star := miniStar(t, 40)
	pl := New(star, 2, Config{MaxConcurrent: 16})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				slot, err := pl.Admit(ctx, boundRef(star, int64(1+i%5)))
				if errors.Is(err, ErrSlotsExhausted) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				pl.Retire(slot)
				pl.Retire(slot)
			}
		}(w)
	}
	wg.Wait()
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 || pl.Store(0).RefCount() != 0 {
		t.Fatalf("churn left inuse=%d len=%d refs=%d", pl.InUse(), pl.Store(0).Len(), pl.Store(0).RefCount())
	}
}

// TestDetachShrinksRetirement verifies the supervisor's quarantine
// primitive: after Detach, new admissions need one fewer Retire, while
// slots admitted before keep their original count (the dead prober's
// hold is released by its failure sweep, which is one of the N).
func TestDetachShrinksRetirement(t *testing.T) {
	star := miniStar(t, 20)
	pl := New(star, 3, Config{MaxConcurrent: 8})
	before, err := pl.Admit(context.Background(), boundRef(star, 2))
	if err != nil {
		t.Fatal(err)
	}
	pl.Detach()
	if got := pl.Probers(); got != 2 {
		t.Fatalf("probers after Detach = %d, want 2", got)
	}
	after, err := pl.Admit(context.Background(), boundRef(star, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-Detach slot still takes 3 retires.
	if pl.Retire(before) || pl.Retire(before) {
		t.Fatal("pre-Detach slot released early")
	}
	if !pl.Retire(before) {
		t.Fatal("third retire of pre-Detach slot not final")
	}
	// Post-Detach slot takes 2.
	if pl.Retire(after) {
		t.Fatal("post-Detach slot released after one retire")
	}
	if !pl.Retire(after) {
		t.Fatal("second retire of post-Detach slot not final")
	}
	if pl.InUse() != 0 {
		t.Fatalf("InUse = %d", pl.InUse())
	}
	// Detaching down to zero probers is an accounting bug.
	pl.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("detaching the last prober did not panic")
		}
	}()
	pl.Detach()
}

// TestAbortReleasesUnactivatedSlot verifies the degraded-mode rejection
// path: a slot admitted but never handed to any pipeline is fully
// released by one Abort, whatever the prober count.
func TestAbortReleasesUnactivatedSlot(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		star := miniStar(t, 20)
		pl := New(star, 4, Config{MaxConcurrent: 8, LegacyMap: legacy})
		slot, err := pl.Admit(context.Background(), boundRef(star, 2))
		if err != nil {
			t.Fatal(err)
		}
		pl.Abort(slot)
		if pl.InUse() != 0 || pl.Store(0).Len() != 0 || pl.Store(0).RefCount() != 0 {
			t.Fatalf("Abort left state behind: inuse=%d len=%d refs=%d",
				pl.InUse(), pl.Store(0).Len(), pl.Store(0).RefCount())
		}
		// The slot is reusable immediately.
		if _, err := pl.Admit(context.Background(), boundRef(star, 2)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAdmitFaultHook verifies an injected admission error rolls the slot
// back and leaves the plane clean.
func TestAdmitFaultHook(t *testing.T) {
	star := miniStar(t, 20)
	boom := errors.New("injected")
	fail := true
	pl := New(star, 2, Config{MaxConcurrent: 8, AdmitFault: func() error {
		if fail {
			return boom
		}
		return nil
	}})
	if _, err := pl.Admit(context.Background(), boundRef(star, 2)); !errors.Is(err, boom) {
		t.Fatalf("Admit = %v, want injected error", err)
	}
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 {
		t.Fatalf("failed admission left state: inuse=%d len=%d", pl.InUse(), pl.Store(0).Len())
	}
	fail = false
	if _, err := pl.Admit(context.Background(), boundRef(star, 2)); err != nil {
		t.Fatal(err)
	}
}
