package dimplane

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// randBound builds a random 2-dim query over miniStar: each dimension
// independently unreferenced, or filtered by one of a few templates, so
// batches mix non-ref installs, ref installs, and repeated predicates.
func randBound(star *catalog.Star, rng *rand.Rand) *query.Bound {
	pred := func(dim int) expr.Node {
		switch rng.Intn(3) {
		case 0:
			return predLt(dim, rng.Int63n(5))
		case 1:
			return expr.Bin{Op: expr.Eq, L: expr.Col{Slot: dim, Idx: 1}, R: expr.Const{V: rng.Int63n(4)}}
		default:
			return expr.Bin{Op: expr.Ne, L: expr.Col{Slot: dim, Idx: 1}, R: expr.Const{V: rng.Int63n(4)}}
		}
	}
	b := &query.Bound{
		Schema:   star,
		DimRefs:  make([]bool, 2),
		DimPreds: make([]expr.Node, 2),
	}
	for d := 0; d < 2; d++ {
		if rng.Intn(3) > 0 {
			b.DimRefs[d] = true
			b.DimPreds[d] = pred(d)
		}
	}
	return b
}

// slotKeys collects the key set carrying a slot's bit in one store.
func slotKeys(st Store, slot int) map[int64]bool {
	out := make(map[int64]bool)
	st.ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if bv.Get(slot) {
			out[key] = true
		}
		return true
	})
	return out
}

func sameKeys(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestAdmitBatchParity is the batch-admission exactness property: for
// randomized query batches — mixed refs, repeated templates, every
// store implementation, cache on and off — AdmitBatch must leave every
// store bit-for-bit identical to one-at-a-time Admit of the same
// queries, and interleaved retires must not perturb survivors.
func TestAdmitBatchParity(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		for _, cacheSize := range []int{-1, 0} {
			t.Run(fmt.Sprintf("cache=%d", cacheSize), func(t *testing.T) {
				rng := rand.New(rand.NewSource(99))
				star := miniStar(t, 30)
				ctx := context.Background()
				for trial := 0; trial < 25; trial++ {
					k := 1 + rng.Intn(8)
					qs := make([]*query.Bound, k)
					for i := range qs {
						qs[i] = randBound(star, rng)
						if i > 0 && rng.Intn(3) == 0 {
							qs[i] = qs[rng.Intn(i)] // repeated template
						}
					}
					cfg := Config{MaxConcurrent: 16, LegacyMap: legacy, PredCacheSize: cacheSize}
					batched := New(star, 1, cfg)
					seq := New(star, 1, cfg)
					bs, err := batched.AdmitBatch(ctx, qs)
					if err != nil {
						t.Fatal(err)
					}
					ss := make([]int, k)
					for i, q := range qs {
						if ss[i], err = seq.Admit(ctx, q); err != nil {
							t.Fatal(err)
						}
					}
					check := func(stage string) {
						for d := 0; d < 2; d++ {
							for i := range qs {
								if bk, sk := slotKeys(batched.Store(d), bs[i]), slotKeys(seq.Store(d), ss[i]); !sameKeys(bk, sk) {
									t.Fatalf("trial %d %s: dim %d query %d: batched selects %d keys, sequential %d",
										trial, stage, d, i, len(bk), len(sk))
								}
							}
							if bl, sl := batched.Store(d).Len(), seq.Store(d).Len(); bl != sl {
								t.Fatalf("trial %d %s: dim %d: batched stores %d entries, sequential %d", trial, stage, d, bl, sl)
							}
							if br, sr := batched.Store(d).RefCount(), seq.Store(d).RefCount(); br != sr {
								t.Fatalf("trial %d %s: dim %d: refs %d vs %d", trial, stage, d, br, sr)
							}
						}
					}
					check("admitted")
					// Retire a random strict subset on both planes; the
					// survivors must still match exactly.
					if k > 1 {
						drop := rng.Intn(k-1) + 1
						for i := 0; i < drop; i++ {
							batched.Retire(bs[i])
							seq.Retire(ss[i])
						}
						bs, ss, qs = bs[drop:], ss[drop:], qs[drop:]
						check("after partial retire")
					}
				}
			})
		}
	})
}

// TestAdmitBatchAllOrNothing: slot exhaustion mid-batch admits nothing
// and leaves no trace, and the failure does not disturb queries already
// admitted.
func TestAdmitBatchAllOrNothing(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacy bool) {
		star := miniStar(t, 20)
		pl := New(star, 1, Config{MaxConcurrent: 4, LegacyMap: legacy})
		ctx := context.Background()
		held, err := pl.Admit(ctx, boundRef(star, 2))
		if err != nil {
			t.Fatal(err)
		}
		before := slotKeys(pl.Store(0), held)

		qs := make([]*query.Bound, 4) // 4 > 3 free slots
		for i := range qs {
			qs[i] = boundRef(star, 3)
		}
		if _, err := pl.AdmitBatch(ctx, qs); !errors.Is(err, ErrSlotsExhausted) {
			t.Fatalf("err = %v, want ErrSlotsExhausted", err)
		}
		if pl.InUse() != 1 {
			t.Fatalf("InUse = %d after failed batch, want 1", pl.InUse())
		}
		if !sameKeys(slotKeys(pl.Store(0), held), before) {
			t.Fatal("failed batch disturbed an admitted query")
		}
		// The held query published once per store; the failed batch must
		// add nothing.
		if st := pl.Stats(); st.BatchAdmits != 0 || st.SnapshotPublishes != 2 {
			t.Fatalf("failed batch moved counters: %+v", st)
		}
		// The freed slots admit a fitting batch.
		slots, err := pl.AdmitBatch(ctx, qs[:3])
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) != 3 || pl.InUse() != 4 {
			t.Fatalf("slots=%v inuse=%d", slots, pl.InUse())
		}
	})
}

// TestAdmitBatchRollsBack covers the fallible half of AdmitBatch: a
// canceled context or an injected admission fault must admit nothing.
func TestAdmitBatchRollsBack(t *testing.T) {
	star := miniStar(t, 20)
	boom := errors.New("injected")
	calls, failAt := 0, 3
	pl := New(star, 2, Config{MaxConcurrent: 8, AdmitFault: func() error {
		calls++
		if calls == failAt {
			return boom
		}
		return nil
	}})
	qs := []*query.Bound{boundRef(star, 2), boundRef(star, 3), boundRef(star, 4)}
	if _, err := pl.AdmitBatch(context.Background(), qs); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 || pl.Store(0).RefCount() != 0 {
		t.Fatalf("failed batch left state: inuse=%d len=%d refs=%d",
			pl.InUse(), pl.Store(0).Len(), pl.Store(0).RefCount())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pl.AdmitBatch(ctx, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 {
		t.Fatal("canceled batch left state behind")
	}
	// The plane still works.
	if _, err := pl.AdmitBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSavesPublications pins the tentpole's arithmetic: a K-query
// batch costs one snapshot publication per store instead of K.
func TestBatchSavesPublications(t *testing.T) {
	star := miniStar(t, 20)
	ctx := context.Background()
	qs := make([]*query.Bound, 6)
	for i := range qs {
		qs[i] = boundRef(star, int64(1+i%3))
	}

	seq := New(star, 1, Config{MaxConcurrent: 16})
	for _, q := range qs {
		if _, err := seq.Admit(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	batched := New(star, 1, Config{MaxConcurrent: 16})
	if _, err := batched.AdmitBatch(ctx, qs); err != nil {
		t.Fatal(err)
	}

	sp, bp := seq.Stats().SnapshotPublishes, batched.Stats().SnapshotPublishes
	if want := int64(len(qs) * 2); sp != want { // 2 dims per query
		t.Fatalf("sequential publishes = %d, want %d", sp, want)
	}
	if want := int64(2); bp != want { // one per store for the whole batch
		t.Fatalf("batched publishes = %d, want %d", bp, want)
	}
	st := batched.Stats()
	if st.BatchAdmits != 1 || st.BatchQueries != 6 {
		t.Fatalf("batch counters: %+v", st)
	}
}

// TestPredCacheHitsAndCounters: repeated predicates are served from the
// cache (one heap scan per distinct predicate) and the hit/miss ledger
// matches.
func TestPredCacheHitsAndCounters(t *testing.T) {
	star := miniStar(t, 20)
	pl := New(star, 1, Config{MaxConcurrent: 16})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		// Structurally equal but distinct ASTs: the fingerprint, not
		// pointer identity, must unify them.
		if _, err := pl.Admit(ctx, boundRef(star, 2)); err != nil {
			t.Fatal(err)
		}
	}
	st := pl.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 4 {
		t.Fatalf("hits=%d misses=%d, want 4/1", st.CacheHits, st.CacheMisses)
	}
	if pl.cache.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", pl.cache.len())
	}

	// Disabled cache: every admission scans.
	off := New(star, 1, Config{MaxConcurrent: 16, PredCacheSize: -1})
	for i := 0; i < 3; i++ {
		if _, err := off.Admit(ctx, boundRef(star, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if st := off.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache counted: %+v", st)
	}
}

// TestPredCacheInvalidation: results must never be served stale — a
// dimension heap growing under the cached scan, a Detach (quarantine
// reduces the plane's world), or an explicit invalidation all force a
// re-scan.
func TestPredCacheInvalidation(t *testing.T) {
	star := miniStar(t, 10)
	pl := New(star, 2, Config{MaxConcurrent: 16})
	ctx := context.Background()

	s0, err := pl.Admit(ctx, boundRef(star, 2)) // caches the v<2 scan
	if err != nil {
		t.Fatal(err)
	}
	base := len(slotKeys(pl.Store(0), s0))

	// The heap grows: key 100 with v=1 matches v<2. The geometry check
	// must reject the cached rows and re-scan.
	star.Dims[0].Heap.Append([]int64{100, 1})
	s1, err := pl.Admit(ctx, boundRef(star, 2))
	if err != nil {
		t.Fatal(err)
	}
	keys := slotKeys(pl.Store(0), s1)
	if len(keys) != base+1 || !keys[100] {
		t.Fatalf("stale cache: new admission selected %d keys (want %d incl. key 100)", len(keys), base+1)
	}

	// Detach invalidates: the next resolution is a miss even though the
	// fingerprint and geometry are unchanged.
	misses := pl.Stats().CacheMisses
	pl.Detach()
	if _, err := pl.Admit(ctx, boundRef(star, 2)); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats().CacheMisses; got != misses+1 {
		t.Fatalf("misses after Detach = %d, want %d", got, misses+1)
	}

	misses = pl.Stats().CacheMisses
	pl.InvalidateCache()
	if _, err := pl.Admit(ctx, boundRef(star, 2)); err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats().CacheMisses; got != misses+1 {
		t.Fatalf("misses after InvalidateCache = %d, want %d", got, misses+1)
	}
}

// TestPredCacheEviction: the FIFO bound holds.
func TestPredCacheEviction(t *testing.T) {
	star := miniStar(t, 20)
	pl := New(star, 1, Config{MaxConcurrent: 32, PredCacheSize: 2})
	ctx := context.Background()
	for x := int64(1); x <= 4; x++ {
		if _, err := pl.Admit(ctx, boundRef(star, x)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pl.cache.len(); got != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", got)
	}
}

// TestPredCacheChurnRace churns batch and single admissions (repeated
// templates, so the cache is hot), retires, and invalidations from many
// goroutines; under -race this proves the cache needs no coordination
// with the slot ledger beyond its own mutex.
func TestPredCacheChurnRace(t *testing.T) {
	star := miniStar(t, 40)
	pl := New(star, 2, Config{MaxConcurrent: 32, PredCacheSize: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 150; i++ {
				if w%2 == 0 {
					qs := make([]*query.Bound, 1+rng.Intn(4))
					for j := range qs {
						qs[j] = boundRef(star, int64(1+rng.Intn(5)))
					}
					slots, err := pl.AdmitBatch(ctx, qs)
					if errors.Is(err, ErrSlotsExhausted) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					for _, s := range slots {
						pl.Retire(s)
						pl.Retire(s)
					}
				} else {
					slot, err := pl.Admit(ctx, boundRef(star, int64(1+rng.Intn(5))))
					if errors.Is(err, ErrSlotsExhausted) {
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					pl.Retire(slot)
					pl.Retire(slot)
				}
				if i%17 == 0 {
					pl.InvalidateCache()
				}
			}
		}(w)
	}
	wg.Wait()
	if pl.InUse() != 0 || pl.Store(0).Len() != 0 || pl.Store(0).RefCount() != 0 {
		t.Fatalf("churn left inuse=%d len=%d refs=%d", pl.InUse(), pl.Store(0).Len(), pl.Store(0).RefCount())
	}
}

// TestAdmitBatchEmptyAndSingle: degenerate batch shapes.
func TestAdmitBatchEmptyAndSingle(t *testing.T) {
	star := miniStar(t, 10)
	pl := New(star, 1, Config{MaxConcurrent: 4})
	slots, err := pl.AdmitBatch(context.Background(), nil)
	if err != nil || slots != nil {
		t.Fatalf("empty batch: %v %v", slots, err)
	}
	slots, err = pl.AdmitBatch(context.Background(), []*query.Bound{boundRef(star, 2)})
	if err != nil || len(slots) != 1 {
		t.Fatalf("single batch: %v %v", slots, err)
	}
	if st := pl.Stats(); st.BatchAdmits != 1 || st.BatchQueries != 1 {
		t.Fatalf("counters: %+v", st)
	}
}
