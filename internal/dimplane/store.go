package dimplane

import (
	"sync"

	"cjoin/internal/bitvec"
	"cjoin/internal/dimht"
)

// Store is one dimension's shared Filter store: the hash table HD_j plus
// the complement bitmap b_Dj (bit i set iff active query i does not
// reference D_j), which doubles as the filtering vector for fact tuples
// whose dimension tuple is absent from the table and as the probe-skip
// mask (§3.2.2).
//
// The write side (Admit*/Remove) belongs to the Plane and runs exactly
// once per logical query; the read side is probed concurrently by every
// pipeline attached to the plane. Two implementations exist: CowStore
// (default) publishes copy-on-write dimht snapshots so the probe path is
// lock-free, and MapStore keeps the original map[int64]*MapEntry under an
// RWMutex as an ablation baseline (core.Config.LegacyMapFilter).
type Store interface {
	// RefCount returns the number of active queries referencing the
	// dimension.
	RefCount() int
	// Len returns the number of stored dimension tuples.
	Len() int
	// MemBytes estimates the resident bytes of the store's current
	// version (keys, bit-vectors, rows); shared by every prober, so it is
	// reported once per plane, not once per pipeline.
	MemBytes() int64
	// AdmitNonRef marks query slot as active but non-referencing: set bit
	// slot in b_Dj and in every stored entry (§3.2.1's implicit TRUE
	// predicate).
	AdmitNonRef(slot int)
	// AdmitRef installs the rows selected by the query's dimension
	// predicate and sets bit slot on each (Algorithm 1).
	AdmitRef(slot, keyCol int, rows [][]int64)
	// AdmitBatch installs K queries' tags in one version transition:
	// the CowStore pays a single snapshot publication for the whole
	// batch where the per-query path pays K. Non-referencing installs
	// are applied before referencing ones so entries upserted by the
	// batch inherit every batchmate's non-ref bit via b_Dj, exactly as
	// sequential admission would have left them.
	AdmitBatch(installs []Install)
	// Remove clears bit slot everywhere and garbage-collects entries
	// selected by no remaining referencing query (Algorithm 2). It
	// reports whether the table emptied.
	Remove(slot int, referenced bool) (emptied bool)
	// ForEach visits every stored entry; the bit-vector aliases internal
	// storage and must not be modified or retained.
	ForEach(fn func(key int64, row []int64, bv bitvec.Vec) bool)
	// ForceRefs overrides the reference count (test plumbing only).
	ForceRefs(n int)
}

// CowStore is the default store: a dimht copy-on-write open-addressing
// table. Probers load an immutable Snapshot per batch and therefore take
// no lock; admission and finalization build the next snapshot off to the
// side (writers serialize inside dimht.Table).
type CowStore struct {
	t *dimht.Table
}

// NewCowStore returns an empty lock-free store for bit-vectors of the
// given word width over dimension rows of ncols columns.
func NewCowStore(words, ncols int) *CowStore {
	return &CowStore{t: dimht.New(words, ncols)}
}

// Snapshot pins the current immutable (table, b_Dj, refs) version — the
// Filter hot loop's one atomic load per batch.
func (c *CowStore) Snapshot() *dimht.Snapshot { return c.t.Load() }

func (c *CowStore) RefCount() int { return c.t.Load().Refs() }
func (c *CowStore) Len() int      { return c.t.Load().Len() }

func (c *CowStore) MemBytes() int64 { return c.t.Load().MemBytes() }

func (c *CowStore) AdmitNonRef(slot int) {
	c.t.Update(func(b *dimht.Builder) {
		b.SetMaskBit(slot)
		b.SetBitAll(slot)
	})
}

func (c *CowStore) AdmitRef(slot, keyCol int, rows [][]int64) {
	c.t.Update(func(b *dimht.Builder) {
		b.AddRef()
		for _, row := range rows {
			b.Upsert(row[keyCol], row).Set(slot)
		}
	})
}

// Install is one query's contribution to an AdmitBatch on one
// dimension: either a non-referencing tag (Ref false) or the rows its
// predicate selected (Ref true). Rows may be shared with the plane's
// predicate cache and with other slots in the batch; stores must treat
// them as immutable.
type Install struct {
	Slot   int
	Ref    bool
	KeyCol int       // key column index; meaningful when Ref
	Rows   [][]int64 // selected rows; meaningful when Ref
}

func (c *CowStore) AdmitBatch(installs []Install) {
	c.t.Update(func(b *dimht.Builder) {
		// Phase 1: all non-referencing slots — K mask bits, then ONE
		// arena sweep ORs the whole batch's tags into existing entries.
		mask := make(bitvec.Vec, len(b.Mask()))
		for _, ins := range installs {
			if !ins.Ref {
				b.SetMaskBit(ins.Slot)
				mask.Set(ins.Slot)
			}
		}
		b.SetBitsAll(mask)
		// Phase 2: referencing slots. New entries copy b_Dj, which now
		// carries every batchmate's non-ref bit, so ordering within the
		// batch cannot be observed by probers.
		for _, ins := range installs {
			if !ins.Ref {
				continue
			}
			b.AddRef()
			for _, row := range ins.Rows {
				b.Upsert(row[ins.KeyCol], row).Set(ins.Slot)
			}
		}
	})
}

func (c *CowStore) Remove(slot int, referenced bool) (emptied bool) {
	s := c.t.Update(func(b *dimht.Builder) {
		b.ClearMaskBit(slot)
		if referenced {
			b.DropRef()
		}
		b.ClearBitAll(slot)
		mask := b.Mask()
		b.Retain(func(bv bitvec.Vec) bool { return !bv.AndNotIsZero(mask) })
	})
	return s.Len() == 0 && s.Refs() == 0
}

func (c *CowStore) ForEach(fn func(key int64, row []int64, bv bitvec.Vec) bool) {
	c.t.Load().ForEach(fn)
}

func (c *CowStore) ForceRefs(n int) {
	c.t.Update(func(b *dimht.Builder) { b.SetRefs(n) })
}

// MapEntry is one stored dimension tuple δ with its bit-vector b_δ:
// bit i is 1 iff query i references this dimension and selects δ, or
// query i is active and does not reference this dimension (§3.2.1).
// Only the MapStore baseline allocates these; CowStore keeps rows and
// bit-vectors inline in dimht arenas.
type MapEntry struct {
	Row []int64
	BV  bitvec.Vec
}

// MapStore is the original Filter store, kept as the ablation baseline:
// a built-in map of heap-allocated entries behind a per-batch RWMutex.
// Every probe costs three dependent cache misses (map bucket, entry,
// bit-vector) plus read-lock traffic that grows with Stage workers —
// exactly the overhead CowStore removes.
type MapStore struct {
	mu   sync.RWMutex
	ht   map[int64]*MapEntry
	bDj  bitvec.Vec
	refs int
}

// NewMapStore returns an empty map-backed store for maxConc query slots.
func NewMapStore(maxConc int) *MapStore {
	return &MapStore{
		ht:  make(map[int64]*MapEntry),
		bDj: bitvec.New(maxConc),
	}
}

// View pins a read-consistent view of the store for one batch of probes;
// the caller must Release it.
func (m *MapStore) View() MapView {
	m.mu.RLock()
	return MapView{m: m}
}

// MapView is a read-locked window over a MapStore.
type MapView struct {
	m *MapStore
}

// Refs returns the dimension reference count under the view's lock.
func (v MapView) Refs() int { return v.m.refs }

// Mask returns the complement bitmap b_Dj; it aliases store state and
// must not be modified or retained past Release.
func (v MapView) Mask() bitvec.Vec { return v.m.bDj }

// Lookup returns the entry stored for key, or nil.
func (v MapView) Lookup(key int64) *MapEntry { return v.m.ht[key] }

// Release drops the view's read lock.
func (v MapView) Release() { v.m.mu.RUnlock() }

func (m *MapStore) RefCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.refs
}

func (m *MapStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ht)
}

func (m *MapStore) MemBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var b int64
	for _, e := range m.ht {
		// Row and bit-vector payloads plus a rough per-entry overhead for
		// the map bucket slot, the entry header, and two slice headers.
		b += int64(len(e.Row))*8 + int64(len(e.BV))*8 + 64
	}
	return b + int64(len(m.bDj))*8
}

func (m *MapStore) AdmitNonRef(slot int) {
	m.mu.Lock()
	m.bDj.Set(slot)
	for _, e := range m.ht {
		e.BV.Set(slot)
	}
	m.mu.Unlock()
}

func (m *MapStore) AdmitRef(slot, keyCol int, rows [][]int64) {
	m.mu.Lock()
	m.refs++
	for _, row := range rows {
		key := row[keyCol]
		e, ok := m.ht[key]
		if !ok {
			e = &MapEntry{Row: row, BV: m.bDj.Clone()}
			m.ht[key] = e
		}
		e.BV.Set(slot)
	}
	m.mu.Unlock()
}

func (m *MapStore) AdmitBatch(installs []Install) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ins := range installs {
		if ins.Ref {
			continue
		}
		m.bDj.Set(ins.Slot)
		for _, e := range m.ht {
			e.BV.Set(ins.Slot)
		}
	}
	for _, ins := range installs {
		if !ins.Ref {
			continue
		}
		m.refs++
		for _, row := range ins.Rows {
			key := row[ins.KeyCol]
			e, ok := m.ht[key]
			if !ok {
				e = &MapEntry{Row: row, BV: m.bDj.Clone()}
				m.ht[key] = e
			}
			e.BV.Set(ins.Slot)
		}
	}
}

func (m *MapStore) Remove(slot int, referenced bool) (emptied bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bDj.Clear(slot)
	if referenced {
		m.refs--
	}
	for key, e := range m.ht {
		e.BV.Clear(slot)
		if e.BV.AndNotIsZero(m.bDj) {
			delete(m.ht, key)
		}
	}
	return len(m.ht) == 0 && m.refs == 0
}

func (m *MapStore) ForEach(fn func(key int64, row []int64, bv bitvec.Vec) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for key, e := range m.ht {
		if !fn(key, e.Row, e.BV) {
			return
		}
	}
}

func (m *MapStore) ForceRefs(n int) {
	m.mu.Lock()
	m.refs = n
	m.mu.Unlock()
}
