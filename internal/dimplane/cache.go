package dimplane

import (
	"sync"

	"cjoin/internal/storage"
)

// DefaultPredCacheSize bounds the predicate-scan cache when
// Config.PredCacheSize is zero. A dashboard fleet reuses a handful of
// predicate templates per dimension; 128 distinct (dimension,
// fingerprint) pairs is generous for that shape while bounding worst-
// case retention to 128 row sets.
const DefaultPredCacheSize = 128

// predCache memoizes dimension predicate-scan results across
// admissions, keyed by (dimension, canonical predicate fingerprint).
// The cached value is the exact slice SelectRows would have returned:
// copies of the selected heap rows, immutable once filled, so hits can
// be shared by any number of concurrent admissions and by the stores
// themselves.
//
// Correctness: a hit is only valid if the dimension heap is unchanged
// since the fill. Two guards enforce that — an epoch counter bumped by
// the plane on any event that could invalidate results wholesale
// (prober Detach during quarantine, explicit InvalidateAll around
// dimension updates), and the heap's (pages, rows) geometry captured at
// fill time, which catches appends that grew the heap between fill and
// lookup. Retire GC epochs touch only the *store* (bit clearing,
// entry GC), never the dimension heap the scan reads, so slot churn
// does not invalidate; Detach still does, per the plane's conservative
// contract with the supervision tier.
type predCache struct {
	mu      sync.Mutex
	cap     int
	epoch   uint64
	entries map[cacheKey]*cacheEntry
	fifo    []cacheKey // insertion order, for bounded eviction

	hits   int64
	misses int64
}

type cacheKey struct {
	dim int
	fp  uint64
}

type cacheEntry struct {
	rows  [][]int64
	epoch uint64
	pages int
	nrows int64
}

func newPredCache(capacity int) *predCache {
	if capacity == 0 {
		capacity = DefaultPredCacheSize
	}
	if capacity < 0 {
		return nil // disabled; nil receiver no-ops below
	}
	return &predCache{cap: capacity, entries: make(map[cacheKey]*cacheEntry)}
}

// lookup returns the memoized scan result for (dim, fp) if it is still
// valid against the heap's current geometry and the cache epoch.
func (c *predCache) lookup(dim int, fp uint64, heap *storage.HeapFile) ([][]int64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[cacheKey{dim, fp}]
	if !ok || e.epoch != c.epoch || e.nrows != heap.NumRows() || e.pages != heap.NumPages() {
		if ok {
			// Stale under the current epoch/geometry: drop it now so the
			// map doesn't accumulate dead generations.
			c.deleteLocked(cacheKey{dim, fp})
		}
		c.misses++
		return nil, false
	}
	c.hits++
	return e.rows, true
}

// store memoizes a freshly scanned result. The caller must not mutate
// rows after handing them over.
func (c *predCache) store(dim int, fp uint64, rows [][]int64, heap *storage.HeapFile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{dim, fp}
	if _, ok := c.entries[k]; !ok {
		for len(c.fifo) >= c.cap {
			c.deleteLocked(c.fifo[0])
		}
		c.fifo = append(c.fifo, k)
	}
	c.entries[k] = &cacheEntry{rows: rows, epoch: c.epoch, pages: heap.NumPages(), nrows: heap.NumRows()}
}

func (c *predCache) deleteLocked(k cacheKey) {
	delete(c.entries, k)
	for i, fk := range c.fifo {
		if fk == k {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
}

// invalidateAll bumps the epoch: every cached entry becomes stale at
// its next lookup. O(1); stale entries are reaped lazily.
func (c *predCache) invalidateAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.epoch++
	c.mu.Unlock()
}

// counters returns the lifetime hit/miss totals.
func (c *predCache) counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// len returns the number of resident entries (tests).
func (c *predCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
