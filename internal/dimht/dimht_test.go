package dimht

import (
	"math/rand"
	"runtime"
	"testing"

	"cjoin/internal/bitvec"
)

// row builds the two-column dimension row (k, 10k) used throughout.
func row(k int64) []int64 { return []int64{k, 10 * k} }

func TestUpsertLookupRoundTrip(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		b.AddRef()
		for k := int64(0); k < 100; k++ {
			b.Upsert(k, row(k)).Set(3)
		}
	})
	s := tab.Load()
	if s.Len() != 100 || s.Refs() != 1 {
		t.Fatalf("len=%d refs=%d", s.Len(), s.Refs())
	}
	for k := int64(0); k < 100; k++ {
		slot := s.Lookup(k)
		if slot < 0 {
			t.Fatalf("key %d missing", k)
		}
		if got := s.Row(slot); got[0] != k || got[1] != 10*k {
			t.Fatalf("key %d row %v", k, got)
		}
		if !s.Bits(slot).Get(3) || s.Word(slot) != 1<<3 {
			t.Fatalf("key %d bits %v", k, s.Bits(slot))
		}
	}
	if s.Lookup(1000) >= 0 {
		t.Fatal("absent key found")
	}
}

// TestCollisionChain forces several keys into one bucket of a minimal
// table and checks linear-probe resolution, including a miss that walks
// the full chain.
func TestCollisionChain(t *testing.T) {
	tab := New(1, 2)
	mask := uint64(minCapacity - 1)

	// Collect 5 keys hashing to bucket 0 of an 8-slot table, plus one
	// absent key in the same bucket.
	var colliding []int64
	var absent int64 = -1
	for k := int64(0); absent < 0; k++ {
		if hash(k)&mask == 0 {
			if len(colliding) < 5 {
				colliding = append(colliding, k)
			} else {
				absent = k
			}
		}
	}
	tab.Update(func(b *Builder) {
		for _, k := range colliding {
			b.Upsert(k, row(k)).Set(0)
		}
	})
	s := tab.Load()
	if len(s.keys) != minCapacity {
		t.Fatalf("table grew to %d slots; collision test needs %d", len(s.keys), minCapacity)
	}
	for _, k := range colliding {
		slot := s.Lookup(k)
		if slot < 0 || s.Row(slot)[0] != k {
			t.Fatalf("colliding key %d not found", k)
		}
	}
	if s.Lookup(absent) >= 0 {
		t.Fatalf("absent colliding key %d found", absent)
	}
}

func TestGrowthRehash(t *testing.T) {
	tab := New(2, 2)
	const n = 10000
	keys := rand.New(rand.NewSource(7)).Perm(n)
	// Insert across several publications so growth happens both inside
	// one builder and across builder copies.
	for chunk := 0; chunk < n; chunk += 1000 {
		tab.Update(func(b *Builder) {
			for _, k := range keys[chunk : chunk+1000] {
				b.Upsert(int64(k), row(int64(k))).Set(k % 128)
			}
		})
	}
	s := tab.Load()
	if s.Len() != n {
		t.Fatalf("len %d want %d", s.Len(), n)
	}
	if len(s.keys)&(len(s.keys)-1) != 0 {
		t.Fatalf("capacity %d not a power of two", len(s.keys))
	}
	for _, k := range keys {
		slot := s.Lookup(int64(k))
		if slot < 0 {
			t.Fatalf("key %d lost in growth", k)
		}
		if got := s.Row(slot); got[1] != 10*int64(k) {
			t.Fatalf("key %d row %v after rehash", k, got)
		}
		if !s.Bits(slot).Get(k % 128) {
			t.Fatalf("key %d bits lost", k)
		}
	}
}

// TestUpsertExistingNoGrowth pins the write-path behavior that an upsert
// of an already-stored key never grows the table: at full permitted load
// the capacity check would otherwise fire spuriously and rehash
// everything without adding an entry.
func TestUpsertExistingNoGrowth(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		for k := int64(0); k < minCapacity*maxLoadNum/maxLoadDen; k++ { // exactly full load
			b.Upsert(k, row(k)).Set(0)
		}
	})
	if got := len(tab.Load().keys); got != minCapacity {
		t.Fatalf("setup grew to %d slots", got)
	}
	tab.Update(func(b *Builder) {
		b.Upsert(0, row(0)).Set(1) // existing key
	})
	s := tab.Load()
	if got := len(s.keys); got != minCapacity {
		t.Fatalf("existing-key upsert grew the table to %d slots", got)
	}
	if !s.Bits(s.Lookup(0)).Get(1) {
		t.Fatal("existing-key upsert lost the new bit")
	}
}

// TestSentinelKey exercises a stored key equal to the internal empty
// sentinel, which lives in the overflow slot.
func TestSentinelKey(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		b.Upsert(emptyKey, row(0)).Set(1)
		b.Upsert(42, row(42)).Set(1)
	})
	s := tab.Load()
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	slot := s.Lookup(emptyKey)
	if slot < 0 || !s.Bits(slot).Get(1) {
		t.Fatal("sentinel key lost")
	}
	seen := 0
	s.ForEach(func(key int64, _ []int64, _ bitvec.Vec) bool {
		seen++
		return true
	})
	if seen != 2 {
		t.Fatalf("ForEach visited %d entries", seen)
	}
	// SetBitAll / ClearBitAll must reach the overflow slot.
	tab.Update(func(b *Builder) { b.SetBitAll(5) })
	if !tab.Load().Bits(tab.Load().Lookup(emptyKey)).Get(5) {
		t.Fatal("SetBitAll missed the sentinel slot")
	}
	// GC must be able to drop it.
	tab.Update(func(b *Builder) {
		b.Retain(func(bv bitvec.Vec) bool { return false })
	})
	if s := tab.Load(); s.Len() != 0 || s.Lookup(emptyKey) >= 0 {
		t.Fatal("Retain left the sentinel slot behind")
	}
}

func TestSetClearBitAll(t *testing.T) {
	tab := New(2, 2)
	tab.Update(func(b *Builder) {
		for k := int64(0); k < 50; k++ {
			b.Upsert(k, row(k))
		}
		b.SetBitAll(100)
	})
	tab.Load().ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if !bv.Get(100) {
			t.Fatalf("key %d missing broadcast bit", key)
		}
		return true
	})
	tab.Update(func(b *Builder) { b.ClearBitAll(100) })
	tab.Load().ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if bv.Get(100) {
			t.Fatalf("key %d kept cleared bit", key)
		}
		return true
	})
}

// TestUpsertInitializesFromMask checks the §3.2.1 invariant: a fresh
// entry starts transparent to every active non-referencing query.
func TestUpsertInitializesFromMask(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		b.SetMaskBit(2)
		b.SetMaskBit(7)
		b.Upsert(9, row(9)).Set(0)
	})
	s := tab.Load()
	bv := s.Bits(s.Lookup(9))
	if !bv.Get(0) || !bv.Get(2) || !bv.Get(7) || bv.Count() != 3 {
		t.Fatalf("new entry bits %v", bv)
	}
	if !s.Mask().Get(2) || s.MaskWord() != (1<<2|1<<7) {
		t.Fatalf("mask %v", s.Mask())
	}
}

// TestRetainGC mirrors dimState.remove: clear a query's bit everywhere,
// then drop entries no remaining referencing query selects.
func TestRetainGC(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		b.AddRef()
		for k := int64(0); k < 40; k++ {
			b.Upsert(k, row(k)).Set(0)
		}
		b.AddRef()
		for k := int64(0); k < 10; k++ {
			b.Upsert(k, row(k)).Set(1)
		}
	})
	tab.Update(func(b *Builder) {
		b.DropRef()
		b.ClearBitAll(0)
		mask := b.Mask()
		b.Retain(func(bv bitvec.Vec) bool { return !bv.AndNotIsZero(mask) })
	})
	s := tab.Load()
	if s.Len() != 10 {
		t.Fatalf("GC left %d entries, want 10", s.Len())
	}
	for k := int64(0); k < 40; k++ {
		found := s.Lookup(k) >= 0
		if found != (k < 10) {
			t.Fatalf("key %d present=%v after GC", k, found)
		}
	}
	// The row arena must have been compacted to the survivors.
	if len(s.rows) != 10*s.ncols {
		t.Fatalf("row arena %d values, want %d", len(s.rows), 10*s.ncols)
	}
}

// TestSnapshotImmutable verifies copy-on-write isolation: a held snapshot
// (and rows sliced out of it) never changes under later updates.
func TestSnapshotImmutable(t *testing.T) {
	tab := New(1, 2)
	tab.Update(func(b *Builder) {
		for k := int64(0); k < 20; k++ {
			b.Upsert(k, row(k)).Set(0)
		}
	})
	old := tab.Load()
	oldSlot := old.Lookup(7)
	oldRow := old.Row(oldSlot)
	oldWord := old.Word(oldSlot)

	tab.Update(func(b *Builder) {
		b.SetMaskBit(3)
		b.SetBitAll(3)
		b.Upsert(100, row(100)).Set(5)
	})
	tab.Update(func(b *Builder) {
		b.Retain(func(bv bitvec.Vec) bool { return false })
	})

	if old.Len() != 20 || old.Lookup(100) >= 0 {
		t.Fatal("held snapshot saw later insert")
	}
	if old.Word(oldSlot) != oldWord || old.Word(oldSlot) != 1 {
		t.Fatal("held snapshot bits changed")
	}
	if oldRow[0] != 7 || oldRow[1] != 70 {
		t.Fatal("row slice out of held snapshot changed")
	}
	if old.Mask().Get(3) {
		t.Fatal("held snapshot mask changed")
	}
	if tab.Load().Len() != 0 {
		t.Fatal("final snapshot should be empty")
	}
}

// TestConcurrentReadersWriters is the package-level lock-free smoke test:
// readers probe continuously while a writer churns entries. Run with
// -race to verify publication safety.
func TestConcurrentReadersWriters(t *testing.T) {
	tab := New(1, 2)
	stop := make(chan struct{})
	done := make(chan struct{})
	const readers = 4
	for r := 0; r < readers; r++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := tab.Load()
				for k := int64(0); k < 64; k++ {
					if slot := s.Lookup(k); slot >= 0 {
						if got := s.Row(slot); got[0] != k {
							panic("torn row read")
						}
						_ = s.Word(slot)
					}
				}
				runtime.Gosched() // keep single-CPU runs fair to the writer
			}
		}()
	}
	for i := 0; i < 100; i++ {
		tab.Update(func(b *Builder) {
			for k := int64(0); k < 64; k++ {
				b.Upsert(k, row(k)).Set(i % 64)
			}
		})
		tab.Update(func(b *Builder) {
			b.ClearBitAll(i % 64)
			b.Retain(func(bv bitvec.Vec) bool { return !bv.IsZero() })
		})
	}
	close(stop)
	for r := 0; r < readers; r++ {
		<-done
	}
}

// TestSetBitsAll checks the multi-slot broadcast sweep against the
// equivalent sequence of single-bit broadcasts, in both the one-word
// fast path and the multi-word layout, plus the empty-mask no-op.
func TestSetBitsAll(t *testing.T) {
	for _, words := range []int{1, 3} {
		tab := New(words, 2)
		tab.Update(func(b *Builder) {
			for k := int64(0); k < 40; k++ {
				b.Upsert(k, row(k))
			}
		})
		mask := bitvec.New(words * 64)
		mask.Set(0)
		mask.Set(5)
		if words > 1 {
			mask.Set(64 + 7)
			mask.Set(words*64 - 1)
		}
		before := tab.Load()
		tab.Update(func(b *Builder) { b.SetBitsAll(mask) })
		tab.Load().ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			for i := 0; i < words*64; i++ {
				if bv.Get(i) != mask.Get(i) {
					t.Fatalf("words=%d key %d bit %d = %v, want %v", words, key, i, bv.Get(i), mask.Get(i))
				}
			}
			return true
		})
		// The pre-sweep snapshot is immutable: COW must not have leaked
		// writes into it.
		before.ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			if bv.Count() != 0 {
				t.Fatalf("words=%d: snapshot taken before sweep mutated (key %d)", words, key)
			}
			return true
		})
		// Empty mask: no privatization, no change.
		tab.Update(func(b *Builder) { b.SetBitsAll(bitvec.New(words * 64)) })
		tab.Load().ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
			for i := 0; i < words*64; i++ {
				if bv.Get(i) != mask.Get(i) {
					t.Fatalf("words=%d: empty-mask sweep changed key %d", words, key)
				}
			}
			return true
		})
	}
}
