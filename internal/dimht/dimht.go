// Package dimht implements the specialized dimension hash table behind
// the CJOIN Filter stage.
//
// The paper stresses that the Filter hot loop — one hash probe and one
// bitwise AND per fact tuple per dimension (§3.2.2) — must run at memory
// speed, and that the implementation uses "specialized data structures"
// tuned for a read-mostly access pattern (§4). A Go map of pointers to
// heap-allocated entries costs three dependent cache misses per probe
// (bucket, entry, bit-vector) plus read-lock traffic on every batch.
//
// This package replaces it with an open-addressing table designed around
// that access pattern:
//
//   - power-of-two capacity with linear probing over a flat key array,
//     so a probe touches one cache line in the common case;
//   - per-entry query bit-vectors stored inline in a single flat arena
//     ([capacity][words]uint64), addressed by slot index — no per-entry
//     pointer, no per-entry allocation;
//   - dimension rows stored in a flat row arena, addressed by a row
//     offset per slot, so the Distributor reads attributes without
//     chasing an entry pointer;
//   - copy-on-write snapshots published through an atomic.Pointer:
//     Filters probe the current Snapshot entirely lock-free while the
//     Pipeline Manager builds the next Snapshot off to the side during
//     query admission (Algorithm 1) and finalization (Algorithm 2).
//
// A Snapshot is immutable after publication. Readers that obtained a
// Snapshot (or a row slice out of one) may keep using it after newer
// snapshots are published; the garbage collector reclaims it when the
// last reference drops. Writers mutate through Table.Update, which
// serializes concurrent updaters internally.
//
// The Snapshot also carries the dimension's complement bitmap b_Dj (bit i
// set iff active query i does not reference the dimension, §3.2.1) and
// its reference count, so one atomic load gives the Filter a mutually
// consistent view of the table, the probe-skip mask, and the activity
// flag.
package dimht

import (
	"math"
	"sync"
	"sync/atomic"

	"cjoin/internal/bitvec"
)

// emptyKey marks a free slot in the key array. Real keys equal to the
// sentinel are stored in a dedicated overflow slot (see Snapshot.sent).
const emptyKey = math.MinInt64

// minCapacity keeps every snapshot probeable without an emptiness check
// in the hot loop: the key array always has free slots to terminate a
// linear probe.
const minCapacity = 8

// maxLoadNum/maxLoadDen bound the load factor at 7/8 before growth.
// Linear probing degrades sharply past full; 7/8 keeps probe chains short
// while wasting little arena space.
const (
	maxLoadNum = 7
	maxLoadDen = 8
)

// hash is the 64-bit finalizer of splitmix64 — a full-avalanche mixer, so
// dense integer keys (the common case for dimension surrogate keys)
// spread uniformly over the power-of-two capacity.
func hash(k int64) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Snapshot is one immutable version of the table. Slot numbers returned
// by Lookup index the bits and offs arenas; slot len(keys) is the
// overflow slot for a key equal to the empty sentinel.
type Snapshot struct {
	keys []int64  // capacity slots; emptyKey = free
	offs []int32  // capacity+1 row offsets (last: sentinel overflow)
	bits []uint64 // (capacity+1)*words inline bit-vectors
	rows []int64  // count*ncols flat row arena

	mask  uint64 // capacity - 1
	words int    // bit-vector width in 64-bit words
	ncols int    // dimension row width
	count int    // occupied slots (including the overflow slot)
	sent  bool   // overflow slot occupied (a stored key == emptyKey)

	// CJOIN per-dimension state published atomically with the table.
	refs int        // active queries referencing the dimension
	bDj  bitvec.Vec // complement bitmap b_Dj (§3.2.1)
}

func newSnapshot(capacity, words, ncols int) *Snapshot {
	s := &Snapshot{
		keys:  make([]int64, capacity),
		offs:  make([]int32, capacity+1),
		bits:  make([]uint64, (capacity+1)*words),
		mask:  uint64(capacity - 1),
		words: words,
		ncols: ncols,
		bDj:   make(bitvec.Vec, words),
	}
	for i := range s.keys {
		s.keys[i] = emptyKey
	}
	return s
}

// Len returns the number of stored entries.
func (s *Snapshot) Len() int { return s.count }

// MemBytes returns the resident size of this snapshot's arenas (keys,
// row offsets, inline bit-vectors, row payload, and b_Dj).
func (s *Snapshot) MemBytes() int64 {
	return int64(len(s.keys))*8 + int64(len(s.offs))*4 +
		int64(len(s.bits))*8 + int64(len(s.rows))*8 + int64(len(s.bDj))*8
}

// Words returns the bit-vector width in 64-bit words.
func (s *Snapshot) Words() int { return s.words }

// Refs returns the number of active queries referencing the dimension as
// of this snapshot.
func (s *Snapshot) Refs() int { return s.refs }

// Mask returns the complement bitmap b_Dj as of this snapshot. The
// returned vector aliases the snapshot and must not be modified.
func (s *Snapshot) Mask() bitvec.Vec { return s.bDj }

// MaskWord returns the first word of b_Dj — the whole bitmap on the
// single-word fast path (maxConc <= 64).
func (s *Snapshot) MaskWord() uint64 { return s.bDj[0] }

// Lookup returns the slot holding key, or -1 if the key is absent. The
// probe is wait-free: at most capacity steps, one key-array load each.
func (s *Snapshot) Lookup(key int64) int32 {
	if key == emptyKey {
		if s.sent {
			return int32(len(s.keys))
		}
		return -1
	}
	h := hash(key) & s.mask
	for {
		k := s.keys[h]
		if k == key {
			return int32(h)
		}
		if k == emptyKey {
			return -1
		}
		h = (h + 1) & s.mask
	}
}

// Bits returns the bit-vector of the entry in slot. The returned vector
// aliases the snapshot arena and must not be modified.
func (s *Snapshot) Bits(slot int32) bitvec.Vec {
	i := int(slot) * s.words
	return bitvec.Vec(s.bits[i : i+s.words])
}

// Word returns the entry's bit-vector as a single word — valid only when
// Words() == 1, the register-resident fast path of the Filter hot loop.
func (s *Snapshot) Word(slot int32) uint64 { return s.bits[slot] }

// Row returns the dimension row of the entry in slot as a slice into the
// snapshot's flat row arena. The slice stays valid (and immutable) for
// the life of the snapshot, so it can be attached to in-flight fact
// tuples and read by the Distributor without synchronization.
func (s *Snapshot) Row(slot int32) []int64 {
	off := int(s.offs[slot]) * s.ncols
	return s.rows[off : off+s.ncols : off+s.ncols]
}

// ForEach calls fn for every stored entry until fn returns false. The bv
// argument aliases the snapshot arena and must not be modified.
func (s *Snapshot) ForEach(fn func(key int64, row []int64, bv bitvec.Vec) bool) {
	for i, k := range s.keys {
		if k == emptyKey {
			continue
		}
		if !fn(k, s.Row(int32(i)), s.Bits(int32(i))) {
			return
		}
	}
	if s.sent {
		slot := int32(len(s.keys))
		fn(emptyKey, s.Row(slot), s.Bits(slot))
	}
}

// Table is the mutable handle: an atomically published current Snapshot
// plus a writer lock. Readers call Load and never block; writers call
// Update and serialize among themselves only.
type Table struct {
	mu   sync.Mutex
	snap atomic.Pointer[Snapshot]
}

// New returns an empty table for bit-vectors of the given word width over
// dimension rows of ncols columns.
func New(words, ncols int) *Table {
	if words < 1 {
		words = 1
	}
	t := &Table{}
	t.snap.Store(newSnapshot(minCapacity, words, ncols))
	return t
}

// Load returns the current snapshot. The snapshot is immutable; probing
// it requires no lock.
func (t *Table) Load() *Snapshot { return t.snap.Load() }

// Update runs fn on a mutable copy of the current snapshot and publishes
// the result, returning the new snapshot. Concurrent Updates serialize;
// readers see either the old or the new snapshot, never a partial write.
func (t *Table) Update(fn func(*Builder)) *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := newBuilder(t.snap.Load())
	fn(b)
	s := b.seal()
	t.snap.Store(s)
	return s
}

// Builder is a mutable copy of a snapshot, handed to Table.Update
// callbacks. It is single-use: seal invalidates it.
//
// The copy is lazy: the builder shares the parent snapshot's arrays
// until a mutation needs to write into them (privatize). Row-arena
// appends never privatize — new rows land beyond the parent's slice
// length, where no published snapshot reads — so updates that only flip
// bits (the common admit/remove case) copy just keys/offs/bits, and an
// update that touches nothing copies nothing.
type Builder struct {
	s       *Snapshot // scratch snapshot owned by the builder
	private bool      // keys/offs/bits no longer shared with the parent
	sealed  bool
}

func newBuilder(cur *Snapshot) *Builder {
	cp := *cur
	cp.bDj = cur.bDj.Clone()
	return &Builder{s: &cp}
}

// privatize unshares the in-place-mutable arrays from the parent
// snapshot. Writers that rebuild from scratch (grow, Retain) set private
// directly.
func (b *Builder) privatize() {
	if b.private {
		return
	}
	s := b.s
	s.keys = append([]int64(nil), s.keys...)
	s.offs = append([]int32(nil), s.offs...)
	s.bits = append([]uint64(nil), s.bits...)
	b.private = true
}

func (b *Builder) seal() *Snapshot {
	if b.sealed {
		panic("dimht: builder reused after publication")
	}
	b.sealed = true
	return b.s
}

// Len returns the number of stored entries.
func (b *Builder) Len() int { return b.s.count }

// Refs returns the dimension reference count under construction.
func (b *Builder) Refs() int { return b.s.refs }

// AddRef / DropRef adjust the dimension reference count.
func (b *Builder) AddRef()  { b.s.refs++ }
func (b *Builder) DropRef() { b.s.refs-- }

// SetRefs overwrites the reference count (test plumbing).
func (b *Builder) SetRefs(n int) { b.s.refs = n }

// Mask returns the complement bitmap under construction. Unlike the
// snapshot accessor, the builder's copy may be modified through the
// returned vector.
func (b *Builder) Mask() bitvec.Vec { return b.s.bDj }

// SetMaskBit / ClearMaskBit update bit i of b_Dj.
func (b *Builder) SetMaskBit(i int)   { b.s.bDj.Set(i) }
func (b *Builder) ClearMaskBit(i int) { b.s.bDj.Clear(i) }

// SetBitAll sets bit i in every stored entry's bit-vector — the §3.2.1
// update for an admitted query that does not reference this dimension.
// The sweep blasts the bit through the whole arena (free slots included;
// their vectors are unreachable garbage), which the compiler turns into a
// branch-free strided loop.
func (b *Builder) SetBitAll(i int) {
	b.privatize()
	w, m := i/64, uint64(1)<<(uint(i)%64)
	for j := w; j < len(b.s.bits); j += b.s.words {
		b.s.bits[j] |= m
	}
}

// SetBitsAll ORs every set bit of mask into every stored entry's
// bit-vector in a single arena pass — the batched form of SetBitAll for
// K admitted queries that do not reference this dimension. One sweep
// installs all K tags where the per-query path would sweep K times.
// mask must be Words() words wide; an all-zero mask is a no-op.
func (b *Builder) SetBitsAll(mask bitvec.Vec) {
	any := false
	for _, w := range mask {
		if w != 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.privatize()
	if b.s.words == 1 {
		m := mask[0]
		for j := range b.s.bits {
			b.s.bits[j] |= m
		}
		return
	}
	w := b.s.words
	for j := 0; j < len(b.s.bits); j += w {
		for k := 0; k < w; k++ {
			b.s.bits[j+k] |= mask[k]
		}
	}
}

// ClearBitAll clears bit i in every stored entry's bit-vector (Algorithm
// 2, query finalization).
func (b *Builder) ClearBitAll(i int) {
	b.privatize()
	w, m := i/64, uint64(1)<<(uint(i)%64)
	for j := w; j < len(b.s.bits); j += b.s.words {
		b.s.bits[j] &^= m
	}
}

// Upsert inserts key with the given row if absent, initializing the new
// entry's bit-vector to the current b_Dj (a fresh entry is transparent to
// every active non-referencing query, §3.2.1). It returns the entry's
// bit-vector for the caller to set the admitting query's bit. The row is
// copied into the arena on insert and ignored when the key exists.
func (b *Builder) Upsert(key int64, row []int64) bitvec.Vec {
	s := b.s
	if key == emptyKey {
		b.privatize()
		s = b.s
		slot := int32(len(s.keys))
		if !s.sent {
			s.sent = true
			s.count++
			s.offs[slot] = b.appendRow(row)
			copy(s.bits[int(slot)*s.words:(int(slot)+1)*s.words], s.bDj)
		}
		return s.Bits(slot)
	}
	// Probe before deciding anything: an upsert of an existing key must
	// not grow the table, and a growing insert should rehash straight
	// from the shared parent arrays instead of privatizing copies that
	// grow would immediately discard. The returned vector is mutated by
	// the caller, so both outcomes privatize (grow counts: it builds
	// fresh arrays).
	h := hash(key) & s.mask
	for s.keys[h] != emptyKey {
		if s.keys[h] == key {
			b.privatize()
			return b.s.Bits(int32(h))
		}
		h = (h + 1) & s.mask
	}
	if (s.count+1)*maxLoadDen > len(s.keys)*maxLoadNum {
		b.grow(2 * len(s.keys))
		s = b.s
		h = hash(key) & s.mask
		for s.keys[h] != emptyKey {
			h = (h + 1) & s.mask
		}
	} else {
		b.privatize()
		s = b.s
	}
	s.keys[h] = key
	s.count++
	s.offs[h] = b.appendRow(row)
	copy(s.bits[int(h)*s.words:(int(h)+1)*s.words], s.bDj)
	return s.Bits(int32(h))
}

func (b *Builder) appendRow(row []int64) int32 {
	off := int32(len(b.s.rows) / b.s.ncols)
	b.s.rows = append(b.s.rows, row...)
	return off
}

// grow rehashes into a key array of newCap slots. Row offsets are stable
// across growth (the row arena is untouched), so only keys, offs, and
// bits move.
func (b *Builder) grow(newCap int) {
	old := b.s
	ns := &Snapshot{
		keys:  make([]int64, newCap),
		offs:  make([]int32, newCap+1),
		bits:  make([]uint64, (newCap+1)*old.words),
		rows:  old.rows,
		mask:  uint64(newCap - 1),
		words: old.words,
		ncols: old.ncols,
		count: old.count,
		sent:  old.sent,
		refs:  old.refs,
		bDj:   old.bDj,
	}
	for i := range ns.keys {
		ns.keys[i] = emptyKey
	}
	for i, k := range old.keys {
		if k == emptyKey {
			continue
		}
		h := hash(k) & ns.mask
		for ns.keys[h] != emptyKey {
			h = (h + 1) & ns.mask
		}
		ns.keys[h] = k
		ns.offs[h] = old.offs[i]
		copy(ns.bits[int(h)*ns.words:(int(h)+1)*ns.words], old.Bits(int32(i)))
	}
	if old.sent {
		os, nslot := int32(len(old.keys)), int32(newCap)
		ns.offs[nslot] = old.offs[os]
		copy(ns.bits[int(nslot)*ns.words:(int(nslot)+1)*ns.words], old.Bits(os))
	}
	b.s = ns
	b.private = true
}

// Retain garbage-collects: it rebuilds the table keeping only entries for
// which keep returns true, compacting the row arena (Algorithm 2's
// removal of dimension tuples selected by no remaining query). Open
// addressing cannot delete in place without tombstones; since removal
// runs off the hot path, a compacting rebuild is both simpler and leaves
// the next snapshot at an ideal load factor.
func (b *Builder) Retain(keep func(bv bitvec.Vec) bool) {
	old := b.s
	live := 0
	oldSlots := make([]int32, 0, old.count)
	for i, k := range old.keys {
		if k == emptyKey {
			continue
		}
		if keep(old.Bits(int32(i))) {
			oldSlots = append(oldSlots, int32(i))
			live++
		}
	}
	keepSent := old.sent && keep(old.Bits(int32(len(old.keys))))
	if keepSent {
		live++
	}
	if live == old.count {
		return // nothing dead: keep the table as is
	}

	capacity := minCapacity
	for capacity*maxLoadNum < live*maxLoadDen {
		capacity *= 2
	}
	ns := newSnapshot(capacity, old.words, old.ncols)
	ns.refs = old.refs
	ns.bDj = old.bDj
	ns.rows = make([]int64, 0, live*old.ncols)
	for _, slot := range oldSlots {
		k := old.keys[slot]
		h := hash(k) & ns.mask
		for ns.keys[h] != emptyKey {
			h = (h + 1) & ns.mask
		}
		ns.keys[h] = k
		ns.count++
		off := int32(len(ns.rows) / ns.ncols)
		ns.rows = append(ns.rows, old.Row(slot)...)
		ns.offs[h] = off
		copy(ns.bits[int(h)*ns.words:(int(h)+1)*ns.words], old.Bits(slot))
	}
	if keepSent {
		os, nslot := int32(len(old.keys)), int32(capacity)
		ns.sent = true
		ns.count++
		off := int32(len(ns.rows) / ns.ncols)
		ns.rows = append(ns.rows, old.Row(os)...)
		ns.offs[nslot] = off
		copy(ns.bits[int(nslot)*ns.words:(int(nslot)+1)*ns.words], old.Bits(os))
	}
	b.s = ns
	b.private = true
}
