package obs

import (
	"testing"
	"time"
)

// The hot-path instrumentation cost, precisely: these bound what one
// counter bump or histogram observation adds to a pipeline stage,
// independent of the end-to-end noise floor of the obsoverhead
// experiment (see PERFORMANCE.md).

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("b_ctr", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("b_ctr", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.DurationHistogram("b_lat", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3000)
	}
}

func BenchmarkHistogramObserveSince(b *testing.B) {
	r := NewRegistry()
	h := r.DurationHistogram("b_lat", "bench")
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

// The disabled plane: every site degrades to a nil-receiver method call.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3000)
	}
}
