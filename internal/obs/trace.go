package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage names for the query lifecycle timeline, in pipeline order. A
// query's trace collects (stage, offset) marks as it moves through the
// serving tier:
//
//	enqueued       — accepted into the admission queue
//	admitted       — dimension plane admit finished, bit assigned
//	first_page     — first fact page carrying the query's bit processed
//	cycle_complete — the query's scan window closed (last shard wins)
//	delivered      — results handed to the waiting client
const (
	StageEnqueued      = "enqueued"
	StageAdmitted      = "admitted"
	StageFirstPage     = "first_page"
	StageCycleComplete = "cycle_complete"
	StageDelivered     = "delivered"
)

// StageMark is one recorded lifecycle event: the stage name and its
// monotonic offset from the trace's start.
type StageMark struct {
	Stage string
	At    time.Duration
}

// Trace is one query's lifecycle timeline. It is carried on
// query.Bound through admission, the dimension plane, and every shard
// pipeline; concurrent marks from shard goroutines are safe. A nil
// *Trace no-ops every method, so untraced paths (harness, in-process
// embedding) pay one nil check.
type Trace struct {
	id      string
	started time.Time

	mu    sync.Mutex
	marks []StageMark
}

// ID is the query id the trace was started under.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// StartedAt is the wall-clock instant the trace began (offsets are
// measured against its monotonic reading).
func (t *Trace) StartedAt() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.started
}

// Mark records stage at the current offset; first mark wins. Use for
// stages where the earliest occurrence is the event (first_page on a
// sharded group: the first shard to touch a page defines it).
func (t *Trace) Mark(stage string) {
	if t == nil {
		return
	}
	at := time.Since(t.started)
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.marks {
		if t.marks[i].Stage == stage {
			return
		}
	}
	t.marks = append(t.marks, StageMark{Stage: stage, At: at})
}

// MarkLatest records stage at the current offset; the last mark wins.
// Use for stages where the slowest occurrence is the event
// (cycle_complete on a sharded group: the query isn't done until its
// last shard is).
func (t *Trace) MarkLatest(stage string) {
	if t == nil {
		return
	}
	at := time.Since(t.started)
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.marks {
		if t.marks[i].Stage == stage {
			t.marks[i].At = at
			return
		}
	}
	t.marks = append(t.marks, StageMark{Stage: stage, At: at})
}

// Has reports whether stage has been marked.
func (t *Trace) Has(stage string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.marks {
		if t.marks[i].Stage == stage {
			return true
		}
	}
	return false
}

// Stages returns a copy of the recorded marks sorted by offset.
func (t *Trace) Stages() []StageMark {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]StageMark(nil), t.marks...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Tracer owns a bounded id → *Trace map with FIFO eviction, mirroring
// the server's bounded query registry: old traces age out, the map
// cannot grow without limit. A nil *Tracer disables tracing (Start and
// Get return nil).
type Tracer struct {
	mu    sync.Mutex
	max   int
	m     map[string]*Trace
	order []string
}

// NewTracer builds a tracer retaining at most max traces (default 1024
// when max <= 0).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 1024
	}
	return &Tracer{max: max, m: make(map[string]*Trace)}
}

// Start begins a trace for id, evicting the oldest trace past the
// retention bound. Restarting an id replaces its trace.
func (tr *Tracer) Start(id string) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{id: id, started: time.Now()}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.m[id]; !ok {
		tr.order = append(tr.order, id)
	}
	tr.m[id] = t
	for len(tr.order) > tr.max {
		delete(tr.m, tr.order[0])
		tr.order = tr.order[1:]
	}
	return t
}

// Get returns the trace for id, nil if unknown or evicted.
func (tr *Tracer) Get(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.m[id]
}

// Drop forgets id's trace (a submission that was rejected before it
// ever entered the queue leaves no timeline behind).
func (tr *Tracer) Drop(id string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.m[id]; !ok {
		return
	}
	delete(tr.m, id)
	for i, v := range tr.order {
		if v == id {
			tr.order = append(tr.order[:i], tr.order[i+1:]...)
			break
		}
	}
}
