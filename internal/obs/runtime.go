package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics adds Go runtime gauges (goroutines, heap, GC)
// to the registry, for the cjoind -pprof profile where operators want
// process health next to pipeline metrics. MemStats reads are cached
// for a second so a scrape hitting several gauges pays one
// ReadMemStats, not four.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	var (
		mu   sync.Mutex
		at   time.Time
		ms   runtime.MemStats
		read = func() *runtime.MemStats {
			mu.Lock()
			defer mu.Unlock()
			if time.Since(at) > time.Second {
				runtime.ReadMemStats(&ms)
				at = time.Now()
			}
			return &ms
		}
	)
	r.GaugeFunc("cjoin_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("cjoin_go_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 { return float64(read().HeapAlloc) })
	r.GaugeFunc("cjoin_go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS.",
		func() float64 { return float64(read().HeapSys) })
	r.GaugeFunc("cjoin_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(read().PauseTotalNs) / 1e9 })
	r.GaugeFunc("cjoin_go_gc_runs_total",
		"Completed GC cycles.",
		func() float64 { return float64(read().NumGC) })
}
