// Package obs is the pipeline's telemetry plane: a dependency-free
// metrics core (atomic counters, gauges, and fixed-bucket histograms
// with lock-free Observe) plus a per-query lifecycle tracer
// (trace.go). The hot path never allocates: every metric is a
// pre-resolved handle doing one or two atomic adds, and a nil handle
// (the result of constructing against a nil *Registry) makes every
// method a no-op — so "instrumentation disabled" is a single nil
// registry, not a build tag or a branch per call site.
//
// Exposition is hand-rolled Prometheus text format (WritePrometheus)
// plus a flat Snapshot map for in-process delta scraping by tests and
// the harness.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families keyed by name. Registration is
// idempotent: asking for an existing family with a compatible shape
// returns the same underlying series, which is how N shard pipelines
// share one family and differentiate by label. A nil *Registry is the
// disabled plane — every constructor returns nil handles whose methods
// no-op.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

type family struct {
	name   string
	help   string
	typ    string
	labels []string
	// histogram shape, shared by every series in the family
	bounds []int64
	scale  float64

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	vals []string
	c    *Counter
	g    *Gauge
	fn   func() float64
	h    *Histogram
}

// seriesKey joins label values with a separator that cannot occur in
// reasonable label values.
func seriesKey(vals []string) string { return strings.Join(vals, "\x1f") }

func (r *Registry) fam(name, help, typ string, labels []string, bounds []int64, scale float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: conflicting registration of %q: %s%v vs %s%v",
				name, f.typ, f.labels, typ, labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: bounds, scale: scale,
		series: make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := seriesKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{vals: append([]string(nil), vals...)}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = newHistogram(f.bounds, f.scale)
	}
	f.series[key] = s
	return s
}

// --- scalar metrics -------------------------------------------------

// Counter is a monotonically increasing value. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (callers must keep it non-negative).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count; 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Counter registers (or reuses) an unlabeled counter family.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.fam(name, help, typeCounter, nil, nil, 0).get(nil).c
}

// Gauge registers (or reuses) an unlabeled gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.fam(name, help, typeGauge, nil, nil, 0).get(nil).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	s := r.fam(name, help, typeGauge, nil, nil, 0).get(nil)
	s.fn = fn
}

// --- histograms -----------------------------------------------------

// Histogram is a fixed-bucket histogram over int64 observations
// (typically nanoseconds, or raw sizes). Observe is lock-free: a
// binary search over the immutable bounds plus three atomic adds.
// Snapshots taken concurrently with writers are not a consistent cut
// (count/sum/buckets may each lag by an in-flight observation), which
// is the standard Prometheus trade and fine for monitoring. Nil-safe.
type Histogram struct {
	bounds []int64 // upper bounds, ascending; implicit +Inf last
	scale  float64 // multiplier applied at export (1e-9: nanos → seconds)
	counts []atomic.Int64
	sum    atomic.Int64
	cnt    atomic.Int64
}

func newHistogram(bounds []int64, scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	return &Histogram{
		bounds: bounds,
		scale:  scale,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.cnt.Add(1)
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Nanoseconds())
	}
}

// Count is the number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.cnt.Load()
}

// Sum is the scaled sum of observations (seconds for duration
// histograms); 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sum.Load()) * h.scale
}

// Histogram registers (or reuses) an unlabeled histogram family with
// the given upper bounds (native units) and export scale.
func (r *Registry) Histogram(name, help string, bounds []int64, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.fam(name, help, typeHistogram, nil, bounds, scale).get(nil).h
}

// DurationHistogram is Histogram with the default latency bounds,
// observed in nanoseconds and exported in seconds.
func (r *Registry) DurationHistogram(name, help string) *Histogram {
	return r.Histogram(name, help, DurationBuckets(), 1e-9)
}

// DurationBuckets are the default latency bounds in nanoseconds:
// 1µs–10s on a 1/2.5/5 decade ladder, fine enough at the bottom to
// resolve the paper's sub-millisecond admission budget.
func DurationBuckets() []int64 {
	var b []int64
	for _, decade := range []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9} {
		b = append(b, decade, decade*5/2, decade*5)
	}
	return append(b, 1e10)
}

// ExpBuckets returns n exponential bounds starting at start with the
// given factor, for size histograms (pages, rows, bytes).
func ExpBuckets(start int64, factor float64, n int) []int64 {
	b := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b = append(b, int64(math.Round(v)))
		v *= factor
	}
	return b
}

// --- labeled vectors ------------------------------------------------

// CounterVec is a counter family with labels; With resolves one
// labeled series to a plain *Counter handle for the hot path.
type CounterVec struct{ f *family }

// With returns the series for the given label values, creating it on
// first use. Nil-safe.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(vals).c
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the labeled gauge. Nil-safe.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(vals).g
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the labeled histogram. Nil-safe.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(vals).h
}

// GaugeFuncVec is a gauge family with labels whose series are
// scrape-time functions.
type GaugeFuncVec struct{ f *family }

// With registers fn as the labeled series' value. Nil-safe.
func (v *GaugeFuncVec) With(fn func() float64, vals ...string) {
	if v == nil {
		return
	}
	v.f.get(vals).fn = fn
}

// CounterVec registers (or reuses) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.fam(name, help, typeCounter, labels, nil, 0)}
}

// GaugeVec registers (or reuses) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.fam(name, help, typeGauge, labels, nil, 0)}
}

// GaugeFuncVec registers (or reuses) a labeled scrape-time gauge family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	if r == nil {
		return nil
	}
	return &GaugeFuncVec{f: r.fam(name, help, typeGauge, labels, nil, 0)}
}

// HistogramVec registers (or reuses) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []int64, scale float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.fam(name, help, typeHistogram, labels, bounds, scale)}
}

// DurationHistogramVec is HistogramVec with the default latency bounds.
func (r *Registry) DurationHistogramVec(name, help string, labels ...string) *HistogramVec {
	return r.HistogramVec(name, help, DurationBuckets(), 1e-9, labels...)
}

// --- exposition -----------------------------------------------------

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): sorted families, # HELP/# TYPE headers,
// escaped label values, cumulative histogram buckets with a +Inf
// bucket plus _sum and _count. Safe to call concurrently with writers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.series[k])
	}
	f.mu.Unlock()
	return out
}

func (f *family) write(b *strings.Builder) {
	ss := f.snapshotSeries()
	if len(ss) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range ss {
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelBlock(f.labels, s.vals, "", ""), s.c.Value())
		case typeGauge:
			if s.fn != nil {
				fmt.Fprintf(b, "%s%s %s\n", f.name, labelBlock(f.labels, s.vals, "", ""), formatFloat(s.fn()))
			} else {
				fmt.Fprintf(b, "%s%s %d\n", f.name, labelBlock(f.labels, s.vals, "", ""), s.g.Value())
			}
		case typeHistogram:
			h := s.h
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				le := formatFloat(float64(bound) * h.scale)
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelBlock(f.labels, s.vals, "le", le), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelBlock(f.labels, s.vals, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelBlock(f.labels, s.vals, "", ""), formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelBlock(f.labels, s.vals, "", ""), h.Count())
		}
	}
}

// labelBlock renders {k1="v1",k2="v2"} (empty string when there are no
// labels), appending the extra pair (used for histogram le) last.
func labelBlock(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot flattens every series into name{labels} → value, with
// histograms contributing name_sum (scaled) and name_count. Tests and
// the harness diff two snapshots to get per-stage deltas without going
// through the text format.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	out := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.snapshotSeries() {
			lb := labelBlock(f.labels, s.vals, "", "")
			switch f.typ {
			case typeCounter:
				out[f.name+lb] = float64(s.c.Value())
			case typeGauge:
				if s.fn != nil {
					out[f.name+lb] = s.fn()
				} else {
					out[f.name+lb] = float64(s.g.Value())
				}
			case typeHistogram:
				out[f.name+"_sum"+lb] = s.h.Sum()
				out[f.name+"_count"+lb] = float64(s.h.Count())
			}
		}
	}
	return out
}
