package obs

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden locks down the text exposition format: family
// sorting, HELP/TYPE headers, label ordering and escaping, cumulative
// histogram buckets with +Inf, _sum and _count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "requests with \\ and\nnewline").Add(3)
	cv := r.CounterVec("t_faults_total", "faults by site.", "site", "shard")
	cv.With("sc\"an\n\\err", "0").Inc()
	cv.With("stall", "1").Add(2)
	r.Gauge("t_depth", "queue depth.").Set(7)
	r.GaugeFunc("t_frac", "a fraction.", func() float64 { return 2.5 })
	h := r.Histogram("t_size", "sizes.", []int64{1, 5}, 1)
	for _, v := range []int64{0, 2, 7} {
		h.Observe(v)
	}

	want := strings.Join([]string{
		"# HELP t_depth queue depth.",
		"# TYPE t_depth gauge",
		"t_depth 7",
		"# HELP t_faults_total faults by site.",
		"# TYPE t_faults_total counter",
		`t_faults_total{site="sc\"an\n\\err",shard="0"} 1`,
		`t_faults_total{site="stall",shard="1"} 2`,
		"# HELP t_frac a fraction.",
		"# TYPE t_frac gauge",
		"t_frac 2.5",
		`# HELP t_requests_total requests with \\ and\nnewline`,
		"# TYPE t_requests_total counter",
		"t_requests_total 3",
		"# HELP t_size sizes.",
		"# TYPE t_size histogram",
		`t_size_bucket{le="1"} 1`,
		`t_size_bucket{le="5"} 2`,
		`t_size_bucket{le="+Inf"} 3`,
		"t_size_sum 9",
		"t_size_count 3",
	}, "\n") + "\n"

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramConcurrent hammers one histogram from parallel writers
// while scraping it, then checks nothing was lost. Run under -race this
// is the lock-freedom proof for the hot path.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat", "latency.", DurationBuckets(), 1e-9)
	const writers, perWriter = 8, 10000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Spread observations across the full bucket range.
				h.Observe(int64(w+1) * int64(i+1) * 137)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d", got, writers*perWriter)
	}
	// The +Inf cumulative bucket must equal the count.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := `t_lat_bucket{le="+Inf"} 80000`
	if !strings.Contains(b.String(), wantLine) {
		t.Errorf("exposition missing %q:\n%s", wantLine, b.String())
	}
}

// TestNilRegistryNoOps proves the disabled plane: every constructor on a
// nil registry returns nil handles whose methods are safe no-ops.
func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x", "h").Inc()
	r.Counter("x", "h").Add(3)
	r.Gauge("x", "h").Set(1)
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	r.Histogram("x", "h", []int64{1}, 1).Observe(5)
	r.DurationHistogram("x", "h").ObserveSince(time.Now())
	r.CounterVec("x", "h", "l").With("v").Inc()
	r.GaugeVec("x", "h", "l").With("v").Add(-1)
	r.GaugeFuncVec("x", "h", "l").With(func() float64 { return 1 }, "v")
	r.HistogramVec("x", "h", []int64{1}, 1, "l").With("v").Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil Snapshot = %v, want nil", snap)
	}
	if v := r.Counter("x", "h").Value(); v != 0 {
		t.Fatalf("nil counter Value = %d", v)
	}
}

// TestRegistrationIdempotent checks that re-registering a family returns
// the same series — the mechanism letting N shard pipelines share
// families — and that a conflicting shape panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "h")
	b := r.Counter("t_total", "h")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || a != b {
		t.Fatalf("re-registration did not return the shared series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.Gauge("t_total", "h")
}

func TestDurationBucketsAscending(t *testing.T) {
	b := DurationBuckets()
	if !sort.SliceIsSorted(b, func(i, j int) bool { return b[i] < b[j] }) {
		t.Fatalf("DurationBuckets not ascending: %v", b)
	}
}

func TestTracer(t *testing.T) {
	tr := NewTracer(2)
	a := tr.Start("a")
	a.Mark(StageEnqueued)
	a.Mark(StageAdmitted)
	a.Mark(StageAdmitted) // first-wins: must not duplicate
	if got := len(a.Stages()); got != 2 {
		t.Fatalf("marks = %d, want 2", got)
	}
	first := a.Stages()[1].At
	a.MarkLatest(StageCycleComplete)
	a.MarkLatest(StageCycleComplete) // last-wins: overwrite, not append
	if got := len(a.Stages()); got != 3 {
		t.Fatalf("marks after MarkLatest = %d, want 3", got)
	}
	if !a.Has(StageCycleComplete) || a.Has(StageDelivered) {
		t.Fatal("Has misreports stages")
	}
	if a.Stages()[2].At < first {
		t.Fatal("stage offsets not monotonic")
	}

	// FIFO eviction at capacity 2.
	tr.Start("b")
	tr.Start("c")
	if tr.Get("a") != nil {
		t.Fatal("oldest trace not evicted")
	}
	if tr.Get("b") == nil || tr.Get("c") == nil {
		t.Fatal("recent traces lost")
	}
	tr.Drop("b")
	if tr.Get("b") != nil {
		t.Fatal("Drop left the trace behind")
	}

	// Nil-safety of the whole trace surface.
	var nilTr *Tracer
	if nilTr.Start("x") != nil || nilTr.Get("x") != nil {
		t.Fatal("nil tracer must return nil")
	}
	nilTr.Drop("x")
	var nilTrace *Trace
	nilTrace.Mark(StageEnqueued)
	nilTrace.MarkLatest(StageEnqueued)
	if nilTrace.Has(StageEnqueued) || nilTrace.Stages() != nil {
		t.Fatal("nil trace must no-op")
	}
}
