// Package txn provides the snapshot-isolation bookkeeping assumed in
// §2.1 and exercised by §3.5: every transaction is tagged with a snapshot
// identifier, fact tuples carry xmin/xmax system columns, and a tuple is
// visible to a snapshot if it was committed at or before the snapshot and
// not deleted by it.
package txn

import "sync"

// Snapshot identifies a committed database state. Snapshot s sees every
// commit with id <= s.
type Snapshot uint64

// Manager issues snapshots and serializes commits. The zero value is
// ready to use with an initial committed state of 0.
type Manager struct {
	mu  sync.Mutex
	cur uint64
}

// Begin returns a snapshot of the current committed state.
func (m *Manager) Begin() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot(m.cur)
}

// Commit runs apply with a fresh commit id and publishes it. The commit id
// becomes visible to snapshots taken after apply returns. apply must stamp
// xmin (and xmax for deletions) with the given id.
func (m *Manager) Commit(apply func(commitID uint64)) Snapshot {
	snap, _ := m.CommitErr(func(id uint64) error {
		apply(id)
		return nil
	})
	return snap
}

// CommitErr runs apply with a fresh commit id and publishes it only if
// apply succeeds. On error the commit id is not published: Begin continues
// to return the previous snapshot and the same id is reissued to the next
// commit, so a failed apply leaves no phantom committed state behind.
// apply must either stamp every tuple it touches with the given id or
// leave the heap untouched when it returns an error.
func (m *Manager) CommitErr(apply func(commitID uint64) error) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.cur + 1
	if err := apply(id); err != nil {
		return 0, err
	}
	m.cur = id
	return Snapshot(id), nil
}

// Visible reports whether a tuple with the given xmin/xmax system column
// values is visible to snapshot s. xmax == 0 means "not deleted".
func Visible(xmin, xmax int64, s Snapshot) bool {
	return uint64(xmin) <= uint64(s) && (xmax == 0 || uint64(xmax) > uint64(s))
}
