package txn

import (
	"errors"
	"sync"
	"testing"
)

func TestVisibility(t *testing.T) {
	cases := []struct {
		xmin, xmax int64
		snap       Snapshot
		want       bool
	}{
		{0, 0, 0, true},  // loaded at time 0, never deleted
		{1, 0, 0, false}, // committed after snapshot
		{1, 0, 1, true},  // committed at snapshot
		{1, 3, 2, true},  // deleted later
		{1, 3, 3, false}, // deleted at commit 3: snapshot 3 no longer sees it
		{1, 3, 4, false}, // deleted before snapshot
		{5, 0, 99, true}, // old insert
		{5, 5, 4, false}, // insert+delete in same commit, earlier snapshot
		{5, 5, 5, false}, // insert+delete in same commit
	}
	for _, c := range cases {
		if got := Visible(c.xmin, c.xmax, c.snap); got != c.want {
			t.Errorf("Visible(%d,%d,%d) = %v, want %v", c.xmin, c.xmax, c.snap, got, c.want)
		}
	}
}

func TestCommitAdvancesSnapshot(t *testing.T) {
	var m Manager
	if m.Begin() != 0 {
		t.Fatal("initial snapshot must be 0")
	}
	var stamped uint64
	s := m.Commit(func(id uint64) { stamped = id })
	if stamped != 1 || s != 1 {
		t.Fatalf("first commit id %d snapshot %d", stamped, s)
	}
	if m.Begin() != 1 {
		t.Fatal("Begin must observe the commit")
	}
}

func TestCommitSerialization(t *testing.T) {
	var m Manager
	const n = 100
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Commit(func(id uint64) {
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate commit id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if m.Begin() != n {
		t.Fatalf("final snapshot %d, want %d", m.Begin(), n)
	}
	for id := uint64(1); id <= n; id++ {
		if !seen[id] {
			t.Fatalf("commit id %d skipped", id)
		}
	}
}

// A failed commit must not advance the published snapshot: before the
// fix, callers that plumbed an error out of the apply callback (e.g.
// ssb.DeleteFact on an out-of-range index) still left cur advanced, so
// later Begin() snapshots observed a phantom committed state with no
// tuples stamped at that id.
func TestFailedCommitDoesNotAdvanceSnapshot(t *testing.T) {
	var m Manager
	snap, err := m.CommitErr(func(id uint64) error {
		if id != 1 {
			t.Fatalf("first commit id = %d, want 1", id)
		}
		return nil
	})
	if err != nil || snap != 1 {
		t.Fatalf("CommitErr = (%d, %v), want (1, nil)", snap, err)
	}
	if got := m.Begin(); got != 1 {
		t.Fatalf("Begin after commit = %d, want 1", got)
	}

	boom := errors.New("apply failed")
	snap, err = m.CommitErr(func(id uint64) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("CommitErr error = %v, want %v", err, boom)
	}
	if snap != 0 {
		t.Fatalf("failed CommitErr snapshot = %d, want 0", snap)
	}
	if got := m.Begin(); got != 1 {
		t.Fatalf("Begin after failed commit = %d, want 1 (phantom commit published)", got)
	}

	// The id a failed commit tried to use is reissued to the next commit:
	// the committed sequence has no holes.
	snap, err = m.CommitErr(func(id uint64) error {
		if id != 2 {
			t.Fatalf("commit id after failure = %d, want 2", id)
		}
		return nil
	})
	if err != nil || snap != 2 {
		t.Fatalf("CommitErr after failure = (%d, %v), want (2, nil)", snap, err)
	}
	if got := m.Begin(); got != 2 {
		t.Fatalf("Begin = %d, want 2", got)
	}
}

func TestSnapshotStability(t *testing.T) {
	// A reader's snapshot must not see rows committed after Begin.
	var m Manager
	m.Commit(func(uint64) {}) // commit 1
	reader := m.Begin()
	m.Commit(func(uint64) {}) // commit 2
	if Visible(2, 0, reader) {
		t.Fatal("snapshot must not see later commit")
	}
	if !Visible(1, 0, reader) {
		t.Fatal("snapshot must see earlier commit")
	}
}
