package core

import (
	"testing"

	"cjoin/internal/bitvec"
	"cjoin/internal/query"
)

// TestDistributorRestoresSequenceOrder delivers batches out of order and
// verifies the reorder buffer enforces §3.3.3: a query-start control
// tuple is processed before the data that follows it and the query's end
// control tuple comes last, no matter how Stage workers interleaved the
// batches.
func TestDistributorRestoresSequenceOrder(t *testing.T) {
	star := miniStar(t, 10)
	p, err := NewPipeline(star, Config{MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-drive a distributor without starting the pipeline goroutines.
	in := make(chan *batch, 16)
	d := newDistributor(p, in)

	q, err := query.ParseBind("SELECT COUNT(*) FROM f, d WHERE fk = k", star)
	if err != nil {
		t.Fatal(err)
	}
	rq := &runningQuery{slot: 3, q: q, resultCh: make(chan QueryResult, 1), cleaned: make(chan struct{})}

	mkData := func(seq uint64, rows int) *batch {
		b := newBatch(rows, 2, bitvec.Words(8), 1)
		b.pooled = false // hand-made: must not enter the pipeline's pool
		b.seq = seq
		for i := 0; i < rows; i++ {
			tp := b.alloc()
			tp.row[0] = int64(i)
			tp.bv.Set(3)
		}
		return b
	}

	// Sequence: 0=start ctrl, 1..3=data, 4=end ctrl — delivered shuffled.
	batches := []*batch{
		mkData(2, 4),
		ctrlBatch(4, ctrlEnd, rq, nil),
		mkData(1, 5),
		ctrlBatch(0, ctrlStart, rq, nil),
		mkData(3, 6),
	}
	for _, b := range batches {
		in <- b
	}
	close(in)
	d.run()

	res := <-rq.resultCh
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Ints[0] != 15 {
		t.Fatalf("reordered aggregation produced %v, want COUNT=15", res.Rows)
	}
	// The cleanup notification must have been queued exactly once.
	select {
	case got := <-p.cleanupCh:
		if got != rq {
			t.Fatal("wrong query in cleanup queue")
		}
	default:
		t.Fatal("no cleanup notification")
	}
}

// TestIdleScanParks verifies the always-on pipeline stops consuming the
// device while no queries are registered.
func TestIdleScanParks(t *testing.T) {
	star := miniStar(t, 5)
	for i := int64(0); i < 2000; i++ {
		star.Fact.Heap.Append([]int64{i % 5, i})
	}
	p, err := NewPipeline(star, Config{MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	q, err := query.ParseBind("SELECT COUNT(*) FROM f, d WHERE fk = k", star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	p.Quiesce()
	before := p.Stats().PagesRead
	// With no queries, the Preprocessor must park: no further page reads.
	for i := 0; i < 50; i++ {
		if got := p.Stats().PagesRead; got != before {
			t.Fatalf("scan kept reading while idle: %d -> %d", before, got)
		}
	}
}
