package core_test

import (
	"errors"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/fault"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func injector(t *testing.T, spec string) *fault.Injector {
	t.Helper()
	s, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s.ForShard(0)
}

func slowDataset(t *testing.T, rows int) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 101,
		Disk: disk.Config{SeqBytesPerSec: 8 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// expectFailed waits for the typed failure on a handle and checks the
// pipeline's terminal surface: Failed channel closed, Health failed,
// new submissions rejected with the same typed error, Done closing, and
// — the accounting invariant — zero slots left admitted on the plane.
func expectFailed(t *testing.T, p *core.Pipeline, ds *ssb.Dataset, hs []core.Handle) *core.PipelineFailedError {
	t.Helper()
	var ferr *core.PipelineFailedError
	for _, h := range hs {
		res := h.Wait()
		if !errors.As(res.Err, &ferr) {
			t.Fatalf("in-flight query got %v, want *PipelineFailedError", res.Err)
		}
		select {
		case <-h.Done():
		case <-time.After(10 * time.Second):
			t.Fatal("Done did not close for a failed query")
		}
	}
	select {
	case <-p.Failed():
	case <-time.After(10 * time.Second):
		t.Fatal("Failed channel did not close")
	}
	if p.FailureCause() == nil {
		t.Fatal("FailureCause is nil after failure")
	}
	if h := p.Health(); h.State != "failed" || h.Shards[0].State != core.ShardFailed {
		t.Fatalf("health after failure: %+v", h)
	}
	if _, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder")); !errors.As(err, &ferr) {
		t.Fatalf("submit on failed pipeline: %v, want *PipelineFailedError", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Plane().InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.Plane().InUse(); got != 0 {
		t.Fatalf("%d plane slots leaked through pipeline failure", got)
	}
	return p.FailureCause()
}

func bindOne(t *testing.T, ds *ssb.Dataset, sql string) *query.Bound {
	t.Helper()
	q, err := query.ParseBind(sql, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	q.Snapshot = ds.Txn.Begin()
	return q
}

// TestPanicContainedPerGoroutine injects a panic into each pipeline
// goroutine in turn: the process must survive, resident queries must
// receive the typed failure, and the plane must drop to zero slots.
func TestPanicContainedPerGoroutine(t *testing.T) {
	for _, site := range []string{fault.SitePreprocessor, fault.SiteDistributor} {
		t.Run(site, func(t *testing.T) {
			ds := slowDataset(t, 2000)
			p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2,
				Fault: injector(t, "seed=1;panic="+site+"@4")})
			h, err := p.Submit(bindOne(t, ds, "SELECT SUM(lo_revenue) AS rev FROM lineorder, date WHERE lo_orderdate = d_datekey"))
			if err != nil {
				t.Fatal(err)
			}
			ferr := expectFailed(t, p, ds, []core.Handle{h})
			var pv *fault.Panic
			if !errors.As(ferr, &pv) || pv.Site != site {
				t.Fatalf("failure cause %v does not carry the injected *fault.Panic for %s", ferr, site)
			}
		})
	}
}

// TestPanicInManagerGoroutine arms the manager site: the panic fires
// during the first query's Algorithm 2 cleanup, after its result was
// delivered — the completed query keeps its result, later submissions
// get the typed failure.
func TestPanicInManagerGoroutine(t *testing.T) {
	ds := dataset(t, 1000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2,
		Fault: injector(t, "seed=1;panic=mgr@1")})
	h, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatalf("query completed before the cleanup panic, result must stand: %v", res.Err)
	}
	ferr := expectFailed(t, p, ds, nil)
	if ferr.Goroutine != "manager" {
		t.Fatalf("failure origin %q, want manager", ferr.Goroutine)
	}
}

// TestTransientScanErrorsRetried: a lossy source heals under the
// page-boundary retry loop — the query completes with the exact
// reference answer and the retry counter records the absorbed faults.
func TestTransientScanErrorsRetried(t *testing.T) {
	ds := dataset(t, 2000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2,
		Fault: injector(t, "seed=7;scan-err=0.1")})
	q := bindOne(t, ds, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year")
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatalf("query failed through transient errors: %v", res.Err)
	}
	want, err := ref.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.ResultsEqual(res.Rows, want) {
		t.Fatal("results diverged from reference under transient scan faults")
	}
	if got := p.Stats().ScanRetries; got == 0 {
		t.Fatal("no scan retries recorded despite scan-err=0.1")
	}
	if p.FailureCause() != nil {
		t.Fatalf("pipeline failed: %v", p.FailureCause())
	}
}

// TestScanRetriesExhausted: a source that always errors exhausts the
// capped backoff and escalates to the terminal Failed state, carrying
// the transient cause.
func TestScanRetriesExhausted(t *testing.T) {
	ds := dataset(t, 1000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2,
		ScanRetryBackoff: 50 * time.Microsecond,
		Fault:            injector(t, "seed=1;scan-err=1")})
	h, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	ferr := expectFailed(t, p, ds, []core.Handle{h})
	var fe *fault.Error
	if !errors.As(ferr, &fe) || !fe.Transient() {
		t.Fatalf("failure cause %v does not carry the transient *fault.Error", ferr)
	}
	if ferr.Goroutine != "preprocessor" {
		t.Fatalf("failure origin %q, want preprocessor", ferr.Goroutine)
	}
}

// TestScanHardFailureEscalatesImmediately: a hard page failure skips the
// retry loop entirely.
func TestScanHardFailureEscalatesImmediately(t *testing.T) {
	ds := dataset(t, 1000)
	in := injector(t, "seed=1;scan-fail=0")
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2, Fault: in})
	h, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	ferr := expectFailed(t, p, ds, []core.Handle{h})
	var fe *fault.Error
	if !errors.As(ferr, &fe) || fe.Transient() {
		t.Fatalf("failure cause %v, want hard *fault.Error", ferr)
	}
	if st := p.Stats(); st.ScanRetries != 0 {
		t.Fatalf("%d retries burned on a hard failure", st.ScanRetries)
	}
}

// TestFailNow is the supervisor's lever: an externally declared failure
// (e.g. stall detection) tears the pipeline down with the given cause.
func TestFailNow(t *testing.T) {
	ds := slowDataset(t, 2000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2})
	h, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("declared dead by supervisor")
	p.FailNow(cause)
	p.FailNow(errors.New("second declaration must lose")) // idempotent
	ferr := expectFailed(t, p, ds, []core.Handle{h})
	if !errors.Is(ferr, cause) || ferr.Goroutine != "supervisor" {
		t.Fatalf("failure = %v (origin %q), want the first declared cause", ferr, ferr.Goroutine)
	}
}

// TestAdmitFaultRejectsCleanly: an injected admission error fails only
// that submission — the pipeline stays healthy and the slot rolls back.
func TestAdmitFaultRejectsCleanly(t *testing.T) {
	ds := dataset(t, 1000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, Workers: 2,
		Fault: injector(t, "seed=1;admit-err=1")})
	_, err := p.Submit(bindOne(t, ds, "SELECT COUNT(*) AS n FROM lineorder"))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Op != "admit" {
		t.Fatalf("submit = %v, want injected admit *fault.Error", err)
	}
	if p.FailureCause() != nil || p.Plane().InUse() != 0 {
		t.Fatalf("admission fault damaged the pipeline: cause=%v inUse=%d",
			p.FailureCause(), p.Plane().InUse())
	}
}
