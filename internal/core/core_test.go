package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func dataset(t testing.TB, rows int) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func startPipeline(t testing.TB, ds *ssb.Dataset, cfg core.Config) *core.Pipeline {
	t.Helper()
	p, err := core.NewPipeline(ds.Star, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return p
}

func bindWorkload(t testing.TB, ds *ssb.Dataset, n int, s float64, seed int64) []*query.Bound {
	t.Helper()
	w := ssb.NewWorkload(ds, s, seed)
	var qs []*query.Bound
	for i := 0; i < n; i++ {
		_, text := w.Next()
		q, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return qs
}

func TestSingleQueryMatchesReferenceAllTemplates(t *testing.T) {
	ds := dataset(t, 2500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})
	rng := rand.New(rand.NewSource(7))
	for _, tpl := range ssb.Templates() {
		text := ds.Instantiate(tpl, 0.1, rng)
		q, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		h, err := p.Submit(q)
		if err != nil {
			t.Fatalf("%s: %v", tpl.ID, err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatalf("%s: %v", tpl.ID, res.Err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("%s: CJOIN diverges from reference\nSQL: %s\ngot %d rows, want %d rows",
				tpl.ID, text, len(res.Rows), len(want))
		}
	}
}

func TestConcurrentQueriesMatchReference(t *testing.T) {
	ds := dataset(t, 2000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 32, Workers: 4})
	qs := bindWorkload(t, ds, 24, 0.08, 9)
	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q *query.Bound) {
			defer wg.Done()
			h, err := p.Submit(q)
			if err != nil {
				t.Error(err)
				return
			}
			res := h.Wait()
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
			want, err := ref.Execute(q)
			if err != nil {
				t.Error(err)
				return
			}
			if !ref.ResultsEqual(res.Rows, want) {
				t.Errorf("concurrent query diverges: %s", q.SQL)
			}
		}(q)
	}
	wg.Wait()
}

func TestStaggeredAdmission(t *testing.T) {
	// Queries latch onto the scan at arbitrary points; every one must
	// still see each fact tuple exactly once (§3.3).
	ds := dataset(t, 3000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
	qs := bindWorkload(t, ds, 10, 0.1, 17)

	// Prime the pipeline so later submissions land mid-cycle.
	warm, err := p.Submit(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, q := range qs[1:] {
		time.Sleep(time.Duration(i) * 2 * time.Millisecond)
		wg.Add(1)
		go func(q *query.Bound) {
			defer wg.Done()
			h, err := p.Submit(q)
			if err != nil {
				t.Error(err)
				return
			}
			res := h.Wait()
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
			want, _ := ref.Execute(q)
			if !ref.ResultsEqual(res.Rows, want) {
				t.Errorf("staggered query diverges: %s", q.SQL)
			}
		}(q)
	}
	if res := warm.Wait(); res.Err != nil {
		t.Error(res.Err)
	}
	wg.Wait()
}

func TestVerticalAndHybridLayouts(t *testing.T) {
	ds := dataset(t, 1500)
	for _, cfg := range []core.Config{
		{MaxConcurrent: 8, Layout: core.Vertical},
		{MaxConcurrent: 8, Layout: core.Hybrid, Stages: 2, Workers: 4},
	} {
		p := startPipeline(t, ds, cfg)
		for _, q := range bindWorkload(t, ds, 6, 0.1, 23) {
			h, err := p.Submit(q)
			if err != nil {
				t.Fatalf("%v: %v", cfg.Layout, err)
			}
			res := h.Wait()
			if res.Err != nil {
				t.Fatalf("%v: %v", cfg.Layout, res.Err)
			}
			want, _ := ref.Execute(q)
			if !ref.ResultsEqual(res.Rows, want) {
				t.Fatalf("%v layout diverges: %s", cfg.Layout, q.SQL)
			}
		}
		p.Stop()
	}
}

func TestSlotReuseBeyondMaxConc(t *testing.T) {
	ds := dataset(t, 800)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	qs := bindWorkload(t, ds, 12, 0.1, 31)
	for _, q := range qs {
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, _ := ref.Execute(q)
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("slot-reused query diverges: %s", q.SQL)
		}
		p.Quiesce() // ensure Algorithm 2 cleanup completed before reuse
	}
}

func TestTooManyQueries(t *testing.T) {
	ds := dataset(t, 30000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 2})
	qs := bindWorkload(t, ds, 3, 0.3, 37)
	h1, err := p.Submit(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	h2, err := p.Submit(qs[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(qs[2]); err != core.ErrTooManyQueries {
		t.Fatalf("expected ErrTooManyQueries, got %v", err)
	}
	if r := h1.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := h2.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
}

func TestReorderFiltersDuringExecution(t *testing.T) {
	ds := dataset(t, 2500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 3, OptimizeInterval: time.Millisecond})
	qs := bindWorkload(t, ds, 12, 0.1, 41)
	var wg sync.WaitGroup
	for _, q := range qs {
		wg.Add(1)
		go func(q *query.Bound) {
			defer wg.Done()
			h, err := p.Submit(q)
			if err != nil {
				t.Error(err)
				return
			}
			p.ReorderFilters() // also hammer it explicitly
			res := h.Wait()
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
			want, _ := ref.Execute(q)
			if !ref.ResultsEqual(res.Rows, want) {
				t.Errorf("reordering changed results: %s", q.SQL)
			}
		}(q)
	}
	wg.Wait()
}

func TestFactPredicateSupported(t *testing.T) {
	// The paper's workload generator omits fact predicates, but the
	// operator supports them (§3.2.2): the Preprocessor initializes bτ
	// from c_i0.
	ds := dataset(t, 1500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q, err := query.ParseBind(`SELECT SUM(lo_revenue), COUNT(*), d_year FROM lineorder, date
		WHERE lo_orderdate = d_datekey AND lo_quantity <= 25 AND lo_discount BETWEEN 1 AND 3
		GROUP BY d_year ORDER BY d_year`, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want, err := ref.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.ResultsEqual(res.Rows, want) {
		t.Fatal("fact-predicate query diverges from reference")
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected non-empty result")
	}
}

func TestProgressReaches1(t *testing.T) {
	ds := dataset(t, 2000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q := bindWorkload(t, ds, 1, 0.2, 43)[0]
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := h.Progress(); got < 0.99 {
		t.Fatalf("progress after completion = %g", got)
	}
}

func TestStopFailsInflightQueries(t *testing.T) {
	ds := dataset(t, 50000)
	p, err := core.NewPipeline(ds.Star, core.Config{MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	q := bindWorkload(t, ds, 1, 0.3, 47)[0]
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	p.Stop()
	if res := h.Wait(); res.Err == nil {
		t.Fatal("in-flight query must fail on Stop")
	}
	if _, err := p.Submit(q); err == nil {
		t.Fatal("Submit after Stop must fail")
	}
}

func TestStatsPopulated(t *testing.T) {
	ds := dataset(t, 1200)
	// Zone maps off: this test pins the stats plumbing against a known
	// full-table scan, so page pruning would invalidate the arithmetic
	// (pruned charges have their own tests in zonemap_parity_test.go).
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, DisableZoneMaps: true})
	q := bindWorkload(t, ds, 1, 0.2, 53)[0]
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	h.Wait()
	s := p.Stats()
	if s.TuplesScanned < 1200 {
		t.Fatalf("tuples scanned %d", s.TuplesScanned)
	}
	if len(s.Filters) != 4 {
		t.Fatalf("filters %d", len(s.Filters))
	}
	if s.PagesRead == 0 {
		t.Fatal("no pages read")
	}
}
