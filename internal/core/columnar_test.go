package core_test

import (
	"testing"

	"cjoin/internal/colstore"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
	"cjoin/internal/storage"
)

// TestColumnStoreScanMerge exercises the §5 column-store extension
// end-to-end: the fact table is stored column-wise, the continuous scan
// is a scan/merge of only the columns the query mix accesses, and results
// must match the row-store reference.
func TestColumnStoreScanMerge(t *testing.T) {
	ds := dataset(t, 2500)

	// Copy the fact table into a column store on its own device so the
	// bytes the merge reads can be accounted separately.
	colDev := disk.New(disk.Config{})
	colTab := colstore.Create(colDev, ds.Lineorder.Heap.NumCols())
	sc := storage.NewScanner(ds.Lineorder.Heap)
	for row, ok := sc.Next(); ok; row, ok = sc.Next() {
		colTab.Append(row)
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}

	// The workload (Q2.x–Q4.x) touches the MVCC columns, the four foreign
	// keys, and the revenue/supplycost measures — 8 of 19 columns.
	needed := make([]bool, ds.Lineorder.Heap.NumCols())
	for _, c := range []int{ssb.LoXmin, ssb.LoXmax, ssb.LoCustkey, ssb.LoPartkey,
		ssb.LoSuppkey, ssb.LoOrderdate, ssb.LoRevenue, ssb.LoSupplycost} {
		needed[c] = true
	}
	merger, err := colstore.NewSchemaMerger(colTab, needed)
	if err != nil {
		t.Fatal(err)
	}

	p, err := core.NewPipeline(ds.Star, core.Config{MaxConcurrent: 16, FactSource: merger})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()

	colDev.ResetStats()
	for _, q := range bindWorkload(t, ds, 8, 0.1, 29) {
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := ref.Execute(q) // reference runs over the row heap
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("columnar scan/merge diverges: %s", q.SQL)
		}
	}

	// The merge must have read well under half of the full table bytes
	// (8 of 19 columns).
	read := colDev.Stats().BytesRead
	full := int64(ds.Lineorder.Heap.NumCols()) * ds.Lineorder.Heap.NumRows() * 8
	cycles := p.Stats().ScanCycles + 1
	if read > cycles*full*6/10 {
		t.Fatalf("scan/merge read %d bytes over %d cycles of a %d-byte table", read, cycles, full)
	}
}

func TestFactSourceValidation(t *testing.T) {
	ds := dataset(t, 500)
	colTab := colstore.Create(disk.NewMem(), 3) // wrong width
	m, err := colstore.NewMerger(colTab, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewPipeline(ds.Star, core.Config{FactSource: m}); err == nil {
		t.Fatal("mismatched FactSource width must be rejected")
	}

	part, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 500, Seed: 1, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	full := colstore.Create(disk.NewMem(), part.Lineorder.Heap.NumCols())
	full.Append(make([]int64, part.Lineorder.Heap.NumCols()))
	fm, err := colstore.NewMerger(full, seqInts(part.Lineorder.Heap.NumCols()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewPipeline(part.Star, core.Config{FactSource: fm}); err == nil {
		t.Fatal("FactSource with a partitioned star must be rejected")
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
