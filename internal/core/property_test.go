package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cjoin/internal/catalog"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/ref"
)

// TestRandomStarEquivalence is the repository's broadest property test:
// for randomized star schemas, data, and query batches, CJOIN's results
// must equal the naive reference executor's for every query. It fuzzes
// schema width, data skew, predicate shape, grouping, and concurrency in
// one loop.
func TestRandomStarEquivalence(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		star := randomStar(rng)
		p, err := core.NewPipeline(star, core.Config{
			MaxConcurrent: 16,
			Workers:       rng.Intn(4) + 1,
			BatchRows:     []int{1, 7, 64, 256}[rng.Intn(4)],
			Layout:        []core.Layout{core.Horizontal, core.Vertical, core.Hybrid}[rng.Intn(3)],
			SortAgg:       rng.Intn(2) == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Start()

		nq := rng.Intn(6) + 2
		type pending struct {
			q *query.Bound
			h core.Handle
		}
		var ps []pending
		for i := 0; i < nq; i++ {
			q, err := query.ParseBind(randomQuery(rng, star), star)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			h, err := p.Submit(q)
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, pending{q: q, h: h})
		}
		for _, pe := range ps {
			res := pe.h.Wait()
			if res.Err != nil {
				t.Fatalf("trial %d: %v", trial, res.Err)
			}
			want, err := ref.Execute(pe.q)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.ResultsEqual(res.Rows, want) {
				t.Fatalf("trial %d diverges on %s", trial, pe.q.SQL)
			}
		}
		p.Stop()
	}
}

// randomStar builds a star with 1-3 dimensions, random cardinalities and
// skewed fact data.
func randomStar(rng *rand.Rand) *catalog.Star {
	dev := disk.NewMem()
	ndims := rng.Intn(3) + 1
	var dims []*catalog.Table
	var fks, keys []int
	factCols := []catalog.Column{{Name: "xmin"}, {Name: "xmax"}}
	for d := 0; d < ndims; d++ {
		name := fmt.Sprintf("d%d", d)
		dim := catalog.NewTable(dev, name, 0, []catalog.Column{
			{Name: fmt.Sprintf("k%d", d)},
			{Name: fmt.Sprintf("attr%d", d)},
			{Name: fmt.Sprintf("grp%d", d)},
		})
		card := rng.Int63n(40) + 3
		for k := int64(0); k < card; k++ {
			dim.Heap.Append([]int64{k, rng.Int63n(10), rng.Int63n(4)})
		}
		dims = append(dims, dim)
		factCols = append(factCols, catalog.Column{Name: fmt.Sprintf("fk%d", d)})
		fks = append(fks, 2+d)
		keys = append(keys, 0)
	}
	factCols = append(factCols, catalog.Column{Name: "m"})
	fact := catalog.NewTable(dev, "f", 2, factCols)
	nrows := rng.Int63n(3000) + 100
	for i := int64(0); i < nrows; i++ {
		row := make([]int64, len(factCols))
		for d := 0; d < ndims; d++ {
			card := dims[d].Heap.NumRows()
			// Skew: sometimes reference keys outside the dimension to
			// exercise probe misses on the key/foreign-key contract.
			row[2+d] = rng.Int63n(card + card/3 + 1)
		}
		row[len(factCols)-1] = rng.Int63n(1000) - 500
		fact.Heap.Append(row)
	}
	star, err := catalog.NewStar(fact, dims, fks, keys)
	if err != nil {
		panic(err)
	}
	return star
}

// randomQuery renders a random star query over the schema.
func randomQuery(rng *rand.Rand, star *catalog.Star) string {
	ndims := len(star.Dims)
	used := make([]bool, ndims)
	nref := rng.Intn(ndims) + 1
	for i := 0; i < nref; i++ {
		used[rng.Intn(ndims)] = true
	}
	from := "f"
	where := ""
	groupBy := ""
	for d, u := range used {
		if !u {
			continue
		}
		from += fmt.Sprintf(", d%d", d)
		if where != "" {
			where += " AND "
		}
		where += fmt.Sprintf("fk%d = k%d", d, d)
		switch rng.Intn(3) {
		case 0:
			where += fmt.Sprintf(" AND attr%d < %d", d, rng.Intn(11))
		case 1:
			where += fmt.Sprintf(" AND attr%d BETWEEN %d AND %d", d, rng.Intn(5), rng.Intn(6)+5)
		}
		if groupBy == "" && rng.Intn(2) == 0 {
			groupBy = fmt.Sprintf("grp%d", d)
		}
	}
	if rng.Intn(3) == 0 {
		where += fmt.Sprintf(" AND m > %d", rng.Intn(400)-200)
	}
	sel := "SUM(m), COUNT(*), MIN(m), MAX(m), AVG(m)"
	tail := ""
	if groupBy != "" {
		sel += ", " + groupBy
		tail = " GROUP BY " + groupBy + " ORDER BY " + groupBy
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s%s", sel, from, where, tail)
}

func TestETAProgressesToZero(t *testing.T) {
	ds := dataset(t, 30000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q := bindWorkload(t, ds, 1, 0.2, 71)[0]
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	sawEstimate := false
	for i := 0; i < 10000; i++ {
		if eta, ok := h.ETA(); ok && eta > 0 {
			sawEstimate = true
			break
		}
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if !sawEstimate {
		t.Log("query finished before an ETA was observable (fast machine); progress path still covered")
	}
	if eta, ok := h.ETA(); !ok || eta != 0 {
		t.Fatalf("completed query ETA = %v,%v", eta, ok)
	}
}
