package core

import (
	"errors"
	"fmt"
	"net/http"
)

// PipelineFailedError is the terminal failure state of a Pipeline,
// delivered to every resident query when a pipeline goroutine panics, a
// scan error exhausts its retries, or a supervisor declares the pipeline
// dead (FailNow). The pipeline stops processing but the process — and,
// under internal/shard.Group, the sibling shards — keep serving.
type PipelineFailedError struct {
	// Goroutine names where the failure originated: "preprocessor",
	// "distributor", "manager", "stage", or "supervisor".
	Goroutine string
	// Cause is the recovered panic value (wrapped) or the escalated
	// error.
	Cause error
}

func (e *PipelineFailedError) Error() string {
	return fmt.Sprintf("core: pipeline failed in %s: %v", e.Goroutine, e.Cause)
}

func (e *PipelineFailedError) Unwrap() error { return e.Cause }

// HTTPStatus maps a failed pipeline to 503 for the serving tier: with a
// single pipeline the whole operator is gone; a shard group re-types the
// error as shard.ShardFailedError before it reaches a client.
func (e *PipelineFailedError) HTTPStatus() int { return http.StatusServiceUnavailable }

// panicError boxes a recovered panic value so it can travel as an error.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// Unwrap exposes a panic value that already was an error (e.g.
// *fault.Panic) to errors.As.
func (e *panicError) Unwrap() error {
	if err, ok := e.val.(error); ok {
		return err
	}
	return nil
}

// asCause converts a recovered panic value into an error.
func asCause(r any) error {
	if err, ok := r.(error); ok {
		return &panicError{val: err}
	}
	return &panicError{val: r}
}

// guard is the deferred recovery handler for pipeline goroutines: a
// panic transitions the pipeline to the terminal Failed state instead of
// crashing the process. It must be registered AFTER any defer whose
// execution the failure sweep depends on being ordered behind it (e.g.
// the preprocessor registers guard after `defer close(pp.out)`, so the
// sweep records the failure before the distributor can observe the
// closed channel).
func (p *Pipeline) guard(goroutine string) {
	if r := recover(); r != nil {
		p.fail(goroutine, asCause(r))
	}
}

// fail transitions the pipeline to the terminal Failed state: the first
// cause wins, the stop signal tears down every goroutine exactly as Stop
// does, and every resident query receives the typed failure through the
// normal deliver path. Plane holds of swept queries are released exactly
// once (runningQuery.releaseHold), so the shared dimension plane of a
// shard group loses no slots to a dead member.
func (p *Pipeline) fail(goroutine string, cause error) {
	ferr := &PipelineFailedError{Goroutine: goroutine, Cause: cause}
	if !p.failure.CompareAndSwap(nil, ferr) {
		return // a failure is already terminal
	}
	p.om.failures.Inc()
	close(p.failedCh)
	if p.stopped.CompareAndSwap(false, true) {
		close(p.stopCh)
	}
	// Sweep resident queries under the manager lock: activate registers
	// under the same lock and re-checks the failure pointer first, so
	// every query is either swept here (its plane hold is ours to
	// release) or was never registered (the submitter compensates).
	p.pmMu.Lock()
	for slot, rq := range p.live {
		rq.deliver(nil, ferr)
		rq.releaseHold()
		rq.markCleaned()
		p.pmActive.Clear(slot)
		p.inFlight--
		delete(p.live, slot)
	}
	p.pmMu.Unlock()
	if p.logf != nil {
		p.logf("pipeline failed in %s: %v", goroutine, cause)
	}
}

// FailNow forces the pipeline into the terminal Failed state from the
// outside — the shard supervisor's lever for a stalled (not crashed)
// pipeline. Idempotent; the first cause wins.
func (p *Pipeline) FailNow(cause error) { p.fail("supervisor", cause) }

// Failed returns a channel closed when the pipeline enters the terminal
// Failed state (it stays open through a clean Stop).
func (p *Pipeline) Failed() <-chan struct{} { return p.failedCh }

// FailureCause returns the terminal failure, or nil while the pipeline
// is healthy or merely stopped.
func (p *Pipeline) FailureCause() *PipelineFailedError { return p.failure.Load() }

// terminalErr is the error delivered to queries orphaned by shutdown:
// the typed failure when the pipeline failed, ErrPipelineStopped on a
// clean Stop.
func (p *Pipeline) terminalErr() error {
	if f := p.failure.Load(); f != nil {
		return f
	}
	return ErrPipelineStopped
}

// ShardState is one pipeline's serving state as reported by /stats and
// /healthz.
type ShardState string

const (
	ShardHealthy ShardState = "healthy"
	ShardFailed  ShardState = "failed"
)

// ShardHealth describes one shard (or the one pipeline of an unsharded
// executor).
type ShardHealth struct {
	Shard int        `json:"shard"`
	State ShardState `json:"state"`
	Cause string     `json:"cause,omitempty"`
}

// Health is the executor-level health summary. State is "ok" when every
// shard serves, "degraded" when some — but not all — shards have been
// quarantined, and "failed" when nothing can serve. It lives in core so
// internal/server can surface it without importing internal/shard.
type Health struct {
	State  string        `json:"state"`
	Shards []ShardHealth `json:"shards"`
}

// Degraded reports whether the executor lost capacity but still serves.
func (h Health) Degraded() bool { return h.State == "degraded" }

// Health reports the single pipeline's health: "ok", or "failed" with
// the terminal cause.
func (p *Pipeline) Health() Health {
	sh := ShardHealth{Shard: 0, State: ShardHealthy}
	state := "ok"
	if f := p.failure.Load(); f != nil {
		sh.State = ShardFailed
		sh.Cause = f.Error()
		state = "failed"
	}
	return Health{State: state, Shards: []ShardHealth{sh}}
}

// transientErr reports whether err models a recoverable condition worth
// retrying at the page boundary (internal/fault.Error and any future
// source error implementing Transient).
func transientErr(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}
