package core_test

import (
	"testing"
	"time"

	"cjoin/internal/core"
)

// TestProgressAndETALifecycle drives a query through the three §3.2.3
// states with a gated scan: zero progress (no ETA yet), mid-scan
// (fractional progress, finite ETA), and completed (progress 1, ETA 0).
func TestProgressAndETALifecycle(t *testing.T) {
	p, ds, gs := gatedPipeline(t, 2, 4)
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}

	// Zero progress: nothing scanned yet.
	if got := h.Progress(); got != 0 {
		t.Fatalf("initial progress %v", got)
	}
	if eta, ok := h.ETA(); ok {
		t.Fatalf("ETA known with zero progress: %v", eta)
	}
	if h.PagesScanned() != 0 {
		t.Fatalf("pages scanned %d", h.PagesScanned())
	}

	// Mid-scan: release half the pages.
	gs.gate <- struct{}{}
	gs.gate <- struct{}{}
	deadline := time.Now().Add(10 * time.Second)
	for h.PagesScanned() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stuck at %d pages", h.PagesScanned())
		}
		time.Sleep(50 * time.Microsecond)
	}
	if got := h.Progress(); got < 0.5 || got >= 1 {
		t.Fatalf("mid-scan progress %v, want [0.5, 1)", got)
	}
	eta, ok := h.ETA()
	if !ok {
		t.Fatal("ETA unknown mid-scan")
	}
	if eta <= 0 {
		t.Fatalf("mid-scan ETA %v, want > 0", eta)
	}

	// Completed: release the rest (wrap detection needs the start page's
	// read to begin a second time).
	for i := 0; i < 8; i++ {
		gs.gate <- struct{}{}
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := h.Progress(); got != 1 {
		t.Fatalf("final progress %v", got)
	}
	eta, ok = h.ETA()
	if !ok || eta != 0 {
		t.Fatalf("final ETA %v ok=%v, want 0 true", eta, ok)
	}
	if got := h.PagesScanned(); got != 4 {
		t.Fatalf("pages scanned %d, want 4", got)
	}
	if want := int64(4 * 8); res.Rows[0].Ints[0] != want {
		t.Fatalf("count %d want %d", res.Rows[0].Ints[0], want)
	}
}

// TestProgressMonotonic samples progress while the gate releases pages
// one at a time: the sequence must be non-decreasing and hit known
// fractions at each page boundary.
func TestProgressMonotonic(t *testing.T) {
	p, ds, gs := gatedPipeline(t, 2, 8)
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	last := h.Progress()
	for page := 1; page <= 8; page++ {
		gs.gate <- struct{}{}
		deadline := time.Now().Add(10 * time.Second)
		for h.PagesScanned() < int64(page) {
			if time.Now().After(deadline) {
				t.Fatalf("stuck at %d pages", h.PagesScanned())
			}
			time.Sleep(20 * time.Microsecond)
		}
		got := h.Progress()
		if got < last {
			t.Fatalf("progress regressed %v -> %v", last, got)
		}
		if want := float64(page) / 8; got != want {
			t.Fatalf("page %d progress %v want %v", page, got, want)
		}
		last = got
	}
	gs.gate <- struct{}{} // wrap read: completion point
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestETAConvergesToElapsed checks the §3.2.3 rate model on a real
// (unthrottled) scan: once the query completes, ETA is 0/true, and during
// the run every reported ETA stays finite and non-negative.
func TestETAConvergesToElapsed(t *testing.T) {
	ds := dataset(t, 4000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan core.QueryResult, 1)
	go func() { done <- h.Wait() }()
	for {
		select {
		case res := <-done:
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if eta, ok := h.ETA(); !ok || eta != 0 {
				t.Fatalf("post-completion ETA %v ok=%v", eta, ok)
			}
			return
		default:
			if eta, ok := h.ETA(); ok && eta < 0 {
				t.Fatalf("negative ETA %v", eta)
			}
		}
	}
}
