package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/dimplane"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/query"
)

// ErrTooManyQueries is returned by Submit when maxConc query slots are
// already in use.
var ErrTooManyQueries = errors.New("core: maximum concurrent queries reached")

// ErrQueryCanceled is delivered to a query abandoned via Handle.Cancel.
var ErrQueryCanceled = errors.New("core: query canceled")

// QueryResult is the final output of one registered query.
type QueryResult struct {
	Rows []agg.Result
	Err  error
}

// runningQuery is the pipeline's bookkeeping for one registered query.
type runningQuery struct {
	p    *Pipeline
	slot int
	q    *query.Bound
	aggr agg.Aggregator
	sink TupleSink // non-nil: tuples route here instead of aggr (§5)

	resultCh  chan QueryResult
	delivered atomic.Bool
	canceled  atomic.Bool
	// released guards this pipeline's hold on the plane slot: Algorithm 2
	// cleanup and the failure sweep can race (a Cancel in flight when a
	// shard dies reaches both paths), and the plane panics on surplus
	// retires, so the hold must be released exactly once.
	released atomic.Bool

	// Preprocessor-owned scan bookkeeping.
	startPos  int64
	sawStart  bool
	pagesLeft int64 // -1: wrap-detected; >= 0: partitioned countdown
	// needParts marks the partitions this query scans, indexed by the
	// star's GLOBAL partition order (partition-dealt shards translate
	// through factScan.globalOf). Nil means every partition.
	needParts []bool
	// pruneRanges are the fact-column range constraints the admission
	// derived from the plane's selected dimension key ranges and the
	// fact predicate (zonemap.go); pruneEmpty marks an unsatisfiable
	// constraint set (the query needs zero fact pages anywhere).
	pruneRanges []colRange
	pruneEmpty  bool
	// needPages is the page-granular companion of needParts, indexed by
	// the SCAN-LOCAL partition order (it is derived by the owning
	// preprocessor against its own scan's synopses at registration). Nil
	// means no page-level information; a nil inner slice means every
	// page of that partition.
	needPages [][]bool

	// Progress accounting (§3.2.3: "the current point in the continuous
	// scan can serve as a reliable progress indicator").
	pagesTotal atomic.Int64
	pagesDone  atomic.Int64

	submitted time.Time
	// cleaned closes once the slot is recycled. Closed via markCleaned
	// only: Algorithm 2 cleanup, a SubmitCtx rollback, and the Stop
	// sweep can race on shutdown.
	cleaned     chan struct{}
	cleanedOnce sync.Once
}

// needsPart reports whether the query must scan global partition g.
func (rq *runningQuery) needsPart(g int) bool {
	return rq.needParts == nil || rq.needParts[g]
}

// pageNeeded reports whether the query's completion countdown charges
// the given page of SCAN-LOCAL partition part. Pages beyond the bitmap
// (appended after registration) are not charged: the countdown covers
// exactly the page set frozen at registration.
func (rq *runningQuery) pageNeeded(part, page int) bool {
	if rq.needPages == nil || rq.needPages[part] == nil {
		return true
	}
	bits := rq.needPages[part]
	return page < len(bits) && bits[page]
}

func (rq *runningQuery) markCleaned() {
	rq.cleanedOnce.Do(func() { close(rq.cleaned) })
}

// releaseHold retires this pipeline's hold on the query's plane slot if
// it is still held, reporting whether this was the plane-wide final
// retire. Exactly-once across cleanup and the failure sweep.
func (rq *runningQuery) releaseHold() bool {
	if rq.released.CompareAndSwap(false, true) {
		return rq.p.plane.Retire(rq.slot)
	}
	return false
}

func (rq *runningQuery) deliver(rows []agg.Result, err error) {
	if rq.delivered.CompareAndSwap(false, true) {
		rq.resultCh <- QueryResult{Rows: rows, Err: err}
	}
}

// pipeHandle is the Pipeline's Handle implementation, tracking one
// registered query.
type pipeHandle struct {
	rq *runningQuery
	// submission is the interval from Submit entry until the query-start
	// control tuple entered the pipeline — the paper's "submission time"
	// (§6.2.2, Table 1).
	submission time.Duration
}

var _ Handle = (*pipeHandle)(nil)

// Slot returns the query's CJOIN identifier in [0, maxConc).
func (h *pipeHandle) Slot() int { return h.rq.slot }

// Wait blocks until the query completes one full scan cycle and returns
// its results.
func (h *pipeHandle) Wait() QueryResult { return <-h.rq.resultCh }

// Done returns a channel closed once the query's slot has been fully
// recycled (Algorithm 2 cleanup finished). The result is always delivered
// before Done closes, so Done doubles as a "slot free" signal for
// admission control layered above the pipeline.
func (h *pipeHandle) Done() <-chan struct{} { return h.rq.cleaned }

// Canceled reports whether the query was abandoned via Cancel.
func (h *pipeHandle) Canceled() bool { return h.rq.canceled.Load() }

// Submission reports how long pipeline registration took.
func (h *pipeHandle) Submission() time.Duration { return h.submission }

// Cancel abandons the query without tearing down the pipeline: the result
// ErrQueryCanceled is delivered immediately, and the Preprocessor retires
// the query at the next page boundary, after which the usual end-of-query
// control tuple frees the bit-vector slot for reuse (Algorithm 2). Cancel
// returns true if this call canceled the query; false if the query had
// already completed, failed, or been canceled.
func (h *pipeHandle) Cancel() bool {
	rq := h.rq
	if !rq.delivered.CompareAndSwap(false, true) {
		return false
	}
	rq.canceled.Store(true)
	rq.resultCh <- QueryResult{Err: ErrQueryCanceled}
	// Hand the slot retirement to the Preprocessor. The channel's
	// capacity is maxConc and each query cancels at most once (the CAS
	// above), so the send never blocks on a healthy pipeline; the stop
	// case covers shutdown races.
	select {
	case rq.p.pp.cancels <- rq:
	case <-rq.p.stopCh:
	}
	return true
}

// PagesScanned returns the number of fact pages the continuous scan has
// charged to this query so far.
func (h *pipeHandle) PagesScanned() int64 { return h.rq.pagesDone.Load() }

// ETA estimates the time to completion from the current processing rate —
// the paper's §3.2.3 "estimated time of completion based on the current
// processing rate of the pipeline". It returns 0 once the query is done
// and false while no progress has been made yet.
func (h *pipeHandle) ETA() (time.Duration, bool) {
	done := h.rq.pagesDone.Load()
	total := h.rq.pagesTotal.Load()
	if h.rq.delivered.Load() || (total > 0 && done >= total) {
		return 0, true
	}
	if done == 0 || total == 0 {
		return 0, false
	}
	elapsed := time.Since(h.rq.submitted)
	perPage := elapsed / time.Duration(done)
	return time.Duration(total-done) * perPage, true
}

// Progress returns the fraction of the query's scan completed, in [0,1].
func (h *pipeHandle) Progress() float64 {
	total := h.rq.pagesTotal.Load()
	if total <= 0 {
		return 1
	}
	f := float64(h.rq.pagesDone.Load()) / float64(total)
	if f > 1 {
		f = 1
	}
	return f
}

// Pipeline is the CJOIN operator: one always-on shared plan evaluating
// every registered star query (§3.1). It is the single-pipeline Executor;
// internal/shard.Group composes N of them behind the same interface.
type Pipeline struct {
	cfg  Config
	star *catalog.Star

	// plane owns the write side of the dimension state: slot allocation,
	// admission, and removal happen there exactly once per logical query.
	// A standalone pipeline constructs and owns a private plane (N=1);
	// internal/shard.Group passes one shared plane to all its shards.
	plane     *dimplane.Plane
	ownsPlane bool

	dimStates   []*dimState
	filterOrder atomic.Pointer[[]int]
	pool        *tuplePool

	pp        *preprocessor
	dist      *distributor
	cleanupCh chan *runningQuery
	stopCh    chan struct{}
	stopped   atomic.Bool
	wg        sync.WaitGroup

	// failure is the terminal Failed state (see failure.go): set exactly
	// once by fail, after which failedCh is closed and the pipeline winds
	// down like Stop — but delivers the typed cause instead of
	// ErrPipelineStopped and releases its plane holds.
	failure  atomic.Pointer[PipelineFailedError]
	failedCh chan struct{}
	logf     func(format string, args ...any)

	// pmMu serializes the pipeline-manager work: admission (Algorithm 1),
	// cleanup (Algorithm 2), and filter reordering (§3.4). The paper runs
	// these in a dedicated Pipeline Manager thread; a mutex gives the
	// same serialization with idiomatic Go.
	pmMu     sync.Mutex
	pmActive bitvec.Vec
	inFlight int
	// live tracks submitted queries until cleanup so Stop can fail any
	// query whose control tuples were dropped mid-shutdown.
	live map[int]*runningQuery

	// om is this pipeline's slice of the telemetry plane, labeled with
	// cfg.ObsShard; nil handles (cfg.Obs == nil) no-op every call.
	om pipeMetrics
}

// pipeMetrics holds the pipeline's pre-resolved metric handles. All
// families carry a "shard" label so N shard pipelines share them.
type pipeMetrics struct {
	pagesRead   *obs.Counter
	prunedPart  *obs.Counter
	prunedZone  *obs.Counter
	zmSkipped   *obs.Counter
	tuplesIn    *obs.Counter
	tuplesOut   *obs.Counter
	cycles      *obs.Counter
	cycleDur    *obs.Histogram
	cyclePages  *obs.Histogram
	retries     *obs.Counter
	failures    *obs.Counter
	filterBatch *obs.Histogram
}

func newPipeMetrics(r *obs.Registry, shard int) pipeMetrics {
	if r == nil {
		return pipeMetrics{}
	}
	sh := fmt.Sprintf("%d", shard)
	pruned := r.CounterVec("cjoin_scan_pruned_pages_total",
		"Fact pages pruned from queries' scans at admission, by cause: §5 partition pruning or page-level zone maps.",
		"cause", "shard")
	return pipeMetrics{
		pagesRead: r.CounterVec("cjoin_scan_pages_total",
			"Fact pages read by the continuous scan.", "shard").With(sh),
		prunedPart: pruned.With("partition", sh),
		prunedZone: pruned.With("zonemap", sh),
		zmSkipped: r.CounterVec("cjoin_scan_zonemap_skipped_pages_total",
			"Fact pages the continuous scan physically skipped because no resident query's zone-map bitmap needs them.", "shard").With(sh),
		tuplesIn: r.CounterVec("cjoin_scan_tuples_total",
			"Fact tuples entering the preprocessor.", "shard").With(sh),
		tuplesOut: r.CounterVec("cjoin_scan_tuples_emitted_total",
			"Fact tuples surviving the fact predicates and entering the filter stages.", "shard").With(sh),
		cycles: r.CounterVec("cjoin_scan_cycles_total",
			"Completed cycles of the continuous scan.", "shard").With(sh),
		cycleDur: r.DurationHistogramVec("cjoin_scan_cycle_seconds",
			"Wall time of one full scan cycle.", "shard").With(sh),
		cyclePages: r.HistogramVec("cjoin_scan_cycle_pages",
			"Pages read during one scan cycle (after pruning).",
			obs.ExpBuckets(1, 4, 12), 1, "shard").With(sh),
		retries: r.CounterVec("cjoin_scan_retries_total",
			"Transient scan errors absorbed by page-boundary retry.", "shard").With(sh),
		failures: r.CounterVec("cjoin_pipeline_failures_total",
			"Terminal pipeline failures (escalated scan errors, panics, stalls).", "shard").With(sh),
		filterBatch: r.DurationHistogramVec("cjoin_filter_batch_seconds",
			"Wall time probing one batch through the active filter sequence (1-in-8 sampled).", "shard").With(sh),
	}
}

// NewPipeline builds a CJOIN pipeline over the star schema. Call Start
// before Submit.
func NewPipeline(star *catalog.Star, cfg Config) (*Pipeline, error) {
	cfg = cfg.Normalized()
	if len(star.Dims) == 0 {
		return nil, fmt.Errorf("core: star schema has no dimensions")
	}
	plane := cfg.Plane
	owns := plane == nil
	if owns {
		pcfg := dimplane.Config{
			MaxConcurrent: cfg.MaxConcurrent,
			LegacyMap:     cfg.LegacyMapFilter,
			Obs:           cfg.Obs,
			PredCacheSize: cfg.PredCacheSize,
		}
		if cfg.Fault != nil {
			pcfg.AdmitFault = cfg.Fault.AdmitErr
		}
		plane = dimplane.New(star, 1, pcfg)
	} else {
		if plane.Star() != star {
			return nil, fmt.Errorf("core: dimension plane built over a different star schema")
		}
		if plane.MaxConcurrent() != cfg.MaxConcurrent {
			return nil, fmt.Errorf("core: dimension plane has %d slots, pipeline wants %d",
				plane.MaxConcurrent(), cfg.MaxConcurrent)
		}
	}
	p := &Pipeline{
		cfg:       cfg,
		star:      star,
		plane:     plane,
		ownsPlane: owns,
		cleanupCh: make(chan *runningQuery, cfg.MaxConcurrent+1),
		stopCh:    make(chan struct{}),
		failedCh:  make(chan struct{}),
		logf:      cfg.Logf,
		pmActive:  bitvec.New(cfg.MaxConcurrent),
		live:      make(map[int]*runningQuery),
		om:        newPipeMetrics(cfg.Obs, cfg.ObsShard),
	}
	for i := range star.Dims {
		ds := newDimState(star, i, plane.Store(i))
		ds.noSkip = cfg.DisableProbeSkip
		p.dimStates = append(p.dimStates, ds)
	}
	order := []int{}
	p.filterOrder.Store(&order)

	ncols := star.Fact.Heap.NumCols()
	if parts := star.Partitions(); parts[0].Heap != nil {
		ncols = parts[0].Heap.NumCols()
	}
	if cfg.FactSource != nil {
		if star.PartCol >= 0 {
			return nil, fmt.Errorf("core: FactSource override is incompatible with a partitioned star")
		}
		if cfg.FactSource.NumCols() != ncols {
			return nil, fmt.Errorf("core: FactSource has %d columns, fact schema has %d", cfg.FactSource.NumCols(), ncols)
		}
	}
	if cfg.PartSubset != nil {
		if star.PartCol < 0 {
			return nil, fmt.Errorf("core: PartSubset requires a range-partitioned star")
		}
		if cfg.FactSource != nil {
			return nil, fmt.Errorf("core: PartSubset is incompatible with a FactSource override")
		}
		if len(cfg.PartSubset) == 0 {
			return nil, fmt.Errorf("core: PartSubset must name at least one partition")
		}
		nparts := len(star.Partitions())
		seen := make(map[int]bool, len(cfg.PartSubset))
		for _, g := range cfg.PartSubset {
			if g < 0 || g >= nparts {
				return nil, fmt.Errorf("core: PartSubset index %d out of range [0,%d)", g, nparts)
			}
			if seen[g] {
				return nil, fmt.Errorf("core: PartSubset repeats partition %d", g)
			}
			seen[g] = true
		}
	}
	words := bitvec.Words(cfg.MaxConcurrent)
	// Enough batches for every queue slot plus one in hand per thread.
	nBatches := cfg.QueueLen*(len(star.Dims)+2) + cfg.Workers + 4
	p.pool = newTuplePool(nBatches, cfg.BatchRows, ncols, words, len(star.Dims))
	return p, nil
}

var (
	_ Executor       = (*Pipeline)(nil)
	_ BatchSubmitter = (*Pipeline)(nil)
)

// Start launches the pipeline goroutines.
func (p *Pipeline) Start() {
	pp := newPreprocessor(p)
	stagesOut := p.startStages(pp.out)
	dist := newDistributor(p, stagesOut)

	// Publish pp/dist under the manager lock so a concurrent Stats (e.g.
	// a /stats request racing shard startup) reads either nil or the
	// fully built components, never a torn pointer.
	p.pmMu.Lock()
	p.pp = pp
	p.dist = dist
	p.pmMu.Unlock()

	// Each goroutine carries a panic guard (failure.go): a crash in any
	// of them fails this pipeline instead of the process. pp and dist
	// register their guards inside run so they order correctly against
	// the output-channel close.
	p.wg.Add(3)
	go func() { defer p.wg.Done(); pp.run() }()
	go func() { defer p.wg.Done(); dist.run() }()
	go func() {
		defer p.wg.Done()
		defer p.guard("manager")
		p.managerLoop()
	}()
}

// Stop shuts the pipeline down. In-flight queries receive
// ErrPipelineStopped.
func (p *Pipeline) Stop() {
	if p.stopped.CompareAndSwap(false, true) {
		close(p.stopCh)
	}
	p.wg.Wait()
	// Batches in flight when the stop signal landed may have been
	// dropped by Stage workers before reaching the Distributor, so some
	// queries' results were never delivered. deliver is idempotent;
	// sweep every query still tracked as live.
	p.pmMu.Lock()
	for _, rq := range p.live {
		rq.deliver(nil, p.terminalErr())
		// Algorithm 2 cleanup will never run for these queries (the
		// manager loop has exited), so complete the Done contract here.
		// A SubmitCtx rollback on the submitter's goroutine can still
		// race this sweep; markCleaned is idempotent.
		rq.markCleaned()
	}
	p.pmMu.Unlock()
}

// managerLoop is the Pipeline Manager's asynchronous half: it performs
// query clean-up (Algorithm 2) and periodic run-time re-optimization of
// the filter order (§3.4) in parallel with the main pipeline.
func (p *Pipeline) managerLoop() {
	var tick <-chan time.Time
	if p.cfg.OptimizeInterval > 0 {
		t := time.NewTicker(p.cfg.OptimizeInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case rq := <-p.cleanupCh:
			p.cfg.Fault.PanicPoint(fault.SiteManager)
			p.cleanup(rq)
		case <-tick:
			p.ReorderFilters()
		case <-p.stopCh:
			// Drain pending cleanups so slots do not leak on shutdown.
			for {
				select {
				case rq := <-p.cleanupCh:
					p.cleanup(rq)
				default:
					return
				}
			}
		}
	}
}

// Submit registers a bound star query with the operator (Algorithm 1) and
// returns a handle delivering its results after one full scan cycle.
func (p *Pipeline) Submit(q *query.Bound) (Handle, error) {
	h, err := p.submitCtx(context.Background(), q, nil)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// SubmitCtx is Submit with a context: a context canceled before the query
// is installed aborts the admission (rolling back dimension-table updates
// and the slot), and one canceled during the short installation stall
// cancels the freshly admitted query. Either way the error is ctx.Err().
func (p *Pipeline) SubmitCtx(ctx context.Context, q *query.Bound) (Handle, error) {
	h, err := p.submitCtx(ctx, q, nil)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (p *Pipeline) submit(q *query.Bound, sink TupleSink) (*pipeHandle, error) {
	return p.submitCtx(context.Background(), q, sink)
}

func (p *Pipeline) submitCtx(ctx context.Context, q *query.Bound, sink TupleSink) (*pipeHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f := p.failure.Load(); f != nil {
		return nil, f
	}
	if p.stopped.Load() {
		return nil, ErrPipelineStopped
	}
	if q.Schema != p.star {
		return nil, fmt.Errorf("core: query bound against a different star schema")
	}
	start := time.Now()

	// Algorithm 1, lines 1–16 run on the shared dimension plane, outside
	// the manager lock: the store updates serialize per dimension
	// (Filters keep probing the previous snapshot), so independent
	// admissions proceed in parallel and submission time stays flat as
	// concurrency grows (§6.2.2, Table 1).
	slot, err := p.plane.Admit(ctx, q)
	if err != nil {
		if errors.Is(err, dimplane.ErrSlotsExhausted) {
			return nil, ErrTooManyQueries
		}
		return nil, err
	}
	h, err := p.activate(ctx, q, slot, sink, start)
	if err != nil {
		// activate never retires the plane slot on failure (see its
		// contract); release this pipeline's hold here — the sole hold,
		// since submitCtx is the single-pipeline entry point. The
		// stopped case is the exception: the query may already be
		// registered and the shutdown sweep owns its delivery, so the
		// plane slot is abandoned with the plane.
		if !errors.Is(err, ErrPipelineStopped) {
			p.plane.Retire(slot)
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Canceled during the short installation stall: the freshly
		// admitted query cancels through the normal path, which retires
		// the slot at the next page boundary.
		h.Cancel()
		return nil, err
	}
	return h, nil
}

// SubmitBatch registers K bound queries through one dimension-plane
// round (Plane.AdmitBatch): each distinct dimension predicate is
// evaluated once for the batch and each store publishes one COW
// snapshot carrying all K bit-tags. Activation then proceeds per
// query; an individual activation failure retires that query's slot
// and surfaces in errs without disturbing its batchmates. See
// BatchSubmitter for the return contract.
func (p *Pipeline) SubmitBatch(ctx context.Context, qs []*query.Bound) ([]Handle, []error, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if f := p.failure.Load(); f != nil {
		return nil, nil, f
	}
	if p.stopped.Load() {
		return nil, nil, ErrPipelineStopped
	}
	for _, q := range qs {
		if q.Schema != p.star {
			return nil, nil, fmt.Errorf("core: query bound against a different star schema")
		}
	}
	start := time.Now()
	slots, err := p.plane.AdmitBatch(ctx, qs)
	if err != nil {
		if errors.Is(err, dimplane.ErrSlotsExhausted) {
			return nil, nil, ErrTooManyQueries
		}
		return nil, nil, err
	}
	handles := make([]Handle, len(qs))
	errs := make([]error, len(qs))
	for i, q := range qs {
		h, aerr := p.activate(ctx, q, slots[i], nil, start)
		if aerr != nil {
			// Same compensation as submitCtx: this pipeline's hold is the
			// sole hold, except under ErrPipelineStopped where the
			// shutdown sweep owns delivery.
			if !errors.Is(aerr, ErrPipelineStopped) {
				p.plane.Retire(slots[i])
			}
			errs[i] = aerr
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			h.Cancel()
			errs[i] = cerr
			continue
		}
		handles[i] = h
	}
	return handles, errs, nil
}

// Activate registers a query that the shared dimension plane has already
// admitted (slot from dimplane.Plane.Admit) with this pipeline's
// Preprocessor — Algorithm 1, lines 17–22 — and returns its handle.
// internal/shard.Group calls this once per shard after one plane
// admission, which is the whole point of the plane: admit once, probe
// everywhere.
//
// Retirement contract: on success, this pipeline retires the slot
// exactly once through its normal lifecycle (Algorithm 2 cleanup). On
// error the slot has NOT been retired and never will be by this
// pipeline, so the caller must compensate with one Plane.Retire — with
// one exception: ErrPipelineStopped, where delivery is owned by the
// shutdown sweep and the slot is abandoned with the plane. A FAILED
// pipeline returns its *PipelineFailedError instead (never bare
// ErrPipelineStopped), and the caller compensates: the failure sweep
// releases the holds of queries it swept, and a query rejected here was
// never registered, so its hold is still the caller's.
func (p *Pipeline) Activate(ctx context.Context, q *query.Bound, slot int) (Handle, error) {
	if f := p.failure.Load(); f != nil {
		return nil, f
	}
	if p.stopped.Load() {
		return nil, ErrPipelineStopped
	}
	if q.Schema != p.star {
		return nil, fmt.Errorf("core: query bound against a different star schema")
	}
	h, err := p.activate(ctx, q, slot, nil, time.Now())
	if err != nil {
		return nil, err
	}
	return h, nil
}

// activate installs an admitted query in the Preprocessor between two
// pages (the stall window) and appends the query-start control tuple.
// See Activate for the slot-retirement contract.
func (p *Pipeline) activate(ctx context.Context, q *query.Bound, slot int, sink TupleSink, start time.Time) (*pipeHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rq := &runningQuery{
		p:         p,
		slot:      slot,
		q:         q,
		sink:      sink,
		resultCh:  make(chan QueryResult, 1),
		submitted: start,
		cleaned:   make(chan struct{}),
	}

	// §5 partition pruning: derive the needed partitions from the
	// partition-key range implied by the query (already installed in the
	// plane's dimension stores).
	if p.star.PartCol >= 0 {
		rq.needParts = p.neededPartitions(q, slot)
	}
	// Zone-map pruning: derive the fact-column ranges the preprocessor
	// will intersect with its scan's page synopses at registration.
	if !p.cfg.DisableZoneMaps {
		rq.pruneRanges, rq.pruneEmpty = pruneRanges(p.star, p.plane, q, slot)
	}

	// Register under the manager lock, re-checking the terminal states:
	// the failure sweep runs under the same lock, so a query is either
	// rejected here (its plane hold stays the caller's to release) or
	// registered in live and guaranteed to be swept — never lost in
	// between.
	p.pmMu.Lock()
	if f := p.failure.Load(); f != nil {
		p.pmMu.Unlock()
		return nil, f
	}
	if p.stopped.Load() {
		p.pmMu.Unlock()
		return nil, ErrPipelineStopped
	}
	p.rebuildFilterOrderLocked()
	p.pmActive.Set(slot)
	p.inFlight++
	p.live[slot] = rq
	p.pmMu.Unlock()

	done := make(chan struct{})
	select {
	case p.pp.cmds <- ppCmd{rq: rq, done: done}:
	case <-ctx.Done():
		// The Preprocessor never saw the query; undo the registration.
		// The plane slot stays admitted — the caller compensates.
		p.deregister(rq)
		rq.markCleaned()
		return nil, ctx.Err()
	case <-p.stopCh:
		return nil, ErrPipelineStopped
	}
	// The installation command is in flight and the stall window is
	// bounded (one page at most), so wait for it rather than abandoning a
	// half-installed query. When the pipeline dies right after the
	// install (both channels ready), the install wins: the handle is
	// valid and the failure sweep delivers its result.
	select {
	case <-done:
	case <-p.stopCh:
		select {
		case <-done:
		default:
			return nil, ErrPipelineStopped
		}
	}
	return &pipeHandle{rq: rq, submission: time.Since(start)}, nil
}

// neededPartitions computes which fact partitions the query must scan by
// correlating its predicates with the partitioning scheme. When the
// partition column is the foreign key of a referenced dimension, the
// admission-time dimension query already identified the selected
// dimension tuples; their key range prunes partitions exactly.
func (p *Pipeline) neededPartitions(q *query.Bound, slot int) []bool {
	return NeededPartitions(p.star, p.plane, q, slot)
}

// NeededPartitions is the §5 pruning primitive as a free function, so a
// shard group can run the same feasibility analysis against its shared
// plane — e.g. to decide whether a query can still be answered exactly
// after a shard holding some partitions has been quarantined. The query
// must already be admitted to the plane at slot.
func NeededPartitions(star *catalog.Star, plane *dimplane.Plane, q *query.Bound, slot int) []bool {
	parts := star.Partitions()
	need := make([]bool, len(parts))
	dimIdx := -1
	for i := range star.Dims {
		if star.FKCol[i] == star.PartCol && q.DimRefs[i] && q.HasDimPred(i) {
			dimIdx = i
			break
		}
	}
	if dimIdx < 0 {
		for i := range need {
			need[i] = true
		}
		return need
	}
	minKey, maxKey, any := plane.SelectedKeyRange(dimIdx, slot)
	if !any {
		return need // query selects no partition-key values: zero pages
	}
	for i, part := range parts {
		if maxKey >= part.MinKey && minKey <= part.MaxKey {
			need[i] = true
		}
	}
	return need
}

// cleanup finishes Algorithm 2 for this pipeline: drop the query from
// the pipeline-manager state and release this pipeline's hold on the
// plane slot. The plane performs the actual bit clearing, entry garbage
// collection, and slot recycling when the last of its probers retires,
// so a slot is never reused while another shard still has the query's
// tuples in flight.
func (p *Pipeline) cleanup(rq *runningQuery) {
	p.deregister(rq)
	if rq.releaseHold() {
		// Final retire: the plane just ran Algorithm 2's removal, so a
		// dimension's shared reference count may have dropped to zero —
		// re-derive the active-filter list. A non-final retire cannot
		// change reference counts; sibling shards refresh their order at
		// their next admission or final cleanup, and probing a
		// refs==0 dimension meanwhile is a no-op.
		p.pmMu.Lock()
		p.rebuildFilterOrderLocked()
		p.pmMu.Unlock()
	}
	rq.markCleaned()
}

// deregister removes a query from the pipeline-manager bookkeeping
// without touching the shared plane. Idempotent: the failure sweep may
// have deregistered the query already while its cleanup command was
// still queued.
func (p *Pipeline) deregister(rq *runningQuery) {
	p.pmMu.Lock()
	if cur, ok := p.live[rq.slot]; ok && cur == rq {
		p.pmActive.Clear(rq.slot)
		p.inFlight--
		delete(p.live, rq.slot)
	}
	p.pmMu.Unlock()
}

// rebuildFilterOrderLocked recomputes the active-filter list, preserving
// the current relative order for filters that remain and appending newly
// activated ones. Callers hold pmMu.
func (p *Pipeline) rebuildFilterOrderLocked() {
	old := *p.filterOrder.Load()
	inOld := make(map[int]bool, len(old))
	var order []int
	for _, d := range old {
		if p.dimStates[d].refCount() > 0 {
			order = append(order, d)
			inOld[d] = true
		}
	}
	for d, ds := range p.dimStates {
		if ds.refCount() > 0 && !inOld[d] {
			order = append(order, d)
		}
	}
	p.filterOrder.Store(&order)
}

// MaxConcurrent returns the pipeline's maxConc bound: the number of
// query slots (and the width of every bit-vector).
func (p *Pipeline) MaxConcurrent() int { return p.cfg.MaxConcurrent }

// ActiveQueries returns the number of queries currently registered.
func (p *Pipeline) ActiveQueries() int {
	p.pmMu.Lock()
	defer p.pmMu.Unlock()
	return p.inFlight
}

// Quiesce blocks until no queries are in flight (useful in tests).
func (p *Pipeline) Quiesce() {
	for p.ActiveQueries() > 0 {
		time.Sleep(100 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of pipeline counters.
type Stats struct {
	// CollectedAt is the instant the snapshot was taken. The value
	// carries Go's monotonic clock reading, so two snapshots subtract to
	// a drift-free interval — scrapers divide counter deltas by it to
	// get correct rates (a snapshot re-taken per request has no meaning
	// as a rate without it).
	CollectedAt time.Time

	TuplesScanned int64
	TuplesEmitted int64
	PagesRead     int64
	ScanCycles    int64
	ScanRetries   int64 // transient scan errors absorbed by page-boundary retry
	// Pruning counters: pages charged away from queries at admission
	// (by cause) and pages the scan physically skipped via zone maps.
	PagesPrunedPartition int64
	PagesPrunedZonemap   int64
	PagesSkippedZonemap  int64
	Filters              []FilterStats
	FilterOrder          []string

	// State is the pipeline's serving state; FailureCause carries the
	// terminal failure message for a failed pipeline.
	State        ShardState
	FailureCause string

	// Dimension-plane figures. Admission runs once per logical query on
	// the shared plane and the stores are shared by every prober, so
	// these are reported once per plane: a standalone pipeline fills them
	// (it owns its plane), a shard pipeline leaves them zero and the
	// group reports the plane's figures on the merged snapshot.
	DimAdmits      int64 // queries admitted to the plane
	DimAdmitNanos  int64 // total wall time spent in plane admission
	PlaneBytes     int64 // resident dimension-store bytes
	PlanePeakBytes int64 // high-water mark of PlaneBytes
	PlanePipelines int   // pipelines sharing the plane

	// PR 8 admission-throughput figures, also once per plane.
	PlaneCacheHits    int64 // predicate scans skipped via the scan cache / batch reuse
	PlaneCacheMisses  int64 // cache-enabled resolutions that scanned the heap
	PlanePublishes    int64 // dimension-store COW snapshot publications
	PlaneBatchAdmits  int64 // AdmitBatch rounds
	PlaneBatchQueries int64 // queries admitted through AdmitBatch
}

// Stats snapshots the pipeline counters and per-filter statistics. It is
// safe to call concurrently with Start and Stop: the preprocessor pointer
// is read under the manager lock (the same snapshot discipline the
// admission tier uses for its counters), and all counters are atomics.
func (p *Pipeline) Stats() Stats {
	p.pmMu.Lock()
	pp := p.pp
	p.pmMu.Unlock()
	s := Stats{CollectedAt: time.Now(), State: ShardHealthy}
	if f := p.failure.Load(); f != nil {
		s.State = ShardFailed
		s.FailureCause = f.Error()
	}
	if pp != nil {
		s.TuplesScanned = pp.tuplesIn.Load()
		s.TuplesEmitted = pp.tuplesOut.Load()
		s.PagesRead = pp.pagesRead.Load()
		s.ScanCycles = pp.scanCycles.Load()
		s.ScanRetries = pp.scanRetries.Load()
		s.PagesPrunedPartition = pp.prunedPartPages.Load()
		s.PagesPrunedZonemap = pp.prunedZonePages.Load()
		s.PagesSkippedZonemap = pp.zmSkippedPages.Load()
	}
	for _, ds := range p.dimStates {
		s.Filters = append(s.Filters, ds.stats())
	}
	for _, d := range *p.filterOrder.Load() {
		s.FilterOrder = append(s.FilterOrder, p.dimStates[d].table.Name)
	}
	if p.ownsPlane {
		ps := p.plane.Stats()
		s.DimAdmits = ps.Admits
		s.DimAdmitNanos = ps.AdmitNanos
		s.PlaneBytes = ps.MemBytes
		s.PlanePeakBytes = ps.PeakMemBytes
		s.PlanePipelines = ps.Probers
		s.PlaneCacheHits = ps.CacheHits
		s.PlaneCacheMisses = ps.CacheMisses
		s.PlanePublishes = ps.SnapshotPublishes
		s.PlaneBatchAdmits = ps.BatchAdmits
		s.PlaneBatchQueries = ps.BatchQueries
	}
	return s
}

// Plane returns the dimension plane this pipeline probes.
func (p *Pipeline) Plane() *dimplane.Plane { return p.plane }
