package core

import (
	"sync/atomic"
	"time"

	"cjoin/internal/bitvec"
	"cjoin/internal/expr"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/txn"
)

// ppCmd asks the Preprocessor to install a registered query between two
// pages of the continuous scan — the paper's short "stall" window at the
// end of Algorithm 1 (lines 17–22). done is closed once the query-start
// control tuple has been appended to the Preprocessor's output.
type ppCmd struct {
	rq   *runningQuery
	done chan struct{}
}

// preprocessor owns the continuous scan. For every fact tuple τ it
// initializes the bit-vector bτ — bit i set iff query i is active, τ is
// visible to the query's snapshot (§3.5: snapshot association is a
// virtual fact-table predicate), and τ satisfies the query's fact
// predicate c_i0 (§3.2.2) — and drops tuples with bτ == 0. It detects the
// wrap-around completion point of every query (§3.3.2) and, for
// partitioned stars, the early completion point after the query's needed
// partitions are covered (§5).
type preprocessor struct {
	p    *Pipeline
	scan *factScan
	cmds chan ppCmd
	// cancels carries queries abandoned via Handle.Cancel; the
	// Preprocessor retires them at the next page boundary. Capacity is
	// maxConc (each live query cancels at most once), so senders never
	// block on a healthy pipeline.
	cancels chan *runningQuery
	out     chan *batch
	stop    <-chan struct{}

	seq    uint64
	active []*runningQuery // registered queries, registration order
	// baseMask has the bits of active queries without fact predicates;
	// their bits copy in one vector operation per tuple.
	baseMask bitvec.Vec
	predQ    []*runningQuery // active queries with fact predicates
	// partRefs counts active queries needing each partition, indexed by
	// the SCAN-LOCAL partition order (a dealt subset on a shard);
	// runningQuery.needParts stays star-global and is translated through
	// factScan.globalOf.
	partRefs []int
	// pageAllRefs counts active queries needing EVERY page of a local
	// partition (wrap-detected queries, and countdown queries with no
	// zone-map bitmap there); pageRefs counts, per page, the queries
	// whose bitmap needs it. A page is skipped only when both are zero —
	// the page-granular generalization of partRefs (§5).
	pageAllRefs []int
	pageRefs    [][]int
	mvcc        bool // fact rows carry xmin/xmax system columns

	scratch expr.Joined // reused for fact-predicate evaluation

	// Cycle timing for the telemetry plane. cycleStart zeroes whenever
	// the scan parks idle, so the cycle-duration histogram only records
	// cycles the scan ran end to end; partial post-idle cycles are
	// discarded rather than reported minutes long.
	cycleStart time.Time
	cyclePages int64

	tuplesIn    atomic.Int64
	tuplesOut   atomic.Int64
	pagesRead   atomic.Int64
	scanCycles  atomic.Int64
	scanRetries atomic.Int64
	// Pruning accounting: pages charged away from queries at admission,
	// by cause, and pages the scan physically skipped via zone maps.
	prunedPartPages atomic.Int64
	prunedZonePages atomic.Int64
	zmSkippedPages  atomic.Int64
}

func newPreprocessor(p *Pipeline) *preprocessor {
	var wrap func(PageSource) PageSource
	if p.cfg.Fault != nil {
		wrap = func(s PageSource) PageSource {
			// core.PageSource and fault.PageSource are structurally
			// identical; the interface-to-interface assignments convert.
			return p.cfg.Fault.WrapSource(s, p.stopCh)
		}
	}
	scan := newFactScan(p.star, p.cfg.FactSource, p.cfg.PartSubset, wrap)
	return &preprocessor{
		p:           p,
		scan:        scan,
		cmds:        make(chan ppCmd),
		cancels:     make(chan *runningQuery, p.cfg.MaxConcurrent),
		out:         make(chan *batch, p.cfg.QueueLen),
		stop:        p.stopCh,
		baseMask:    bitvec.New(p.cfg.MaxConcurrent),
		partRefs:    make([]int, len(scan.parts)),
		pageAllRefs: make([]int, len(scan.parts)),
		pageRefs:    make([][]int, len(scan.parts)),
		mvcc:        p.star.Fact.Hidden >= 2,
	}
}

func (pp *preprocessor) run() {
	// Defers run LIFO: the panic guard registers AFTER the close so the
	// failure state is recorded before the distributor can observe the
	// closed channel and start its orphan sweep.
	defer close(pp.out)
	defer pp.p.guard("preprocessor")
	for {
		pp.p.cfg.Fault.PanicPoint(fault.SitePreprocessor)
		if len(pp.active) == 0 {
			// Idle: the always-on pipeline parks instead of spinning
			// the scan.
			pp.cycleStart = time.Time{}
			select {
			case cmd := <-pp.cmds:
				pp.register(cmd)
			case rq := <-pp.cancels:
				pp.retire(rq)
			case <-pp.stop:
				return
			}
			continue
		}
		select {
		case cmd := <-pp.cmds:
			pp.register(cmd)
			continue
		case rq := <-pp.cancels:
			pp.retire(rq)
			continue
		case <-pp.stop:
			return
		default:
		}

		vals, n, pos, part, page, wrapped, err := pp.nextPageRetry()
		if k := pp.scan.takeSkipped(); k > 0 {
			pp.zmSkippedPages.Add(k)
			pp.p.om.zmSkipped.Add(k)
		}
		if err != nil {
			select {
			case <-pp.stop:
				// Shutdown raced the error; a clean stop wins.
				return
			default:
			}
			// Retries exhausted or a hard failure: the scan cannot make
			// progress, so the pipeline transitions to the terminal
			// Failed state. fail's sweep delivers the typed cause to
			// every resident query; under a shard group the siblings
			// keep serving.
			pp.p.fail("preprocessor", err)
			return
		}
		if n == 0 {
			// Nothing scannable; only control work remains.
			continue
		}
		pp.pagesRead.Add(1)
		pp.p.om.pagesRead.Inc()
		pp.cyclePages++
		// A cycle boundary is the first page of a pass: the scan wrapped,
		// or this is the first page after an idle park. (Position 0 is not
		// a reliable boundary once pruning can skip page 0.)
		if wrapped || pp.cycleStart.IsZero() {
			pp.scanCycles.Add(1)
			pp.p.om.cycles.Inc()
			if !pp.cycleStart.IsZero() {
				pp.p.om.cycleDur.ObserveSince(pp.cycleStart)
				pp.p.om.cyclePages.Observe(pp.cyclePages - 1)
			}
			pp.cycleStart = time.Now()
			pp.cyclePages = 1
		}

		// Wrap-around completion check must run before the page at the
		// query's start position is emitted a second time (§3.3.2).
		pp.checkWrapEnds(pos)
		if len(pp.active) == 0 {
			continue
		}

		if !pp.emitPage(vals, n) {
			return
		}
		pp.afterPage(part, page)
	}
}

// nextPageRetry wraps factScan.nextPage with capped exponential backoff
// for transient errors (fault.Error and any source error implementing
// Transient() bool). nextPage does not advance past a failed read, so
// every retry re-reads the same page. Hard errors and exhausted retries
// return to the caller for escalation; a pipeline stop during backoff
// returns the pending error, which the caller's stop check supersedes.
func (pp *preprocessor) nextPageRetry() (vals []int64, n int, pos int64, part, page int, wrapped bool, err error) {
	const maxBackoff = 100 * time.Millisecond
	backoff := pp.p.cfg.ScanRetryBackoff
	for attempt := 0; ; attempt++ {
		vals, n, pos, part, page, wrapped, err = pp.scan.nextPage(pp.skipPart, pp.skipPage)
		if err == nil || !transientErr(err) || attempt >= pp.p.cfg.ScanRetries {
			return
		}
		pp.scanRetries.Add(1)
		pp.p.om.retries.Inc()
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-pp.stop:
			t.Stop()
			return
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func (pp *preprocessor) nextSeq() uint64 {
	s := pp.seq
	pp.seq++
	return s
}

// emit sends a batch downstream; it returns false when the pipeline is
// stopping.
func (pp *preprocessor) emit(b *batch) bool {
	select {
	case pp.out <- b:
		return true
	case <-pp.stop:
		return false
	}
}

// register installs a new query (Algorithm 1 lines 19–22): extend Q, mark
// the start position, emit the query-start control tuple, resume.
func (pp *preprocessor) register(cmd ppCmd) {
	rq := cmd.rq
	rq.startPos = pp.scan.position()
	rq.sawStart = false
	rq.needPages = pp.buildNeedPages(rq)
	if pp.scan.static || rq.pruneEmpty || rq.needPages != nil {
		// Pruning countdown over the partitions and pages this scan
		// covers: a shard's scan may hold only a dealt subset, so the
		// query's star-global needParts is consulted per local partition
		// (pages the query needs on OTHER shards are theirs to count),
		// and within a needed partition only the pages the query's
		// zone-map bitmap retains are charged. A non-static scan joins
		// the countdown regime once it has a bitmap: the page set is
		// frozen at registration, so pages appended later are read but
		// never charged, and completion still means "every needed page
		// delivered exactly once".
		var pages, prunedPart, prunedZone int64
		for li := range pp.scan.parts {
			total := int64(pp.scan.pagesInPart(li))
			switch {
			case pp.scan.static && !rq.needsPart(pp.scan.globalOf(li)):
				prunedPart += total
			case rq.pruneEmpty:
				prunedZone += total
			case rq.needPages == nil || rq.needPages[li] == nil:
				pages += total
			default:
				var k int64
				for _, b := range rq.needPages[li] {
					if b {
						k++
					}
				}
				pages += k
				prunedZone += total - k
			}
		}
		rq.pagesLeft = pages
		rq.pagesTotal.Store(pages)
		pp.prunedPartPages.Add(prunedPart)
		pp.prunedZonePages.Add(prunedZone)
		pp.p.om.prunedPart.Add(prunedPart)
		pp.p.om.prunedZone.Add(prunedZone)
	} else {
		// No pruning information: wrap-around completion (§3.3.2). The
		// query holds a pageAllRefs reference, so no page — including its
		// start position — is skipped while it is resident.
		rq.pagesLeft = -1
		rq.pagesTotal.Store(int64(pp.scan.totalPages()))
	}
	pp.refPages(rq, +1)
	pp.active = append(pp.active, rq)
	if rq.q.HasFactPred() {
		pp.predQ = append(pp.predQ, rq)
	} else {
		pp.baseMask.Set(rq.slot)
	}
	pp.emit(ctrlBatch(pp.nextSeq(), ctrlStart, rq, nil))
	close(cmd.done)

	// A query needing zero pages (e.g. every partition pruned, every page
	// zone-mapped away, or an empty fact table) completes immediately.
	if rq.pagesLeft == 0 || (rq.pagesLeft < 0 && pp.scan.totalPages() == 0) {
		pp.finish(rq)
	}
}

// buildNeedPages intersects the query's column ranges with the scan's
// page synopses, yielding a scan-local per-partition bitmap of needed
// pages — the page-granular companion of needParts. Nil means "no
// page-level information" (all pages of needed partitions); a nil inner
// slice means every page of that partition. Pages without a frozen
// synopsis (the heap tail, sources with no zone maps) are always needed.
func (pp *preprocessor) buildNeedPages(rq *runningQuery) [][]bool {
	if pp.p.cfg.DisableZoneMaps || rq.pruneEmpty || len(rq.pruneRanges) == 0 {
		return nil
	}
	var np [][]bool
	for li := range pp.scan.parts {
		if pp.scan.parts[li].bounds == nil {
			continue
		}
		if pp.scan.static && !rq.needsPart(pp.scan.globalOf(li)) {
			continue // partition-pruned; the partition level handles it
		}
		n := pp.scan.pagesInPart(li)
		bits := make([]bool, n)
		pruned := false
		for pg := 0; pg < n; pg++ {
			bits[pg] = true
			for _, r := range rq.pruneRanges {
				if lo, hi, ok := pp.scan.pageBounds(li, pg, r.col); ok && (hi < r.min || lo > r.max) {
					bits[pg] = false
					pruned = true
					break
				}
			}
		}
		if !pruned {
			continue // every page intersects: same as no bitmap
		}
		if np == nil {
			np = make([][]bool, len(pp.scan.parts))
		}
		np[li] = bits
	}
	return np
}

// refPages adjusts the partition- and page-level reference counts for
// one query; register calls it with +1 and finish with -1, keeping the
// two levels symmetric by construction.
func (pp *preprocessor) refPages(rq *runningQuery, delta int) {
	if rq.pagesLeft < 0 {
		// Wrap-detected: every page of every local partition.
		for li := range pp.scan.parts {
			pp.partRefs[li] += delta
			pp.pageAllRefs[li] += delta
		}
		return
	}
	if rq.pruneEmpty {
		return // needs nothing anywhere
	}
	for li := range pp.scan.parts {
		if pp.scan.static && !rq.needsPart(pp.scan.globalOf(li)) {
			continue
		}
		if rq.needPages == nil || rq.needPages[li] == nil {
			pp.partRefs[li] += delta
			pp.pageAllRefs[li] += delta
			continue
		}
		bits := rq.needPages[li]
		if len(pp.pageRefs[li]) < len(bits) {
			pp.pageRefs[li] = append(pp.pageRefs[li], make([]int, len(bits)-len(pp.pageRefs[li]))...)
		}
		any := false
		for pg, b := range bits {
			if b {
				pp.pageRefs[li][pg] += delta
				any = true
			}
		}
		if any {
			pp.partRefs[li] += delta
		}
	}
}

// retire handles a canceled query: if it is still part of the continuous
// scan it is finalized early, exactly as if its completion point had been
// reached — the end-of-query control tuple flows through the pipeline in
// order, the Distributor's deliver is an idempotent no-op (Cancel already
// delivered ErrQueryCanceled), and Algorithm 2 recycles the slot. A query
// that already finished naturally is left alone.
func (pp *preprocessor) retire(rq *runningQuery) {
	for _, q := range pp.active {
		if q == rq {
			pp.finish(rq)
			return
		}
	}
}

// finish emits the end-of-query control tuple and removes the query from
// the Preprocessor's state (§3.3.2).
func (pp *preprocessor) finish(rq *runningQuery) {
	pp.baseMask.Clear(rq.slot)
	for i, q := range pp.active {
		if q == rq {
			pp.active = append(pp.active[:i], pp.active[i+1:]...)
			break
		}
	}
	for i, q := range pp.predQ {
		if q == rq {
			pp.predQ = append(pp.predQ[:i], pp.predQ[i+1:]...)
			break
		}
	}
	pp.refPages(rq, -1)
	pp.emit(ctrlBatch(pp.nextSeq(), ctrlEnd, rq, nil))
}

// checkWrapEnds finalizes unpartitioned queries whose full cycle is
// complete: the scan is back at the query's start position.
func (pp *preprocessor) checkWrapEnds(pos int64) {
	for i := 0; i < len(pp.active); i++ {
		rq := pp.active[i]
		if rq.pagesLeft >= 0 || pos != rq.startPos {
			continue
		}
		if !rq.sawStart {
			rq.sawStart = true
			continue
		}
		pp.finish(rq)
		i--
	}
}

// afterPage performs per-page accounting for countdown queries and
// finalizes those whose needed pages are fully covered. Only pages in a
// query's needed set are charged: partition-pruned partitions and
// zone-mapped-away pages pass through (the scan may still read them for
// other queries) without advancing the countdown.
func (pp *preprocessor) afterPage(part, page int) {
	for i := 0; i < len(pp.active); i++ {
		rq := pp.active[i]
		if rq.pagesLeft < 0 {
			if rq.pagesDone.Add(1) == 1 {
				rq.q.Trace.Mark(obs.StageFirstPage)
			}
			continue
		}
		if !rq.needsPart(pp.scan.globalOf(part)) || !rq.pageNeeded(part, page) {
			continue
		}
		rq.pagesLeft--
		if rq.pagesDone.Add(1) == 1 {
			rq.q.Trace.Mark(obs.StageFirstPage)
		}
		if rq.pagesLeft == 0 {
			pp.finish(rq)
			i--
		}
	}
}

// skipPart reports whether no active query needs scan-local partition i
// (§5: the continuous scan covers only the union of needed partitions).
func (pp *preprocessor) skipPart(i int) bool { return pp.partRefs[i] == 0 }

// skipPage reports whether no active query needs the given page of
// scan-local partition part. Pages beyond the tracked range (appended
// after every resident query registered) are conservatively scanned.
func (pp *preprocessor) skipPage(part, page int) bool {
	if pp.pageAllRefs[part] > 0 {
		return false
	}
	pr := pp.pageRefs[part]
	if page >= len(pr) {
		return false
	}
	return pr[page] == 0
}

// emitPage turns one fact page into data batches, initializing every
// tuple's bit-vector. It returns false when the pipeline is stopping.
func (pp *preprocessor) emitPage(vals []int64, n int) bool {
	ncols := pp.scan.ncols
	b := pp.p.pool.get(pp.stop)
	if b == nil {
		return false
	}
	pp.tuplesIn.Add(int64(n))
	pp.p.om.tuplesIn.Add(int64(n))
	for r := 0; r < n; r++ {
		row := vals[r*ncols : (r+1)*ncols]
		if b.full() {
			b.seq = pp.nextSeq()
			pp.tuplesOut.Add(int64(len(b.rows)))
			pp.p.om.tuplesOut.Add(int64(len(b.rows)))
			if !pp.emit(b) {
				return false
			}
			if b = pp.p.pool.get(pp.stop); b == nil {
				return false
			}
		}
		t := b.alloc()
		copy(t.row, row)
		t.bv.CopyFrom(pp.baseMask)

		mvccRow := pp.mvcc && (row[0] != 0 || row[1] != 0)
		if mvccRow {
			// Slow path: per-query snapshot visibility (§3.5).
			for _, rq := range pp.active {
				if !rq.q.HasFactPred() && !txn.Visible(row[0], row[1], rq.q.Snapshot) {
					t.bv.Clear(rq.slot)
				}
			}
		}
		for _, rq := range pp.predQ {
			if mvccRow && !txn.Visible(row[0], row[1], rq.q.Snapshot) {
				continue
			}
			pp.scratch.Fact = t.row
			if rq.q.FactPred.Eval(&pp.scratch) != 0 {
				t.bv.Set(rq.slot)
			}
		}
		if t.bv.IsZero() {
			b.unalloc()
		}
	}
	if len(b.rows) == 0 {
		pp.p.pool.put(b)
		return true
	}
	b.seq = pp.nextSeq()
	pp.tuplesOut.Add(int64(len(b.rows)))
	pp.p.om.tuplesOut.Add(int64(len(b.rows)))
	return pp.emit(b)
}
