package core

import (
	"sync"
	"time"
)

// startStages wires the Filter sequence between the Preprocessor output
// and the Distributor input according to the configured layout (§4) and
// returns the channel the Distributor should consume.
//
// Control batches pass through Stages untouched; batch sequence numbers
// let the Distributor restore global order, so Stages are free to process
// batches concurrently.
func (p *Pipeline) startStages(in chan *batch) chan *batch {
	switch p.cfg.Layout {
	case Vertical:
		// One single-threaded Stage per Filter, chained.
		cur := in
		for d := range p.dimStates {
			cur = p.startStage(cur, []int{d}, 1)
		}
		return cur
	case Hybrid:
		// Config.Stages chained Stages, Filters split round-robin in
		// dimension order, Workers divided among Stages.
		nStages := p.cfg.Stages
		if nStages > len(p.dimStates) {
			nStages = len(p.dimStates)
		}
		if nStages < 1 {
			nStages = 1
		}
		groups := make([][]int, nStages)
		for d := range p.dimStates {
			g := d * nStages / len(p.dimStates)
			groups[g] = append(groups[g], d)
		}
		perStage := p.cfg.Workers / nStages
		if perStage < 1 {
			perStage = 1
		}
		cur := in
		for _, g := range groups {
			cur = p.startStage(cur, g, perStage)
		}
		return cur
	default: // Horizontal
		// One Stage running the whole (dynamically ordered) Filter
		// sequence on Workers threads.
		return p.startStage(in, nil, p.cfg.Workers)
	}
}

// startStage launches workers consuming in and producing a new output
// channel. dims lists the Filters this Stage applies in order; nil means
// "use the pipeline's current optimized filter order" (horizontal mode).
func (p *Pipeline) startStage(in chan *batch, dims []int, workers int) chan *batch {
	out := make(chan *batch, p.cfg.QueueLen)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A worker panic fails the pipeline, not the process; the
			// siblings unwind through the stop signal.
			defer p.guard("stage")
			// Batch timings are sampled 1-in-8 per worker: two clock
			// reads per ~µs-scale batch would be the single largest
			// telemetry cost on the hot loop, and the sampled mean is
			// the same number. The disabled path pays one nil test.
			var sampleTick uint
			for b := range in {
				if b.ctrl == nil {
					order := dims
					if order == nil {
						order = *p.filterOrder.Load()
					}
					timed := p.om.filterBatch != nil && sampleTick&7 == 0
					sampleTick++
					var probeStart time.Time
					if timed {
						probeStart = time.Now()
					}
					for _, d := range order {
						if len(b.rows) == 0 {
							break
						}
						p.dimStates[d].filterBatch(b)
					}
					if timed {
						p.om.filterBatch.ObserveSince(probeStart)
					}
					if len(b.rows) == 0 {
						// Fully filtered: recycle here, but the batch
						// must still reach the Distributor to keep the
						// sequence contiguous.
						b.rows = b.rows[:0]
					}
				}
				select {
				case out <- b:
				case <-p.stopCh:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
