package core

import (
	"math/rand"
	"testing"

	"cjoin/internal/bitvec"
)

// TestDimTableParity is the property test for the dimht Filter store: a
// random interleaving of admissions, removals, and batch filters is
// applied to a dimht-backed dimState and a map-backed one in lockstep,
// and every observable — table size, reference count, surviving tuples,
// their bit-vectors, attached dimension rows, and probe/drop statistics
// — must agree between the two implementations.
func TestDimTableParity(t *testing.T) {
	const (
		maxConc = 96 // multi-word vectors: covers the general path
		dimRows = 60
		rounds  = 400
	)
	star := miniStar(t, dimRows)
	cow := newTestDimState(star, 0, maxConc, false)
	leg := newTestDimState(star, 0, maxConc, true)

	rng := rand.New(rand.NewSource(20090824))
	type admitted struct{ referenced bool }
	active := map[int]admitted{}

	filterPair := func() {
		mkBatch := func() *batch {
			b := newBatch(32, 2, bitvec.Words(maxConc), 1)
			rng2 := rand.New(rand.NewSource(int64(len(active))*1000 + rng.Int63n(1000)))
			for i := 0; i < 32; i++ {
				tp := b.alloc()
				tp.row[0] = rng2.Int63n(dimRows + 20) // some keys miss the table
				for slot := range active {
					if rng2.Intn(2) == 0 {
						tp.bv.Set(slot)
					}
				}
				if tp.bv.IsZero() {
					b.unalloc()
				}
			}
			return b
		}
		b1 := mkBatch()
		b2 := &batch{rows: append([]tuple(nil), b1.rows...), slots: make([]int32, len(b1.rows))}
		// Deep-copy tuples so the two filters do not share bit-vectors.
		for i := range b2.rows {
			b2.rows[i].bv = b1.rows[i].bv.Clone()
			b2.rows[i].dims = make([][]int64, 1)
		}

		cow.filterBatch(b1)
		leg.filterBatch(b2)

		if len(b1.rows) != len(b2.rows) {
			t.Fatalf("survivor count dimht=%d map=%d", len(b1.rows), len(b2.rows))
		}
		for i := range b1.rows {
			t1, t2 := &b1.rows[i], &b2.rows[i]
			if t1.row[0] != t2.row[0] {
				t.Fatalf("row order diverged at %d: %d vs %d", i, t1.row[0], t2.row[0])
			}
			if !t1.bv.Equal(t2.bv) {
				t.Fatalf("bits diverged for key %d: %v vs %v", t1.row[0], t1.bv, t2.bv)
			}
			d1, d2 := t1.dims[0], t2.dims[0]
			if (d1 == nil) != (d2 == nil) {
				t.Fatalf("attachment diverged for key %d: %v vs %v", t1.row[0], d1, d2)
			}
			if d1 != nil && (d1[0] != d2[0] || d1[1] != d2[1]) {
				t.Fatalf("attached rows diverged for key %d: %v vs %v", t1.row[0], d1, d2)
			}
		}
	}

	check := func() {
		if cow.size() != leg.size() {
			t.Fatalf("size dimht=%d map=%d", cow.size(), leg.size())
		}
		if cow.refCount() != leg.refCount() {
			t.Fatalf("refs dimht=%d map=%d", cow.refCount(), leg.refCount())
		}
		s1, s2 := cow.stats(), leg.stats()
		if s1.Probes != s2.Probes || s1.Drops != s2.Drops || s1.TuplesIn != s2.TuplesIn {
			t.Fatalf("stats diverged: dimht=%+v map=%+v", s1, s2)
		}
	}

	for round := 0; round < rounds; round++ {
		switch op := rng.Intn(3); {
		case op == 0 && len(active) < maxConc/2:
			// Admit a fresh slot: referencing with random selectivity, or
			// non-referencing.
			slot := rng.Intn(maxConc)
			if _, used := active[slot]; used {
				continue
			}
			if rng.Intn(3) == 0 {
				if err := cow.admit(slot, nil); err != nil {
					t.Fatal(err)
				}
				if err := leg.admit(slot, nil); err != nil {
					t.Fatal(err)
				}
				active[slot] = admitted{referenced: false}
			} else {
				pred := predLt(rng.Int63n(6))
				if err := cow.admit(slot, pred); err != nil {
					t.Fatal(err)
				}
				if err := leg.admit(slot, pred); err != nil {
					t.Fatal(err)
				}
				active[slot] = admitted{referenced: true}
			}
		case op == 1 && len(active) > 0:
			// Remove a random active slot.
			for slot, a := range active {
				e1 := cow.remove(slot, a.referenced)
				e2 := leg.remove(slot, a.referenced)
				if e1 != e2 {
					t.Fatalf("emptied diverged for slot %d: %v vs %v", slot, e1, e2)
				}
				delete(active, slot)
				break
			}
		default:
			filterPair()
		}
		check()
	}
}
