package core

import (
	"runtime"
	"sync"
	"testing"

	"cjoin/internal/bitvec"
)

// TestFilterLockFreeUnderChurn drives filterBatch from concurrent Stage
// workers while the pipeline-manager side admits and removes queries as
// fast as it can. With the dimht store the probe path takes no lock; run
// under -race this test verifies that copy-on-write publication alone is
// enough for safe concurrent access, and the attached-row invariant
// checks that workers never observe a torn snapshot.
func TestFilterLockFreeUnderChurn(t *testing.T) {
	star := miniStar(t, 64)
	ds := newTestDimState(star, 0, 64, false)

	const workers = 3
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := newBatch(64, 2, bitvec.Words(64), 1)
				for i := 0; i < 64; i++ {
					tp := b.alloc()
					tp.row[0] = (seed + int64(i)) % 80 // some keys miss
					for s := 0; s < 8; s++ {
						tp.bv.Set(s)
					}
				}
				ds.filterBatch(b)
				for i := range b.rows {
					tp := &b.rows[i]
					if tp.dims[0] != nil && tp.dims[0][0] != tp.row[0] {
						panic("attached dimension row does not match the probed key")
					}
				}
				runtime.Gosched()
			}
		}(int64(w))
	}

	// Churn all 8 slots through admit/remove cycles: half referencing
	// with varying selectivity, half non-referencing.
	for i := 0; i < 150; i++ {
		for slot := 0; slot < 8; slot++ {
			if slot%2 == 0 {
				if err := ds.admit(slot, predLt(int64(1+i%5))); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := ds.admit(slot, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		for slot := 0; slot < 8; slot++ {
			ds.remove(slot, slot%2 == 0)
		}
	}
	close(stop)
	wg.Wait()

	if ds.size() != 0 || ds.refCount() != 0 {
		t.Fatalf("churn left size=%d refs=%d", ds.size(), ds.refCount())
	}
}

// TestDecayStatsConcurrentAdds exercises decayStats against concurrent
// Stage-worker increments. The old Load()/Store(x/2) pairs silently
// discarded any Add landing between the two calls; the CAS loop retries
// instead, so after every adder finishes and a final decay runs, exactly
// half the settled total must remain.
func TestDecayStatsConcurrentAdds(t *testing.T) {
	star := miniStar(t, 5)
	ds := newTestDimState(star, 0, 8, false)

	const adders = 4
	const perAdder = 5000
	stop := make(chan struct{})
	var decayer sync.WaitGroup
	decayer.Add(1)
	go func() {
		defer decayer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ds.decayStats()
				runtime.Gosched()
			}
		}
	}()
	var adds sync.WaitGroup
	for a := 0; a < adders; a++ {
		adds.Add(1)
		go func() {
			defer adds.Done()
			for i := 0; i < perAdder; i++ {
				ds.tuplesIn.Add(1)
			}
		}()
	}
	adds.Wait()
	close(stop)
	decayer.Wait()

	settled := ds.tuplesIn.Load()
	if settled < 0 || settled > adders*perAdder {
		t.Fatalf("counter out of range after concurrent decay: %d", settled)
	}
	ds.decayStats()
	if got := ds.tuplesIn.Load(); got != settled/2 {
		t.Fatalf("quiescent decay %d -> %d, want %d", settled, got, settled/2)
	}
}
