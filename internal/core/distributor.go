package core

import (
	"errors"

	"cjoin/internal/agg"
	"cjoin/internal/expr"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/query"
)

// ErrPipelineStopped is returned to queries still in flight when the
// pipeline shuts down.
var ErrPipelineStopped = errors.New("core: pipeline stopped")

// distributor consumes filtered batches, restores sequence order, routes
// every surviving fact tuple to the aggregation operator of each query
// whose bit is set (§3.2.2), and finalizes queries when their end-of-query
// control tuple arrives (§3.3.2).
//
// The reorder buffer enforces the §3.3.3 ordering property: a control
// tuple placed before (after) a fact tuple by the Preprocessor is
// processed before (after) it here, no matter how Stage workers
// interleaved the batches in between.
type distributor struct {
	p       *Pipeline
	in      chan *batch
	expect  uint64
	pending map[uint64]*batch
	queries []*runningQuery // slot-indexed; learned from control tuples
	scratch expr.Joined
	routed  int64
}

func newDistributor(p *Pipeline, in chan *batch) *distributor {
	return &distributor{
		p:       p,
		in:      in,
		pending: make(map[uint64]*batch),
		queries: make([]*runningQuery, p.cfg.MaxConcurrent),
		scratch: expr.Joined{Dims: make([][]int64, len(p.star.Dims))},
	}
}

func (d *distributor) run() {
	// On panic the guard records the typed failure and the failure sweep
	// owns delivery; the orphan sweep below is the clean-shutdown path.
	defer d.p.guard("distributor")
	for b := range d.in {
		d.p.cfg.Fault.PanicPoint(fault.SiteDistributor)
		d.pending[b.seq] = b
		for {
			nb, ok := d.pending[d.expect]
			if !ok {
				break
			}
			delete(d.pending, d.expect)
			d.expect++
			d.process(nb)
		}
	}
	// Pipeline stopping: fail whatever is still registered — with the
	// typed failure cause when the shutdown is a preprocessor failure
	// (the closed input is how it reaches us), ErrPipelineStopped on a
	// clean Stop.
	for _, rq := range d.queries {
		if rq != nil {
			rq.deliver(nil, d.p.terminalErr())
		}
	}
}

func (d *distributor) process(b *batch) {
	if b.ctrl != nil {
		d.control(b.ctrl)
		return
	}
	for i := range b.rows {
		d.route(&b.rows[i])
	}
	d.p.pool.put(b)
}

func (d *distributor) control(c *control) {
	switch c.kind {
	case ctrlStart:
		// Set up the query's aggregation operator (§3.3.1: the control
		// tuple precedes any result tuple for the query). Sink queries
		// route tuples to their fact-to-fact join operator instead (§5).
		rq := c.rq
		if rq.sink == nil {
			if d.p.cfg.SortAgg {
				rq.aggr = agg.NewSorted(rq.q.Aggs, rq.q.GroupBy)
			} else {
				rq.aggr = agg.NewHash(rq.q.Aggs, rq.q.GroupBy)
			}
		}
		d.queries[rq.slot] = rq
	case ctrlEnd:
		rq := c.rq
		d.queries[rq.slot] = nil
		// The query's scan window just closed on this pipeline. Last
		// shard wins: the logical query's cycle completes when its
		// slowest shard does.
		rq.q.Trace.MarkLatest(obs.StageCycleComplete)
		if rq.sink != nil {
			rq.deliver(nil, nil)
			rq.sink.Finalize(nil)
		} else {
			results := rq.aggr.Results()
			query.SortResults(results, rq.q.OrderBy)
			results = rq.q.ApplyLimit(results)
			rq.deliver(results, nil)
		}
		// Hand the slot to the pipeline manager for Algorithm 2 cleanup.
		d.p.cleanupCh <- rq
	}
}

// route feeds one surviving tuple to every query whose bit is set,
// reading dimension attributes through the snapshot rows attached by the
// Filters.
func (d *distributor) route(t *tuple) {
	d.scratch.Fact = t.row
	copy(d.scratch.Dims, t.dims)
	t.bv.ForEach(func(slot int) bool {
		if rq := d.queries[slot]; rq != nil {
			if rq.sink != nil {
				rq.sink.Consume(&d.scratch)
			} else {
				rq.aggr.Add(&d.scratch)
			}
			d.routed++
		}
		return true
	})
}
