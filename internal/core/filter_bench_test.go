package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/expr"
)

// The FilterProbe benchmarks isolate the CJOIN hot loop — one hash probe
// and one bitwise AND per fact tuple per dimension (§3.2.2) — outside
// the pipeline, comparing the lock-free dimht store against the legacy
// map baseline across the bit-vector width sweep. Setup admits a query mix where
// every probe hits (select-all predicates), so the batch is a fixed
// point of filterBatch and each iteration measures the pure probe path.

const (
	benchDimRows  = 1 << 15 // 32768 stored entries: larger than L2, probe misses cache
	benchBatchLen = 4096
)

// predTrue selects every dimension row (v >= 0; v is k%5).
func predTrue() expr.Node {
	return expr.Bin{Op: expr.Ge, L: expr.Col{Slot: 0, Idx: 1, Name: "v"}, R: expr.Const{V: 0}}
}

// benchDimState builds a dimension Filter with benchDimRows stored
// entries and an admitted mix of 12 referencing and 4 non-referencing
// queries.
func benchDimState(b *testing.B, maxConc int, legacyMap bool) *dimState {
	b.Helper()
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 0, []catalog.Column{{Name: "fk"}, {Name: "m"}})
	dim := catalog.NewTable(dev, "d", 0, []catalog.Column{{Name: "k"}, {Name: "v"}})
	for k := int64(0); k < benchDimRows; k++ {
		dim.Heap.Append([]int64{k, k % 5})
	}
	star, err := catalog.NewStar(fact, []*catalog.Table{dim}, []int{0}, []int{0})
	if err != nil {
		b.Fatal(err)
	}
	ds := newTestDimState(star, 0, maxConc, legacyMap)
	for slot := 0; slot < 12; slot++ {
		if err := ds.admit(slot, predTrue()); err != nil {
			b.Fatal(err)
		}
	}
	for slot := 12; slot < 16; slot++ {
		ds.admit(slot, nil)
	}
	return ds
}

// benchBatch fills a batch whose tuples all hit the table and carry every
// active query bit, so filterBatch leaves the batch unchanged.
func benchBatch(maxConc int) *batch {
	rng := rand.New(rand.NewSource(42))
	bt := newBatch(benchBatchLen, 2, bitvec.Words(maxConc), 1)
	for i := 0; i < benchBatchLen; i++ {
		tp := bt.alloc()
		tp.row[0] = rng.Int63n(benchDimRows)
		for slot := 0; slot < 16; slot++ {
			tp.bv.Set(slot)
		}
	}
	return bt
}

func BenchmarkFilterProbe(b *testing.B) {
	for _, maxConc := range []int{64, 128, 256} {
		for _, impl := range []struct {
			name   string
			legacy bool
		}{{"dimht", false}, {"map", true}} {
			b.Run(fmt.Sprintf("mc=%d/table=%s", maxConc, impl.name), func(b *testing.B) {
				ds := benchDimState(b, maxConc, impl.legacy)
				bt := benchBatch(maxConc)
				b.SetBytes(benchBatchLen) // throughput in tuples: 1 "byte" = 1 tuple
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ds.filterBatch(bt)
				}
				if len(bt.rows) != benchBatchLen {
					b.Fatalf("batch not a fixed point: %d rows", len(bt.rows))
				}
			})
		}
	}
}

// BenchmarkFilterProbeParallel runs the same probe loop from concurrent
// Stage workers sharing one Filter — the configuration where the legacy
// baseline additionally pays RWMutex cache-line traffic per batch.
func BenchmarkFilterProbeParallel(b *testing.B) {
	for _, impl := range []struct {
		name   string
		legacy bool
	}{{"dimht", false}, {"map", true}} {
		b.Run("table="+impl.name, func(b *testing.B) {
			ds := benchDimState(b, 64, impl.legacy)
			b.SetBytes(benchBatchLen)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				bt := benchBatch(64)
				for pb.Next() {
					ds.filterBatch(bt)
				}
			})
		})
	}
}

// BenchmarkFilterProbeSkip measures the probe-skip path (§3.2.2): tuples
// relevant only to non-referencing queries bypass the hash probe. On the
// single-word fast path this is one AND-NOT and one compare per tuple.
func BenchmarkFilterProbeSkip(b *testing.B) {
	for _, impl := range []struct {
		name   string
		legacy bool
	}{{"dimht", false}, {"map", true}} {
		b.Run("table="+impl.name, func(b *testing.B) {
			ds := benchDimState(b, 64, impl.legacy)
			bt := newBatch(benchBatchLen, 2, bitvec.Words(64), 1)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < benchBatchLen; i++ {
				tp := bt.alloc()
				tp.row[0] = rng.Int63n(benchDimRows)
				tp.bv.Set(12 + i%4) // non-referencing slots only
			}
			b.SetBytes(benchBatchLen)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ds.filterBatch(bt)
			}
			if st := ds.stats(); st.Probes != 0 {
				b.Fatalf("skip path probed %d times", st.Probes)
			}
		})
	}
}
