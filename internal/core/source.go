package core

// PageSource abstracts the physical representation behind the continuous
// fact scan. *storage.HeapFile satisfies it, and so does a column-store
// scan/merge (internal/colstore), which is how the §5 column-store
// extension plugs in: "the continuous fact table scan can be realized
// with a continuous scan/merge of only those fact table columns that are
// accessed by the current query mix".
//
// A source must be stable: pages keep their positions across cycles
// (§3.3.3). Row width must match the star's fact schema; columns the
// query mix never touches may hold arbitrary values.
type PageSource interface {
	NumCols() int
	RowsPerPage() int
	NumPages() int
	ReadPage(page int, dst []int64, scratch []byte) (int, error)
}
