package core

// PageSource abstracts the physical representation behind the continuous
// fact scan. *storage.HeapFile satisfies it, and so does a column-store
// scan/merge (internal/colstore), which is how the §5 column-store
// extension plugs in: "the continuous fact table scan can be realized
// with a continuous scan/merge of only those fact table columns that are
// accessed by the current query mix".
//
// A source must be stable: pages keep their positions across cycles
// (§3.3.3). Row width must match the star's fact schema; columns the
// query mix never touches may hold arbitrary values.
type PageSource interface {
	NumCols() int
	RowsPerPage() int
	NumPages() int
	ReadPage(page int, dst []int64, scratch []byte) (int, error)
}

// BoundsSource is the optional zone-map face of a PageSource: per-page
// min/max synopses for a column, used to skip pages no resident query can
// match. *storage.HeapFile satisfies it; sources that don't (e.g. the
// column-store scan/merge) simply get no page-level pruning. ok must be
// false whenever the page's contents are not frozen (the heap tail) or
// unknown — the scan then treats the page as matching everything.
type BoundsSource interface {
	PageColBounds(page, col int) (min, max int64, ok bool)
}

// boundsOf returns src's zone-map face, or nil. Bounds are captured from
// the unwrapped source: fault wrappers must preserve geometry, and bounds
// only ever gate which pages are read, never what is read.
func boundsOf(src PageSource) BoundsSource {
	if b, ok := src.(BoundsSource); ok {
		return b
	}
	return nil
}
