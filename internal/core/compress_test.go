package core_test

import (
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func TestCompressedFactMatchesReference(t *testing.T) {
	// §5 "Compressed Tables": the continuous scan reads RLE pages and
	// decompresses on the fly; results must be identical to the raw
	// representation.
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 101, CompressFact: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Lineorder.Heap.FlushedBytes() >= int64(ds.Lineorder.Heap.FlushedPages())*8192 {
		t.Fatal("fact table did not compress")
	}
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
	for _, q := range bindWorkload(t, ds, 8, 0.1, 9) {
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("compressed-fact query diverges: %s", q.SQL)
		}
	}
}

func TestProbeSkipAblationEquivalence(t *testing.T) {
	// Disabling the probe-skip optimization must never change results —
	// only the probe count (the filtering invariant holds either way).
	ds := dataset(t, 2000)
	for _, disable := range []bool{false, true} {
		p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, DisableProbeSkip: disable})
		for _, q := range bindWorkload(t, ds, 5, 0.1, 13) {
			h, err := p.Submit(q)
			if err != nil {
				t.Fatal(err)
			}
			res := h.Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			want, _ := ref.Execute(q)
			if !ref.ResultsEqual(res.Rows, want) {
				t.Fatalf("disable=%v diverges: %s", disable, q.SQL)
			}
		}
		p.Stop()
	}
}

func TestProbeSkipReducesProbes(t *testing.T) {
	// Deterministic skip scenario: one query keeps the part filter
	// active but carries a fact predicate that never holds (lo_quantity
	// is always >= 1), so no tuple ever has its bit. A concurrent
	// date-only query keeps tuples flowing. With the probe-skip test,
	// every tuple bypasses the part filter (bτ ∧ ¬b_part == 0); without
	// it, every tuple probes.
	partProbes := func(disable bool) int64 {
		// A slow device guarantees the two queries' scan cycles overlap:
		// one cycle takes ~20 ms, admissions take ~1 ms.
		ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 2000, Seed: 101,
			Disk: disk.Config{SeqBytesPerSec: 16 << 20}})
		if err != nil {
			t.Fatal(err)
		}
		p := startPipeline(t, ds, core.Config{MaxConcurrent: 8, DisableProbeSkip: disable})
		qDate, err := query.ParseBind(
			"SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey", ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		qPart, err := query.ParseBind(
			"SELECT COUNT(*) FROM lineorder, part WHERE lo_partkey = p_partkey AND lo_quantity < 1", ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		h1, err := p.Submit(qDate)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := p.Submit(qPart)
		if err != nil {
			t.Fatal(err)
		}
		if res := h2.Wait(); res.Err != nil || len(res.Rows) != 0 && res.Rows[0].Ints[0] != 0 {
			t.Fatalf("impossible predicate returned rows: %v err=%v", res.Rows, res.Err)
		}
		if res := h1.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		var probes int64
		for _, f := range p.Stats().Filters {
			if f.Dimension == "part" {
				probes = f.Probes
			}
		}
		p.Stop()
		return probes
	}
	with, without := partProbes(false), partProbes(true)
	if with != 0 {
		t.Fatalf("probe-skip should eliminate part probes, saw %d", with)
	}
	if without == 0 {
		t.Fatal("ablated pipeline should probe the part filter")
	}
}
