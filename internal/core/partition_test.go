package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func partitionedDataset(t testing.TB, rows, parts int) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 81, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPartitionedResultsMatchReference(t *testing.T) {
	ds := partitionedDataset(t, 3000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
	for _, q := range bindWorkload(t, ds, 10, 0.1, 83) {
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("partitioned query diverges: %s", q.SQL)
		}
	}
}

func TestPartitionPruningTerminatesEarly(t *testing.T) {
	// A query restricted to a narrow date range must scan only the
	// partitions overlapping that range (§5) — observable through the
	// pages the preprocessor charged to it.
	ds := partitionedDataset(t, 4000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})

	// First quarter of the date span: exactly one partition.
	narrow := fmt.Sprintf(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
		ds.DateKeys[0], ds.DateKeys[len(ds.DateKeys)/8])
	qNarrow, err := query.ParseBind(narrow, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	hNarrow, err := p.Submit(qNarrow)
	if err != nil {
		t.Fatal(err)
	}
	resNarrow := hNarrow.Wait()
	if resNarrow.Err != nil {
		t.Fatal(resNarrow.Err)
	}
	want, _ := ref.Execute(qNarrow)
	if !ref.ResultsEqual(resNarrow.Rows, want) {
		t.Fatal("pruned query diverges from reference")
	}

	// An unrestricted query for comparison.
	wide, err := query.ParseBind(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	hWide, err := p.Submit(wide)
	if err != nil {
		t.Fatal(err)
	}
	if res := hWide.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}

	narrowPages := hNarrow.PagesScanned()
	widePages := hWide.PagesScanned()
	if narrowPages*2 >= widePages {
		t.Fatalf("pruning ineffective: narrow=%d pages, wide=%d pages", narrowPages, widePages)
	}
}

func TestPruningToZeroPartitions(t *testing.T) {
	// A predicate selecting no dimension tuples needs zero pages and
	// completes immediately with an empty result.
	ds := partitionedDataset(t, 1000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q, err := query.ParseBind(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 1 AND 2 GROUP BY d_year", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(res.Rows))
	}
	if h.PagesScanned() != 0 {
		t.Fatalf("zero-partition query scanned %d pages", h.PagesScanned())
	}
}

// TestPartSubsetScan verifies the partition-dealt shard primitive: a
// pipeline restricted to a PartSubset aggregates exactly its partitions'
// rows, charges exactly their pages, prunes within the subset, and
// completes instantly when a query's needed partitions all live
// elsewhere.
func TestPartSubsetScan(t *testing.T) {
	ds := partitionedDataset(t, 3000, 4)
	parts := ds.Star.Partitions()
	subset := []int{0, 2}
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, PartSubset: subset})

	wantRows := parts[0].Heap.NumRows() + parts[2].Heap.NumRows()
	wantPages := int64(parts[0].Heap.NumPages() + parts[2].Heap.NumPages())
	q, err := query.ParseBind("SELECT COUNT(*) AS n FROM lineorder", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Ints[0] != wantRows {
		t.Fatalf("subset COUNT(*) = %v, want %d (partitions 0 and 2 only)", res.Rows, wantRows)
	}
	if h.PagesScanned() != wantPages {
		t.Fatalf("subset scanned %d pages, partitions 0+2 hold %d", h.PagesScanned(), wantPages)
	}

	// Pruning within the subset: a query confined to partition 0's key
	// range must charge only partition 0's pages.
	narrow := fmt.Sprintf(
		"SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d",
		parts[0].MinKey, parts[0].MaxKey)
	qn, err := query.ParseBind(narrow, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := p.Submit(qn)
	if err != nil {
		t.Fatal(err)
	}
	if res := hn.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := hn.PagesScanned(); got != int64(parts[0].Heap.NumPages()) {
		t.Fatalf("subset-pruned query scanned %d pages, partition 0 holds %d", got, parts[0].Heap.NumPages())
	}

	// A query needing only partition 1 — dealt to another shard — has
	// nothing to scan here: zero pages, instant empty result.
	other := fmt.Sprintf(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
		parts[1].MinKey, parts[1].MaxKey)
	qo, err := query.ParseBind(other, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	ho, err := p.Submit(qo)
	if err != nil {
		t.Fatal(err)
	}
	if res := ho.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if ho.PagesScanned() != 0 {
		t.Fatalf("foreign-partition query scanned %d pages on this subset", ho.PagesScanned())
	}
}

// TestPartSubsetValidation pins the configuration contract.
func TestPartSubsetValidation(t *testing.T) {
	pds := partitionedDataset(t, 500, 4)
	uds := partitionedDataset(t, 500, 1) // single heap, unpartitioned
	cases := []struct {
		name   string
		ds     *ssb.Dataset
		subset []int
	}{
		{"unpartitioned star", uds, []int{0}},
		{"empty subset", pds, []int{}},
		{"out of range", pds, []int{0, 4}},
		{"negative", pds, []int{-1}},
		{"duplicate", pds, []int{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := core.NewPipeline(tc.ds.Star, core.Config{MaxConcurrent: 4, PartSubset: tc.subset}); err == nil {
				t.Fatalf("PartSubset %v over %q accepted", tc.subset, tc.name)
			}
		})
	}
}

func TestSkippedPartitionsNotScanned(t *testing.T) {
	// With only narrow queries active, the continuous scan must skip
	// partitions nobody needs: total pages read stays near the needed
	// partition's size, not the full table.
	ds := partitionedDataset(t, 4000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})
	rng := rand.New(rand.NewSource(97))
	_ = rng

	narrow := fmt.Sprintf(
		"SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d",
		ds.DateKeys[0], ds.DateKeys[10])
	q, err := query.ParseBind(narrow, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	stats := p.Stats()
	total := 0
	for _, part := range ds.Star.Partitions() {
		total += part.Heap.NumPages()
	}
	if stats.PagesRead >= int64(total) {
		t.Fatalf("scan read %d pages, table has %d: no partitions skipped", stats.PagesRead, total)
	}
}
