package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func partitionedDataset(t testing.TB, rows, parts int) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 81, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPartitionedResultsMatchReference(t *testing.T) {
	ds := partitionedDataset(t, 3000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
	for _, q := range bindWorkload(t, ds, 10, 0.1, 83) {
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("partitioned query diverges: %s", q.SQL)
		}
	}
}

func TestPartitionPruningTerminatesEarly(t *testing.T) {
	// A query restricted to a narrow date range must scan only the
	// partitions overlapping that range (§5) — observable through the
	// pages the preprocessor charged to it.
	ds := partitionedDataset(t, 4000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})

	// First quarter of the date span: exactly one partition.
	narrow := fmt.Sprintf(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
		ds.DateKeys[0], ds.DateKeys[len(ds.DateKeys)/8])
	qNarrow, err := query.ParseBind(narrow, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	hNarrow, err := p.Submit(qNarrow)
	if err != nil {
		t.Fatal(err)
	}
	resNarrow := hNarrow.Wait()
	if resNarrow.Err != nil {
		t.Fatal(resNarrow.Err)
	}
	want, _ := ref.Execute(qNarrow)
	if !ref.ResultsEqual(resNarrow.Rows, want) {
		t.Fatal("pruned query diverges from reference")
	}

	// An unrestricted query for comparison.
	wide, err := query.ParseBind(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	hWide, err := p.Submit(wide)
	if err != nil {
		t.Fatal(err)
	}
	if res := hWide.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}

	narrowPages := hNarrow.PagesScanned()
	widePages := hWide.PagesScanned()
	if narrowPages*2 >= widePages {
		t.Fatalf("pruning ineffective: narrow=%d pages, wide=%d pages", narrowPages, widePages)
	}
}

func TestPruningToZeroPartitions(t *testing.T) {
	// A predicate selecting no dimension tuples needs zero pages and
	// completes immediately with an empty result.
	ds := partitionedDataset(t, 1000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q, err := query.ParseBind(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 1 AND 2 GROUP BY d_year", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected empty result, got %d rows", len(res.Rows))
	}
	if h.PagesScanned() != 0 {
		t.Fatalf("zero-partition query scanned %d pages", h.PagesScanned())
	}
}

func TestSkippedPartitionsNotScanned(t *testing.T) {
	// With only narrow queries active, the continuous scan must skip
	// partitions nobody needs: total pages read stays near the needed
	// partition's size, not the full table.
	ds := partitionedDataset(t, 4000, 4)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})
	rng := rand.New(rand.NewSource(97))
	_ = rng

	narrow := fmt.Sprintf(
		"SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d",
		ds.DateKeys[0], ds.DateKeys[10])
	q, err := query.ParseBind(narrow, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	stats := p.Stats()
	total := 0
	for _, part := range ds.Star.Partitions() {
		total += part.Heap.NumPages()
	}
	if stats.PagesRead >= int64(total) {
		t.Fatalf("scan read %d pages, table has %d: no partitions skipped", stats.PagesRead, total)
	}
}
