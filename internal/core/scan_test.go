package core

import (
	"testing"

	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/storage"
)

func partStar(t *testing.T, rowsPerPart []int64) *catalog.Star {
	t.Helper()
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 0, []catalog.Column{{Name: "pk"}, {Name: "v"}})
	dim := catalog.NewTable(dev, "d", 0, []catalog.Column{{Name: "k"}})
	dim.Heap.Append([]int64{1})
	star, err := catalog.NewStar(fact, []*catalog.Table{dim}, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	var parts []catalog.FactPartition
	next := int64(0)
	for pi, n := range rowsPerPart {
		h := storage.CreateHeap(dev, 2)
		for i := int64(0); i < n; i++ {
			h.Append([]int64{int64(pi), next})
			next++
		}
		parts = append(parts, catalog.FactPartition{Heap: h, MinKey: int64(pi), MaxKey: int64(pi)})
	}
	if err := star.SetPartitions(0, parts); err != nil {
		t.Fatal(err)
	}
	return star
}

func TestFactScanCyclesOverPartitions(t *testing.T) {
	star := partStar(t, []int64{700, 300, 500}) // 511 rows/page → 2+1+1 pages
	s := newFactScan(star, nil, nil, nil)
	// Two full cycles are consumed: the wrap flag arrives with the first
	// page of the next cycle.
	total := int64(2 * 1500)
	var seen int64
	var prev int64 = -1
	wraps := 0
	for wraps < 2 {
		vals, n, pos, _, _, wrapped, err := s.nextPage(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped {
			wraps++
			if wraps == 2 {
				break
			}
			prev = -1
		}
		_ = pos
		for i := 0; i < n; i++ {
			v := vals[i*2+1]
			if v != prev+1 {
				t.Fatalf("row order broken: %d after %d", v, prev)
			}
			prev = v
			seen++
		}
	}
	if seen != total {
		t.Fatalf("saw %d rows over two full cycles, want %d", seen, total)
	}
}

func TestFactScanSkipsPartitions(t *testing.T) {
	star := partStar(t, []int64{400, 400, 400})
	s := newFactScan(star, nil, nil, nil)
	skipMiddle := func(p int) bool { return p == 1 }
	seenParts := map[int]bool{}
	for i := 0; i < 10; i++ {
		vals, n, _, part, _, _, err := s.nextPage(skipMiddle, nil)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("scan starved")
		}
		seenParts[part] = true
		if vals[0] == 1 {
			t.Fatal("row from skipped partition delivered")
		}
	}
	if seenParts[1] || !seenParts[0] || !seenParts[2] {
		t.Fatalf("partitions visited: %v", seenParts)
	}
}

func TestFactScanAllSkipped(t *testing.T) {
	star := partStar(t, []int64{100})
	s := newFactScan(star, nil, nil, nil)
	_, n, _, _, _, _, err := s.nextPage(func(int) bool { return true }, nil)
	if err != nil || n != 0 {
		t.Fatalf("fully skipped scan must return n=0: n=%d err=%v", n, err)
	}
}

func TestFactScanPositionsStable(t *testing.T) {
	star := partStar(t, []int64{700, 300})
	s := newFactScan(star, nil, nil, nil)
	var firstCycle, secondCycle []int64
	for {
		_, _, pos, _, _, wrapped, err := s.nextPage(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wrapped {
			// The wrap flag arrives with cycle 2's first page.
			secondCycle = append(secondCycle, pos)
			break
		}
		firstCycle = append(firstCycle, pos)
	}
	for len(secondCycle) < len(firstCycle) {
		_, _, pos, _, _, _, err := s.nextPage(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		secondCycle = append(secondCycle, pos)
	}
	// §3.3.3: "the continuous scan returns fact tuples in the same order
	// once resumed".
	for i := range firstCycle {
		if secondCycle[i] != firstCycle[i] {
			t.Fatalf("cycle 2 position %d = %d, want %d", i, secondCycle[i], firstCycle[i])
		}
	}
}

func TestOptimizerOrdersBySelectivity(t *testing.T) {
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 0, []catalog.Column{{Name: "a"}, {Name: "b"}, {Name: "m"}})
	d1 := catalog.NewTable(dev, "d1", 0, []catalog.Column{{Name: "k"}})
	d2 := catalog.NewTable(dev, "d2", 0, []catalog.Column{{Name: "k"}})
	d1.Heap.Append([]int64{1})
	d2.Heap.Append([]int64{1})
	star, err := catalog.NewStar(fact, []*catalog.Table{d1, d2}, []int{0, 1}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(star, Config{MaxConcurrent: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Fake both filters active with measured drop rates: d2 drops more.
	p.dimStates[0].store.ForceRefs(1)
	p.dimStates[1].store.ForceRefs(1)
	order := []int{0, 1}
	p.filterOrder.Store(&order)
	p.dimStates[0].tuplesIn.Store(1000)
	p.dimStates[0].drops.Store(100)
	p.dimStates[1].tuplesIn.Store(1000)
	p.dimStates[1].drops.Store(900)

	p.ReorderFilters()
	got := *p.filterOrder.Load()
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Fatalf("order after reorder: %v (want [1 0])", got)
	}
	// Counters must have decayed.
	if p.dimStates[1].drops.Load() != 450 {
		t.Fatalf("decay missing: %d", p.dimStates[1].drops.Load())
	}
}

func TestTuplePoolBackpressure(t *testing.T) {
	p := newTuplePool(2, 4, 2, 1, 1)
	stop := make(chan struct{})
	b1 := p.get(stop)
	b2 := p.get(stop)
	if b1 == nil || b2 == nil {
		t.Fatal("pool must supply its capacity")
	}
	// Third get must block until a put; verify via the stop path.
	done := make(chan *batch, 1)
	go func() { done <- p.get(stop) }()
	select {
	case <-done:
		t.Fatal("get must block when the pool is exhausted")
	default:
	}
	p.put(b1)
	if b := <-done; b == nil {
		t.Fatal("blocked get must obtain the released batch")
	}
	// Stop path unblocks with nil.
	go func() { done <- p.get(stop) }()
	close(stop)
	if b := <-done; b != nil {
		t.Fatal("get must return nil on stop")
	}
	// Control batches are never pooled.
	p.put(ctrlBatch(0, ctrlStart, nil, nil))
	if p.capSlots() != 2 {
		t.Fatalf("cap %d", p.capSlots())
	}
}

func TestBatchAllocUnalloc(t *testing.T) {
	b := newBatch(3, 2, 1, 2)
	x := b.alloc()
	x.row[0] = 7
	x.bv.Set(0)
	y := b.alloc()
	y.bv.Set(1)
	b.unalloc()
	if len(b.rows) != 1 || b.rows[0].row[0] != 7 {
		t.Fatalf("unalloc broke batch: %v", b.rows)
	}
	if b.full() {
		t.Fatal("batch with 1/3 rows is not full")
	}
	b.alloc()
	b.alloc()
	if !b.full() {
		t.Fatal("batch must be full at capacity")
	}
	b.reset()
	if len(b.rows) != 0 {
		t.Fatal("reset must clear rows")
	}
	// A reused arena slot must come back zeroed.
	z := b.alloc()
	if !z.bv.IsZero() || z.dims[0] != nil || z.dims[1] != nil {
		t.Fatal("reused tuple not cleaned")
	}
}
