package core_test

import (
	"math/rand"
	"sync"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

// countStar binds a COUNT(*) over the whole fact table joined with date,
// pinned to the given snapshot.
func countAll(t *testing.T, ds *ssb.Dataset) *query.Bound {
	t.Helper()
	q, err := query.ParseBind(
		"SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	q.Snapshot = ds.Txn.Begin()
	return q
}

func TestSnapshotIsolationAcrossAppends(t *testing.T) {
	ds := dataset(t, 1000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})
	rng := rand.New(rand.NewSource(61))

	qOld := countAll(t, ds) // snapshot 0: sees the initial 1000 rows
	if _, err := ds.AppendFact(200, rng); err != nil {
		t.Fatal(err)
	}
	qNew := countAll(t, ds) // snapshot 1: sees 1200 rows

	hOld, err := p.Submit(qOld)
	if err != nil {
		t.Fatal(err)
	}
	hNew, err := p.Submit(qNew)
	if err != nil {
		t.Fatal(err)
	}
	rOld, rNew := hOld.Wait(), hNew.Wait()
	if rOld.Err != nil || rNew.Err != nil {
		t.Fatal(rOld.Err, rNew.Err)
	}
	if got := rOld.Rows[0].Ints[0]; got != 1000 {
		t.Fatalf("old snapshot sees %d rows, want 1000", got)
	}
	if got := rNew.Rows[0].Ints[0]; got != 1200 {
		t.Fatalf("new snapshot sees %d rows, want 1200", got)
	}
}

func TestSnapshotIsolationAcrossDeletes(t *testing.T) {
	ds := dataset(t, 500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})

	qBefore := countAll(t, ds)
	for idx := int64(0); idx < 10; idx++ {
		if _, err := ds.DeleteFact(idx); err != nil {
			t.Fatal(err)
		}
	}
	qAfter := countAll(t, ds)

	hBefore, err := p.Submit(qBefore)
	if err != nil {
		t.Fatal(err)
	}
	hAfter, err := p.Submit(qAfter)
	if err != nil {
		t.Fatal(err)
	}
	rBefore, rAfter := hBefore.Wait(), hAfter.Wait()
	if rBefore.Err != nil || rAfter.Err != nil {
		t.Fatal(rBefore.Err, rAfter.Err)
	}
	if got := rBefore.Rows[0].Ints[0]; got != 500 {
		t.Fatalf("pre-delete snapshot sees %d rows, want 500", got)
	}
	if got := rAfter.Rows[0].Ints[0]; got != 490 {
		t.Fatalf("post-delete snapshot sees %d rows, want 490", got)
	}
}

func TestQueriesMatchReferenceWhileUpdating(t *testing.T) {
	// Mixed workload (§3.5): queries at different snapshots run in the
	// same pipeline while appends keep landing. Every query must match
	// the reference executor pinned at the same snapshot.
	ds := dataset(t, 1500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
	w := ssb.NewWorkload(ds, 0.1, 67)
	rng := rand.New(rand.NewSource(71))

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			if _, err := ds.AppendFact(50, rng); err != nil {
				t.Fatal(err)
			}
		}
		_, text := w.Next()
		q, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		q.Snapshot = ds.Txn.Begin()
		wg.Add(1)
		go func(q *query.Bound) {
			defer wg.Done()
			h, err := p.Submit(q)
			if err != nil {
				t.Error(err)
				return
			}
			res := h.Wait()
			if res.Err != nil {
				t.Error(res.Err)
				return
			}
			// The reference reads the heap after all appends, but the
			// snapshot pins visibility, so results must agree.
			want, err := ref.Execute(q)
			if err != nil {
				t.Error(err)
				return
			}
			if !ref.ResultsEqual(res.Rows, want) {
				t.Errorf("snapshot %d query diverges: %s", q.Snapshot, q.SQL)
			}
		}(q)
	}
	wg.Wait()
}
