package core_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

// gatedSource is a PageSource whose page reads block on a gate channel,
// giving tests deterministic control over scan progress. Closing the
// gate releases all remaining reads. Rows are all-zero, so with hidden
// MVCC columns every row is visible to every snapshot.
type gatedSource struct {
	cols  int
	rows  int
	pages int
	gate  chan struct{}
}

func (g *gatedSource) NumCols() int     { return g.cols }
func (g *gatedSource) RowsPerPage() int { return g.rows }
func (g *gatedSource) NumPages() int    { return g.pages }

func (g *gatedSource) ReadPage(page int, dst []int64, _ []byte) (int, error) {
	<-g.gate
	n := g.rows * g.cols
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
	return g.rows, nil
}

// gatedPipeline builds an SSB-schema pipeline whose continuous scan is
// fed by a gated source of `pages` pages.
func gatedPipeline(t *testing.T, maxConc, pages int) (*core.Pipeline, *ssb.Dataset, *gatedSource) {
	t.Helper()
	ds := dataset(t, 100)
	gs := &gatedSource{
		cols:  ds.Lineorder.Heap.NumCols(),
		rows:  8,
		pages: pages,
		gate:  make(chan struct{}, 1024),
	}
	p, err := core.NewPipeline(ds.Star, core.Config{MaxConcurrent: maxConc, Workers: 2, FactSource: gs})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(func() {
		close(gs.gate) // release any blocked read so Stop can finish
		p.Stop()
	})
	return p, ds, gs
}

func countStar(t *testing.T, ds *ssb.Dataset) *query.Bound {
	t.Helper()
	b, err := query.ParseBind("SELECT COUNT(*) AS n FROM lineorder", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitActive(t *testing.T, p *core.Pipeline, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for p.ActiveQueries() != want {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveQueries stuck at %d, want %d", p.ActiveQueries(), want)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestCancelBeforeAnyProgress cancels a freshly submitted query whose
// scan has made zero progress: the caller unblocks immediately with
// ErrQueryCanceled and the slot is recycled.
func TestCancelBeforeAnyProgress(t *testing.T) {
	p, ds, gs := gatedPipeline(t, 2, 4)
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	if h.PagesScanned() != 0 {
		t.Fatalf("pages scanned %d before gate released", h.PagesScanned())
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false on a running query")
	}
	res := h.Wait()
	if !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("result %v", res.Err)
	}
	if !h.Canceled() {
		t.Fatal("Canceled() false after cancel")
	}
	// The preprocessor is blocked inside the first gated page read;
	// releasing it lets the scan reach the next batch boundary, where the
	// cancel is consumed and the slot recycled.
	gs.gate <- struct{}{}
	waitActive(t, p, 0)
	select {
	case <-h.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("Done never closed")
	}
}

// TestCancelMidScan releases part of the scan, cancels, and verifies the
// slot frees at the next page boundary while a concurrent query keeps
// running to a correct result.
func TestCancelMidScan(t *testing.T) {
	p, ds, gs := gatedPipeline(t, 2, 4)
	victim, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	gs.gate <- struct{}{}
	gs.gate <- struct{}{}
	deadline := time.Now().Add(10 * time.Second)
	for victim.PagesScanned() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stuck at %d pages", victim.PagesScanned())
		}
		time.Sleep(50 * time.Microsecond)
	}
	if !victim.Cancel() {
		t.Fatal("cancel failed")
	}
	if res := victim.Wait(); !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("result %v", res.Err)
	}
	// One more page lets the preprocessor reach its command check and
	// retire the query.
	gs.gate <- struct{}{}
	waitActive(t, p, 0)

	// The slot is reusable: a fresh query over the remaining (unbounded)
	// gate completes with the right count.
	survivor, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		gs.gate <- struct{}{}
	}
	res := survivor.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if want := int64(4 * 8); len(res.Rows) != 1 || res.Rows[0].Ints[0] != want {
		t.Fatalf("survivor rows %v, want count %d", res.Rows, want)
	}
}

// TestDoubleCancel: the second cancel (and a cancel after completion)
// reports false, and the slot remains reusable afterward.
func TestDoubleCancel(t *testing.T) {
	p, ds, gs := gatedPipeline(t, 1, 2)
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Cancel() {
		t.Fatal("first cancel false")
	}
	if h.Cancel() {
		t.Fatal("second cancel true")
	}
	if res := h.Wait(); !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("result %v", res.Err)
	}
	gs.gate <- struct{}{} // complete the in-flight read; cancel lands next
	waitActive(t, p, 0)

	// maxConc=1: the only slot must be free again.
	h2, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatalf("slot not recycled: %v", err)
	}
	for i := 0; i < 8; i++ {
		gs.gate <- struct{}{}
	}
	if res := h2.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if h2.Cancel() {
		t.Fatal("cancel after completion returned true")
	}
}

// TestCancelCompletedQueryIsNoop: Cancel after normal delivery returns
// false and does not disturb the result.
func TestCancelCompletedQueryIsNoop(t *testing.T) {
	ds := dataset(t, 500)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	h, err := p.Submit(countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if h.Cancel() {
		t.Fatal("cancel of completed query returned true")
	}
	if h.Canceled() {
		t.Fatal("completed query marked canceled")
	}
}

// TestSubmitCtx covers context-aware submission: an already-canceled
// context never admits, and submission under a live context works.
func TestSubmitCtx(t *testing.T) {
	ds := dataset(t, 300)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.SubmitCtx(ctx, countStar(t, ds)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	if got := p.ActiveQueries(); got != 0 {
		t.Fatalf("leaked admission: %d active", got)
	}

	h, err := p.SubmitCtx(context.Background(), countStar(t, ds))
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
}

// TestCancelChurnRace hammers submit/cancel/complete from many
// goroutines; run under -race this doubles as the cancellation memory
// model check. Every slot must be recycled at the end.
func TestCancelChurnRace(t *testing.T) {
	ds := dataset(t, 400)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8, Workers: 2})
	qs := bindWorkload(t, ds, 16, 0.1, 21)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				h, err := p.Submit(qs[rng.Intn(len(qs))])
				if errors.Is(err, core.ErrTooManyQueries) {
					time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				switch rng.Intn(3) {
				case 0:
					h.Cancel()
					if res := h.Wait(); !errors.Is(res.Err, core.ErrQueryCanceled) && res.Err != nil {
						t.Errorf("canceled query result: %v", res.Err)
					}
				case 1:
					// Cancel concurrently with completion.
					go h.Cancel()
					if res := h.Wait(); res.Err != nil && !errors.Is(res.Err, core.ErrQueryCanceled) {
						t.Errorf("racing cancel result: %v", res.Err)
					}
				default:
					if res := h.Wait(); res.Err != nil {
						t.Errorf("normal query result: %v", res.Err)
					}
				}
			}
		}(int64(g) * 7919)
	}
	wg.Wait()
	p.Quiesce()

	// All 8 slots must be free and functional.
	var hs []core.Handle
	for i := 0; i < 8; i++ {
		h, err := p.Submit(qs[i])
		if err != nil {
			t.Fatalf("slot %d not recycled: %v", i, err)
		}
		hs = append(hs, h)
	}
	for i, h := range hs {
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want, err := ref.Execute(qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("post-churn query %d diverges from reference", i)
		}
	}
}
