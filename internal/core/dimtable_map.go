package core

import (
	"sync"

	"cjoin/internal/bitvec"
)

// dimEntry is one stored dimension tuple δ with its bit-vector b_δ:
// bit i is 1 iff query i references this dimension and selects δ, or
// query i is active and does not reference this dimension (§3.2.1).
// Only the mapTable baseline allocates these; the default cowTable keeps
// rows and bit-vectors inline in dimht arenas.
type dimEntry struct {
	row []int64
	bv  bitvec.Vec
}

// mapTable is the original Filter store, kept as the ablation baseline
// (Config.LegacyMapFilter): a built-in map of heap-allocated entries
// behind a per-batch RWMutex. Every probe costs three dependent cache
// misses (map bucket, entry, bit-vector) plus read-lock traffic that
// grows with Stage workers — exactly the overhead dimht removes.
type mapTable struct {
	mu   sync.RWMutex
	ht   map[int64]*dimEntry
	bDj  bitvec.Vec
	refs int
}

func newMapTable(maxConc int) *mapTable {
	return &mapTable{
		ht:  make(map[int64]*dimEntry),
		bDj: bitvec.New(maxConc),
	}
}

func (m *mapTable) refCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.refs
}

func (m *mapTable) size() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ht)
}

func (m *mapTable) admitNonRef(slot int) {
	m.mu.Lock()
	m.bDj.Set(slot)
	for _, e := range m.ht {
		e.bv.Set(slot)
	}
	m.mu.Unlock()
}

func (m *mapTable) admitRef(slot, keyCol int, rows [][]int64) {
	m.mu.Lock()
	m.refs++
	for _, row := range rows {
		key := row[keyCol]
		e, ok := m.ht[key]
		if !ok {
			e = &dimEntry{row: row, bv: m.bDj.Clone()}
			m.ht[key] = e
		}
		e.bv.Set(slot)
	}
	m.mu.Unlock()
}

func (m *mapTable) remove(slot int, referenced bool) (emptied bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bDj.Clear(slot)
	if referenced {
		m.refs--
	}
	for key, e := range m.ht {
		e.bv.Clear(slot)
		if e.bv.AndNotIsZero(m.bDj) {
			delete(m.ht, key)
		}
	}
	return len(m.ht) == 0 && m.refs == 0
}

func (m *mapTable) filterBatch(d *dimState, b *batch) {
	m.mu.RLock()
	if m.refs == 0 {
		m.mu.RUnlock()
		return
	}
	in := int64(len(b.rows))
	n := 0
	var probes, drops int64
	for i := range b.rows {
		t := &b.rows[i]
		if !d.noSkip && t.bv.AndNotIsZero(m.bDj) {
			b.rows[n] = b.rows[i]
			n++
			continue
		}
		probes++
		if e, ok := m.ht[t.row[d.fkCol]]; ok {
			t.bv.And(e.bv)
			t.dims[d.index] = e.row
		} else {
			t.bv.And(m.bDj)
		}
		if t.bv.IsZero() {
			drops++
			continue
		}
		b.rows[n] = b.rows[i]
		n++
	}
	b.rows = b.rows[:n]
	m.mu.RUnlock()
	d.tuplesIn.Add(in)
	d.probes.Add(probes)
	d.drops.Add(drops)
}

func (m *mapTable) forEach(fn func(key int64, row []int64, bv bitvec.Vec) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for key, e := range m.ht {
		if !fn(key, e.row, e.bv) {
			return
		}
	}
}

func (m *mapTable) forceRefs(n int) {
	m.mu.Lock()
	m.refs = n
	m.mu.Unlock()
}
