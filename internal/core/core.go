// Package core implements CJOIN, the shared physical operator for
// concurrent star queries introduced in "A Scalable, Predictable Join
// Operator for Highly Concurrent Data Warehouses" (Candea, Polyzotis,
// Vingralek — VLDB 2009).
//
// A Pipeline is the paper's single "always on" plan (§3.1):
//
//	continuous fact scan → Preprocessor → Filters (in Stages) →
//	Distributor → one aggregation operator per registered query
//
// Fact tuples flow through the pipeline in batches; each tuple carries a
// bit-vector with one bit per registered query. Each Filter holds a
// dimension hash table storing the union of dimension tuples selected by
// any current query, each tagged with its own bit-vector. A single probe
// therefore joins a fact tuple against one dimension for all queries at
// once (§3.2). Queries latch onto the running scan at any time and
// complete after exactly one full cycle (§3.3).
//
// The implementation follows §4: the Preprocessor and Distributor each
// own one goroutine; Filters are boxed into Stages with a configurable
// layout (horizontal, vertical, hybrid) and thread count; tuples move
// between threads in batches; tuple memory comes from a preallocated
// pool. Control tuples are kept ordered relative to data tuples (§3.3.3)
// by sequencing batches at the Preprocessor and restoring order in the
// Distributor.
package core

import (
	"runtime"
	"time"

	"cjoin/internal/dimplane"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
)

// Layout selects how Filters are boxed into Stages (§4).
type Layout int

const (
	// Horizontal boxes all Filters into one Stage executed by several
	// worker threads; each worker runs the whole filter sequence for a
	// subset of batches. The paper found this layout superior (§6.2.1).
	Horizontal Layout = iota
	// Vertical gives every Filter its own single-threaded Stage wired in
	// a chain.
	Vertical
	// Hybrid groups Filters into Config.Stages chained Stages, dividing
	// Config.Workers among them.
	Hybrid
)

func (l Layout) String() string {
	switch l {
	case Horizontal:
		return "horizontal"
	case Vertical:
		return "vertical"
	case Hybrid:
		return "hybrid"
	}
	return "unknown"
}

// Config tunes a Pipeline. The zero value gets sensible defaults from
// normalize.
type Config struct {
	// MaxConcurrent is the paper's maxConc: the bound on simultaneously
	// registered queries and the width of every bit-vector. Default 64.
	MaxConcurrent int
	// BatchRows is the number of fact tuples per pipeline batch.
	// Default 256.
	BatchRows int
	// QueueLen is the buffer length of inter-stage channels. Default 8.
	QueueLen int
	// Workers is the number of Stage threads (horizontal: all in the
	// single Stage; hybrid: divided among Stages). Default NumCPU/2,
	// minimum 1.
	Workers int
	// Layout selects the Stage configuration. Default Horizontal.
	Layout Layout
	// Stages is the number of Stages for the Hybrid layout. Default 2.
	Stages int
	// SortAgg selects sort-based instead of hash-based aggregation
	// operators.
	SortAgg bool
	// OptimizeInterval is how often the pipeline manager re-optimizes
	// the Filter order from run-time selectivity statistics (§3.4).
	// Zero disables periodic optimization (ReorderFilters can still be
	// called explicitly).
	OptimizeInterval time.Duration
	// DisableProbeSkip turns off the §3.2.2 probe-skip optimization
	// (bτ AND NOT b_Dj == 0 forwards without probing). For ablation
	// benchmarks only.
	DisableProbeSkip bool
	// DisableZoneMaps turns off page-level zone-map pruning: queries are
	// charged every page of their needed partitions and the scan skips
	// only whole partitions, restoring the §5 partition-granular
	// behavior. The zero value (zone maps on) is the default.
	DisableZoneMaps bool
	// LegacyMapFilter swaps the Filters' lock-free copy-on-write dimht
	// tables for the original map[int64]*dimEntry + RWMutex store. For
	// ablation benchmarks only.
	LegacyMapFilter bool
	// PredCacheSize bounds the dimension plane's predicate-scan cache
	// (memoized SelectRows results keyed by canonical predicate
	// fingerprint). 0 selects dimplane.DefaultPredCacheSize; negative
	// disables caching. Ignored when Plane is supplied — the plane
	// owner configured it.
	PredCacheSize int
	// FactSource overrides the physical source of the continuous scan —
	// e.g. a column-store scan/merge (§5). Row width must match the
	// star's fact schema. Incompatible with partitioned stars.
	FactSource PageSource
	// PartSubset restricts the continuous scan to the given global
	// partition indices of a range-partitioned star (§5), in scan order.
	// Nil scans every partition. internal/shard.Group deals whole
	// partitions across its shards with this, so each shard cycles over
	// its own partition subset with pruning intact. Requires a
	// partitioned star; incompatible with FactSource.
	PartSubset []int
	// Plane is the shared dimension plane this pipeline probes. Nil
	// means the pipeline constructs and owns a private plane (the
	// single-pipeline, N=1 case). internal/shard.Group builds one plane
	// for all its shards and drives it via Plane.Admit +
	// Pipeline.Activate, so dimension admission runs once per logical
	// query regardless of shard count. A non-nil plane must be built
	// over the same star with the same MaxConcurrent.
	Plane *dimplane.Plane
	// Fault is this pipeline's deterministic fault injector for chaos
	// testing (internal/fault): scan faults, admission faults, and armed
	// panic points in the pipeline goroutines. Nil — the production
	// configuration — reduces every hook to a single nil test.
	Fault *fault.Injector
	// ScanRetries bounds how many times a transient fact-scan error is
	// retried at the same page boundary before the pipeline escalates to
	// the terminal Failed state. Default 4.
	ScanRetries int
	// ScanRetryBackoff is the first retry's backoff; it doubles per
	// attempt, capped at 100ms. Default 500µs.
	ScanRetryBackoff time.Duration
	// Logf, when non-nil, receives pipeline lifecycle warnings (failure
	// transitions above all). The pipeline never logs on its own.
	Logf func(format string, args ...any)
	// Obs, when non-nil, registers the pipeline's metric families
	// (cjoin_scan_*, cjoin_filter_*, cjoin_pipeline_*) with the
	// telemetry plane, labeled by ObsShard. Nil — the default — disables
	// instrumentation; the hot path then pays one nil test per event.
	Obs *obs.Registry
	// ObsShard is the shard label value for this pipeline's metrics;
	// internal/shard sets it so N pipelines share each family.
	ObsShard int
}

// Normalized fills zero fields with the pipeline defaults. Exported so
// executors composing pipelines (internal/shard) can size shared
// structures — the dimension plane above all — from the same effective
// configuration NewPipeline will use.
func (c Config) Normalized() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.BatchRows <= 0 {
		c.BatchRows = 256
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU() / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.Stages <= 0 {
		c.Stages = 2
	}
	if c.ScanRetries <= 0 {
		c.ScanRetries = 4
	}
	if c.ScanRetryBackoff <= 0 {
		c.ScanRetryBackoff = 500 * time.Microsecond
	}
	return c
}
