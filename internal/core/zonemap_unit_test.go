package core

import (
	"math"
	"math/rand"
	"testing"

	"cjoin/internal/expr"
	"cjoin/internal/query"
	"cjoin/internal/ssb"
	"cjoin/internal/storage"
	"cjoin/internal/txn"
)

func fcol(idx int) expr.Col    { return expr.Col{Slot: 0, Idx: idx} }
func konst(v int64) expr.Const { return expr.Const{V: v} }

// TestCollectFactRanges pins the range-extraction rules: top-level AND
// conjuncts of column-vs-constant comparisons become closed intervals,
// flipped operand order is normalized, IN lists collapse to their hull,
// and everything unprovable (OR, <>, dimension columns) is ignored.
func TestCollectFactRanges(t *testing.T) {
	type rng struct {
		col    int
		lo, hi int64
	}
	collect := func(n expr.Node) []rng {
		var out []rng
		collectFactRanges(n, func(col int, lo, hi int64) {
			out = append(out, rng{col, lo, hi})
		})
		return out
	}
	cases := []struct {
		name string
		node expr.Node
		want []rng
	}{
		{"between", expr.Bin{Op: expr.And,
			L: expr.Bin{Op: expr.Ge, L: fcol(3), R: konst(5)},
			R: expr.Bin{Op: expr.Le, L: fcol(3), R: konst(10)}},
			[]rng{{3, 5, math.MaxInt64}, {3, math.MinInt64, 10}}},
		{"eq", expr.Bin{Op: expr.Eq, L: fcol(2), R: konst(4)},
			[]rng{{2, 4, 4}}},
		{"flipped-gt", expr.Bin{Op: expr.Gt, L: konst(7), R: fcol(1)},
			[]rng{{1, math.MinInt64, 6}}}, // 7 > c  ⇒  c < 7
		{"strict-lt", expr.Bin{Op: expr.Lt, L: fcol(0), R: konst(9)},
			[]rng{{0, math.MinInt64, 8}}},
		{"in-hull", &expr.In{X: fcol(5), Vals: []int64{9, 3, 6}},
			[]rng{{5, 3, 9}}},
		{"in-empty", &expr.In{X: fcol(5), Vals: nil},
			[]rng{{5, 1, 0}}}, // unsatisfiable marker
		{"gt-maxint", expr.Bin{Op: expr.Gt, L: fcol(0), R: konst(math.MaxInt64)},
			[]rng{{0, 1, 0}}}, // no int64 is greater: unsatisfiable, no overflow
		{"or-ignored", expr.Bin{Op: expr.Or,
			L: expr.Bin{Op: expr.Eq, L: fcol(0), R: konst(1)},
			R: expr.Bin{Op: expr.Eq, L: fcol(0), R: konst(2)}},
			nil},
		{"ne-ignored", expr.Bin{Op: expr.Ne, L: fcol(0), R: konst(1)}, nil},
		{"dim-col-ignored", expr.Bin{Op: expr.Eq, L: expr.Col{Slot: 1, Idx: 0}, R: konst(1)}, nil},
		{"col-vs-col-ignored", expr.Bin{Op: expr.Lt, L: fcol(0), R: fcol(1)}, nil},
		{"arith-ignored", expr.Bin{Op: expr.Eq,
			L: expr.Bin{Op: expr.Add, L: fcol(0), R: konst(1)}, R: konst(5)}, nil},
	}
	for _, tc := range cases {
		got := collect(tc.node)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: ranges %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: range %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestFactScanSkipsPages exercises the page-level skip hook directly: a
// skipPage callback must keep the named pages off the device, rows from
// them must never be delivered, and the scan must count each physical
// skip exactly once.
func TestFactScanSkipsPages(t *testing.T) {
	star := partStar(t, []int64{1022}) // 511 rows/page → exactly 2 flushed pages
	s := newFactScan(star, nil, nil, nil)
	skipFirst := func(part, page int) bool { return page == 0 }
	for i := 0; i < 4; i++ {
		vals, n, _, part, page, _, err := s.nextPage(nil, skipFirst)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("scan starved with one live page")
		}
		if part != 0 || page != 1 {
			t.Fatalf("delivered (part=%d, page=%d), want (0, 1)", part, page)
		}
		for r := 0; r < n; r++ {
			if v := vals[r*2+1]; v < 511 {
				t.Fatalf("row %d from skipped page delivered", v)
			}
		}
		if k := s.takeSkipped(); k != 1 {
			t.Fatalf("cycle %d: %d pages counted skipped, want 1", i, k)
		}
	}
}

// TestNeedPagesCoverQualifyingRows is the zone-map soundness property,
// checked against the raw data: for randomized SSB workloads, every page
// holding a row that satisfies ALL of a query's derived column ranges
// must be marked needed in the query's page bitmap — including the
// unflushed tail page (no frozen synopsis ⇒ always needed) and
// RLE-compressed heaps (bounds computed pre-encoding). A page the bitmap
// drops while a qualifying row lives on it would silently corrupt
// results; this test fails before that can hide behind aggregation.
//
// The churn variant interleaves AppendFact/DeleteFact commits between
// queries and pins half of them at older snapshots: appended rows land
// on the unpublished tail (no synopsis ⇒ conservatively needed),
// deletions rewrite lo_xmax through the widen-only bounds path, and
// neither may ever prune a page holding a row visible to a query's
// snapshot — the MVCC face of the same soundness property.
func TestNeedPagesCoverQualifyingRows(t *testing.T) {
	for _, tc := range []struct {
		name     string
		compress bool
		parts    int
		churn    bool
	}{
		{"raw-unpartitioned", false, 0, false},
		{"rle-unpartitioned", true, 0, false},
		{"raw-partitioned", false, 3, false},
		// Only the raw unpartitioned heap takes writes: partitioned
		// stars are static and RLE pages reject in-place xmax updates.
		{"raw-unpartitioned-churn", false, 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := ssb.Generate(ssb.Config{
				SF: 1, FactRowsPerSF: 3000, Seed: 11,
				CompressFact: tc.compress, Partitions: tc.parts,
			})
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewPipeline(ds.Star, Config{MaxConcurrent: 8, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			p.Start()
			t.Cleanup(p.Stop)

			w := ssb.NewWorkload(ds, 0.05, 17)
			rng := rand.New(rand.NewSource(23))
			snapshots := []txn.Snapshot{ds.Txn.Begin()}
			var delCursor int64
			sawBitmap := false
			for i := 0; i < 12; i++ {
				if tc.churn && i > 0 {
					if _, err := ds.AppendFact(40, rng); err != nil {
						t.Fatal(err)
					}
					for k := 0; k < 5; k++ {
						if _, err := ds.DeleteFact(delCursor); err != nil {
							t.Fatal(err)
						}
						delCursor++
					}
					snapshots = append(snapshots, ds.Txn.Begin())
				}
				_, text := w.Next()
				q, err := query.ParseBind(text, ds.Star)
				if err != nil {
					t.Fatal(err)
				}
				// Half the churn queries evaluate at the latest snapshot,
				// half pinned at an arbitrary older one — the bitmap must
				// stay sound for queries admitted before later commits.
				q.Snapshot = snapshots[len(snapshots)-1]
				if tc.churn && i%2 == 1 {
					q.Snapshot = snapshots[rng.Intn(len(snapshots))]
				}
				h, err := p.Submit(q)
				if err != nil {
					t.Fatal(err)
				}
				res := h.Wait()
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				rq := h.(*pipeHandle).rq
				if rq.pruneEmpty {
					if len(res.Rows) != 0 {
						t.Fatalf("pruneEmpty query returned %d rows: %s", len(res.Rows), text)
					}
					continue
				}
				if rq.needPages == nil {
					continue // no page-level pruning: trivially sound
				}
				sawBitmap = true
				for li, part := range ds.Star.Partitions() {
					heap := part.Heap
					ncols := heap.NumCols()
					dst := make([]int64, heap.RowsPerPage()*ncols)
					scratch := make([]byte, storage.PageSize)
					for pg := 0; pg < heap.NumPages(); pg++ {
						n, err := heap.ReadPage(pg, dst, scratch)
						if err != nil {
							t.Fatal(err)
						}
						for r := 0; r < n; r++ {
							row := dst[r*ncols : (r+1)*ncols]
							if !txn.Visible(row[ssb.LoXmin], row[ssb.LoXmax], q.Snapshot) {
								continue
							}
							qualifies := true
							for _, cr := range rq.pruneRanges {
								if row[cr.col] < cr.min || row[cr.col] > cr.max {
									qualifies = false
									break
								}
							}
							if qualifies && !rq.pageNeeded(li, pg) {
								t.Fatalf("partition %d page %d holds a qualifying row visible at snapshot %d but is not needed: %s",
									li, pg, q.Snapshot, text)
							}
						}
					}
				}
			}
			if !sawBitmap {
				t.Fatal("no query produced a page bitmap; the property was never exercised")
			}
		})
	}
}
