package core

import (
	"math"

	"cjoin/internal/catalog"
	"cjoin/internal/dimplane"
	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// Zone-map pruning generalizes §5 partition pruning from partitions to
// pages. At admission the dimension plane already knows, per referenced
// dimension, the key range of the tuples the query selected
// (dimplane.SelectedKeyRange — the same correlation NeededPartitions
// uses). Any fact row that joins with a selected dimension tuple must
// carry a foreign key inside that range, so the range is a sound
// constraint on the fact's FK column; direct range predicates on fact
// columns constrain their columns the same way. Intersecting these
// ranges with the per-page min/max synopses (storage zone maps) yields a
// per-page bitmap: a page whose synopsis is disjoint from any constraint
// holds no row that can contribute to the query and is charged to — and,
// when no resident query needs it, physically skipped by — the
// continuous scan.

// colRange constrains one fact column (absolute index, hidden columns
// included) to the closed interval [min, max].
type colRange struct {
	col      int
	min, max int64
}

// pruneRanges derives the fact-column range constraints implied by an
// admitted query. empty reports that the constraints are unsatisfiable
// (a referenced dimension predicate selected no tuples, or contradictory
// fact ranges): the query needs zero fact pages. The query must already
// be admitted to the plane at slot.
func pruneRanges(star *catalog.Star, plane *dimplane.Plane, q *query.Bound, slot int) (ranges []colRange, empty bool) {
	add := func(col int, lo, hi int64) {
		for i := range ranges {
			if ranges[i].col == col {
				if lo > ranges[i].min {
					ranges[i].min = lo
				}
				if hi < ranges[i].max {
					ranges[i].max = hi
				}
				return
			}
		}
		ranges = append(ranges, colRange{col: col, min: lo, max: hi})
	}
	for i := range star.Dims {
		if !q.DimRefs[i] || !q.HasDimPred(i) {
			continue
		}
		minKey, maxKey, any := plane.SelectedKeyRange(i, slot)
		if !any {
			return nil, true
		}
		add(star.FKCol[i], minKey, maxKey)
	}
	if q.HasFactPred() {
		collectFactRanges(q.FactPred, add)
	}
	for _, r := range ranges {
		if r.min > r.max {
			return nil, true
		}
	}
	return ranges, false
}

// collectFactRanges walks the top-level AND conjuncts of a fact
// predicate and reports every column-vs-constant comparison as a range
// constraint. Anything it cannot prove (OR, NOT, <>, arithmetic,
// column-vs-column) is conservatively ignored — the predicate is still
// evaluated per row, so ignoring a conjunct only costs pruning, never
// correctness.
func collectFactRanges(n expr.Node, add func(col int, lo, hi int64)) {
	switch e := n.(type) {
	case expr.Bin:
		switch e.Op {
		case expr.And:
			collectFactRanges(e.L, add)
			collectFactRanges(e.R, add)
		case expr.Eq, expr.Lt, expr.Le, expr.Gt, expr.Ge:
			col, c, ok, flipped := factColConst(e.L, e.R)
			if !ok {
				return
			}
			op := e.Op
			if flipped {
				switch op {
				case expr.Lt:
					op = expr.Gt
				case expr.Le:
					op = expr.Ge
				case expr.Gt:
					op = expr.Lt
				case expr.Ge:
					op = expr.Le
				}
			}
			switch op {
			case expr.Eq:
				add(col, c, c)
			case expr.Ge:
				add(col, c, math.MaxInt64)
			case expr.Gt:
				if c == math.MaxInt64 {
					add(col, 1, 0) // empty
				} else {
					add(col, c+1, math.MaxInt64)
				}
			case expr.Le:
				add(col, math.MinInt64, c)
			case expr.Lt:
				if c == math.MinInt64 {
					add(col, 1, 0) // empty
				} else {
					add(col, math.MinInt64, c-1)
				}
			}
		}
	case *expr.In:
		col, ok := factCol(e.X)
		if !ok {
			return
		}
		if len(e.Vals) == 0 {
			add(col, 1, 0) // empty
			return
		}
		lo, hi := e.Vals[0], e.Vals[0]
		for _, v := range e.Vals[1:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		add(col, lo, hi)
	}
}

// factColConst matches `fact-col op const` (flipped=false) or
// `const op fact-col` (flipped=true).
func factColConst(l, r expr.Node) (col int, c int64, ok, flipped bool) {
	if cl, isCol := l.(expr.Col); isCol && cl.Slot == 0 {
		if k, isConst := r.(expr.Const); isConst {
			return cl.Idx, k.V, true, false
		}
	}
	if k, isConst := l.(expr.Const); isConst {
		if cl, isCol := r.(expr.Col); isCol && cl.Slot == 0 {
			return cl.Idx, k.V, true, true
		}
	}
	return 0, 0, false, false
}

func factCol(n expr.Node) (int, bool) {
	if cl, isCol := n.(expr.Col); isCol && cl.Slot == 0 {
		return cl.Idx, true
	}
	return 0, false
}
