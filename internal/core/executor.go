package core

import (
	"context"
	"time"

	"cjoin/internal/query"
)

// Handle tracks one submitted query independently of which executor runs
// it: the single Pipeline implements it directly, and sharded executors
// (internal/shard) implement it over a set of per-shard handles. The
// observability methods expose the paper's §3.2.3 promise — progress and
// completion estimates derived from the continuous scan position.
type Handle interface {
	// Slot returns the query's CJOIN identifier in [0, maxConc). Sharded
	// executors report a representative shard's slot.
	Slot() int
	// Wait blocks until the query completes and returns its results. The
	// result is delivered exactly once; Wait must have a single consumer.
	Wait() QueryResult
	// Done returns a channel closed once the query's slot (on every
	// shard) has been fully recycled — Algorithm 2 cleanup finished. The
	// result is always delivered before Done closes, so Done doubles as a
	// "slot free" signal for admission control layered above.
	Done() <-chan struct{}
	// Cancel abandons the query; ErrQueryCanceled is delivered
	// immediately and the slot is retired at the next page boundary. It
	// reports whether this call initiated the cancellation.
	Cancel() bool
	// Canceled reports whether the query was abandoned via Cancel.
	Canceled() bool
	// PagesScanned returns the fact pages charged to the query so far.
	PagesScanned() int64
	// ETA estimates time to completion from the current processing rate
	// (§3.2.3); ok is false while no progress is observable.
	ETA() (time.Duration, bool)
	// Progress returns the fraction of the query's scan completed, [0,1].
	Progress() float64
	// Submission is the paper's §6.2.2 registration latency: from Submit
	// entry until the query-start control tuple entered the pipeline.
	Submission() time.Duration
}

// Executor is the execution tier behind the admission queue and the HTTP
// service layer: anything that can register bound star queries and run
// them to completion. *Pipeline is the single-pipeline implementation;
// internal/shard.Group fans one logical query out over N fact-partitioned
// pipelines. Admission, serving, and the harness depend on this interface
// only, so execution topology can change without touching those tiers.
type Executor interface {
	// Submit registers a bound query (Algorithm 1) and returns a handle
	// delivering its results after one full scan cycle.
	Submit(q *query.Bound) (Handle, error)
	// SubmitCtx is Submit with a context: cancellation before or during
	// installation aborts the admission cleanly.
	SubmitCtx(ctx context.Context, q *query.Bound) (Handle, error)
	// MaxConcurrent returns the executor's maxConc bound — the number of
	// concurrent query slots.
	MaxConcurrent() int
	// ActiveQueries returns the number of queries currently registered.
	ActiveQueries() int
	// Stats snapshots execution counters, aggregated across shards for
	// sharded executors.
	Stats() Stats
	// Quiesce blocks until no queries are in flight.
	Quiesce()
	// Stop shuts the executor down; in-flight queries receive
	// ErrPipelineStopped.
	Stop()
}

// BatchSubmitter is the optional batch fast path an Executor may
// implement: register K queries in one dimension-plane round, paying
// one store snapshot publication per dimension for the whole batch
// instead of one per query. The admission queue type-asserts for it
// when draining a batch; executors without it are driven one query at
// a time.
//
// The two slices are parallel to qs: for each i exactly one of
// handles[i] (success) or errs[i] (per-query failure, e.g. activation
// on a stopped shard) is non-nil. A non-nil error return means the
// whole batch failed up front — no query was admitted, handles and
// errs are nil — and the caller should fall back to SubmitCtx per
// query (which reproduces per-query errors like ErrTooManyQueries with
// the usual semantics).
type BatchSubmitter interface {
	SubmitBatch(ctx context.Context, qs []*query.Bound) (handles []Handle, errs []error, err error)
}
