package core

import (
	"fmt"
	"sync/atomic"

	"cjoin/internal/catalog"
	"cjoin/internal/dimht"
	"cjoin/internal/dimplane"
)

// dimState is the probe-side half of one dimension's Filter: schema
// wiring, per-pipeline run-time statistics for on-the-fly Filter ordering
// (§3.4), and a handle on the shared store owned by the executor's
// dimension plane (internal/dimplane).
//
// The write side — admission, removal, slot lifecycle — lives entirely in
// dimplane.Plane and runs exactly once per logical query no matter how
// many pipelines probe the store. This dimState only reads: on the
// default path it pins an immutable dimht snapshot per batch (lock-free),
// on the legacy ablation path it holds the MapStore read lock per batch.
type dimState struct {
	index  int // dimension position within the star
	table  *catalog.Table
	fkCol  int
	keyCol int

	noSkip bool // ablation: disable the probe-skip optimization

	store dimplane.Store
	// Exactly one of cow/mp is non-nil, binding the probe loop at
	// construction instead of type-switching per batch.
	cow *dimplane.CowStore
	mp  *dimplane.MapStore

	tuplesIn atomic.Int64
	probes   atomic.Int64
	drops    atomic.Int64
}

func newDimState(star *catalog.Star, index int, store dimplane.Store) *dimState {
	d := &dimState{
		index:  index,
		table:  star.Dims[index],
		fkCol:  star.FKCol[index],
		keyCol: star.KeyCol[index],
		store:  store,
	}
	switch st := store.(type) {
	case *dimplane.CowStore:
		d.cow = st
	case *dimplane.MapStore:
		d.mp = st
	default:
		// Fail at construction, not with a nil-pointer panic inside a
		// Stage worker: the probe loops are bound to the two concrete
		// store layouts.
		panic(fmt.Sprintf("core: unsupported dimension store %T", store))
	}
	return d
}

// refCount returns the number of active queries referencing the
// dimension (shared plane state, identical across pipelines).
func (d *dimState) refCount() int { return d.store.RefCount() }

// size returns the number of stored dimension tuples.
func (d *dimState) size() int { return d.store.Len() }

// filterBatch runs the Filter over one batch.
func (d *dimState) filterBatch(b *batch) {
	if d.cow != nil {
		d.filterBatchCow(b)
	} else {
		d.filterBatchMap(b)
	}
}

// slot markers for the two-pass probe. Table slots are >= 0; miss and
// skip ride in the same scratch array.
const (
	slotMiss = int32(-1)
	slotSkip = int32(-2)
)

// filterBatchCow is the CJOIN hot loop. One atomic load pins a consistent
// (table, b_Dj, refs) snapshot for the whole batch; no lock is taken, and
// the snapshot stays valid however many queries the plane admits or
// retires meanwhile.
//
// The loop is split into two passes over the batch — hash/probe first,
// then AND/compact — so the probe pass issues its independent memory
// loads back to back (the hardware can overlap the misses) instead of
// interleaving them with the branchy compaction logic.
func (d *dimState) filterBatchCow(b *batch) {
	s := d.cow.Snapshot()
	if s.Refs() == 0 {
		// No active query references this dimension: b_Dj covers every
		// relevant bit, the AND is a no-op, and probing is pointless.
		return
	}
	in := int64(len(b.rows))
	var probes, drops int64
	if s.Words() == 1 {
		probes, drops = filterBatchWord(d, b, s)
	} else {
		probes, drops = filterBatchVec(d, b, s)
	}
	d.tuplesIn.Add(in)
	d.probes.Add(probes)
	d.drops.Add(drops)
}

// filterBatchWord is the single-word fast path (maxConc <= 64): the whole
// bit-vector is one uint64, so the probe-skip test, the AND, and the
// zero-check are plain register operations with no slice iteration.
func filterBatchWord(d *dimState, b *batch, s *dimht.Snapshot) (probes, drops int64) {
	mask := s.MaskWord()
	rows := b.rows
	slots := b.slots[:len(rows)]
	noSkip := d.noSkip
	fk := d.fkCol

	// Pass 1: classify every tuple and resolve its probe.
	for i := range rows {
		if !noSkip && rows[i].bv.Uint64()&^mask == 0 {
			// Probe-skip optimization (§3.2.2): τ is relevant only to
			// queries that do not reference D_j.
			slots[i] = slotSkip
			continue
		}
		slots[i] = s.Lookup(rows[i].row[fk])
	}

	// Pass 2: AND, attach, compact.
	n := 0
	dim := d.index
	for i := range rows {
		sl := slots[i]
		if sl == slotSkip {
			rows[n] = rows[i]
			n++
			continue
		}
		probes++
		w := rows[i].bv.Uint64()
		if sl >= 0 {
			w &= s.Word(sl)
			rows[i].dims[dim] = s.Row(sl)
		} else {
			w &= mask
		}
		if w == 0 {
			drops++
			continue
		}
		rows[i].bv.SetUint64(w)
		rows[n] = rows[i]
		n++
	}
	b.rows = rows[:n]
	return
}

// filterBatchVec is the general path for maxConc > 64: identical
// structure, multi-word bit-vector operations.
func filterBatchVec(d *dimState, b *batch, s *dimht.Snapshot) (probes, drops int64) {
	bDj := s.Mask()
	rows := b.rows
	slots := b.slots[:len(rows)]
	noSkip := d.noSkip
	fk := d.fkCol

	for i := range rows {
		if !noSkip && rows[i].bv.AndNotIsZero(bDj) {
			slots[i] = slotSkip
			continue
		}
		slots[i] = s.Lookup(rows[i].row[fk])
	}

	n := 0
	dim := d.index
	for i := range rows {
		sl := slots[i]
		if sl == slotSkip {
			rows[n] = rows[i]
			n++
			continue
		}
		probes++
		t := &rows[i]
		if sl >= 0 {
			// Deliberately Vec.And, not bitvec.AndPair: And inlines into
			// this loop while AndPair (8-word blocks) does not, and the
			// A/B at mc=256 showed the per-tuple call overhead costs more
			// than the wider unroll saves (see PERFORMANCE.md PR 3).
			t.bv.And(s.Bits(sl))
			t.dims[dim] = s.Row(sl)
		} else {
			t.bv.And(bDj)
		}
		if t.bv.IsZero() {
			drops++
			continue
		}
		rows[n] = rows[i]
		n++
	}
	b.rows = rows[:n]
	return
}

// filterBatchMap is the legacy ablation probe path: one read lock per
// batch over the shared MapStore.
func (d *dimState) filterBatchMap(b *batch) {
	v := d.mp.View()
	if v.Refs() == 0 {
		v.Release()
		return
	}
	mask := v.Mask()
	in := int64(len(b.rows))
	n := 0
	var probes, drops int64
	for i := range b.rows {
		t := &b.rows[i]
		if !d.noSkip && t.bv.AndNotIsZero(mask) {
			b.rows[n] = b.rows[i]
			n++
			continue
		}
		probes++
		if e := v.Lookup(t.row[d.fkCol]); e != nil {
			t.bv.And(e.BV)
			t.dims[d.index] = e.Row
		} else {
			t.bv.And(mask)
		}
		if t.bv.IsZero() {
			drops++
			continue
		}
		b.rows[n] = b.rows[i]
		n++
	}
	b.rows = b.rows[:n]
	v.Release()
	d.tuplesIn.Add(in)
	d.probes.Add(probes)
	d.drops.Add(drops)
}

// FilterStats is a snapshot of one Filter's run-time counters.
type FilterStats struct {
	Dimension string
	Stored    int
	TuplesIn  int64
	Probes    int64
	Drops     int64
}

// DropRate is the observed fraction of incoming tuples dropped.
func (s FilterStats) DropRate() float64 {
	if s.TuplesIn == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.TuplesIn)
}

func (d *dimState) stats() FilterStats {
	return FilterStats{
		Dimension: d.table.Name,
		Stored:    d.size(),
		TuplesIn:  d.tuplesIn.Load(),
		Probes:    d.probes.Load(),
		Drops:     d.drops.Load(),
	}
}

// decayStats halves the counters so the on-line optimizer tracks the
// current query mix rather than all history (§3.4). CAS loops keep
// concurrent Adds from Stage workers intact: a plain Load/Store pair
// would silently discard any Add landing between the two.
func (d *dimState) decayStats() {
	decayCounter(&d.tuplesIn)
	decayCounter(&d.probes)
	decayCounter(&d.drops)
}

func decayCounter(c *atomic.Int64) {
	for {
		v := c.Load()
		if c.CompareAndSwap(v, v/2) {
			return
		}
	}
}
