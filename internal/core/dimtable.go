package core

import (
	"sync"
	"sync/atomic"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/expr"
	"cjoin/internal/storage"
)

// dimEntry is one stored dimension tuple δ with its bit-vector b_δ:
// bit i is 1 iff query i references this dimension and selects δ, or
// query i is active and does not reference this dimension (§3.2.1).
type dimEntry struct {
	row []int64
	bv  bitvec.Vec
}

// dimState is the Filter state for one dimension table: the hash table
// HD_j plus the complement bitmap b_Dj (bit i set iff active query i does
// not reference D_j), which doubles as the filtering vector for fact
// tuples whose dimension tuple is absent from the table and as the
// probe-skip mask (§3.2.2).
//
// The hash table is read-mostly (§4): Filters take the read lock per
// batch; the pipeline manager takes the write lock during query admission
// and finalization sweeps.
type dimState struct {
	index  int // dimension position within the star
	table  *catalog.Table
	fkCol  int
	keyCol int
	words  int

	noSkip bool // ablation: disable the probe-skip optimization

	mu   sync.RWMutex
	ht   map[int64]*dimEntry
	bDj  bitvec.Vec
	refs int // active queries referencing this dimension

	// Run-time statistics for on-the-fly Filter ordering (§3.4).
	tuplesIn atomic.Int64
	probes   atomic.Int64
	drops    atomic.Int64
}

func newDimState(star *catalog.Star, index, maxConc int) *dimState {
	return &dimState{
		index:  index,
		table:  star.Dims[index],
		fkCol:  star.FKCol[index],
		keyCol: star.KeyCol[index],
		words:  bitvec.Words(maxConc),
		ht:     make(map[int64]*dimEntry),
		bDj:    bitvec.New(maxConc),
	}
}

// refCount returns the number of active queries referencing the
// dimension.
func (d *dimState) refCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.refs
}

// size returns the number of stored dimension tuples.
func (d *dimState) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ht)
}

// admit implements the per-dimension half of Algorithm 1 for query slot
// n. If the query references this dimension, pred selects the dimension
// tuples to load (σ_cnj(D_j)); otherwise pred is nil and the dimension
// merely marks the query as non-referencing.
//
// Invariant on entry (established by remove): bit n is clear in bDj and
// in every stored entry.
func (d *dimState) admit(slot int, pred expr.Node) error {
	if pred == nil {
		d.mu.Lock()
		d.bDj.Set(slot)
		for _, e := range d.ht {
			e.bv.Set(slot)
		}
		d.mu.Unlock()
		return nil
	}

	// Evaluate the dimension query outside the write lock where
	// possible: collect selected rows first (the paper issues the
	// predicate query to the underlying engine), then install them.
	var selected [][]int64
	sc := storage.NewScanner(d.table.Heap)
	for row, ok := sc.Next(); ok; row, ok = sc.Next() {
		if expr.EvalRow(pred, row) {
			cp := make([]int64, len(row))
			copy(cp, row)
			selected = append(selected, cp)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	d.mu.Lock()
	d.refs++
	for _, row := range selected {
		key := row[d.keyCol]
		e, ok := d.ht[key]
		if !ok {
			e = &dimEntry{row: row, bv: d.bDj.Clone()}
			d.ht[key] = e
		}
		e.bv.Set(slot)
	}
	d.mu.Unlock()
	return nil
}

// remove implements the per-dimension half of Algorithm 2 for query slot
// n: clear bit n everywhere and garbage-collect entries selected by no
// remaining referencing query. An entry is dead when it has no set bit
// belonging to a query that references this dimension — i.e. when
// (b_δ AND NOT b_Dj) == 0, since b_Dj holds exactly the bits of active
// non-referencing queries.
func (d *dimState) remove(slot int, referenced bool) (emptied bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bDj.Clear(slot)
	if referenced {
		d.refs--
	}
	for key, e := range d.ht {
		e.bv.Clear(slot)
		if e.bv.AndNotIsZero(d.bDj) {
			delete(d.ht, key)
		}
	}
	return len(d.ht) == 0 && d.refs == 0
}

// filterBatch probes the dimension hash table for every tuple in the
// batch, ANDs bit-vectors, attaches joining dimension pointers, and
// compacts the batch in place, dropping tuples whose bit-vector became
// zero (§3.2.2).
func (d *dimState) filterBatch(b *batch) {
	d.mu.RLock()
	if d.refs == 0 {
		// No active query references this dimension: b_Dj covers every
		// relevant bit, the AND is a no-op, and probing is pointless.
		d.mu.RUnlock()
		return
	}
	in := int64(len(b.rows))
	n := 0
	var probes, drops int64
	for i := range b.rows {
		t := &b.rows[i]
		// Probe-skip optimization: if τ is relevant only to queries
		// that do not reference D_j, forward it unchanged.
		if !d.noSkip && t.bv.AndNotIsZero(d.bDj) {
			b.rows[n] = b.rows[i]
			n++
			continue
		}
		probes++
		if e, ok := d.ht[t.row[d.fkCol]]; ok {
			t.bv.And(e.bv)
			t.dims[d.index] = e
		} else {
			t.bv.And(d.bDj)
		}
		if t.bv.IsZero() {
			drops++
			continue
		}
		b.rows[n] = b.rows[i]
		n++
	}
	b.rows = b.rows[:n]
	d.mu.RUnlock()
	d.tuplesIn.Add(in)
	d.probes.Add(probes)
	d.drops.Add(drops)
}

// FilterStats is a snapshot of one Filter's run-time counters.
type FilterStats struct {
	Dimension string
	Stored    int
	TuplesIn  int64
	Probes    int64
	Drops     int64
}

// DropRate is the observed fraction of incoming tuples dropped.
func (s FilterStats) DropRate() float64 {
	if s.TuplesIn == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.TuplesIn)
}

func (d *dimState) stats() FilterStats {
	return FilterStats{
		Dimension: d.table.Name,
		Stored:    d.size(),
		TuplesIn:  d.tuplesIn.Load(),
		Probes:    d.probes.Load(),
		Drops:     d.drops.Load(),
	}
}

// decayStats halves the counters so the on-line optimizer tracks the
// current query mix rather than all history (§3.4).
func (d *dimState) decayStats() {
	d.tuplesIn.Store(d.tuplesIn.Load() / 2)
	d.probes.Store(d.probes.Load() / 2)
	d.drops.Store(d.drops.Load() / 2)
}
