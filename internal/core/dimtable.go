package core

import (
	"sync/atomic"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/dimht"
	"cjoin/internal/expr"
	"cjoin/internal/storage"
)

// dimTable abstracts the Filter's per-dimension store: the hash table
// HD_j plus the complement bitmap b_Dj (bit i set iff active query i does
// not reference D_j), which doubles as the filtering vector for fact
// tuples whose dimension tuple is absent from the table and as the
// probe-skip mask (§3.2.2).
//
// Two implementations exist: cowTable (default) publishes copy-on-write
// dimht snapshots so the probe path is lock-free, and mapTable keeps the
// original map[int64]*dimEntry under an RWMutex as an ablation baseline
// (Config.LegacyMapFilter).
type dimTable interface {
	refCount() int
	size() int
	// admitNonRef marks query slot as active but non-referencing: set
	// bit slot in b_Dj and in every stored entry (§3.2.1's implicit TRUE
	// predicate).
	admitNonRef(slot int)
	// admitRef installs the rows selected by the query's dimension
	// predicate and sets bit slot on each (Algorithm 1).
	admitRef(slot, keyCol int, rows [][]int64)
	// remove clears bit slot everywhere and garbage-collects entries
	// selected by no remaining referencing query (Algorithm 2). It
	// reports whether the table emptied.
	remove(slot int, referenced bool) (emptied bool)
	// filterBatch probes the table for every tuple in the batch, ANDs
	// bit-vectors, attaches joining dimension rows, compacts the batch
	// in place (§3.2.2), and accumulates d's probe/drop statistics.
	filterBatch(d *dimState, b *batch)
	// forEach visits every stored entry; the bit-vector aliases internal
	// storage and must not be modified or retained.
	forEach(fn func(key int64, row []int64, bv bitvec.Vec) bool)
	// forceRefs overrides the reference count (test plumbing only).
	forceRefs(n int)
}

// dimState is the Filter state for one dimension table: schema wiring,
// the pluggable store, and run-time statistics for on-the-fly Filter
// ordering (§3.4).
type dimState struct {
	index  int // dimension position within the star
	table  *catalog.Table
	fkCol  int
	keyCol int
	words  int

	noSkip bool // ablation: disable the probe-skip optimization

	tab dimTable

	tuplesIn atomic.Int64
	probes   atomic.Int64
	drops    atomic.Int64
}

func newDimState(star *catalog.Star, index, maxConc int, legacyMap bool) *dimState {
	d := &dimState{
		index:  index,
		table:  star.Dims[index],
		fkCol:  star.FKCol[index],
		keyCol: star.KeyCol[index],
		words:  bitvec.Words(maxConc),
	}
	ncols := star.Dims[index].Heap.NumCols()
	if legacyMap {
		d.tab = newMapTable(maxConc)
	} else {
		d.tab = &cowTable{t: dimht.New(d.words, ncols)}
	}
	return d
}

// refCount returns the number of active queries referencing the
// dimension.
func (d *dimState) refCount() int { return d.tab.refCount() }

// size returns the number of stored dimension tuples.
func (d *dimState) size() int { return d.tab.size() }

// admit implements the per-dimension half of Algorithm 1 for query slot
// n. If the query references this dimension, pred selects the dimension
// tuples to load (σ_cnj(D_j)); otherwise pred is nil and the dimension
// merely marks the query as non-referencing.
//
// Invariant on entry (established by remove): bit n is clear in bDj and
// in every stored entry.
func (d *dimState) admit(slot int, pred expr.Node) error {
	if pred == nil {
		d.tab.admitNonRef(slot)
		return nil
	}

	// Evaluate the dimension query before mutating anything (the paper
	// issues the predicate query to the underlying engine): collect
	// selected rows first, then install them, so a scan error leaves the
	// table untouched.
	var selected [][]int64
	sc := storage.NewScanner(d.table.Heap)
	for row, ok := sc.Next(); ok; row, ok = sc.Next() {
		if expr.EvalRow(pred, row) {
			cp := make([]int64, len(row))
			copy(cp, row)
			selected = append(selected, cp)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	d.tab.admitRef(slot, d.keyCol, selected)
	return nil
}

// remove implements the per-dimension half of Algorithm 2 for query slot
// n: clear bit n everywhere and garbage-collect entries selected by no
// remaining referencing query. An entry is dead when it has no set bit
// belonging to a query that references this dimension — i.e. when
// (b_δ AND NOT b_Dj) == 0, since b_Dj holds exactly the bits of active
// non-referencing queries.
func (d *dimState) remove(slot int, referenced bool) (emptied bool) {
	return d.tab.remove(slot, referenced)
}

// filterBatch runs the Filter over one batch.
func (d *dimState) filterBatch(b *batch) { d.tab.filterBatch(d, b) }

// selectedKeyRange returns the min and max stored key carrying the
// query's bit — used for partition pruning (§5). any is false when the
// query selects no stored tuple.
func (d *dimState) selectedKeyRange(slot int) (minKey, maxKey int64, any bool) {
	d.tab.forEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if !bv.Get(slot) {
			return true
		}
		if !any || key < minKey {
			minKey = key
		}
		if !any || key > maxKey {
			maxKey = key
		}
		any = true
		return true
	})
	return
}

// cowTable is the default store: a dimht copy-on-write open-addressing
// table. filterBatch probes an atomically loaded snapshot and therefore
// takes no lock; admission and finalization build the next snapshot off
// to the side (writers serialize inside dimht.Table).
type cowTable struct {
	t *dimht.Table
}

func (c *cowTable) refCount() int { return c.t.Load().Refs() }
func (c *cowTable) size() int     { return c.t.Load().Len() }

func (c *cowTable) admitNonRef(slot int) {
	c.t.Update(func(b *dimht.Builder) {
		b.SetMaskBit(slot)
		b.SetBitAll(slot)
	})
}

func (c *cowTable) admitRef(slot, keyCol int, rows [][]int64) {
	c.t.Update(func(b *dimht.Builder) {
		b.AddRef()
		for _, row := range rows {
			b.Upsert(row[keyCol], row).Set(slot)
		}
	})
}

func (c *cowTable) remove(slot int, referenced bool) (emptied bool) {
	s := c.t.Update(func(b *dimht.Builder) {
		b.ClearMaskBit(slot)
		if referenced {
			b.DropRef()
		}
		b.ClearBitAll(slot)
		mask := b.Mask()
		b.Retain(func(bv bitvec.Vec) bool { return !bv.AndNotIsZero(mask) })
	})
	return s.Len() == 0 && s.Refs() == 0
}

func (c *cowTable) forEach(fn func(key int64, row []int64, bv bitvec.Vec) bool) {
	c.t.Load().ForEach(fn)
}

func (c *cowTable) forceRefs(n int) {
	c.t.Update(func(b *dimht.Builder) { b.SetRefs(n) })
}

// slot markers for the two-pass probe. Table slots are >= 0; miss and
// skip ride in the same scratch array.
const (
	slotMiss = int32(-1)
	slotSkip = int32(-2)
)

// filterBatch is the CJOIN hot loop. One atomic load pins a consistent
// (table, b_Dj, refs) snapshot for the whole batch; no lock is taken.
//
// The loop is split into two passes over the batch — hash/probe first,
// then AND/compact — so the probe pass issues its independent memory
// loads back to back (the hardware can overlap the misses) instead of
// interleaving them with the branchy compaction logic.
func (c *cowTable) filterBatch(d *dimState, b *batch) {
	s := c.t.Load()
	if s.Refs() == 0 {
		// No active query references this dimension: b_Dj covers every
		// relevant bit, the AND is a no-op, and probing is pointless.
		return
	}
	in := int64(len(b.rows))
	var probes, drops int64
	if s.Words() == 1 {
		probes, drops = filterBatchWord(d, b, s)
	} else {
		probes, drops = filterBatchVec(d, b, s)
	}
	d.tuplesIn.Add(in)
	d.probes.Add(probes)
	d.drops.Add(drops)
}

// filterBatchWord is the single-word fast path (maxConc <= 64): the whole
// bit-vector is one uint64, so the probe-skip test, the AND, and the
// zero-check are plain register operations with no slice iteration.
func filterBatchWord(d *dimState, b *batch, s *dimht.Snapshot) (probes, drops int64) {
	mask := s.MaskWord()
	rows := b.rows
	slots := b.slots[:len(rows)]
	noSkip := d.noSkip
	fk := d.fkCol

	// Pass 1: classify every tuple and resolve its probe.
	for i := range rows {
		if !noSkip && rows[i].bv.Uint64()&^mask == 0 {
			// Probe-skip optimization (§3.2.2): τ is relevant only to
			// queries that do not reference D_j.
			slots[i] = slotSkip
			continue
		}
		slots[i] = s.Lookup(rows[i].row[fk])
	}

	// Pass 2: AND, attach, compact.
	n := 0
	dim := d.index
	for i := range rows {
		sl := slots[i]
		if sl == slotSkip {
			rows[n] = rows[i]
			n++
			continue
		}
		probes++
		w := rows[i].bv.Uint64()
		if sl >= 0 {
			w &= s.Word(sl)
			rows[i].dims[dim] = s.Row(sl)
		} else {
			w &= mask
		}
		if w == 0 {
			drops++
			continue
		}
		rows[i].bv.SetUint64(w)
		rows[n] = rows[i]
		n++
	}
	b.rows = rows[:n]
	return
}

// filterBatchVec is the general path for maxConc > 64: identical
// structure, multi-word bit-vector operations.
func filterBatchVec(d *dimState, b *batch, s *dimht.Snapshot) (probes, drops int64) {
	bDj := s.Mask()
	rows := b.rows
	slots := b.slots[:len(rows)]
	noSkip := d.noSkip
	fk := d.fkCol

	for i := range rows {
		if !noSkip && rows[i].bv.AndNotIsZero(bDj) {
			slots[i] = slotSkip
			continue
		}
		slots[i] = s.Lookup(rows[i].row[fk])
	}

	n := 0
	dim := d.index
	for i := range rows {
		sl := slots[i]
		if sl == slotSkip {
			rows[n] = rows[i]
			n++
			continue
		}
		probes++
		t := &rows[i]
		if sl >= 0 {
			// Deliberately Vec.And, not bitvec.AndPair: And inlines into
			// this loop while AndPair (8-word blocks) does not, and the
			// A/B at mc=256 showed the per-tuple call overhead costs more
			// than the wider unroll saves (see PERFORMANCE.md PR 3).
			t.bv.And(s.Bits(sl))
			t.dims[dim] = s.Row(sl)
		} else {
			t.bv.And(bDj)
		}
		if t.bv.IsZero() {
			drops++
			continue
		}
		rows[n] = rows[i]
		n++
	}
	b.rows = rows[:n]
	return
}

// FilterStats is a snapshot of one Filter's run-time counters.
type FilterStats struct {
	Dimension string
	Stored    int
	TuplesIn  int64
	Probes    int64
	Drops     int64
}

// DropRate is the observed fraction of incoming tuples dropped.
func (s FilterStats) DropRate() float64 {
	if s.TuplesIn == 0 {
		return 0
	}
	return float64(s.Drops) / float64(s.TuplesIn)
}

func (d *dimState) stats() FilterStats {
	return FilterStats{
		Dimension: d.table.Name,
		Stored:    d.size(),
		TuplesIn:  d.tuplesIn.Load(),
		Probes:    d.probes.Load(),
		Drops:     d.drops.Load(),
	}
}

// decayStats halves the counters so the on-line optimizer tracks the
// current query mix rather than all history (§3.4). CAS loops keep
// concurrent Adds from Stage workers intact: a plain Load/Store pair
// would silently discard any Add landing between the two.
func (d *dimState) decayStats() {
	decayCounter(&d.tuplesIn)
	decayCounter(&d.probes)
	decayCounter(&d.drops)
}

func decayCounter(c *atomic.Int64) {
	for {
		v := c.Load()
		if c.CompareAndSwap(v, v/2) {
			return
		}
	}
}
