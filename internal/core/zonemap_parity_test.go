package core_test

import (
	"fmt"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

// TestZoneMapParityRandomized is the end-to-end soundness property:
// randomized SSB workloads with zone maps on must be bit-exact against
// the internal/ref ground truth, over raw and RLE-compressed heaps and
// over partitioned and unpartitioned layouts. Each dataset size is
// chosen to leave an unflushed tail page, so the conservative tail path
// is always on the line.
func TestZoneMapParityRandomized(t *testing.T) {
	for _, tc := range []struct {
		name     string
		compress bool
		parts    int
	}{
		{"raw-unpartitioned", false, 0},
		{"rle-unpartitioned", true, 0},
		{"raw-partitioned", false, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := ssb.Generate(ssb.Config{
				SF: 1, FactRowsPerSF: 2800, Seed: 29,
				CompressFact: tc.compress, Partitions: tc.parts,
			})
			if err != nil {
				t.Fatal(err)
			}
			fact := ds.Star.Partitions()
			if last := fact[len(fact)-1].Heap; last.FlushedPages() >= last.NumPages() {
				t.Fatal("dataset has no tail page; the conservative tail path is untested")
			}
			p := startPipeline(t, ds, core.Config{MaxConcurrent: 16, Workers: 2})
			for _, sel := range []float64{0.01, 0.1} {
				for _, q := range bindWorkload(t, ds, 8, sel, 31) {
					h, err := p.Submit(q)
					if err != nil {
						t.Fatal(err)
					}
					res := h.Wait()
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					want, err := ref.Execute(q)
					if err != nil {
						t.Fatal(err)
					}
					if !ref.ResultsEqual(res.Rows, want) {
						t.Fatalf("zone-mapped query diverges from reference: %s", q.SQL)
					}
				}
			}
		})
	}
}

// TestZoneMapPruningUnpartitioned verifies the new capability §5 could
// not provide: on an UNPARTITIONED heap — where partition pruning has
// nothing to prune — a narrow date-window query must be charged
// strictly fewer pages with zone maps on than off (at least the 30%
// the acceptance bar demands; date clustering makes it far more), with
// identical results, while an unrestricted query still pays the full
// table either way.
func TestZoneMapPruningUnpartitioned(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	narrow := fmt.Sprintf(
		"SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year",
		ds.DateKeys[0], ds.DateKeys[len(ds.DateKeys)/8])
	wide := "SELECT SUM(lo_revenue), d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year"

	run := func(disable bool, sql string) (int64, []int64) {
		p := startPipeline(t, ds, core.Config{MaxConcurrent: 4, DisableZoneMaps: disable})
		q, err := query.ParseBind(sql, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		h, err := p.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		res := h.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		var flat []int64
		for _, r := range res.Rows {
			flat = append(flat, r.Group...)
			flat = append(flat, r.Ints...)
		}
		return h.PagesScanned(), flat
	}

	offPages, offRows := run(true, narrow)
	onPages, onRows := run(false, narrow)
	total := int64(ds.Star.Partitions()[0].Heap.NumPages())
	if offPages != total {
		t.Fatalf("zonemaps off charged %d pages, unpartitioned baseline is the full table (%d)", offPages, total)
	}
	if onPages*10 > offPages*7 { // ≥ 30% reduction
		t.Fatalf("pruning ineffective: %d of %d pages charged with zone maps on", onPages, offPages)
	}
	if fmt.Sprint(offRows) != fmt.Sprint(onRows) {
		t.Fatalf("zone maps changed the answer: off=%v on=%v", offRows, onRows)
	}

	widePages, _ := run(false, wide)
	if widePages != total {
		t.Fatalf("unrestricted query charged %d pages with zone maps on, want the full table (%d)", widePages, total)
	}
}

// TestZoneMapTailPageQueried pins the tail-page contract end to end: a
// query whose only qualifying rows live on the unflushed tail page (the
// fact table is date-sorted, so the max date key lands there) must
// return them — the tail has no frozen synopsis and is never pruned.
func TestZoneMapTailPageQueried(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 2800, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	heap := ds.Star.Partitions()[0].Heap
	if heap.FlushedPages() >= heap.NumPages() {
		t.Fatal("dataset has no tail page")
	}
	// The date key of the very last fact row: date-sorted load puts it on
	// the tail page.
	lastRow, err := heap.RowAt(heap.NumRows() - 1)
	if err != nil {
		t.Fatal(err)
	}
	tailKey := lastRow[ssb.LoOrderdate]
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q, err := query.ParseBind(fmt.Sprintf(
		"SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d",
		tailKey, tailKey), ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want, err := ref.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 || want[0].Ints[0] == 0 {
		t.Fatal("test setup broken: no rows carry the tail key")
	}
	if !ref.ResultsEqual(res.Rows, want) {
		t.Fatalf("tail-page rows lost: got %v, want %v", res.Rows, want)
	}
}
