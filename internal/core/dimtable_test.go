package core

import (
	"testing"

	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/expr"
)

// miniStar builds a 1-dimension star with dimension rows (k, v) for
// k in [0, n).
func miniStar(t *testing.T, n int64) *catalog.Star {
	t.Helper()
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 0, []catalog.Column{{Name: "fk"}, {Name: "m"}})
	dim := catalog.NewTable(dev, "d", 0, []catalog.Column{{Name: "k"}, {Name: "v"}})
	for k := int64(0); k < n; k++ {
		dim.Heap.Append([]int64{k, k % 5})
	}
	star, err := catalog.NewStar(fact, []*catalog.Table{dim}, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	return star
}

// predLt builds "v < x" over the dimension row (slot 0, col 1).
func predLt(x int64) expr.Node {
	return expr.Bin{Op: expr.Lt, L: expr.Col{Slot: 0, Idx: 1, Name: "v"}, R: expr.Const{V: x}}
}

// forEachImpl runs the test body against both Filter stores: the default
// lock-free dimht table and the legacy map baseline.
func forEachImpl(t *testing.T, fn func(t *testing.T, legacyMap bool)) {
	t.Run("dimht", func(t *testing.T) { fn(t, false) })
	t.Run("map", func(t *testing.T) { fn(t, true) })
}

// checkEntries asserts pred over every stored entry's bit-vector.
func checkEntries(t *testing.T, ds *dimState, what string, pred func(bv bitvec.Vec) bool) {
	t.Helper()
	ds.store.ForEach(func(key int64, _ []int64, bv bitvec.Vec) bool {
		if !pred(bv) {
			t.Fatalf("entry %d: %s (bits %v)", key, what, bv)
		}
		return true
	})
}

func TestDimStateAdmitReferenced(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		star := miniStar(t, 20)
		ds := newTestDimState(star, 0, 8, legacyMap)
		// Query slot 3 selects v < 2 (k%5 in {0,1}): 8 of 20 rows.
		if err := ds.admit(3, predLt(2)); err != nil {
			t.Fatal(err)
		}
		if ds.refCount() != 1 {
			t.Fatalf("refs %d", ds.refCount())
		}
		if ds.size() != 8 {
			t.Fatalf("stored %d entries", ds.size())
		}
		checkEntries(t, ds, "selected entry missing query bit", func(bv bitvec.Vec) bool {
			return bv.Get(3)
		})
	})
}

func TestDimStateAdmitNonReferencing(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		star := miniStar(t, 10)
		ds := newTestDimState(star, 0, 8, legacyMap)
		if err := ds.admit(1, predLt(5)); err != nil {
			t.Fatal(err)
		}
		// Slot 2 does not reference the dimension: every stored entry and
		// bDj must carry its bit (§3.2.1's implicit TRUE predicate).
		if err := ds.admit(2, nil); err != nil {
			t.Fatal(err)
		}
		checkEntries(t, ds, "non-referencing query bit missing", func(bv bitvec.Vec) bool {
			return bv.Get(2)
		})
	})
}

func TestDimStateRemoveGC(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		star := miniStar(t, 20)
		ds := newTestDimState(star, 0, 8, legacyMap)
		if err := ds.admit(0, predLt(2)); err != nil { // 8 entries
			t.Fatal(err)
		}
		if err := ds.admit(1, predLt(1)); err != nil { // subset: 4 entries
			t.Fatal(err)
		}
		if ds.size() != 8 {
			t.Fatalf("stored %d", ds.size())
		}
		// Removing query 0 must GC the entries only it selected.
		if emptied := ds.remove(0, true); emptied {
			t.Fatal("table must not be empty: query 1 remains")
		}
		if ds.size() != 4 {
			t.Fatalf("GC left %d entries, want 4", ds.size())
		}
		if emptied := ds.remove(1, true); !emptied {
			t.Fatal("removing the last query must empty the table")
		}
		if ds.size() != 0 || ds.refCount() != 0 {
			t.Fatalf("size=%d refs=%d", ds.size(), ds.refCount())
		}
	})
}

func TestDimStateSlotReuseInvariant(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		// After remove, the slot's bit must be clear everywhere so the
		// next admission with the same slot starts clean.
		star := miniStar(t, 10)
		ds := newTestDimState(star, 0, 8, legacyMap)
		if err := ds.admit(4, predLt(5)); err != nil {
			t.Fatal(err)
		}
		if err := ds.admit(5, predLt(3)); err != nil {
			t.Fatal(err)
		}
		ds.remove(4, true)
		checkEntries(t, ds, "stale entry bit after remove", func(bv bitvec.Vec) bool {
			return !bv.Get(4)
		})
		// Reuse slot 4 as non-referencing: every surviving entry gains it.
		if err := ds.admit(4, nil); err != nil {
			t.Fatal(err)
		}
		checkEntries(t, ds, "reused slot bit missing", func(bv bitvec.Vec) bool {
			return bv.Get(4)
		})
	})
}

func TestFilterBatchSemantics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		star := miniStar(t, 10)
		ds := newTestDimState(star, 0, 8, legacyMap)
		if err := ds.admit(0, predLt(1)); err != nil { // selects k%5==0: keys 0,5
			t.Fatal(err)
		}
		if err := ds.admit(1, nil); err != nil { // does not reference d
			t.Fatal(err)
		}

		b := newBatch(4, 2, bitvec.Words(8), 1)
		// Tuple A: fk joins selected entry 5 → both queries keep it.
		a := b.alloc()
		a.row[0] = 5
		a.bv.Set(0)
		a.bv.Set(1)
		// Tuple B: fk joins unselected key 3 → only query 1 keeps it.
		tb := b.alloc()
		tb.row[0] = 3
		tb.bv.Set(0)
		tb.bv.Set(1)
		// Tuple C: relevant only to query 0, joins unselected key → dropped.
		tc := b.alloc()
		tc.row[0] = 3
		tc.bv.Set(0)
		// Tuple D: relevant only to non-referencing query 1 → probe skipped,
		// forwarded untouched.
		td := b.alloc()
		td.row[0] = 99 // key that does not even exist
		td.bv.Set(1)

		ds.filterBatch(b)
		if len(b.rows) != 3 {
			t.Fatalf("survivors %d, want 3", len(b.rows))
		}
		if !b.rows[0].bv.Get(0) || !b.rows[0].bv.Get(1) {
			t.Fatal("tuple A bits wrong")
		}
		if b.rows[0].dims[0] == nil || b.rows[0].dims[0][0] != 5 {
			t.Fatal("tuple A dimension row not attached")
		}
		if b.rows[1].bv.Get(0) || !b.rows[1].bv.Get(1) {
			t.Fatal("tuple B bits wrong")
		}
		if b.rows[2].dims[0] != nil {
			t.Fatal("skip-path tuple must not have a row attached")
		}
		st := ds.stats()
		if st.TuplesIn != 4 || st.Probes != 3 || st.Drops != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
}

// TestFilterBatchWidePath exercises the multi-word bit-vector path
// (maxConc > 64), which the single-word fast path bypasses.
func TestFilterBatchWidePath(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		const maxConc = 192
		star := miniStar(t, 10)
		ds := newTestDimState(star, 0, maxConc, legacyMap)
		hi := maxConc - 1                               // slot in the third word
		if err := ds.admit(hi, predLt(1)); err != nil { // keys 0, 5
			t.Fatal(err)
		}
		if err := ds.admit(70, nil); err != nil { // second word, non-referencing
			t.Fatal(err)
		}

		b := newBatch(3, 2, bitvec.Words(maxConc), 1)
		a := b.alloc() // joins selected key → both bits survive
		a.row[0] = 5
		a.bv.Set(hi)
		a.bv.Set(70)
		tb := b.alloc() // misses → only the non-referencing bit survives
		tb.row[0] = 3
		tb.bv.Set(hi)
		tb.bv.Set(70)
		tc := b.alloc() // relevant only to hi, misses → dropped
		tc.row[0] = 3
		tc.bv.Set(hi)

		ds.filterBatch(b)
		if len(b.rows) != 2 {
			t.Fatalf("survivors %d, want 2", len(b.rows))
		}
		if !b.rows[0].bv.Get(hi) || !b.rows[0].bv.Get(70) {
			t.Fatal("tuple A bits wrong")
		}
		if b.rows[0].dims[0] == nil || b.rows[0].dims[0][0] != 5 {
			t.Fatal("tuple A dimension row not attached")
		}
		if b.rows[1].bv.Get(hi) || !b.rows[1].bv.Get(70) {
			t.Fatal("tuple B bits wrong")
		}
	})
}

func TestFilterBatchNoRefsPassthrough(t *testing.T) {
	forEachImpl(t, func(t *testing.T, legacyMap bool) {
		star := miniStar(t, 5)
		ds := newTestDimState(star, 0, 8, legacyMap)
		b := newBatch(2, 2, bitvec.Words(8), 1)
		x := b.alloc()
		x.row[0] = 1
		x.bv.Set(0)
		ds.filterBatch(b)
		if len(b.rows) != 1 || !b.rows[0].bv.Get(0) {
			t.Fatal("unreferenced filter must pass tuples through")
		}
		if ds.stats().Probes != 0 {
			t.Fatal("unreferenced filter must not probe")
		}
	})
}

func TestDecayStats(t *testing.T) {
	star := miniStar(t, 5)
	ds := newTestDimState(star, 0, 8, false)
	ds.tuplesIn.Store(100)
	ds.drops.Store(50)
	ds.probes.Store(80)
	ds.decayStats()
	st := ds.stats()
	if st.TuplesIn != 50 || st.Drops != 25 || st.Probes != 40 {
		t.Fatalf("decay wrong: %+v", st)
	}
	if st.DropRate() != 0.5 {
		t.Fatalf("drop rate %g", st.DropRate())
	}
}
