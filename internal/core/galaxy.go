package core

import (
	"fmt"

	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// TupleSink receives the joined star tuples of one query instead of an
// aggregation operator — the §5 galaxy-schema mechanism where "the
// Distributor pipes the results of Qi to a fact-to-fact join operator
// instead of an aggregation operator".
//
// Consume is called from the Distributor goroutine; the Joined value
// aliases pipeline buffers and must be deep-copied if retained. Finalize
// is called exactly once, after the last Consume.
type TupleSink interface {
	Consume(j *expr.Joined)
	Finalize(err error)
}

// SubmitWithSink registers q like Submit but routes its result tuples to
// sink. The returned handle's Wait still reports completion (with empty
// Rows on success).
func (p *Pipeline) SubmitWithSink(q *query.Bound, sink TupleSink) (Handle, error) {
	if sink == nil {
		return nil, fmt.Errorf("core: nil sink")
	}
	h, err := p.submit(q, sink)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// galaxySideA collects the star results of the first sub-query into a
// hash table on the fact-to-fact join key.
type galaxySideA struct {
	joinCol int
	ndims   int
	table   map[int64][]*expr.Joined
	err     error
	done    chan struct{}
}

func newGalaxySideA(joinCol, ndims int) *galaxySideA {
	return &galaxySideA{
		joinCol: joinCol,
		ndims:   ndims,
		table:   make(map[int64][]*expr.Joined),
		done:    make(chan struct{}),
	}
}

func (g *galaxySideA) Consume(j *expr.Joined) {
	cp := deepCopyJoined(j)
	key := cp.Fact[g.joinCol]
	g.table[key] = append(g.table[key], cp)
}

func (g *galaxySideA) Finalize(err error) {
	g.err = err
	close(g.done)
}

// galaxySideB probes side A's table with the second sub-query's tuples.
type galaxySideB struct {
	a       *galaxySideA
	joinCol int
	emit    func(fa, fb *expr.Joined)
	err     error
	done    chan struct{}
}

func (g *galaxySideB) Consume(j *expr.Joined) {
	for _, fa := range g.a.table[j.Fact[g.joinCol]] {
		g.emit(fa, j)
	}
}

func (g *galaxySideB) Finalize(err error) {
	g.err = err
	close(g.done)
}

// ExecuteGalaxy evaluates a two-fact-table galaxy query (§5): qa and qb
// are the star sub-queries over pipelines a and b (which may be the same
// pipeline when both stars share a fact table); colA and colB are the
// fact-column indexes of the fact-to-fact equi-join pivot. emit is called
// once per joined pair, from b's Distributor goroutine; the first
// argument is a stable deep copy, the second aliases pipeline buffers.
//
// The build side (qa) runs to completion first, then the probe side joins
// against its hash table — the standard build/probe split for the pivot
// join, with each side's star portion evaluated by CJOIN and therefore
// shared with all concurrent star queries on that fact table.
func ExecuteGalaxy(a, b *Pipeline, qa, qb *query.Bound, colA, colB int, emit func(fa, fb *expr.Joined)) error {
	build := newGalaxySideA(colA, len(a.star.Dims))
	ha, err := a.SubmitWithSink(qa, build)
	if err != nil {
		return err
	}
	if res := ha.Wait(); res.Err != nil {
		return res.Err
	}
	<-build.done
	if build.err != nil {
		return build.err
	}

	probe := &galaxySideB{a: build, joinCol: colB, emit: emit, done: make(chan struct{})}
	hb, err := b.SubmitWithSink(qb, probe)
	if err != nil {
		return err
	}
	if res := hb.Wait(); res.Err != nil {
		return res.Err
	}
	<-probe.done
	return probe.err
}

func deepCopyJoined(j *expr.Joined) *expr.Joined {
	cp := &expr.Joined{
		Fact: append([]int64(nil), j.Fact...),
		Dims: make([][]int64, len(j.Dims)),
	}
	for i, d := range j.Dims {
		if d != nil {
			cp.Dims[i] = append([]int64(nil), d...)
		}
	}
	return cp
}
