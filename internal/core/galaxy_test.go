package core_test

import (
	"sync"
	"testing"

	"cjoin/internal/core"
	"cjoin/internal/expr"
	"cjoin/internal/query"
	"cjoin/internal/ssb"
)

func TestSubmitWithSinkStreamsAllTuples(t *testing.T) {
	ds := dataset(t, 1000)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 4})
	q, err := query.ParseBind(
		"SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey", ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{done: make(chan struct{})}
	h, err := p.SubmitWithSink(q, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	<-sink.done
	if sink.n != 1000 {
		t.Fatalf("sink consumed %d tuples, want 1000", sink.n)
	}
	if sink.err != nil {
		t.Fatal(sink.err)
	}
}

type countingSink struct {
	mu   sync.Mutex
	n    int
	err  error
	done chan struct{}
}

func (s *countingSink) Consume(*expr.Joined) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func (s *countingSink) Finalize(err error) {
	s.err = err
	close(s.done)
}

func TestExecuteGalaxy(t *testing.T) {
	// Join the fact table with itself on lo_orderdate as the pivot: for a
	// narrow date range, every pair of fact rows sharing an order date
	// joins. Validate against a direct nested-loop computation.
	ds := dataset(t, 400)
	p := startPipeline(t, ds, core.Config{MaxConcurrent: 8})

	rangeSQL := "SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN 19920101 AND 19920301"
	qa, err := query.ParseBind(rangeSQL, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := query.ParseBind(rangeSQL, ds.Star)
	if err != nil {
		t.Fatal(err)
	}

	var pairs int
	err = core.ExecuteGalaxy(p, p, qa, qb, ssb.LoOrderdate, ssb.LoOrderdate,
		func(fa, fb *expr.Joined) {
			if fa.Fact[ssb.LoOrderdate] != fb.Fact[ssb.LoOrderdate] {
				t.Error("galaxy join key mismatch")
			}
			pairs++
		})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: count pairs by date within the range.
	byDate := map[int64]int{}
	for i := int64(0); i < ds.Lineorder.Heap.NumRows(); i++ {
		row, err := ds.Lineorder.Heap.RowAt(i)
		if err != nil {
			t.Fatal(err)
		}
		d := row[ssb.LoOrderdate]
		if d >= 19920101 && d <= 19920301 {
			byDate[d]++
		}
	}
	want := 0
	for _, n := range byDate {
		want += n * n
	}
	if pairs != want {
		t.Fatalf("galaxy pairs = %d, want %d", pairs, want)
	}
}
