package core

import "sort"

// ReorderFilters re-optimizes the Filter order from run-time statistics
// (§3.4): since every Filter has the same fixed cost — one hash probe and
// one bitwise AND — minimizing expected probes reduces to ordering
// Filters by decreasing observed drop rate. This is the uniform-cost
// specialization of the adaptive stream-filter ordering of Babu et al.
// [5], which the paper adopts.
//
// The new order is installed atomically; Stage workers pick it up at
// their next batch, so no pipeline stall is needed. Correctness does not
// depend on the order (the Filtering Invariant of §3.2.2 holds for any
// permutation); only the expected probe count changes.
func (p *Pipeline) ReorderFilters() {
	p.pmMu.Lock()
	defer p.pmMu.Unlock()

	old := *p.filterOrder.Load()
	if len(old) < 2 {
		return
	}
	type scored struct {
		dim  int
		rate float64
	}
	ss := make([]scored, 0, len(old))
	for _, d := range old {
		ss = append(ss, scored{dim: d, rate: p.dimStates[d].stats().DropRate()})
	}
	sort.SliceStable(ss, func(a, b int) bool { return ss[a].rate > ss[b].rate })
	order := make([]int, len(ss))
	for i, s := range ss {
		order[i] = s.dim
	}
	p.filterOrder.Store(&order)
	for _, d := range order {
		p.dimStates[d].decayStats()
	}
}
