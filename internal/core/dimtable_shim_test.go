package core

// Test-only plumbing for the Filter unit tests and benchmarks: a
// standalone dimState over a private store, plus per-dimension admit and
// remove mirroring what dimplane.Plane does per dimension. Production
// admission lives exclusively in dimplane.Plane (admit once per logical
// query); these shims exist so the probe-path tests can drive one
// dimension's write side directly without constructing a plane and bound
// queries.

import (
	"cjoin/internal/bitvec"
	"cjoin/internal/catalog"
	"cjoin/internal/dimplane"
	"cjoin/internal/expr"
)

// newTestDimState builds a probe-side dimState over a fresh store of the
// requested implementation — the old per-pipeline constructor's shape.
func newTestDimState(star *catalog.Star, index, maxConc int, legacyMap bool) *dimState {
	var store dimplane.Store
	if legacyMap {
		store = dimplane.NewMapStore(maxConc)
	} else {
		store = dimplane.NewCowStore(bitvec.Words(maxConc), star.Dims[index].Heap.NumCols())
	}
	return newDimState(star, index, store)
}

// admit mirrors the plane's per-dimension half of Algorithm 1: evaluate
// pred over the dimension heap and install the selection under slot, or
// mark the slot active-but-non-referencing when pred is nil.
func (d *dimState) admit(slot int, pred expr.Node) error {
	if pred == nil {
		d.store.AdmitNonRef(slot)
		return nil
	}
	rows, err := dimplane.SelectRows(d.table, pred)
	if err != nil {
		return err
	}
	d.store.AdmitRef(slot, d.keyCol, rows)
	return nil
}

// remove mirrors the plane's per-dimension half of Algorithm 2.
func (d *dimState) remove(slot int, referenced bool) (emptied bool) {
	return d.store.Remove(slot, referenced)
}
