package core

import (
	"cjoin/internal/bitvec"
)

// ctrlKind distinguishes the paper's control tuples (§3.3).
type ctrlKind int

const (
	// ctrlStart is the "query start" tuple appended when a query is
	// registered; the Distributor sets up its aggregation operator.
	ctrlStart ctrlKind = iota
	// ctrlEnd is the "end of query" tuple emitted when the continuous
	// scan wraps around the query's starting tuple.
	ctrlEnd
)

// Scan failures no longer flow through a control tuple: an unrecoverable
// scan error transitions the whole pipeline to the terminal Failed state
// (failure.go), whose sweep delivers the typed cause to every resident
// query in one place.

// control is the payload of a control batch.
type control struct {
	kind ctrlKind
	rq   *runningQuery
	err  error
}

// tuple is one in-flight fact tuple: the copied fact row, the
// query-relevance bit-vector bτ, and the joining dimension rows attached
// during probing (§3.2.2) so aggregation operators can read dimension
// attributes without re-probing. Each attached row is a slice into an
// immutable dimht snapshot arena (or a mapTable entry row), so no entry
// pointer is chased downstream.
type tuple struct {
	row  []int64
	bv   bitvec.Vec
	dims [][]int64
}

// batch is the unit of flow through the pipeline: either one control
// tuple or up to Config.BatchRows data tuples. Batches are sequenced by
// the Preprocessor; the Distributor restores sequence order, which
// preserves the control/data tuple ordering property of §3.3.3 under
// multi-threaded Stages.
type batch struct {
	seq    uint64
	ctrl   *control
	rows   []tuple
	pooled bool

	// backing arenas, preallocated once per pooled batch
	rowArena []int64
	bvArena  []uint64
	dimArena [][]int64
	// slots is the scratch array for the Filter's two-pass probe: pass 1
	// records each tuple's resolved table slot (or skip/miss marker),
	// pass 2 applies the bit-vector AND and compacts.
	slots []int32
	ncols int
	words int
	ndims int
}

func newBatch(capRows, ncols, words, ndims int) *batch {
	return &batch{
		pooled:   true,
		rows:     make([]tuple, 0, capRows),
		rowArena: make([]int64, capRows*ncols),
		bvArena:  make([]uint64, capRows*words),
		dimArena: make([][]int64, capRows*ndims),
		slots:    make([]int32, capRows),
		ncols:    ncols,
		words:    words,
		ndims:    ndims,
	}
}

// reset prepares a pooled batch for reuse.
func (b *batch) reset() {
	b.rows = b.rows[:0]
	b.ctrl = nil
}

// full reports whether the batch reached its row capacity.
func (b *batch) full() bool { return len(b.rows) == cap(b.rows) }

// alloc appends a fresh tuple backed by the batch arenas and returns it.
// The tuple's bit-vector is zeroed; dims are nil.
func (b *batch) alloc() *tuple {
	i := len(b.rows)
	bv := bitvec.Vec(b.bvArena[i*b.words : (i+1)*b.words])
	bv.Reset()
	dims := b.dimArena[i*b.ndims : (i+1)*b.ndims]
	for j := range dims {
		dims[j] = nil
	}
	b.rows = append(b.rows, tuple{
		row:  b.rowArena[i*b.ncols : (i+1)*b.ncols],
		bv:   bv,
		dims: dims,
	})
	return &b.rows[len(b.rows)-1]
}

// unalloc drops the most recently allocated tuple (used when the
// Preprocessor decides the tuple is relevant to no query).
func (b *batch) unalloc() { b.rows = b.rows[:len(b.rows)-1] }

func ctrlBatch(seq uint64, kind ctrlKind, rq *runningQuery, err error) *batch {
	return &batch{seq: seq, ctrl: &control{kind: kind, rq: rq, err: err}}
}
