package core

// tuplePool is the paper's specialized allocator (§4): it "preallocates
// data structures for all in-flight tuples, whose number is determined
// based on the upper bound on the length of a tuple queue and the upper
// bound on the number of threads". Batches are recycled through a
// buffered channel, which makes reserve and release single atomic
// operations and gives the Preprocessor natural backpressure when the
// pipeline is saturated.
type tuplePool struct {
	free chan *batch
}

func newTuplePool(nBatches, capRows, ncols, words, ndims int) *tuplePool {
	p := &tuplePool{free: make(chan *batch, nBatches)}
	for i := 0; i < nBatches; i++ {
		p.free <- newBatch(capRows, ncols, words, ndims)
	}
	return p
}

// get blocks until a batch is available or stop closes; it returns nil on
// stop.
func (p *tuplePool) get(stop <-chan struct{}) *batch {
	select {
	case b := <-p.free:
		b.reset()
		return b
	case <-stop:
		return nil
	}
}

// put returns a pooled batch to the free list. Control batches are not
// pooled and are dropped here.
func (p *tuplePool) put(b *batch) {
	if b == nil || !b.pooled {
		return
	}
	p.free <- b
}

// capSlots returns the pool capacity.
func (p *tuplePool) capSlots() int { return cap(p.free) }
