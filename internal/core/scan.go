package core

import (
	"cjoin/internal/catalog"
	"cjoin/internal/storage"
)

// scanPart is one partition of the continuous scan's input. bounds is
// the partition's zone-map face (nil when the source has none), captured
// from the unwrapped source so fault wrappers don't hide it.
type scanPart struct {
	src    PageSource
	bounds BoundsSource
}

// factScan is the continuous scan feeding the Preprocessor (§3.1): it
// cycles over the fact source — or, for a partitioned star (§5), over a
// sequence of fact partitions — forever, in a stable order, reporting the
// absolute row position of every page so queries can be started and
// finalized at exact positions (§3.3.3). For a partition-dealt shard the
// sequence is a subset of the star's partitions (Config.PartSubset), and
// global maps each scan-local partition back to its star-wide index so
// pruning metadata (runningQuery.needParts) stays in one coordinate
// system however the partitions were dealt.
type factScan struct {
	parts   []scanPart
	global  []int // star-wide partition index of each scan-local part
	static  bool  // partitioned stars are static; single heaps may grow
	rpp     int
	ncols   int
	offsets []int64 // starting row position of each partition (static)

	partIdx int
	page    int
	vals    []int64
	scratch []byte

	// zmSkipped counts pages the scan hopped over because no resident
	// query's zone-map bitmap needs them; the preprocessor drains it into
	// the telemetry plane after each delivered page.
	zmSkipped int64
}

// newFactScan builds the continuous scan. wrap, if non-nil, interposes
// on every physical source — the fault injector's seam (ISSUE 6); the
// wrapped source must preserve the original's geometry.
func newFactScan(star *catalog.Star, override PageSource, subset []int, wrap func(PageSource) PageSource) *factScan {
	if wrap == nil {
		wrap = func(s PageSource) PageSource { return s }
	}
	var parts []scanPart
	var global []int
	if override != nil {
		parts = []scanPart{{src: wrap(override), bounds: boundsOf(override)}}
		global = []int{0}
	} else {
		all := star.Partitions()
		if subset == nil {
			subset = make([]int, len(all))
			for i := range all {
				subset[i] = i
			}
		}
		for _, g := range subset {
			parts = append(parts, scanPart{src: wrap(all[g].Heap), bounds: boundsOf(all[g].Heap)})
			global = append(global, g)
		}
	}
	first := parts[0].src
	s := &factScan{
		parts:   parts,
		global:  global,
		static:  override == nil && star.PartCol >= 0,
		rpp:     first.RowsPerPage(),
		ncols:   first.NumCols(),
		vals:    make([]int64, first.RowsPerPage()*first.NumCols()),
		scratch: make([]byte, storage.PageSize),
	}
	if s.static {
		s.offsets = make([]int64, len(parts))
		var off int64
		for i, p := range parts {
			s.offsets[i] = off
			off += int64(p.src.NumPages()) * int64(s.rpp)
		}
	}
	return s
}

// pagesInPart returns the page count of scan-local partition i.
func (s *factScan) pagesInPart(i int) int { return s.parts[i].src.NumPages() }

// pageBounds returns the zone-map synopsis of (partition, page, column),
// ok=false when the source has none or the page is not frozen.
func (s *factScan) pageBounds(part, page, col int) (min, max int64, ok bool) {
	b := s.parts[part].bounds
	if b == nil {
		return 0, 0, false
	}
	return b.PageColBounds(page, col)
}

// takeSkipped drains the count of zone-map-skipped pages.
func (s *factScan) takeSkipped() int64 {
	k := s.zmSkipped
	s.zmSkipped = 0
	return k
}

// globalOf maps a scan-local partition index to the star's global
// partition index (they differ when the scan covers a dealt subset).
func (s *factScan) globalOf(i int) int { return s.global[i] }

// totalPages returns the current total page count across partitions.
func (s *factScan) totalPages() int {
	n := 0
	for i := range s.parts {
		n += s.parts[i].src.NumPages()
	}
	return n
}

// position returns the absolute row position of the page the scan will
// deliver next, or 0 when nothing is scannable.
func (s *factScan) position() int64 {
	s.advance(nil, nil)
	if s.partIdx >= len(s.parts) || s.page >= s.parts[s.partIdx].src.NumPages() {
		return 0
	}
	return s.posOf(s.partIdx, s.page)
}

func (s *factScan) posOf(part, page int) int64 {
	base := int64(0)
	if s.static {
		base = s.offsets[part]
	}
	return base + int64(page)*int64(s.rpp)
}

// advance moves the cursor to the next scannable page, hopping past
// exhausted or skipped partitions and — within an eligible partition —
// past pages skipPage rejects, wrapping to the first partition as
// needed. It reports whether it wrapped. Pages rejected by skipPage are
// tallied into zmSkipped, once per pass over them.
func (s *factScan) advance(skipPart func(part int) bool, skipPage func(part, page int) bool) (wrapped bool) {
	for hops := 0; hops <= len(s.parts); hops++ {
		if s.partIdx >= len(s.parts) {
			s.partIdx = 0
			s.page = 0
			wrapped = true
		}
		np := s.parts[s.partIdx].src.NumPages()
		if s.page < np && (skipPart == nil || !skipPart(s.partIdx)) {
			if skipPage != nil {
				for s.page < np && skipPage(s.partIdx, s.page) {
					s.page++
					s.zmSkipped++
				}
			}
			if s.page < np {
				return wrapped
			}
		}
		s.partIdx++
		s.page = 0
	}
	return wrapped
}

// nextPage delivers the next page in the cycle. skipPart, if non-nil,
// lets the caller omit partitions no active query needs (§5: "a
// sequential scan of the union of identified partitions"); skipPage
// likewise omits individual pages whose zone maps no resident query
// intersects. It returns the decoded values (aliasing an internal
// buffer), row count, absolute position, partition and page index, and
// whether the scan wrapped past the end to produce this page. n == 0
// with err == nil means nothing is scannable (empty or fully skipped
// fact table).
func (s *factScan) nextPage(skipPart func(part int) bool, skipPage func(part, page int) bool) (vals []int64, n int, pos int64, part, page int, wrapped bool, err error) {
	wrapped = s.advance(skipPart, skipPage)
	if s.partIdx >= len(s.parts) {
		// Everything is empty or skipped.
		return nil, 0, 0, 0, 0, wrapped, nil
	}
	p := s.parts[s.partIdx]
	if s.page >= p.src.NumPages() || (skipPart != nil && skipPart(s.partIdx)) ||
		(skipPage != nil && skipPage(s.partIdx, s.page)) {
		return nil, 0, 0, s.partIdx, 0, wrapped, nil
	}
	pos = s.posOf(s.partIdx, s.page)
	n, err = p.src.ReadPage(s.page, s.vals, s.scratch)
	if err != nil {
		return nil, 0, 0, s.partIdx, s.page, wrapped, err
	}
	part, page = s.partIdx, s.page
	// Advance by one page only; partition hand-off happens lazily in
	// advance so a single growing heap picks up appended tail pages
	// before wrapping.
	s.page++
	return s.vals, n, pos, part, page, wrapped, nil
}
