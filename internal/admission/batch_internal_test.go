package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/query"
	"cjoin/internal/ssb"
)

// fakeHandle is a Handle whose query completes when the test says so.
type fakeHandle struct {
	res  core.QueryResult
	done chan struct{}
}

func newFakeHandle() *fakeHandle { return &fakeHandle{done: make(chan struct{})} }

func (h *fakeHandle) finish() { close(h.done) }

func (h *fakeHandle) Slot() int                  { return 0 }
func (h *fakeHandle) Wait() core.QueryResult     { <-h.done; return h.res }
func (h *fakeHandle) Done() <-chan struct{}      { return h.done }
func (h *fakeHandle) Cancel() bool               { return false }
func (h *fakeHandle) Canceled() bool             { return false }
func (h *fakeHandle) PagesScanned() int64        { return 0 }
func (h *fakeHandle) ETA() (time.Duration, bool) { return 0, false }
func (h *fakeHandle) Progress() float64          { return 0 }
func (h *fakeHandle) Submission() time.Duration  { return 0 }

// fakeExec is a choreographed Executor+BatchSubmitter: every Submit and
// SubmitBatch blocks until the test feeds the gate, so the dispatcher
// can be held mid-admission while the waiting line is staged — batch
// formation becomes deterministic instead of a scheduling race.
type fakeExec struct {
	maxConc int
	gate    chan struct{}
	entered chan struct{} // one signal per Submit/SubmitBatch entry

	batchErr  error   // next SubmitBatch fails whole-batch with this
	queryErrs []error // per-query errs for the next SubmitBatch

	mu      sync.Mutex
	singles int
	batches []int
	handles []*fakeHandle
}

func newFakeExec(maxConc int) *fakeExec {
	return &fakeExec{
		maxConc: maxConc,
		gate:    make(chan struct{}, 64),
		entered: make(chan struct{}, 64),
	}
}

func (f *fakeExec) newHandle() *fakeHandle {
	h := newFakeHandle()
	f.handles = append(f.handles, h)
	return h
}

func (f *fakeExec) finishAll() {
	f.mu.Lock()
	hs := f.handles
	f.handles = nil
	f.mu.Unlock()
	for _, h := range hs {
		h.finish()
	}
}

func (f *fakeExec) Submit(q *query.Bound) (core.Handle, error) {
	f.entered <- struct{}{}
	<-f.gate
	f.mu.Lock()
	defer f.mu.Unlock()
	f.singles++
	return f.newHandle(), nil
}

func (f *fakeExec) SubmitCtx(ctx context.Context, q *query.Bound) (core.Handle, error) {
	return f.Submit(q)
}

func (f *fakeExec) SubmitBatch(ctx context.Context, qs []*query.Bound) ([]core.Handle, []error, error) {
	f.entered <- struct{}{}
	<-f.gate
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.batchErr != nil {
		err := f.batchErr
		f.batchErr = nil
		return nil, nil, err
	}
	f.batches = append(f.batches, len(qs))
	handles := make([]core.Handle, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		if f.queryErrs != nil && f.queryErrs[i] != nil {
			errs[i] = f.queryErrs[i]
			continue
		}
		handles[i] = f.newHandle()
	}
	f.queryErrs = nil
	return handles, errs, nil
}

func (f *fakeExec) MaxConcurrent() int { return f.maxConc }
func (f *fakeExec) ActiveQueries() int { return 0 }
func (f *fakeExec) Stats() core.Stats  { return core.Stats{} }
func (f *fakeExec) Quiesce()           {}
func (f *fakeExec) Stop()              {}

var (
	_ core.Executor       = (*fakeExec)(nil)
	_ core.BatchSubmitter = (*fakeExec)(nil)
)

func testBounds(t *testing.T, n int) []*query.Bound {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w := ssb.NewWorkload(ds, 0.1, 3)
	out := make([]*query.Bound, n)
	for i := range out {
		_, text := w.Next()
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// awaitEntry fails the test unless the executor reports a
// Submit/SubmitBatch entry soon.
func awaitEntry(t *testing.T, f *fakeExec) {
	t.Helper()
	select {
	case <-f.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("executor was not reached")
	}
}

func closeQueue(t *testing.T, q *Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestBatchDrainFormsBatches choreographs the tentpole's queue half:
// while the dispatcher is held inside the first query's Submit, three
// more queries line up; the next dispatch round must drain all three
// into one SubmitBatch instead of three pipeline rounds.
func TestBatchDrainFormsBatches(t *testing.T) {
	f := newFakeExec(4)
	q := NewQueue(f, Config{BatchAdmit: 8}) // clamped to maxConc=4
	bounds := testBounds(t, 4)

	t1, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	awaitEntry(t, f) // dispatcher blocked in Submit(q1)
	var tail []*Ticket
	for _, b := range bounds[1:] {
		tk, err := q.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, tk)
	}
	f.gate <- struct{}{} // q1 admitted one-at-a-time
	awaitEntry(t, f)     // dispatcher blocked in SubmitBatch(q2..q4)
	f.gate <- struct{}{}

	// Counts are recorded when the executor call returns; Running state
	// follows it, so waiting for Running makes the counts stable.
	for _, tk := range append([]*Ticket{t1}, tail...) {
		for tk.State() != StateRunning {
			time.Sleep(time.Millisecond)
		}
	}
	f.mu.Lock()
	singles, batches := f.singles, append([]int(nil), f.batches...)
	f.mu.Unlock()
	if singles != 1 || len(batches) != 1 || batches[0] != 3 {
		t.Fatalf("singles=%d batches=%v, want 1 single and one batch of 3", singles, batches)
	}
	f.finishAll()
	closeQueue(t, q)
}

// TestBatchWholeErrorFallsBackPerQuery: a whole-batch error means
// nothing was admitted, so every drained ticket must be re-driven
// through the per-query path — and still complete.
func TestBatchWholeErrorFallsBackPerQuery(t *testing.T) {
	f := newFakeExec(4)
	f.batchErr = errors.New("plane unavailable")
	q := NewQueue(f, Config{BatchAdmit: 4})
	bounds := testBounds(t, 3)

	t1, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	awaitEntry(t, f)
	t2, err := q.Submit(bounds[1])
	if err != nil {
		t.Fatal(err)
	}
	t3, err := q.Submit(bounds[2])
	if err != nil {
		t.Fatal(err)
	}
	f.gate <- struct{}{} // q1 via Submit
	awaitEntry(t, f)     // SubmitBatch(q2,q3) -> whole-batch error
	f.gate <- struct{}{}
	awaitEntry(t, f) // fallback Submit(q2)
	f.gate <- struct{}{}
	awaitEntry(t, f) // fallback Submit(q3)
	f.gate <- struct{}{}

	for _, tk := range []*Ticket{t1, t2, t3} {
		for tk.State() != StateRunning {
			time.Sleep(time.Millisecond)
		}
	}
	f.mu.Lock()
	singles, batches := f.singles, len(f.batches)
	f.mu.Unlock()
	if singles != 3 || batches != 0 {
		t.Fatalf("singles=%d batches=%d, want 3 per-query submissions, no recorded batch", singles, batches)
	}
	f.finishAll()
	closeQueue(t, q)
}

// TestBatchPerQueryError: a per-query error inside an otherwise
// successful batch fails exactly that ticket; its batchmates run.
func TestBatchPerQueryError(t *testing.T) {
	f := newFakeExec(4)
	boom := errors.New("schema mismatch")
	q := NewQueue(f, Config{BatchAdmit: 4})
	bounds := testBounds(t, 3)

	t1, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	awaitEntry(t, f)
	t2, err := q.Submit(bounds[1])
	if err != nil {
		t.Fatal(err)
	}
	t3, err := q.Submit(bounds[2])
	if err != nil {
		t.Fatal(err)
	}
	f.queryErrs = []error{errors.New("unused"), nil} // t2 fails, t3 runs
	f.queryErrs[0] = boom
	f.gate <- struct{}{} // q1
	awaitEntry(t, f)     // SubmitBatch(q2,q3)
	f.gate <- struct{}{}

	if res := t2.Wait(); !errors.Is(res.Err, boom) {
		t.Fatalf("t2 err = %v, want %v", res.Err, boom)
	}
	for _, tk := range []*Ticket{t1, t3} {
		for tk.State() != StateRunning {
			time.Sleep(time.Millisecond)
		}
	}
	f.finishAll()
	closeQueue(t, q)
}

// TestLateDeadlineCheckedAtBatchDispatch is the satellite's guarantee:
// a ticket whose queue-wait deadline has passed — even if its timer has
// not fired yet (late timer under load) — must expire at the dispatch
// of its batch, never be admitted inside one. The test simulates the
// late timer by moving the published deadline into the past while the
// ticket waits.
func TestLateDeadlineCheckedAtBatchDispatch(t *testing.T) {
	f := newFakeExec(4)
	q := NewQueue(f, Config{BatchAdmit: 4})
	bounds := testBounds(t, 2)

	t1, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	awaitEntry(t, f) // dispatcher held in Submit(q1)
	t2, err := q.SubmitOpts(bounds[1], Options{MaxWait: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t2.mu.Lock()
	t2.deadline = time.Now().Add(-time.Millisecond)
	t2.mu.Unlock()
	f.gate <- struct{}{} // release q1; dispatcher pops q2 next

	res := t2.Wait()
	var de *DeadlineError
	if !errors.As(res.Err, &de) {
		t.Fatalf("t2 err = %v, want DeadlineError", res.Err)
	}
	if t2.State() != StateExpired {
		t.Fatalf("t2 state = %v, want StateExpired", t2.State())
	}
	f.mu.Lock()
	singles, batches := f.singles, len(f.batches)
	f.mu.Unlock()
	if singles != 1 || batches != 0 {
		t.Fatalf("singles=%d batches=%d: the expired ticket reached the executor", singles, batches)
	}
	for t1.State() != StateRunning {
		time.Sleep(time.Millisecond)
	}
	f.finishAll()
	closeQueue(t, q)
}
