// Package admission puts a bounded FIFO admission queue in front of a
// CJOIN pipeline, converting overload into predictable queueing.
//
// The pipeline itself admits at most maxConc concurrent queries and
// hard-fails the rest (core.ErrTooManyQueries). That is the right
// behavior for the operator — the bit-vector width is fixed at startup —
// but a serving tier wants the paper's actual promise: under hundreds of
// concurrent ad-hoc queries, response time grows predictably instead of
// queries failing (§6.2.2). The Queue accepts every query up to a bound,
// dispatches them to the pipeline strictly in arrival order as slots free
// up, and makes the wait observable: a queued query has a position, a
// wait time so far, and — combined with the pipeline's §3.2.3 progress
// indicators — a meaningful completion estimate.
//
// Admission order is strict FIFO across clients, which is also the
// fairness policy: no query can be overtaken while it waits. Per-client
// counters in Stats expose how capacity was actually shared.
package admission

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cjoin/internal/core"
	"cjoin/internal/obs"
	"cjoin/internal/query"
)

var (
	// ErrQueueFull is returned by Submit when the waiting line is at
	// Config.MaxQueue.
	ErrQueueFull = errors.New("admission: queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("admission: queue closed")
	// ErrDeadlineExceeded fails a ticket whose queue wait passed its
	// deadline before a pipeline slot freed up. Surfaced wrapped in a
	// *DeadlineError; match with errors.Is.
	ErrDeadlineExceeded = errors.New("admission: queue-wait deadline exceeded")
)

// DeadlineError is the typed queue-wait-deadline failure. The query
// never reached the pipeline, so a retry is always safe — it maps to
// HTTP 429 (Too Many Requests) with a Retry-After hint, the
// backpressure signal, deliberately distinct from the 503 a draining or
// degraded serving tier returns.
type DeadlineError struct {
	// Waited is how long the ticket queued before its deadline fired.
	Waited time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("admission: queue-wait deadline exceeded after %v", e.Waited.Round(time.Millisecond))
}

// Unwrap keeps errors.Is(err, ErrDeadlineExceeded) working.
func (e *DeadlineError) Unwrap() error { return ErrDeadlineExceeded }

// HTTPStatus maps the error to 429 Too Many Requests.
func (e *DeadlineError) HTTPStatus() int { return http.StatusTooManyRequests }

// Retryable marks the failure as safe to retry after backoff.
func (e *DeadlineError) Retryable() bool { return true }

// RetryAfter is the suggested client backoff, surfaced as the HTTP
// Retry-After header.
func (e *DeadlineError) RetryAfter() time.Duration { return time.Second }

// Config tunes a Queue. The zero value takes defaults from the pipeline.
type Config struct {
	// MaxQueue bounds the number of queries waiting for a slot (beyond
	// the maxConc already running). Default 8 * maxConc.
	MaxQueue int
	// MaxWait is the default per-query queue-wait deadline; a query
	// still waiting after MaxWait fails with ErrDeadlineExceeded.
	// Zero means wait indefinitely.
	MaxWait time.Duration
	// BatchAdmit is the maximum number of queued queries the dispatcher
	// drains into one executor batch when the executor implements
	// core.BatchSubmitter — one dimension-plane round and one COW
	// snapshot publication per store for the whole batch. The drain is
	// opportunistic: only queries already waiting (and slots already
	// free) are batched, so batching never delays a lone query. 0 or 1
	// disables batching; values above maxConc are clamped.
	BatchAdmit int
	// Obs, when non-nil, registers the queue's metric families
	// (cjoin_admission_*) with the telemetry plane; nil disables
	// instrumentation.
	Obs *obs.Registry
}

// State is a ticket's lifecycle position.
type State int32

const (
	// StateQueued: waiting for a pipeline slot.
	StateQueued State = iota
	// StateAdmitting: popped from the queue, Pipeline.Submit in flight.
	StateAdmitting
	// StateRunning: registered with the pipeline (Handle available).
	StateRunning
	// StateDone: completed with results.
	StateDone
	// StateFailed: submission or execution error.
	StateFailed
	// StateCanceled: abandoned via Cancel.
	StateCanceled
	// StateExpired: queue-wait deadline passed before admission.
	StateExpired
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateAdmitting:
		return "admitting"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateExpired:
		return "expired"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateExpired:
		return true
	}
	return false
}

// Options customizes one submission.
type Options struct {
	// Client attributes the query in fairness accounting; empty maps to
	// "default".
	Client string
	// MaxWait overrides Config.MaxWait for this query; negative disables
	// the deadline.
	MaxWait time.Duration
}

// Ticket tracks one query from enqueue to completion.
type Ticket struct {
	q      *Queue
	bound  *query.Bound
	client string

	enqueued time.Time
	// deadline is enqueued + the effective MaxWait (zero: no deadline).
	// Immutable after the ticket enters the fifo; the dispatcher checks
	// it at the dispatch of the ticket's batch, so an expired query is
	// never admitted just because its timer goroutine hasn't run yet.
	deadline time.Time
	timer    *time.Timer

	mu            sync.Mutex
	state         State
	handle        core.Handle
	result        core.QueryResult
	waited        time.Duration // time spent queued, fixed at admission
	cancelPending bool
	expirePending bool

	done chan struct{}
}

// Queue is the admission tier over one executor — a single pipeline or
// a sharded group, anything implementing core.Executor.
type Queue struct {
	ex  core.Executor
	cfg Config
	// bex is non-nil when batching is enabled and the executor supports
	// it; the dispatcher then drains up to cfg.BatchAdmit tickets per
	// round through SubmitBatch.
	bex core.BatchSubmitter

	// tokens holds one entry per pipeline slot; the dispatcher takes one
	// before Submit and a per-query watcher returns it once the slot is
	// recycled (Handle.Done).
	tokens   chan struct{}
	wake     chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	fifo   []*Ticket
	closed bool

	running     int
	outstanding int // queued + admitting + running tickets

	stats     coreStats
	perClient map[string]*ClientStats

	om queueMetrics
}

// queueMetrics is the queue's slice of the telemetry plane. Handles are
// nil (and every call a no-op) when Config.Obs is nil, so the hot path
// pays one nil check per event.
type queueMetrics struct {
	queueWait *obs.Histogram

	submitted, admitted, completed *obs.Counter
	failed, canceled               *obs.Counter
	expired, rejected              *obs.Counter
}

func newQueueMetrics(r *obs.Registry, q *Queue) queueMetrics {
	r.GaugeFunc("cjoin_admission_queue_depth",
		"Queries currently waiting for a pipeline slot.",
		func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(len(q.fifo))
		})
	r.GaugeFunc("cjoin_admission_running",
		"Admitted queries whose slots have not been recycled yet.",
		func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(q.running)
		})
	return queueMetrics{
		queueWait: r.DurationHistogram("cjoin_admission_queue_wait_seconds",
			"Queue wait of admitted queries, enqueue to pipeline submission."),
		submitted: r.Counter("cjoin_admission_submitted_total", "Queries accepted into the admission queue."),
		admitted:  r.Counter("cjoin_admission_admitted_total", "Queries dispatched to the pipeline."),
		completed: r.Counter("cjoin_admission_completed_total", "Queries finished with results."),
		failed:    r.Counter("cjoin_admission_failed_total", "Queries failed at submission or during execution."),
		canceled:  r.Counter("cjoin_admission_canceled_total", "Queries abandoned via cancel."),
		expired:   r.Counter("cjoin_admission_expired_total", "Queries whose queue-wait deadline fired before admission."),
		rejected:  r.Counter("cjoin_admission_rejected_total", "Submissions refused because the waiting line was full."),
	}
}

type coreStats struct {
	submitted, admitted, completed, failed, canceled, expired, rejected int64
	totalWait, maxWait                                                  time.Duration
	maxDepth                                                            int
}

// ClientStats is the fairness ledger for one client.
type ClientStats struct {
	Submitted int64
	Admitted  int64
	Finished  int64
	TotalWait time.Duration
	MaxWait   time.Duration
}

// Stats is a point-in-time snapshot of queue activity.
type Stats struct {
	// Depth is the number of queries currently waiting.
	Depth int
	// Running is the number of admitted, not-yet-recycled queries.
	Running int
	// Capacity is the pipeline's maxConc.
	Capacity int
	// MaxQueue is the waiting-line bound.
	MaxQueue int

	Submitted int64
	Admitted  int64
	Completed int64
	Failed    int64
	Canceled  int64
	Expired   int64
	Rejected  int64

	// MaxDepth is the high-water mark of Depth.
	MaxDepth int
	// MeanWait and MaxWait summarize the queue wait of admitted queries.
	MeanWait time.Duration
	MaxWait  time.Duration

	// PerClient breaks the ledger down by Options.Client.
	PerClient map[string]ClientStats
}

// NewQueue starts the admission tier over ex. The executor must already
// be started.
func NewQueue(ex core.Executor, cfg Config) *Queue {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8 * ex.MaxConcurrent()
	}
	if cfg.BatchAdmit > ex.MaxConcurrent() {
		cfg.BatchAdmit = ex.MaxConcurrent()
	}
	q := &Queue{
		ex:        ex,
		cfg:       cfg,
		tokens:    make(chan struct{}, ex.MaxConcurrent()),
		wake:      make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		perClient: make(map[string]*ClientStats),
	}
	if bex, ok := ex.(core.BatchSubmitter); ok && cfg.BatchAdmit > 1 {
		q.bex = bex
	}
	for i := 0; i < ex.MaxConcurrent(); i++ {
		q.tokens <- struct{}{}
	}
	q.om = newQueueMetrics(cfg.Obs, q)
	go q.dispatch()
	return q
}

// Submit enqueues a bound query and returns its ticket immediately; the
// query starts executing once a pipeline slot frees up in FIFO order.
func (q *Queue) Submit(b *query.Bound) (*Ticket, error) {
	return q.SubmitOpts(b, Options{})
}

// SubmitOpts is Submit with per-query options.
func (q *Queue) SubmitOpts(b *query.Bound, opts Options) (*Ticket, error) {
	client := opts.Client
	if client == "" {
		client = "default"
	}
	t := &Ticket{
		q:        q,
		bound:    b,
		client:   client,
		enqueued: time.Now(),
		state:    StateQueued,
		done:     make(chan struct{}),
	}
	maxWait := q.cfg.MaxWait
	if opts.MaxWait != 0 {
		maxWait = opts.MaxWait
	}
	if maxWait > 0 {
		// Fixed before the ticket becomes visible to the dispatcher
		// (the fifo append under q.mu publishes it), so beginAdmit can
		// read it without taking a lock ordering dependency.
		t.deadline = t.enqueued.Add(maxWait)
	}

	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if len(q.fifo) >= q.cfg.MaxQueue {
		q.stats.rejected++
		q.mu.Unlock()
		q.om.rejected.Inc()
		return nil, ErrQueueFull
	}
	q.fifo = append(q.fifo, t)
	if d := len(q.fifo); d > q.stats.maxDepth {
		q.stats.maxDepth = d
	}
	q.stats.submitted++
	q.clientLocked(client).Submitted++
	q.outstanding++
	q.mu.Unlock()
	q.om.submitted.Inc()
	b.Trace.Mark(obs.StageEnqueued)

	if maxWait > 0 {
		t.mu.Lock()
		t.timer = time.AfterFunc(maxWait, t.expire)
		t.mu.Unlock()
	}
	q.signal()
	return t, nil
}

func (q *Queue) clientLocked(name string) *ClientStats {
	cs := q.perClient[name]
	if cs == nil {
		cs = &ClientStats{}
		q.perClient[name] = cs
	}
	return cs
}

func (q *Queue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// expiredTicket pairs a ticket that expired at dispatch with its timer;
// finishWaiting needs q.mu, so the pop loop (which holds it) defers the
// finalization to its caller.
type expiredTicket struct {
	t     *Ticket
	timer *time.Timer
}

// popLocked pops tickets until one can be admitted, or the line is
// empty. Tickets whose queue-wait deadline has already passed expire
// here — at the dispatch of their batch — and are appended to expired
// for the caller to finalize after releasing q.mu. Callers hold q.mu.
func (q *Queue) popLocked(expired *[]expiredTicket) *Ticket {
	now := time.Now()
	for len(q.fifo) > 0 {
		t := q.fifo[0]
		q.fifo = q.fifo[1:]
		switch v, timer := t.beginAdmit(now); v {
		case admitOK:
			return t
		case admitExpired:
			*expired = append(*expired, expiredTicket{t, timer})
		}
		// admitSkip: canceled or expired while waiting; already terminal.
	}
	return nil
}

// next pops the oldest still-queued ticket, blocking until one arrives.
// It returns nil once the queue is closed and drained.
func (q *Queue) next() *Ticket {
	for {
		var expired []expiredTicket
		q.mu.Lock()
		t := q.popLocked(&expired)
		closed := q.closed
		q.mu.Unlock()
		for _, e := range expired {
			e.t.finishWaiting(e.timer, StateExpired)
		}
		if t != nil {
			return t
		}
		if closed {
			return nil
		}
		select {
		case <-q.wake:
		case <-q.stopCh:
			return nil
		}
	}
}

// tryNext is next without the blocking: nil when no admittable ticket
// is waiting right now. The batch drain uses it so batching never
// waits for queries that haven't arrived.
func (q *Queue) tryNext() *Ticket {
	var expired []expiredTicket
	q.mu.Lock()
	t := q.popLocked(&expired)
	q.mu.Unlock()
	for _, e := range expired {
		e.t.finishWaiting(e.timer, StateExpired)
	}
	return t
}

// dispatch is the admission loop: strict FIFO, one pipeline slot per
// running query. The slot token is acquired before a ticket leaves the
// queue, so a ticket waiting for capacity stays Queued — cancellable and
// subject to its queue-wait deadline — until the moment it can actually
// be admitted. With batching enabled (Config.BatchAdmit and a
// core.BatchSubmitter executor), each round opportunistically drains
// additional already-waiting tickets — one free slot token each — into
// a single SubmitBatch, paying one dimension-plane round for the lot.
func (q *Queue) dispatch() {
	// On exit, fail every ticket still waiting: the dispatcher is the
	// only goroutine that can admit them. The normal drain path exits
	// with an empty line; this matters when Close's ctx expires mid-work.
	defer func() {
		for {
			q.mu.Lock()
			if len(q.fifo) == 0 {
				q.mu.Unlock()
				return
			}
			t := q.fifo[0]
			q.fifo = q.fifo[1:]
			q.mu.Unlock()
			switch v, timer := t.beginAdmit(time.Now()); v {
			case admitOK:
				t.fail(ErrClosed)
			case admitExpired:
				t.finishWaiting(timer, StateExpired)
			}
		}
	}()
	for {
		select {
		case <-q.tokens:
		case <-q.stopCh:
			return
		}
		t := q.next()
		if t == nil {
			return
		}
		if q.bex == nil {
			q.admitOne(t)
			continue
		}
		// Batch drain: take (token, ticket) pairs without blocking —
		// batching amortizes work that is already waiting, it never
		// holds a query back hoping for company.
		batch := append(make([]*Ticket, 0, q.cfg.BatchAdmit), t)
		for len(batch) < q.cfg.BatchAdmit {
			var tok bool
			select {
			case <-q.tokens:
				tok = true
			default:
			}
			if !tok {
				break
			}
			nt := q.tryNext()
			if nt == nil {
				q.tokens <- struct{}{}
				break
			}
			batch = append(batch, nt)
		}
		if len(batch) == 1 {
			q.admitOne(t)
			continue
		}
		q.admitBatch(batch)
	}
}

// admitOne submits one ticket to the executor — the per-query path. It
// reports whether the ticket was requeued at the head of the line
// (transient slot exhaustion), which the batch fallback uses to keep
// FIFO order intact.
func (q *Queue) admitOne(t *Ticket) (requeued bool) {
	// Marked before the executor submit: the pipeline can deliver the
	// first page mid-registration, and the timeline must show admitted
	// before first_page. Latest-wins so a slot-exhaustion requeue
	// refreshes the mark on the attempt that sticks.
	t.bound.Trace.MarkLatest(obs.StageAdmitted)
	h, err := q.ex.Submit(t.bound)
	if err != nil {
		q.tokens <- struct{}{}
		if errors.Is(err, core.ErrTooManyQueries) {
			// A submitter outside the queue holds slots; retry after
			// a short pause without giving up FIFO order. Keep the
			// ticket in hand during the backoff so a shutdown can
			// finalize it instead of abandoning it non-terminal.
			select {
			case <-time.After(2 * time.Millisecond):
				t.requeueFront()
				return true
			case <-q.stopCh:
				t.fail(ErrClosed)
			}
			return false
		}
		t.fail(err)
		return false
	}
	t.run(h)
	go q.watch(t, h)
	return false
}

// admitBatch drives one drained batch through the executor's batch fast
// path. A whole-batch error admitted nothing (Plane.AdmitBatch is
// all-or-nothing), so the fallback re-drives each ticket through
// admitOne in order — per-query error attribution, fault injection, and
// the slot-exhaustion retry then behave exactly as without batching.
func (q *Queue) admitBatch(batch []*Ticket) {
	qs := make([]*query.Bound, len(batch))
	for i, t := range batch {
		t.bound.Trace.MarkLatest(obs.StageAdmitted)
		qs[i] = t.bound
	}
	handles, errs, err := q.bex.SubmitBatch(context.Background(), qs)
	if err != nil {
		for i, t := range batch {
			if q.admitOne(t) {
				// t went back to the head of the line; its unprocessed
				// batchmates must line up right behind it, not be
				// admitted over it.
				q.requeueTailAfter(t, batch[i+1:])
				return
			}
		}
		return
	}
	for i, t := range batch {
		if errs[i] != nil {
			q.tokens <- struct{}{}
			t.fail(errs[i])
			continue
		}
		t.run(handles[i])
		go q.watch(t, handles[i])
	}
}

// requeueTailAfter returns the unprocessed tail of a broken-up batch to
// the waiting line, directly behind head (which requeueFront just put
// back), and returns their slot tokens. Tickets with a cancel or
// deadline pending finalize instead, exactly as requeueFront would
// have.
func (q *Queue) requeueTailAfter(head *Ticket, tail []*Ticket) {
	if len(tail) == 0 {
		return
	}
	live := make([]*Ticket, 0, len(tail))
	for _, t := range tail {
		q.tokens <- struct{}{}
		if t.revertToQueued() {
			live = append(live, t)
		}
	}
	if len(live) == 0 {
		return
	}
	q.mu.Lock()
	pos := 0
	if len(q.fifo) > 0 && q.fifo[0] == head {
		// head may have terminalized (cancel/expire) and left the line
		// between its requeue and now; the tail then simply takes the
		// front — it is older than everything else waiting.
		pos = 1
	}
	rest := append([]*Ticket(nil), q.fifo[pos:]...)
	q.fifo = append(append(q.fifo[:pos:pos], live...), rest...)
	q.mu.Unlock()
	q.signal()
}

// watch delivers the ticket's result and returns the slot token once the
// pipeline has recycled the slot.
func (q *Queue) watch(t *Ticket, h core.Handle) {
	res := h.Wait()
	t.complete(res)
	<-h.Done()
	q.tokens <- struct{}{}
	q.mu.Lock()
	q.running--
	q.mu.Unlock()
}

// Close stops admission and drains: new Submits fail with ErrClosed,
// already-queued queries still run to completion, and Close returns once
// every accepted query has reached a terminal state. If ctx expires
// first, the remaining queued tickets are canceled and ctx.Err() is
// returned.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		q.mu.Lock()
		idle := q.outstanding == 0
		q.mu.Unlock()
		if idle {
			q.stopOnce.Do(func() { close(q.stopCh) })
			return nil
		}
		select {
		case <-ctx.Done():
			q.mu.Lock()
			waiting := append([]*Ticket(nil), q.fifo...)
			q.mu.Unlock()
			for _, t := range waiting {
				t.Cancel()
			}
			q.stopOnce.Do(func() { close(q.stopCh) })
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Depth:     len(q.fifo),
		Running:   q.running,
		Capacity:  q.ex.MaxConcurrent(),
		MaxQueue:  q.cfg.MaxQueue,
		Submitted: q.stats.submitted,
		Admitted:  q.stats.admitted,
		Completed: q.stats.completed,
		Failed:    q.stats.failed,
		Canceled:  q.stats.canceled,
		Expired:   q.stats.expired,
		Rejected:  q.stats.rejected,
		MaxDepth:  q.stats.maxDepth,
		MaxWait:   q.stats.maxWait,
		PerClient: make(map[string]ClientStats, len(q.perClient)),
	}
	if q.stats.admitted > 0 {
		s.MeanWait = q.stats.totalWait / time.Duration(q.stats.admitted)
	}
	for name, cs := range q.perClient {
		s.PerClient[name] = *cs
	}
	return s
}

// --- ticket state machine -------------------------------------------------

// admitVerdict is beginAdmit's decision for a ticket leaving the line.
type admitVerdict int

const (
	// admitOK: the ticket is now Admitting — submit it.
	admitOK admitVerdict = iota
	// admitSkip: the ticket terminalized while queued (canceled or
	// expired by its timer); it finalized itself, skip it.
	admitSkip
	// admitExpired: the ticket's queue-wait deadline passed but its
	// timer has not fired yet — the caller must finalize it with the
	// returned timer. Under batch drain a ticket deep in the batch has
	// its deadline checked here, at the dispatch of *its* batch, so no
	// expired query is ever admitted inside a batch.
	admitExpired
)

// beginAdmit moves a queued ticket to Admitting, unless it terminalized
// while waiting or its deadline has already passed at now. On
// admitExpired the ticket is transitioned under t.mu and the caller
// finalizes it via finishWaiting (which takes q.mu, so it must run
// outside q.mu).
func (t *Ticket) beginAdmit(now time.Time) (admitVerdict, *time.Timer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateQueued {
		return admitSkip, nil
	}
	if !t.deadline.IsZero() && !now.Before(t.deadline) {
		timer := t.transitionLocked(StateExpired, &DeadlineError{Waited: now.Sub(t.enqueued)})
		return admitExpired, timer
	}
	t.state = StateAdmitting
	return admitOK, nil
}

// revertToQueued moves an Admitting ticket back to Queued, honoring any
// cancel or deadline that fired while the ticket was in the
// dispatcher's hands — those finalize the ticket instead. It reports
// whether the ticket is live (caller must reinsert it into the line).
// The whole decision runs under t.mu so it cannot race expire or
// Cancel.
func (t *Ticket) revertToQueued() bool {
	t.mu.Lock()
	if t.state != StateAdmitting {
		t.mu.Unlock()
		return false
	}
	switch {
	case t.cancelPending:
		timer := t.transitionLocked(StateCanceled, core.ErrQueryCanceled)
		t.mu.Unlock()
		t.finishWaiting(timer, StateCanceled)
		return false
	case t.expirePending:
		timer := t.transitionLocked(StateExpired, &DeadlineError{Waited: time.Since(t.enqueued)})
		t.mu.Unlock()
		t.finishWaiting(timer, StateExpired)
		return false
	default:
		t.state = StateQueued
		t.mu.Unlock()
		return true
	}
}

// requeueFront puts an Admitting ticket back at the head of the line
// after a transient submission failure.
func (t *Ticket) requeueFront() {
	if !t.revertToQueued() {
		return
	}
	t.q.mu.Lock()
	t.q.fifo = append([]*Ticket{t}, t.q.fifo...)
	t.q.mu.Unlock()
	t.q.signal()
}

// run records a successful admission.
func (t *Ticket) run(h core.Handle) {
	waited := time.Since(t.enqueued)
	t.mu.Lock()
	t.handle = h
	t.state = StateRunning
	t.waited = waited
	cancelPending := t.cancelPending
	timer := t.timer
	t.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}

	q := t.q
	q.om.admitted.Inc()
	q.om.queueWait.Observe(waited.Nanoseconds())
	q.mu.Lock()
	q.running++
	q.stats.admitted++
	q.stats.totalWait += waited
	if waited > q.stats.maxWait {
		q.stats.maxWait = waited
	}
	cs := q.clientLocked(t.client)
	cs.Admitted++
	cs.TotalWait += waited
	if waited > cs.MaxWait {
		cs.MaxWait = waited
	}
	q.mu.Unlock()

	if cancelPending {
		h.Cancel()
	}
}

// complete records the pipeline's result for a Running ticket.
func (t *Ticket) complete(res core.QueryResult) {
	t.mu.Lock()
	t.result = res
	switch {
	case errors.Is(res.Err, core.ErrQueryCanceled):
		t.state = StateCanceled
	case res.Err != nil:
		t.state = StateFailed
	default:
		t.state = StateDone
	}
	state := t.state
	t.mu.Unlock()
	if state == StateDone {
		t.bound.Trace.Mark(obs.StageDelivered)
	}
	t.q.settle(t, state)
	close(t.done)
}

// fail terminates a never-admitted ticket.
func (t *Ticket) fail(err error) {
	t.mu.Lock()
	if t.state.Terminal() {
		t.mu.Unlock()
		return
	}
	t.state = StateFailed
	t.result = core.QueryResult{Err: err}
	timer := t.timer
	t.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	t.q.settle(t, StateFailed)
	close(t.done)
}

// expire is the queue-wait deadline callback. The state decision happens
// in one critical section: a Queued ticket transitions to Expired on the
// spot, while a deadline firing during the short Admitting window is
// recorded — if the admission goes through the query runs (the wait is
// over either way), but if the dispatcher requeues the ticket the
// deadline takes effect.
func (t *Ticket) expire() {
	t.mu.Lock()
	switch t.state {
	case StateQueued:
		timer := t.transitionLocked(StateExpired, &DeadlineError{Waited: time.Since(t.enqueued)})
		t.mu.Unlock()
		t.finishWaiting(timer, StateExpired)
	case StateAdmitting:
		t.expirePending = true
		t.mu.Unlock()
	default:
		t.mu.Unlock()
	}
}

// Cancel abandons the query. A queued ticket terminates immediately; a
// running one is canceled in the pipeline (Handle.Cancel) and its slot is
// recycled at the next batch boundary. Cancel reports whether this call
// initiated the cancellation.
func (t *Ticket) Cancel() bool {
	t.mu.Lock()
	switch t.state {
	case StateQueued:
		timer := t.transitionLocked(StateCanceled, core.ErrQueryCanceled)
		t.mu.Unlock()
		t.finishWaiting(timer, StateCanceled)
		return true
	case StateAdmitting:
		// Between queue and pipeline: mark it and let run/requeueFront
		// finish the job.
		if t.cancelPending {
			t.mu.Unlock()
			return false
		}
		t.cancelPending = true
		t.mu.Unlock()
		return true
	case StateRunning:
		h := t.handle
		t.mu.Unlock()
		return h.Cancel()
	default:
		t.mu.Unlock()
		return false
	}
}

// transitionLocked records the terminal state of a ticket that never ran.
// Callers hold t.mu (so the decision and the transition are one critical
// section) and must follow up with finishWaiting after unlocking.
func (t *Ticket) transitionLocked(st State, err error) *time.Timer {
	t.state = st
	t.result = core.QueryResult{Err: err}
	t.waited = time.Since(t.enqueued)
	return t.timer
}

// finishWaiting completes the bookkeeping for a ticket terminated while
// waiting. Runs without t.mu held: the dispatcher locks q.mu before t.mu
// (next -> beginAdmit), so nesting them the other way would deadlock.
// The fifo removal keeps dead tickets from consuming MaxQueue capacity
// or inflating Depth/QueuePos; if the dispatcher holds the ticket the
// scan is a no-op and requeueFront observes the terminal state.
func (t *Ticket) finishWaiting(timer *time.Timer, st State) {
	if timer != nil {
		timer.Stop()
	}
	t.q.mu.Lock()
	for i, w := range t.q.fifo {
		if w == t {
			t.q.fifo = append(t.q.fifo[:i], t.q.fifo[i+1:]...)
			break
		}
	}
	t.q.mu.Unlock()
	t.q.settle(t, st)
	close(t.done)
}

// settle updates queue counters for a ticket reaching a terminal state.
func (q *Queue) settle(t *Ticket, st State) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.outstanding--
	switch st {
	case StateDone:
		q.stats.completed++
		q.om.completed.Inc()
		q.clientLocked(t.client).Finished++
	case StateFailed:
		q.stats.failed++
		q.om.failed.Inc()
		q.clientLocked(t.client).Finished++
	case StateCanceled:
		q.stats.canceled++
		q.om.canceled.Inc()
		q.clientLocked(t.client).Finished++
	case StateExpired:
		q.stats.expired++
		q.om.expired.Inc()
		q.clientLocked(t.client).Finished++
	}
}

// --- ticket observers -----------------------------------------------------

// State returns the ticket's lifecycle position.
func (t *Ticket) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// Handle returns the executor's handle, or nil while the query waits.
func (t *Ticket) Handle() core.Handle {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handle
}

// Bound returns the ticket's bound query.
func (t *Ticket) Bound() *query.Bound { return t.bound }

// Client returns the fairness-accounting client name.
func (t *Ticket) Client() string { return t.client }

// Done returns a channel closed when the ticket reaches a terminal state.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket is terminal and returns the result.
func (t *Ticket) Wait() core.QueryResult {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.result
}

// QueueWait returns how long the query has waited so far; once the
// ticket leaves the queue (admitted, canceled, or expired) it returns
// the final wait.
func (t *Ticket) QueueWait() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == StateQueued || t.state == StateAdmitting {
		return time.Since(t.enqueued)
	}
	return t.waited
}

// QueuePos returns the ticket's 1-based position in the waiting line, or
// 0 once it left the queue.
func (t *Ticket) QueuePos() int {
	t.q.mu.Lock()
	defer t.q.mu.Unlock()
	for i, w := range t.q.fifo {
		if w == t {
			return i + 1
		}
	}
	return 0
}
