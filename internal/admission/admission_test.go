package admission_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func env(t testing.TB, rows, maxConc int) (*ssb.Dataset, *core.Pipeline) {
	return envDisk(t, rows, maxConc, disk.Config{})
}

// envDisk generates a dataset on a throttled device, for tests that need
// the continuous scan to take a predictable, nontrivial time.
func envDisk(t testing.TB, rows, maxConc int, dc disk.Config) (*ssb.Dataset, *core.Pipeline) {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 7, Disk: dc})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPipeline(ds.Star, core.Config{MaxConcurrent: maxConc, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return ds, p
}

func bind(t testing.TB, ds *ssb.Dataset, n int) []*query.Bound {
	t.Helper()
	w := ssb.NewWorkload(ds, 0.1, 3)
	var out []*query.Bound
	for i := 0; i < n; i++ {
		_, text := w.Next()
		b, err := query.ParseBind(text, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

// TestOverloadQueuesInsteadOfFailing is the admission tier's core
// promise: 6x maxConc queries, none rejected, all correct.
func TestOverloadQueuesInsteadOfFailing(t *testing.T) {
	ds, p := env(t, 1200, 4)
	q := admission.NewQueue(p, admission.Config{MaxQueue: 64})

	bounds := bind(t, ds, 24)
	tickets := make([]*admission.Ticket, len(bounds))
	for i, b := range bounds {
		tk, err := q.Submit(b)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		want, err := ref.Execute(bounds[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(res.Rows, want) {
			t.Fatalf("query %d diverges from reference", i)
		}
		if tk.State() != admission.StateDone {
			t.Fatalf("query %d state %v", i, tk.State())
		}
	}
	st := q.Stats()
	if st.Rejected != 0 || st.Completed != 24 || st.Admitted != 24 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxDepth == 0 {
		t.Fatal("expected some queueing at 6x capacity")
	}
	if err := q.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	ds, p := env(t, 4000, 1)
	q := admission.NewQueue(p, admission.Config{MaxQueue: 2})
	bounds := bind(t, ds, 8)
	var ok, full int
	var tickets []*admission.Ticket
	for _, b := range bounds {
		tk, err := q.Submit(b)
		switch {
		case err == nil:
			ok++
			tickets = append(tickets, tk)
		case errors.Is(err, admission.ErrQueueFull):
			full++
		default:
			t.Fatal(err)
		}
	}
	if full == 0 {
		t.Fatalf("no rejection with MaxQueue=2 and %d submissions", len(bounds))
	}
	if q.Stats().Rejected != int64(full) {
		t.Fatalf("rejected stat %d want %d", q.Stats().Rejected, full)
	}
	for _, tk := range tickets {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// TestCancelWhileQueued: a ticket canceled before admission never reaches
// the pipeline, and the queries behind it still run.
func TestCancelWhileQueued(t *testing.T) {
	ds, p := envDisk(t, 2500, 1, disk.Config{SeqBytesPerSec: 25 << 20})
	q := admission.NewQueue(p, admission.Config{MaxQueue: 16})
	bounds := bind(t, ds, 4)

	var tickets []*admission.Ticket
	for _, b := range bounds {
		tk, err := q.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// The last ticket is surely still queued behind slot 0's long scan.
	victim := tickets[len(tickets)-1]
	if !victim.Cancel() {
		t.Fatal("cancel of queued ticket returned false")
	}
	if victim.Cancel() {
		t.Fatal("double cancel returned true")
	}
	res := victim.Wait()
	if !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("canceled ticket result: %v", res.Err)
	}
	if victim.State() != admission.StateCanceled {
		t.Fatalf("state %v", victim.State())
	}
	for _, tk := range tickets[:len(tickets)-1] {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := q.Stats()
	if st.Canceled != 1 || st.Completed != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCancelWhileRunning: cancel propagates to the pipeline and the slot
// is reused by the next waiter.
func TestCancelWhileRunning(t *testing.T) {
	ds, p := envDisk(t, 2500, 1, disk.Config{SeqBytesPerSec: 25 << 20})
	q := admission.NewQueue(p, admission.Config{MaxQueue: 16})
	bounds := bind(t, ds, 2)

	first, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := q.Submit(bounds[1])
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first to be admitted, then cancel it mid-scan.
	deadline := time.Now().Add(5 * time.Second)
	for first.State() != admission.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first ticket never started running")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !first.Cancel() {
		t.Fatal("cancel of running ticket returned false")
	}
	if res := first.Wait(); !errors.Is(res.Err, core.ErrQueryCanceled) {
		t.Fatalf("result %v", res.Err)
	}
	if res := second.Wait(); res.Err != nil {
		t.Fatalf("second query after canceled slot: %v", res.Err)
	}
}

func TestQueueWaitDeadline(t *testing.T) {
	// ~25 MB/s over ~600 KB of fact pages: one scan cycle takes ~25 ms,
	// far beyond the impatient ticket's deadline.
	ds, p := envDisk(t, 4000, 1, disk.Config{SeqBytesPerSec: 25 << 20})
	q := admission.NewQueue(p, admission.Config{MaxQueue: 16})
	bounds := bind(t, ds, 3)

	blocker, err := q.Submit(bounds[0])
	if err != nil {
		t.Fatal(err)
	}
	impatient, err := q.SubmitOpts(bounds[1], admission.Options{MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res := impatient.Wait()
	if !errors.Is(res.Err, admission.ErrDeadlineExceeded) {
		t.Fatalf("impatient result %v", res.Err)
	}
	// The failure is typed for the serving tier: retryable backpressure
	// (429 + Retry-After), not a 5xx — the query never ran.
	var de *admission.DeadlineError
	if !errors.As(res.Err, &de) {
		t.Fatalf("expiry %v is not a *DeadlineError", res.Err)
	}
	if de.HTTPStatus() != 429 || !de.Retryable() || de.RetryAfter() <= 0 {
		t.Fatalf("deadline error contract: status=%d retryable=%v after=%v",
			de.HTTPStatus(), de.Retryable(), de.RetryAfter())
	}
	if de.Waited < 5*time.Millisecond {
		t.Fatalf("DeadlineError.Waited = %v, below the 5ms deadline", de.Waited)
	}
	if impatient.State() != admission.StateExpired {
		t.Fatalf("state %v", impatient.State())
	}
	if w := impatient.QueueWait(); w < 5*time.Millisecond {
		t.Fatalf("expired ticket reports queue wait %v", w)
	}
	// The dead ticket must leave the waiting line immediately, not hold
	// MaxQueue capacity until a slot frees.
	if d := q.Stats().Depth; d != 0 {
		t.Fatalf("queue depth %d after expiry", d)
	}
	if res := blocker.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if q.Stats().Expired != 1 {
		t.Fatalf("stats %+v", q.Stats())
	}
}

func TestCloseDrains(t *testing.T) {
	ds, p := env(t, 800, 2)
	q := admission.NewQueue(p, admission.Config{MaxQueue: 32})
	bounds := bind(t, ds, 8)
	var tickets []*admission.Ticket
	for _, b := range bounds {
		tk, err := q.Submit(b)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(bounds[0]); !errors.Is(err, admission.ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	for _, tk := range tickets {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

// TestFairnessAccounting checks FIFO order and the per-client ledger.
func TestFairnessAccounting(t *testing.T) {
	ds, p := envDisk(t, 1500, 1, disk.Config{SeqBytesPerSec: 50 << 20})
	q := admission.NewQueue(p, admission.Config{MaxQueue: 32})
	bounds := bind(t, ds, 6)

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	var tickets []*admission.Ticket
	for i, b := range bounds {
		client := "alice"
		if i%2 == 1 {
			client = "bob"
		}
		tk, err := q.SubmitOpts(b, admission.Options{Client: client})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		wg.Add(1)
		go func(tk *admission.Ticket, id int, client string) {
			defer wg.Done()
			tk.Wait()
			mu.Lock()
			order = append(order, client)
			mu.Unlock()
		}(tk, i, client)
	}
	wg.Wait()
	st := q.Stats()
	a, b := st.PerClient["alice"], st.PerClient["bob"]
	if a.Submitted != 3 || b.Submitted != 3 || a.Admitted != 3 || b.Admitted != 3 {
		t.Fatalf("per-client: alice %+v bob %+v", a, b)
	}
	if a.Finished+b.Finished != 6 {
		t.Fatalf("finished %d", a.Finished+b.Finished)
	}
	// With one slot and FIFO admission the two clients must interleave.
	mu.Lock()
	defer mu.Unlock()
	if order[0] == order[1] && order[1] == order[2] {
		t.Fatalf("admission order not interleaved: %v", order)
	}
}
