package bitvec

import "testing"

// The paper profiles bitmap operations as CJOIN's scalability limiter at
// n=256 (§6.2.2); these microbenchmarks track the per-tuple costs.

func BenchmarkAnd256(b *testing.B) {
	x, y := New(256), New(256)
	y.Fill(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkAndNotIsZero256(b *testing.B) {
	x, mask := New(256), New(256)
	x.Set(17)
	mask.Fill(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotIsZero(mask)
	}
}

func BenchmarkCopyFrom256(b *testing.B) {
	x, y := New(256), New(256)
	y.Fill(123)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.CopyFrom(y)
	}
}

func BenchmarkForEach256Sparse(b *testing.B) {
	v := New(256)
	for _, i := range []int{3, 70, 199} {
		v.Set(i)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		v.ForEach(func(j int) bool { sum += j; return true })
	}
	_ = sum
}

func BenchmarkAllocatorAllocFree(b *testing.B) {
	a := NewAllocator(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := a.Alloc()
		a.Free(s)
	}
}
