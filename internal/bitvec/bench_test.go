package bitvec

import "testing"

// The paper profiles bitmap operations as CJOIN's scalability limiter at
// n=256 (§6.2.2); these microbenchmarks track the per-tuple costs.

func BenchmarkAnd256(b *testing.B) {
	x, y := New(256), New(256)
	y.Fill(200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkAndNotIsZero256(b *testing.B) {
	x, mask := New(256), New(256)
	x.Set(17)
	mask.Fill(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotIsZero(mask)
	}
}

func BenchmarkCopyFrom256(b *testing.B) {
	x, y := New(256), New(256)
	y.Fill(123)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.CopyFrom(y)
	}
}

func BenchmarkForEach256Sparse(b *testing.B) {
	v := New(256)
	for _, i := range []int{3, 70, 199} {
		v.Set(i)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		v.ForEach(func(j int) bool { sum += j; return true })
	}
	_ = sum
}

func BenchmarkAllocatorAllocFree(b *testing.B) {
	a := NewAllocator(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := a.Alloc()
		a.Free(s)
	}
}

// Width sweep over the unrolled 4-word fast path: 128 and 512 bits
// alongside the 256-bit benchmarks above, for maxConc > 64 pipelines.
func benchAnd(b *testing.B, nbits int) {
	x, y := New(nbits), New(nbits)
	y.Fill(nbits * 3 / 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func BenchmarkAnd128(b *testing.B) { benchAnd(b, 128) }
func BenchmarkAnd512(b *testing.B) { benchAnd(b, 512) }

func benchAndNotIsZero(b *testing.B, nbits int) {
	x, mask := New(nbits), New(nbits)
	x.Set(nbits / 4)
	mask.Fill(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotIsZero(mask)
	}
}

func BenchmarkAndNotIsZero128(b *testing.B) { benchAndNotIsZero(b, 128) }
func BenchmarkAndNotIsZero512(b *testing.B) { benchAndNotIsZero(b, 512) }

func benchIsZero(b *testing.B, nbits int) {
	v := New(nbits)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.IsZero()
	}
}

func BenchmarkIsZero256(b *testing.B) { benchIsZero(b, 256) }
func BenchmarkIsZero512(b *testing.B) { benchIsZero(b, 512) }

// AndPair vs the 4-word And at the widths the multi-word Filter path
// actually sees (maxConc = 256 → 4 words; 512 → 8; 1024 → 16). Both
// operands pre-sliced, as filterBatchVec supplies them.
func benchAndPair(b *testing.B, nbits int) {
	x, y := New(nbits), New(nbits)
	y.Fill(nbits * 3 / 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AndPair(x, y)
	}
}

func BenchmarkAndPair256(b *testing.B)  { benchAndPair(b, 256) }
func BenchmarkAndPair512(b *testing.B)  { benchAndPair(b, 512) }
func BenchmarkAndPair1024(b *testing.B) { benchAndPair(b, 1024) }
func BenchmarkAnd1024(b *testing.B)     { benchAnd(b, 1024) }
