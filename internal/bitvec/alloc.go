package bitvec

import (
	"math/bits"
	"sync/atomic"
)

// Allocator hands out integer slots in [0, N) using lock-free bitmap
// operations, as the paper's specialized tuple allocator does (§4): a slot
// reservation or release is a single atomic word update.
//
// The zero value is not usable; construct with NewAllocator.
type Allocator struct {
	words []atomic.Uint64
	n     int
	inUse atomic.Int64
}

// NewAllocator returns an allocator for n slots, all initially free.
func NewAllocator(n int) *Allocator {
	if n < 0 {
		n = 0
	}
	return &Allocator{words: make([]atomic.Uint64, Words(n)), n: n}
}

// Cap returns the total number of slots.
func (a *Allocator) Cap() int { return a.n }

// InUse returns the number of currently allocated slots.
func (a *Allocator) InUse() int { return int(a.inUse.Load()) }

// Alloc reserves the lowest-numbered free slot. It returns false if all
// slots are in use.
func (a *Allocator) Alloc() (int, bool) {
	for w := range a.words {
		for {
			old := a.words[w].Load()
			free := ^old
			if w == len(a.words)-1 {
				// Mask out bits beyond n.
				if rem := a.n % wordBits; rem != 0 {
					free &= (1 << uint(rem)) - 1
				}
			}
			if free == 0 {
				break // word full; try next word
			}
			bit := bits.TrailingZeros64(free)
			if a.words[w].CompareAndSwap(old, old|1<<uint(bit)) {
				a.inUse.Add(1)
				return w*wordBits + bit, true
			}
			// CAS raced; retry this word.
		}
	}
	return 0, false
}

// Free releases slot i. Freeing a slot that is not allocated panics: it
// indicates a double-free, which would corrupt query-id or tuple reuse.
func (a *Allocator) Free(i int) {
	if i < 0 || i >= a.n {
		panic("bitvec: Free out of range")
	}
	w, mask := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	for {
		old := a.words[w].Load()
		if old&mask == 0 {
			panic("bitvec: double free")
		}
		if a.words[w].CompareAndSwap(old, old&^mask) {
			a.inUse.Add(-1)
			return
		}
	}
}

// Allocated reports whether slot i is currently in use.
func (a *Allocator) Allocated(i int) bool {
	if i < 0 || i >= a.n {
		return false
	}
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}
