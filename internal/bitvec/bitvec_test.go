package bitvec

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSetClearGet(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 7 {
		v.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%7 == 0
		if v.Get(i) != want {
			t.Fatalf("bit %d: got %v, want %v", i, v.Get(i), want)
		}
	}
	for i := 0; i < 200; i += 7 {
		v.Clear(i)
	}
	if !v.IsZero() {
		t.Fatal("expected zero vector after clearing all bits")
	}
}

func TestAndOrSemantics(t *testing.T) {
	a, b := New(130), New(130)
	a.Set(0)
	a.Set(64)
	a.Set(129)
	b.Set(64)
	b.Set(100)
	c := a.Clone()
	c.And(b)
	if c.Count() != 1 || !c.Get(64) {
		t.Fatalf("And: got %v", c)
	}
	d := a.Clone()
	d.Or(b)
	if d.Count() != 4 {
		t.Fatalf("Or: got count %d", d.Count())
	}
}

func TestAndNotIsZero(t *testing.T) {
	v, mask := New(70), New(70)
	v.Set(3)
	v.Set(69)
	mask.Set(3)
	if v.AndNotIsZero(mask) {
		t.Fatal("bit 69 outside mask should make AndNotIsZero false")
	}
	mask.Set(69)
	if !v.AndNotIsZero(mask) {
		t.Fatal("all bits covered by mask; want true")
	}
}

func TestAndIsZero(t *testing.T) {
	v, o := New(10), New(10)
	v.Set(1)
	o.Set(2)
	if !v.AndIsZero(o) {
		t.Fatal("disjoint vectors must AND to zero")
	}
	o.Set(1)
	if v.AndIsZero(o) {
		t.Fatal("overlapping vectors must not AND to zero")
	}
}

func TestFill(t *testing.T) {
	v := New(130)
	v.Fill(100)
	if v.Count() != 100 {
		t.Fatalf("Fill(100): count %d", v.Count())
	}
	if v.Get(100) || !v.Get(99) {
		t.Fatal("Fill boundary wrong")
	}
	v.Fill(128)
	if v.Count() != 128 {
		t.Fatalf("Fill(128): count %d", v.Count())
	}
}

func TestNextSetAndForEach(t *testing.T) {
	v := New(300)
	want := []int{0, 63, 64, 199, 299}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk: got %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk: got %v want %v", got, want)
		}
	}
	got = got[:0]
	v.ForEach(func(i int) bool { got = append(got, i); return true })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ForEach walk: got %v want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	v.ForEach(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("ForEach early stop: %d calls", n)
	}
	if v.NextSet(300) != -1 {
		t.Fatal("NextSet past end must be -1")
	}
}

// Property: And/Or/AndNot agree with per-bit boolean logic.
func TestBitwiseOpsQuick(t *testing.T) {
	f := func(aw, bw [3]uint64) bool {
		a, b := Vec(aw[:]).Clone(), Vec(bw[:]).Clone()
		and, or, andnot := a.Clone(), a.Clone(), a.Clone()
		and.And(b)
		or.Or(b)
		andnot.AndNot(b)
		for i := 0; i < 192; i++ {
			if and.Get(i) != (a.Get(i) && b.Get(i)) {
				return false
			}
			if or.Get(i) != (a.Get(i) || b.Get(i)) {
				return false
			}
			if andnot.Get(i) != (a.Get(i) && !b.Get(i)) {
				return false
			}
		}
		if a.AndIsZero(b) != and.IsZero() {
			return false
		}
		if a.AndNotIsZero(b) != andnot.IsZero() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of Get-true positions.
func TestCountQuick(t *testing.T) {
	f := func(w [4]uint64) bool {
		v := Vec(w[:])
		n := 0
		for i := 0; i < 256; i++ {
			if v.Get(i) {
				n++
			}
		}
		return n == v.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorSequential(t *testing.T) {
	a := NewAllocator(10)
	for i := 0; i < 10; i++ {
		got, ok := a.Alloc()
		if !ok || got != i {
			t.Fatalf("Alloc #%d = %d,%v", i, got, ok)
		}
	}
	if _, ok := a.Alloc(); ok {
		t.Fatal("Alloc must fail when full")
	}
	a.Free(4)
	if got, ok := a.Alloc(); !ok || got != 4 {
		t.Fatalf("expected reuse of slot 4, got %d,%v", got, ok)
	}
	if a.InUse() != 10 {
		t.Fatalf("InUse = %d, want 10", a.InUse())
	}
}

func TestAllocatorBoundary(t *testing.T) {
	// n not a multiple of 64: the last word's tail must never be handed out.
	a := NewAllocator(65)
	seen := make(map[int]bool)
	for {
		s, ok := a.Alloc()
		if !ok {
			break
		}
		if s < 0 || s >= 65 || seen[s] {
			t.Fatalf("bad slot %d", s)
		}
		seen[s] = true
	}
	if len(seen) != 65 {
		t.Fatalf("allocated %d slots, want 65", len(seen))
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	a := NewAllocator(4)
	s, _ := a.Alloc()
	a.Free(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free(s)
}

func TestAllocatorConcurrent(t *testing.T) {
	const n, workers, rounds = 512, 8, 2000
	a := NewAllocator(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			held := make([]int, 0, 64)
			for r := 0; r < rounds; r++ {
				if len(held) > 0 && rng.Intn(2) == 0 {
					i := rng.Intn(len(held))
					a.Free(held[i])
					held = append(held[:i], held[i+1:]...)
				} else if s, ok := a.Alloc(); ok {
					held = append(held, s)
				}
			}
			for _, s := range held {
				a.Free(s)
			}
		}(int64(w))
	}
	wg.Wait()
	if a.InUse() != 0 {
		t.Fatalf("leaked %d slots", a.InUse())
	}
	// Every slot must be allocatable again.
	for i := 0; i < n; i++ {
		if _, ok := a.Alloc(); !ok {
			t.Fatalf("slot %d not reusable after concurrent churn", i)
		}
	}
}

func TestUint64FastPath(t *testing.T) {
	v := New(64)
	v.Set(0)
	v.Set(63)
	if v.Uint64() != 1|1<<63 {
		t.Fatalf("Uint64 = %x", v.Uint64())
	}
	v.SetUint64(0xf0)
	if v.Uint64() != 0xf0 || !v.Get(4) || v.Get(0) {
		t.Fatalf("SetUint64 round trip failed: %x", v.Uint64())
	}
	// The register form must agree with the vector operations the fast
	// path replaces: probe-skip test, AND, and zero check.
	mask := New(64)
	mask.SetUint64(0x0f)
	if (v.Uint64()&^mask.Uint64() == 0) != v.AndNotIsZero(mask) {
		t.Fatal("register probe-skip test diverges from AndNotIsZero")
	}
	v.And(mask)
	if v.Uint64() != 0xf0&0x0f || (v.Uint64() == 0) != v.IsZero() {
		t.Fatalf("register AND diverges from Vec.And: %x", v.Uint64())
	}
}

// TestUnrolledTailWidths drives every binary op across widths that
// exercise the 4-word unrolled block, the scalar tail, and both together
// (1..9 words), against a bit-by-bit reference.
func TestUnrolledTailWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for words := 1; words <= 9; words++ {
		nbits := words * 64
		for trial := 0; trial < 50; trial++ {
			a, b := New(nbits), New(nbits)
			for i := 0; i < nbits; i++ {
				if rng.Intn(3) == 0 {
					a.Set(i)
				}
				if rng.Intn(3) == 0 {
					b.Set(i)
				}
			}
			wantAnd, wantAndNot, wantOr := New(nbits), New(nbits), New(nbits)
			andZero, andNotZero, zero := true, true, true
			for i := 0; i < nbits; i++ {
				av, bv := a.Get(i), b.Get(i)
				if av && bv {
					wantAnd.Set(i)
					andZero = false
				}
				if av && !bv {
					wantAndNot.Set(i)
					andNotZero = false
				}
				if av || bv {
					wantOr.Set(i)
				}
				if av {
					zero = false
				}
			}
			if got := a.AndIsZero(b); got != andZero {
				t.Fatalf("words=%d AndIsZero=%v want %v", words, got, andZero)
			}
			if got := a.AndNotIsZero(b); got != andNotZero {
				t.Fatalf("words=%d AndNotIsZero=%v want %v", words, got, andNotZero)
			}
			if got := a.IsZero(); got != zero {
				t.Fatalf("words=%d IsZero=%v want %v", words, got, zero)
			}
			for op, want := range map[string]Vec{"and": wantAnd, "andnot": wantAndNot, "or": wantOr} {
				c := a.Clone()
				switch op {
				case "and":
					c.And(b)
				case "andnot":
					c.AndNot(b)
				case "or":
					c.Or(b)
				}
				if !c.Equal(want) {
					t.Fatalf("words=%d %s mismatch", words, op)
				}
			}
		}
	}
}

func TestAndPairMatchesAnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nbits := range []int{64, 128, 192, 256, 320, 512, 576, 1024} {
		for trial := 0; trial < 20; trial++ {
			a, b := New(nbits), New(nbits)
			for i := range a {
				a[i] = rng.Uint64()
				b[i] = rng.Uint64()
			}
			want := a.Clone()
			want.And(b)
			got := a.Clone()
			AndPair(got, b)
			if !got.Equal(want) {
				t.Fatalf("nbits=%d: AndPair %v, And %v", nbits, got, want)
			}
		}
	}
}
