// Package bitvec provides fixed-width bit vectors and a lock-free bitmap
// slot allocator.
//
// Bit vectors are the core data structure of the CJOIN operator: every fact
// tuple and every stored dimension tuple carries one bit per registered
// query (§3.1 of the paper). The allocator reproduces the paper's
// "specialized allocator [that] reserves and releases tuples using bitmap
// operations" (§4); it is also used to recycle query identifiers within
// [1, maxConc] (§3.3).
package bitvec

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-width bit vector. The width is fixed at allocation time;
// all binary operations require operands of equal width.
type Vec []uint64

// Words returns the number of 64-bit words needed to hold nbits bits.
func Words(nbits int) int {
	if nbits <= 0 {
		return 0
	}
	return (nbits + wordBits - 1) / wordBits
}

// New returns a zeroed vector wide enough to hold nbits bits.
func New(nbits int) Vec {
	return make(Vec, Words(nbits))
}

// Set sets bit i to 1.
func (v Vec) Set(i int) { v[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear sets bit i to 0.
func (v Vec) Clear(i int) { v[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool { return v[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 }

// The binary operations below are the inner loop of every Filter probe
// when maxConc > 64 (the single-word fast path covers <= 64). The write
// ops (And, AndNot, Or) must touch every word, so their bodies walk
// unrolled 4-word blocks with a scalar tail — at 256 bits (4 words) the
// block is the whole vector — while staying inside the compiler's
// inlining budget so the probe loop gets straight-line code with no call
// per tuple. The predicates keep simple per-word loops on purpose: their
// early exit usually triggers on word 0 in the Filter, which beats
// unrolling (measured on BenchmarkFilterProbe/mc=256).

// And replaces v with v AND o.
func (v Vec) And(o Vec) {
	n := len(v)
	o = o[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v[i] &= o[i]
		v[i+1] &= o[i+1]
		v[i+2] &= o[i+2]
		v[i+3] &= o[i+3]
	}
	for ; i < n; i++ {
		v[i] &= o[i]
	}
}

// AndNot replaces v with v AND NOT o.
func (v Vec) AndNot(o Vec) {
	n := len(v)
	o = o[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v[i] &^= o[i]
		v[i+1] &^= o[i+1]
		v[i+2] &^= o[i+2]
		v[i+3] &^= o[i+3]
	}
	for ; i < n; i++ {
		v[i] &^= o[i]
	}
}

// Or replaces v with v OR o.
func (v Vec) Or(o Vec) {
	n := len(v)
	o = o[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		v[i] |= o[i]
		v[i+1] |= o[i+1]
		v[i+2] |= o[i+2]
		v[i+3] |= o[i+3]
	}
	for ; i < n; i++ {
		v[i] |= o[i]
	}
}

// AndPair computes dst[i] &= src[i] over two pre-sliced word slices of
// equal length — the SIMD-friendly AND for wide vectors: the caller
// pre-slices both operands to the same length, the explicit three-index
// re-slices below let the compiler drop every bounds check inside the
// 8-word blocks, and the blocks are independent straight-line ANDs the
// hardware can retire in parallel (or auto-vectorize).
//
// It deliberately does NOT replace Vec.And in the per-tuple Filter
// probe: AndPair's body is past the inlining budget, and the measured
// A/B at maxConc = 256 (4 words) showed the per-tuple call overhead
// costs more than the wider unroll saves (PERFORMANCE.md PR 3) —
// consistent with PR 2's finding that inlinability dominates at Filter
// widths. Its measured break-even is ~16 words (maxConc >= 1024); its
// profitable regime is such very wide vectors and bulk passes that AND
// many pairs per call.
func AndPair(dst, src []uint64) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := dst[i : i+8 : i+8]
		s := src[i : i+8 : i+8]
		d[0] &= s[0]
		d[1] &= s[1]
		d[2] &= s[2]
		d[3] &= s[3]
		d[4] &= s[4]
		d[5] &= s[5]
		d[6] &= s[6]
		d[7] &= s[7]
	}
	for ; i+4 <= n; i += 4 {
		dst[i] &= src[i]
		dst[i+1] &= src[i+1]
		dst[i+2] &= src[i+2]
		dst[i+3] &= src[i+3]
	}
	for ; i < n; i++ {
		dst[i] &= src[i]
	}
}

// AndIsZero reports whether (v AND o) == 0 without modifying v. Unlike
// the write ops above it is deliberately not unrolled: in the Filter the
// first word usually decides, so the early exit is worth more than
// instruction-level parallelism.
func (v Vec) AndIsZero(o Vec) bool {
	for i := range v {
		if v[i]&o[i] != 0 {
			return false
		}
	}
	return true
}

// AndNotIsZero reports whether (v AND NOT o) == 0 without modifying v.
// This implements the probe-skip test of §3.2.2: if the fact tuple is only
// relevant to queries that do not reference dimension D_j (whose bits are
// set in b_Dj), the hash probe can be skipped entirely.
// Like AndIsZero it keeps the per-word early exit instead of unrolling:
// a tuple that fails the skip test usually fails in word 0.
func (v Vec) AndNotIsZero(o Vec) bool {
	for i := range v {
		if v[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// IsZero reports whether every bit is 0. Early exit, not unrolled: a
// surviving tuple's first word is usually nonzero.
func (v Vec) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears all bits.
func (v Vec) Reset() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets the first nbits bits to 1 and clears the rest.
func (v Vec) Fill(nbits int) {
	v.Reset()
	full := nbits / wordBits
	for i := 0; i < full; i++ {
		v[i] = ^uint64(0)
	}
	if rem := nbits % wordBits; rem != 0 && full < len(v) {
		v[full] = (1 << uint(rem)) - 1
	}
}

// Uint64 returns the vector's first word — the entire vector when its
// width is at most 64 bits. This is the CJOIN Filter's single-word fast
// path (maxConc <= 64): with the whole bit-vector in one register, the
// probe-skip test (§3.2.2), the AND, and the zero check are plain
// integer operations with no slice iteration.
func (v Vec) Uint64() uint64 { return v[0] }

// SetUint64 overwrites the vector's first word — the store half of the
// single-word fast path.
func (v Vec) SetUint64(w uint64) { v[0] = w }

// CopyFrom overwrites v with the contents of o.
func (v Vec) CopyFrom(o Vec) { copy(v, o) }

// Clone returns a fresh copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Count returns the number of set bits.
func (v Vec) Count() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether v and o have identical contents.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after from,
// or -1 if there is none.
func (v Vec) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	w := from / wordBits
	if w >= len(v) {
		return -1
	}
	cur := v[w] >> (uint(from) % wordBits)
	if cur != 0 {
		return from + bits.TrailingZeros64(cur)
	}
	for w++; w < len(v); w++ {
		if v[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(v[w])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false, iteration stops.
func (v Vec) ForEach(fn func(i int) bool) {
	for w, word := range v {
		for word != 0 {
			i := w*wordBits + bits.TrailingZeros64(word)
			if !fn(i) {
				return
			}
			word &= word - 1
		}
	}
}

// String renders the vector as a little-endian bit string ("1011…"),
// bit 0 first, for debugging.
func (v Vec) String() string {
	var b strings.Builder
	for i := 0; i < len(v)*wordBits; i++ {
		if v.Get(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
