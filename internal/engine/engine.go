// Package engine implements a conventional query-at-a-time star-query
// engine: the baseline the paper compares CJOIN against (§6.1.1).
//
// The paper verified that both System X and PostgreSQL evaluate its star
// workloads with the same physical plan — "a pipeline of hash joins that
// filter a single scan of the fact table" — so this engine implements
// exactly that plan: per query, it builds a private hash table for each
// referenced dimension, then scans the fact table through a shared buffer
// pool, probing the hash tables in sequence and feeding survivors to an
// aggregation operator.
//
// Each concurrent query runs its own plan with its own scan cursor and its
// own hash tables; contention on the shared disk and buffer pool is the
// point — it is what the query-at-a-time model costs (§1).
package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/buffer"
	"cjoin/internal/catalog"
	"cjoin/internal/expr"
	"cjoin/internal/query"
	"cjoin/internal/storage"
	"cjoin/internal/txn"
)

// Config tunes the engine to stand in for a particular baseline system.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// BufferPoolPages bounds the shared buffer pool.
	BufferPoolPages int
	// PerTupleCost models fixed per-fact-tuple CPU overhead. The
	// PostgreSQL configuration uses a higher value than System X,
	// standing in for the maturity gap the paper measures.
	PerTupleCost time.Duration
	// SharedScans enables PostgreSQL-style synchronized scans: a new
	// fact scan starts at the position of the most recent active scan on
	// the same heap and wraps, improving buffer-pool locality.
	SharedScans bool
	// RandomizeStart starts each fact scan at a random page (wrapping).
	// This models the steady-state arrival pattern of a production
	// system: when a query begins, concurrent scans are at arbitrary
	// positions relative to it, so mutually-unaware plans interleave
	// their I/O — the §1 contention the paper measures. Without it, a
	// simultaneous test batch forms an artificial lockstep convoy.
	RandomizeStart bool
	// ReadAheadPages is the extent size of fact scans (OS read-ahead).
	ReadAheadPages int
}

// SystemXConfig approximates the paper's commercial "System X": a
// well-tuned engine with low per-tuple overhead, reading in large
// extents, each query running its own mutually-unaware plan.
func SystemXConfig() Config {
	return Config{Name: "System X", BufferPoolPages: 256, RandomizeStart: true, ReadAheadPages: 16}
}

// PostgresConfig approximates the paper's tuned PostgreSQL with shared
// (synchronized) scans enabled (§6.1.1) and the higher per-tuple
// execution overhead of the 2009-era interpreter.
func PostgresConfig() Config {
	return Config{Name: "PostgreSQL", BufferPoolPages: 256, PerTupleCost: 3 * time.Microsecond, SharedScans: true, ReadAheadPages: 16}
}

// Engine executes bound star queries one physical plan per query.
type Engine struct {
	star *catalog.Star
	cfg  Config
	pool *buffer.Pool

	mu      sync.Mutex
	scanPos map[*storage.HeapFile]int // shared-scan hint: last page read
	rng     *rand.Rand                // randomized scan starts
}

// New returns an engine over the given star schema.
func New(star *catalog.Star, cfg Config) *Engine {
	if cfg.BufferPoolPages <= 0 {
		cfg.BufferPoolPages = 256
	}
	if cfg.ReadAheadPages <= 0 {
		cfg.ReadAheadPages = 1
	}
	return &Engine{
		star:    star,
		cfg:     cfg,
		pool:    buffer.NewPool(cfg.BufferPoolPages, cfg.ReadAheadPages),
		scanPos: make(map[*storage.HeapFile]int),
		rng:     rand.New(rand.NewSource(1)),
	}
}

// PoolStats exposes buffer pool counters for experiments.
func (e *Engine) PoolStats() buffer.Stats { return e.pool.Stats() }

// Execute runs q to completion and returns its grouped results, sorted by
// group key and then by the query's ORDER BY.
func (e *Engine) Execute(q *query.Bound) ([]agg.Result, error) {
	// Build phase: one private hash table per referenced dimension,
	// keyed by the dimension's join key.
	tables := make([]map[int64][]int64, len(e.star.Dims))
	for i, used := range q.DimRefs {
		if !used {
			continue
		}
		ht, err := e.buildDimTable(i, q.DimPreds[i])
		if err != nil {
			return nil, err
		}
		tables[i] = ht
	}

	aggr := agg.NewHash(q.Aggs, q.GroupBy)
	joined := expr.Joined{Dims: make([][]int64, len(e.star.Dims))}
	hasMVCC := e.star.Fact.Hidden >= 2

	// Probe phase: scan every fact partition through the buffer pool.
	for _, part := range e.star.Partitions() {
		if err := e.scanPartition(part.Heap, q, tables, aggr, &joined, hasMVCC); err != nil {
			return nil, err
		}
	}
	results := aggr.Results()
	SortResults(results, q.OrderBy)
	return q.ApplyLimit(results), nil
}

func (e *Engine) scanPartition(h *storage.HeapFile, q *query.Bound, tables []map[int64][]int64, aggr *agg.Hash, joined *expr.Joined, hasMVCC bool) error {
	ncols := h.NumCols()
	vals := make([]int64, h.RowsPerPage()*ncols)
	npages := h.NumPages()
	if npages == 0 {
		return nil
	}
	start := 0
	switch {
	case e.cfg.SharedScans:
		e.mu.Lock()
		start = e.scanPos[h] % npages
		e.mu.Unlock()
	case e.cfg.RandomizeStart:
		e.mu.Lock()
		start = e.rng.Intn(npages)
		e.mu.Unlock()
	}
	checkFact := q.HasFactPred()
	for k := 0; k < npages; k++ {
		page := (start + k) % npages
		if e.cfg.SharedScans {
			e.mu.Lock()
			e.scanPos[h] = page
			e.mu.Unlock()
		}
		n, err := e.pool.ReadPage(h, page, vals)
		if err != nil {
			return err
		}
	rows:
		for r := 0; r < n; r++ {
			row := vals[r*ncols : (r+1)*ncols]
			if e.cfg.PerTupleCost > 0 {
				busyWait(e.cfg.PerTupleCost)
			}
			if hasMVCC && !txn.Visible(row[0], row[1], q.Snapshot) {
				continue
			}
			joined.Fact = row
			if checkFact && q.FactPred.Eval(joined) == 0 {
				continue
			}
			for d, ht := range tables {
				if ht == nil {
					joined.Dims[d] = nil
					continue
				}
				dimRow, ok := ht[row[e.star.FKCol[d]]]
				if !ok {
					continue rows
				}
				joined.Dims[d] = dimRow
			}
			aggr.Add(joined)
		}
	}
	return nil
}

// buildDimTable scans dimension i and returns key → row for rows passing
// pred. Dimension pages also go through the shared buffer pool.
func (e *Engine) buildDimTable(i int, pred expr.Node) (map[int64][]int64, error) {
	dim := e.star.Dims[i]
	h := dim.Heap
	keyCol := e.star.KeyCol[i]
	ncols := h.NumCols()
	vals := make([]int64, h.RowsPerPage()*ncols)
	ht := make(map[int64][]int64)
	for page := 0; page < h.NumPages(); page++ {
		n, err := e.pool.ReadPage(h, page, vals)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			row := vals[r*ncols : (r+1)*ncols]
			if expr.EvalRow(pred, row) {
				cp := make([]int64, ncols)
				copy(cp, row)
				ht[cp[keyCol]] = cp
			}
		}
	}
	return ht, nil
}

// SortResults orders results by the query's ORDER BY specs. It delegates
// to query.SortResults and is kept for callers of the engine package.
func SortResults(rs []agg.Result, order []query.OrderSpec) {
	query.SortResults(rs, order)
}

// busyWait burns CPU for roughly d, modeling per-tuple engine overhead
// without involving the scheduler (sleeps are far too coarse per tuple).
func busyWait(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

// Explain renders the physical plan the engine would use, mirroring the
// left-deep hash-join pipeline shape of §3.2.3.
func (e *Engine) Explain(q *query.Bound) string {
	s := fmt.Sprintf("Aggregate(%d aggs, %d group cols)\n", len(q.Aggs), len(q.GroupBy))
	for i := len(e.star.Dims) - 1; i >= 0; i-- {
		if q.DimRefs[i] {
			s += fmt.Sprintf("  HashJoin(fact.%s = %s.%s) [pred: %s]\n",
				e.star.Fact.Columns[e.star.FKCol[i]].Name,
				e.star.Dims[i].Name,
				e.star.Dims[i].Columns[e.star.KeyCol[i]].Name,
				q.DimPreds[i])
		}
	}
	s += fmt.Sprintf("    SeqScan(%s) [pred: %s]\n", e.star.Fact.Name, q.FactPred)
	return s
}
