package engine_test

import (
	"math/rand"
	"sync"
	"testing"

	"cjoin/internal/agg"
	"cjoin/internal/engine"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/ssb"
)

func dataset(t testing.TB) *ssb.Dataset {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestExecuteMatchesReference(t *testing.T) {
	ds := dataset(t)
	e := engine.New(ds.Star, engine.SystemXConfig())
	rng := rand.New(rand.NewSource(21))
	for _, tpl := range ssb.Templates() {
		sqlText := ds.Instantiate(tpl, 0.1, rng)
		q, err := query.ParseBind(sqlText, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", tpl.ID, err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(got, want) {
			t.Fatalf("%s: engine diverges from reference\nSQL: %s\ngot:  %v\nwant: %v", tpl.ID, sqlText, got, want)
		}
		if len(got) == 0 {
			t.Logf("%s: empty result (selectivity landed on empty range)", tpl.ID)
		}
	}
}

func TestSharedScansMatchReference(t *testing.T) {
	ds := dataset(t)
	e := engine.New(ds.Star, engine.PostgresConfig())
	rng := rand.New(rand.NewSource(22))
	// Issue several queries so scan positions rotate; results must not
	// depend on the scan starting offset.
	for i := 0; i < 6; i++ {
		tpl, _ := ssb.TemplateByID("Q4.2")
		sqlText := ds.Instantiate(tpl, 0.1, rng)
		q, err := query.ParseBind(sqlText, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.ResultsEqual(got, want) {
			t.Fatalf("iteration %d: shared-scan results diverge", i)
		}
	}
}

func TestConcurrentQueriesIndependent(t *testing.T) {
	ds := dataset(t)
	e := engine.New(ds.Star, engine.SystemXConfig())
	rng := rand.New(rand.NewSource(23))
	type job struct {
		q    *query.Bound
		want []agg.Result
	}
	var jobs []job
	for i := 0; i < 8; i++ {
		tpl := ssb.Templates()[i%len(ssb.Templates())]
		q, err := query.ParseBind(ds.Instantiate(tpl, 0.05, rng), ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{q, want})
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			got, err := e.Execute(j.q)
			if err != nil {
				t.Error(err)
				return
			}
			if !ref.ResultsEqual(got, j.want) {
				t.Error("concurrent execution changed results")
			}
		}(j)
	}
	wg.Wait()
}

func TestPartitionedStarExecution(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 3000, Seed: 31, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(ds.Star, engine.SystemXConfig())
	rng := rand.New(rand.NewSource(32))
	tpl, _ := ssb.TemplateByID("Q2.1")
	q, err := query.ParseBind(ds.Instantiate(tpl, 0.2, rng), ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.ResultsEqual(got, want) {
		t.Fatal("partitioned execution diverges from reference")
	}
}

func TestOrderByApplied(t *testing.T) {
	ds := dataset(t)
	e := engine.New(ds.Star, engine.SystemXConfig())
	q, err := query.ParseBind(`SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date
		WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year DESC`, ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) < 2 {
		t.Fatalf("expected several years, got %d", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Group[0] > rs[i-1].Group[0] {
			t.Fatal("DESC order violated")
		}
	}
}

func TestExplain(t *testing.T) {
	ds := dataset(t)
	e := engine.New(ds.Star, engine.SystemXConfig())
	rng := rand.New(rand.NewSource(5))
	tpl, _ := ssb.TemplateByID("Q4.2")
	q, err := query.ParseBind(ds.Instantiate(tpl, 0.01, rng), ds.Star)
	if err != nil {
		t.Fatal(err)
	}
	plan := e.Explain(q)
	if plan == "" {
		t.Fatal("empty plan")
	}
}
