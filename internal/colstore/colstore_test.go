package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cjoin/internal/disk"
)

func fill(t *Table, n int64) {
	for i := int64(0); i < n; i++ {
		row := make([]int64, t.NumCols())
		for c := range row {
			row[c] = i*10 + int64(c)
		}
		t.Append(row)
	}
}

func TestMergerFullProjection(t *testing.T) {
	dev := disk.NewMem()
	tab := Create(dev, 3)
	fill(tab, 5000)
	m, err := NewMerger(tab, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, m.RowsPerPage()*3)
	var row int64
	for page := 0; page < m.NumPages(); page++ {
		n, err := m.ReadPage(page, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < n; r++ {
			for c := 0; c < 3; c++ {
				if dst[r*3+c] != row*10+int64(c) {
					t.Fatalf("row %d col %d = %d", row, c, dst[r*3+c])
				}
			}
			row++
		}
	}
	if row != 5000 {
		t.Fatalf("merged %d rows", row)
	}
}

func TestMergerProjectionAndOrder(t *testing.T) {
	dev := disk.NewMem()
	tab := Create(dev, 4)
	fill(tab, 2000)
	// Project columns out of order: (3, 1).
	m, err := NewMerger(tab, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, m.RowsPerPage()*2)
	n, err := m.ReadPage(0, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || dst[0] != 3 || dst[1] != 1 {
		t.Fatalf("projected first row = %v", dst[:2])
	}
}

func TestMergerReadsOnlyProjectedBytes(t *testing.T) {
	dev := disk.New(disk.Config{}) // no latency, but counts bytes
	tab := Create(dev, 10)
	fill(tab, 20000)
	dev.ResetStats()

	m, err := NewMerger(tab, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, m.RowsPerPage()*2)
	for page := 0; page < m.NumPages(); page++ {
		if _, err := m.ReadPage(page, dst, nil); err != nil {
			t.Fatal(err)
		}
	}
	read := dev.Stats().BytesRead
	full := int64(10 * 20000 * 8)
	// Two of ten columns: the scan/merge should transfer roughly a fifth
	// of the full table (page slack allowed).
	if read > full*3/10 {
		t.Fatalf("projection read %d bytes of a %d-byte table", read, full)
	}
}

func TestMergerErrors(t *testing.T) {
	tab := Create(disk.NewMem(), 2)
	fill(tab, 10)
	if _, err := NewMerger(tab, nil); err == nil {
		t.Fatal("empty projection must error")
	}
	if _, err := NewMerger(tab, []int{9}); err == nil {
		t.Fatal("out-of-range column must error")
	}
	m, _ := NewMerger(tab, []int{0})
	if _, err := m.ReadPage(99, make([]int64, m.RowsPerPage()), nil); err == nil {
		t.Fatal("out-of-range page must error")
	}
}

func TestMaterializeEqualsMerge(t *testing.T) {
	dev := disk.NewMem()
	tab := Create(dev, 3)
	fill(tab, 3000)
	m, err := NewMerger(tab, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Materialize(disk.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != 3000 || h.NumCols() != 2 {
		t.Fatalf("materialized %d rows %d cols", h.NumRows(), h.NumCols())
	}
	row, err := h.RowAt(7)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 72 || row[1] != 70 {
		t.Fatalf("row 7 = %v", row)
	}
}

// Property: a columnar round trip through any projection preserves the
// projected values in row order.
func TestMergerQuick(t *testing.T) {
	f := func(vals []int16, pick uint8) bool {
		const ncols = 3
		n := len(vals) / ncols
		if n == 0 {
			return true
		}
		tab := Create(disk.NewMem(), ncols)
		for i := 0; i < n; i++ {
			tab.Append([]int64{int64(vals[i*ncols]), int64(vals[i*ncols+1]), int64(vals[i*ncols+2])})
		}
		col := int(pick) % ncols
		m, err := NewMerger(tab, []int{col})
		if err != nil {
			return false
		}
		dst := make([]int64, m.RowsPerPage())
		row := 0
		for page := 0; page < m.NumPages(); page++ {
			k, err := m.ReadPage(page, dst, nil)
			if err != nil {
				return false
			}
			for r := 0; r < k; r++ {
				if dst[r] != int64(vals[row*ncols+col]) {
					return false
				}
				row++
			}
		}
		return row == n
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
