// Package colstore implements the column-store storage layout of the
// paper's §5 extension: a table is stored as one single-column heap per
// attribute, and a scan of a projection reconstructs row-major pages by
// merging only the columns the current query mix accesses — "the
// continuous fact table scan can be realized with a continuous scan/merge
// of only those fact table columns that are accessed".
//
// The Merger presents the same page-oriented read interface as a row
// heap, so a projection can either feed a scan directly or be
// materialized into a (narrower) row heap for the CJOIN pipeline.
package colstore

import (
	"fmt"

	"cjoin/internal/disk"
	"cjoin/internal/storage"
)

// Table stores rows of ncols columns as ncols single-column heaps.
type Table struct {
	dev   *disk.Device
	cols  []*storage.HeapFile
	ncols int
}

// Create returns an empty columnar table on dev.
func Create(dev *disk.Device, ncols int) *Table {
	if ncols <= 0 {
		panic("colstore: table needs at least one column")
	}
	t := &Table{dev: dev, ncols: ncols}
	for i := 0; i < ncols; i++ {
		t.cols = append(t.cols, storage.CreateHeap(dev, 1))
	}
	return t
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return t.ncols }

// NumRows returns the row count.
func (t *Table) NumRows() int64 { return t.cols[0].NumRows() }

// Append adds one row, splitting it across the column heaps.
func (t *Table) Append(row []int64) {
	if len(row) != t.ncols {
		panic(fmt.Sprintf("colstore: Append arity %d, table has %d columns", len(row), t.ncols))
	}
	for c, v := range row {
		t.cols[c].Append([]int64{v})
	}
}

// Merger reconstructs row-major pages from the column heaps. In
// projection mode (NewMerger) the output rows contain only the projected
// columns, packed in the requested order. In schema mode (NewSchemaMerger)
// the output rows keep the table's full width and column positions but
// only the needed columns are read from the device — the §5 "scan/merge
// of only those fact table columns that are accessed by the current query
// mix"; untouched columns read as zero.
//
// Merger satisfies the page-source contract of the CJOIN continuous scan.
type Merger struct {
	t        *Table
	cols     []int // column heaps to read
	outPos   []int // output position of cols[i] within a row
	outWidth int   // output row width
	rpp      int
	colRPP   int
	colBuf   []byte

	// Per-read-column cache of the most recent column page, so a
	// sequential merge reads every column page exactly once even though
	// merged-page and column-page boundaries differ.
	cachePage []int
	cacheVals [][]int64
	cacheN    []int
}

// NewMerger returns a projection merger over the given column indexes
// (in output order).
func NewMerger(t *Table, cols []int) (*Merger, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: empty projection")
	}
	outPos := make([]int, len(cols))
	for i := range cols {
		outPos[i] = i
	}
	return newMerger(t, cols, outPos, len(cols))
}

// NewSchemaMerger returns a full-width merger that reads only the columns
// marked in needed; the rest of each row is zero.
func NewSchemaMerger(t *Table, needed []bool) (*Merger, error) {
	if len(needed) != t.ncols {
		return nil, fmt.Errorf("colstore: needed mask has %d entries, table has %d columns", len(needed), t.ncols)
	}
	var cols, outPos []int
	for c, n := range needed {
		if n {
			cols = append(cols, c)
			outPos = append(outPos, c)
		}
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("colstore: empty projection")
	}
	return newMerger(t, cols, outPos, t.ncols)
}

func newMerger(t *Table, cols, outPos []int, outWidth int) (*Merger, error) {
	for _, c := range cols {
		if c < 0 || c >= t.ncols {
			return nil, fmt.Errorf("colstore: column %d out of range", c)
		}
	}
	rpp := (storage.PageSize - 4) / (8 * outWidth)
	m := &Merger{
		t:         t,
		cols:      append([]int(nil), cols...),
		outPos:    append([]int(nil), outPos...),
		outWidth:  outWidth,
		rpp:       rpp,
		colRPP:    t.cols[0].RowsPerPage(),
		colBuf:    make([]byte, storage.PageSize),
		cachePage: make([]int, len(cols)),
		cacheVals: make([][]int64, len(cols)),
		cacheN:    make([]int, len(cols)),
	}
	for i := range m.cacheVals {
		m.cachePage[i] = -1
		m.cacheVals[i] = make([]int64, m.colRPP)
	}
	return m, nil
}

// loadColPage returns the cached values of column-slot `out`'s page cp,
// reading it from the device only when the cache holds a different page.
func (m *Merger) loadColPage(out, cp int) ([]int64, int, error) {
	if m.cachePage[out] == cp {
		return m.cacheVals[out], m.cacheN[out], nil
	}
	heap := m.t.cols[m.cols[out]]
	n, err := heap.ReadPage(cp, m.cacheVals[out], m.colBuf)
	if err != nil {
		return nil, 0, err
	}
	m.cachePage[out] = cp
	m.cacheN[out] = n
	return m.cacheVals[out], n, nil
}

// NumCols returns the output row width.
func (m *Merger) NumCols() int { return m.outWidth }

// RowsPerPage returns the merged page row capacity.
func (m *Merger) RowsPerPage() int { return m.rpp }

// NumPages returns the number of merged pages.
func (m *Merger) NumPages() int {
	n := m.t.NumRows()
	return int((n + int64(m.rpp) - 1) / int64(m.rpp))
}

// ReadPage reconstructs merged page `page` into dst (row-major) and
// returns its row count. This is the §5 scan/merge: it reads only the
// merger's columns' pages from the device. The scratch parameter exists
// to satisfy the page-source contract and is unused. In schema mode,
// unread columns are zeroed.
func (m *Merger) ReadPage(page int, dst []int64, _ []byte) (int, error) {
	total := m.t.NumRows()
	r0 := int64(page) * int64(m.rpp)
	if r0 >= total || page < 0 {
		return 0, fmt.Errorf("colstore: page %d out of range", page)
	}
	r1 := r0 + int64(m.rpp)
	if r1 > total {
		r1 = total
	}
	n := int(r1 - r0)
	if len(m.cols) < m.outWidth {
		for i := 0; i < n*m.outWidth; i++ {
			dst[i] = 0
		}
	}
	for slot, c := range m.cols {
		out := m.outPos[slot]
		row := r0
		for row < r1 {
			cp := int(row) / m.colRPP
			vals, cn, err := m.loadColPage(slot, cp)
			if err != nil {
				return 0, err
			}
			off := int(row) - cp*m.colRPP
			for off < cn && row < r1 {
				dst[int(row-r0)*m.outWidth+out] = vals[off]
				off++
				row++
			}
			if off >= cn && row < r1 && cp == m.t.cols[c].NumPages()-1 {
				return 0, fmt.Errorf("colstore: column %d shorter than table", c)
			}
		}
	}
	return n, nil
}

// Materialize builds a row heap of the projection on dev — a narrower
// fact representation whose continuous scan transfers only the bytes the
// query mix needs, which is the I/O benefit §5 attributes to the
// columnar layout.
func (m *Merger) Materialize(dev *disk.Device) (*storage.HeapFile, error) {
	h := storage.CreateHeap(dev, m.outWidth)
	dst := make([]int64, m.rpp*m.outWidth)
	row := make([]int64, m.outWidth)
	for page := 0; page < m.NumPages(); page++ {
		n, err := m.ReadPage(page, dst, nil)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			copy(row, dst[r*m.outWidth:(r+1)*m.outWidth])
			h.Append(row)
		}
	}
	return h, nil
}
