// Package ref is a deliberately naive in-memory reference executor for
// star queries. It exists only as ground truth for equivalence tests of
// the conventional engine and the CJOIN operator: it materializes every
// table, applies predicates row by row, performs nested-loop index joins,
// and aggregates. Clarity over speed, no shared state, no concurrency.
package ref

import (
	"cjoin/internal/agg"
	"cjoin/internal/engine"
	"cjoin/internal/expr"
	"cjoin/internal/query"
	"cjoin/internal/storage"
	"cjoin/internal/txn"
)

// Execute runs q against the star schema and returns sorted results.
func Execute(q *query.Bound) ([]agg.Result, error) {
	star := q.Schema

	dims := make([]map[int64][]int64, len(star.Dims))
	for i, used := range q.DimRefs {
		if !used {
			continue
		}
		rows, err := readAll(star.Dims[i].Heap)
		if err != nil {
			return nil, err
		}
		m := make(map[int64][]int64)
		for _, row := range rows {
			if expr.EvalRow(q.DimPreds[i], row) {
				m[row[star.KeyCol[i]]] = row
			}
		}
		dims[i] = m
	}

	aggr := agg.NewSorted(q.Aggs, q.GroupBy)
	hasMVCC := star.Fact.Hidden >= 2
	for _, part := range star.Partitions() {
		facts, err := readAll(part.Heap)
		if err != nil {
			return nil, err
		}
	rows:
		for _, row := range facts {
			if hasMVCC && !txn.Visible(row[0], row[1], q.Snapshot) {
				continue
			}
			j := expr.Joined{Fact: row, Dims: make([][]int64, len(star.Dims))}
			if q.FactPred.Eval(&j) == 0 {
				continue
			}
			for d, m := range dims {
				if m == nil {
					continue
				}
				dimRow, ok := m[row[star.FKCol[d]]]
				if !ok {
					continue rows
				}
				j.Dims[d] = dimRow
			}
			aggr.Add(&j)
		}
	}
	results := aggr.Results()
	engine.SortResults(results, q.OrderBy)
	return q.ApplyLimit(results), nil
}

func readAll(h *storage.HeapFile) ([][]int64, error) {
	var out [][]int64
	s := storage.NewScanner(h)
	for row, ok := s.Next(); ok; row, ok = s.Next() {
		cp := make([]int64, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	return out, s.Err()
}

// ResultsEqual reports whether two result sets are identical in group
// keys, aggregate values and order.
func ResultsEqual(a, b []agg.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !int64sEqual(a[i].Group, b[i].Group) || !int64sEqual(a[i].Ints, b[i].Ints) || !int64sEqual(a[i].Counts, b[i].Counts) {
			return false
		}
	}
	return true
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
