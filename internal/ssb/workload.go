package ssb

import (
	"fmt"
	"math/rand"
	"strings"
)

// Template is one SSB query template with abstract range predicates, per
// §6.1.2: "we first convert each benchmark query to a template, by
// substituting each range predicate in the query with an abstract range
// predicate". Q1.1–Q1.3 are excluded exactly as in the paper because they
// are the only queries with fact-table selection predicates and no
// GROUP BY.
type Template struct {
	ID string
	// Dims lists the referenced dimension tables.
	Dims []string
	// Aggs is the SQL aggregate select list.
	Aggs string
	// GroupBy lists grouping columns (also appended to the select list).
	GroupBy []string
}

// Templates returns the paper's ten workload templates (SSB Q2.1–Q4.3).
func Templates() []Template {
	q2 := Template{
		Dims:    []string{"date", "part", "supplier"},
		Aggs:    "SUM(lo_revenue)",
		GroupBy: []string{"d_year", "p_brand1"},
	}
	q3nation := Template{
		Dims:    []string{"customer", "supplier", "date"},
		Aggs:    "SUM(lo_revenue)",
		GroupBy: []string{"c_nation", "s_nation", "d_year"},
	}
	q3city := Template{
		Dims:    []string{"customer", "supplier", "date"},
		Aggs:    "SUM(lo_revenue)",
		GroupBy: []string{"c_city", "s_city", "d_year"},
	}
	q4 := func(group ...string) Template {
		return Template{
			Dims:    []string{"date", "customer", "supplier", "part"},
			Aggs:    "SUM(lo_revenue - lo_supplycost) AS profit",
			GroupBy: group,
		}
	}
	ts := []Template{
		withID(q2, "Q2.1"), withID(q2, "Q2.2"), withID(q2, "Q2.3"),
		withID(q3nation, "Q3.1"), withID(q3city, "Q3.2"), withID(q3city, "Q3.3"), withID(q3city, "Q3.4"),
		withID(q4("d_year", "c_nation"), "Q4.1"),
		withID(q4("d_year", "s_nation", "p_category"), "Q4.2"),
		withID(q4("d_year", "s_city", "p_brand1"), "Q4.3"),
	}
	return ts
}

func withID(t Template, id string) Template {
	t.ID = id
	return t
}

// TemplateByID returns the named template.
func TemplateByID(id string) (Template, bool) {
	for _, t := range Templates() {
		if t.ID == id {
			return t, true
		}
	}
	return Template{}, false
}

var joinPred = map[string]string{
	"date":     "lo_orderdate = d_datekey",
	"customer": "lo_custkey = c_custkey",
	"supplier": "lo_suppkey = s_suppkey",
	"part":     "lo_partkey = p_partkey",
}

// Instantiate renders the template as SQL, replacing each abstract range
// with a concrete key-range predicate of selectivity s on every referenced
// dimension (the knob of §6.1.2: "s allows us to control the number of
// dimension tuples that are loaded by CJOIN per query").
func (ds *Dataset) Instantiate(t Template, s float64, rng *rand.Rand) string {
	var conds []string
	for _, d := range t.Dims {
		conds = append(conds, joinPred[d])
	}
	for _, d := range t.Dims {
		conds = append(conds, ds.rangePred(d, s, rng))
	}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(t.Aggs)
	for _, g := range t.GroupBy {
		sb.WriteString(", ")
		sb.WriteString(g)
	}
	sb.WriteString(" FROM lineorder")
	for _, d := range t.Dims {
		sb.WriteString(", ")
		sb.WriteString(d)
	}
	sb.WriteString(" WHERE ")
	sb.WriteString(strings.Join(conds, " AND "))
	if len(t.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(strings.Join(t.GroupBy, ", "))
		sb.WriteString(" ORDER BY ")
		sb.WriteString(strings.Join(t.GroupBy, ", "))
	}
	return sb.String()
}

// rangePred builds a contiguous key-range predicate selecting a fraction s
// of the dimension's rows, at a random offset.
func (ds *Dataset) rangePred(dim string, s float64, rng *rand.Rand) string {
	switch dim {
	case "date":
		n := len(ds.DateKeys)
		k := width(n, s)
		lo := rng.Intn(n - k + 1)
		return fmt.Sprintf("d_datekey BETWEEN %d AND %d", ds.DateKeys[lo], ds.DateKeys[lo+k-1])
	case "customer":
		return keyRange("c_custkey", ds.NumCustomers, s, rng)
	case "supplier":
		return keyRange("s_suppkey", ds.NumSuppliers, s, rng)
	case "part":
		return keyRange("p_partkey", ds.NumParts, s, rng)
	}
	panic("ssb: unknown dimension " + dim)
}

func keyRange(col string, n int64, s float64, rng *rand.Rand) string {
	k := int64(width(int(n), s))
	lo := rng.Int63n(n-k+1) + 1
	return fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+k-1)
}

// width converts selectivity s over n rows to a range width of at least 1.
func width(n int, s float64) int {
	k := int(float64(n)*s + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// Workload generates a deterministic stream of SQL query texts by sampling
// templates uniformly, as the paper's workload generator does.
type Workload struct {
	ds        *Dataset
	templates []Template
	s         float64
	rng       *rand.Rand
}

// NewWorkload returns a workload with predicate selectivity s and a
// deterministic seed.
func NewWorkload(ds *Dataset, s float64, seed int64) *Workload {
	return &Workload{ds: ds, templates: Templates(), s: s, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next query's template id and SQL text.
func (w *Workload) Next() (string, string) {
	t := w.templates[w.rng.Intn(len(w.templates))]
	return t.ID, w.ds.Instantiate(t, w.s, w.rng)
}

// FromTemplate returns the SQL text of one instantiation of template id.
func (w *Workload) FromTemplate(id string) (string, error) {
	t, ok := TemplateByID(id)
	if !ok {
		return "", fmt.Errorf("ssb: unknown template %q", id)
	}
	return w.ds.Instantiate(t, w.s, w.rng), nil
}
