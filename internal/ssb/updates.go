package ssb

import (
	"fmt"
	"math/rand"

	"cjoin/internal/txn"
)

// AppendFact appends n new fact rows in a single snapshot-isolated commit
// (§3.5: updates reference only the fact table) and returns the snapshot
// at which they become visible. Partitioned datasets are static and
// reject appends.
func (ds *Dataset) AppendFact(n int, rng *rand.Rand) (txn.Snapshot, error) {
	if ds.Star.PartCol >= 0 {
		return 0, fmt.Errorf("ssb: partitioned datasets are static")
	}
	snap := ds.Txn.Commit(func(id uint64) {
		for i := 0; i < n; i++ {
			row := ds.randFactRow(rng)
			row[LoXmin] = int64(id)
			ds.Lineorder.Heap.Append(row)
		}
	})
	return snap, nil
}

// DeleteFact marks the fact row at index idx deleted in a new commit and
// returns the snapshot at which the deletion is visible. A failed delete
// (out-of-range index, already-deleted row, compressed page) does not
// publish a commit id: Begin continues to return the previous snapshot.
func (ds *Dataset) DeleteFact(idx int64) (txn.Snapshot, error) {
	if ds.Star.PartCol >= 0 {
		return 0, fmt.Errorf("ssb: partitioned datasets are static")
	}
	return ds.Txn.CommitErr(func(id uint64) error {
		row, err := ds.Lineorder.Heap.RowAt(idx)
		if err != nil {
			return err
		}
		// Overwriting a non-zero xmax with a later commit id would
		// resurrect the row for snapshots between the two deletes.
		if row[LoXmax] != 0 {
			return fmt.Errorf("ssb: fact row %d already deleted at commit %d", idx, row[LoXmax])
		}
		return ds.Lineorder.Heap.UpdateCol(idx, LoXmax, int64(id))
	})
}

// randFactRow builds one fact row with xmin/xmax zeroed; callers stamp
// the MVCC columns.
func (ds *Dataset) randFactRow(rng *rand.Rand) []int64 {
	t := ds.Lineorder
	prio, _ := t.EncodeStr(LoOrderpriority, priorities[rng.Intn(len(priorities))])
	ship, _ := t.EncodeStr(LoShipmode, shipmodes[rng.Intn(len(shipmodes))])
	quantity := int64(rng.Intn(50) + 1)
	price := int64(rng.Intn(9900) + 100)
	discount := int64(rng.Intn(11))
	return []int64{
		0, 0,
		rng.Int63n(1 << 30),
		rng.Int63n(7),
		rng.Int63n(ds.NumCustomers) + 1,
		rng.Int63n(ds.NumParts) + 1,
		rng.Int63n(ds.NumSuppliers) + 1,
		ds.DateKeys[rng.Intn(len(ds.DateKeys))],
		prio,
		int64(rng.Intn(2)),
		quantity,
		price,
		price * quantity,
		discount,
		price * (100 - discount) / 100,
		price * 6 / 10,
		int64(rng.Intn(9)),
		ds.DateKeys[rng.Intn(len(ds.DateKeys))],
		ship,
	}
}
