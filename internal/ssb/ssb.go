// Package ssb implements the Star Schema Benchmark substrate used by the
// paper's evaluation (§6.1.2): a deterministic data generator for the
// lineorder star schema and the workload templates derived from SSB
// queries Q2.1–Q4.3 with an abstract-range selectivity knob.
//
// Scaling substitution (documented in DESIGN.md): the paper runs SSB at up
// to sf = 100 (100 GB). We keep the schema, key structure and predicate
// columns, but map one sf unit to Config.FactRowsPerSF fact rows so the
// whole sweep runs on one machine. Dimension cardinalities follow the
// paper's observation that the date dimension is fixed while customer,
// supplier and part grow (at most logarithmically) with sf.
//
// String dictionaries are pre-loaded with each column's full domain in
// sorted order, so dictionary ids preserve lexicographic order and range
// predicates on string columns remain meaningful.
package ssb

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/storage"
	"cjoin/internal/txn"
)

// Config controls dataset generation.
type Config struct {
	// SF is the scale factor (>= 1).
	SF int
	// FactRowsPerSF maps one scale-factor unit to fact rows.
	// Defaults to 10000.
	FactRowsPerSF int
	// Seed makes generation deterministic. Defaults to 1.
	Seed int64
	// Disk is the device cost model; the zero value disables latency.
	Disk disk.Config
	// Partitions range-partitions lineorder by lo_orderdate into this
	// many heaps (§5 "Fact Table Partitioning"). 0 or 1 disables.
	Partitions int
	// CompressFact stores the fact table with RLE-compressed pages
	// (§5 "Compressed Tables"); the continuous scan transfers fewer
	// bytes and decompresses on the fly. Compressed datasets are
	// append-only in flushed pages, so DeleteFact is unavailable.
	CompressFact bool
}

func (c *Config) defaults() {
	if c.SF < 1 {
		c.SF = 1
	}
	if c.FactRowsPerSF <= 0 {
		c.FactRowsPerSF = 10000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Dataset is a generated SSB warehouse. The fact table lives on the
// modeled device Dev; dimension tables live on DimDev, an unthrottled
// in-memory device, reflecting the paper's observation that "the small
// size of the dimension tables implies that they can be cached
// efficiently in main memory" (§6.1.1).
type Dataset struct {
	Config Config
	Dev    *disk.Device
	DimDev *disk.Device
	Star   *catalog.Star
	Txn    *txn.Manager

	Lineorder *catalog.Table
	Customer  *catalog.Table
	Supplier  *catalog.Table
	Part      *catalog.Table
	Date      *catalog.Table

	// DateKeys is the sorted list of d_datekey values.
	DateKeys []int64
	// Cardinalities of the dimension tables, for selectivity math.
	NumCustomers, NumSuppliers, NumParts int64
}

// Column indices of the lineorder fact table (including the two hidden
// MVCC columns). Exported for the engines and tests.
const (
	LoXmin = iota
	LoXmax
	LoOrderkey
	LoLinenumber
	LoCustkey
	LoPartkey
	LoSuppkey
	LoOrderdate
	LoOrderpriority
	LoShippriority
	LoQuantity
	LoExtendedprice
	LoOrdtotalprice
	LoDiscount
	LoRevenue
	LoSupplycost
	LoTax
	LoCommitdate
	LoShipmode
	loCols
)

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations, 5 per region, kept sorted within the whole domain at dict load.
var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var months = []string{"January", "February", "March", "April", "May", "June",
	"July", "August", "September", "October", "November", "December"}

var weekdays = []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipmodes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

var mktsegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}

var seasons = []string{"Christmas", "Easter", "Fall", "Summer", "Winter"}

var colors = []string{"almond", "blue", "crimson", "green", "ivory", "khaki", "navy", "puff", "red", "yellow"}

var containers = []string{"JUMBO BOX", "LG CASE", "MED BAG", "SM PKG", "WRAP DRUM"}

// logScale returns 1 + floor(log2(sf)), the paper's logarithmic dimension
// growth (§6.2.4).
func logScale(sf int) int64 {
	n := int64(1)
	for sf > 1 {
		sf >>= 1
		n++
	}
	return n
}

// Generate builds a deterministic SSB dataset.
func Generate(cfg Config) (*Dataset, error) {
	cfg.defaults()
	ds := &Dataset{
		Config: cfg,
		Dev:    disk.New(cfg.Disk),
		DimDev: disk.NewMem(),
		Txn:    &txn.Manager{},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ds.NumCustomers = 300 * logScale(cfg.SF)
	ds.NumSuppliers = 100 * logScale(cfg.SF)
	ds.NumParts = 400 * logScale(cfg.SF)

	ds.buildTables()
	ds.genDate()
	ds.genCustomer(rng)
	ds.genSupplier(rng)
	ds.genPart(rng)
	if err := ds.genLineorder(rng); err != nil {
		return nil, err
	}
	return ds, nil
}

func (ds *Dataset) buildTables() {
	intc := func(n string) catalog.Column { return catalog.Column{Name: n, Type: catalog.Int} }
	strc := func(n string) catalog.Column { return catalog.Column{Name: n, Type: catalog.Str} }

	ds.Date = catalog.NewTable(ds.DimDev, "date", 0, []catalog.Column{
		intc("d_datekey"), strc("d_date"), strc("d_dayofweek"), strc("d_month"),
		intc("d_year"), intc("d_yearmonthnum"), strc("d_yearmonth"),
		intc("d_daynuminweek"), intc("d_daynuminmonth"), intc("d_daynuminyear"),
		intc("d_monthnuminyear"), intc("d_weeknuminyear"), strc("d_sellingseason"),
		intc("d_lastdayinweekfl"), intc("d_holidayfl"), intc("d_weekdayfl"),
	})
	ds.Customer = catalog.NewTable(ds.DimDev, "customer", 0, []catalog.Column{
		intc("c_custkey"), strc("c_name"), strc("c_address"), strc("c_city"),
		strc("c_nation"), strc("c_region"), strc("c_phone"), strc("c_mktsegment"),
	})
	ds.Supplier = catalog.NewTable(ds.DimDev, "supplier", 0, []catalog.Column{
		intc("s_suppkey"), strc("s_name"), strc("s_address"), strc("s_city"),
		strc("s_nation"), strc("s_region"), strc("s_phone"),
	})
	ds.Part = catalog.NewTable(ds.DimDev, "part", 0, []catalog.Column{
		intc("p_partkey"), strc("p_name"), strc("p_mfgr"), strc("p_category"),
		strc("p_brand1"), strc("p_color"), strc("p_type"), intc("p_size"), strc("p_container"),
	})
	factCodec := storage.Raw
	if ds.Config.CompressFact {
		factCodec = storage.RLE
	}
	ds.Lineorder = catalog.NewTableCodec(ds.Dev, "lineorder", 2, []catalog.Column{
		intc("xmin"), intc("xmax"),
		intc("lo_orderkey"), intc("lo_linenumber"), intc("lo_custkey"),
		intc("lo_partkey"), intc("lo_suppkey"), intc("lo_orderdate"),
		strc("lo_orderpriority"), intc("lo_shippriority"), intc("lo_quantity"),
		intc("lo_extendedprice"), intc("lo_ordtotalprice"), intc("lo_discount"),
		intc("lo_revenue"), intc("lo_supplycost"), intc("lo_tax"),
		intc("lo_commitdate"), strc("lo_shipmode"),
	}, factCodec)

	preloadSorted := ds.preloadSorted
	preloadSorted(ds.Customer, "c_region", regions)
	preloadSorted(ds.Customer, "c_nation", allNations())
	preloadSorted(ds.Customer, "c_city", allCities())
	preloadSorted(ds.Customer, "c_mktsegment", mktsegments)
	preloadSorted(ds.Supplier, "s_region", regions)
	preloadSorted(ds.Supplier, "s_nation", allNations())
	preloadSorted(ds.Supplier, "s_city", allCities())
	preloadSorted(ds.Part, "p_mfgr", mfgrs())
	preloadSorted(ds.Part, "p_category", categories())
	preloadSorted(ds.Part, "p_brand1", brands())
	preloadSorted(ds.Part, "p_color", colors)
	preloadSorted(ds.Part, "p_container", containers)
	preloadSorted(ds.Lineorder, "lo_orderpriority", priorities)
	preloadSorted(ds.Lineorder, "lo_shipmode", shipmodes)
	preloadSorted(ds.Date, "d_month", months)
	preloadSorted(ds.Date, "d_dayofweek", weekdays)
	preloadSorted(ds.Date, "d_sellingseason", seasons)
}

// preloadSorted loads a column's full domain into its dictionary. Domains
// are passed in sorted order so ids preserve lexicographic comparisons.
func (ds *Dataset) preloadSorted(t *catalog.Table, col string, domain []string) {
	c := t.ColIndex(col)
	for _, s := range domain {
		t.Dicts[c].Encode(s)
	}
}

func allNations() []string {
	var out []string
	for _, r := range regions {
		out = append(out, nationsByRegion[r]...)
	}
	sortStrings(out)
	return out
}

func allCities() []string {
	var out []string
	for _, ns := range nationsByRegion {
		for _, n := range ns {
			for i := 0; i < 10; i++ {
				out = append(out, fmt.Sprintf("%.9s%d", n+"         ", i))
			}
		}
	}
	sortStrings(out)
	return out
}

func mfgrs() []string {
	out := make([]string, 5)
	for i := range out {
		out[i] = fmt.Sprintf("MFGR#%d", i+1)
	}
	return out
}

func categories() []string {
	var out []string
	for m := 1; m <= 5; m++ {
		for c := 1; c <= 5; c++ {
			out = append(out, fmt.Sprintf("MFGR#%d%d", m, c))
		}
	}
	return out
}

func brands() []string {
	var out []string
	for _, cat := range categories() {
		for b := 1; b <= 40; b++ {
			out = append(out, fmt.Sprintf("%s%02d", cat, b))
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

const dateDays = 2557 // seven years, 1992-01-01 .. 1998-12-31 (1992 and 1996 are leap years)

func (ds *Dataset) genDate() {
	enc := func(col string, s string) int64 {
		v, _ := ds.Date.EncodeStr(ds.Date.ColIndex(col), s)
		return v
	}
	day := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < dateDays; i++ {
		key := int64(day.Year()*10000 + int(day.Month())*100 + day.Day())
		ds.DateKeys = append(ds.DateKeys, key)
		season := "Winter"
		switch {
		case day.Month() >= 3 && day.Month() <= 5:
			season = "Easter"
		case day.Month() >= 6 && day.Month() <= 8:
			season = "Summer"
		case day.Month() >= 9 && day.Month() <= 11:
			season = "Fall"
		case day.Month() == 12:
			season = "Christmas"
		}
		dow := int64(day.Weekday())
		ds.Date.Heap.Append([]int64{
			key,
			enc("d_date", day.Format("January 2, 2006")),
			enc("d_dayofweek", weekdays[dow]),
			enc("d_month", months[day.Month()-1]),
			int64(day.Year()),
			int64(day.Year()*100 + int(day.Month())),
			enc("d_yearmonth", day.Format("Jan2006")),
			dow + 1,
			int64(day.Day()),
			int64(day.YearDay()),
			int64(day.Month()),
			int64((day.YearDay()-1)/7 + 1),
			enc("d_sellingseason", season),
			boolInt(day.Weekday() == time.Saturday),
			boolInt(day.Day() == 25 && day.Month() == 12),
			boolInt(day.Weekday() != time.Saturday && day.Weekday() != time.Sunday),
		})
		day = day.AddDate(0, 0, 1)
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (ds *Dataset) genCustomer(rng *rand.Rand) {
	t := ds.Customer
	enc := func(col string, s string) int64 {
		v, _ := t.EncodeStr(t.ColIndex(col), s)
		return v
	}
	for k := int64(1); k <= ds.NumCustomers; k++ {
		region := regions[rng.Intn(len(regions))]
		nation := nationsByRegion[region][rng.Intn(5)]
		city := fmt.Sprintf("%.9s%d", nation+"         ", rng.Intn(10))
		t.Heap.Append([]int64{
			k,
			enc("c_name", fmt.Sprintf("Customer#%09d", k)),
			enc("c_address", fmt.Sprintf("addr-c-%d", k)),
			enc("c_city", city),
			enc("c_nation", nation),
			enc("c_region", region),
			enc("c_phone", fmt.Sprintf("%02d-%07d", rng.Intn(25)+10, rng.Intn(10000000))),
			enc("c_mktsegment", mktsegments[rng.Intn(len(mktsegments))]),
		})
	}
}

func (ds *Dataset) genSupplier(rng *rand.Rand) {
	t := ds.Supplier
	enc := func(col string, s string) int64 {
		v, _ := t.EncodeStr(t.ColIndex(col), s)
		return v
	}
	for k := int64(1); k <= ds.NumSuppliers; k++ {
		region := regions[rng.Intn(len(regions))]
		nation := nationsByRegion[region][rng.Intn(5)]
		city := fmt.Sprintf("%.9s%d", nation+"         ", rng.Intn(10))
		t.Heap.Append([]int64{
			k,
			enc("s_name", fmt.Sprintf("Supplier#%09d", k)),
			enc("s_address", fmt.Sprintf("addr-s-%d", k)),
			enc("s_city", city),
			enc("s_nation", nation),
			enc("s_region", region),
			enc("s_phone", fmt.Sprintf("%02d-%07d", rng.Intn(25)+10, rng.Intn(10000000))),
		})
	}
}

func (ds *Dataset) genPart(rng *rand.Rand) {
	t := ds.Part
	enc := func(col string, s string) int64 {
		v, _ := t.EncodeStr(t.ColIndex(col), s)
		return v
	}
	for k := int64(1); k <= ds.NumParts; k++ {
		m := rng.Intn(5) + 1
		c := rng.Intn(5) + 1
		b := rng.Intn(40) + 1
		cat := fmt.Sprintf("MFGR#%d%d", m, c)
		t.Heap.Append([]int64{
			k,
			enc("p_name", fmt.Sprintf("part %s %d", colors[rng.Intn(len(colors))], k)),
			enc("p_mfgr", fmt.Sprintf("MFGR#%d", m)),
			enc("p_category", cat),
			enc("p_brand1", fmt.Sprintf("%s%02d", cat, b)),
			enc("p_color", colors[rng.Intn(len(colors))]),
			enc("p_type", fmt.Sprintf("STANDARD %s", colors[rng.Intn(len(colors))])),
			int64(rng.Intn(50) + 1),
			enc("p_container", containers[rng.Intn(len(containers))]),
		})
	}
}

func (ds *Dataset) genLineorder(rng *rand.Rand) error {
	t := ds.Lineorder
	encPrio := make([]int64, len(priorities))
	for i, p := range priorities {
		encPrio[i], _ = t.EncodeStr(LoOrderpriority, p)
	}
	encShip := make([]int64, len(shipmodes))
	for i, m := range shipmodes {
		encShip[i], _ = t.EncodeStr(LoShipmode, m)
	}

	nrows := int64(ds.Config.FactRowsPerSF) * int64(ds.Config.SF)
	nparts := ds.Config.Partitions
	if nparts < 1 {
		nparts = 1
	}

	// Range-partition by orderdate: split the 7-year span evenly.
	var parts []catalog.FactPartition
	heapFor := func(datekey int64) *storage.HeapFile { return t.Heap }
	if nparts > 1 {
		bounds := make([]int64, nparts+1)
		for i := 0; i <= nparts; i++ {
			idx := i * len(ds.DateKeys) / nparts
			if idx >= len(ds.DateKeys) {
				idx = len(ds.DateKeys) - 1
			}
			bounds[i] = ds.DateKeys[idx]
		}
		bounds[nparts] = ds.DateKeys[len(ds.DateKeys)-1] + 1
		for i := 0; i < nparts; i++ {
			parts = append(parts, catalog.FactPartition{
				Heap:   storage.CreateHeapCodec(ds.Dev, loCols, ds.Lineorder.Heap.Codec()),
				MinKey: bounds[i],
				MaxKey: bounds[i+1] - 1,
			})
		}
		heapFor = func(datekey int64) *storage.HeapFile {
			for i := range parts {
				if datekey >= parts[i].MinKey && datekey <= parts[i].MaxKey {
					return parts[i].Heap
				}
			}
			return parts[len(parts)-1].Heap
		}
	}

	// Fact rows are appended clustered by order date: warehouses load by
	// date, which is also what makes range partitioning (§5) and RLE
	// compression of the date column effective.
	var order int64 = 1
	rows := make([][]int64, 0, nrows)
	for i := int64(0); i < nrows; i++ {
		if rng.Intn(4) == 0 {
			order++
		}
		datekey := ds.DateKeys[rng.Intn(len(ds.DateKeys))]
		quantity := int64(rng.Intn(50) + 1)
		price := int64(rng.Intn(9900) + 100)
		discount := int64(rng.Intn(11))
		revenue := price * (100 - discount) / 100
		rows = append(rows, []int64{
			0, 0, // xmin, xmax: loaded before snapshot 1
			order,
			i % 7,
			rng.Int63n(ds.NumCustomers) + 1,
			rng.Int63n(ds.NumParts) + 1,
			rng.Int63n(ds.NumSuppliers) + 1,
			datekey,
			encPrio[rng.Intn(len(encPrio))],
			int64(rng.Intn(2)),
			quantity,
			price,
			price * quantity,
			discount,
			revenue,
			price * 6 / 10,
			int64(rng.Intn(9)),
			ds.DateKeys[rng.Intn(len(ds.DateKeys))],
			encShip[rng.Intn(len(encShip))],
		})
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a][LoOrderdate] < rows[b][LoOrderdate] })
	for _, row := range rows {
		heapFor(row[LoOrderdate]).Append(row)
	}

	star, err := catalog.NewStar(
		ds.Lineorder,
		[]*catalog.Table{ds.Customer, ds.Supplier, ds.Part, ds.Date},
		[]int{LoCustkey, LoSuppkey, LoPartkey, LoOrderdate},
		[]int{0, 0, 0, 0},
	)
	if err != nil {
		return err
	}
	if nparts > 1 {
		if err := star.SetPartitions(LoOrderdate, parts); err != nil {
			return err
		}
	}
	ds.Star = star
	return nil
}
