package ssb

import (
	"math/rand"
	"testing"

	"cjoin/internal/expr"
	"cjoin/internal/query"
	"cjoin/internal/storage"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Config{SF: 1, FactRowsPerSF: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateCardinalities(t *testing.T) {
	ds := smallDataset(t)
	if got := ds.Lineorder.Heap.NumRows(); got != 2000 {
		t.Fatalf("lineorder rows %d", got)
	}
	if got := ds.Date.Heap.NumRows(); got != dateDays {
		t.Fatalf("date rows %d", got)
	}
	if ds.Customer.Heap.NumRows() != ds.NumCustomers || ds.NumCustomers != 300 {
		t.Fatalf("customer rows %d", ds.Customer.Heap.NumRows())
	}
	if ds.Supplier.Heap.NumRows() != ds.NumSuppliers {
		t.Fatal("supplier cardinality mismatch")
	}
	if ds.Part.Heap.NumRows() != ds.NumParts {
		t.Fatal("part cardinality mismatch")
	}
}

func TestLogScaleGrowth(t *testing.T) {
	if logScale(1) != 1 || logScale(2) != 2 || logScale(4) != 3 || logScale(100) != 7 {
		t.Fatalf("logScale: %d %d %d %d", logScale(1), logScale(2), logScale(4), logScale(100))
	}
	big, err := Generate(Config{SF: 4, FactRowsPerSF: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if big.Lineorder.Heap.NumRows() != 400 {
		t.Fatalf("fact rows %d", big.Lineorder.Heap.NumRows())
	}
	if big.NumCustomers != 900 {
		t.Fatalf("customers at sf=4: %d", big.NumCustomers)
	}
}

func TestDeterminism(t *testing.T) {
	a := smallDataset(t)
	b := smallDataset(t)
	for i := int64(0); i < 50; i++ {
		ra, err := a.Lineorder.Heap.RowAt(i)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Lineorder.Heap.RowAt(i)
		if err != nil {
			t.Fatal(err)
		}
		for c := range ra {
			if ra[c] != rb[c] {
				t.Fatalf("row %d col %d differs: %d vs %d", i, c, ra[c], rb[c])
			}
		}
	}
}

func TestForeignKeyIntegrity(t *testing.T) {
	ds := smallDataset(t)
	s := storage.NewScanner(ds.Lineorder.Heap)
	n := 0
	for row, ok := s.Next(); ok; row, ok = s.Next() {
		if row[LoCustkey] < 1 || row[LoCustkey] > ds.NumCustomers {
			t.Fatalf("custkey %d out of range", row[LoCustkey])
		}
		if row[LoSuppkey] < 1 || row[LoSuppkey] > ds.NumSuppliers {
			t.Fatalf("suppkey %d out of range", row[LoSuppkey])
		}
		if row[LoPartkey] < 1 || row[LoPartkey] > ds.NumParts {
			t.Fatalf("partkey %d out of range", row[LoPartkey])
		}
		if row[LoXmin] != 0 || row[LoXmax] != 0 {
			t.Fatalf("mvcc columns not zero: %d %d", row[LoXmin], row[LoXmax])
		}
		// Revenue derivation must hold.
		want := row[LoExtendedprice] * (100 - row[LoDiscount]) / 100
		if row[LoRevenue] != want {
			t.Fatalf("revenue %d, want %d", row[LoRevenue], want)
		}
		n++
	}
	if n != 2000 {
		t.Fatalf("scanned %d", n)
	}
}

func TestDateDimension(t *testing.T) {
	ds := smallDataset(t)
	first, err := ds.Date.Heap.RowAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] != 19920101 {
		t.Fatalf("first datekey %d", first[0])
	}
	last, err := ds.Date.Heap.RowAt(dateDays - 1)
	if err != nil {
		t.Fatal(err)
	}
	if last[0] != 19981231 {
		t.Fatalf("last datekey %d", last[0])
	}
	yearCol := ds.Date.ColIndex("d_year")
	if first[yearCol] != 1992 || last[yearCol] != 1998 {
		t.Fatal("d_year wrong")
	}
}

func TestDictOrderPreserved(t *testing.T) {
	ds := smallDataset(t)
	// Brand ids must be ordered like brand strings so BETWEEN works.
	d := ds.Part.Dicts[ds.Part.ColIndex("p_brand1")]
	a, _ := d.Lookup("MFGR#1101")
	b, _ := d.Lookup("MFGR#1102")
	c, _ := d.Lookup("MFGR#5540")
	if !(a < b && b < c) {
		t.Fatalf("brand dictionary not order-preserving: %d %d %d", a, b, c)
	}
}

func TestTemplatesBindAndParse(t *testing.T) {
	ds := smallDataset(t)
	rng := rand.New(rand.NewSource(3))
	for _, tpl := range Templates() {
		sqlText := ds.Instantiate(tpl, 0.05, rng)
		b, err := query.ParseBind(sqlText, ds.Star)
		if err != nil {
			t.Fatalf("%s: %v\nSQL: %s", tpl.ID, err, sqlText)
		}
		if len(b.GroupBy) != len(tpl.GroupBy) {
			t.Fatalf("%s: group count", tpl.ID)
		}
		nref := 0
		for _, r := range b.DimRefs {
			if r {
				nref++
			}
		}
		if nref != len(tpl.Dims) {
			t.Fatalf("%s: referenced %d dims, want %d", tpl.ID, nref, len(tpl.Dims))
		}
	}
}

func TestSelectivityKnob(t *testing.T) {
	ds := smallDataset(t)
	rng := rand.New(rand.NewSource(9))
	for _, s := range []float64{0.01, 0.1} {
		tpl, _ := TemplateByID("Q3.1")
		sqlText := ds.Instantiate(tpl, s, rng)
		b, err := query.ParseBind(sqlText, ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		// Count customers passing the predicate; must be ~s of the table.
		ci := ds.Star.DimIndex("customer")
		pred := b.DimPreds[ci]
		sc := storage.NewScanner(ds.Customer.Heap)
		pass := 0
		for row, ok := sc.Next(); ok; row, ok = sc.Next() {
			if expr.EvalRow(pred, row) {
				pass++
			}
		}
		want := int(float64(ds.NumCustomers)*s + 0.5)
		if pass != want {
			t.Fatalf("s=%g: %d customers pass, want %d", s, pass, want)
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	ds := smallDataset(t)
	w1 := NewWorkload(ds, 0.01, 5)
	w2 := NewWorkload(ds, 0.01, 5)
	for i := 0; i < 20; i++ {
		id1, q1 := w1.Next()
		id2, q2 := w2.Next()
		if id1 != id2 || q1 != q2 {
			t.Fatalf("workload diverged at %d", i)
		}
	}
	if _, err := w1.FromTemplate("Q4.2"); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.FromTemplate("Q9.9"); err == nil {
		t.Fatal("unknown template must error")
	}
}

func TestPartitionedGeneration(t *testing.T) {
	ds, err := Generate(Config{SF: 1, FactRowsPerSF: 3000, Seed: 7, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	parts := ds.Star.Partitions()
	if len(parts) != 4 {
		t.Fatalf("partitions %d", len(parts))
	}
	var total int64
	for i, p := range parts {
		total += p.Heap.NumRows()
		// Every row's orderdate must be within the partition bounds.
		sc := storage.NewScanner(p.Heap)
		for row, ok := sc.Next(); ok; row, ok = sc.Next() {
			if row[LoOrderdate] < p.MinKey || row[LoOrderdate] > p.MaxKey {
				t.Fatalf("partition %d: orderdate %d outside [%d,%d]", i, row[LoOrderdate], p.MinKey, p.MaxKey)
			}
		}
	}
	if total != 3000 {
		t.Fatalf("partitioned rows %d", total)
	}
	if ds.Star.PartCol != LoOrderdate {
		t.Fatalf("PartCol %d", ds.Star.PartCol)
	}
}
