package query

import (
	"strings"
	"testing"

	"cjoin/internal/catalog"
	"cjoin/internal/disk"
	"cjoin/internal/expr"
)

// testStar builds a 2-dimension star:
//
//	f(xmin, xmax, fk_a, fk_b, v)
//	da(a_key, a_region[str], a_num)
//	db(b_key, b_city[str])
func testStar(t *testing.T) *catalog.Star {
	t.Helper()
	dev := disk.NewMem()
	fact := catalog.NewTable(dev, "f", 2, []catalog.Column{
		{Name: "xmin"}, {Name: "xmax"},
		{Name: "fk_a"}, {Name: "fk_b"}, {Name: "v"},
	})
	da := catalog.NewTable(dev, "da", 0, []catalog.Column{
		{Name: "a_key"}, {Name: "a_region", Type: catalog.Str}, {Name: "a_num"},
	})
	db := catalog.NewTable(dev, "db", 0, []catalog.Column{
		{Name: "b_key"}, {Name: "b_city", Type: catalog.Str},
	})
	da.Dicts[1].Encode("ASIA")
	da.Dicts[1].Encode("EUROPE")
	db.Dicts[1].Encode("LYON")
	s, err := catalog.NewStar(fact, []*catalog.Table{da, db}, []int{2, 3}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBindFullStarQuery(t *testing.T) {
	s := testStar(t)
	b, err := ParseBind(`
		SELECT SUM(v), COUNT(*), a_num
		FROM f, da, db
		WHERE fk_a = a_key AND fk_b = b_key
		  AND a_region = 'ASIA' AND b_city = 'LYON' AND v > 10
		GROUP BY a_num
		ORDER BY a_num DESC`, s)
	if err != nil {
		t.Fatal(err)
	}
	if !b.DimRefs[0] || !b.DimRefs[1] {
		t.Fatalf("dim refs %v", b.DimRefs)
	}
	if !b.HasDimPred(0) || !b.HasDimPred(1) {
		t.Fatal("dimension predicates missing")
	}
	if !b.HasFactPred() {
		t.Fatal("fact predicate missing")
	}
	if len(b.Aggs) != 2 || len(b.GroupBy) != 1 {
		t.Fatalf("aggs %d groups %d", len(b.Aggs), len(b.GroupBy))
	}
	if len(b.OrderBy) != 1 || !b.OrderBy[0].Desc || b.OrderBy[0].Col != 0 {
		t.Fatalf("order by %v", b.OrderBy)
	}
	// The dim predicate must accept an ASIA row and reject EUROPE.
	asia, _ := s.Dims[0].Dicts[1].Lookup("ASIA")
	europe, _ := s.Dims[0].Dicts[1].Lookup("EUROPE")
	if !expr.EvalRow(b.DimPreds[0], []int64{1, asia, 0}) {
		t.Fatal("ASIA row must pass")
	}
	if expr.EvalRow(b.DimPreds[0], []int64{1, europe, 0}) {
		t.Fatal("EUROPE row must fail")
	}
	// Fact predicate evaluates over the full fact row including hidden cols.
	if !expr.EvalRow(b.FactPred, []int64{0, 0, 1, 1, 11}) {
		t.Fatal("fact row v=11 must pass")
	}
	if expr.EvalRow(b.FactPred, []int64{0, 0, 1, 1, 10}) {
		t.Fatal("fact row v=10 must fail")
	}
}

func TestBindDimWithoutPredicate(t *testing.T) {
	s := testStar(t)
	// da joined only for grouping: predicate must be TRUE, dim referenced.
	b, err := ParseBind("SELECT SUM(v), a_num FROM f, da WHERE fk_a = a_key GROUP BY a_num", s)
	if err != nil {
		t.Fatal(err)
	}
	if !b.DimRefs[0] || b.DimRefs[1] {
		t.Fatalf("dim refs %v", b.DimRefs)
	}
	if b.HasDimPred(0) {
		t.Fatal("no predicate expected on da")
	}
	if b.HasFactPred() {
		t.Fatal("no fact predicate expected")
	}
	// Group-by column binds to joined-row slot 1 (dimension 0).
	col := b.GroupBy[0].(expr.Col)
	if col.Slot != 1 || col.Idx != 2 {
		t.Fatalf("group col %+v", col)
	}
}

func TestBindUnknownStringLiteral(t *testing.T) {
	s := testStar(t)
	b, err := ParseBind("SELECT COUNT(*) FROM f, da WHERE fk_a = a_key AND a_region = 'NOWHERE'", s)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown string encodes as an impossible id: predicate always false.
	asia, _ := s.Dims[0].Dicts[1].Lookup("ASIA")
	if expr.EvalRow(b.DimPreds[0], []int64{1, asia, 0}) {
		t.Fatal("unknown literal must never match")
	}
}

func TestBindBetweenAndIn(t *testing.T) {
	s := testStar(t)
	b, err := ParseBind(`SELECT COUNT(*) FROM f, da
		WHERE fk_a = a_key AND a_num BETWEEN 5 AND 7 AND a_region IN ('ASIA', 'EUROPE')`, s)
	if err != nil {
		t.Fatal(err)
	}
	asia, _ := s.Dims[0].Dicts[1].Lookup("ASIA")
	if !expr.EvalRow(b.DimPreds[0], []int64{1, asia, 6}) {
		t.Fatal("in-range ASIA row must pass")
	}
	if expr.EvalRow(b.DimPreds[0], []int64{1, asia, 8}) {
		t.Fatal("out-of-range row must fail")
	}
}

func TestBindErrors(t *testing.T) {
	s := testStar(t)
	cases := map[string]string{
		"SELECT COUNT(*) FROM da":                                             "fact table",
		"SELECT COUNT(*) FROM f, zz WHERE fk_a = a_key":                       "unknown table",
		"SELECT COUNT(*) FROM f, da WHERE fk_a = a_num":                       "foreign key",
		"SELECT COUNT(*) FROM f, da WHERE a_num = 3":                          "join predicate",
		"SELECT COUNT(*) FROM f, da, db WHERE fk_a = a_key AND a_num = b_key": "not a star query",
		"SELECT v FROM f":                                                "not in GROUP BY",
		"SELECT nope(v) FROM f":                                          "",
		"SELECT COUNT(*) FROM f WHERE zz = 1":                            "unknown column",
		"SELECT COUNT(*) FROM f ORDER BY v":                              "ORDER BY",
		"SELECT COUNT(*) FROM f, da WHERE fk_a = a_key AND xmin = b_key": "",
	}
	for src, want := range cases {
		_, err := ParseBind(src, s)
		if err == nil {
			t.Errorf("ParseBind(%q) succeeded, want error", src)
			continue
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Errorf("ParseBind(%q) error %q, want substring %q", src, err, want)
		}
	}
}

func TestBindAliases(t *testing.T) {
	s := testStar(t)
	b, err := ParseBind("SELECT SUM(t.v) AS total FROM f t, da d WHERE t.fk_a = d.a_key", s)
	if err != nil {
		t.Fatal(err)
	}
	if b.Aggs[0].Name != "total" {
		t.Fatalf("alias %q", b.Aggs[0].Name)
	}
	if !b.DimRefs[0] {
		t.Fatal("aliased join must mark dimension referenced")
	}
}

func TestBindOrderByAggAlias(t *testing.T) {
	s := testStar(t)
	b, err := ParseBind(`SELECT SUM(v) AS total, a_num FROM f, da
		WHERE fk_a = a_key GROUP BY a_num ORDER BY total DESC, a_num`, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.OrderBy) != 2 {
		t.Fatalf("order by %v", b.OrderBy)
	}
	if b.OrderBy[0].Col != 1 || !b.OrderBy[0].Desc {
		t.Fatalf("agg alias order spec %v", b.OrderBy[0])
	}
	if b.OrderBy[1].Col != 0 || b.OrderBy[1].Desc {
		t.Fatalf("group order spec %v", b.OrderBy[1])
	}
}

func TestFactPredicateOnHiddenColumnRejected(t *testing.T) {
	// Hidden system columns resolve internally (the snapshot machinery
	// uses them) but user SQL referencing xmin against a dimension key is
	// caught by join validation; a plain xmin predicate binds — verify it
	// at least evaluates against the right index rather than colliding
	// with visible columns.
	s := testStar(t)
	b, err := ParseBind("SELECT COUNT(*) FROM f WHERE xmin = 0", s)
	if err != nil {
		t.Fatal(err)
	}
	if !expr.EvalRow(b.FactPred, []int64{0, 0, 9, 9, 9}) {
		t.Fatal("xmin=0 row must pass")
	}
	if expr.EvalRow(b.FactPred, []int64{1, 0, 9, 9, 9}) {
		t.Fatal("xmin=1 row must fail")
	}
}
