// Predicate fingerprinting for the dimension plane's scan cache.
//
// A fingerprint is a stable 64-bit hash of a predicate's *canonical*
// form: two predicates that are syntactically different but trivially
// equivalent — operand order of a commutative operator, IN-list order,
// a string literal vs its dictionary code — hash identically, so a
// repeated dashboard template hits the cache no matter how the client
// phrased it this time. Canonicalization is purely structural (no
// algebraic rewriting): Cols are keyed by (slot, index) rather than
// name, Consts by value only, commutative operands are sorted by their
// serialized form, and IN sets are order-insensitive.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cjoin/internal/expr"
)

// Fingerprint returns a stable 64-bit hash of pred's canonical form.
// Equal fingerprints are intended to mean "same selection"; unequal
// fingerprints carry no meaning beyond a cache miss. The hash is
// FNV-1a over the canonical serialization, fixed across processes and
// runs so fingerprints can appear in traces and logs.
func Fingerprint(pred expr.Node) uint64 {
	var sb strings.Builder
	canonicalize(&sb, pred)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(sb.String()) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// CanonicalPredicate returns the canonical serialization itself —
// diagnostics and tests; the cache keys on Fingerprint.
func CanonicalPredicate(pred expr.Node) string {
	var sb strings.Builder
	canonicalize(&sb, pred)
	return sb.String()
}

// commutative reports whether operand order is semantically irrelevant
// for op. AND/OR are commutative for *selection* purposes: both sides
// are evaluated over the same row and the result is order-independent
// (short-circuiting only skips work, never changes the outcome, since
// expression evaluation here is total and side-effect-free).
func commutative(op expr.Op) bool {
	switch op {
	case expr.Add, expr.Mul, expr.Eq, expr.Ne, expr.And, expr.Or:
		return true
	}
	return false
}

func canonicalize(sb *strings.Builder, n expr.Node) {
	switch e := n.(type) {
	case expr.Col:
		// Name is diagnostic only; (slot, idx) is the identity.
		sb.WriteString("c")
		sb.WriteString(strconv.Itoa(e.Slot))
		sb.WriteString(",")
		sb.WriteString(strconv.Itoa(e.Idx))
	case expr.Const:
		// Str is the pre-dictionary literal; V is what Eval returns.
		sb.WriteString("k")
		sb.WriteString(strconv.FormatInt(e.V, 10))
	case expr.Bin:
		l, r := canonicalString(e.L), canonicalString(e.R)
		if commutative(e.Op) && r < l {
			l, r = r, l
		}
		sb.WriteString("b")
		sb.WriteString(strconv.Itoa(int(e.Op)))
		sb.WriteString("(")
		sb.WriteString(l)
		sb.WriteString(";")
		sb.WriteString(r)
		sb.WriteString(")")
	case expr.Not:
		sb.WriteString("n(")
		canonicalize(sb, e.X)
		sb.WriteString(")")
	case *expr.In:
		vals := make([]int64, len(e.Vals))
		copy(vals, e.Vals)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		sb.WriteString("i(")
		canonicalize(sb, e.X)
		sb.WriteString(":")
		var last int64
		for i, v := range vals {
			if i > 0 {
				if v == last {
					continue // duplicates don't change membership
				}
				sb.WriteString(",")
			}
			sb.WriteString(strconv.FormatInt(v, 10))
			last = v
		}
		sb.WriteString(")")
	default:
		// Unknown node kinds fall back to their String form. Still
		// deterministic, just not normalized across phrasings.
		fmt.Fprintf(sb, "x(%s)", n)
	}
}

func canonicalString(n expr.Node) string {
	var sb strings.Builder
	canonicalize(&sb, n)
	return sb.String()
}
