// Package query binds parsed star-query SQL (internal/sql) against a star
// schema (internal/catalog), producing the executable form consumed by
// both the CJOIN operator and the conventional engine.
//
// A bound query matches the template of §2.1: per-dimension selection
// predicates c_ij (TRUE when absent), an optional fact-table predicate
// c_i0, fact-to-dimension equi-joins validated against the catalog's
// foreign keys, aggregates, and GROUP BY columns.
package query

import (
	"fmt"
	"sort"

	"cjoin/internal/agg"
	"cjoin/internal/catalog"
	"cjoin/internal/expr"
	"cjoin/internal/obs"
	"cjoin/internal/sql"
	"cjoin/internal/txn"
)

// OrderSpec orders final results by output column index.
type OrderSpec struct {
	Col  int // index into the output row: group columns, then aggregates
	Desc bool
}

// SortResults orders results by the given specs (stable over the default
// group-key order produced by the aggregators).
func SortResults(rs []agg.Result, order []OrderSpec) {
	if len(order) == 0 {
		return
	}
	sort.SliceStable(rs, func(a, b int) bool {
		for _, o := range order {
			va, vb := outputCol(rs[a], o.Col), outputCol(rs[b], o.Col)
			if va != vb {
				if o.Desc {
					return va > vb
				}
				return va < vb
			}
		}
		return false
	})
}

func outputCol(r agg.Result, col int) int64 {
	if col < len(r.Group) {
		return r.Group[col]
	}
	return r.Ints[col-len(r.Group)]
}

// Bound is a fully bound star query, ready for execution.
type Bound struct {
	Schema *catalog.Star

	// DimRefs[i] reports whether dimension i is referenced (joined).
	DimRefs []bool
	// DimPreds[i] is the selection predicate on dimension i, bound with
	// the dimension row in slot 0; expr.TRUE when the query references
	// the dimension without filtering it.
	DimPreds []expr.Node
	// FactPred is the fact-table predicate c_i0, bound with the fact row
	// in slot 0; expr.TRUE when absent.
	FactPred expr.Node

	// Aggs and GroupBy are bound over the joined row (fact slot 0,
	// dimension i slot i+1).
	Aggs    []agg.Spec
	GroupBy []expr.Node

	// GroupNames and AggNames label the output columns.
	GroupNames []string
	AggNames   []string
	// Output column order: select-list order mapping. outIdx[i] gives,
	// for select item i, the output position (group col or agg).
	OrderBy []OrderSpec

	// Limit caps the number of result rows delivered, applied after
	// ORDER BY; -1 means no limit.
	Limit int

	// Snapshot is the transaction snapshot the query runs under.
	Snapshot txn.Snapshot

	// SQL preserves the original statement text for diagnostics.
	SQL string

	// Trace, when non-nil, is the query's lifecycle timeline. It rides
	// the Bound through admission and into every shard pipeline (the
	// shallow per-shard copy shares it), collecting stage marks; nil
	// disables tracing at zero cost.
	Trace *obs.Trace
}

// HasFactPred reports whether the query places a real predicate on the
// fact table (c_i0 ≢ TRUE).
func (b *Bound) HasFactPred() bool { return !isTrue(b.FactPred) }

// HasDimPred reports whether dimension i carries a real predicate.
func (b *Bound) HasDimPred(i int) bool { return !isTrue(b.DimPreds[i]) }

func isTrue(n expr.Node) bool {
	c, ok := n.(expr.Const)
	return ok && c.V == 1 && c.Str == ""
}

// ParseBind parses src and binds it against schema.
func ParseBind(src string, schema *catalog.Star) (*Bound, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	b, err := Bind(stmt, schema)
	if err != nil {
		return nil, fmt.Errorf("%w (query: %s)", err, src)
	}
	b.SQL = src
	return b, nil
}

type binder struct {
	schema *catalog.Star
	// nameToSlot maps FROM-clause names and aliases to table slots
	// (0 = fact, i+1 = dimension i).
	nameToSlot map[string]int
	fromSlots  []int
}

// Bind binds stmt against schema.
func Bind(stmt *sql.SelectStmt, schema *catalog.Star) (*Bound, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("query: empty FROM clause")
	}
	bd := &binder{schema: schema, nameToSlot: make(map[string]int)}
	factSeen := false
	for _, ref := range stmt.From {
		slot, tab := schema.TableByName(ref.Name)
		if tab == nil {
			return nil, fmt.Errorf("query: unknown table %q", ref.Name)
		}
		if slot == 0 {
			factSeen = true
		}
		for _, name := range []string{ref.Name, ref.Alias} {
			if name == "" {
				continue
			}
			if old, dup := bd.nameToSlot[name]; dup && old != slot {
				return nil, fmt.Errorf("query: ambiguous table name %q", name)
			}
			bd.nameToSlot[name] = slot
		}
		bd.fromSlots = append(bd.fromSlots, slot)
	}
	if !factSeen {
		return nil, fmt.Errorf("query: star query must reference fact table %q", schema.Fact.Name)
	}

	out := &Bound{
		Schema:   schema,
		DimRefs:  make([]bool, len(schema.Dims)),
		DimPreds: make([]expr.Node, len(schema.Dims)),
		FactPred: expr.TRUE,
		Limit:    -1,
	}
	for i := range out.DimPreds {
		out.DimPreds[i] = expr.TRUE
	}

	// Classify WHERE conjuncts into joins and per-table predicates.
	joined := make([]bool, len(schema.Dims))
	perTable := make(map[int][]sql.Expr) // slot -> conjuncts
	if stmt.Where != nil {
		for _, c := range flattenAnd(stmt.Where) {
			if dim, ok, err := bd.asJoin(c); err != nil {
				return nil, err
			} else if ok {
				joined[dim] = true
				continue
			}
			slots, err := bd.referencedSlots(c)
			if err != nil {
				return nil, err
			}
			switch len(slots) {
			case 0:
				// Constant predicate; attach to the fact table.
				perTable[0] = append(perTable[0], c)
			case 1:
				perTable[slots[0]] = append(perTable[slots[0]], c)
			default:
				return nil, fmt.Errorf("query: predicate %s spans multiple tables; not a star query", c)
			}
		}
	}

	// Bind per-table predicates with the table row in slot 0.
	for slot, conjs := range perTable {
		var preds []expr.Node
		tab := bd.tableOf(slot)
		for _, c := range conjs {
			n, err := bd.bindExpr(c, &bindCtx{singleTable: tab, singleSlot: slot})
			if err != nil {
				return nil, err
			}
			preds = append(preds, n)
		}
		sortStable(preds)
		if slot == 0 {
			out.FactPred = expr.AndAll(preds)
		} else {
			out.DimPreds[slot-1] = expr.AndAll(preds)
		}
	}

	// Aggregates and grouping.
	groupCols := make(map[string]int) // rendered expr -> output position
	for _, g := range stmt.GroupBy {
		n, err := bd.bindExpr(g, &bindCtx{})
		if err != nil {
			return nil, err
		}
		col, ok := n.(expr.Col)
		if !ok {
			return nil, fmt.Errorf("query: GROUP BY supports only column references, got %s", g)
		}
		groupCols[g.String()] = len(out.GroupBy)
		out.GroupBy = append(out.GroupBy, col)
		out.GroupNames = append(out.GroupNames, col.Name)
	}
	for _, item := range stmt.Select {
		switch e := item.Expr.(type) {
		case sql.CallExpr:
			fn, ok := agg.ParseFunc(e.Func)
			if !ok {
				return nil, fmt.Errorf("query: unknown aggregate %q", e.Func)
			}
			spec := agg.Spec{Fn: fn}
			if !e.Star {
				n, err := bd.bindExpr(e.Arg, &bindCtx{})
				if err != nil {
					return nil, err
				}
				spec.Arg = n
			}
			name := item.Alias
			if name == "" {
				name = e.String()
			}
			spec.Name = name
			out.Aggs = append(out.Aggs, spec)
			out.AggNames = append(out.AggNames, name)
		case sql.Ident:
			if _, ok := groupCols[e.String()]; !ok {
				return nil, fmt.Errorf("query: select column %s is not in GROUP BY", e)
			}
		default:
			return nil, fmt.Errorf("query: select item %s must be an aggregate or a grouped column", item.Expr)
		}
	}

	// Mark referenced dimensions: explicit joins plus any dimension whose
	// columns appear in predicates, grouping, or aggregate arguments.
	for i := range schema.Dims {
		if joined[i] || !isTrue(out.DimPreds[i]) {
			out.DimRefs[i] = true
		}
	}
	markSlots := func(n expr.Node) {
		walkBound(n, func(c expr.Col) {
			if c.Slot > 0 {
				out.DimRefs[c.Slot-1] = true
			}
		})
	}
	for _, g := range out.GroupBy {
		markSlots(g)
	}
	for _, a := range out.Aggs {
		if a.Arg != nil {
			markSlots(a.Arg)
		}
	}
	// Every referenced dimension must have its join predicate present.
	for i, used := range out.DimRefs {
		if used && !joined[i] {
			return nil, fmt.Errorf("query: dimension %q referenced without a join predicate", schema.Dims[i].Name)
		}
	}

	// ORDER BY resolves against group columns (by expression text) or
	// aggregate aliases.
	for _, o := range stmt.OrderBy {
		pos := -1
		if p, ok := groupCols[o.Expr.String()]; ok {
			pos = p
		} else if id, ok := o.Expr.(sql.Ident); ok && id.Qualifier == "" {
			for i, name := range out.AggNames {
				if name == id.Name {
					pos = len(out.GroupBy) + i
					break
				}
			}
		}
		if pos < 0 {
			return nil, fmt.Errorf("query: ORDER BY %s does not match a group column or aggregate alias", o.Expr)
		}
		out.OrderBy = append(out.OrderBy, OrderSpec{Col: pos, Desc: o.Desc})
	}
	if stmt.HasLimit {
		if stmt.Limit < 0 {
			return nil, fmt.Errorf("query: negative LIMIT %d", stmt.Limit)
		}
		out.Limit = int(stmt.Limit)
	}
	return out, nil
}

// ApplyLimit truncates sorted results to the query's LIMIT, if any.
func (b *Bound) ApplyLimit(rs []agg.Result) []agg.Result {
	if b.Limit >= 0 && len(rs) > b.Limit {
		return rs[:b.Limit]
	}
	return rs
}

func (bd *binder) tableOf(slot int) *catalog.Table {
	if slot == 0 {
		return bd.schema.Fact
	}
	return bd.schema.Dims[slot-1]
}

// asJoin recognizes fact-to-dimension key/foreign-key equi-joins and
// validates them against the star metadata.
func (bd *binder) asJoin(e sql.Expr) (dim int, ok bool, err error) {
	b, isBin := e.(sql.BinExpr)
	if !isBin || b.Op != "=" {
		return 0, false, nil
	}
	li, lok := b.L.(sql.Ident)
	ri, rok := b.R.(sql.Ident)
	if !lok || !rok {
		return 0, false, nil
	}
	ls, lc, lerr := bd.resolveIdent(li)
	rs, rc, rerr := bd.resolveIdent(ri)
	if lerr != nil || rerr != nil {
		// Leave resolution errors to the general path for a better message.
		return 0, false, nil
	}
	if ls == rs {
		return 0, false, nil // single-table equality, a plain predicate
	}
	// Normalize to (fact, dim).
	fs, fc, ds, dc := ls, lc, rs, rc
	if fs != 0 {
		fs, fc, ds, dc = rs, rc, ls, lc
	}
	if fs != 0 || ds == 0 {
		return 0, false, fmt.Errorf("query: join %s is not fact-to-dimension; not a star query", e)
	}
	d := ds - 1
	if bd.schema.FKCol[d] != fc || bd.schema.KeyCol[d] != dc {
		return 0, false, fmt.Errorf("query: join %s does not match the star foreign key for %s", e, bd.schema.Dims[d].Name)
	}
	return d, true, nil
}

// referencedSlots returns the distinct table slots referenced by e.
func (bd *binder) referencedSlots(e sql.Expr) ([]int, error) {
	seen := make(map[int]bool)
	var firstErr error
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch n := e.(type) {
		case sql.Ident:
			s, _, err := bd.resolveIdent(n)
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			if err == nil {
				seen[s] = true
			}
		case sql.BinExpr:
			walk(n.L)
			walk(n.R)
		case sql.NotExpr:
			walk(n.X)
		case sql.BetweenExpr:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case sql.InExpr:
			walk(n.X)
			for _, it := range n.List {
				walk(it)
			}
		case sql.CallExpr:
			if n.Arg != nil {
				walk(n.Arg)
			}
		}
	}
	walk(e)
	if firstErr != nil {
		return nil, firstErr
	}
	slots := make([]int, 0, len(seen))
	for s := range seen {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	return slots, nil
}

func (bd *binder) resolveIdent(id sql.Ident) (slot, col int, err error) {
	if id.Qualifier != "" {
		s, ok := bd.nameToSlot[id.Qualifier]
		if !ok {
			return 0, 0, fmt.Errorf("query: unknown table %q", id.Qualifier)
		}
		c := bd.tableOf(s).ColIndex(id.Name)
		if c < 0 {
			return 0, 0, fmt.Errorf("query: unknown column %s", id)
		}
		return s, c, nil
	}
	found := -1
	for _, s := range bd.fromSlots {
		if c := bd.tableOf(s).ColIndex(id.Name); c >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("query: ambiguous column %q", id.Name)
			}
			found, col = s, c
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("query: unknown column %q", id.Name)
	}
	return found, col, nil
}

// bindCtx controls column binding. With singleTable set, identifiers must
// belong to that table and bind with slot 0 (per-table predicate form);
// otherwise identifiers bind with their joined-row slot.
type bindCtx struct {
	singleTable *catalog.Table
	singleSlot  int
}

func (bd *binder) bindExpr(e sql.Expr, ctx *bindCtx) (expr.Node, error) {
	switch n := e.(type) {
	case sql.NumLit:
		return expr.Const{V: n.V}, nil
	case sql.StrLit:
		return nil, fmt.Errorf("query: string literal %s outside a comparison", n)
	case sql.Ident:
		slot, col, err := bd.resolveIdent(n)
		if err != nil {
			return nil, err
		}
		if ctx.singleTable != nil {
			if slot != ctx.singleSlot {
				return nil, fmt.Errorf("query: column %s does not belong to table %s", n, ctx.singleTable.Name)
			}
			return expr.Col{Slot: 0, Idx: col, Name: n.String()}, nil
		}
		return expr.Col{Slot: slot, Idx: col, Name: n.String()}, nil
	case sql.NotExpr:
		x, err := bd.bindExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		return expr.Not{X: x}, nil
	case sql.BetweenExpr:
		x, err := bd.bindExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		lo, err := bd.bindOperand(n.Lo, n.X, ctx)
		if err != nil {
			return nil, err
		}
		hi, err := bd.bindOperand(n.Hi, n.X, ctx)
		if err != nil {
			return nil, err
		}
		return expr.Bin{Op: expr.And,
			L: expr.Bin{Op: expr.Ge, L: x, R: lo},
			R: expr.Bin{Op: expr.Le, L: x, R: hi}}, nil
	case sql.InExpr:
		x, err := bd.bindExpr(n.X, ctx)
		if err != nil {
			return nil, err
		}
		vals := make([]int64, 0, len(n.List))
		for _, it := range n.List {
			v, err := bd.bindOperand(it, n.X, ctx)
			if err != nil {
				return nil, err
			}
			c, ok := v.(expr.Const)
			if !ok {
				return nil, fmt.Errorf("query: IN list item %s is not a literal", it)
			}
			vals = append(vals, c.V)
		}
		return expr.NewIn(x, vals), nil
	case sql.BinExpr:
		op, ok := sqlOps[n.Op]
		if !ok {
			return nil, fmt.Errorf("query: unsupported operator %q", n.Op)
		}
		var l, r expr.Node
		var err error
		// For comparisons, string literals bind against the opposite
		// side's dictionary.
		if isCmp(op) {
			l, err = bd.bindOperand(n.L, n.R, ctx)
			if err != nil {
				return nil, err
			}
			r, err = bd.bindOperand(n.R, n.L, ctx)
			if err != nil {
				return nil, err
			}
		} else {
			l, err = bd.bindExpr(n.L, ctx)
			if err != nil {
				return nil, err
			}
			r, err = bd.bindExpr(n.R, ctx)
			if err != nil {
				return nil, err
			}
		}
		return expr.Bin{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("query: cannot bind %s", e)
}

// bindOperand binds e; if e is a string literal, it is encoded through
// the dictionary of the column referenced by other.
func (bd *binder) bindOperand(e, other sql.Expr, ctx *bindCtx) (expr.Node, error) {
	s, ok := e.(sql.StrLit)
	if !ok {
		return bd.bindExpr(e, ctx)
	}
	id, ok := other.(sql.Ident)
	if !ok {
		return nil, fmt.Errorf("query: string literal %s must compare against a column", s)
	}
	slot, col, err := bd.resolveIdent(id)
	if err != nil {
		return nil, err
	}
	tab := bd.tableOf(slot)
	d := tab.Dicts[col]
	if d == nil {
		return nil, fmt.Errorf("query: column %s is not a string column", id)
	}
	v, found := d.Lookup(s.S)
	if !found {
		// Unknown string: impossible dictionary id, so equality is
		// always false and inequality always true — correct semantics
		// without polluting the dictionary.
		v = -1
	}
	return expr.Const{V: v, Str: s.S}, nil
}

var sqlOps = map[string]expr.Op{
	"+": expr.Add, "-": expr.Sub, "*": expr.Mul, "/": expr.Div,
	"=": expr.Eq, "<>": expr.Ne, "<": expr.Lt, "<=": expr.Le,
	">": expr.Gt, ">=": expr.Ge, "AND": expr.And, "OR": expr.Or,
}

func isCmp(op expr.Op) bool {
	switch op {
	case expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge:
		return true
	}
	return false
}

func flattenAnd(e sql.Expr) []sql.Expr {
	if b, ok := e.(sql.BinExpr); ok && b.Op == "AND" {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []sql.Expr{e}
}

func walkBound(n expr.Node, fn func(expr.Col)) {
	switch x := n.(type) {
	case expr.Col:
		fn(x)
	case expr.Bin:
		walkBound(x.L, fn)
		walkBound(x.R, fn)
	case expr.Not:
		walkBound(x.X, fn)
	case *expr.In:
		walkBound(x.X, fn)
	}
}

// sortStable keeps predicate ordering deterministic across runs so that
// plans and test expectations are reproducible.
func sortStable(preds []expr.Node) {
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].String() < preds[j].String() })
}
