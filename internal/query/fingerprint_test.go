package query

import (
	"testing"

	"cjoin/internal/expr"
)

func col(slot, idx int, name string) expr.Col { return expr.Col{Slot: slot, Idx: idx, Name: name} }

func TestFingerprintStable(t *testing.T) {
	p := expr.Bin{Op: expr.Eq, L: col(0, 4, "d_year"), R: expr.Const{V: 1993}}
	a, b := Fingerprint(p), Fingerprint(p)
	if a != b {
		t.Fatalf("same node hashed differently: %x vs %x", a, b)
	}
}

func TestFingerprintCommutativeOrder(t *testing.T) {
	x, y := col(0, 1, "a"), col(0, 2, "b")
	cases := []struct{ l, r expr.Node }{
		{expr.Bin{Op: expr.Eq, L: x, R: y}, expr.Bin{Op: expr.Eq, L: y, R: x}},
		{expr.Bin{Op: expr.And, L: x, R: y}, expr.Bin{Op: expr.And, L: y, R: x}},
		{expr.Bin{Op: expr.Or, L: x, R: y}, expr.Bin{Op: expr.Or, L: y, R: x}},
		{expr.Bin{Op: expr.Add, L: x, R: y}, expr.Bin{Op: expr.Add, L: y, R: x}},
	}
	for i, c := range cases {
		if Fingerprint(c.l) != Fingerprint(c.r) {
			t.Errorf("case %d: commutative flip changed fingerprint:\n %s\n %s",
				i, CanonicalPredicate(c.l), CanonicalPredicate(c.r))
		}
	}
}

func TestFingerprintNonCommutativeOrder(t *testing.T) {
	x, y := col(0, 1, "a"), col(0, 2, "b")
	l := expr.Bin{Op: expr.Lt, L: x, R: y}
	r := expr.Bin{Op: expr.Lt, L: y, R: x}
	if Fingerprint(l) == Fingerprint(r) {
		t.Fatalf("a<b and b<a must not collide by construction")
	}
}

func TestFingerprintColByPosition(t *testing.T) {
	// Same (slot, idx) under different diagnostic names is the same column.
	a := expr.Bin{Op: expr.Eq, L: col(0, 3, "d_month"), R: expr.Const{V: 7}}
	b := expr.Bin{Op: expr.Eq, L: col(0, 3, "renamed"), R: expr.Const{V: 7}}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("column diagnostic name leaked into the fingerprint")
	}
	// Different idx must differ.
	c := expr.Bin{Op: expr.Eq, L: col(0, 4, "d_month"), R: expr.Const{V: 7}}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatalf("distinct columns collided")
	}
}

func TestFingerprintConstByValue(t *testing.T) {
	// A dictionary-encoded string literal and its raw code are the same value.
	a := expr.Bin{Op: expr.Eq, L: col(0, 2, "s"), R: expr.Const{V: 42, Str: "ASIA"}}
	b := expr.Bin{Op: expr.Eq, L: col(0, 2, "s"), R: expr.Const{V: 42}}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("Const.Str leaked into the fingerprint")
	}
}

func TestFingerprintInSetNormalized(t *testing.T) {
	x := col(0, 1, "k")
	a := expr.NewIn(x, []int64{3, 1, 2})
	b := expr.NewIn(x, []int64{1, 2, 3})
	c := expr.NewIn(x, []int64{2, 1, 3, 2, 2})
	if Fingerprint(a) != Fingerprint(b) || Fingerprint(b) != Fingerprint(c) {
		t.Fatalf("IN list order/duplicates changed fingerprint:\n %s\n %s\n %s",
			CanonicalPredicate(a), CanonicalPredicate(b), CanonicalPredicate(c))
	}
	d := expr.NewIn(x, []int64{1, 2})
	if Fingerprint(a) == Fingerprint(d) {
		t.Fatalf("distinct IN sets collided")
	}
}

func TestFingerprintNestedCanonical(t *testing.T) {
	// (B AND A) vs (A AND B) with composite operands.
	a := expr.Between(col(0, 4, "y"), 1992, 1994)
	b := expr.Bin{Op: expr.Eq, L: col(0, 5, "m"), R: expr.Const{V: 12}}
	l := expr.Bin{Op: expr.And, L: a, R: b}
	r := expr.Bin{Op: expr.And, L: b, R: a}
	if Fingerprint(l) != Fingerprint(r) {
		t.Fatalf("nested commutative flip changed fingerprint")
	}
}

func TestFingerprintTrueDistinct(t *testing.T) {
	// TRUE (no predicate) must not collide with a real selection.
	p := expr.Bin{Op: expr.Eq, L: col(0, 4, "y"), R: expr.Const{V: 1}}
	if Fingerprint(expr.TRUE) == Fingerprint(p) {
		t.Fatalf("TRUE collided with a selection")
	}
}
