// Package server exposes a CJOIN pipeline as a network service: the
// query service layer that turns the reproduction from a library into an
// operable system.
//
// The HTTP/JSON API is deliberately small and maps one-to-one onto the
// paper's operational story:
//
//	POST   /query             submit SQL; 202 + query id (queues under overload)
//	POST   /update            snapshot-isolated write commit (§3.5 HTAP plane)
//	GET    /query/{id}        progress / ETA / pages scanned (§3.2.3)
//	GET    /query/{id}/result block for the decoded rows
//	GET    /query/{id}/trace  per-query lifecycle timeline (telemetry plane)
//	DELETE /query/{id}        cancel a queued or running query
//	GET    /stats             pipeline + admission counters
//	GET    /metrics           Prometheus text exposition (when Config.Metrics set)
//	GET    /healthz           liveness
//
// Submissions flow through an admission.Queue, so a full pipeline queues
// instead of erroring; Drain performs a graceful shutdown (stop accepting,
// let queued and running queries finish, quiesce the pipeline).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/agg"
	"cjoin/internal/catalog"
	"cjoin/internal/core"
	"cjoin/internal/expr"
	"cjoin/internal/obs"
	"cjoin/internal/query"
	"cjoin/internal/txn"
)

// Config tunes the service layer.
type Config struct {
	// Admission configures the admission queue bounds and default
	// queue-wait deadline.
	Admission admission.Config
	// MaxTracked bounds the number of finished queries kept for status
	// lookups; the oldest finished entries are evicted first.
	// Default 4096.
	MaxTracked int
	// Metrics, when non-nil, is the telemetry registry served at GET
	// /metrics (Prometheus text exposition). The server threads it into
	// the admission queue it owns; the executor must have been built over
	// the same registry for the pipeline families to show up. Nil leaves
	// /metrics a 404.
	Metrics *obs.Registry
	// MaxTraces bounds the per-query lifecycle traces retained for GET
	// /query/{id}/trace; the oldest are evicted first. Default 1024.
	// Tracing is always on — its cost is a few timestamps per query.
	MaxTraces int
}

// Server is the query service layer over one executor — a single
// pipeline or a sharded group (internal/shard.Group).
type Server struct {
	star   *catalog.Star
	txm    *txn.Manager
	exec   core.Executor
	adq    *admission.Queue
	cfg    Config
	tracer *obs.Tracer

	// Write-plane telemetry (nil-safe handles; no-ops without a registry).
	mCommits    *obs.CounterVec
	mCommitErrs *obs.Counter
	mCommitDur  *obs.Histogram
	mCacheInval *obs.Counter

	mu       sync.Mutex
	queries  map[string]*served
	order    []string // registration order, for eviction
	seq      int64
	draining bool

	started time.Time
}

// served tracks one submitted query.
type served struct {
	id        string
	sql       string
	bound     *query.Bound
	ticket    *admission.Ticket
	submitted time.Time
}

// New builds the service layer. The executor must already be started;
// the server creates and owns the admission queue in front of it.
func New(star *catalog.Star, txm *txn.Manager, exec core.Executor, cfg Config) *Server {
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = 4096
	}
	// The admission queue records its stage metrics in the same registry
	// /metrics serves.
	acfg := cfg.Admission
	acfg.Obs = cfg.Metrics
	return &Server{
		star:    star,
		txm:     txm,
		exec:    exec,
		adq:     admission.NewQueue(exec, acfg),
		cfg:     cfg,
		tracer:  obs.NewTracer(cfg.MaxTraces),
		queries: make(map[string]*served),
		started: time.Now(),

		mCommits: cfg.Metrics.CounterVec("cjoin_commits_total",
			"Write-plane commits published, by kind (append|delete|dim_update).", "kind"),
		mCommitErrs: cfg.Metrics.Counter("cjoin_commit_errors_total",
			"Write-plane commits whose apply failed; no snapshot was published."),
		mCommitDur: cfg.Metrics.DurationHistogram("cjoin_commit_seconds",
			"Write-plane commit latency, apply through publish."),
		mCacheInval: cfg.Metrics.Counter("cjoin_dimcache_invalidations_total",
			"Dimension predicate-scan cache invalidations forced by dimension-value updates."),
	}
}

// Queue returns the underlying admission queue.
func (s *Server) Queue() *admission.Queue { return s.adq }

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleSubmit)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /query/{id}", s.handleStatus)
	mux.HandleFunc("GET /query/{id}/result", s.handleResult)
	mux.HandleFunc("GET /query/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /query/{id}", s.handleCancel)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// healther is implemented by executors that expose a serving-state
// breakdown (core.Pipeline, shard.Group). The server depends on the
// interface only.
type healther interface{ Health() core.Health }

// handleHealth is the supervision-aware liveness probe:
//
//	200 {"state":"ok"}        every shard serving
//	200 {"state":"degraded"}  shards quarantined, survivors serving
//	200 {"state":"draining"}  graceful shutdown, in-flight work finishing
//	503 {"state":"failed"}    no serving capacity left
//
// Degraded and draining stay 200 deliberately: the process is alive and
// either still answers queries or is finishing the ones it accepted —
// only total capacity loss flips the probe. The body and /stats carry
// the per-shard detail for operators and alerting.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusOK, HealthResponse{State: "draining"})
		return
	}
	h := core.Health{State: "ok"}
	if he, ok := s.exec.(healther); ok {
		h = he.Health()
	}
	out := HealthResponse{State: h.State}
	for _, sh := range h.Shards {
		out.Shards = append(out.Shards, ShardHealth{
			Shard: sh.Shard,
			State: string(sh.State),
			Cause: sh.Cause,
		})
	}
	code := http.StatusOK
	if h.State == "failed" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, out)
}

// Drain performs a graceful shutdown of the query layer: new submissions
// are rejected with 503, queued and running queries finish (unless ctx
// expires first, which cancels the still-queued ones), and the pipeline
// is quiesced. The caller still owns pipeline Stop and the HTTP
// listener.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	err := s.adq.Close(ctx)
	s.exec.Quiesce()
	return err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusCoder lets typed errors carry their own HTTP mapping — e.g.
// shard.RangePartitionedError reports 422 Unprocessable Entity, since
// the request is well-formed but the executor topology cannot run it.
// The server depends on the interface only, never on the error types.
type statusCoder interface{ HTTPStatus() int }

// errStatus returns the error's own HTTP status when it carries one,
// else fallback.
func errStatus(err error, fallback int) int {
	var sc statusCoder
	if errors.As(err, &sc) {
		return sc.HTTPStatus()
	}
	return fallback
}

// retryAfterer marks typed errors whose condition is transient — an
// expired queue wait (admission.DeadlineError), a quarantined shard
// (shard.ShardFailedError) — and carries the suggested backoff.
type retryAfterer interface{ RetryAfter() time.Duration }

// setRetryAfter surfaces a typed error's backoff hint as the standard
// Retry-After header, so clients (and internal/server/client) can
// distinguish "back off and retry" from hard failures.
func setRetryAfter(w http.ResponseWriter, err error) {
	var ra retryAfterer
	if !errors.As(err, &ra) {
		return
	}
	secs := int((ra.RetryAfter() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.SQL == "" {
		writeErr(w, http.StatusBadRequest, "missing \"sql\"")
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	b, err := query.ParseBind(req.SQL, s.star)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	b.Snapshot = s.txm.Begin()

	// The query id is minted before submission so the lifecycle trace
	// can ride the Bound from the first admission mark on; a rejected
	// submission drops the trace again.
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("q-%06d", s.seq)
	s.mu.Unlock()
	b.Trace = s.tracer.Start(id)

	ticket, err := s.adq.SubmitOpts(b, admission.Options{
		Client:  req.Client,
		MaxWait: time.Duration(req.MaxWaitMillis) * time.Millisecond,
	})
	if err != nil {
		s.tracer.Drop(id)
	}
	switch {
	case errors.Is(err, admission.ErrQueueFull):
		// Pure backpressure: the queue will drain at the pipeline's pace.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "admission queue full")
		return
	case errors.Is(err, admission.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		setRetryAfter(w, err)
		writeErr(w, errStatus(err, http.StatusInternalServerError), "%v", err)
		return
	}

	sv := &served{
		id:        id,
		sql:       req.SQL,
		bound:     b,
		ticket:    ticket,
		submitted: time.Now(),
	}
	s.mu.Lock()
	s.queries[sv.id] = sv
	s.order = append(s.order, sv.id)
	s.evictLocked()
	s.mu.Unlock()

	writeJSON(w, http.StatusAccepted, s.status(sv, false))
}

// evictLocked drops the oldest finished queries beyond cfg.MaxTracked.
func (s *Server) evictLocked() {
	if len(s.queries) <= s.cfg.MaxTracked {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		sv := s.queries[id]
		if sv == nil {
			continue
		}
		if len(s.queries) > s.cfg.MaxTracked && sv.ticket.State().Terminal() {
			delete(s.queries, id)
			s.tracer.Drop(id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) lookup(r *http.Request) (*served, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.queries[r.PathValue("id")]
	return sv, ok
}

// status builds the QueryStatus snapshot; withSQL controls echoing the
// query text (status endpoint only, to keep submit responses lean).
func (s *Server) status(sv *served, withSQL bool) QueryStatus {
	t := sv.ticket
	st := QueryStatus{
		ID:              sv.id,
		State:           t.State().String(),
		QueueWaitMillis: t.QueueWait().Milliseconds(),
		QueuePos:        t.QueuePos(),
		Slot:            -1,
	}
	if withSQL {
		st.SQL = sv.sql
	}
	if h := t.Handle(); h != nil {
		st.Progress = h.Progress()
		st.PagesScanned = h.PagesScanned()
		st.SubmissionMicros = h.Submission().Microseconds()
		st.Slot = h.Slot()
		if eta, ok := h.ETA(); ok {
			st.ETAKnown = true
			st.ETAMillis = eta.Milliseconds()
		}
	}
	if state := t.State(); state.Terminal() {
		res := t.Wait()
		if res.Err != nil {
			st.Error = res.Err.Error()
		}
		if state == admission.StateDone {
			st.Progress = 1
			st.ETAKnown = true
			st.ETAMillis = 0
		}
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(sv, true))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	wait := r.Context().Done()
	var timeout <-chan time.Time
	if tq := r.URL.Query().Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad timeout %q: %v", tq, err)
			return
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case <-sv.ticket.Done():
	case <-wait:
		return // client went away
	case <-timeout:
		writeErr(w, http.StatusRequestTimeout, "query %s still %s", sv.id, sv.ticket.State())
		return
	}

	res := sv.ticket.Wait()
	out := ResultResponse{
		ID:            sv.id,
		State:         sv.ticket.State().String(),
		ElapsedMillis: time.Since(sv.submitted).Milliseconds(),
	}
	if res.Err != nil {
		// Most failures (cancellation, expiry, pipeline stop) stay 200
		// with the error in the body — the query was served, its outcome
		// is the resource. Typed errors that know their HTTP status
		// (e.g. an executor rejecting the query as unprocessable, 422)
		// surface it here, since admission dispatch is asynchronous and
		// the submit response has long been sent.
		out.Error = res.Err.Error()
		setRetryAfter(w, res.Err)
		writeJSON(w, errStatus(res.Err, http.StatusOK), out)
		return
	}
	out.Columns = append(append([]string{}, sv.bound.GroupNames...), sv.bound.AggNames...)
	out.Rows = DecodeResults(sv.bound, res.Rows)
	out.RowCount = len(out.Rows)
	writeJSON(w, http.StatusOK, out)
}

// handleTrace serves the query's lifecycle timeline: every stage mark
// recorded since submission, with per-stage durations. The trace store
// is bounded (Config.MaxTraces), so very old queries may have lost
// theirs even while /query/{id} still answers.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.tracer.Get(id)
	if tr == nil {
		writeErr(w, http.StatusNotFound, "no trace for query %q", id)
		return
	}
	out := TraceResponse{
		ID:                  id,
		StartedAtUnixMillis: tr.StartedAt().UnixMilli(),
		Complete:            tr.Has(obs.StageDelivered),
	}
	var prev time.Duration
	for _, m := range tr.Stages() {
		out.Stages = append(out.Stages, TraceStage{
			Stage:           m.Stage,
			OffsetMicros:    m.At.Microseconds(),
			SincePrevMicros: (m.At - prev).Microseconds(),
		})
		prev = m.At
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format (version 0.0.4); 404 when the server was built
// without one.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Metrics == nil {
		writeErr(w, http.StatusNotFound, "metrics are not enabled on this server")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WritePrometheus(w)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.lookup(r)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown query %q", r.PathValue("id"))
		return
	}
	canceled := sv.ticket.Cancel()
	writeJSON(w, http.StatusOK, CancelResponse{
		ID:       sv.id,
		Canceled: canceled,
		State:    sv.ticket.State().String(),
	})
}

// shardStatser is implemented by sharded executors (internal/shard.Group)
// exposing per-shard pipeline counters alongside their merge, derived
// from one snapshot so the breakdown sums exactly to the totals. The
// server depends on the Executor interface only, so the extra capability
// is an assertion.
type shardStatser interface {
	StatsWithShards() (core.Stats, []core.Stats)
}

// shardPartitioner is implemented by partition-dealt groups
// (internal/shard.Group over a range-partitioned star) exposing which
// global partitions each shard scans.
type shardPartitioner interface {
	ShardPartitions() [][]int
}

// wireStats converts a core.Stats snapshot to its wire form.
func wireStats(ps core.Stats) PipelineStats {
	out := PipelineStats{
		TuplesScanned:        ps.TuplesScanned,
		TuplesEmitted:        ps.TuplesEmitted,
		PagesRead:            ps.PagesRead,
		ScanCycles:           ps.ScanCycles,
		ScanRetries:          ps.ScanRetries,
		PagesPrunedPartition: ps.PagesPrunedPartition,
		PagesPrunedZonemap:   ps.PagesPrunedZonemap,
		PagesSkippedZonemap:  ps.PagesSkippedZonemap,
		State:                string(ps.State),
		FailureCause:         ps.FailureCause,
		FilterOrder:          ps.FilterOrder,
		DimAdmits:            ps.DimAdmits,
		DimAdmitMicros:       ps.DimAdmitNanos / 1000,
		PlaneBytes:           ps.PlaneBytes,
		PlanePeakBytes:       ps.PlanePeakBytes,
		PlanePipelines:       ps.PlanePipelines,

		PlaneCacheHits:    ps.PlaneCacheHits,
		PlaneCacheMisses:  ps.PlaneCacheMisses,
		PlanePublishes:    ps.PlanePublishes,
		PlaneBatchAdmits:  ps.PlaneBatchAdmits,
		PlaneBatchQueries: ps.PlaneBatchQueries,
	}
	if !ps.CollectedAt.IsZero() {
		out.CollectedAtUnixMillis = ps.CollectedAt.UnixMilli()
	}
	for _, f := range ps.Filters {
		out.Filters = append(out.Filters, FilterStats{
			Dimension: f.Dimension,
			Stored:    f.Stored,
			TuplesIn:  f.TuplesIn,
			Probes:    f.Probes,
			Drops:     f.Drops,
			DropRate:  f.DropRate(),
		})
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Each of these snapshots is internally consistent: the executor and
	// the admission queue take their counters under their own locks, so a
	// /stats racing shard startup or drain sees either the old or the new
	// state, never a torn one. For a sharded executor the merged totals
	// and the per-shard breakdown come from the same snapshot, so the
	// breakdown always sums exactly to the totals.
	var ps core.Stats
	var perShard []core.Stats
	if ss, ok := s.exec.(shardStatser); ok {
		ps, perShard = ss.StatsWithShards()
	} else {
		ps = s.exec.Stats()
	}
	as := s.adq.Stats()

	pipeline := wireStats(ps)
	pipeline.MaxConcurrent = s.exec.MaxConcurrent()
	pipeline.Active = s.exec.ActiveQueries()
	if s.star.PartCol >= 0 {
		pipeline.Partitions = len(s.star.Partitions())
	}

	out := StatsResponse{
		UptimeMillis: time.Since(s.started).Milliseconds(),
		Pipeline:     pipeline,
		Admission: AdmissionStats{
			Depth:          as.Depth,
			Running:        as.Running,
			Capacity:       as.Capacity,
			MaxQueue:       as.MaxQueue,
			Submitted:      as.Submitted,
			Admitted:       as.Admitted,
			Completed:      as.Completed,
			Failed:         as.Failed,
			Canceled:       as.Canceled,
			Expired:        as.Expired,
			Rejected:       as.Rejected,
			MaxDepth:       as.MaxDepth,
			MeanWaitMillis: float64(as.MeanWait) / float64(time.Millisecond),
			MaxWaitMillis:  float64(as.MaxWait) / float64(time.Millisecond),
			PerClient:      make(map[string]ClientStats, len(as.PerClient)),
		},
		Queries: make(map[string]int),
	}
	if he, ok := s.exec.(healther); ok {
		out.Degraded = he.Health().Degraded()
	}
	for _, st := range perShard {
		out.Shards = append(out.Shards, wireStats(st))
	}
	if sp, ok := s.exec.(shardPartitioner); ok {
		if subs := sp.ShardPartitions(); subs != nil {
			for i := range out.Shards {
				if i < len(subs) {
					out.Shards[i].Partitions = len(subs[i])
				}
			}
		}
	}
	for name, cs := range as.PerClient {
		c := ClientStats{
			Submitted:       cs.Submitted,
			Admitted:        cs.Admitted,
			Finished:        cs.Finished,
			MaxWaitMillis:   float64(cs.MaxWait) / float64(time.Millisecond),
			TotalWaitMillis: float64(cs.TotalWait) / float64(time.Millisecond),
		}
		if cs.Admitted > 0 {
			c.MeanWaitMillis = c.TotalWaitMillis / float64(cs.Admitted)
		}
		out.Admission.PerClient[name] = c
	}

	s.mu.Lock()
	out.Draining = s.draining
	for _, sv := range s.queries {
		out.Queries[sv.ticket.State().String()]++
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, out)
}

// DecodeResults converts raw aggregation output into JSON-friendly rows:
// dictionary-encoded group columns decode to strings, AVG aggregates to
// float64, everything else stays int64.
func DecodeResults(b *query.Bound, rows []agg.Result) [][]any {
	out := make([][]any, 0, len(rows))
	for _, r := range rows {
		line := make([]any, 0, len(r.Group)+len(r.Ints))
		for gi, gv := range r.Group {
			line = append(line, decodeGroupValue(b, gi, gv))
		}
		for ai := range r.Ints {
			spec := b.Aggs[ai]
			if spec.Fn == agg.Avg {
				line = append(line, r.Value(ai, spec))
			} else {
				line = append(line, r.Ints[ai])
			}
		}
		out = append(out, line)
	}
	return out
}

func decodeGroupValue(b *query.Bound, gi int, v int64) any {
	col, ok := b.GroupBy[gi].(expr.Col)
	if !ok {
		return v
	}
	tab := b.Schema.Fact
	if col.Slot > 0 {
		tab = b.Schema.Dims[col.Slot-1]
	}
	if d := tab.Dicts[col.Idx]; d != nil {
		if s, ok := d.Decode(v); ok {
			return s
		}
	}
	return v
}
