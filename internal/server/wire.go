package server

// Wire types of the cjoind HTTP/JSON API, shared with the typed Go
// client (internal/server/client).

// SubmitRequest is the body of POST /query.
type SubmitRequest struct {
	// SQL is the star query text (internal/sql subset).
	SQL string `json:"sql"`
	// Client optionally attributes the query in fairness accounting.
	Client string `json:"client,omitempty"`
	// MaxWaitMillis optionally bounds the queue wait; the query fails
	// with state "expired" if no pipeline slot frees up in time.
	// 0 uses the server default, negative disables the deadline.
	MaxWaitMillis int64 `json:"max_wait_ms,omitempty"`
}

// UpdateRequest is the body of POST /update — one snapshot-isolated
// commit against the warehouse (§3.5).
type UpdateRequest struct {
	// Op selects the write: "append" (fact rows), "delete" (one fact
	// row) or "dim-update" (one dimension cell).
	Op string `json:"op"`
	// Rows holds visible-column fact rows for op "append"; system
	// columns (xmin/xmax) are stamped by the server inside the commit.
	Rows [][]any `json:"rows,omitempty"`
	// Row is the target row index: the fact row for op "delete", the
	// dimension row for op "dim-update".
	Row *int64 `json:"row,omitempty"`
	// Table and Column address the dimension cell for op "dim-update".
	Table  string `json:"table,omitempty"`
	Column string `json:"column,omitempty"`
	// Value is the new cell value (number for Int columns, string for
	// dictionary columns).
	Value any `json:"value,omitempty"`
}

// UpdateResponse is the body of a successful POST /update.
type UpdateResponse struct {
	Op string `json:"op"`
	// Snapshot is the published commit id: queries whose snapshot is
	// >= this value see the write, earlier snapshots do not. A failed
	// commit publishes no snapshot (the request errors instead).
	Snapshot     uint64 `json:"snapshot"`
	RowsAffected int    `json:"rows_affected"`
}

// QueryStatus describes one submitted query; it is returned by
// POST /query (202) and GET /query/{id}.
type QueryStatus struct {
	ID    string `json:"id"`
	SQL   string `json:"sql,omitempty"`
	State string `json:"state"` // queued|admitting|running|done|failed|canceled|expired

	// QueuePos is the 1-based position in the admission queue while the
	// query waits; 0 otherwise.
	QueuePos int `json:"queue_pos,omitempty"`
	// QueueWaitMillis is the time spent waiting for admission.
	QueueWaitMillis int64 `json:"queue_wait_ms"`

	// Progress is the fraction of the scan cycle completed, in [0,1]
	// (§3.2.3 of the paper). Zero while queued.
	Progress float64 `json:"progress"`
	// ETAMillis estimates the time to completion from the current scan
	// rate; valid only when ETAKnown.
	ETAMillis int64 `json:"eta_ms"`
	ETAKnown  bool  `json:"eta_known"`
	// PagesScanned is the number of fact pages charged to the query.
	PagesScanned int64 `json:"pages_scanned"`
	// SubmissionMicros is the paper's "submission time" (§6.2.2): how
	// long pipeline registration took, once admitted.
	SubmissionMicros int64 `json:"submission_us,omitempty"`
	// Slot is the query's CJOIN identifier while registered (slot ids
	// start at 0); -1 while the query has not been admitted.
	Slot int `json:"slot"`

	// Error carries the failure message for failed/canceled/expired
	// queries.
	Error string `json:"error,omitempty"`
}

// ResultResponse is the body of GET /query/{id}/result.
type ResultResponse struct {
	ID      string   `json:"id"`
	State   string   `json:"state"`
	Columns []string `json:"columns,omitempty"`
	// Rows hold decoded cells: dictionary-encoded columns come back as
	// strings, AVG aggregates as floats, everything else as integers.
	Rows     [][]any `json:"rows,omitempty"`
	RowCount int     `json:"row_count"`
	// ElapsedMillis is submit-to-completion wall time as seen by the
	// server.
	ElapsedMillis int64  `json:"elapsed_ms"`
	Error         string `json:"error,omitempty"`
}

// CancelResponse is the body of DELETE /query/{id}.
type CancelResponse struct {
	ID       string `json:"id"`
	Canceled bool   `json:"canceled"`
	State    string `json:"state"`
}

// AdmissionStats mirrors admission.Stats.
type AdmissionStats struct {
	Depth     int   `json:"depth"`
	Running   int   `json:"running"`
	Capacity  int   `json:"capacity"`
	MaxQueue  int   `json:"max_queue"`
	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Expired   int64 `json:"expired"`
	Rejected  int64 `json:"rejected"`
	MaxDepth  int   `json:"max_depth"`

	MeanWaitMillis float64 `json:"mean_wait_ms"`
	MaxWaitMillis  float64 `json:"max_wait_ms"`

	PerClient map[string]ClientStats `json:"per_client,omitempty"`
}

// ClientStats is the per-client fairness ledger.
type ClientStats struct {
	Submitted       int64   `json:"submitted"`
	Admitted        int64   `json:"admitted"`
	Finished        int64   `json:"finished"`
	MeanWaitMillis  float64 `json:"mean_wait_ms"`
	MaxWaitMillis   float64 `json:"max_wait_ms"`
	TotalWaitMillis float64 `json:"total_wait_ms"`
}

// FilterStats mirrors core.FilterStats.
type FilterStats struct {
	Dimension string  `json:"dimension"`
	Stored    int     `json:"stored"`
	TuplesIn  int64   `json:"tuples_in"`
	Probes    int64   `json:"probes"`
	Drops     int64   `json:"drops"`
	DropRate  float64 `json:"drop_rate"`
}

// PipelineStats mirrors core.Stats.
type PipelineStats struct {
	MaxConcurrent int           `json:"max_concurrent"`
	Active        int           `json:"active"`
	TuplesScanned int64         `json:"tuples_scanned"`
	TuplesEmitted int64         `json:"tuples_emitted"`
	PagesRead     int64         `json:"pages_read"`
	ScanCycles    int64         `json:"scan_cycles"`
	ScanRetries   int64         `json:"scan_retries,omitempty"`
	FilterOrder   []string      `json:"filter_order"`
	Filters       []FilterStats `json:"filters"`

	// Two-level scan pruning: pages charged away from queries at
	// admission, split by cause (§5 partition pruning vs page-level zone
	// maps), and pages the continuous scan physically skipped because no
	// resident query's zone-map bitmap needed them.
	PagesPrunedPartition int64 `json:"pages_pruned_partition,omitempty"`
	PagesPrunedZonemap   int64 `json:"pages_pruned_zonemap,omitempty"`
	PagesSkippedZonemap  int64 `json:"pages_skipped_zonemap,omitempty"`

	// State is the pipeline's serving state ("healthy" or "failed");
	// FailureCause carries the terminal failure for a failed entry. On
	// the merged entry of a sharded group, State is "failed" only when
	// every shard is down — partial loss shows on the per-shard entries
	// and the top-level Degraded flag.
	State        string `json:"state,omitempty"`
	FailureCause string `json:"failure_cause,omitempty"`

	// Dimension-plane figures: admission runs once per logical query on
	// the shared plane (no ×N growth with -shards), and the plane's
	// dimension stores are shared by every shard, so memory is reported
	// once — on the merged pipeline entry, with per-shard entries zero.
	DimAdmits      int64 `json:"dim_admits,omitempty"`
	DimAdmitMicros int64 `json:"dim_admit_us,omitempty"`
	PlaneBytes     int64 `json:"plane_bytes,omitempty"`
	PlanePeakBytes int64 `json:"plane_peak_bytes,omitempty"`
	PlanePipelines int   `json:"plane_pipelines,omitempty"`

	// Batch-admission and predicate-scan-cache figures (PR 8): hits
	// count dimension predicate scans skipped via the memoized scan
	// cache (or batch-local template reuse), publishes count dimension
	// store COW snapshot publications — the quantity batching amortizes
	// (K queries per batch cost one publication per store instead of K),
	// and batch_admits/batch_queries give the realized batch-size mean.
	PlaneCacheHits    int64 `json:"plane_cache_hits,omitempty"`
	PlaneCacheMisses  int64 `json:"plane_cache_misses,omitempty"`
	PlanePublishes    int64 `json:"plane_snapshot_publishes,omitempty"`
	PlaneBatchAdmits  int64 `json:"plane_batch_admits,omitempty"`
	PlaneBatchQueries int64 `json:"plane_batch_queries,omitempty"`

	// Partitions is the number of §5 range partitions behind this entry:
	// on the merged pipeline entry, the star's partition count; on a
	// per-shard entry of a partition-dealt group, the partitions dealt to
	// that shard. Absent for unpartitioned stars.
	Partitions int `json:"partitions,omitempty"`

	// CollectedAtUnixMillis is when this snapshot's counters were read
	// (server clock). Scrapers divide counter deltas by the difference of
	// two snapshots' collection times to get rates without assuming
	// anything about their own polling jitter.
	CollectedAtUnixMillis int64 `json:"collected_at_unix_ms,omitempty"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeMillis int64 `json:"uptime_ms"`
	Draining     bool  `json:"draining"`
	// Degraded reports that the executor lost shards but keeps serving
	// on the survivors; the per-shard entries carry which and why.
	Degraded  bool           `json:"degraded,omitempty"`
	Pipeline  PipelineStats  `json:"pipeline"`
	Admission AdmissionStats `json:"admission"`
	// Shards breaks Pipeline down per shard when the executor is a
	// sharded group (cjoind -shards > 1); absent on a single pipeline.
	Shards []PipelineStats `json:"shards,omitempty"`
	// Queries counts tracked queries by state.
	Queries map[string]int `json:"queries"`
}

// TraceStage is one lifecycle mark within TraceResponse.
type TraceStage struct {
	// Stage names the lifecycle point: enqueued, admitted, first_page,
	// cycle_complete, delivered.
	Stage string `json:"stage"`
	// OffsetMicros is the mark's offset from the trace start (submit
	// time).
	OffsetMicros int64 `json:"offset_us"`
	// SincePrevMicros is the duration since the previous mark — the time
	// the query spent in that stage of the pipeline.
	SincePrevMicros int64 `json:"since_prev_us"`
}

// TraceResponse is the body of GET /query/{id}/trace: the query's
// lifecycle timeline from submission to delivery.
type TraceResponse struct {
	ID string `json:"id"`
	// StartedAtUnixMillis is the trace's epoch (wall clock at submit).
	StartedAtUnixMillis int64 `json:"started_at_unix_ms"`
	// Stages is the timeline in mark order. A query still in flight shows
	// the marks reached so far.
	Stages []TraceStage `json:"stages"`
	// Complete reports that the delivered mark is present — the timeline
	// covers the query's whole life.
	Complete bool `json:"complete"`
}

// ErrorResponse is the JSON error envelope for non-2xx statuses.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz.
//
//	state "ok"       — 200, every shard serving
//	state "degraded" — 200, shards quarantined, survivors serving
//	state "draining" — 200, graceful shutdown in progress
//	state "failed"   — 503, no serving capacity left
type HealthResponse struct {
	State string `json:"state"`
	// Shards is the per-shard breakdown for sharded executors.
	Shards []ShardHealth `json:"shards,omitempty"`
}

// ShardHealth is one shard's serving state within HealthResponse.
type ShardHealth struct {
	Shard int    `json:"shard"`
	State string `json:"state"` // healthy|failed
	Cause string `json:"cause,omitempty"`
}
