package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"cjoin/internal/catalog"
	"cjoin/internal/dimplane"
	"cjoin/internal/txn"
)

// The write plane (§3.5): POST /update routes snapshot-isolated commits
// through the same txn.Manager that stamps read snapshots in
// handleSubmit, so a query admitted before a commit keeps evaluating at
// its submit-time snapshot while later submissions see the new state.
//
//	op "append"     fact rows land on the heap tail with xmin = commit id;
//	                the tail page has no zone-map synopsis yet, so the
//	                continuous scan conservatively visits it for every
//	                resident query.
//	op "delete"     stamps one fact row's xmax; the widen-only zone-map
//	                bounds update keeps pages needed by older snapshots.
//	op "dim-update" rewrites one dimension cell in place and invalidates
//	                the dimension plane's memoized predicate scans —
//	                in-place updates leave heap geometry unchanged, so
//	                the cache's own epoch/geometry check cannot catch
//	                them.

// planer is implemented by executors that expose their shared dimension
// plane (core.Pipeline, shard.Group); the server depends on the
// interface only.
type planer interface{ Plane() *dimplane.Plane }

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	start := time.Now()
	var (
		snap     txn.Snapshot
		affected int
		err      error
		kind     string
	)
	switch req.Op {
	case "append":
		kind = "append"
		snap, affected, err = s.applyAppend(&req)
	case "delete":
		kind = "delete"
		snap, affected, err = s.applyDelete(&req)
	case "dim-update":
		kind = "dim_update"
		snap, affected, err = s.applyDimUpdate(&req)
	default:
		writeErr(w, http.StatusBadRequest, "unknown op %q (want append, delete or dim-update)", req.Op)
		return
	}
	if err != nil {
		// The commit id was not published (txn.Manager.CommitErr): older
		// snapshots and the next Begin are unaffected.
		s.mCommitErrs.Inc()
		writeErr(w, errStatus(err, http.StatusBadRequest), "%v", err)
		return
	}
	s.mCommits.With(kind).Inc()
	s.mCommitDur.ObserveSince(start)
	writeJSON(w, http.StatusOK, UpdateResponse{Op: req.Op, Snapshot: uint64(snap), RowsAffected: affected})
}

// staticStarError maps "this topology cannot take writes" onto 422: the
// request is well-formed, the deployment (partitioned star, §5) is
// load-then-query by construction.
type staticStarError struct{ msg string }

func (e staticStarError) Error() string   { return e.msg }
func (e staticStarError) HTTPStatus() int { return http.StatusUnprocessableEntity }

func (s *Server) writableFact() (*catalog.Table, error) {
	if s.star.PartCol >= 0 {
		return nil, staticStarError{"partitioned stars are static (load-then-query, §5); fact writes need an unpartitioned deployment"}
	}
	fact := s.star.Fact
	if fact.Hidden < 2 {
		return nil, staticStarError{fmt.Sprintf("fact table %s carries no xmin/xmax system columns; snapshot-isolated writes are unavailable", fact.Name)}
	}
	return fact, nil
}

func (s *Server) applyAppend(req *UpdateRequest) (txn.Snapshot, int, error) {
	fact, err := s.writableFact()
	if err != nil {
		return 0, 0, err
	}
	if len(req.Rows) == 0 {
		return 0, 0, errors.New(`op "append" requires "rows"`)
	}
	visible := fact.VisibleColumns()
	encoded := make([][]int64, 0, len(req.Rows))
	for ri, vals := range req.Rows {
		if len(vals) != len(visible) {
			return 0, 0, fmt.Errorf("row %d: %s has %d columns, got %d values", ri, fact.Name, len(visible), len(vals))
		}
		row := make([]int64, len(fact.Columns))
		for i, v := range vals {
			ci := fact.Hidden + i
			cell, err := encodeCell(fact, ci, v)
			if err != nil {
				return 0, 0, fmt.Errorf("row %d: %w", ri, err)
			}
			row[ci] = cell
		}
		encoded = append(encoded, row)
	}
	// Encoding happens before the commit so an undecodable row publishes
	// nothing; inside the commit the batch is all-or-nothing.
	snap, err := s.txm.CommitErr(func(id uint64) error {
		for _, row := range encoded {
			row[0] = int64(id) // xmin
		}
		fact.Heap.AppendBatch(encoded)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return snap, len(encoded), nil
}

func (s *Server) applyDelete(req *UpdateRequest) (txn.Snapshot, int, error) {
	fact, err := s.writableFact()
	if err != nil {
		return 0, 0, err
	}
	if req.Row == nil {
		return 0, 0, errors.New(`op "delete" requires "row"`)
	}
	idx := *req.Row
	snap, err := s.txm.CommitErr(func(id uint64) error {
		row, err := fact.Heap.RowAt(idx)
		if err != nil {
			return err
		}
		// Overwriting a non-zero xmax with a later commit id would
		// resurrect the row for snapshots between the two deletes.
		if row[1] != 0 {
			return fmt.Errorf("fact row %d already deleted at commit %d", idx, row[1])
		}
		return fact.Heap.UpdateCol(idx, 1, int64(id))
	})
	if err != nil {
		return 0, 0, err
	}
	return snap, 1, nil
}

func (s *Server) applyDimUpdate(req *UpdateRequest) (txn.Snapshot, int, error) {
	if req.Table == "" || req.Column == "" || req.Row == nil {
		return 0, 0, errors.New(`op "dim-update" requires "table", "column" and "row"`)
	}
	di := s.star.DimIndex(req.Table)
	if di < 0 {
		return 0, 0, fmt.Errorf("unknown dimension table %q (fact writes use op append/delete)", req.Table)
	}
	dim := s.star.Dims[di]
	ci := dim.ColIndex(req.Column)
	if ci < 0 {
		return 0, 0, fmt.Errorf("dimension %s has no column %q", dim.Name, req.Column)
	}
	if ci == s.star.KeyCol[di] {
		return 0, 0, fmt.Errorf("column %q is the join key of %s; key updates are not supported", req.Column, dim.Name)
	}
	cell, err := encodeCell(dim, ci, req.Value)
	if err != nil {
		return 0, 0, err
	}
	snap, err := s.txm.CommitErr(func(id uint64) error {
		return dim.Heap.UpdateCol(*req.Row, ci, cell)
	})
	if err != nil {
		return 0, 0, err
	}
	// Republish the dimension state for future admissions: queries already
	// resident keep the bit-vectors their predicates selected at admit
	// time (the COW semantics of §4), queries admitted after this commit
	// must re-scan the updated store rather than hit a stale memoized
	// predicate scan.
	if pe, ok := s.exec.(planer); ok {
		if pl := pe.Plane(); pl != nil {
			pl.InvalidateCache()
			s.mCacheInval.Inc()
		}
	}
	return snap, 1, nil
}

// encodeCell turns one JSON value into the column's stored int64:
// integral numbers for Int columns, dictionary ids for Str columns.
func encodeCell(t *catalog.Table, ci int, v any) (int64, error) {
	name := t.Columns[ci].Name
	switch x := v.(type) {
	case string:
		id, err := t.EncodeStr(ci, x)
		if err != nil {
			return 0, fmt.Errorf("column %s: %w", name, err)
		}
		return id, nil
	case float64: // every JSON number
		if x != math.Trunc(x) || math.Abs(x) >= 1<<53 {
			return 0, fmt.Errorf("column %s: value %v is not an exact integer", name, x)
		}
		if t.Dicts[ci] != nil {
			return 0, fmt.Errorf("column %s is a string column, got number %v", name, x)
		}
		return int64(x), nil
	case int:
		if t.Dicts[ci] != nil {
			return 0, fmt.Errorf("column %s is a string column, got number %v", name, x)
		}
		return int64(x), nil
	case int64:
		if t.Dicts[ci] != nil {
			return 0, fmt.Errorf("column %s is a string column, got number %v", name, x)
		}
		return x, nil
	default:
		return 0, fmt.Errorf("column %s: unsupported value type %T", name, v)
	}
}
