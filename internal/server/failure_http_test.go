package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/server"
	"cjoin/internal/server/client"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// healthExec is a core.Executor stub with a fixed health report — the
// smallest harness for the /healthz state mapping.
type healthExec struct {
	rejectingExec
	h core.Health
}

func (e *healthExec) Health() core.Health { return e.h }

func getHealth(t *testing.T, h http.Handler) (int, server.HealthResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hr server.HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatalf("healthz body %q: %v", rec.Body, err)
	}
	return rec.Code, hr
}

// TestHealthzStateMapping pins the probe contract: ok and degraded stay
// 200 (the tier still serves; load balancers keep routing), total
// capacity loss flips to 503, and the body carries the per-shard
// breakdown with the failure cause.
func TestHealthzStateMapping(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		health   core.Health
		wantCode int
	}{
		{"ok", core.Health{State: "ok", Shards: []core.ShardHealth{
			{Shard: 0, State: core.ShardHealthy}}}, 200},
		{"degraded", core.Health{State: "degraded", Shards: []core.ShardHealth{
			{Shard: 0, State: core.ShardHealthy},
			{Shard: 1, State: core.ShardFailed, Cause: "injected panic"}}}, 200},
		{"failed", core.Health{State: "failed", Shards: []core.ShardHealth{
			{Shard: 0, State: core.ShardFailed, Cause: "injected panic"}}}, 503},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exec := &healthExec{h: tc.health}
			srv := server.New(ds.Star, ds.Txn, exec, server.Config{})
			code, hr := getHealth(t, srv.Handler())
			if code != tc.wantCode || hr.State != tc.health.State {
				t.Fatalf("healthz = %d %q, want %d %q", code, hr.State, tc.wantCode, tc.health.State)
			}
			if len(hr.Shards) != len(tc.health.Shards) {
				t.Fatalf("%d shard entries, want %d", len(hr.Shards), len(tc.health.Shards))
			}
			for i, sh := range tc.health.Shards {
				if hr.Shards[i].State != string(sh.State) || hr.Shards[i].Cause != sh.Cause {
					t.Fatalf("shard %d health %+v, want %+v", i, hr.Shards[i], sh)
				}
			}
			// /stats carries the same signal for scrapers.
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
			var st server.StatsResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.Degraded != (tc.health.State == "degraded") {
				t.Fatalf("stats degraded = %v under health %q", st.Degraded, tc.health.State)
			}
		})
	}
}

// TestShardFailureIs503WithRetryAfter drives the serving tier's typed
// shard failure to the HTTP surface: the result endpoint answers 503
// with a Retry-After hint, and the typed client reports it retryable.
func TestShardFailureIs503WithRetryAfter(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	typed := &shard.ShardFailedError{Shard: 1, Cause: errors.New("injected shard loss")}
	srv := server.New(ds.Star, ds.Txn, &rejectingExec{err: typed}, server.Config{
		Admission: admission.Config{MaxQueue: 8},
	})
	t.Cleanup(func() { _ = srv.Drain(context.Background()) })
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL)
	ctx := context.Background()
	q, err := cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatalf("submit (async dispatch) rejected: %v", err)
	}
	_, err = q.Result(ctx)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("result error %v, want *client.APIError", err)
	}
	if apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", apiErr.StatusCode)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Fatalf("shard failure not marked retryable: %+v", apiErr)
	}
	if !strings.Contains(apiErr.Message, "shard 1") {
		t.Fatalf("message %q does not name the failed shard", apiErr.Message)
	}
}

// TestQueueDeadlineExpiryIs429 pins the backpressure half of the typed
// error matrix: a query whose queue wait expires gets 429 + Retry-After
// — retryable, and deliberately distinct from the 503 a degraded or
// draining tier returns.
func TestQueueDeadlineExpiryIs429(t *testing.T) {
	// ~25 MB/s over ~600 KB of fact pages with one slot: the blocker
	// holds the pipeline far beyond the impatient query's deadline.
	env := startServer(t, 4000, 1, disk.Config{SeqBytesPerSec: 25 << 20},
		admission.Config{MaxQueue: 16})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	blocker, err := env.cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatal(err)
	}
	impatient, err := env.cl.SubmitOpts(ctx, "SELECT COUNT(*) AS n FROM lineorder",
		client.SubmitOptions{MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = impatient.Result(ctx)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("expired result error %v, want *client.APIError", err)
	}
	if apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", apiErr.StatusCode)
	}
	if !apiErr.IsRetryable() || apiErr.RetryAfter <= 0 {
		t.Fatalf("expiry not marked retryable: %+v", apiErr)
	}
	if res, err := blocker.Result(ctx); err != nil || res.Error != "" {
		t.Fatalf("blocker: err=%v res=%+v", err, res)
	}
}

// TestSubmitRetryBacksOff exercises the client's jittered-backoff loop:
// two 429 rejections, then acceptance — the caller sees one successful
// handle; a non-retryable 400 short-circuits immediately.
func TestSubmitRetryBacksOff(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts <= 2 {
			// No Retry-After: a 429 alone is retryable, and the policy's
			// own backoff (not the server floor) governs — keeps the test
			// at milliseconds.
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "admission queue full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(server.QueryStatus{ID: "q-000001", State: "queued"})
	}))
	t.Cleanup(ts.Close)

	cl := client.New(ts.URL)
	q, err := cl.SubmitRetry(context.Background(), "SELECT COUNT(*) AS n FROM lineorder",
		client.SubmitOptions{}, client.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("SubmitRetry: %v", err)
	}
	if q.ID != "q-000001" || attempts != 3 {
		t.Fatalf("id=%s attempts=%d", q.ID, attempts)
	}

	attempts = 0
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(server.ErrorResponse{Error: "parse error"})
	}))
	t.Cleanup(bad.Close)
	if _, err := client.New(bad.URL).SubmitRetry(context.Background(), "nonsense",
		client.SubmitOptions{}, client.RetryPolicy{BaseBackoff: time.Millisecond}); err == nil || attempts != 1 {
		t.Fatalf("non-retryable 400: err=%v attempts=%d (want 1 attempt)", err, attempts)
	}
}
