// Package client is the typed Go client for the cjoind HTTP API
// (internal/server). It mirrors the in-process API shape: Submit returns
// a Query handle with Status, Result (blocking), and Cancel.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cjoin/internal/server"
)

// Client talks to one cjoind server.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8077").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint, zero when the
	// response carried none.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cjoind: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsOverload reports whether the error is a 429 queue-full rejection.
func (e *APIError) IsOverload() bool { return e.StatusCode == http.StatusTooManyRequests }

// IsRetryable reports whether the failure is worth retrying after
// backoff: the server either said so explicitly (Retry-After — queue
// full, queue-wait expiry, quarantined shard) or answered 503 while
// degraded/draining.
func (e *APIError) IsRetryable() bool {
	return e.RetryAfter > 0 ||
		e.StatusCode == http.StatusTooManyRequests ||
		e.StatusCode == http.StatusServiceUnavailable
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}

func decodeErr(resp *http.Response) error {
	var er server.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
		msg = er.Error
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// SubmitOptions customizes one submission.
type SubmitOptions struct {
	// Client attributes the query in the server's fairness accounting.
	Client string
	// MaxWait bounds the admission-queue wait; negative disables the
	// server default.
	MaxWait time.Duration
}

// Query is a handle to one submitted query.
type Query struct {
	c *Client
	// ID is the server-assigned query id.
	ID string
	// Initial is the status returned at submission time.
	Initial server.QueryStatus
}

// Submit sends sql to the server and returns immediately with a handle;
// under overload the query queues server-side.
func (c *Client) Submit(ctx context.Context, sql string) (*Query, error) {
	return c.SubmitOpts(ctx, sql, SubmitOptions{})
}

// SubmitOpts is Submit with options.
func (c *Client) SubmitOpts(ctx context.Context, sql string, opts SubmitOptions) (*Query, error) {
	req := server.SubmitRequest{
		SQL:           sql,
		Client:        opts.Client,
		MaxWaitMillis: opts.MaxWait.Milliseconds(),
	}
	// Keep sub-millisecond intents intact on the millisecond wire field:
	// any negative duration means "disable the server default" and any
	// tiny positive one must not collapse to 0 ("use the default").
	if opts.MaxWait < 0 {
		req.MaxWaitMillis = -1
	} else if opts.MaxWait > 0 && req.MaxWaitMillis == 0 {
		req.MaxWaitMillis = 1
	}
	var st server.QueryStatus
	if err := c.do(ctx, http.MethodPost, "/query", req, &st); err != nil {
		return nil, err
	}
	return &Query{c: c, ID: st.ID, Initial: st}, nil
}

// RetryPolicy shapes SubmitRetry's backoff. The zero value takes the
// defaults noted on each field.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first submission included).
	// Default 4.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep. Default 5s.
	MaxBackoff time.Duration
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	return p
}

// backoff returns the jittered sleep before retry number attempt
// (0-based), honoring the server's Retry-After hint as a floor when it
// is larger than the computed backoff. Full jitter in [d/2, d): N
// clients retrying a lost shard's queries must not re-arrive in
// lockstep.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	d := p.BaseBackoff << attempt
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	if hint > d {
		d = hint
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// SubmitRetry is Submit with jittered-backoff retry on retryable
// failures (429 backpressure, 503 degraded serving tier): the paper's
// serving story under faults — a transient rejection is the client's
// cue to back off, not an error to surface. Non-retryable errors and
// context expiry return immediately.
func (c *Client) SubmitRetry(ctx context.Context, sql string, opts SubmitOptions, pol RetryPolicy) (*Query, error) {
	pol = pol.normalized()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		q, err := c.SubmitOpts(ctx, sql, opts)
		if err == nil {
			return q, nil
		}
		lastErr = err
		apiErr, ok := err.(*APIError)
		if !ok || !apiErr.IsRetryable() {
			return nil, err
		}
		timer := time.NewTimer(pol.backoff(attempt, apiErr.RetryAfter))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// Update sends one snapshot-isolated write commit (POST /update) and
// returns the published commit snapshot. A failed commit surfaces as an
// *APIError and publishes no snapshot server-side.
func (c *Client) Update(ctx context.Context, req server.UpdateRequest) (server.UpdateResponse, error) {
	var res server.UpdateResponse
	err := c.do(ctx, http.MethodPost, "/update", req, &res)
	return res, err
}

// AppendFacts commits fact rows (visible columns only) in one
// transaction and returns the snapshot at which they become visible.
func (c *Client) AppendFacts(ctx context.Context, rows [][]any) (server.UpdateResponse, error) {
	return c.Update(ctx, server.UpdateRequest{Op: "append", Rows: rows})
}

// DeleteFact marks the fact row at index idx deleted.
func (c *Client) DeleteFact(ctx context.Context, idx int64) (server.UpdateResponse, error) {
	return c.Update(ctx, server.UpdateRequest{Op: "delete", Row: &idx})
}

// UpdateDimension rewrites one dimension cell; queries admitted after
// the returned snapshot see the new value.
func (c *Client) UpdateDimension(ctx context.Context, table, column string, row int64, value any) (server.UpdateResponse, error) {
	return c.Update(ctx, server.UpdateRequest{Op: "dim-update", Table: table, Column: column, Row: &row, Value: value})
}

// Health fetches the serving state: "ok", "degraded" (with the
// per-shard breakdown), "draining", or "failed". A 503 still decodes
// the body — "failed" is a state report, not a transport error.
func (c *Client) Health(ctx context.Context) (server.HealthResponse, error) {
	var h server.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// Status fetches the query's live status: state, queue position,
// progress, ETA, pages scanned.
func (q *Query) Status(ctx context.Context) (server.QueryStatus, error) {
	var st server.QueryStatus
	err := q.c.do(ctx, http.MethodGet, "/query/"+q.ID, nil, &st)
	return st, err
}

// Result blocks until the query completes and returns its decoded rows.
// Numeric cells decode as json.Number; dictionary columns as string. A
// query that failed, expired, or was canceled returns a ResultResponse
// with Error set and no rows (err stays nil — the HTTP exchange worked).
func (q *Query) Result(ctx context.Context) (server.ResultResponse, error) {
	var res server.ResultResponse
	err := q.c.do(ctx, http.MethodGet, "/query/"+q.ID+"/result", nil, &res)
	return res, err
}

// Cancel abandons the query; it reports whether this call canceled it.
func (q *Query) Cancel(ctx context.Context) (bool, error) {
	var res server.CancelResponse
	if err := q.c.do(ctx, http.MethodDelete, "/query/"+q.ID, nil, &res); err != nil {
		return false, err
	}
	return res.Canceled, nil
}

// Trace fetches the query's lifecycle timeline
// (GET /query/{id}/trace): stage marks from submission to delivery with
// per-stage durations.
func (q *Query) Trace(ctx context.Context) (server.TraceResponse, error) {
	var tr server.TraceResponse
	err := q.c.do(ctx, http.MethodGet, "/query/"+q.ID+"/trace", nil, &tr)
	return tr, err
}

// Stats fetches pipeline and admission statistics.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var st server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Metrics fetches the raw Prometheus text exposition from GET /metrics.
// The server answers 404 when it was built without a telemetry registry;
// that surfaces as an *APIError.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", decodeErr(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

// Exec is the convenience loop: submit and block for the result. A
// server-side query failure is surfaced as an error.
func (c *Client) Exec(ctx context.Context, sql string) (server.ResultResponse, error) {
	q, err := c.Submit(ctx, sql)
	if err != nil {
		return server.ResultResponse{}, err
	}
	res, err := q.Result(ctx)
	if err != nil {
		return res, err
	}
	if res.Error != "" {
		return res, fmt.Errorf("cjoind: query %s %s: %s", q.ID, res.State, res.Error)
	}
	return res, nil
}
