// Package client is the typed Go client for the cjoind HTTP API
// (internal/server). It mirrors the in-process API shape: Submit returns
// a Query handle with Status, Result (blocking), and Cancel.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cjoin/internal/server"
)

// Client talks to one cjoind server.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8077").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the server.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("cjoind: %s (HTTP %d)", e.Message, e.StatusCode)
}

// IsOverload reports whether the error is a 429 queue-full rejection.
func (e *APIError) IsOverload() bool { return e.StatusCode == http.StatusTooManyRequests }

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}

func decodeErr(resp *http.Response) error {
	var er server.ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
		msg = er.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// SubmitOptions customizes one submission.
type SubmitOptions struct {
	// Client attributes the query in the server's fairness accounting.
	Client string
	// MaxWait bounds the admission-queue wait; negative disables the
	// server default.
	MaxWait time.Duration
}

// Query is a handle to one submitted query.
type Query struct {
	c *Client
	// ID is the server-assigned query id.
	ID string
	// Initial is the status returned at submission time.
	Initial server.QueryStatus
}

// Submit sends sql to the server and returns immediately with a handle;
// under overload the query queues server-side.
func (c *Client) Submit(ctx context.Context, sql string) (*Query, error) {
	return c.SubmitOpts(ctx, sql, SubmitOptions{})
}

// SubmitOpts is Submit with options.
func (c *Client) SubmitOpts(ctx context.Context, sql string, opts SubmitOptions) (*Query, error) {
	req := server.SubmitRequest{
		SQL:           sql,
		Client:        opts.Client,
		MaxWaitMillis: opts.MaxWait.Milliseconds(),
	}
	// Keep sub-millisecond intents intact on the millisecond wire field:
	// any negative duration means "disable the server default" and any
	// tiny positive one must not collapse to 0 ("use the default").
	if opts.MaxWait < 0 {
		req.MaxWaitMillis = -1
	} else if opts.MaxWait > 0 && req.MaxWaitMillis == 0 {
		req.MaxWaitMillis = 1
	}
	var st server.QueryStatus
	if err := c.do(ctx, http.MethodPost, "/query", req, &st); err != nil {
		return nil, err
	}
	return &Query{c: c, ID: st.ID, Initial: st}, nil
}

// Status fetches the query's live status: state, queue position,
// progress, ETA, pages scanned.
func (q *Query) Status(ctx context.Context) (server.QueryStatus, error) {
	var st server.QueryStatus
	err := q.c.do(ctx, http.MethodGet, "/query/"+q.ID, nil, &st)
	return st, err
}

// Result blocks until the query completes and returns its decoded rows.
// Numeric cells decode as json.Number; dictionary columns as string. A
// query that failed, expired, or was canceled returns a ResultResponse
// with Error set and no rows (err stays nil — the HTTP exchange worked).
func (q *Query) Result(ctx context.Context) (server.ResultResponse, error) {
	var res server.ResultResponse
	err := q.c.do(ctx, http.MethodGet, "/query/"+q.ID+"/result", nil, &res)
	return res, err
}

// Cancel abandons the query; it reports whether this call canceled it.
func (q *Query) Cancel(ctx context.Context) (bool, error) {
	var res server.CancelResponse
	if err := q.c.do(ctx, http.MethodDelete, "/query/"+q.ID, nil, &res); err != nil {
		return false, err
	}
	return res.Canceled, nil
}

// Stats fetches pipeline and admission statistics.
func (c *Client) Stats(ctx context.Context) (server.StatsResponse, error) {
	var st server.StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Healthy reports whether /healthz answers 200.
func (c *Client) Healthy(ctx context.Context) bool {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil) == nil
}

// Exec is the convenience loop: submit and block for the result. A
// server-side query failure is surfaced as an error.
func (c *Client) Exec(ctx context.Context, sql string) (server.ResultResponse, error) {
	q, err := c.Submit(ctx, sql)
	if err != nil {
		return server.ResultResponse{}, err
	}
	res, err := q.Result(ctx)
	if err != nil {
		return res, err
	}
	if res.Error != "" {
		return res, fmt.Errorf("cjoind: query %s %s: %s", q.ID, res.State, res.Error)
	}
	return res, nil
}
