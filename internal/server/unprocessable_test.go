package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/server"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// rejectingExec is a core.Executor stub whose every submission fails
// with a fixed error — the smallest harness that drives an executor
// error through the admission queue to the HTTP surface.
type rejectingExec struct{ err error }

func (e *rejectingExec) Submit(*query.Bound) (core.Handle, error) { return nil, e.err }
func (e *rejectingExec) SubmitCtx(context.Context, *query.Bound) (core.Handle, error) {
	return nil, e.err
}
func (e *rejectingExec) MaxConcurrent() int { return 4 }
func (e *rejectingExec) ActiveQueries() int { return 0 }
func (e *rejectingExec) Stats() core.Stats  { return core.Stats{} }
func (e *rejectingExec) Quiesce()           {}
func (e *rejectingExec) Stop()              {}

// TestUnprocessableQueryIs422 verifies the typed-error contract: an
// executor error that knows its HTTP status (shard.RangePartitionedError
// → 422 Unprocessable Entity) reaches the client with that status and a
// clear message, instead of a generic 200-with-error or 500. Admission
// dispatch is asynchronous, so the mapping happens at the result
// endpoint.
func TestUnprocessableQueryIs422(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	typed := &shard.RangePartitionedError{Shards: 4, Partitions: 8}
	srv := server.New(ds.Star, ds.Txn, &rejectingExec{err: typed}, server.Config{
		Admission: admission.Config{MaxQueue: 8},
	})
	t.Cleanup(func() { _ = srv.Drain(context.Background()) })
	h := srv.Handler()

	body := strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM lineorder"}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", body))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var st server.QueryStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query/"+st.ID+"/result?timeout=5s", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("result status %d, want 422: %s", rec.Code, rec.Body)
	}
	var res server.ResultResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, "range-partitioned") {
		t.Fatalf("error message not surfaced: %q", res.Error)
	}
}

// TestStatsExposePlaneFigures verifies /stats reports the shared
// dimension plane once: admission count and wall time plus resident
// bytes on the merged pipeline entry, with per-shard entries zero (the
// stores are shared, not replicated ×N).
func TestStatsExposePlaneFigures(t *testing.T) {
	env := startServerSharded(t, 600, 4, 4, disk.Config{}, admission.Config{})
	ctx := context.Background()
	q, err := env.cl.Submit(ctx, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year")
	if err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := q.Result(rctx); err != nil {
		t.Fatal(err)
	}
	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p := st.Pipeline
	if p.DimAdmits < 1 || p.DimAdmitMicros <= 0 {
		t.Fatalf("plane admission not reported: admits=%d us=%d", p.DimAdmits, p.DimAdmitMicros)
	}
	if p.PlanePipelines != 4 {
		t.Fatalf("plane_pipelines = %d, want 4", p.PlanePipelines)
	}
	if p.PlanePeakBytes <= 0 {
		t.Fatalf("plane_peak_bytes = %d, want > 0", p.PlanePeakBytes)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("%d shard entries", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.DimAdmits != 0 || sh.PlaneBytes != 0 || sh.PlanePipelines != 0 {
			t.Fatalf("shard %d duplicates plane figures: %+v", i, sh)
		}
	}
}
