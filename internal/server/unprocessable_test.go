package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/server"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

// rejectingExec is a core.Executor stub whose every submission fails
// with a fixed error — the smallest harness that drives an executor
// error through the admission queue to the HTTP surface.
type rejectingExec struct{ err error }

func (e *rejectingExec) Submit(*query.Bound) (core.Handle, error) { return nil, e.err }
func (e *rejectingExec) SubmitCtx(context.Context, *query.Bound) (core.Handle, error) {
	return nil, e.err
}
func (e *rejectingExec) MaxConcurrent() int { return 4 }
func (e *rejectingExec) ActiveQueries() int { return 0 }
func (e *rejectingExec) Stats() core.Stats  { return core.Stats{} }
func (e *rejectingExec) Quiesce()           {}
func (e *rejectingExec) Stop()              {}

// TestUnprocessableQueryIs422 verifies the typed-error contract: an
// executor error that knows its HTTP status (shard.RangePartitionedError
// → 422 Unprocessable Entity) reaches the client with that status and a
// clear message, instead of a generic 200-with-error or 500. Admission
// dispatch is asynchronous, so the mapping happens at the result
// endpoint. Since partition dealing landed, the error itself only arises
// for the degenerate shards > partitions topology (normally caught at
// group construction); the stub keeps the HTTP mapping pinned
// independent of which layer raises it.
func TestUnprocessableQueryIs422(t *testing.T) {
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	typed := &shard.RangePartitionedError{Shards: 8, Partitions: 4}
	srv := server.New(ds.Star, ds.Txn, &rejectingExec{err: typed}, server.Config{
		Admission: admission.Config{MaxQueue: 8},
	})
	t.Cleanup(func() { _ = srv.Drain(context.Background()) })
	h := srv.Handler()

	body := strings.NewReader(`{"sql":"SELECT COUNT(*) AS n FROM lineorder"}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/query", body))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body)
	}
	var st server.QueryStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query/"+st.ID+"/result?timeout=5s", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("result status %d, want 422: %s", rec.Code, rec.Body)
	}
	var res server.ResultResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Error, "range-partitioned") {
		t.Fatalf("error message not surfaced: %q", res.Error)
	}
}

// TestPartitionedShardedEndToEnd verifies the topology the 422 used to
// forbid now works over the full HTTP stack: a range-partitioned star
// under -shards 2 accepts submits, prunes (a narrow date window charges
// fewer pages than the full table, observable through /query/{id}),
// returns reference-exact rows, and /stats reports the partition deal —
// the star's partition count on the merged entry, each shard's dealt
// share on the per-shard entries.
func TestPartitionedShardedEndToEnd(t *testing.T) {
	const parts, shards = 4, 2
	env := startServerSharded(t, 2400, 8, shards, parts, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	keys := env.ds.DateKeys
	sqls := []string{
		fmt.Sprintf("SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d GROUP BY d_year ORDER BY d_year",
			keys[0], keys[len(keys)/8]),
		"SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year ORDER BY d_year",
	}
	pages := make([]int64, len(sqls))
	for i, sqlText := range sqls {
		q, err := env.cl.Submit(ctx, sqlText)
		if err != nil {
			t.Fatalf("partitioned submit %d rejected: %v", i, err)
		}
		res, err := q.Result(ctx)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Error != "" || res.State != "done" {
			t.Fatalf("query %d failed: state=%s err=%s", i, res.State, res.Error)
		}
		b, err := query.ParseBind(sqlText, env.ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := renderRows(server.DecodeResults(b, want))
		gotRows := renderRows(res.Rows)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("query %d: %d rows, reference %d", i, len(gotRows), len(wantRows))
		}
		for r := range gotRows {
			if gotRows[r] != wantRows[r] {
				t.Fatalf("query %d row %d:\n got %s\nwant %s", i, r, gotRows[r], wantRows[r])
			}
		}
		st, err := q.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = st.PagesScanned
	}
	if pages[0] <= 0 || pages[0]*2 >= pages[1] {
		t.Fatalf("pruning not visible through the API: narrow=%d pages, wide=%d", pages[0], pages[1])
	}

	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pipeline.Partitions != parts {
		t.Fatalf("merged partitions = %d, want %d", st.Pipeline.Partitions, parts)
	}
	if len(st.Shards) != shards {
		t.Fatalf("%d shard entries", len(st.Shards))
	}
	dealt := 0
	for i, sh := range st.Shards {
		if sh.Partitions < 1 {
			t.Fatalf("shard %d reports %d partitions", i, sh.Partitions)
		}
		dealt += sh.Partitions
	}
	if dealt != parts {
		t.Fatalf("per-shard partitions sum to %d, want %d", dealt, parts)
	}
}

// TestStatsExposePlaneFigures verifies /stats reports the shared
// dimension plane once: admission count and wall time plus resident
// bytes on the merged pipeline entry, with per-shard entries zero (the
// stores are shared, not replicated ×N).
func TestStatsExposePlaneFigures(t *testing.T) {
	env := startServerSharded(t, 600, 4, 4, 0, disk.Config{}, admission.Config{})
	ctx := context.Background()
	q, err := env.cl.Submit(ctx, "SELECT SUM(lo_revenue) AS rev, d_year FROM lineorder, date WHERE lo_orderdate = d_datekey GROUP BY d_year")
	if err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := q.Result(rctx); err != nil {
		t.Fatal(err)
	}
	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p := st.Pipeline
	if p.DimAdmits < 1 || p.DimAdmitMicros <= 0 {
		t.Fatalf("plane admission not reported: admits=%d us=%d", p.DimAdmits, p.DimAdmitMicros)
	}
	if p.PlanePipelines != 4 {
		t.Fatalf("plane_pipelines = %d, want 4", p.PlanePipelines)
	}
	if p.PlanePeakBytes <= 0 {
		t.Fatalf("plane_peak_bytes = %d, want > 0", p.PlanePeakBytes)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("%d shard entries", len(st.Shards))
	}
	for i, sh := range st.Shards {
		if sh.DimAdmits != 0 || sh.PlaneBytes != 0 || sh.PlanePipelines != 0 {
			t.Fatalf("shard %d duplicates plane figures: %+v", i, sh)
		}
	}
}
