package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/obs"
	"cjoin/internal/query"
	"cjoin/internal/ref"
	"cjoin/internal/server"
	"cjoin/internal/server/client"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

type testEnv struct {
	ds   *ssb.Dataset
	exec core.Executor
	srv  *server.Server
	ts   *httptest.Server
	cl   *client.Client
	reg  *obs.Registry
}

func startServer(t testing.TB, rows, maxConc int, dc disk.Config, acfg admission.Config, tweaks ...func(*core.Config)) *testEnv {
	return startServerSharded(t, rows, maxConc, 1, 0, dc, acfg, tweaks...)
}

// startServerSharded runs the service layer over a sharded execution
// tier (shards = 1 degenerates to the single pipeline) — the same wiring
// cjoind -shards uses. parts > 1 range-partitions the fact table, so the
// group deals whole partitions instead of striding pages.
func startServerSharded(t testing.TB, rows, maxConc, shards, parts int, dc disk.Config, acfg admission.Config, tweaks ...func(*core.Config)) *testEnv {
	t.Helper()
	ds, err := ssb.Generate(ssb.Config{SF: 1, FactRowsPerSF: rows, Seed: 11, Partitions: parts, Disk: dc})
	if err != nil {
		t.Fatal(err)
	}
	// Every server test runs with the telemetry plane on — the cjoind
	// default — so the instrumented hot paths are what the suite covers.
	reg := obs.NewRegistry()
	ccfg := core.Config{MaxConcurrent: maxConc, Workers: 2}
	for _, tw := range tweaks {
		tw(&ccfg)
	}
	var exec core.Executor
	if shards > 1 {
		g, err := shard.New(ds.Star, shard.Config{Shards: shards, Core: ccfg, Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		t.Cleanup(g.Stop)
		exec = g
	} else {
		ccfg.Obs = reg
		pipe, err := core.NewPipeline(ds.Star, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		pipe.Start()
		t.Cleanup(pipe.Stop)
		exec = pipe
	}
	srv := server.New(ds.Star, ds.Txn, exec, server.Config{Admission: acfg, Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{ds: ds, exec: exec, srv: srv, ts: ts, cl: client.New(ts.URL), reg: reg}
}

func workloadSQL(t testing.TB, ds *ssb.Dataset, n int) []string {
	t.Helper()
	w := ssb.NewWorkload(ds, 0.1, 5)
	out := make([]string, n)
	for i := range out {
		_, out[i] = w.Next()
	}
	return out
}

// renderRows normalizes decoded rows (server-side [][]any with
// int64/float64/string vs client-side json.Number/string) to strings for
// comparison.
func renderRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		line := ""
		for _, cell := range row {
			line += fmt.Sprintf("|%v", cell)
		}
		out[i] = line
	}
	return out
}

// TestEndToEndOverload is the PR's acceptance scenario: more queries than
// maxConc through the HTTP client; none rejected, every result equal to a
// direct in-process execution, monotone progress with a finite ETA, and
// cancellation of both a queued and a running query freeing their slots.
func TestEndToEndOverload(t *testing.T) {
	const maxConc = 4
	// ~20 MB/s over ~170 KB of fact pages: a scan cycle takes ~10 ms,
	// slow enough to observe progress, fast enough for CI.
	// Zone maps off (PR 9): the narrow workload windows would otherwise
	// prune the scan down to a couple of pages and queries would finish
	// before their queued and mid-flight states can be observed over
	// HTTP. This test pins serving-tier observability on full scans;
	// pruned charges have their own end-to-end tests.
	env := startServer(t, 1200, maxConc, disk.Config{SeqBytesPerSec: 20 << 20}, admission.Config{MaxQueue: 64},
		func(c *core.Config) { c.DisableZoneMaps = true })
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// (a) 3x maxConc queries: all accepted, all correct.
	sqls := workloadSQL(t, env.ds, 3*maxConc)
	queries := make([]*client.Query, len(sqls))
	for i, sqlText := range sqls {
		q, err := env.cl.Submit(ctx, sqlText)
		if err != nil {
			t.Fatalf("submit %d rejected: %v", i, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Result(ctx)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Error != "" {
			t.Fatalf("query %d (%s) failed: %s", i, q.ID, res.Error)
		}
		b, err := query.ParseBind(sqls[i], env.ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := renderRows(server.DecodeResults(b, want))
		gotRows := renderRows(res.Rows)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("query %d: %d rows, reference %d", i, len(gotRows), len(wantRows))
		}
		for r := range gotRows {
			if gotRows[r] != wantRows[r] {
				t.Fatalf("query %d row %d:\n got %s\nwant %s", i, r, gotRows[r], wantRows[r])
			}
		}
	}
	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rejected != 0 || st.Admission.Completed < int64(len(sqls)) {
		t.Fatalf("admission stats: %+v", st.Admission)
	}
	if st.Admission.MaxDepth == 0 {
		t.Fatal("expected queueing at 3x capacity")
	}

	// (b) Progress is monotone non-decreasing with a finite ETA mid-scan.
	long, err := env.cl.Submit(ctx, sqls[0])
	if err != nil {
		t.Fatal(err)
	}
	var lastProgress float64
	var sawMid, sawETA bool
	for {
		qs, err := long.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if qs.Progress < lastProgress {
			t.Fatalf("progress went backwards: %v -> %v", lastProgress, qs.Progress)
		}
		lastProgress = qs.Progress
		if qs.Progress > 0 && qs.Progress < 1 {
			sawMid = true
			if qs.ETAKnown {
				if qs.ETAMillis < 0 {
					t.Fatalf("negative ETA %d", qs.ETAMillis)
				}
				sawETA = true
			}
		}
		if qs.State == admission.StateDone.String() {
			if qs.Progress != 1 || !qs.ETAKnown || qs.ETAMillis != 0 {
				t.Fatalf("done status: %+v", qs)
			}
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !sawMid || !sawETA {
		t.Fatalf("never observed mid-flight progress with a finite ETA (sawMid=%v sawETA=%v)", sawMid, sawETA)
	}

	// (c) DELETE a queued and a running query; both slots come back.
	fill := make([]*client.Query, maxConc)
	for i := range fill {
		if fill[i], err = env.cl.Submit(ctx, sqls[i]); err != nil {
			t.Fatal(err)
		}
	}
	queued, err := env.cl.Submit(ctx, sqls[4])
	if err != nil {
		t.Fatal(err)
	}
	qs, err := queued.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if qs.State != admission.StateQueued.String() {
		t.Logf("note: expected queued, got %s (scan may have finished already)", qs.State)
	}
	if ok, err := queued.Cancel(ctx); err != nil || !ok {
		t.Fatalf("cancel queued: ok=%v err=%v", ok, err)
	}
	// Find a still-running query among the fillers and cancel it.
	var canceledRunning bool
	for _, q := range fill {
		s, err := q.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == admission.StateRunning.String() {
			ok, err := q.Cancel(ctx)
			if err != nil {
				t.Fatal(err)
			}
			canceledRunning = ok
			break
		}
	}
	if !canceledRunning {
		t.Log("note: no filler still running to cancel (fast scan); slot-reuse still checked below")
	}
	qs, err = queued.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if qs.State != admission.StateCanceled.String() {
		t.Fatalf("canceled queued query state %s", qs.State)
	}
	if res, err := queued.Result(ctx); err != nil || res.Error == "" {
		t.Fatalf("canceled result: err=%v res=%+v", err, res)
	}

	// Slots must be reusable: run a full batch of maxConc queries to
	// completion.
	for i := 0; i < maxConc; i++ {
		if _, err := env.cl.Exec(ctx, sqls[i]); err != nil {
			t.Fatalf("post-cancel exec %d: %v", i, err)
		}
	}
	for _, q := range fill {
		if res, err := q.Result(ctx); err != nil {
			t.Fatal(err)
		} else if res.Error != "" && res.State != admission.StateCanceled.String() {
			t.Fatalf("filler failed: %+v", res)
		}
	}
	st, err = env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Canceled == 0 {
		t.Fatalf("no cancellations recorded: %+v", st.Admission)
	}
}

func TestSubmitErrors(t *testing.T) {
	env := startServer(t, 300, 2, disk.Config{}, admission.Config{})
	ctx := context.Background()

	if _, err := env.cl.Submit(ctx, "SELEC nonsense"); err == nil {
		t.Fatal("bad SQL accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("bad SQL error: %v", err)
	}
	if _, err := env.cl.Submit(ctx, "SELECT COUNT(*) FROM nosuch"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestUnknownQueryIs404(t *testing.T) {
	env := startServer(t, 300, 2, disk.Config{}, admission.Config{})
	ctx := context.Background()
	real, err := env.cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatal(err)
	}
	real.ID = "q-999999"
	if _, err := real.Status(ctx); err == nil {
		t.Fatal("unknown id accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 404 {
		t.Fatalf("unknown id error: %v", err)
	}
}

// TestLimitClause exercises the SQL LIMIT path over the wire.
func TestLimitClause(t *testing.T) {
	env := startServer(t, 500, 2, disk.Config{}, admission.Config{})
	ctx := context.Background()
	full, err := env.cl.Exec(ctx, `SELECT SUM(lo_revenue) AS rev, d_year
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year ORDER BY d_year`)
	if err != nil {
		t.Fatal(err)
	}
	if full.RowCount < 3 {
		t.Skipf("dataset produced only %d groups", full.RowCount)
	}
	limited, err := env.cl.Exec(ctx, `SELECT SUM(lo_revenue) AS rev, d_year
		FROM lineorder, date
		WHERE lo_orderdate = d_datekey
		GROUP BY d_year ORDER BY d_year LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if limited.RowCount != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", limited.RowCount)
	}
	if fmt.Sprint(limited.Rows[0]) != fmt.Sprint(full.Rows[0]) {
		t.Fatalf("limited prefix diverges: %v vs %v", limited.Rows[0], full.Rows[0])
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	env := startServer(t, 600, 2, disk.Config{}, admission.Config{})
	ctx := context.Background()

	q, err := env.cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := env.srv.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	// In-flight work completed.
	res, err := q.Result(ctx)
	if err != nil || res.Error != "" {
		t.Fatalf("drained query: err=%v res=%+v", err, res)
	}
	// New work refused.
	if _, err := env.cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder"); err == nil {
		t.Fatal("submit during drain accepted")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 503 {
		t.Fatalf("drain error: %v", err)
	}
	if !env.cl.Healthy(ctx) {
		t.Fatal("healthz failed")
	}
	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("stats does not report draining")
	}
}

// TestEndToEndShardedOverload is the shard-enabled acceptance scenario:
// cjoind's -shards wiring (4 fact-partitioned pipelines behind one
// admission queue and HTTP API) under 3x-capacity offered load. Nothing
// may be rejected, every result must equal a direct in-process reference
// execution, /stats must expose per-shard pipeline counters without
// racing startup or drain, and the drain must complete cleanly.
func TestEndToEndShardedOverload(t *testing.T) {
	const maxConc, shards = 4, 4
	env := startServerSharded(t, 1600, maxConc, shards, 0, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Hammer /stats concurrently with submissions and the final drain —
	// the snapshot-discipline regression check.
	statsDone := make(chan struct{})
	statsStop := make(chan struct{})
	go func() {
		defer close(statsDone)
		for {
			select {
			case <-statsStop:
				return
			default:
				if _, err := env.cl.Stats(ctx); err != nil {
					t.Errorf("stats during load: %v", err)
					return
				}
			}
		}
	}()

	sqls := workloadSQL(t, env.ds, 3*maxConc)
	queries := make([]*client.Query, len(sqls))
	for i, sqlText := range sqls {
		q, err := env.cl.Submit(ctx, sqlText)
		if err != nil {
			t.Fatalf("submit %d rejected: %v", i, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Result(ctx)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Error != "" {
			t.Fatalf("query %d failed: %s", i, res.Error)
		}
		b, err := query.ParseBind(sqls[i], env.ds.Star)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Execute(b)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := renderRows(server.DecodeResults(b, want))
		gotRows := renderRows(res.Rows)
		if len(gotRows) != len(wantRows) {
			t.Fatalf("query %d: %d rows, reference %d", i, len(gotRows), len(wantRows))
		}
		for r := range gotRows {
			if gotRows[r] != wantRows[r] {
				t.Fatalf("query %d row %d:\n got %s\nwant %s", i, r, gotRows[r], wantRows[r])
			}
		}
	}

	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rejected != 0 || st.Admission.Completed < int64(len(sqls)) {
		t.Fatalf("admission stats: %+v", st.Admission)
	}
	if len(st.Shards) != shards {
		t.Fatalf("/stats reports %d shards, want %d", len(st.Shards), shards)
	}
	var shardPages, shardScanned int64
	for i, sh := range st.Shards {
		if sh.PagesRead == 0 {
			t.Fatalf("shard %d read no pages: %+v", i, sh)
		}
		shardPages += sh.PagesRead
		shardScanned += sh.TuplesScanned
	}
	if shardPages != st.Pipeline.PagesRead || shardScanned != st.Pipeline.TuplesScanned {
		t.Fatalf("per-shard sums (%d pages, %d tuples) disagree with merged pipeline stats (%d, %d)",
			shardPages, shardScanned, st.Pipeline.PagesRead, st.Pipeline.TuplesScanned)
	}

	dctx, dcancel := context.WithTimeout(ctx, 60*time.Second)
	defer dcancel()
	if err := env.srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(statsStop)
	<-statsDone
}
