package server_test

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/disk"
	"cjoin/internal/obs"
	"cjoin/internal/server/client"
)

// parseMetrics flattens Prometheus text exposition into
// name{labels} → value, skipping comments.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in metrics line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// sumPrefix sums the series of a (possibly shard-labeled) family.
func sumPrefix(m map[string]float64, prefix string) float64 {
	var s float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			s += v
		}
	}
	return s
}

// TestMetricsAndTraceE2E drives the sharded serving tier end to end and
// checks the telemetry plane against the /stats view of the same run:
// /metrics families cover every stage, the counters agree with /stats
// where both report the same quantity, and a delivered query's trace
// carries the complete enqueued→delivered timeline.
func TestMetricsAndTraceE2E(t *testing.T) {
	const n = 6
	env := startServerSharded(t, 900, 8, 2, 0, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sqls := workloadSQL(t, env.ds, n)
	queries := make([]*client.Query, n)
	for i, sqlText := range sqls {
		q, err := env.cl.Submit(ctx, sqlText)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		queries[i] = q
	}
	for i, q := range queries {
		res, err := q.Result(ctx)
		if err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if res.Error != "" {
			t.Fatalf("query %d failed: %s", i, res.Error)
		}
	}

	// --- traces: complete timeline, ordered stages, monotone offsets --
	wantStages := []string{
		obs.StageEnqueued, obs.StageAdmitted, obs.StageFirstPage,
		obs.StageCycleComplete, obs.StageDelivered,
	}
	for i, q := range queries {
		tr, err := q.Trace(ctx)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if !tr.Complete {
			t.Errorf("query %d: trace not complete: %+v", i, tr)
		}
		if tr.StartedAtUnixMillis <= 0 {
			t.Errorf("query %d: missing trace epoch", i)
		}
		if len(tr.Stages) != len(wantStages) {
			t.Fatalf("query %d: %d stages %v, want %v", i, len(tr.Stages), tr.Stages, wantStages)
		}
		prev := int64(-1)
		for j, st := range tr.Stages {
			if st.Stage != wantStages[j] {
				t.Errorf("query %d stage %d = %q, want %q", i, j, st.Stage, wantStages[j])
			}
			if st.OffsetMicros < prev {
				t.Errorf("query %d stage %q offset %dµs regresses", i, st.Stage, st.OffsetMicros)
			}
			if st.SincePrevMicros < 0 {
				t.Errorf("query %d stage %q negative duration", i, st.Stage)
			}
			prev = st.OffsetMicros
		}
	}

	// Unknown ids are 404, not empty traces.
	resp, err := http.Get(env.ts.URL + "/query/q-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace = HTTP %d, want 404", resp.StatusCode)
	}

	// --- /metrics vs /stats: same run, same numbers ------------------
	st, err := env.cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	text, err := env.cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	m := parseMetrics(t, text)

	if st.Pipeline.CollectedAtUnixMillis <= 0 {
		t.Error("stats snapshot missing collected_at_unix_ms")
	}
	if got := m["cjoin_admission_submitted_total"]; got != float64(st.Admission.Submitted) {
		t.Errorf("submitted: metrics %v vs stats %d", got, st.Admission.Submitted)
	}
	if got := m["cjoin_admission_completed_total"]; got != float64(st.Admission.Completed) || got != n {
		t.Errorf("completed: metrics %v vs stats %d (want %d)", got, st.Admission.Completed, n)
	}
	if got := m["cjoin_admission_queue_wait_seconds_count"]; got != float64(st.Admission.Admitted) {
		t.Errorf("queue-wait observations %v != admitted %d", got, st.Admission.Admitted)
	}
	if got := m["cjoin_dimplane_admits_total"]; got != float64(st.Pipeline.DimAdmits) {
		t.Errorf("plane admits: metrics %v vs stats %d", got, st.Pipeline.DimAdmits)
	}

	// Every stage family is present, shard-labeled where per-shard.
	for _, key := range []string{
		`cjoin_shard_up{shard="0"}`,
		`cjoin_shard_up{shard="1"}`,
		`cjoin_scan_pages_total{shard="0"}`,
		`cjoin_scan_pages_total{shard="1"}`,
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
	if m[`cjoin_shard_up{shard="0"}`] != 1 || m[`cjoin_shard_up{shard="1"}`] != 1 {
		t.Error("healthy shards must report cjoin_shard_up 1")
	}
	if sumPrefix(m, "cjoin_scan_tuples_total") == 0 {
		t.Error("no tuples scanned according to metrics")
	}
	if sumPrefix(m, "cjoin_filter_batch_seconds_count") == 0 {
		t.Error("no filter batches observed")
	}
	if m["cjoin_dimplane_admit_seconds_count"] != float64(st.Pipeline.DimAdmits) {
		t.Errorf("admit histogram count %v != plane admits %d",
			m["cjoin_dimplane_admit_seconds_count"], st.Pipeline.DimAdmits)
	}
	if m["cjoin_dimplane_slots_in_use"] != 0 {
		t.Errorf("slots in use after all queries done = %v, want 0", m["cjoin_dimplane_slots_in_use"])
	}
	if got := m["cjoin_dimplane_final_retires_total"]; got != n {
		t.Errorf("final retires %v, want %d", got, n)
	}
}
