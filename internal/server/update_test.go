package server_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/server/client"
	"cjoin/internal/ssb"
)

// factRow builds one valid visible-column lineorder row whose foreign
// keys resolve, so the row participates in joins once visible.
func factRow(ds *ssb.Dataset, i int) []any {
	return []any{
		int64(9_000_000 + i), // lo_orderkey
		int64(1),             // lo_linenumber
		int64(i%int(ds.NumCustomers) + 1),
		int64(i%int(ds.NumParts) + 1),
		int64(i%int(ds.NumSuppliers) + 1),
		ds.DateKeys[i%len(ds.DateKeys)],
		"1-URGENT",    // lo_orderpriority
		int64(0),      // lo_shippriority
		int64(10),     // lo_quantity
		int64(1000),   // lo_extendedprice
		int64(10000),  // lo_ordtotalprice
		int64(3),      // lo_discount
		int64(970),    // lo_revenue
		int64(600),    // lo_supplycost
		int64(4),      // lo_tax
		ds.DateKeys[i%len(ds.DateKeys)],
		"AIR", // lo_shipmode
	}
}

func countAll(ctx context.Context, t *testing.T, env *testEnv) int64 {
	t.Helper()
	res, err := env.cl.Exec(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	n, err := res.Rows[0][0].(interface{ Int64() (int64, error) }).Int64()
	if err != nil {
		t.Fatalf("count cell: %v", err)
	}
	return n
}

// TestUpdateEndToEnd drives the write plane over HTTP: appends and a
// delete become visible to queries submitted after their commit, failed
// commits publish no snapshot (the next successful commit reuses the
// id), and the write-plane metric families appear on /metrics.
func TestUpdateEndToEnd(t *testing.T) {
	env := startServer(t, 900, 4, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	n0 := countAll(ctx, t, env)
	if n0 != 900 {
		t.Fatalf("initial count = %d, want 900", n0)
	}

	// Append 3 rows in one commit.
	rows := [][]any{factRow(env.ds, 0), factRow(env.ds, 1), factRow(env.ds, 2)}
	ap, err := env.cl.AppendFacts(ctx, rows)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if ap.RowsAffected != 3 || ap.Snapshot == 0 {
		t.Fatalf("append response %+v", ap)
	}
	if got := countAll(ctx, t, env); got != n0+3 {
		t.Fatalf("count after append = %d, want %d", got, n0+3)
	}

	// Delete one of the appended rows.
	del, err := env.cl.DeleteFact(ctx, int64(n0)) // first appended row
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	if del.Snapshot != ap.Snapshot+1 {
		t.Fatalf("delete snapshot = %d, want %d", del.Snapshot, ap.Snapshot+1)
	}
	if got := countAll(ctx, t, env); got != n0+2 {
		t.Fatalf("count after delete = %d, want %d", got, n0+2)
	}

	// Failed commits publish nothing: an out-of-range delete, a repeated
	// delete of the same row, and an undecodable append all error, and
	// the next successful commit's snapshot shows no id was burned.
	if _, err := env.cl.DeleteFact(ctx, 1<<40); err == nil {
		t.Fatal("out-of-range delete succeeded")
	}
	if _, err := env.cl.DeleteFact(ctx, int64(n0)); err == nil {
		t.Fatal("double delete succeeded")
	} else if !strings.Contains(err.Error(), "already deleted") {
		t.Fatalf("double delete error = %v", err)
	}
	if _, err := env.cl.AppendFacts(ctx, [][]any{{int64(1)}}); err == nil {
		t.Fatal("short append row succeeded")
	}
	ap2, err := env.cl.AppendFacts(ctx, [][]any{factRow(env.ds, 3)})
	if err != nil {
		t.Fatalf("append after failures: %v", err)
	}
	if ap2.Snapshot != del.Snapshot+1 {
		t.Fatalf("snapshot after failed commits = %d, want %d (failed commits must not advance)", ap2.Snapshot, del.Snapshot+1)
	}

	// Write-plane telemetry is live.
	metrics, err := env.cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`cjoin_commits_total{kind="append"} 2`,
		`cjoin_commits_total{kind="delete"} 1`,
		"cjoin_commit_errors_total 3",
		"cjoin_commit_seconds_count 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestUpdateDimensionInvalidatesCache pins the COW republish: a
// dimension-value update must invalidate the plane's memoized predicate
// scans, or a repeated query template would be admitted with a stale
// bit-vector (the cache's geometry check cannot see in-place updates).
func TestUpdateDimensionInvalidatesCache(t *testing.T) {
	env := startServer(t, 900, 4, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Find a date row from 1992 and measure how many fact rows cite it.
	dyear := env.ds.Date.ColIndex("d_year")
	dkey := env.ds.Date.ColIndex("d_datekey")
	var row, key int64 = -1, 0
	for i := int64(0); i < env.ds.Date.Heap.NumRows(); i++ {
		r, err := env.ds.Date.Heap.RowAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if r[dyear] == 1992 {
			row, key = i, r[dkey]
			break
		}
	}
	if row < 0 {
		t.Fatal("no 1992 date row")
	}
	count := func(sql string) int64 {
		res, err := env.cl.Exec(ctx, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		n, _ := res.Rows[0][0].(interface{ Int64() (int64, error) }).Int64()
		return n
	}
	sql93 := "SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_year = 1993"
	before := count(sql93)
	onKey := count(fmt.Sprintf("SELECT COUNT(*) AS n FROM lineorder, date WHERE lo_orderdate = d_datekey AND d_datekey BETWEEN %d AND %d", key, key))
	if onKey == 0 {
		t.Fatalf("datekey %d unreferenced; pick a bigger dataset", key)
	}

	// Move the date row into 1993. The same query template re-submitted
	// must see the moved rows — it only can if the predicate-scan cache
	// entry built for `before` was invalidated.
	up, err := env.cl.UpdateDimension(ctx, "date", "d_year", row, 1993)
	if err != nil {
		t.Fatalf("dim-update: %v", err)
	}
	if up.RowsAffected != 1 {
		t.Fatalf("dim-update response %+v", up)
	}
	if after := count(sql93); after != before+onKey {
		t.Fatalf("1993 count after dim-update = %d, want %d (stale predicate-scan cache?)", after, before+onKey)
	}

	// Join-key updates are rejected: the dimension hash tables are built
	// once at pipeline construction.
	if _, err := env.cl.UpdateDimension(ctx, "date", "d_datekey", row, 99999999); err == nil {
		t.Fatal("join-key update succeeded")
	}

	metrics, err := env.cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		`cjoin_commits_total{kind="dim_update"} 1`,
		"cjoin_dimcache_invalidations_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestUpdateShardedSharedHeap sends writes through a sharded group: the
// strided per-shard sources read the same shared heap, so a commit is
// visible to queries on every shard.
func TestUpdateShardedSharedHeap(t *testing.T) {
	env := startServerSharded(t, 900, 4, 2, 0, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	n0 := countAll(ctx, t, env)
	ap, err := env.cl.AppendFacts(ctx, [][]any{factRow(env.ds, 0), factRow(env.ds, 1)})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if ap.RowsAffected != 2 {
		t.Fatalf("append response %+v", ap)
	}
	if got := countAll(ctx, t, env); got != n0+2 {
		t.Fatalf("sharded count after append = %d, want %d", got, n0+2)
	}
	if _, err := env.cl.DeleteFact(ctx, 0); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if got := countAll(ctx, t, env); got != n0+1 {
		t.Fatalf("sharded count after delete = %d, want %d", got, n0+1)
	}
}

// TestUpdatePartitionedStarRejected pins the §5 static regime: a
// range-partitioned deployment answers 422 to fact writes and publishes
// no snapshot.
func TestUpdatePartitionedStarRejected(t *testing.T) {
	env := startServerSharded(t, 900, 4, 2, 4, disk.Config{}, admission.Config{MaxQueue: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	_, err := env.cl.AppendFacts(ctx, [][]any{factRow(env.ds, 0)})
	apiErr, ok := err.(interface{ Error() string })
	if !ok {
		t.Fatalf("partitioned append error = %v", err)
	}
	if !strings.Contains(apiErr.Error(), "static") || !strings.Contains(apiErr.Error(), "422") {
		t.Fatalf("partitioned append error = %v, want 422 static-star rejection", err)
	}
	if env.ds.Txn.Begin() != 0 {
		t.Fatalf("rejected write advanced the snapshot to %d", env.ds.Txn.Begin())
	}
}

// TestBatchDispatchKeepsSubmitSnapshot is the bugfix guard for
// handleSubmit's `b.Snapshot = s.txm.Begin()` placement: a query that
// queues before a commit but is batch-dispatched after it must evaluate
// at its submit-time snapshot. If the snapshot were stamped at batch
// dispatch instead, the queued COUNTs below would see the committed
// writes.
func TestBatchDispatchKeepsSubmitSnapshot(t *testing.T) {
	// ~170 KB of fact pages at 128 KB/s: a full scan cycle takes >1 s,
	// so the blockers reliably hold both slots while the COUNTs queue
	// and the commit lands.
	env := startServer(t, 1200, 2, disk.Config{SeqBytesPerSec: 128 << 10}, admission.Config{MaxQueue: 64, BatchAdmit: 4},
		func(c *core.Config) { c.DisableZoneMaps = true })
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Fill both pipeline slots with slow full scans.
	blockers := make([]*client.Query, 2)
	for i := range blockers {
		q, err := env.cl.Submit(ctx, "SELECT SUM(lo_revenue) AS rev FROM lineorder")
		if err != nil {
			t.Fatalf("blocker %d: %v", i, err)
		}
		blockers[i] = q
	}

	// Three COUNTs queue behind them; their snapshots are stamped now.
	counts := make([]*client.Query, 3)
	for i := range counts {
		q, err := env.cl.Submit(ctx, "SELECT COUNT(*) AS n FROM lineorder")
		if err != nil {
			t.Fatalf("count %d: %v", i, err)
		}
		st, err := q.Status(ctx)
		if err != nil {
			t.Fatalf("status %d: %v", i, err)
		}
		if st.State != "queued" {
			t.Fatalf("count %d state = %q before commit, want queued (blockers finished too fast)", i, st.State)
		}
		counts[i] = q
	}

	// Commit while they wait: 5 appends and 1 delete.
	rows := make([][]any, 5)
	for i := range rows {
		rows[i] = factRow(env.ds, i)
	}
	if _, err := env.cl.AppendFacts(ctx, rows); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := env.cl.DeleteFact(ctx, 7); err != nil {
		t.Fatalf("delete: %v", err)
	}

	// The queued COUNTs dispatch (in a batch) once the blockers finish —
	// after the commit — yet must answer at their submit-time snapshot.
	for i, q := range counts {
		res, err := q.Result(ctx)
		if err != nil || res.Error != "" {
			t.Fatalf("count %d: %v %s", i, err, res.Error)
		}
		n, _ := res.Rows[0][0].(interface{ Int64() (int64, error) }).Int64()
		if n != 1200 {
			t.Fatalf("queued count %d = %d, want 1200 (submit-time snapshot leaked to %s)", i, n, "batch dispatch")
		}
	}
	for i, q := range blockers {
		if res, err := q.Result(ctx); err != nil || res.Error != "" {
			t.Fatalf("blocker %d: %v %s", i, err, res.Error)
		}
	}
	// A query submitted now sees the commit: +5 appends, -1 delete.
	if got := countAll(ctx, t, env); got != 1200+5-1 {
		t.Fatalf("post-commit count = %d, want %d", got, 1200+5-1)
	}
}
