// Package buffer implements a page buffer pool with CLOCK eviction.
//
// The conventional query-at-a-time engine reads fact and dimension pages
// through a pool of bounded size: when many concurrent queries scan a fact
// table much larger than the pool (the warehouse regime of §2.1), nearly
// every fact page read misses and goes to the shared disk. The CJOIN
// continuous scan deliberately bypasses the pool — one sequential stream
// needs no caching and must not evict dimension pages.
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cjoin/internal/storage"
)

type frameKey struct {
	heap *storage.HeapFile
	page int
}

type frame struct {
	key   frameKey
	ref   atomic.Bool // CLOCK reference bit
	ready chan struct{}
	vals  []int64
	n     int
	err   error
}

// Pool caches decoded pages for any number of heap files. It is safe for
// concurrent use; page loads release the pool lock so a slow (simulated)
// disk read does not block hits on other pages. A read-ahead window makes
// misses fetch whole extents in one device request, the way scans behave
// under OS read-ahead.
type Pool struct {
	capPages  int
	readAhead int

	mu     sync.Mutex
	frames map[frameKey]*frame
	ring   []*frame
	hand   int

	hits   atomic.Int64
	misses atomic.Int64
}

// Stats reports pool hit/miss counters.
type Stats struct{ Hits, Misses int64 }

// NewPool returns a pool that holds at most capPages pages and fetches
// readAhead pages per miss (minimum 1).
func NewPool(capPages, readAhead int) *Pool {
	if capPages < 1 {
		capPages = 1
	}
	if readAhead < 1 {
		readAhead = 1
	}
	if readAhead > capPages {
		readAhead = capPages
	}
	return &Pool{capPages: capPages, readAhead: readAhead, frames: make(map[frameKey]*frame, capPages)}
}

// Stats returns a snapshot of the hit/miss counters.
func (p *Pool) Stats() Stats {
	return Stats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}

// ReadPage copies the decoded rows of the given page into dst and returns
// the row count. dst needs capacity for RowsPerPage()*NumCols() values.
// The mutable tail page of a heap is read through, never cached.
func (p *Pool) ReadPage(h *storage.HeapFile, page int, dst []int64) (int, error) {
	if page >= h.FlushedPages() {
		p.misses.Add(1)
		scratch := make([]byte, storage.PageSize)
		return h.ReadPage(page, dst, scratch)
	}
	key := frameKey{heap: h, page: page}

	p.mu.Lock()
	if f, ok := p.frames[key]; ok {
		p.mu.Unlock()
		<-f.ready
		if f.err != nil {
			return 0, f.err
		}
		f.ref.Store(true)
		p.hits.Add(1)
		copy(dst, f.vals[:f.n*h.NumCols()])
		return f.n, nil
	}
	// Miss: install loading frames for the extent [page, page+k), where
	// k is capped by the read-ahead window, the flushed region, and the
	// first already-cached page. Then read the extent outside the lock.
	flushed := h.FlushedPages()
	k := 1
	for k < p.readAhead && page+k < flushed {
		if _, cached := p.frames[frameKey{heap: h, page: page + k}]; cached {
			break
		}
		k++
	}
	extent := make([]*frame, k)
	for i := range extent {
		f := &frame{key: frameKey{heap: h, page: page + i}, ready: make(chan struct{})}
		p.evictLocked()
		p.frames[f.key] = f
		p.ring = append(p.ring, f)
		extent[i] = f
	}
	p.mu.Unlock()
	p.misses.Add(1)

	buf := make([]byte, k*storage.PageSize)
	got, err := h.ReadExtent(page, k, buf)
	ncols := h.NumCols()
	for i, f := range extent {
		if err != nil || i >= got {
			// Fall back to a single-page read (non-contiguous layout).
			f.vals = make([]int64, h.RowsPerPage()*ncols)
			f.n, f.err = h.ReadPage(f.key.page, f.vals, buf[:storage.PageSize])
		} else {
			pg := buf[i*storage.PageSize : (i+1)*storage.PageSize]
			n := int(binaryRowCount(pg))
			f.vals = make([]int64, h.RowsPerPage()*ncols)
			if n > h.RowsPerPage() {
				f.err = fmt.Errorf("buffer: corrupt page %d: %d rows", f.key.page, n)
			} else {
				storage.DecodeRows(pg[4:], f.vals[:n*ncols])
				f.n = n
			}
		}
		close(f.ready)
	}
	first := extent[0]
	if first.err != nil {
		p.mu.Lock()
		for _, f := range extent {
			if f.err != nil {
				p.dropLocked(f)
			}
		}
		p.mu.Unlock()
		return 0, first.err
	}
	copy(dst, first.vals[:first.n*ncols])
	return first.n, nil
}

func binaryRowCount(pg []byte) uint32 {
	return uint32(pg[0]) | uint32(pg[1])<<8 | uint32(pg[2])<<16 | uint32(pg[3])<<24
}

// evictLocked makes room for one more frame using the CLOCK policy.
func (p *Pool) evictLocked() {
	for len(p.ring) >= p.capPages {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		f := p.ring[p.hand]
		select {
		case <-f.ready:
		default:
			p.hand++ // still loading; skip
			continue
		}
		if f.ref.CompareAndSwap(true, false) {
			p.hand++
			continue
		}
		p.dropLocked(f)
	}
}

func (p *Pool) dropLocked(f *frame) {
	delete(p.frames, f.key)
	for i, g := range p.ring {
		if g == f {
			p.ring = append(p.ring[:i], p.ring[i+1:]...)
			if p.hand > i {
				p.hand--
			}
			return
		}
	}
}

// Len returns the number of cached frames.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ring)
}
