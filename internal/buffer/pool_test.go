package buffer

import (
	"sync"
	"testing"

	"cjoin/internal/disk"
	"cjoin/internal/storage"
)

func buildHeap(t *testing.T, rows int64) *storage.HeapFile {
	t.Helper()
	h := storage.CreateHeap(disk.NewMem(), 1)
	for i := int64(0); i < rows; i++ {
		h.Append([]int64{i})
	}
	return h
}

func TestHitMiss(t *testing.T) {
	h := buildHeap(t, 5000) // several pages
	p := NewPool(16, 1)
	dst := make([]int64, h.RowsPerPage())
	if _, err := p.ReadPage(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadPage(h, 0, dst); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if dst[0] != 0 {
		t.Fatalf("page 0 row 0 = %d", dst[0])
	}
}

func TestEvictionBounded(t *testing.T) {
	h := buildHeap(t, 1023*10) // 10 full pages
	p := NewPool(3, 1)
	dst := make([]int64, h.RowsPerPage())
	for page := 0; page < 10; page++ {
		if _, err := p.ReadPage(h, page, dst); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() > 3 {
		t.Fatalf("pool grew to %d frames", p.Len())
	}
	// All were cold misses.
	if s := p.Stats(); s.Misses != 10 {
		t.Fatalf("stats %+v", s)
	}
}

func TestTailNeverCached(t *testing.T) {
	h := buildHeap(t, 10) // all rows in the tail page
	p := NewPool(4, 1)
	dst := make([]int64, h.RowsPerPage())
	if n, err := p.ReadPage(h, 0, dst); err != nil || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	h.Append([]int64{10})
	n, err := p.ReadPage(h, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 || dst[10] != 10 {
		t.Fatalf("stale tail served: n=%d", n)
	}
}

func TestCorrectContentUnderEviction(t *testing.T) {
	h := buildHeap(t, 1023*8)
	p := NewPool(2, 1)
	dst := make([]int64, h.RowsPerPage())
	for round := 0; round < 3; round++ {
		for page := 0; page < 8; page++ {
			n, err := p.ReadPage(h, page, dst)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if dst[i] != int64(page*1023+i) {
					t.Fatalf("page %d row %d = %d", page, i, dst[i])
				}
			}
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	h := buildHeap(t, 1023*20)
	p := NewPool(8, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]int64, h.RowsPerPage())
			for r := 0; r < 100; r++ {
				page := (w*7 + r) % 20
				n, err := p.ReadPage(h, page, dst)
				if err != nil {
					t.Error(err)
					return
				}
				if n > 0 && dst[0] != int64(page*1023) {
					t.Errorf("page %d first row %d", page, dst[0])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if p.Len() > 8 {
		t.Fatalf("pool exceeded capacity: %d", p.Len())
	}
}

func TestReadErrorPropagates(t *testing.T) {
	h := buildHeap(t, 10)
	p := NewPool(2, 1)
	dst := make([]int64, h.RowsPerPage())
	if _, err := p.ReadPage(h, 99, dst); err == nil {
		t.Fatal("expected page-range error")
	}
}
