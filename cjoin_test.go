package cjoin_test

import (
	"strings"
	"sync"
	"testing"

	cjoin "cjoin"
)

// buildTinyWarehouse creates a small hand-made star: sales(fact) with
// stores and products dimensions.
func buildTinyWarehouse(t *testing.T) *cjoin.Warehouse {
	t.Helper()
	w := cjoin.NewWarehouse(cjoin.DiskModel{})
	stores, err := w.CreateDimension("stores", []cjoin.Column{
		{Name: "s_id", Type: cjoin.Int},
		{Name: "s_region", Type: cjoin.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	products, err := w.CreateDimension("products", []cjoin.Column{
		{Name: "p_id", Type: cjoin.Int},
		{Name: "p_color", Type: cjoin.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	sales, err := w.CreateFact("sales", []cjoin.Column{
		{Name: "store_id", Type: cjoin.Int},
		{Name: "product_id", Type: cjoin.Int},
		{Name: "amount", Type: cjoin.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"EAST", "WEST"}
	for i := 1; i <= 10; i++ {
		if err := stores.Append(i, regions[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	colors := []string{"red", "blue", "green"}
	for i := 1; i <= 9; i++ {
		if err := products.Append(i, colors[i%3]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 900; i++ {
		if err := sales.Append(i%10+1, i%9+1, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.DefineStar("sales", []cjoin.Join{
		{Dimension: "stores", ForeignKey: "store_id", Key: "s_id"},
		{Dimension: "products", ForeignKey: "product_id", Key: "p_id"},
	}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWarehouseEndToEnd(t *testing.T) {
	w := buildTinyWarehouse(t)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	q, err := p.Query(`SELECT SUM(amount), COUNT(*), s_region FROM sales, stores
		WHERE store_id = s_id AND s_region = 'EAST' GROUP BY s_region`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Fatalf("rows %d", res.NumRows())
	}
	row := res.Row(0)
	if row[0].String() != "EAST" {
		t.Fatalf("region decoded as %q", row[0])
	}
	// Baseline must agree.
	b, err := w.BaselineEngine("systemx")
	if err != nil {
		t.Fatal(err)
	}
	bres, err := b.Query(`SELECT SUM(amount), COUNT(*), s_region FROM sales, stores
		WHERE store_id = s_id AND s_region = 'EAST' GROUP BY s_region`)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Row(0)[1].Int() != row[1].Int() || bres.Row(0)[2].Int() != row[2].Int() {
		t.Fatalf("baseline disagrees: cjoin=%v baseline=%v", row, bres.Row(0))
	}
	if !strings.Contains(res.Format(), "EAST") {
		t.Fatal("Format must include decoded group value")
	}
}

func TestConcurrentPublicQueries(t *testing.T) {
	w := buildTinyWarehouse(t)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := p.Query("SELECT COUNT(*) FROM sales, products WHERE product_id = p_id AND p_color = 'red'")
			if err != nil {
				t.Error(err)
				return
			}
			res, err := q.Wait()
			if err != nil {
				t.Error(err)
				return
			}
			if res.Row(0)[0].Int() != 300 {
				t.Errorf("count %d, want 300", res.Row(0)[0].Int())
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotUpdatesPublicAPI(t *testing.T) {
	w := buildTinyWarehouse(t)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	before := w.Begin()
	if _, err := w.CommitFacts([][]any{{1, 1, 1000}, {2, 2, 2000}}); err != nil {
		t.Fatal(err)
	}
	qOld, err := p.QueryAt("SELECT COUNT(*) FROM sales, stores WHERE store_id = s_id", before)
	if err != nil {
		t.Fatal(err)
	}
	qNew, err := p.Query("SELECT COUNT(*) FROM sales, stores WHERE store_id = s_id")
	if err != nil {
		t.Fatal(err)
	}
	resOld, err := qOld.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resNew, err := qNew.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if resOld.Row(0)[0].Int() != 900 {
		t.Fatalf("old snapshot count %d", resOld.Row(0)[0].Int())
	}
	if resNew.Row(0)[0].Int() != 902 {
		t.Fatalf("new snapshot count %d", resNew.Row(0)[0].Int())
	}
	// Delete one pre-existing row.
	if _, err := w.DeleteFact(0); err != nil {
		t.Fatal(err)
	}
	qDel, err := p.Query("SELECT COUNT(*) FROM sales, stores WHERE store_id = s_id")
	if err != nil {
		t.Fatal(err)
	}
	resDel, err := qDel.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if resDel.Row(0)[0].Int() != 901 {
		t.Fatalf("post-delete count %d", resDel.Row(0)[0].Int())
	}
}

func TestOpenSSBAndWorkload(t *testing.T) {
	w, err := cjoin.OpenSSB(cjoin.SSBOptions{SF: 1, FactRowsPerSF: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	wl := w.NewWorkload(0.1, 7)
	for i := 0; i < 3; i++ {
		id, sqlText := wl.Next()
		if id == "" || sqlText == "" {
			t.Fatal("empty workload query")
		}
		q, err := p.Query(sqlText)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, err := q.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if len(cjoin.TemplateIDs()) != 10 {
		t.Fatalf("templates %v", cjoin.TemplateIDs())
	}
	if _, err := wl.FromTemplate("Q4.2"); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.TuplesScanned == 0 || s.ScanCycles == 0 && s.PagesRead == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestAPIErrors(t *testing.T) {
	w := cjoin.NewWarehouse(cjoin.DiskModel{})
	if _, err := w.OpenPipeline(cjoin.PipelineOptions{}); err == nil {
		t.Fatal("pipeline without star must fail")
	}
	if _, err := w.CreateFact("f", []cjoin.Column{{Name: "a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.CreateFact("f2", []cjoin.Column{{Name: "a"}}); err == nil {
		t.Fatal("second fact table must fail")
	}
	if _, err := w.CreateDimension("f", nil); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if err := w.DefineStar("nope", nil); err == nil {
		t.Fatal("unknown fact must fail")
	}
	ft := w.Tables()["f"]
	_ = ft
	if _, err := w.BaselineEngine("oracle"); err == nil {
		t.Fatal("unknown baseline must fail")
	}
}
