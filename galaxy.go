package cjoin

import (
	"fmt"

	"cjoin/internal/core"
	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// FactRow is one fact tuple delivered by a galaxy join, with dictionary
// decoding by column name. It is only valid during the emit callback
// unless stated otherwise.
type FactRow struct {
	w   *Warehouse
	row []int64
}

// Col returns the named fact column's value.
func (r FactRow) Col(name string) (Value, error) {
	t := r.w.fact.tab
	i := t.ColIndex(name)
	if i < 0 {
		return Value{}, fmt.Errorf("cjoin: unknown fact column %q", name)
	}
	if d := t.Dicts[i]; d != nil {
		if s, ok := d.Decode(r.row[i]); ok {
			return Value{isStr: true, s: s}, nil
		}
	}
	return Value{i: r.row[i]}, nil
}

// GalaxyJoin evaluates a galaxy-schema query (§5 of the paper): two star
// sub-queries joined on a fact-to-fact equi-join pivot. Each side's star
// portion is evaluated by the CJOIN pipeline (and therefore shared with
// all concurrent star queries); the pivot join runs build/probe on the
// star results. emit is called once per joined pair of fact tuples; the
// second argument aliases pipeline buffers and must not be retained.
func (p *Pipeline) GalaxyJoin(sqlA, sqlB, pivotA, pivotB string, emit func(a, b FactRow)) error {
	star, err := p.w.starSchema()
	if err != nil {
		return err
	}
	colA := star.Fact.ColIndex(pivotA)
	colB := star.Fact.ColIndex(pivotB)
	if colA < 0 || colB < 0 {
		return fmt.Errorf("cjoin: unknown pivot column %q or %q", pivotA, pivotB)
	}
	qa, err := query.ParseBind(sqlA, star)
	if err != nil {
		return err
	}
	qb, err := query.ParseBind(sqlB, star)
	if err != nil {
		return err
	}
	snap := p.w.Begin()
	qa.Snapshot = snap
	qb.Snapshot = snap
	cp, ok := p.p.(*core.Pipeline)
	if !ok {
		// Galaxy joins route fact tuples through per-query sinks, a
		// concrete single-pipeline capability the sharded group does not
		// broadcast (its handles gather aggregates, not tuples).
		return fmt.Errorf("cjoin: GalaxyJoin requires an unsharded pipeline (PipelineOptions.Shards <= 1)")
	}
	return core.ExecuteGalaxy(cp, cp, qa, qb, colA, colB, func(fa, fb *expr.Joined) {
		emit(FactRow{w: p.w, row: fa.Fact}, FactRow{w: p.w, row: fb.Fact})
	})
}
