# CJOIN build/test/bench entry points. `make bench` snapshots the Filter
# hot-loop microbenchmarks into BENCH_<BENCH_N>.json so successive PRs
# leave a comparable performance trajectory (see PERFORMANCE.md).

GO        ?= go
BENCH_N   ?= 1
BENCHTIME ?= 1s

.PHONY: all build test race race-core bench vet ci

all: build test

# What CI runs (.github/workflows/ci.yml): vet + build + full tests,
# then the concurrency-heavy packages under the race detector.
ci: vet build test race-core

race-core:
	$(GO) test -race -timeout 900s ./internal/core ./internal/admission ./internal/server ./internal/bitvec ./internal/dimht ./internal/shard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector; the Filter churn tests verify
# the lock-free probe path against concurrent admit/remove.
race:
	$(GO) test -race -timeout 900s ./...

vet:
	$(GO) vet ./...

# Filter/pipeline hot-path microbenchmarks plus the sharded-tier scan
# benchmark, snapshotted as JSON. Run the paper-scale experiment
# benchmarks separately: go test -bench . -v .
bench:
	$(GO) test -run '^$$' -bench 'FilterProbe|ShardScan|AndPair' -benchtime $(BENCHTIME) -count 3 \
		./internal/core ./internal/shard ./internal/bitvec \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_$(BENCH_N).json
