# CJOIN build/test/bench entry points. `make bench` snapshots the Filter
# hot-loop microbenchmarks into BENCH_<BENCH_N>.json so successive PRs
# leave a comparable performance trajectory (see PERFORMANCE.md).

GO        ?= go
BENCH_N   ?= 1
BENCHTIME ?= 1s

.PHONY: all build test race race-core bench vet ci dimadmit-smoke shardparts-smoke chaos-smoke metrics-smoke updates-smoke

all: build test

# What CI runs (.github/workflows/ci.yml): vet + build + full tests,
# the concurrency-heavy packages under the race detector, smoke runs
# of the shared-dimension-plane and partition-dealt experiments over
# 2-shard groups, the shard-loss chaos smoke, the telemetry-plane
# metrics smoke, and the HTAP write-plane smoke.
ci: vet build test race-core dimadmit-smoke shardparts-smoke chaos-smoke metrics-smoke updates-smoke

# End-to-end smoke of the admit-once execution tier: the dimadmit
# experiment exercises plane admission, fan-out activation, and merged
# stats over real shard topologies in a few seconds.
dimadmit-smoke:
	$(GO) run ./cmd/cjoin-bench -exp dimadmit -shards 1,2 -rows 2000 -queries 8 -n 8 -json > /dev/null

# End-to-end smoke of partition-aware sharding: shardscale over a
# range-partitioned star deals whole partitions to the shards, so this
# exercises the deal planner, per-shard subset scans, and pruned
# completion under a real closed-loop workload.
shardparts-smoke:
	$(GO) run ./cmd/cjoin-bench -exp shardscale -partitions 6 -shards 1,2 -rows 2000 -queries 8 -n 8 -json > /dev/null

# End-to-end graceful degradation: cjoind -shards 4 -chaos loses one
# shard mid-workload; the daemon must stay up, /healthz must go
# degraded, and queries over surviving partitions must keep completing
# (scripts/chaos-smoke.sh).
chaos-smoke:
	./scripts/chaos-smoke.sh

# End-to-end telemetry plane: cjoind -shards 2 -pprof must serve every
# stage family on /metrics, a complete per-query trace timeline, and the
# pprof index (scripts/metrics-smoke.sh).
metrics-smoke:
	./scripts/metrics-smoke.sh

# End-to-end HTAP write plane: POST /update commits (append, delete,
# dimension rewrite) against cjoind -shards 2, snapshot contiguity past
# a failed commit, predicate-cache invalidation, and the write-plane
# metric families (scripts/updates-smoke.sh).
updates-smoke:
	./scripts/updates-smoke.sh

race-core:
	$(GO) test -race -timeout 900s ./internal/core ./internal/admission ./internal/server ./internal/bitvec ./internal/dimht ./internal/dimplane ./internal/query ./internal/shard ./internal/obs ./internal/storage ./internal/txn

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full suite under the race detector; the Filter churn tests verify
# the lock-free probe path against concurrent admit/remove.
race:
	$(GO) test -race -timeout 900s ./...

vet:
	$(GO) vet ./...

# Filter/pipeline hot-path microbenchmarks plus the sharded-tier scan
# benchmark, snapshotted as JSON. Run the paper-scale experiment
# benchmarks separately: go test -bench . -v .
bench:
	$(GO) test -run '^$$' -bench 'FilterProbe|ShardScan|AndPair' -benchtime $(BENCHTIME) -count 3 \
		./internal/core ./internal/shard ./internal/bitvec \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > BENCH_$(BENCH_N).json
