// Command cjoin-demo shows the CJOIN operator absorbing a burst of
// concurrent ad-hoc star queries: it generates an SSB warehouse, opens
// the always-on pipeline, registers n concurrent queries, live-reports
// scan progress (the paper's §3.2.3 progress indicator), and prints one
// decoded result with pipeline statistics.
//
// Usage:
//
//	cjoin-demo -n 32 -rows 20000 -s 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	cjoin "cjoin"
)

func main() {
	var (
		n    = flag.Int("n", 16, "concurrent queries")
		rows = flag.Int("rows", 20000, "fact rows")
		sel  = flag.Float64("s", 0.02, "predicate selectivity")
		seed = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	w, err := cjoin.OpenSSB(cjoin.SSBOptions{SF: 1, FactRowsPerSF: *rows, Seed: *seed})
	check(err)
	p, err := w.OpenPipeline(cjoin.PipelineOptions{MaxConcurrent: 2 * *n})
	check(err)
	defer p.Close()

	fmt.Printf("CJOIN demo: %d fact rows, %d concurrent ad-hoc queries (s=%.3f)\n\n", *rows, *n, *sel)
	wl := w.NewWorkload(*sel, *seed)

	type running struct {
		id string
		q  *cjoin.RunningQuery
	}
	var queries []running
	start := time.Now()
	for i := 0; i < *n; i++ {
		id, text := wl.Next()
		q, err := p.Query(text)
		check(err)
		queries = append(queries, running{id: id, q: q})
	}
	fmt.Printf("registered %d queries in %v (all sharing one continuous scan)\n", *n, time.Since(start).Round(time.Microsecond))

	// Live progress until all complete.
	done := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*cjoin.Result, len(queries))
	for i, r := range queries {
		wg.Add(1)
		go func(i int, r running) {
			defer wg.Done()
			res, err := r.q.Wait()
			check(err)
			results[i] = res
		}(i, r)
	}
	go func() { wg.Wait(); close(done) }()

	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
progress:
	for {
		select {
		case <-done:
			break progress
		case <-ticker.C:
			var sum float64
			var maxETA time.Duration
			for _, r := range queries {
				sum += r.q.Progress()
				if eta, ok := r.q.ETA(); ok && eta > maxETA {
					maxETA = eta
				}
			}
			fmt.Printf("\r  mean scan progress: %5.1f%%  (slowest query ETA %v)   ",
				100*sum/float64(len(queries)), maxETA.Round(time.Millisecond))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\r  mean scan progress: 100.0%%\n\n")
	fmt.Printf("all %d queries answered in %v (%.0f queries/hour)\n\n",
		*n, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Hours())

	sample := 0
	for i, res := range results {
		if res.NumRows() > 0 {
			sample = i
			break
		}
	}
	fmt.Printf("sample result (%s):\n%s\n", queries[sample].id, indent(results[sample].Format()))
	st := p.Stats()
	fmt.Printf("pipeline stats: %d tuples scanned, %d pages read, %d full scan cycles\n",
		st.TuplesScanned, st.PagesRead, st.ScanCycles)
	fmt.Printf("optimized filter order: %v\n", st.FilterOrder)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cjoin-demo:", err)
		os.Exit(1)
	}
}
