// Command ssbgen generates a Star Schema Benchmark dataset and exports it
// as CSV files (one per table, dictionary-decoded), plus a summary of the
// generated cardinalities. It is the offline counterpart of the paper's
// SSB data generator (§6.1.2).
//
// Usage:
//
//	ssbgen -sf 2 -rows 10000 -out /tmp/ssb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cjoin/internal/catalog"
	"cjoin/internal/ssb"
	"cjoin/internal/storage"
)

func main() {
	var (
		sf   = flag.Int("sf", 1, "scale factor")
		rows = flag.Int("rows", 10000, "fact rows per scale-factor unit")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", "", "output directory for CSV files (omit for summary only)")
	)
	flag.Parse()

	ds, err := ssb.Generate(ssb.Config{SF: *sf, FactRowsPerSF: *rows, Seed: *seed})
	check(err)

	tables := []*catalog.Table{ds.Lineorder, ds.Customer, ds.Supplier, ds.Part, ds.Date}
	fmt.Printf("SSB dataset: sf=%d seed=%d\n", *sf, *seed)
	for _, t := range tables {
		fmt.Printf("  %-10s %8d rows  %4d pages\n", t.Name, t.Heap.NumRows(), t.Heap.NumPages())
	}

	if *out == "" {
		return
	}
	check(os.MkdirAll(*out, 0o755))
	for _, t := range tables {
		check(export(t, filepath.Join(*out, t.Name+".csv")))
	}
	fmt.Printf("exported CSVs to %s\n", *out)
}

// export writes one table as CSV with dictionary columns decoded.
func export(t *catalog.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	for i, c := range t.Columns[t.Hidden:] {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(c.Name)
	}
	w.WriteByte('\n')

	sc := storage.NewScanner(t.Heap)
	for row, ok := sc.Next(); ok; row, ok = sc.Next() {
		for i := t.Hidden; i < len(t.Columns); i++ {
			if i > t.Hidden {
				w.WriteByte(',')
			}
			if d := t.Dicts[i]; d != nil {
				s, _ := d.Decode(row[i])
				fmt.Fprintf(w, "%q", s)
			} else {
				fmt.Fprintf(w, "%d", row[i])
			}
		}
		w.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return w.Flush()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssbgen:", err)
		os.Exit(1)
	}
}
