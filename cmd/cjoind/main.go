// Command cjoind is the CJOIN daemon: it generates (or sizes) an SSB star
// warehouse, starts the always-on shared pipeline, and serves star
// queries over HTTP with bounded admission queueing, live progress, and
// cancellation — the paper's operator run as a system.
//
// Usage:
//
//	cjoind -addr :8077 -sf 1 -rows 20000 -maxconc 64 -queue 512 -shards 4
//
// Then:
//
//	curl -s localhost:8077/query -d '{"sql":"SELECT COUNT(*) AS n FROM lineorder"}'
//	curl -s localhost:8077/query/q-000001
//	curl -s localhost:8077/query/q-000001/result
//	curl -s -X DELETE localhost:8077/query/q-000001
//	curl -s localhost:8077/stats
//	curl -s localhost:8077/metrics
//	curl -s localhost:8077/query/q-000001/trace
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503,
// queued and running queries finish (up to -drain-timeout), the pipeline
// quiesces, and the process exits.
//
// -chaos arms deterministic fault injection (internal/fault grammar) for
// resilience testing: a sharded daemon that loses a pipeline quarantines
// it, keeps serving on the survivors, and reports "degraded" on
// /healthz. -stall-timeout arms the scan-progress liveness check.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cjoin/internal/admission"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/fault"
	"cjoin/internal/obs"
	"cjoin/internal/server"
	"cjoin/internal/shard"
	"cjoin/internal/ssb"
)

func main() {
	var (
		addr     = flag.String("addr", ":8077", "HTTP listen address")
		sf       = flag.Int("sf", 1, "SSB scale factor")
		rows     = flag.Int("rows", 20000, "fact rows per scale-factor unit")
		seed     = flag.Int64("seed", 42, "dataset generation seed")
		parts    = flag.Int("partitions", 0, "range-partition lineorder into N heaps (0 = off)")
		shards   = flag.Int("shards", 1, "CJOIN pipelines behind one admission queue (1 = single pipeline; unpartitioned facts are page-strided, range-partitioned facts have whole partitions dealt)")
		maxConc  = flag.Int("maxconc", 64, "pipeline query slots (maxConc)")
		workers  = flag.Int("workers", 0, "stage worker threads (0 = NumCPU/2)")
		batch    = flag.Int("batch", 0, "pipeline batch rows (0 = default)")
		queueLen = flag.Int("queue", 0, "admission queue bound (0 = 8*maxconc)")
		maxWait  = flag.Duration("max-wait", 0, "default queue-wait deadline (0 = unlimited)")
		admBatch = flag.Int("admit-batch", 16, "queries drained per admission batch — one dimension-plane round per batch (<=1 = per-query admission)")
		predCach = flag.Int("predcache", 0, "dimension predicate-scan cache entries (0 = default, negative = off)")
		diskMBs  = flag.Float64("disk-mbps", 0, "simulated sequential bandwidth in MB/s (0 = unthrottled)")
		seekMs   = flag.Duration("disk-seek", 0, "simulated seek penalty")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		chaos    = flag.String("chaos", "", "fault-injection spec, e.g. 'seed=7;shard=1;scan-err=0.02;scan-fail=40' (see internal/fault)")
		stallTO  = flag.Duration("stall-timeout", 0, "declare a shard dead after this long without scan progress (0 = off; sharded only)")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ and Go runtime gauges on /metrics")
		zoneMaps = flag.Bool("zonemaps", true, "page-level zone-map pruning: skip fact pages whose per-page min/max synopses no resident query can match (false = §5 partition-granular pruning only)")
	)
	flag.Parse()

	chaosSpec, err := fault.Parse(*chaos)
	if err != nil {
		log.Fatalf("-chaos: %v", err)
	}

	log.SetPrefix("cjoind: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	start := time.Now()
	ds, err := ssb.Generate(ssb.Config{
		SF:            *sf,
		FactRowsPerSF: *rows,
		Seed:          *seed,
		Partitions:    *parts,
		Disk: disk.Config{
			SeqBytesPerSec: *diskMBs * (1 << 20),
			SeekPenalty:    *seekMs,
		},
	})
	if err != nil {
		log.Fatalf("generate SSB: %v", err)
	}
	var factRows int64
	for _, p := range ds.Star.Partitions() {
		factRows += p.Heap.NumRows()
	}
	layout := "single heap"
	if ds.Star.PartCol >= 0 {
		layout = fmt.Sprintf("%d range partitions", len(ds.Star.Partitions()))
	}
	log.Printf("SSB sf=%d: %d fact rows, 4 dimensions, %s, generated in %v",
		*sf, factRows, layout, time.Since(start).Round(time.Millisecond))

	// The telemetry plane is always on for the daemon: one registry
	// shared by the executor (per-stage counters, labeled per shard), the
	// admission queue, the fault injectors, and — behind -pprof — the Go
	// runtime gauges. /metrics serves it.
	metrics := obs.NewRegistry()
	if *pprofOn {
		obs.RegisterRuntimeMetrics(metrics)
	}

	coreCfg := core.Config{
		MaxConcurrent:    *maxConc,
		Workers:          *workers,
		BatchRows:        *batch,
		PredCacheSize:    *predCach,
		OptimizeInterval: 100 * time.Millisecond,
		DisableZoneMaps:  !*zoneMaps,
		Logf:             log.Printf,
	}
	if chaosSpec != nil {
		chaosSpec.Obs = metrics
		log.Printf("CHAOS ARMED: %s", chaosSpec)
	}
	var exec core.Executor
	if *shards > 1 {
		group, err := shard.New(ds.Star, shard.Config{
			Shards:       *shards,
			Core:         coreCfg,
			Fault:        chaosSpec,
			StallTimeout: *stallTO,
			Logf:         log.Printf,
			Obs:          metrics,
		})
		if err != nil {
			log.Fatalf("shard group: %v", err)
		}
		group.Start()
		exec = group
		if subs := group.ShardPartitions(); subs != nil {
			log.Printf("sharded execution started: %d pipelines, maxconc=%d, %d range partitions dealt %v",
				group.NumShards(), *maxConc, len(ds.Star.Partitions()), subs)
		} else {
			log.Printf("sharded execution started: %d page-strided pipelines, maxconc=%d", group.NumShards(), *maxConc)
		}
	} else {
		// Single pipeline: derive the (sole) shard's injector directly.
		coreCfg.Fault = chaosSpec.ForShard(0)
		coreCfg.Obs = metrics
		pipe, err := core.NewPipeline(ds.Star, coreCfg)
		if err != nil {
			log.Fatalf("pipeline: %v", err)
		}
		pipe.Start()
		exec = pipe
		log.Printf("pipeline started: maxconc=%d", *maxConc)
	}

	srv := server.New(ds.Star, ds.Txn, exec, server.Config{
		Admission: admission.Config{MaxQueue: *queueLen, MaxWait: *maxWait, BatchAdmit: *admBatch},
		Metrics:   metrics,
	})
	handler := srv.Handler()
	if *pprofOn {
		// pprof shares the listener but not the API mux: an explicit
		// wrapper keeps the profiling surface behind the flag instead of
		// the DefaultServeMux side-effect import.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("pprof enabled on %s/debug/pprof/", *addr)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v; draining (budget %v)", sig, *drainTO)
	case err := <-errCh:
		exec.Stop()
		log.Fatalf("http server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	// Stop fans out to every shard pipeline.
	exec.Stop()

	st := srv.Queue().Stats()
	fmt.Fprintf(os.Stderr,
		"cjoind: served %d queries (%d completed, %d canceled, %d expired, %d rejected), peak queue depth %d, mean wait %v\n",
		st.Submitted, st.Completed, st.Canceled, st.Expired, st.Rejected, st.MaxDepth, st.MeanWait.Round(time.Microsecond))
}
