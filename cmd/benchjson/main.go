// Command benchjson converts `go test -bench` text output on stdin into
// a JSON document on stdout, so benchmark runs can be committed (e.g.
// BENCH_<n>.json) and diffed across PRs as a performance trajectory.
//
//	go test -run '^$' -bench FilterProbe ./internal/core | benchjson > BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line. NsPerOp is the primary metric; any
// additional "<value> <unit>" pairs (MB/s, B/op, custom ReportMetric
// units) land in Metrics.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole run: the environment header lines go test prints
// (goos, goarch, pkg, cpu), the converter's own runtime figures
// (gomaxprocs, num_cpu, go_version — making "all numbers are 1-core"
// style caveats machine-checkable), plus every benchmark result.
type Report struct {
	Env     map[string]string `json:"env,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	rep := Report{Env: map[string]string{
		"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		"num_cpu":    strconv.Itoa(runtime.NumCPU()),
		"go_version": runtime.Version(),
	}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				rep.Env[k] = strings.TrimSpace(v)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
