// Command cjoin-bench regenerates the paper's evaluation (§6): every
// figure and table, printed as aligned text tables (or CSV) with the same
// series the paper reports.
//
// Usage:
//
//	cjoin-bench -exp all
//	cjoin-bench -exp figure5 -rows 10000 -queries 96 -ns 1,8,32,128,256
//	cjoin-bench -exp table2 -csv
//	cjoin-bench -exp overload -ns 64,128,256,512 -json
//	cjoin-bench -exp shardscale -shards 1,2,4,8 -json
//
// Absolute numbers differ from the paper (scaled data, simulated disk);
// the shapes — who wins, by what factor, where the curves bend — are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cjoin/internal/harness"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment: all, ablations, figure4..figure8, table1..table3, "+
			"overload, shardscale, dimadmit, obsoverhead, zonemap, updates, ablation-{probeskip,batchsize,maxconc,filterorder,compression}")
		sf      = flag.Int("sf", 1, "SSB scale factor")
		rows    = flag.Int("rows", 5000, "fact rows per scale-factor unit")
		sel     = flag.Float64("s", 0.01, "predicate selectivity")
		queries = flag.Int("queries", 48, "measured queries per data point")
		seed    = flag.Int64("seed", 1, "workload seed")
		maxConc = flag.Int("maxconc", 256, "CJOIN maxConc (bit-vector width)")
		nsFlag  = flag.String("ns", "", "comma-separated concurrency sweep (default 1,8,32,64,128,256)")
		selsArg = flag.String("sels", "", "comma-separated selectivity sweep for figure7/table2 (default 0.001,0.01,0.1); "+
			"for zonemap, the date-window width sweep (default 1,0.5,0.25,0.1,0.05)")
		sfsArg  = flag.String("sfs", "", "comma-separated scale factors for figure8/table3 (default 1,4,16)")
		n       = flag.Int("n", 32, "concurrency for figure7/figure8/table2/table3")
		threads = flag.Int("threads", 5, "max stage threads for figure4")
		shards  = flag.String("shards", "", "comma-separated shard counts for shardscale (default 1,2,4,8)")
		parts   = flag.Int("partitions", 0, "range-partition the fact table into N heaps; shardscale then deals whole partitions to shards (0 = unpartitioned, page-strided)")
		rates   = flag.String("rates", "", "comma-separated sustained write rates (commits/s) for the updates experiment (default 0,50,200,1000; 0 = writer off)")
		chaos   = flag.String("chaos", "", "fault-injection spec armed on every measured executor (internal/fault grammar)")
		csv     = flag.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut = flag.Bool("json", false, "emit the selected figures as one JSON document on stdout")
	)
	flag.Parse()

	cfg := harness.Config{
		SF:            *sf,
		FactRowsPerSF: *rows,
		Selectivity:   *sel,
		Queries:       *queries,
		Seed:          *seed,
		MaxConcurrent: *maxConc,
		Partitions:    *parts,
		Chaos:         *chaos,
	}
	ns, err := parseInts(*nsFlag)
	check(err)
	sels, err := parseFloats(*selsArg)
	check(err)
	sfs, err := parseInts(*sfsArg)
	check(err)
	shardNs, err := parseInts(*shards)
	check(err)
	writeRates, err := parseInts(*rates)
	check(err)

	type runner struct {
		id  string
		run func() (harness.Figure, error)
	}
	runners := []runner{
		{"figure4", func() (harness.Figure, error) { return harness.RunFigure4(cfg, *threads, *n) }},
		{"figure5", func() (harness.Figure, error) { return harness.RunFigure5(cfg, ns) }},
		{"figure6", func() (harness.Figure, error) { return harness.RunFigure6(cfg, ns) }},
		{"table1", func() (harness.Figure, error) { return harness.RunTable1(cfg, ns) }},
		{"figure7", func() (harness.Figure, error) { return harness.RunFigure7(cfg, sels, *n) }},
		{"table2", func() (harness.Figure, error) { return harness.RunTable2(cfg, sels, *n) }},
		{"figure8", func() (harness.Figure, error) { return harness.RunFigure8(cfg, sfs, *n) }},
		{"table3", func() (harness.Figure, error) { return harness.RunTable3(cfg, sfs, *n) }},
		{"overload", func() (harness.Figure, error) { return harness.RunOverloadFigure(cfg, ns) }},
		{"shardscale", func() (harness.Figure, error) { return harness.RunShardScale(cfg, shardNs, *n) }},
		{"dimadmit", func() (harness.Figure, error) { return harness.RunDimAdmit(cfg, shardNs, *n) }},
		{"obsoverhead", func() (harness.Figure, error) { return harness.RunObsOverhead(cfg, shardNs, *n) }},
		{"zonemap", func() (harness.Figure, error) { return harness.RunZoneMapSweep(cfg, sels, 0) }},
		{"updates", func() (harness.Figure, error) { return harness.RunUpdates(cfg, writeRates, *n) }},
	}
	ablations := []runner{
		{"probeskip", func() (harness.Figure, error) { return harness.RunAblationProbeSkip(cfg, *n) }},
		{"batchsize", func() (harness.Figure, error) { return harness.RunAblationBatchSize(cfg, nil, *n) }},
		{"maxconc", func() (harness.Figure, error) { return harness.RunAblationMaxConc(cfg, nil, *n) }},
		{"filterorder", func() (harness.Figure, error) { return harness.RunAblationFilterOrder(cfg, *n) }},
		{"compression", func() (harness.Figure, error) { return harness.RunAblationCompression(cfg, *n) }},
	}
	for _, a := range ablations {
		a := a
		runners = append(runners, runner{id: "ablation-" + a.id, run: a.run})
	}

	ran := 0
	var figures []harness.Figure
	for _, r := range runners {
		switch {
		case *exp == r.id:
		// "all" reproduces the paper's evaluation; the serving-tier and
		// sharding experiments run only when asked for by name.
		case *exp == "all" && !strings.HasPrefix(r.id, "ablation-") && r.id != "overload" && r.id != "shardscale" && r.id != "dimadmit" && r.id != "obsoverhead" && r.id != "zonemap" && r.id != "updates":
		case *exp == "ablations" && strings.HasPrefix(r.id, "ablation-"):
		default:
			continue
		}
		start := time.Now()
		fig, err := r.run()
		check(err)
		switch {
		case *jsonOut:
			figures = append(figures, fig)
			fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.id, time.Since(start).Round(time.Millisecond))
		case *csv:
			fmt.Printf("# %s\n%s\n", fig.Title, fig.CSV())
		default:
			fmt.Println(fig.Format())
			fmt.Printf("[%s completed in %v]\n\n", r.id, time.Since(start).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonOut {
		// The env header makes run conditions (the ROADMAP's "all numbers
		// are 1-core" caveat above all) machine-checkable in committed
		// BENCH_<n>.json snapshots, mirroring cmd/benchjson.
		doc := struct {
			Env     map[string]string `json:"env"`
			Figures []harness.Figure  `json:"figures"`
		}{
			Env: map[string]string{
				"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
				"num_cpu":    strconv.Itoa(runtime.NumCPU()),
				"go_version": runtime.Version(),
			},
			Figures: figures,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(doc))
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cjoin-bench:", err)
		os.Exit(1)
	}
}
